// Command rtexp reproduces the paper's evaluation: every table and figure,
// or any single one.
//
// Usage:
//
//	rtexp -list                 # list experiments and the figures they produce
//	rtexp -exp mm-rate          # run one sweep (all its figures)
//	rtexp -exp 4a               # run the sweep containing figure 4.a
//	rtexp -exp all              # run everything, including ablations
//	rtexp -exp paper            # run exactly the paper's figures
//	rtexp -exp table1           # print a parameter table (no simulation)
//
// Flags -seeds and -count shrink runs for quick looks; -format selects
// text (default), md or csv.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment or figure ID to run (or 'all', 'paper', 'table1', 'table2')")
		list       = flag.Bool("list", false, "list available experiments")
		seeds      = flag.Int("seeds", 0, "override seeds per point (0 = paper fidelity)")
		count      = flag.Int("count", 0, "override transactions per run (0 = paper fidelity)")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		format     = flag.String("format", "text", "output format: text, md or csv")
		plots      = flag.Bool("plot", false, "also render ASCII charts of the figures")
		outDir     = flag.String("out", "", "also write one CSV file per figure into this directory")
		quiet      = flag.Bool("q", false, "suppress progress output")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtexp: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "rtexp: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rtexp: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "rtexp: %v\n", err)
			}
		}()
	}

	if *list {
		listExperiments()
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	switch *exp {
	case "table1":
		emit(rtdbs.Table1(), *format)
		return
	case "table2":
		emit(rtdbs.Table2(), *format)
		return
	}

	var defs []rtdbs.Experiment
	switch *exp {
	case "all":
		defs = rtdbs.Experiments()
	case "paper":
		for _, d := range rtdbs.Experiments() {
			if !strings.HasPrefix(d.ID, "ablation-") {
				defs = append(defs, d)
			}
		}
	default:
		d, ok := rtdbs.ExperimentByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "rtexp: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		defs = []rtdbs.Experiment{d}
	}

	if *exp == "all" || *exp == "paper" {
		emit(rtdbs.Table1(), *format)
		fmt.Println()
		emit(rtdbs.Table2(), *format)
		fmt.Println()
	}

	allStart := time.Now()
	totalRuns := 0
	for _, def := range defs {
		opt := rtdbs.ExperimentOptions{Seeds: *seeds, Count: *count, Workers: *workers}
		defRuns := 0
		bar := progressBar(def)
		opt.Progress = func(done, total int) {
			defRuns = total
			if !*quiet {
				bar(done, total)
			}
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "== %s: %s\n", def.ID, def.Title)
		}
		start := time.Now()
		res, err := rtdbs.RunExperiment(def, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtexp: %v\n", err)
			os.Exit(1)
		}
		totalRuns += defRuns
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\r   done in %v%s\n", time.Since(start).Round(time.Millisecond), strings.Repeat(" ", 20))
		}
		tables := res.Tables()
		for _, tbl := range tables {
			emit(tbl, *format)
			fmt.Println()
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "rtexp: %v\n", err)
				os.Exit(1)
			}
			for i, tbl := range tables {
				name := filepath.Join(*outDir, fmt.Sprintf("%s-%s.csv", def.ID, def.Figures[i].ID))
				if err := os.WriteFile(name, []byte(tbl.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "rtexp: %v\n", err)
					os.Exit(1)
				}
			}
		}
		if *plots {
			for _, ch := range res.Charts() {
				fmt.Println(ch.Render())
			}
		}
	}
	if *exp == "all" {
		elapsed := time.Since(allStart)
		rps := 0.0
		if elapsed > 0 {
			rps = float64(totalRuns) / elapsed.Seconds()
		}
		fmt.Fprintf(os.Stderr, "== all experiments: %d runs in %v (%.1f runs/sec)\n",
			totalRuns, elapsed.Round(time.Millisecond), rps)
	}
}

func listExperiments() {
	for _, d := range rtdbs.Experiments() {
		fmt.Printf("%-20s %s\n", d.ID, d.Title)
		for _, f := range d.Figures {
			fmt.Printf("    %-10s %s\n", f.ID, f.Title)
		}
	}
	fmt.Printf("%-20s %s\n", "table1", "Table 1 — base parameters (main memory)")
	fmt.Printf("%-20s %s\n", "table2", "Table 2 — base parameters (disk resident)")
}

func progressBar(def rtdbs.Experiment) func(done, total int) {
	return func(done, total int) {
		fmt.Fprintf(os.Stderr, "\r   %d/%d runs", done, total)
	}
}

func emit(t *rtdbs.Table, format string) {
	switch format {
	case "md":
		fmt.Print(t.Markdown())
	case "csv":
		fmt.Print(t.CSV())
	default:
		fmt.Print(t.Text())
	}
}
