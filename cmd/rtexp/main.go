// Command rtexp reproduces the paper's evaluation: every table and figure,
// or any single one.
//
// Usage:
//
//	rtexp -list                 # list experiments and the figures they produce
//	rtexp -exp mm-rate          # run one sweep (all its figures)
//	rtexp -exp 4a               # run the sweep containing figure 4.a
//	rtexp -exp all              # run everything, including ablations
//	rtexp -exp paper            # run exactly the paper's figures
//	rtexp -exp table1           # print a parameter table (no simulation)
//
// Flags -seeds and -count shrink runs for quick looks; -format selects
// text (default), md or csv.
//
// Adaptive precision: -target-ci 0.05 keeps adding seeds per (point,
// variant) cell until the 95% confidence half-width is within 5% of the
// mean (or -max-seeds runs have been spent). Long sweeps survive
// interruption: with -checkpoint FILE every completed run is streamed to a
// JSONL file, Ctrl-C checkpoints in-flight runs and exits, and
// -resume replays the file to continue where the sweep stopped —
// producing bit-identical aggregates to an uninterrupted run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes, and returns
// the process exit code (0 success, 1 runtime error, 2 usage error, 130
// interrupted).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp        = fs.String("exp", "", "experiment or figure ID to run (or 'all', 'paper', 'table1', 'table2')")
		list       = fs.Bool("list", false, "list available experiments")
		seeds      = fs.Int("seeds", 0, "override seeds per point (0 = paper fidelity; adaptive mode: initial batch)")
		count      = fs.Int("count", 0, "override transactions per run (0 = paper fidelity)")
		workers    = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		format     = fs.String("format", "text", "output format: text, md or csv")
		plots      = fs.Bool("plot", false, "also render ASCII charts of the figures")
		outDir     = fs.String("out", "", "also write one CSV file per figure into this directory")
		quiet      = fs.Bool("q", false, "suppress progress output")
		targetCI   = fs.Float64("target-ci", 0, "adaptive precision: run each cell until CI95 <= this fraction of the mean (0 = fixed seeds)")
		maxSeeds   = fs.Int("max-seeds", 0, "adaptive precision: per-cell seed cap (0 = 4x the initial batch)")
		checkpoint = fs.String("checkpoint", "", "stream completed runs to this JSONL file (enables -resume after interruption)")
		resume     = fs.Bool("resume", false, "replay the -checkpoint file, skipping runs it already holds")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")

		oracle     = fs.Bool("oracle", false, "run every simulation under the runtime safety oracle (a violated paper invariant fails the run)")
		faultSpec  = fs.String("fault", "", "fault-injection plan applied to every run: inline JSON ({...}) or a path to a JSON file")
		admission  = fs.String("admission", "", "admission mode applied to every run: reject-newest or reject-infeasible (empty = per-experiment default)")
		admMax     = fs.Int("admission-max", 0, "live-set cap for -admission (required for reject-newest)")
		maxRetries = fs.Int("max-retries", 0, "retries per failed run (panic or oracle violation) before recording the seed as failed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(stderr, "rtexp: -resume requires -checkpoint (there is no file to replay)")
		return 2
	}
	var faultPlan rtdbs.FaultPlan
	if *faultSpec != "" {
		data := []byte(*faultSpec)
		if (*faultSpec)[0] != '{' {
			var err error
			data, err = os.ReadFile(*faultSpec)
			if err != nil {
				fmt.Fprintf(stderr, "rtexp: %v\n", err)
				return 2
			}
		}
		var err error
		faultPlan, err = rtdbs.ParseFaultPlan(data)
		if err != nil {
			fmt.Fprintf(stderr, "rtexp: %v\n", err)
			return 2
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "rtexp: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "rtexp: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "rtexp: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "rtexp: %v\n", err)
			}
		}()
	}

	if *list {
		listExperiments(stdout)
		return 0
	}
	if *exp == "" {
		fs.Usage()
		return 2
	}

	switch *exp {
	case "table1":
		emit(stdout, rtdbs.Table1(), *format)
		return 0
	case "table2":
		emit(stdout, rtdbs.Table2(), *format)
		return 0
	}

	var defs []rtdbs.Experiment
	switch *exp {
	case "all":
		defs = rtdbs.Experiments()
	case "paper":
		for _, d := range rtdbs.Experiments() {
			if !strings.HasPrefix(d.ID, "ablation-") {
				defs = append(defs, d)
			}
		}
	default:
		d, ok := rtdbs.ExperimentByID(*exp)
		if !ok {
			fmt.Fprintf(stderr, "rtexp: unknown experiment %q; valid IDs:\n", *exp)
			for _, d := range rtdbs.Experiments() {
				fmt.Fprintf(stderr, "  %s\n", d.ID)
			}
			fmt.Fprintln(stderr, "  all, paper, table1, table2 (or a figure ID like 4a; see -list)")
			return 1
		}
		defs = []rtdbs.Experiment{d}
	}

	// SIGINT/SIGTERM cancel the sweep: in-flight runs drain and reach the
	// checkpoint, then we exit with the conventional interrupt code.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *exp == "all" || *exp == "paper" {
		emit(stdout, rtdbs.Table1(), *format)
		fmt.Fprintln(stdout)
		emit(stdout, rtdbs.Table2(), *format)
		fmt.Fprintln(stdout)
	}

	allStart := time.Now()
	totalRuns := 0
	failedRuns := 0
	for _, def := range defs {
		opt := rtdbs.ExperimentOptions{
			Seeds: *seeds, Count: *count, Workers: *workers,
			TargetCI: *targetCI, MaxSeeds: *maxSeeds,
			CheckpointPath: *checkpoint, Resume: *resume,
			Oracle: *oracle, Fault: faultPlan, MaxRetries: *maxRetries,
			Admission: rtdbs.AdmissionConfig{Mode: rtdbs.AdmissionMode(*admission), MaxLive: *admMax},
		}
		cells := len(def.Xs) * len(def.Variants)
		cellsFinal := 0
		// CellDone and Progress both run on Run's collector goroutine
		// while this goroutine blocks in RunExperimentContext, so plain
		// variables are safe.
		opt.CellDone = func(xi, vi, n int, converged bool) { cellsFinal++ }
		defRuns := 0
		start := time.Now()
		opt.Progress = func(done, total int) {
			defRuns = total
			if *quiet {
				return
			}
			line := fmt.Sprintf("\r   %d/%d runs", done, total)
			if *targetCI > 0 {
				line += fmt.Sprintf(", %d/%d cells final", cellsFinal, cells)
			}
			if done > 0 && done < total {
				eta := time.Duration(float64(time.Since(start)) / float64(done) * float64(total-done))
				line += fmt.Sprintf(", ETA %v", eta.Round(time.Second))
			}
			fmt.Fprintf(stderr, "%-60s", line)
		}
		if !*quiet {
			fmt.Fprintf(stderr, "== %s: %s\n", def.ID, def.Title)
		}
		res, err := rtdbs.RunExperimentContext(ctx, def, opt)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(stderr, "\nrtexp: interrupted; completed runs checkpointed\n")
				if *checkpoint != "" {
					fmt.Fprintf(stderr, "rtexp: resume with the same flags plus -resume -checkpoint %s\n", *checkpoint)
				}
				return 130
			}
			fmt.Fprintf(stderr, "rtexp: %v\n", err)
			return 1
		}
		totalRuns += defRuns
		if !*quiet {
			fmt.Fprintf(stderr, "\r   done in %v%s\n", time.Since(start).Round(time.Millisecond), strings.Repeat(" ", 40))
			if *targetCI > 0 {
				converged := 0
				for xi := range res.Converged {
					for _, ok := range res.Converged[xi] {
						if ok {
							converged++
						}
					}
				}
				fmt.Fprintf(stderr, "   %d/%d cells converged to ±%.3g relative CI95 (cap %s)\n",
					converged, cells, *targetCI, seedCap(*maxSeeds, &def, *seeds))
			}
		}
		// Failed seeds did not abort the sweep, but their cells aggregate
		// fewer runs; list each so the exact run can be reproduced.
		if len(res.Failures) > 0 {
			failedRuns += len(res.Failures)
			fmt.Fprintf(stderr, "   %d run(s) failed and were excluded from their cells:\n", len(res.Failures))
			for _, f := range res.Failures {
				fmt.Fprintf(stderr, "     %s at %s=%v seed %d (%d attempt(s)): %s\n",
					f.Variant, def.XLabel, f.X, f.Seed, f.Attempts, f.Message)
			}
		}
		tables := res.Tables()
		for _, tbl := range tables {
			emit(stdout, tbl, *format)
			fmt.Fprintln(stdout)
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintf(stderr, "rtexp: %v\n", err)
				return 1
			}
			for i, tbl := range tables {
				name := filepath.Join(*outDir, fmt.Sprintf("%s-%s.csv", def.ID, def.Figures[i].ID))
				if err := os.WriteFile(name, []byte(tbl.CSV()), 0o644); err != nil {
					fmt.Fprintf(stderr, "rtexp: %v\n", err)
					return 1
				}
			}
		}
		if *plots {
			for _, ch := range res.Charts() {
				fmt.Fprintln(stdout, ch.Render())
			}
		}
	}
	if *exp == "all" {
		elapsed := time.Since(allStart)
		rps := 0.0
		if elapsed > 0 {
			rps = float64(totalRuns) / elapsed.Seconds()
		}
		fmt.Fprintf(stderr, "== all experiments: %d runs in %v (%.1f runs/sec)\n",
			totalRuns, elapsed.Round(time.Millisecond), rps)
	}
	if failedRuns > 0 {
		fmt.Fprintf(stderr, "rtexp: %d run(s) failed (see above); their cells aggregate the remaining seeds\n", failedRuns)
		return 1
	}
	return 0
}

// seedCap formats the effective per-cell seed cap for the summary line.
func seedCap(maxSeeds int, def *rtdbs.Experiment, seeds int) string {
	if maxSeeds > 0 {
		return fmt.Sprintf("%d seeds", maxSeeds)
	}
	initial := def.Seeds
	if seeds > 0 {
		initial = seeds
	}
	if initial < 2 {
		initial = 2
	}
	return fmt.Sprintf("%d seeds", 4*initial)
}

func listExperiments(w io.Writer) {
	for _, d := range rtdbs.Experiments() {
		fmt.Fprintf(w, "%-20s %s\n", d.ID, d.Title)
		for _, f := range d.Figures {
			fmt.Fprintf(w, "    %-10s %s\n", f.ID, f.Title)
		}
	}
	fmt.Fprintf(w, "%-20s %s\n", "table1", "Table 1 — base parameters (main memory)")
	fmt.Fprintf(w, "%-20s %s\n", "table2", "Table 2 — base parameters (disk resident)")
}

func emit(w io.Writer, t *rtdbs.Table, format string) {
	switch format {
	case "md":
		fmt.Fprint(w, t.Markdown())
	case "csv":
		fmt.Fprint(w, t.CSV())
	default:
		fmt.Fprint(w, t.Text())
	}
}
