package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestUnknownExperimentListsValidIDs: a typo'd -exp must exit non-zero and
// tell the user what the valid IDs are, not just that theirs is wrong.
func TestUnknownExperimentListsValidIDs(t *testing.T) {
	code, _, stderr := runCLI(t, "-exp", "nope")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	for _, want := range []string{`unknown experiment "nope"`, "mm-rate", "disk-rate", "table1"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
}

// TestResumeRequiresCheckpoint: -resume without -checkpoint is a usage
// error (exit 2), caught before any simulation starts.
func TestResumeRequiresCheckpoint(t *testing.T) {
	code, _, stderr := runCLI(t, "-exp", "mm-rate", "-resume")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "-resume requires -checkpoint") {
		t.Errorf("stderr missing requirement message:\n%s", stderr)
	}
}

// TestBadFlagExitsUsage: an unknown flag is a usage error.
func TestBadFlagExitsUsage(t *testing.T) {
	if code, _, _ := runCLI(t, "-no-such-flag"); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestListExitsZero: -list prints the registry to stdout.
func TestListExitsZero(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, want := range []string{"mm-rate", "disk-rate", "table1", "table2"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

// TestSmallSweepHappyPath: a shrunken sweep runs to completion and renders
// its tables on stdout.
func TestSmallSweepHappyPath(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-exp", "mm-rate", "-seeds", "2", "-count", "60", "-q")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "EDF-HP miss%") || !strings.Contains(stdout, "±95% (n)") {
		t.Errorf("sweep output missing expected columns:\n%s", stdout)
	}
}

// TestCheckpointThenResumeIdenticalOutput: the CLI-level resume guarantee —
// an interrupted-then-resumed invocation must print exactly the tables an
// uninterrupted one prints (here the "interruption" is a completed first
// pass, the strongest case: everything replays, nothing reruns).
func TestCheckpointThenResumeIdenticalOutput(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.jsonl")
	args := []string{"-exp", "mm-rate", "-seeds", "2", "-count", "60", "-q", "-checkpoint", ckpt}
	code, want, stderr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("first pass exit code = %d; stderr:\n%s", code, stderr)
	}
	code, got, stderr := runCLI(t, append(args, "-resume")...)
	if code != 0 {
		t.Fatalf("resume exit code = %d; stderr:\n%s", code, stderr)
	}
	if want != got {
		t.Errorf("resumed output differs from original:\n--- want\n%s--- got\n%s", want, got)
	}
}

// TestAdaptiveFlagSmoke: -target-ci exercises the adaptive path end to end
// and reports the convergence summary on stderr.
func TestAdaptiveFlagSmoke(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-exp", "mm-rate", "-count", "60",
		"-target-ci", "0.2", "-seeds", "2", "-max-seeds", "4")
	if code != 0 {
		t.Fatalf("exit code = %d; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "cells converged") {
		t.Errorf("stderr missing convergence summary:\n%s", stderr)
	}
	if !strings.Contains(stdout, "(n=") {
		t.Errorf("tables missing per-cell replication counts:\n%s", stdout)
	}
}
