// Command rtworkload generates, inspects and archives simulation
// workloads. Archived workloads can be replayed with `rtsim -workload`
// under any policy, which guarantees both sides of a comparison see
// byte-identical inputs.
//
// Usage:
//
//	rtworkload -gen -rate 8 -count 500 -seed 3 > wl.json
//	rtworkload -gen -disk -out wl.json
//	rtworkload -describe wl.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		gen      = flag.Bool("gen", false, "generate a workload to stdout (or -out)")
		describe = flag.String("describe", "", "summarise a workload file")
		out      = flag.String("out", "", "output file for -gen (default stdout)")
		rate     = flag.Float64("rate", 5, "arrival rate (tr/s)")
		count    = flag.Int("count", 0, "transactions (0 = paper default)")
		dbsize   = flag.Int("dbsize", 0, "database size (0 = paper default)")
		disk     = flag.Bool("disk", false, "Table 2 disk-resident parameters")
		reads    = flag.Float64("reads", 0, "shared-lock fraction (extension)")
		seed     = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()

	switch {
	case *describe != "":
		f, err := os.Open(*describe)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		wl, err := rtdbs.ReadWorkloadJSON(f)
		if err != nil {
			fatal(err)
		}
		fmt.Print(wl.Describe())

	case *gen:
		var cfg rtdbs.Config
		if *disk {
			cfg = rtdbs.DiskConfig(rtdbs.CCA, *seed)
		} else {
			cfg = rtdbs.MainMemoryConfig(rtdbs.CCA, *seed)
		}
		cfg.Workload.ArrivalRate = *rate
		cfg.Workload.ReadFraction = *reads
		if *count > 0 {
			cfg.Workload.Count = *count
		}
		if *dbsize > 0 {
			cfg.Workload.DBSize = *dbsize
		}
		wl, err := rtdbs.GenerateWorkload(cfg.Workload, *seed)
		if err != nil {
			fatal(err)
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := wl.WriteJSON(w); err != nil {
			fatal(err)
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rtworkload: %v\n", err)
	os.Exit(1)
}
