// Command rtanalyze runs the paper's transaction pre-analysis (§3.2.2) on
// transaction programs described as JSON trees, printing each node's
// hasaccessed/mightaccess sets and the pairwise conflict and safety
// classifications.
//
// With no arguments it analyses the paper's own Figure 1/2 example
// (programs A and B). Given JSON files, each file holds one program:
//
//	{
//	  "name": "A",
//	  "root": {
//	    "label": "A", "accesses": [0],
//	    "children": [
//	      {"label": "Aa", "accesses": [1, 2, 3]},
//	      {"label": "Ab", "accesses": [4, 5, 6]}
//	    ]
//	  }
//	}
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro"
)

type jsonNode struct {
	Label    string      `json:"label"`
	Accesses []int       `json:"accesses"`
	Children []*jsonNode `json:"children"`
}

type jsonProgram struct {
	Name string    `json:"name"`
	Root *jsonNode `json:"root"`
}

func toProgram(jp *jsonProgram) *rtdbs.Program {
	var conv func(n *jsonNode) *rtdbs.Node
	conv = func(n *jsonNode) *rtdbs.Node {
		if n == nil {
			return nil
		}
		items := make([]rtdbs.Item, len(n.Accesses))
		for i, a := range n.Accesses {
			items[i] = rtdbs.Item(a)
		}
		out := &rtdbs.Node{Label: n.Label, Accesses: rtdbs.NewItemSet(items...)}
		for _, c := range n.Children {
			out.Children = append(out.Children, conv(c))
		}
		return out
	}
	return &rtdbs.Program{Name: jp.Name, Root: conv(jp.Root)}
}

func main() {
	flag.Parse()

	var programs []*rtdbs.Program
	if flag.NArg() == 0 {
		programs = paperExample()
		fmt.Println("(no files given; analysing the paper's Figure 1/2 example)")
	} else {
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			// JSON programs start with '{'; anything else is the
			// indentation-based text format.
			trimmed := bytes.TrimSpace(data)
			if len(trimmed) > 0 && trimmed[0] == '{' {
				var jp jsonProgram
				if err := json.Unmarshal(data, &jp); err != nil {
					fatal(fmt.Errorf("%s: %w", path, err))
				}
				programs = append(programs, toProgram(&jp))
				continue
			}
			p, err := rtdbs.ParseProgram(bytes.NewReader(data))
			if err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
			programs = append(programs, p)
		}
	}

	analyses := make([]*rtdbs.Analysis, len(programs))
	for i, p := range programs {
		a, err := rtdbs.AnalyzeProgram(p)
		if err != nil {
			fatal(err)
		}
		analyses[i] = a
		printAnalysis(a)
	}

	fmt.Println("Pairwise relations between program roots:")
	for i, a := range analyses {
		for j, b := range analyses {
			if j <= i {
				continue
			}
			sa := rtdbs.StateAt(a, a.Program().Root.Label)
			sb := rtdbs.StateAt(b, b.Program().Root.Label)
			fmt.Printf("  %s vs %s: %v\n", a.Program().Name, b.Program().Name, rtdbs.ConflictBetween(sa, sb))
			fmt.Printf("    safety(%s wrt %s) = %v\n", a.Program().Name, b.Program().Name, rtdbs.SafetyOf(sa, sb))
			fmt.Printf("    safety(%s wrt %s) = %v\n", b.Program().Name, a.Program().Name, rtdbs.SafetyOf(sb, sa))
		}
	}
}

func printAnalysis(a *rtdbs.Analysis) {
	fmt.Printf("Program %s:\n", a.Program().Name)
	for _, label := range a.Labels() {
		leaf := ""
		if a.IsLeaf(label) {
			leaf = " (leaf)"
		}
		fmt.Printf("  %-8s hasaccessed=%v  mightaccess=%v%s\n",
			label, a.HasAccessed(label), a.MightAccess(label), leaf)
	}
	fmt.Println()
}

// paperExample builds Figure 1's programs A and B (item 0 is "w",
// items 1..6 are I1..I6).
func paperExample() []*rtdbs.Program {
	a := &rtdbs.Program{
		Name: "A",
		Root: &rtdbs.Node{
			Label: "A", Accesses: rtdbs.NewItemSet(0),
			Children: []*rtdbs.Node{
				{Label: "Aa", Accesses: rtdbs.NewItemSet(1, 2, 3)},
				{Label: "Ab", Accesses: rtdbs.NewItemSet(4, 5, 6)},
			},
		},
	}
	return []*rtdbs.Program{a, rtdbs.FlatProgram("B", 1, 2, 3)}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rtanalyze: %v\n", err)
	os.Exit(1)
}
