// Command rtsim runs a single real-time transaction scheduling simulation
// and prints its metrics — the quickest way to poke at the system.
//
// Usage examples:
//
//	rtsim -policy cca -rate 8
//	rtsim -policy edf-hp -rate 5 -disk -seeds 30
//	rtsim -policy cca -rate 8 -weight 5 -dbsize 300 -count 2000
//	rtsim -policy cca -rate 2 -count 5 -trace        # event-by-event trace
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro"
)

func main() {
	var (
		policy  = flag.String("policy", "cca", "scheduling policy: cca, edf-hp, edf-wp, lsf-hp, fcfs")
		rate    = flag.Float64("rate", 5, "arrival rate (transactions/second)")
		count   = flag.Int("count", 0, "transactions per run (0 = paper default)")
		dbsize  = flag.Int("dbsize", 0, "database size (0 = paper default)")
		disk    = flag.Bool("disk", false, "disk-resident configuration (Table 2) instead of main memory (Table 1)")
		weight  = flag.Float64("weight", 1, "CCA penalty-weight w")
		cpus    = flag.Int("cpus", 1, "number of CPUs (extension)")
		reads   = flag.Float64("reads", 0, "fraction of accesses taking shared locks (extension)")
		seeds   = flag.Int("seeds", 1, "number of seeds to average over")
		seed    = flag.Int64("seed", 1, "first seed")
		wlFile  = flag.String("workload", "", "replay an archived workload (rtworkload -gen) instead of generating one")
		trace   = flag.Bool("trace", false, "print the event trace (single seed only)")
		verbose = flag.Bool("v", false, "print per-seed results")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")

		faultSpec = flag.String("fault", "", "fault-injection plan: inline JSON ({...}) or a path to a JSON file")
		oracle    = flag.Bool("oracle", false, "enable the runtime safety oracle (fails the run on the first violated paper invariant)")
		watchdog  = flag.Int("watchdog", 0, "watchdog budget: max same-instant events before declaring a stall (0 = default, <0 = off)")
		admission = flag.String("admission", "", "admission mode: reject-newest or reject-infeasible (empty = admit all)")
		admMax    = flag.Int("admission-max", 0, "live-set cap for the admission controller (required for reject-newest)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtsim: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "rtsim: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rtsim: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "rtsim: %v\n", err)
			}
		}()
	}

	var cfg rtdbs.Config
	if *disk {
		cfg = rtdbs.DiskConfig(rtdbs.PolicyKind(*policy), *seed)
	} else {
		cfg = rtdbs.MainMemoryConfig(rtdbs.PolicyKind(*policy), *seed)
	}
	cfg.Workload.ArrivalRate = *rate
	cfg.PenaltyWeight = *weight
	cfg.NumCPUs = *cpus
	cfg.Workload.ReadFraction = *reads
	if *count > 0 {
		cfg.Workload.Count = *count
	}
	if *dbsize > 0 {
		cfg.Workload.DBSize = *dbsize
	}
	if *faultSpec != "" {
		plan, err := loadFaultPlan(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtsim: %v\n", err)
			os.Exit(2)
		}
		cfg.Fault = plan
	}
	cfg.WatchdogBudget = *watchdog
	cfg.Admission = rtdbs.AdmissionConfig{Mode: rtdbs.AdmissionMode(*admission), MaxLive: *admMax}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "rtsim: %v\n", err)
		os.Exit(2)
	}

	if *wlFile != "" {
		f, err := os.Open(*wlFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtsim: %v\n", err)
			os.Exit(1)
		}
		wl, err := rtdbs.ReadWorkloadJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtsim: %v\n", err)
			os.Exit(1)
		}
		// Replay: the workload fixes everything except the policy knobs.
		cfg.Workload = wl.Params
		e, err := rtdbs.NewWithWorkload(cfg, wl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtsim: %v\n", err)
			os.Exit(1)
		}
		if *oracle {
			e.EnableOracle()
		}
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("replayed %s under %s\n%s\n", *wlFile, *policy, res)
		return
	}

	if *trace {
		e, err := rtdbs.New(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtsim: %v\n", err)
			os.Exit(1)
		}
		e.SetTrace(func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		})
		if *oracle {
			e.EnableOracle()
		}
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\n%s\n", res)
		return
	}

	agg := &rtdbs.Aggregate{}
	for s := *seed; s < *seed+int64(*seeds); s++ {
		c := cfg
		c.Seed = s
		e, err := rtdbs.New(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtsim: seed %d: %v\n", s, err)
			os.Exit(1)
		}
		if *oracle {
			e.EnableOracle()
		}
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtsim: seed %d: %v\n", s, err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Printf("seed %-3d %s\n", s, res)
		}
		agg.Add(res)
	}
	sum := agg.Summary()
	fmt.Printf("policy=%s rate=%.2g seeds=%d\n", *policy, *rate, *seeds)
	fmt.Printf("  miss        = %6.2f%%  (±%.2f)\n", sum.MissPercent, agg.MissPercent.CI95())
	fmt.Printf("  lateness    = %6.2f ms (±%.2f)\n", sum.MeanLatenessMs, agg.MeanLatenessMs.CI95())
	fmt.Printf("  restarts/txn= %6.3f   (±%.3f)\n", sum.RestartsPerTxn, agg.RestartsPerTxn.CI95())
	fmt.Printf("  cpu util    = %6.1f%%\n", 100*sum.CPUUtilization)
	if sum.DiskUtilization > 0 {
		fmt.Printf("  disk util   = %6.1f%%\n", 100*sum.DiskUtilization)
	}
	fmt.Printf("  avg P-list  = %6.2f\n", sum.AvgPListSize)
	if sum.LockWaits > 0 || sum.Deadlocks > 0 {
		fmt.Printf("  lock waits  = %d, deadlocks = %d\n", sum.LockWaits, sum.Deadlocks)
	}
	if sum.Admitted > 0 || sum.Rejected > 0 {
		fmt.Printf("  admitted    = %d, rejected = %d\n", sum.Admitted, sum.Rejected)
	}
	if sum.RetriedIO > 0 || sum.FaultAborts > 0 {
		fmt.Printf("  io retries  = %d, fault aborts = %d\n", sum.RetriedIO, sum.FaultAborts)
	}
}

// loadFaultPlan parses a fault plan given inline ("{...}") or as a path to
// a JSON file.
func loadFaultPlan(spec string) (rtdbs.FaultPlan, error) {
	data := []byte(spec)
	if len(spec) == 0 || spec[0] != '{' {
		var err error
		data, err = os.ReadFile(spec)
		if err != nil {
			return rtdbs.FaultPlan{}, err
		}
	}
	return rtdbs.ParseFaultPlan(data)
}
