// Command rtsim runs a single real-time transaction scheduling simulation
// and prints its metrics — the quickest way to poke at the system.
//
// Usage examples:
//
//	rtsim -policy cca -rate 8
//	rtsim -policy edf-hp -rate 5 -disk -seeds 30
//	rtsim -policy cca -rate 8 -weight 5 -dbsize 300 -count 2000
//	rtsim -policy cca -rate 2 -count 5 -trace        # event-by-event trace
//
// SIGINT/SIGTERM interrupt a multi-seed run between seeds: the summary
// over the seeds that did complete is still printed, then rtsim exits
// with the conventional interrupt code 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"repro"
	"repro/internal/shard"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes, and returns
// the process exit code (0 success, 1 runtime error, 2 usage error, 130
// interrupted).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		policy  = fs.String("policy", "cca", "scheduling policy: cca, cca-p, cca-t, edf-hp, edf-wp, lsf-hp, fcfs")
		rate    = fs.Float64("rate", 5, "arrival rate (transactions/second)")
		count   = fs.Int("count", 0, "transactions per run (0 = paper default)")
		dbsize  = fs.Int("dbsize", 0, "database size (0 = paper default)")
		disk    = fs.Bool("disk", false, "disk-resident configuration (Table 2) instead of main memory (Table 1)")
		weight  = fs.Float64("weight", 1, "CCA penalty-weight w")
		cpus    = fs.Int("cpus", 1, "number of CPUs (extension)")
		reads   = fs.Float64("reads", 0, "fraction of accesses taking shared locks (extension)")
		seeds   = fs.Int("seeds", 1, "number of seeds to average over")
		seed    = fs.Int64("seed", 1, "first seed")
		wlFile  = fs.String("workload", "", "replay an archived workload (rtworkload -gen) instead of generating one")
		trace   = fs.Bool("trace", false, "print the event trace (single seed only)")
		verbose = fs.Bool("v", false, "print per-seed results")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = fs.String("memprofile", "", "write a heap profile to this file on exit")

		faultSpec = fs.String("fault", "", "fault-injection plan: inline JSON ({...}) or a path to a JSON file")
		oracle    = fs.Bool("oracle", false, "enable the runtime safety oracle (fails the run on the first violated paper invariant)")
		watchdog  = fs.Int("watchdog", 0, "watchdog budget: max same-instant events before declaring a stall (0 = default, <0 = off)")
		admission = fs.String("admission", "", "admission mode: reject-newest or reject-infeasible (empty = admit all)")
		admMax    = fs.Int("admission-max", 0, "live-set cap for the admission controller (required for reject-newest)")
		shardsN   = fs.Int("shards", 1, "engine shards (item i on shard i%N) with deterministic cross-shard epochs (extension)")
		epochIv   = fs.Duration("epoch", 0, "cross-shard epoch interval in simulated time (0 = default; with -shards > 1)")

		predScale = fs.Float64("predict-scale", -1, "cca-p/cca-t: observed-conflict-rate penalty scale (-1 = default)")
		predDecay = fs.Float64("predict-decay", -1, "cca-p/cca-t: per-window statistics decay in [0,1] (-1 = default)")
		feedback  = fs.Int("feedback", 0, "cca-t: terminal decisions per tuner feedback window (0 = default)")
		tunerStep = fs.Float64("tuner-step", 0, "cca-t: initial hill-climb step for the penalty weight (0 = default)")
		tunerMax  = fs.Float64("tuner-max", 0, "cca-t: upper clamp for the tuned weight (0 = default)")
		epsilon   = fs.Float64("epsilon", 0, "cca-t: ε-greedy exploration probability")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "rtsim: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(stderr, "rtsim: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "rtsim: %v\n", err)
			}
		}()
	}

	var cfg rtdbs.Config
	if *disk {
		cfg = rtdbs.DiskConfig(rtdbs.PolicyKind(*policy), *seed)
	} else {
		cfg = rtdbs.MainMemoryConfig(rtdbs.PolicyKind(*policy), *seed)
	}
	cfg.Workload.ArrivalRate = *rate
	cfg.PenaltyWeight = *weight
	cfg.NumCPUs = *cpus
	cfg.Workload.ReadFraction = *reads
	if *count > 0 {
		cfg.Workload.Count = *count
	}
	if *dbsize > 0 {
		cfg.Workload.DBSize = *dbsize
	}
	if *faultSpec != "" {
		plan, err := loadFaultPlan(*faultSpec)
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: %v\n", err)
			return 2
		}
		cfg.Fault = plan
	}
	cfg.WatchdogBudget = *watchdog
	cfg.Admission = rtdbs.AdmissionConfig{Mode: rtdbs.AdmissionMode(*admission), MaxLive: *admMax}
	if cfg.Policy == rtdbs.CCAP || cfg.Policy == rtdbs.CCAT {
		p := rtdbs.DefaultPredictConfig()
		if *predScale >= 0 {
			p.RateScale = *predScale
		}
		if *predDecay >= 0 {
			p.Decay = *predDecay
		}
		if *feedback > 0 {
			p.FeedbackWindow = *feedback
		}
		if *tunerStep > 0 {
			p.TunerStep = *tunerStep
		}
		if *tunerMax > 0 {
			p.TunerMax = *tunerMax
		}
		p.Epsilon = *epsilon
		cfg.Predict = p
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(stderr, "rtsim: %v\n", err)
		return 2
	}

	if *wlFile != "" {
		f, err := os.Open(*wlFile)
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: %v\n", err)
			return 1
		}
		wl, err := rtdbs.ReadWorkloadJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: %v\n", err)
			return 1
		}
		// Replay: the workload fixes everything except the policy knobs.
		cfg.Workload = wl.Params
		e, err := rtdbs.NewWithWorkload(cfg, wl)
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: %v\n", err)
			return 1
		}
		if *oracle {
			e.EnableOracle()
		}
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "replayed %s under %s\n%s\n", *wlFile, *policy, res)
		return 0
	}

	if *shardsN > 1 && *trace {
		fmt.Fprintln(stderr, "rtsim: -trace is per-engine; use it with -shards 1")
		return 2
	}

	if *trace {
		e, err := rtdbs.New(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: %v\n", err)
			return 1
		}
		e.SetTrace(func(format string, args ...any) {
			fmt.Fprintf(stdout, format+"\n", args...)
		})
		if *oracle {
			e.EnableOracle()
		}
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(stderr, "rtsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "\n%s\n", res)
		return 0
	}

	// SIGINT/SIGTERM interrupt the seed loop between seeds: the current
	// seed finishes, the summary over the completed seeds is still
	// printed, and rtsim exits 130.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	agg := &rtdbs.Aggregate{}
	completed := 0
	interrupted := false
	for s := *seed; s < *seed+int64(*seeds); s++ {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		c := cfg
		c.Seed = s
		var res rtdbs.Result
		if *shardsN > 1 {
			wl, err := rtdbs.GenerateWorkload(c.Workload, s)
			if err != nil {
				fmt.Fprintf(stderr, "rtsim: seed %d: %v\n", s, err)
				return 1
			}
			r, err := shard.New(c, wl, shard.Options{Shards: *shardsN, Epoch: *epochIv})
			if err != nil {
				fmt.Fprintf(stderr, "rtsim: seed %d: %v\n", s, err)
				return 1
			}
			if *oracle {
				for _, e := range r.Engines() {
					e.EnableOracle()
				}
			}
			sres, err := r.Run()
			if err != nil {
				fmt.Fprintf(stderr, "rtsim: seed %d: %v\n", s, err)
				return 1
			}
			res = sres.Metrics
			if *verbose {
				fmt.Fprintf(stdout, "seed %-3d %s\n", s, res)
				fmt.Fprintf(stdout, "         cross: %d total, %d committed, %d missed, %d partial, %d epochs\n",
					sres.Cross.Total, sres.Cross.Committed, sres.Cross.Missed, sres.Cross.Partial, sres.Epochs)
			}
		} else {
			e, err := rtdbs.New(c)
			if err != nil {
				fmt.Fprintf(stderr, "rtsim: seed %d: %v\n", s, err)
				return 1
			}
			if *oracle {
				e.EnableOracle()
			}
			res, err = e.Run()
			if err != nil {
				fmt.Fprintf(stderr, "rtsim: seed %d: %v\n", s, err)
				return 1
			}
			if *verbose {
				fmt.Fprintf(stdout, "seed %-3d %s\n", s, res)
				if snap, ok := e.PredictSnapshot(); ok {
					fmt.Fprintf(stdout, "         predict: w=%.3g tuner-steps=%d active-pairs=%d\n",
						snap.W, snap.TunerSteps, snap.ActivePairs)
				}
			}
		}
		agg.Add(res)
		completed++
	}
	if interrupted {
		fmt.Fprintf(stderr, "rtsim: interrupted after %d/%d seeds\n", completed, *seeds)
		if completed == 0 {
			return 130
		}
	}
	sum := agg.Summary()
	fmt.Fprintf(stdout, "policy=%s rate=%.2g seeds=%d\n", *policy, *rate, completed)
	fmt.Fprintf(stdout, "  miss        = %6.2f%%  (±%.2f)\n", sum.MissPercent, agg.MissPercent.CI95())
	fmt.Fprintf(stdout, "  lateness    = %6.2f ms (±%.2f)\n", sum.MeanLatenessMs, agg.MeanLatenessMs.CI95())
	fmt.Fprintf(stdout, "  restarts/txn= %6.3f   (±%.3f)\n", sum.RestartsPerTxn, agg.RestartsPerTxn.CI95())
	fmt.Fprintf(stdout, "  cpu util    = %6.1f%%\n", 100*sum.CPUUtilization)
	if sum.DiskUtilization > 0 {
		fmt.Fprintf(stdout, "  disk util   = %6.1f%%\n", 100*sum.DiskUtilization)
	}
	fmt.Fprintf(stdout, "  avg P-list  = %6.2f\n", sum.AvgPListSize)
	if sum.LockWaits > 0 || sum.Deadlocks > 0 {
		fmt.Fprintf(stdout, "  lock waits  = %d, deadlocks = %d\n", sum.LockWaits, sum.Deadlocks)
	}
	if sum.Admitted > 0 || sum.Rejected > 0 {
		fmt.Fprintf(stdout, "  admitted    = %d, rejected = %d\n", sum.Admitted, sum.Rejected)
	}
	if sum.RetriedIO > 0 || sum.FaultAborts > 0 {
		fmt.Fprintf(stdout, "  io retries  = %d, fault aborts = %d\n", sum.RetriedIO, sum.FaultAborts)
	}
	if interrupted {
		return 130
	}
	return 0
}

// loadFaultPlan parses a fault plan given inline ("{...}") or as a path to
// a JSON file.
func loadFaultPlan(spec string) (rtdbs.FaultPlan, error) {
	data := []byte(spec)
	if len(spec) == 0 || spec[0] != '{' {
		var err error
		data, err = os.ReadFile(spec)
		if err != nil {
			return rtdbs.FaultPlan{}, err
		}
	}
	return rtdbs.ParseFaultPlan(data)
}
