package main

import (
	"bytes"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuf is a goroutine-safe writer: the simulation goroutine writes
// per-seed lines while the test polls for them.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunSummary: a short run exits 0 and prints the summary block.
func TestRunSummary(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-count", "50", "-seeds", "2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errb.String())
	}
	for _, want := range []string{"policy=cca", "seeds=2", "miss", "restarts/txn"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

// TestBadFlagExitsUsage: an unknown flag is a usage error.
func TestBadFlagExitsUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestBadPolicyExitsUsage: an invalid configuration is refused before any
// simulation runs.
func TestBadPolicyExitsUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-policy", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, errb.String())
	}
}

// TestInterruptFinishesSummary: SIGINT during a long multi-seed run stops
// between seeds, still prints the summary over the completed seeds, and
// exits 130.
func TestInterruptFinishesSummary(t *testing.T) {
	var out, errb syncBuf
	done := make(chan int, 1)
	go func() {
		// Enough seeds that the run cannot finish before the signal lands;
		// -v makes the first completed seed observable.
		done <- run([]string{"-count", "50", "-seeds", "1000000", "-v"}, &out, &errb)
	}()

	// Wait for at least one seed to complete, proving the signal handler
	// is installed and the loop is in flight.
	deadline := time.Now().Add(30 * time.Second)
	for !strings.Contains(out.String(), "seed ") {
		if time.Now().After(deadline) {
			t.Fatalf("no seed completed; stdout:\n%s", out.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatalf("kill: %v", err)
	}

	select {
	case code := <-done:
		if code != 130 {
			t.Fatalf("exit code = %d, want 130; stderr: %s", code, errb.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("run did not return after SIGINT")
	}
	if !strings.Contains(errb.String(), "interrupted after") {
		t.Errorf("stderr missing interrupt notice:\n%s", errb.String())
	}
	// The summary over completed seeds still printed.
	if !strings.Contains(out.String(), "policy=cca") {
		t.Errorf("stdout missing the partial summary:\n%s", out.String())
	}
}
