// Command rtchaos runs a deterministic chaos TCP proxy in front of a
// target service (typically rtserve's HTTP or wire listener). Every
// accepted connection is relayed to the target through a fault schedule
// drawn from (-seed, accept index): connection resets after a byte
// budget, blackhole windows, byte-rate throttling, delayed and truncated
// writes. The same seed and plan always produce the same fault schedule
// per accept index, so a chaos run is replayable.
//
// Usage examples:
//
//	rtchaos -listen :9344 -target 127.0.0.1:8344 -seed 7 \
//	    -plan '{"reset_prob":0.2,"throttle_prob":0.3}'
//	rtchaos -listen :9345 -target 127.0.0.1:8345 -plan '{}'   # plain relay
//
// SIGINT/SIGTERM stop the proxy: accepting ends, every relayed
// connection is severed, and the final fault counters are printed as
// JSON to stderr before a clean exit 0. With -report-json the same
// counters are also written to a file, so harnesses (the kill-9 soak in
// CI) can scrape them without parsing stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/chaos"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run is the testable entry point: it parses args, relays until a
// signal, and returns the process exit code (0 clean stop, 1 runtime
// error, 2 usage error).
func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtchaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen     = fs.String("listen", "127.0.0.1:9344", "proxy listen address")
		target     = fs.String("target", "", "target address to relay to (required)")
		seed       = fs.Int64("seed", 1, "fault-schedule seed; same seed and plan replay the same faults")
		planJSON   = fs.String("plan", "{}", "fault plan as JSON (see internal/chaos.Plan); {} relays faithfully")
		reportJSON = fs.String("report-json", "", "write the final fault counters as JSON to this file on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *target == "" {
		fmt.Fprintln(stderr, "rtchaos: -target is required")
		return 2
	}
	plan, err := chaos.ParsePlan(*planJSON)
	if err != nil {
		fmt.Fprintf(stderr, "rtchaos: %v\n", err)
		return 2
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(stderr, "rtchaos: %v\n", err)
		return 1
	}
	p, err := chaos.NewProxy(ln, *target, *seed, plan)
	if err != nil {
		ln.Close()
		fmt.Fprintf(stderr, "rtchaos: %v\n", err)
		return 1
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	fmt.Fprintf(stderr, "rtchaos: relaying %s -> %s (seed %d, zero-plan=%v)\n",
		p.Addr(), *target, *seed, plan.Zero())

	serveErr := make(chan error, 1)
	go func() { serveErr <- p.Serve() }()

	var runErr error
	select {
	case <-sig:
		runErr = p.Close()
		<-serveErr
	case runErr = <-serveErr:
		p.Close()
	}

	c := p.Counters()
	b, _ := json.Marshal(c)
	fmt.Fprintf(stderr, "rtchaos: counters %s\n", b)
	if *reportJSON != "" {
		if err := os.WriteFile(*reportJSON, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "rtchaos: %v\n", err)
			if runErr == nil {
				runErr = err
			}
		}
	}
	if runErr != nil {
		fmt.Fprintf(stderr, "rtchaos: %v\n", runErr)
		return 1
	}
	fmt.Fprintln(stderr, "rtchaos: shutdown complete")
	return 0
}
