package main

import (
	"encoding/json"
	"os"
	"path/filepath"

	"bytes"
	"io"
	"net"
	"repro/internal/chaos"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer makes the stderr capture safe to read while run() is still
// writing to it from another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-bogus"}, &buf); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	buf.Reset()
	if code := run(nil, &buf); code != 2 {
		t.Fatalf("missing -target: exit %d, want 2", code)
	}
	if !strings.Contains(buf.String(), "-target is required") {
		t.Fatalf("missing -target message, got %q", buf.String())
	}
	buf.Reset()
	if code := run([]string{"-target", "x", "-plan", `{"reset_prob":2}`}, &buf); code != 2 {
		t.Fatalf("bad plan: exit %d, want 2", code)
	}
}

// TestRelayAndSignalStop drives a zero-plan proxy end to end: bytes
// relay faithfully, SIGTERM stops it cleanly with counters on stderr.
func TestRelayAndSignalStop(t *testing.T) {
	// Echo target.
	tln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tln.Close()
	go func() {
		for {
			c, err := tln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()

	var buf syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-target", tln.Addr().String(),
			"-plan", "{}",
		}, &buf)
	}()

	// The proxy picked an ephemeral port; scrape it from the banner.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no banner: %q", buf.String())
		}
		for _, ln := range strings.Split(buf.String(), "\n") {
			if strings.HasPrefix(ln, "rtchaos: relaying ") {
				addr = strings.Fields(ln)[2]
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("through the proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("relayed %q, want %q", got, msg)
	}
	c.Close()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d, want 0\nstderr: %s", code, buf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("proxy did not stop on SIGTERM\nstderr: %s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "rtchaos: counters {") {
		t.Fatalf("no counters line:\n%s", out)
	}
	if !strings.Contains(out, "shutdown complete") {
		t.Fatalf("no shutdown line:\n%s", out)
	}
}

// TestReportJSONOnSIGINT: SIGINT (not just SIGTERM) stops the proxy
// cleanly, and -report-json leaves the final counters in a file the
// crash harness can scrape without parsing stderr.
func TestReportJSONOnSIGINT(t *testing.T) {
	tln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tln.Close()
	go func() {
		for {
			c, err := tln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()

	report := filepath.Join(t.TempDir(), "counters.json")
	var buf syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-target", tln.Addr().String(),
			"-report-json", report,
		}, &buf)
	}()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no banner: %q", buf.String())
		}
		for _, ln := range strings.Split(buf.String(), "\n") {
			if strings.HasPrefix(ln, "rtchaos: relaying ") {
				addr = strings.Fields(ln)[2]
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	c.Close()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d, want 0\nstderr: %s", code, buf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("proxy did not stop on SIGINT\nstderr: %s", buf.String())
	}

	b, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var cs chaos.Counters
	if err := json.Unmarshal(b, &cs); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, b)
	}
	if cs.Accepted < 1 {
		t.Fatalf("report counted %d accepts, want >= 1: %s", cs.Accepted, b)
	}
}
