// Command rtload drives a running rtserve with a measured transaction
// load and reports client-side latency and outcome statistics. It is
// the load half of the wire-speed serving path: rtserve answers, rtload
// asks — over either protocol (HTTP/JSON or the binary wire protocol),
// in either of the two canonical load shapes:
//
//   - open loop (-mode open): arrivals are a Poisson process at -rate
//     requests/second, independent of response times — the honest way
//     to probe an overloaded server, since a slow server does not slow
//     the arrival process down (no coordinated omission);
//   - closed loop (-mode closed): -workers synchronous loops, each
//     submitting back-to-back — the classic saturation probe.
//
// A rate-targeted soak is an open-loop run with a long -duration: the
// report then shows whether the server held the target rate, what the
// latency distribution looked like, and how much was shed.
//
// Usage examples:
//
//	rtload -target 127.0.0.1:8344 -proto json -mode closed -workers 8 -duration 5s
//	rtload -target 127.0.0.1:8345 -proto wire -mode open -rate 2000 -duration 30s
//	rtload -proto wire -report json   # machine-readable report on stdout
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/txn"
	"repro/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// loadOptions is everything a run needs, parsed from flags.
type loadOptions struct {
	target   string
	proto    string
	mode     string
	rate     float64
	workers  int
	conns    int
	duration time.Duration
	maxOut   int

	items    int
	dbsize   int
	compute  time.Duration
	deadline time.Duration
	readFrac float64
	seed     int64

	retries    int
	retryMax   time.Duration
	reqTimeout time.Duration

	report  string
	journal string
}

// tally accumulates outcomes across workers.
type tally struct {
	sent      atomic.Int64
	committed atomic.Int64
	missed    atomic.Int64 // committed after the deadline
	rejected  atomic.Int64
	shed      atomic.Int64
	dropped   atomic.Int64
	invalid   atomic.Int64
	errors    atomic.Int64
	overflow  atomic.Int64 // open loop: outstanding cap hit, request not sent
	retried   atomic.Int64 // resubmissions after an overload signal (shed/rejected) or a provably-unsent failure
	abandoned atomic.Int64 // requests still shed/rejected after the retry budget

	// The error split that matters for crash reconciliation: a request
	// abandoned on wire.ErrNotSent provably never reached the server (no
	// effects possible, safe to have retried), while an ambiguous failure
	// — reset after the frame went out, response timeout — may have been
	// admitted and must be checked against the server's WAL.
	abandonedUnsent    atomic.Int64
	abandonedAmbiguous atomic.Int64

	mu   sync.Mutex
	hist metrics.Histogram // wall latency of answered requests, ms
}

func (tl *tally) observe(d time.Duration) {
	tl.mu.Lock()
	tl.hist.Observe(float64(d) / float64(time.Millisecond))
	tl.mu.Unlock()
}

// Report is the machine-readable run summary (-report json).
type Report struct {
	Proto      string  `json:"proto"`
	Mode       string  `json:"mode"`
	TargetRate float64 `json:"target_rate,omitempty"`
	Duration   float64 `json:"duration_s"`
	Sent       int64   `json:"sent"`
	Throughput float64 `json:"throughput_rps"`
	Committed  int64   `json:"committed"`
	Missed     int64   `json:"missed"`
	Rejected   int64   `json:"rejected"`
	Shed       int64   `json:"shed"`
	Dropped    int64   `json:"dropped"`
	Invalid    int64   `json:"invalid"`
	Errors     int64   `json:"errors"`
	Overflow   int64   `json:"overflow"`
	Retried    int64   `json:"retried"`
	// Abandoned is the sum of the three ways a request ends without a
	// server answer the client trusts: still shed/rejected after the
	// retry budget, provably never sent, or ambiguously lost.
	Abandoned          int64   `json:"abandoned"`
	AbandonedUnsent    int64   `json:"abandoned_unsent"`
	AbandonedAmbiguous int64   `json:"abandoned_ambiguous"`
	P50Ms              float64 `json:"p50_ms"`
	P95Ms              float64 `json:"p95_ms"`
	P99Ms              float64 `json:"p99_ms"`
	MaxMs              float64 `json:"max_ms"`
	MeanMs             float64 `json:"mean_ms"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o loadOptions
	fs.StringVar(&o.target, "target", "127.0.0.1:8344", "server address (host:port)")
	fs.StringVar(&o.proto, "proto", "json", "protocol: json (HTTP) or wire (binary)")
	fs.StringVar(&o.mode, "mode", "closed", "load shape: open (Poisson at -rate) or closed (-workers back-to-back loops)")
	fs.Float64Var(&o.rate, "rate", 1000, "open loop: target arrival rate, requests/second")
	fs.IntVar(&o.workers, "workers", 8, "closed loop: concurrent synchronous submitters")
	fs.IntVar(&o.conns, "conns", 4, "wire protocol: pipelined connections to spread load over")
	fs.DurationVar(&o.duration, "duration", 5*time.Second, "how long to drive load")
	fs.IntVar(&o.maxOut, "max-outstanding", 4096, "open loop: cap on unanswered requests before arrivals are counted as overflow")
	fs.IntVar(&o.items, "items", 2, "items accessed per transaction")
	fs.IntVar(&o.dbsize, "dbsize", 30, "item space to draw from (match the server's -dbsize)")
	fs.DurationVar(&o.compute, "compute", 100*time.Microsecond, "per-item compute time submitted")
	fs.DurationVar(&o.deadline, "deadline", 50*time.Millisecond, "relative deadline submitted")
	fs.Float64Var(&o.readFrac, "read-frac", 0, "fraction of items flagged as reads")
	fs.Int64Var(&o.seed, "seed", 1, "workload RNG seed")
	fs.IntVar(&o.retries, "retries", 2, "resubmissions of a shed/rejected request, with jittered backoff honoring the server's Retry-After hint (0 disables)")
	fs.DurationVar(&o.retryMax, "retry-max", 2*time.Second, "cap on any single retry backoff sleep")
	fs.DurationVar(&o.reqTimeout, "req-timeout", 30*time.Second, "per-request timeout (both protocols)")
	fs.StringVar(&o.report, "report", "text", "report format on stdout: text or json")
	fs.StringVar(&o.journal, "journal", "", "write a JSONL outcome journal (one line per attempt, with the server's WAL seq) for crash reconciliation")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if o.proto != "json" && o.proto != "wire" {
		fmt.Fprintf(stderr, "rtload: unknown -proto %q\n", o.proto)
		return 2
	}
	if o.mode != "open" && o.mode != "closed" {
		fmt.Fprintf(stderr, "rtload: unknown -mode %q\n", o.mode)
		return 2
	}
	if o.items < 1 || o.dbsize < o.items {
		fmt.Fprintf(stderr, "rtload: need 1 <= -items <= -dbsize\n")
		return 2
	}

	var jn *journal
	if o.journal != "" {
		j, err := openJournal(o.journal)
		if err != nil {
			fmt.Fprintf(stderr, "rtload: %v\n", err)
			return 1
		}
		jn = j
	}

	submit, closeFn, err := newSubmitter(&o, jn)
	if err != nil {
		jn.close()
		fmt.Fprintf(stderr, "rtload: %v\n", err)
		return 1
	}
	defer closeFn()

	var tl tally
	submit = withRetry(&o, &tl, submit)
	start := time.Now()
	switch o.mode {
	case "closed":
		runClosed(&o, &tl, submit)
	case "open":
		runOpen(&o, &tl, submit)
	}
	elapsed := time.Since(start)

	if err := jn.close(); err != nil {
		fmt.Fprintf(stderr, "rtload: journal: %v\n", err)
		return 1
	}

	rep := buildReport(&o, &tl, elapsed)
	switch o.report {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	default:
		printText(stdout, rep)
	}
	if tl.errors.Load() > 0 && tl.committed.Load() == 0 {
		return 1
	}
	return 0
}

// outcome is the client-side classification of one answered request.
type outcome int

const (
	outCommitted outcome = iota
	outMissed
	outRejected
	outShed
	outDropped
	outInvalid
	outErrUnsent // wire.ErrNotSent: provably never reached the server
	outError     // ambiguous failure: the server may have admitted it
)

// label is the outcome's journal spelling.
func (o outcome) label() string {
	switch o {
	case outCommitted:
		return "committed"
	case outMissed:
		return "missed"
	case outRejected:
		return "rejected"
	case outShed:
		return "shed"
	case outDropped:
		return "dropped"
	case outInvalid:
		return "invalid"
	case outErrUnsent:
		return "error_unsent"
	default:
		return "error_ambiguous"
	}
}

// journal persists one JSONL line per submit attempt (-journal): the
// client's half of crash reconciliation. Every line whose seq is
// non-zero is a server ack under that WAL sequence — after a kill-9 and
// a -recover restart, `rtserve -wal-dump` must show exactly one
// terminal outcome for each. Lines with seq 0 never got an ack; the
// error_unsent ones provably left no server-side trace, while
// error_ambiguous ones may appear in the dump as unresolved or replayed
// work. Attempts, not requests, are journaled: each retry is its own
// server-side submission with its own seq.
type journal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// journalEntry is one JSONL journal line.
type journalEntry struct {
	Seq     uint64 `json:"seq,omitempty"` // server WAL sequence of the ack, 0 when unacked
	Outcome string `json:"outcome"`
	Missed  bool   `json:"missed,omitempty"` // committed past its deadline
}

func openJournal(path string) (*journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &journal{f: f, w: bufio.NewWriter(f)}, nil
}

// record appends one attempt. A nil journal records nothing, so the
// submit paths call it unconditionally.
func (j *journal) record(seq uint64, out outcome) {
	if j == nil {
		return
	}
	b, _ := json.Marshal(journalEntry{Seq: seq, Outcome: out.label(), Missed: out == outMissed})
	j.mu.Lock()
	j.w.Write(b)
	j.w.WriteByte('\n')
	j.mu.Unlock()
}

func (j *journal) close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// submitFn issues one request built from the worker's RNG and reports
// how it ended, plus the server's Retry-After hint in seconds (0 when
// the answer carried none).
type submitFn func(rng *rand.Rand) (outcome, int)

// withRetry wraps a submitFn with the client-side overload protocol: a
// shed or rejected answer — or a provably-unsent failure, which cannot
// have server-side effects — is resubmitted up to o.retries times after
// a jittered backoff honoring the server's Retry-After hint (full
// jitter: a uniform draw up to the hint, capped at o.retryMax).
// Ambiguous failures are never retried here: the server may have
// admitted the transaction, and blind resubmission would create the
// duplicate effects the recovery harness exists to rule out. Each extra
// attempt counts in tl.retried; a request still shed/rejected when the
// budget runs out counts in tl.abandoned and keeps its final outcome.
func withRetry(o *loadOptions, tl *tally, submit submitFn) submitFn {
	if o.retries <= 0 {
		return submit
	}
	return func(rng *rand.Rand) (outcome, int) {
		out, hint := submit(rng)
		for attempt := 1; attempt <= o.retries && (out == outShed || out == outRejected || out == outErrUnsent); attempt++ {
			ceiling := time.Duration(hint) * time.Second
			if ceiling <= 0 {
				// No hint: exponential base so blind retries still spread out.
				ceiling = 50 * time.Millisecond << (attempt - 1)
			}
			if ceiling > o.retryMax {
				ceiling = o.retryMax
			}
			time.Sleep(time.Duration(rng.Int63n(int64(ceiling) + 1)))
			tl.retried.Add(1)
			out, hint = submit(rng)
		}
		if out == outShed || out == outRejected {
			tl.abandoned.Add(1)
		}
		return out, hint
	}
}

// newSubmitter builds the per-protocol submit function. The returned
// function is safe for concurrent use. Every attempt is recorded in jn
// (nil when -journal is unset) with the server's WAL sequence when the
// answer carried one.
func newSubmitter(o *loadOptions, jn *journal) (submitFn, func(), error) {
	gen := func(rng *rand.Rand) ([]txn.Item, []bool) {
		items := make([]txn.Item, 0, o.items)
		seen := make(map[int]bool, o.items)
		for len(items) < o.items {
			it := rng.Intn(o.dbsize)
			if !seen[it] {
				seen[it] = true
				items = append(items, txn.Item(it))
			}
		}
		var reads []bool
		if o.readFrac > 0 {
			reads = make([]bool, len(items))
			for i := range reads {
				reads[i] = rng.Float64() < o.readFrac
			}
		}
		return items, reads
	}

	if o.proto == "wire" {
		// Eager probe: the resilient client dials lazily and retries, so
		// without this a dead target would burn the whole run in redial
		// loops instead of failing fast at startup.
		probe, err := wire.Dial(o.target, 5*time.Second)
		if err != nil {
			return nil, nil, err
		}
		probe.Close()
		clients := make([]*wire.Resilient, o.conns)
		for i := range clients {
			clients[i] = wire.NewResilient(o.target, wire.ResilientOptions{
				DialTimeout: 5 * time.Second,
				Client:      wire.ClientOptions{RequestTimeout: o.reqTimeout},
				Seed:        o.seed + int64(i),
			})
		}
		var next atomic.Int64
		fn := func(rng *rand.Rand) (outcome, int) {
			items, reads := gen(rng)
			c := clients[int(next.Add(1))%len(clients)]
			resp, err := c.Submit(&wire.SubmitReq{
				Items: items, Reads: reads,
				Compute: o.compute, Deadline: o.deadline,
			})
			if err != nil {
				out := outError
				if errors.Is(err, wire.ErrNotSent) {
					out = outErrUnsent
				}
				jn.record(0, out)
				return out, 0
			}
			out, hint := outInvalid, 0
			switch resp.Status {
			case wire.StatusCommitted:
				out = outCommitted
				if resp.Missed {
					out = outMissed
				}
			case wire.StatusRejected:
				out, hint = outRejected, int(resp.RetryAfter)
			case wire.StatusShed:
				out, hint = outShed, int(resp.RetryAfter)
			case wire.StatusDropped:
				out = outDropped
			case wire.StatusFailed:
				// The server answered but could not vouch for the outcome
				// (engine or log failure): ambiguous, like a lost answer.
				out = outError
			}
			jn.record(resp.Seq, out)
			return out, hint
		}
		closeFn := func() {
			for _, c := range clients {
				c.Close()
			}
		}
		return fn, closeFn, nil
	}

	// HTTP/JSON: one shared transport with keep-alives sized for the
	// worker count.
	tr := &http.Transport{
		MaxIdleConns:        o.workers + o.conns,
		MaxIdleConnsPerHost: o.workers + o.conns,
	}
	hc := &http.Client{Transport: tr, Timeout: o.reqTimeout}
	url := "http://" + o.target + "/submit"
	type jsonReq struct {
		Items    []int   `json:"items"`
		Reads    []bool  `json:"reads,omitempty"`
		Compute  float64 `json:"compute"`
		Deadline float64 `json:"deadline"`
	}
	type jsonResp struct {
		State  string `json:"state"`
		Missed bool   `json:"missed"`
		WALSeq uint64 `json:"wal_seq"`
	}
	fn := func(rng *rand.Rand) (outcome, int) {
		items, reads := gen(rng)
		ints := make([]int, len(items))
		for i, it := range items {
			ints[i] = int(it)
		}
		body, _ := json.Marshal(jsonReq{
			Items: ints, Reads: reads,
			Compute:  float64(o.compute) / float64(time.Millisecond),
			Deadline: float64(o.deadline) / float64(time.Millisecond),
		})
		resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			// HTTP gives no not-sent proof, so every transport failure is
			// ambiguous.
			jn.record(0, outError)
			return outError, 0
		}
		defer resp.Body.Close()
		hint, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		var jr jsonResp
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			out := outError
			if resp.StatusCode == http.StatusBadRequest {
				out = outInvalid
			}
			jn.record(0, out)
			return out, 0
		}
		out := outError
		switch jr.State {
		case "committed":
			out = outCommitted
			if jr.Missed {
				out = outMissed
			}
		case "rejected":
			out = outRejected
		case "shed":
			out = outShed
		case "dropped":
			out = outDropped
		default:
			hint = 0
		}
		jn.record(jr.WALSeq, out)
		switch out {
		case outRejected, outShed:
			return out, hint
		}
		return out, 0
	}
	return fn, tr.CloseIdleConnections, nil
}

func record(tl *tally, out outcome, d time.Duration) {
	tl.sent.Add(1)
	if out != outError && out != outShed {
		tl.observe(d)
	}
	switch out {
	case outCommitted:
		tl.committed.Add(1)
	case outMissed:
		tl.committed.Add(1)
		tl.missed.Add(1)
	case outRejected:
		tl.rejected.Add(1)
	case outShed:
		tl.shed.Add(1)
	case outDropped:
		tl.dropped.Add(1)
	case outInvalid:
		tl.invalid.Add(1)
	case outErrUnsent:
		tl.errors.Add(1)
		tl.abandonedUnsent.Add(1)
	default:
		tl.errors.Add(1)
		tl.abandonedAmbiguous.Add(1)
	}
}

// runClosed: -workers synchronous loops until the clock runs out.
func runClosed(o *loadOptions, tl *tally, submit submitFn) {
	stop := time.Now().Add(o.duration)
	var wg sync.WaitGroup
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.seed + int64(w)*7919))
			for time.Now().Before(stop) {
				t0 := time.Now()
				out, _ := submit(rng)
				record(tl, out, time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
}

// runOpen: Poisson arrivals at -rate; each arrival gets its own
// goroutine so a slow server never slows the arrival process down
// (bounded by -max-outstanding, beyond which arrivals count as
// overflow instead of silently stretching inter-arrival gaps).
func runOpen(o *loadOptions, tl *tally, submit submitFn) {
	stop := time.Now().Add(o.duration)
	rng := rand.New(rand.NewSource(o.seed))
	sem := make(chan struct{}, o.maxOut)
	var wg sync.WaitGroup
	var seq int64
	for {
		now := time.Now()
		if !now.Before(stop) {
			break
		}
		// Exponential inter-arrival gap for a Poisson process.
		gap := time.Duration(rng.ExpFloat64() / o.rate * float64(time.Second))
		time.Sleep(gap)
		if !time.Now().Before(stop) {
			break
		}
		select {
		case sem <- struct{}{}:
		default:
			tl.overflow.Add(1)
			continue
		}
		seq++
		wg.Add(1)
		go func(seq int64) {
			defer wg.Done()
			defer func() { <-sem }()
			wrng := rand.New(rand.NewSource(o.seed ^ seq*2654435761))
			t0 := time.Now()
			out, _ := submit(wrng)
			record(tl, out, time.Since(t0))
		}(seq)
	}
	wg.Wait()
}

func buildReport(o *loadOptions, tl *tally, elapsed time.Duration) Report {
	rep := Report{
		Proto:              o.proto,
		Mode:               o.mode,
		Duration:           elapsed.Seconds(),
		Sent:               tl.sent.Load(),
		Committed:          tl.committed.Load(),
		Missed:             tl.missed.Load(),
		Rejected:           tl.rejected.Load(),
		Shed:               tl.shed.Load(),
		Dropped:            tl.dropped.Load(),
		Invalid:            tl.invalid.Load(),
		Errors:             tl.errors.Load(),
		Overflow:           tl.overflow.Load(),
		Retried:            tl.retried.Load(),
		AbandonedUnsent:    tl.abandonedUnsent.Load(),
		AbandonedAmbiguous: tl.abandonedAmbiguous.Load(),
	}
	rep.Abandoned = tl.abandoned.Load() + rep.AbandonedUnsent + rep.AbandonedAmbiguous
	if o.mode == "open" {
		rep.TargetRate = o.rate
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.Sent) / elapsed.Seconds()
	}
	tl.mu.Lock()
	if tl.hist.Count() > 0 {
		rep.P50Ms = tl.hist.Quantile(0.50)
		rep.P95Ms = tl.hist.Quantile(0.95)
		rep.P99Ms = tl.hist.Quantile(0.99)
		rep.MaxMs = tl.hist.Max()
		rep.MeanMs = tl.hist.Mean()
	}
	tl.mu.Unlock()
	rep.round()
	return rep
}

// round trims float noise for stable, readable reports.
func (r *Report) round() {
	f := func(v float64) float64 { return math.Round(v*1000) / 1000 }
	r.Duration = f(r.Duration)
	r.Throughput = f(r.Throughput)
	r.P50Ms = f(r.P50Ms)
	r.P95Ms = f(r.P95Ms)
	r.P99Ms = f(r.P99Ms)
	r.MaxMs = f(r.MaxMs)
	r.MeanMs = f(r.MeanMs)
}

func printText(w io.Writer, r Report) {
	fmt.Fprintf(w, "rtload: %s/%s %.1fs", r.Proto, r.Mode, r.Duration)
	if r.TargetRate > 0 {
		fmt.Fprintf(w, " (target %.0f rps)", r.TargetRate)
	}
	fmt.Fprintf(w, "\n  sent %d (%.0f rps)\n", r.Sent, r.Throughput)
	type line struct {
		name string
		n    int64
	}
	lines := []line{
		{"committed", r.Committed}, {"missed", r.Missed}, {"rejected", r.Rejected},
		{"shed", r.Shed}, {"dropped", r.Dropped}, {"invalid", r.Invalid},
		{"errors", r.Errors}, {"overflow", r.Overflow},
		{"retried", r.Retried}, {"abandoned", r.Abandoned},
		{"abandoned_unsent", r.AbandonedUnsent},
		{"abandoned_ambiguous", r.AbandonedAmbiguous},
	}
	sort.SliceStable(lines, func(i, j int) bool { return lines[i].n > lines[j].n })
	for _, l := range lines {
		if l.n > 0 {
			fmt.Fprintf(w, "  %-19s %d\n", l.name, l.n)
		}
	}
	if r.P50Ms > 0 || r.MaxMs > 0 {
		fmt.Fprintf(w, "  latency ms: p50 %.3f  p95 %.3f  p99 %.3f  max %.3f  mean %.3f\n",
			r.P50Ms, r.P95Ms, r.P99Ms, r.MaxMs, r.MeanMs)
	}
}
