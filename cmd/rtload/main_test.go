package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/wal"
)

// startServer brings up an in-process dual-protocol server on loopback
// and returns the two addresses.
func startServer(t *testing.T) (httpAddr, wireAddr string) {
	t.Helper()
	srv, err := server.New(server.Options{
		Core:    core.MainMemoryConfig(core.CCA, 17),
		Service: core.ServiceOptions{Speed: 5000},
	})
	if err != nil {
		t.Fatal(err)
	}
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wireLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeListeners(ctx, httpLn, wireLn) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Error("server did not shut down")
		}
	})
	return httpLn.Addr().String(), wireLn.Addr().String()
}

func runLoad(t *testing.T, args ...string) (Report, string) {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("rtload exited %d: %s", code, errb.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, out.String())
	}
	return rep, errb.String()
}

func TestClosedLoopBothProtocols(t *testing.T) {
	httpAddr, wireAddr := startServer(t)
	for _, tc := range []struct{ proto, target string }{
		{"json", httpAddr},
		{"wire", wireAddr},
	} {
		rep, _ := runLoad(t,
			"-target", tc.target, "-proto", tc.proto,
			"-mode", "closed", "-workers", "4", "-duration", "400ms",
			"-compute", "50us", "-deadline", "2s", "-report", "json")
		if rep.Proto != tc.proto || rep.Mode != "closed" {
			t.Fatalf("%s: report header %+v", tc.proto, rep)
		}
		if rep.Sent == 0 || rep.Committed == 0 {
			t.Fatalf("%s: nothing committed: %+v", tc.proto, rep)
		}
		if rep.Errors > 0 {
			t.Fatalf("%s: client errors: %+v", tc.proto, rep)
		}
		if rep.P99Ms <= 0 || rep.MaxMs < rep.P50Ms {
			t.Fatalf("%s: latency histogram incoherent: %+v", tc.proto, rep)
		}
	}
}

func TestOpenLoopTracksRate(t *testing.T) {
	_, wireAddr := startServer(t)
	rep, _ := runLoad(t,
		"-target", wireAddr, "-proto", "wire",
		"-mode", "open", "-rate", "300", "-duration", "600ms",
		"-compute", "50us", "-deadline", "2s", "-report", "json")
	if rep.TargetRate != 300 {
		t.Fatalf("target rate not reported: %+v", rep)
	}
	if rep.Sent == 0 || rep.Committed == 0 {
		t.Fatalf("nothing committed: %+v", rep)
	}
	// Poisson at 300/s for 0.6s: expect on the order of 180 arrivals;
	// anything within a loose 3x band proves the pacer is pacing rather
	// than free-running or stalling.
	if rep.Sent < 60 || rep.Sent > 540 {
		t.Fatalf("open loop sent %d requests at rate 300 over 600ms, outside [60,540]", rep.Sent)
	}
}

func TestTextReport(t *testing.T) {
	httpAddr, _ := startServer(t)
	var out, errb bytes.Buffer
	code := run([]string{
		"-target", httpAddr, "-proto", "json",
		"-mode", "closed", "-workers", "2", "-duration", "200ms",
		"-compute", "50us", "-deadline", "2s"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	text := out.String()
	for _, want := range []string{"rtload: json/closed", "sent ", "committed", "latency ms: p50"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text report missing %q:\n%s", want, text)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-proto", "carrier-pigeon"},
		{"-mode", "sideways"},
		{"-items", "0"},
		{"-items", "50", "-dbsize", "30"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Fatalf("args %v: exit %d, want 2 (stderr: %s)", args, code, errb.String())
		}
	}
}

func TestConnectFailure(t *testing.T) {
	// A port nothing listens on: wire fails at dial time, json fails
	// per-request; both must exit nonzero without hanging.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	var out, errb bytes.Buffer
	if code := run([]string{"-target", dead, "-proto", "wire", "-duration", "100ms"}, &out, &errb); code != 1 {
		t.Fatalf("wire dial to dead port: exit %d, want 1", code)
	}
	out.Reset()
	errb.Reset()
	code := run([]string{"-target", dead, "-proto", "json", "-mode", "closed",
		"-workers", "1", "-duration", "100ms", "-report", "json"}, &out, &errb)
	if code != 1 {
		t.Fatalf("json to dead port: exit %d, want 1\n%s", code, out.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep.Errors == 0 {
		t.Fatalf("expected errors counted: %+v", rep)
	}
}

// TestOverloadIsShedNotQueued: drive an open loop well past a tiny
// server's capacity and check the surplus comes back as shed (the fast
// 503 / StatusShed path), not as errors or unbounded latency.
func TestOverloadIsShedNotQueued(t *testing.T) {
	srv, err := server.New(server.Options{
		Core:        core.MainMemoryConfig(core.CCA, 23),
		Service:     core.ServiceOptions{Speed: 50},
		MaxInflight: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	wireLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeListeners(ctx, httpLn, wireLn) }()
	defer func() {
		cancel()
		<-done
	}()

	rep, _ := runLoad(t,
		"-target", wireLn.Addr().String(), "-proto", "wire", "-conns", "2",
		"-mode", "open", "-rate", "2000", "-duration", "500ms",
		"-compute", "20ms", "-deadline", "100ms", "-report", "json")
	if rep.Sent < 100 {
		t.Fatalf("open loop barely ran: %+v", rep)
	}
	answered := rep.Committed + rep.Missed + rep.Rejected + rep.Shed + rep.Dropped
	if answered == 0 {
		t.Fatalf("no answers at all: %+v", rep)
	}
	if rep.Errors > rep.Sent/10 {
		t.Fatalf("overload produced errors, not shedding: %+v", rep)
	}
	t.Logf("overload report: %s", fmt.Sprintf("%+v", rep))
}

// TestRetryHonorsOverloadSignal: a stub that sheds each worker's first
// attempt with a Retry-After hint must see the loader come back — the
// request is resubmitted after backoff and counted as retried, not
// abandoned. A stub that always sheds exhausts the budget and the
// request lands in abandoned.
func TestRetryHonorsOverloadSignal(t *testing.T) {
	var hits atomic.Int64
	shedFirst := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"state":"shed"}`)
			return
		}
		fmt.Fprint(w, `{"state":"committed"}`)
	}))
	defer shedFirst.Close()

	rep, _ := runLoad(t,
		"-target", strings.TrimPrefix(shedFirst.URL, "http://"), "-proto", "json",
		"-mode", "closed", "-workers", "1", "-duration", "200ms",
		"-retries", "2", "-retry-max", "50ms", "-report", "json")
	if rep.Retried == 0 {
		t.Fatalf("shed answer was not retried: %+v", rep)
	}
	if rep.Abandoned != 0 {
		t.Fatalf("recovered request counted abandoned: %+v", rep)
	}
	if rep.Committed == 0 {
		t.Fatalf("no commits after retry: %+v", rep)
	}

	alwaysShed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"state":"shed"}`)
	}))
	defer alwaysShed.Close()

	rep, _ = runLoad(t,
		"-target", strings.TrimPrefix(alwaysShed.URL, "http://"), "-proto", "json",
		"-mode", "closed", "-workers", "1", "-duration", "150ms",
		"-retries", "1", "-retry-max", "20ms", "-report", "json")
	if rep.Abandoned == 0 || rep.Shed == 0 {
		t.Fatalf("persistent overload not abandoned: %+v", rep)
	}
	if rep.Retried < rep.Abandoned {
		t.Fatalf("each abandoned request should have burned its retry budget: %+v", rep)
	}
}

// TestJournalRecordsAcks drives a WAL-enabled server with -journal set
// and checks the client-side half of crash reconciliation: one JSONL
// line per attempt, every committed ack carrying a distinct server WAL
// sequence, and the abandoned split present (and zero) on a healthy run.
func TestJournalRecordsAcks(t *testing.T) {
	srv, err := server.New(server.Options{
		Core:    core.MainMemoryConfig(core.CCA, 17),
		Service: core.ServiceOptions{Speed: 5000},
		WALFS:   wal.NewMemFS(),
	})
	if err != nil {
		t.Fatal(err)
	}
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wireLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeListeners(ctx, httpLn, wireLn) }()
	defer func() {
		cancel()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Error("server did not shut down")
		}
	}()

	for _, tc := range []struct{ proto, target string }{
		{"wire", wireLn.Addr().String()},
		{"json", httpLn.Addr().String()},
	} {
		path := filepath.Join(t.TempDir(), "journal.jsonl")
		rep, _ := runLoad(t,
			"-target", tc.target, "-proto", tc.proto,
			"-mode", "closed", "-workers", "4", "-duration", "300ms",
			"-compute", "50us", "-deadline", "2s",
			"-report", "json", "-journal", path)
		if rep.Committed == 0 {
			t.Fatalf("%s: nothing committed: %+v", tc.proto, rep)
		}
		if rep.AbandonedUnsent != 0 || rep.AbandonedAmbiguous != 0 {
			t.Fatalf("%s: abandoned on a healthy run: %+v", tc.proto, rep)
		}

		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		type entry struct {
			Seq     uint64 `json:"seq"`
			Outcome string `json:"outcome"`
		}
		var lines int64
		var committed int64
		seen := make(map[uint64]bool)
		for _, raw := range bytes.Split(bytes.TrimSpace(b), []byte("\n")) {
			var e entry
			if err := json.Unmarshal(raw, &e); err != nil {
				t.Fatalf("%s: bad journal line %q: %v", tc.proto, raw, err)
			}
			lines++
			switch e.Outcome {
			case "committed", "missed":
				committed++
				if e.Seq == 0 {
					t.Fatalf("%s: committed ack without a WAL seq: %q", tc.proto, raw)
				}
				if seen[e.Seq] {
					t.Fatalf("%s: WAL seq %d acked twice", tc.proto, e.Seq)
				}
				seen[e.Seq] = true
			}
		}
		// One line per attempt: requests plus the extra retry attempts.
		if want := rep.Sent + rep.Retried; lines != want {
			t.Fatalf("%s: %d journal lines, want sent+retried = %d (%+v)", tc.proto, lines, want, rep)
		}
		if committed != rep.Committed {
			t.Fatalf("%s: %d committed journal lines, report says %d", tc.proto, committed, rep.Committed)
		}
	}
}
