// Command rtserve runs the CCA engine as a wall-clock transaction service
// behind an HTTP/JSON front-end.
//
// Clients POST transaction requests (access list, per-item compute, a
// relative deadline) to /submit and get back commit/abort/missed-deadline
// plus the engine-clock timings. The service degrades gracefully under
// overload: the admission controller turns infeasible arrivals into fast
// 503s with Retry-After, the inflight bound sheds excess concurrency
// before it queues, departed clients have their transactions wounded, and
// SIGTERM/SIGINT drain the service — new work is refused, in-flight
// transactions finish or are wounded at the drain deadline, and the final
// metrics snapshot is flushed to stderr.
//
// Usage examples:
//
//	rtserve -addr :8344
//	rtserve -policy cca -admission reject-infeasible -oracle
//	rtserve -disk -drain-timeout 10s -max-inflight 512
//
//	curl -s localhost:8344/submit -d '{"items":[3,17],"compute":"1ms","deadline":"50ms"}'
//	curl -s localhost:8344/metrics
//	curl -s localhost:8344/healthz
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/wal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, serves until a signal
// or an engine failure, and returns the process exit code (0 clean drain,
// 1 runtime/engine error, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8344", "listen address")
		policy    = fs.String("policy", "cca", "scheduling policy: cca, cca-p, cca-t, edf-hp, edf-wp, lsf-hp, fcfs")
		disk      = fs.Bool("disk", false, "disk-resident configuration (Table 2) instead of main memory (Table 1)")
		dbsize    = fs.Int("dbsize", 0, "database size (0 = paper default)")
		cpus      = fs.Int("cpus", 1, "number of CPUs")
		weight    = fs.Float64("weight", 1, "CCA penalty-weight w")
		seed      = fs.Int64("seed", 1, "engine seed (disk service times)")
		admission = fs.String("admission", "reject-infeasible", "admission mode: reject-newest, reject-infeasible or admit-all (load shedding)")
		admMax    = fs.Int("admission-max", 0, "live-set cap for the admission controller (required for reject-newest)")

		wireAddr    = fs.String("wire-addr", "", "optional listen address for the binary wire protocol (internal/wire); empty disables it")
		maxInflight = fs.Int("max-inflight", 0, "bound on concurrently admitted HTTP submissions (0 = default 256); past it the server sheds")
		drain       = fs.Duration("drain-timeout", 5*time.Second, "graceful-shutdown budget for in-flight transactions before they are wounded")
		readTO      = fs.Duration("read-timeout", 15*time.Second, "HTTP read timeout (slow-client guard)")
		writeTO     = fs.Duration("write-timeout", 15*time.Second, "HTTP write timeout (slow-client guard)")
		speed       = fs.Float64("speed", 1, "simulated seconds per wall second (>1 compresses engine time; for demos and tests)")
		oracle      = fs.Bool("oracle", false, "run under the live safety oracle: a violated paper invariant fails /healthz and stops the service")
		shards      = fs.Int("shards", 1, "engine shards (item i lives on shard i%N); single-shard submissions route directly, cross-shard ones batch at epoch boundaries")
		epoch       = fs.Duration("epoch", 0, "cross-shard epoch interval in simulated time (0 = default; only with -shards > 1)")
		supervise   = fs.Bool("supervise", false, "contain shard-driver failures: a panicking shard fails its inflight transactions and degrades /healthz instead of killing the process")
		restart     = fs.Bool("restart-shards", false, "with -supervise: replace a failed shard with a fresh engine (up to -max-restarts times)")
		maxRestarts = fs.Int("max-restarts", 0, "with -restart-shards: per-shard restart budget (0 = default)")
		wireIdle    = fs.Duration("wire-idle-timeout", 0, "close wire connections idle between frames for this long (slow-loris guard; 0 = default, negative disables)")

		walDir     = fs.String("wal-dir", "", "directory for the durable submission log; empty disables durability")
		walSync    = fs.Duration("wal-sync", 0, "WAL group-commit coalescing interval; 0 (the default) fsyncs as soon as appends are pending, so batches grow only under load")
		walSegment = fs.Int64("wal-segment", 0, "WAL segment rotation size in bytes (0 = default 64MiB)")
		walRetain  = fs.Int("wal-retain", 0, "fully-resolved WAL segments to keep before deletion (0 = default)")
		recoverWAL = fs.Bool("recover", false, "replay unresolved WAL submissions through the engine at startup (requires -wal-dir); without it they are resolved as aborted")
		walDump    = fs.Bool("wal-dump", false, "scan the WAL at -wal-dir, print every record as JSON lines plus a summary, and exit")

		predScale = fs.Float64("predict-scale", -1, "cca-p/cca-t: observed-conflict-rate penalty scale (-1 = default)")
		predDecay = fs.Float64("predict-decay", -1, "cca-p/cca-t: per-window statistics decay in [0,1] (-1 = default)")
		feedback  = fs.Int("feedback", 0, "cca-t: terminal decisions per tuner feedback window (0 = default)")
		tunerStep = fs.Float64("tuner-step", 0, "cca-t: initial hill-climb step for the penalty weight (0 = default)")
		tunerMax  = fs.Float64("tuner-max", 0, "cca-t: upper clamp for the tuned weight (0 = default)")
		epsilon   = fs.Float64("epsilon", 0, "cca-t: ε-greedy exploration probability")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *walDump {
		return dumpWAL(*walDir, stdout, stderr)
	}
	if *recoverWAL && *walDir == "" {
		fmt.Fprintln(stderr, "rtserve: -recover requires -wal-dir")
		return 2
	}

	var cfg core.Config
	if *disk {
		cfg = core.DiskConfig(core.PolicyKind(*policy), *seed)
	} else {
		cfg = core.MainMemoryConfig(core.PolicyKind(*policy), *seed)
	}
	cfg.PenaltyWeight = *weight
	cfg.NumCPUs = *cpus
	if *dbsize > 0 {
		cfg.Workload.DBSize = *dbsize
	}
	mode := core.AdmissionMode(*admission)
	if *admission == "admit-all" {
		mode = core.AdmitAll
	}
	cfg.Admission = core.AdmissionConfig{Mode: mode, MaxLive: *admMax}
	if cfg.Policy == core.CCAP || cfg.Policy == core.CCAT {
		p := core.DefaultPredictConfig()
		if *predScale >= 0 {
			p.RateScale = *predScale
		}
		if *predDecay >= 0 {
			p.Decay = *predDecay
		}
		if *feedback > 0 {
			p.FeedbackWindow = *feedback
		}
		if *tunerStep > 0 {
			p.TunerStep = *tunerStep
		}
		if *tunerMax > 0 {
			p.TunerMax = *tunerMax
		}
		p.Epsilon = *epsilon
		cfg.Predict = p
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(stderr, "rtserve: %v\n", err)
		return 2
	}

	srv, err := server.New(server.Options{
		Core:    cfg,
		Service: core.ServiceOptions{Speed: *speed, Oracle: *oracle},
		Shards:  *shards,
		Epoch:   *epoch,
		Supervise: shard.SuperviseOptions{
			Enabled:     *supervise,
			Restart:     *restart,
			MaxRestarts: *maxRestarts,
		},
		MaxInflight:     *maxInflight,
		DrainTimeout:    *drain,
		ReadTimeout:     *readTO,
		WriteTimeout:    *writeTO,
		WireIdleTimeout: *wireIdle,
		WALDir:          *walDir,
		WALSync:         *walSync,
		WALSegmentBytes: *walSegment,
		WALRetain:       *walRetain,
		Recover:         *recoverWAL,
	})
	if err != nil {
		fmt.Fprintf(stderr, "rtserve: %v\n", err)
		return 1
	}
	if rec := srv.Recovery(); rec != nil {
		fmt.Fprintf(stderr, "rtserve: wal: scanned %d segments, %d records, %d unresolved (truncated=%v)\n",
			rec.Segments, rec.Records, len(rec.Unresolved), rec.Truncated)
		if len(rec.Unresolved) > 0 && !*recoverWAL {
			fmt.Fprintf(stderr, "rtserve: wal: resolving %d unresolved submissions as aborted (run with -recover to replay them)\n", len(rec.Unresolved))
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "rtserve: %v\n", err)
		return 1
	}
	var wireLn net.Listener
	if *wireAddr != "" {
		wireLn, err = net.Listen("tcp", *wireAddr)
		if err != nil {
			ln.Close()
			fmt.Fprintf(stderr, "rtserve: %v\n", err)
			return 1
		}
	}

	// SIGINT/SIGTERM start the graceful drain; a second signal kills the
	// process the usual way (the handler is reset once ctx fires).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(stderr, "rtserve: serving %s policy on %s (admission %s, drain %v)\n",
		*policy, ln.Addr(), orDefault(*admission, "admit-all"), *drain)
	if wireLn != nil {
		fmt.Fprintf(stderr, "rtserve: wire protocol on %s\n", wireLn.Addr())
	}

	serveErr := srv.ServeListeners(ctx, ln, wireLn)
	stop()

	if srv.WAL() != nil {
		ws := srv.WAL().Stats()
		rs := srv.ReplayStats()
		fmt.Fprintf(stderr, "rtserve: wal: %d submits, %d outcomes, %d syncs, %d unresolved; replay replayed=%d aborted=%d failed=%d\n",
			ws.Submits, ws.Outcomes, ws.Syncs, ws.Unresolved, rs.Replayed, rs.Aborted, rs.Failed)
	}

	// Flush the final metrics snapshot taken during drain.
	if st, ok := srv.Final(); ok {
		r := st.Result
		fmt.Fprintf(stderr, "rtserve: drained: committed=%d dropped=%d rejected=%d miss=%.1f%% mean_response=%.2fms restarts/txn=%.3f\n",
			r.Committed, r.Dropped, r.Rejected, r.MissPercent, r.MeanResponseMs, r.RestartsPerTxn)
	}
	if serveErr != nil {
		fmt.Fprintf(stderr, "rtserve: %v\n", serveErr)
		return 1
	}
	fmt.Fprintln(stderr, "rtserve: shutdown complete")
	return 0
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// dumpWAL scans the log at dir read-only and prints every valid record
// as one JSON object per line on stdout — submits, outcomes, then a
// final {"type":"summary",...} line carrying the scan totals. The
// crash-soak harness reconciles this output against rtload's
// client-side outcome journal.
func dumpWAL(dir string, stdout, stderr io.Writer) int {
	if dir == "" {
		fmt.Fprintln(stderr, "rtserve: -wal-dump requires -wal-dir")
		return 2
	}
	fsys, err := wal.NewDirFS(dir)
	if err != nil {
		fmt.Fprintf(stderr, "rtserve: %v\n", err)
		return 1
	}
	type submitLine struct {
		Type        string  `json:"type"`
		Seq         uint64  `json:"seq"`
		Items       []int32 `json:"items"`
		ComputeMs   float64 `json:"compute_ms"`
		DeadlineMs  float64 `json:"deadline_ms"`
		Criticality int     `json:"criticality,omitempty"`
		Class       int     `json:"class,omitempty"`
	}
	type outcomeLine struct {
		Type     string `json:"type"`
		Seq      uint64 `json:"seq"`
		State    string `json:"state"`
		Missed   bool   `json:"missed"`
		Replayed bool   `json:"replayed,omitempty"`
		Aborted  bool   `json:"aborted,omitempty"`
		Restarts uint32 `json:"restarts,omitempty"`
	}
	msf := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	enc := json.NewEncoder(stdout)
	rec, err := wal.Scan(fsys, func(h wal.Header, sub *wal.SubmitRecord, out *wal.OutcomeRecord) error {
		switch h.Type {
		case wal.RecSubmit:
			return enc.Encode(submitLine{
				Type:        "submit",
				Seq:         sub.Seq,
				Items:       sub.Items,
				ComputeMs:   msf(sub.Compute),
				DeadlineMs:  msf(sub.Deadline),
				Criticality: sub.Criticality,
				Class:       sub.Class,
			})
		case wal.RecOutcome:
			return enc.Encode(outcomeLine{
				Type:     "outcome",
				Seq:      out.Seq,
				State:    core.State(out.State).String(),
				Missed:   out.Missed,
				Replayed: out.Replayed(),
				Aborted:  out.Aborted(),
				Restarts: out.Restarts,
			})
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(stderr, "rtserve: wal scan: %v\n", err)
		return 1
	}
	summary := struct {
		Type string `json:"type"`
		*wal.Recovery
		Unresolved int `json:"unresolved"`
	}{Type: "summary", Recovery: rec, Unresolved: len(rec.Unresolved)}
	if err := enc.Encode(summary); err != nil {
		fmt.Fprintf(stderr, "rtserve: %v\n", err)
		return 1
	}
	return 0
}
