// Command rtserve runs the CCA engine as a wall-clock transaction service
// behind an HTTP/JSON front-end.
//
// Clients POST transaction requests (access list, per-item compute, a
// relative deadline) to /submit and get back commit/abort/missed-deadline
// plus the engine-clock timings. The service degrades gracefully under
// overload: the admission controller turns infeasible arrivals into fast
// 503s with Retry-After, the inflight bound sheds excess concurrency
// before it queues, departed clients have their transactions wounded, and
// SIGTERM/SIGINT drain the service — new work is refused, in-flight
// transactions finish or are wounded at the drain deadline, and the final
// metrics snapshot is flushed to stderr.
//
// Usage examples:
//
//	rtserve -addr :8344
//	rtserve -policy cca -admission reject-infeasible -oracle
//	rtserve -disk -drain-timeout 10s -max-inflight 512
//
//	curl -s localhost:8344/submit -d '{"items":[3,17],"compute":"1ms","deadline":"50ms"}'
//	curl -s localhost:8344/metrics
//	curl -s localhost:8344/healthz
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, serves until a signal
// or an engine failure, and returns the process exit code (0 clean drain,
// 1 runtime/engine error, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8344", "listen address")
		policy    = fs.String("policy", "cca", "scheduling policy: cca, cca-p, cca-t, edf-hp, edf-wp, lsf-hp, fcfs")
		disk      = fs.Bool("disk", false, "disk-resident configuration (Table 2) instead of main memory (Table 1)")
		dbsize    = fs.Int("dbsize", 0, "database size (0 = paper default)")
		cpus      = fs.Int("cpus", 1, "number of CPUs")
		weight    = fs.Float64("weight", 1, "CCA penalty-weight w")
		seed      = fs.Int64("seed", 1, "engine seed (disk service times)")
		admission = fs.String("admission", "reject-infeasible", "admission mode: reject-newest, reject-infeasible or admit-all (load shedding)")
		admMax    = fs.Int("admission-max", 0, "live-set cap for the admission controller (required for reject-newest)")

		wireAddr    = fs.String("wire-addr", "", "optional listen address for the binary wire protocol (internal/wire); empty disables it")
		maxInflight = fs.Int("max-inflight", 0, "bound on concurrently admitted HTTP submissions (0 = default 256); past it the server sheds")
		drain       = fs.Duration("drain-timeout", 5*time.Second, "graceful-shutdown budget for in-flight transactions before they are wounded")
		readTO      = fs.Duration("read-timeout", 15*time.Second, "HTTP read timeout (slow-client guard)")
		writeTO     = fs.Duration("write-timeout", 15*time.Second, "HTTP write timeout (slow-client guard)")
		speed       = fs.Float64("speed", 1, "simulated seconds per wall second (>1 compresses engine time; for demos and tests)")
		oracle      = fs.Bool("oracle", false, "run under the live safety oracle: a violated paper invariant fails /healthz and stops the service")
		shards      = fs.Int("shards", 1, "engine shards (item i lives on shard i%N); single-shard submissions route directly, cross-shard ones batch at epoch boundaries")
		epoch       = fs.Duration("epoch", 0, "cross-shard epoch interval in simulated time (0 = default; only with -shards > 1)")
		supervise   = fs.Bool("supervise", false, "contain shard-driver failures: a panicking shard fails its inflight transactions and degrades /healthz instead of killing the process")
		restart     = fs.Bool("restart-shards", false, "with -supervise: replace a failed shard with a fresh engine (up to -max-restarts times)")
		maxRestarts = fs.Int("max-restarts", 0, "with -restart-shards: per-shard restart budget (0 = default)")
		wireIdle    = fs.Duration("wire-idle-timeout", 0, "close wire connections idle between frames for this long (slow-loris guard; 0 = default, negative disables)")

		predScale = fs.Float64("predict-scale", -1, "cca-p/cca-t: observed-conflict-rate penalty scale (-1 = default)")
		predDecay = fs.Float64("predict-decay", -1, "cca-p/cca-t: per-window statistics decay in [0,1] (-1 = default)")
		feedback  = fs.Int("feedback", 0, "cca-t: terminal decisions per tuner feedback window (0 = default)")
		tunerStep = fs.Float64("tuner-step", 0, "cca-t: initial hill-climb step for the penalty weight (0 = default)")
		tunerMax  = fs.Float64("tuner-max", 0, "cca-t: upper clamp for the tuned weight (0 = default)")
		epsilon   = fs.Float64("epsilon", 0, "cca-t: ε-greedy exploration probability")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var cfg core.Config
	if *disk {
		cfg = core.DiskConfig(core.PolicyKind(*policy), *seed)
	} else {
		cfg = core.MainMemoryConfig(core.PolicyKind(*policy), *seed)
	}
	cfg.PenaltyWeight = *weight
	cfg.NumCPUs = *cpus
	if *dbsize > 0 {
		cfg.Workload.DBSize = *dbsize
	}
	mode := core.AdmissionMode(*admission)
	if *admission == "admit-all" {
		mode = core.AdmitAll
	}
	cfg.Admission = core.AdmissionConfig{Mode: mode, MaxLive: *admMax}
	if cfg.Policy == core.CCAP || cfg.Policy == core.CCAT {
		p := core.DefaultPredictConfig()
		if *predScale >= 0 {
			p.RateScale = *predScale
		}
		if *predDecay >= 0 {
			p.Decay = *predDecay
		}
		if *feedback > 0 {
			p.FeedbackWindow = *feedback
		}
		if *tunerStep > 0 {
			p.TunerStep = *tunerStep
		}
		if *tunerMax > 0 {
			p.TunerMax = *tunerMax
		}
		p.Epsilon = *epsilon
		cfg.Predict = p
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(stderr, "rtserve: %v\n", err)
		return 2
	}

	srv, err := server.New(server.Options{
		Core:    cfg,
		Service: core.ServiceOptions{Speed: *speed, Oracle: *oracle},
		Shards:  *shards,
		Epoch:   *epoch,
		Supervise: shard.SuperviseOptions{
			Enabled:     *supervise,
			Restart:     *restart,
			MaxRestarts: *maxRestarts,
		},
		MaxInflight:     *maxInflight,
		DrainTimeout:    *drain,
		ReadTimeout:     *readTO,
		WriteTimeout:    *writeTO,
		WireIdleTimeout: *wireIdle,
	})
	if err != nil {
		fmt.Fprintf(stderr, "rtserve: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "rtserve: %v\n", err)
		return 1
	}
	var wireLn net.Listener
	if *wireAddr != "" {
		wireLn, err = net.Listen("tcp", *wireAddr)
		if err != nil {
			ln.Close()
			fmt.Fprintf(stderr, "rtserve: %v\n", err)
			return 1
		}
	}

	// SIGINT/SIGTERM start the graceful drain; a second signal kills the
	// process the usual way (the handler is reset once ctx fires).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(stderr, "rtserve: serving %s policy on %s (admission %s, drain %v)\n",
		*policy, ln.Addr(), orDefault(*admission, "admit-all"), *drain)
	if wireLn != nil {
		fmt.Fprintf(stderr, "rtserve: wire protocol on %s\n", wireLn.Addr())
	}

	serveErr := srv.ServeListeners(ctx, ln, wireLn)
	stop()

	// Flush the final metrics snapshot taken during drain.
	if st, ok := srv.Final(); ok {
		r := st.Result
		fmt.Fprintf(stderr, "rtserve: drained: committed=%d dropped=%d rejected=%d miss=%.1f%% mean_response=%.2fms restarts/txn=%.3f\n",
			r.Committed, r.Dropped, r.Rejected, r.MissPercent, r.MeanResponseMs, r.RestartsPerTxn)
	}
	if serveErr != nil {
		fmt.Fprintf(stderr, "rtserve: %v\n", serveErr)
		return 1
	}
	fmt.Fprintln(stderr, "rtserve: shutdown complete")
	return 0
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
