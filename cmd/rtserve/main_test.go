package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuf is a goroutine-safe writer: the server goroutine writes log
// lines while the test polls for them.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestBadFlagExitsUsage: an unknown flag is a usage error.
func TestBadFlagExitsUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestBadPolicyExitsUsage: a config the engine refuses is caught before
// the listener opens.
func TestBadPolicyExitsUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-policy", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, errb.String())
	}
}

var addrRe = regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)

// TestServeSignalDrain boots the server on an ephemeral port, commits one
// transaction over HTTP, sends the process SIGTERM and checks the clean
// drain: exit code 0, the flushed metrics snapshot, and the shutdown
// message.
func TestServeSignalDrain(t *testing.T) {
	var out, errb syncBuf
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-speed", "1000", "-drain-timeout", "2s"}, &out, &errb)
	}()

	// Wait for the serving line and recover the ephemeral address.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := addrRe.FindStringSubmatch(errb.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stderr:\n%s", errb.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(base+"/submit", "application/json",
		strings.NewReader(`{"items":[3,17],"compute":"1ms","deadline":"200ms"}`))
	if err != nil {
		t.Fatalf("POST /submit: %v", err)
	}
	var sub struct {
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || sub.State != "committed" {
		t.Fatalf("submit: status %d state %q, want 200 committed", resp.StatusCode, sub.State)
	}

	// The signal path is the real one: SIGTERM to our own process, caught
	// by the run loop's NotifyContext.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM, want 0; stderr:\n%s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("server did not drain after SIGTERM; stderr:\n%s", errb.String())
	}
	se := errb.String()
	if !strings.Contains(se, "drained: committed=1") {
		t.Errorf("stderr missing flushed metrics snapshot:\n%s", se)
	}
	if !strings.Contains(se, "shutdown complete") {
		t.Errorf("stderr missing shutdown message:\n%s", se)
	}
}
