package trace

import (
	"strings"
	"testing"
	"time"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Arrival: "arrival", Dispatch: "dispatch", Preempt: "preempt",
		Wound: "wound", Block: "block", Wake: "wake",
		IOStart: "io-start", IODone: "io-done", Rollback: "rollback",
		Deadlock: "deadlock", Commit: "commit",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 5 * time.Millisecond, Kind: Wound, Txn: 3, Other: 7, Item: 2}
	s := e.String()
	for _, want := range []string{"5.000ms", "wound", "T3", "T7", "item=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	e2 := Event{Kind: Dispatch, Txn: 1, Other: -1, Item: -1, Secondary: true}
	if !strings.Contains(e2.String(), "(secondary)") {
		t.Error("secondary marker missing")
	}
	if strings.Contains(e2.String(), "item=") {
		t.Error("item rendered despite -1")
	}
}

func TestBufferRecordsInOrder(t *testing.T) {
	var b Buffer
	for i := 0; i < 5; i++ {
		b.Record(Event{Kind: Arrival, Txn: i})
	}
	evs := b.Events()
	if len(evs) != 5 {
		t.Fatalf("len = %d", len(evs))
	}
	for i, e := range evs {
		if e.Txn != i {
			t.Fatalf("order violated at %d", i)
		}
	}
}

func TestBufferFilter(t *testing.T) {
	b := Buffer{Filter: func(e Event) bool { return e.Kind == Wound }}
	b.Record(Event{Kind: Arrival})
	b.Record(Event{Kind: Wound, Txn: 9})
	b.Record(Event{Kind: Commit})
	if len(b.Events()) != 1 || b.Events()[0].Txn != 9 {
		t.Fatalf("filter failed: %v", b.Events())
	}
}

func TestBufferCapacityDropsOldest(t *testing.T) {
	b := Buffer{Cap: 3}
	for i := 0; i < 5; i++ {
		b.Record(Event{Txn: i})
	}
	evs := b.Events()
	if len(evs) != 3 || evs[0].Txn != 2 || evs[2].Txn != 4 {
		t.Fatalf("ring behaviour wrong: %v", evs)
	}
	if b.Dropped() != 2 {
		t.Fatalf("Dropped = %d", b.Dropped())
	}
}

func TestOfKindAndCount(t *testing.T) {
	var b Buffer
	b.Record(Event{Kind: Wound})
	b.Record(Event{Kind: Commit})
	b.Record(Event{Kind: Wound})
	if b.Count(Wound) != 2 || b.Count(Commit) != 1 || b.Count(Deadlock) != 0 {
		t.Fatal("counts wrong")
	}
	if len(b.OfKind(Wound)) != 2 {
		t.Fatal("OfKind wrong")
	}
}
