// Package trace defines the engine's structured event stream: every
// scheduling-relevant transition (arrival, dispatch, preemption, wound,
// block, IO, commit) as a typed event. The test suite uses it to assert
// behavioural properties — e.g. that a wound's victim never outranks its
// wounder (the paper's Lemma 1) — and tools use it for timeline inspection
// without parsing the human-readable trace text.
package trace

import (
	"fmt"
	"time"

	"repro/internal/txn"
)

// Kind enumerates event types.
type Kind int

// Event kinds, in rough lifecycle order.
const (
	Arrival Kind = iota
	Dispatch
	Preempt
	Wound
	Block
	Wake
	IOStart
	IODone
	Rollback
	Deadlock
	Commit
	// Reject marks an arrival turned away by the admission controller.
	Reject
)

var kindNames = [...]string{
	"arrival", "dispatch", "preempt", "wound", "block", "wake",
	"io-start", "io-done", "rollback", "deadlock", "commit", "reject",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one engine transition.
type Event struct {
	// At is the simulated time of the event.
	At time.Duration
	// Kind is the transition type.
	Kind Kind
	// Txn is the primary transaction (the one arriving, dispatched,
	// wounding, blocking, committing, ...).
	Txn int
	// Other is the counterparty (wound victim, blocking holder), or -1.
	Other int
	// Item is the data item involved, or -1.
	Item txn.Item
	// Priority is Txn's priority at the event (0 when not meaningful).
	Priority float64
	// OtherPriority is Other's priority at the event.
	OtherPriority float64
	// Secondary marks a Dispatch that occurred while a higher-priority
	// transaction was blocked (the paper's secondary transaction).
	Secondary bool
}

// String renders the event on one line.
func (e Event) String() string {
	s := fmt.Sprintf("%10.3fms %-9s T%d", float64(e.At)/float64(time.Millisecond), e.Kind, e.Txn)
	if e.Other >= 0 {
		s += fmt.Sprintf(" ↔ T%d", e.Other)
	}
	if e.Item >= 0 {
		s += fmt.Sprintf(" item=%d", e.Item)
	}
	if e.Secondary {
		s += " (secondary)"
	}
	return s
}

// Recorder consumes events.
type Recorder interface {
	Record(Event)
}

// Buffer is an in-memory Recorder with an optional filter and capacity
// bound (0 = unbounded). When full it drops the oldest events.
type Buffer struct {
	Filter  func(Event) bool
	Cap     int
	events  []Event
	dropped int
}

// Record stores the event if it passes the filter.
func (b *Buffer) Record(e Event) {
	if b.Filter != nil && !b.Filter(e) {
		return
	}
	if b.Cap > 0 && len(b.events) >= b.Cap {
		b.events = b.events[1:]
		b.dropped++
	}
	b.events = append(b.events, e)
}

// Events returns the recorded events in order.
func (b *Buffer) Events() []Event { return b.events }

// Dropped returns how many events were evicted by the capacity bound.
func (b *Buffer) Dropped() int { return b.dropped }

// OfKind returns the recorded events of one kind.
func (b *Buffer) OfKind(k Kind) []Event {
	var out []Event
	for _, e := range b.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Count returns the number of recorded events of a kind.
func (b *Buffer) Count(k Kind) int { return len(b.OfKind(k)) }
