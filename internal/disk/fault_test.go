package disk

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// fakeFaults scripts the Faults hook: errs is consumed one entry per
// completion (exhausted = no error).
type fakeFaults struct {
	inflate func(now, base time.Duration) time.Duration
	errs    []bool
	limit   int
	backoff time.Duration
}

func (f *fakeFaults) ServiceTime(now, base time.Duration) time.Duration {
	if f.inflate != nil {
		return f.inflate(now, base)
	}
	return base
}

func (f *fakeFaults) TransientError() bool {
	if len(f.errs) == 0 {
		return false
	}
	e := f.errs[0]
	f.errs = f.errs[1:]
	return e
}

func (f *fakeFaults) RetryPolicy() (int, time.Duration) { return f.limit, f.backoff }

func TestFaultServiceTimeInflation(t *testing.T) {
	s := sim.New()
	d := New(s, 10*ms, FCFS)
	d.SetFaults(&fakeFaults{inflate: func(now, base time.Duration) time.Duration { return 3 * base }})
	var doneAt sim.Time = -1
	d.Submit(&Request{Done: func() { doneAt = s.Now() }})
	s.Run()
	if doneAt != sim.Time(30*ms) {
		t.Fatalf("inflated access completed at %v, want 30ms", doneAt)
	}
	if d.BusyTime() != 30*ms {
		t.Fatalf("BusyTime = %v, want 30ms", d.BusyTime())
	}
}

func TestTransientErrorRetriesWithBackoff(t *testing.T) {
	s := sim.New()
	d := New(s, 10*ms, FCFS)
	d.SetFaults(&fakeFaults{errs: []bool{true, true, false}, limit: 3, backoff: ms})
	var doneAt sim.Time = -1
	r := &Request{Done: func() { doneAt = s.Now() }}
	d.Submit(r)
	s.Run()
	// Service 10, backoff 1, service 10, backoff 2 (exponential), service
	// 10: completion at 33ms.
	if doneAt != sim.Time(33*ms) {
		t.Fatalf("retried access completed at %v, want 33ms", doneAt)
	}
	if r.Failed() {
		t.Fatal("recovered request reported Failed")
	}
	if r.Attempts() != 2 {
		t.Fatalf("Attempts = %d, want 2", r.Attempts())
	}
	if d.Retried() != 2 || d.Failed() != 0 || d.Served() != 1 {
		t.Fatalf("counters = (retried %d, failed %d, served %d), want (2, 0, 1)",
			d.Retried(), d.Failed(), d.Served())
	}
}

func TestPermanentFailureAfterRetryLimit(t *testing.T) {
	s := sim.New()
	d := New(s, 10*ms, FCFS)
	d.SetFaults(&fakeFaults{errs: []bool{true, true, true}, limit: 2, backoff: ms})
	var failed bool
	doneAt := sim.Time(-1)
	r := &Request{}
	r.Done = func() { failed = r.Failed(); doneAt = s.Now() }
	d.Submit(r)
	s.Run()
	if !failed {
		t.Fatal("exhausted request did not report Failed in Done")
	}
	// Two retries (10+1+10+2+10), then the third error exhausts the limit
	// and completes the request failed at 33ms.
	if doneAt != sim.Time(33*ms) {
		t.Fatalf("failed access completed at %v, want 33ms", doneAt)
	}
	if d.Retried() != 2 || d.Failed() != 1 {
		t.Fatalf("counters = (retried %d, failed %d), want (2, 1)", d.Retried(), d.Failed())
	}
}

func TestCancelDuringRetryBackoff(t *testing.T) {
	s := sim.New()
	d := New(s, 10*ms, FCFS)
	d.SetFaults(&fakeFaults{errs: []bool{true}, limit: 3, backoff: 5 * ms})
	done := false
	r := &Request{Done: func() { done = true }}
	d.Submit(r)
	// At 12ms the request sits in its retry backoff (service ended at
	// 10ms, retry due at 15ms): cancellation must remove it for good.
	s.At(sim.Time(12*ms), func() {
		if r.InService() || r.Queued() {
			t.Fatal("request not in retry backoff at 12ms")
		}
		if !d.Cancel(r) {
			t.Fatal("Cancel during retry backoff returned false")
		}
	})
	s.Run()
	if done {
		t.Fatal("cancelled request completed")
	}
	if d.Cancelled() != 1 {
		t.Fatalf("Cancelled = %d, want 1", d.Cancelled())
	}
	if d.Busy() || d.QueueLen() != 0 {
		t.Fatal("disk not idle after cancelled retry")
	}
}

// TestDiskFreeDuringBackoff: a retry backoff releases the disk, so other
// requests are served in the gap and the retried request re-queues behind
// the current service.
func TestDiskFreeDuringBackoff(t *testing.T) {
	s := sim.New()
	d := New(s, 10*ms, FCFS)
	d.SetFaults(&fakeFaults{errs: []bool{true}, limit: 3, backoff: ms})
	var order []string
	d.Submit(&Request{Done: func() { order = append(order, "a") }})
	s.At(sim.Time(5*ms), func() {
		d.Submit(&Request{Done: func() { order = append(order, "b") }})
	})
	s.Run()
	// a errs at 10ms and retries at 11ms, but b seized the disk at 10ms;
	// a re-queues and completes after b: b at 20ms, a at 30ms.
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("completion order = %v, want [b a]", order)
	}
	if d.Served() != 2 || d.Retried() != 1 {
		t.Fatalf("counters = (served %d, retried %d), want (2, 1)", d.Served(), d.Retried())
	}
}
