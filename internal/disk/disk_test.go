package disk

import (
	"testing"
	"time"

	"repro/internal/sim"
)

const ms = time.Millisecond

func TestSingleRequest(t *testing.T) {
	s := sim.New()
	d := New(s, 25*ms, FCFS)
	var doneAt sim.Time = -1
	d.Submit(&Request{Done: func() { doneAt = s.Now() }})
	if !d.Busy() {
		t.Fatal("disk idle right after submit")
	}
	s.Run()
	if doneAt != sim.Time(25*ms) {
		t.Fatalf("completed at %v, want 25ms", doneAt)
	}
	if d.Served() != 1 {
		t.Fatalf("Served = %d", d.Served())
	}
	if d.Busy() {
		t.Fatal("disk busy after drain")
	}
}

func TestFCFSOrder(t *testing.T) {
	s := sim.New()
	d := New(s, 10*ms, FCFS)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		d.Submit(&Request{Done: func() { order = append(order, i) }, Priority: float64(i)})
	}
	if d.QueueLen() != 3 {
		t.Fatalf("QueueLen = %d, want 3", d.QueueLen())
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FCFS order violated: %v", order)
		}
	}
}

func TestPriorityOrder(t *testing.T) {
	s := sim.New()
	d := New(s, 10*ms, Priority)
	var order []int
	// First submit starts service immediately (seizes the idle disk);
	// the rest are reordered by priority.
	prios := []float64{0, 1, 9, 5}
	for i, p := range prios {
		i := i
		d.Submit(&Request{Done: func() { order = append(order, i) }, Priority: p})
	}
	s.Run()
	want := []int{0, 2, 3, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("priority order = %v, want %v", order, want)
		}
	}
}

func TestPriorityTieFIFO(t *testing.T) {
	s := sim.New()
	d := New(s, 10*ms, Priority)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		d.Submit(&Request{Done: func() { order = append(order, i) }, Priority: 1})
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-priority FIFO violated: %v", order)
		}
	}
}

func TestCancelQueuedRequest(t *testing.T) {
	s := sim.New()
	d := New(s, 10*ms, FCFS)
	fired := map[int]bool{}
	var reqs []*Request
	for i := 0; i < 3; i++ {
		i := i
		r := &Request{Done: func() { fired[i] = true }}
		reqs = append(reqs, r)
		d.Submit(r)
	}
	if !d.Cancel(reqs[1]) {
		t.Fatal("Cancel of queued request returned false")
	}
	if d.Cancel(reqs[1]) {
		t.Fatal("second Cancel returned true")
	}
	s.Run()
	if fired[1] {
		t.Fatal("cancelled request completed")
	}
	if !fired[0] || !fired[2] {
		t.Fatal("surviving requests did not complete")
	}
	if d.Cancelled() != 1 {
		t.Fatalf("Cancelled = %d", d.Cancelled())
	}
}

func TestCancelInServiceKeepsDiskBusy(t *testing.T) {
	s := sim.New()
	d := New(s, 10*ms, FCFS)
	firstDone, secondAt := false, sim.Time(-1)
	r1 := &Request{Done: func() { firstDone = true }}
	d.Submit(r1)
	d.Submit(&Request{Done: func() { secondAt = s.Now() }})
	if d.Cancel(r1) {
		t.Fatal("in-service request reported removable")
	}
	s.Run()
	if firstDone {
		t.Fatal("cancelled in-service request invoked Done")
	}
	// Paper §5: a transaction aborted during its IO access "is not deleted
	// until it releases the disk" — the second request starts only at 10ms.
	if secondAt != sim.Time(20*ms) {
		t.Fatalf("second completed at %v, want 20ms", secondAt)
	}
	if d.Served() != 2 {
		t.Fatalf("Served = %d, want 2 (cancelled service still occupies disk)", d.Served())
	}
}

func TestUtilizationAndBusyTime(t *testing.T) {
	s := sim.New()
	d := New(s, 10*ms, FCFS)
	s.At(sim.Time(10*ms), func() {
		d.Submit(&Request{Done: func() {}})
	})
	s.Run()
	s.RunUntil(sim.Time(40 * ms))
	if d.BusyTime() != 10*ms {
		t.Fatalf("BusyTime = %v, want 10ms", d.BusyTime())
	}
	if got := d.Utilization(); got != 0.25 {
		t.Fatalf("Utilization = %v, want 0.25", got)
	}
}

func TestUtilizationAtTimeZero(t *testing.T) {
	s := sim.New()
	d := New(s, 10*ms, FCFS)
	if d.Utilization() != 0 || d.MeanQueueLen() != 0 {
		t.Fatal("zero-time stats should be 0")
	}
}

func TestMidServiceBusyTime(t *testing.T) {
	s := sim.New()
	d := New(s, 10*ms, FCFS)
	d.Submit(&Request{Done: func() {}})
	s.RunUntil(sim.Time(4 * ms))
	if d.BusyTime() != 4*ms {
		t.Fatalf("mid-service BusyTime = %v, want 4ms", d.BusyTime())
	}
}

func TestQueueStats(t *testing.T) {
	s := sim.New()
	d := New(s, 10*ms, FCFS)
	for i := 0; i < 5; i++ {
		d.Submit(&Request{Done: func() {}})
	}
	if d.MaxQueueLen() != 4 {
		t.Fatalf("MaxQueueLen = %d, want 4", d.MaxQueueLen())
	}
	s.Run()
	if d.QueueLen() != 0 {
		t.Fatal("queue not drained")
	}
	if d.MeanQueueLen() <= 0 {
		t.Fatal("MeanQueueLen should be positive after queueing")
	}
}

func TestSubmitTwicePanics(t *testing.T) {
	s := sim.New()
	d := New(s, 10*ms, FCFS)
	r := &Request{Done: func() {}}
	d.Submit(r)
	defer func() {
		if recover() == nil {
			t.Fatal("resubmit did not panic")
		}
	}()
	d.Submit(r)
}

func TestSubmitWithoutDonePanics(t *testing.T) {
	s := sim.New()
	d := New(s, 10*ms, FCFS)
	defer func() {
		if recover() == nil {
			t.Fatal("nil Done did not panic")
		}
	}()
	d.Submit(&Request{})
}

func TestNonPositiveAccessTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero access time did not panic")
		}
	}()
	New(sim.New(), 0, FCFS)
}

func TestRequestStateAccessors(t *testing.T) {
	s := sim.New()
	d := New(s, 10*ms, FCFS)
	r1 := &Request{Done: func() {}}
	r2 := &Request{Done: func() {}}
	d.Submit(r1)
	d.Submit(r2)
	if !r1.InService() || r1.Queued() {
		t.Fatal("r1 state wrong")
	}
	if r2.InService() || !r2.Queued() {
		t.Fatal("r2 state wrong")
	}
	s.Run()
	if r2.InService() || r2.Queued() {
		t.Fatal("completed request still active")
	}
}

func TestDisciplineString(t *testing.T) {
	if FCFS.String() != "fcfs" || Priority.String() != "priority" {
		t.Fatal("Discipline.String wrong")
	}
}

func TestSteadyStreamKeepsFIFOAcrossIdle(t *testing.T) {
	s := sim.New()
	d := New(s, 5*ms, FCFS)
	var order []int
	submit := func(i int, at time.Duration) {
		s.At(sim.Time(at), func() {
			d.Submit(&Request{Done: func() { order = append(order, i) }})
		})
	}
	submit(0, 0)
	submit(1, 2*ms)  // queued behind 0
	submit(2, 20*ms) // after idle gap
	s.Run()
	want := []int{0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}
