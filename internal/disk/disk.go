// Package disk models the single disk of the paper's disk-resident
// configuration (§5): a queueing server with a fixed access time, FCFS
// service order, and the paper's cancellation semantics — a request still in
// the queue when its transaction aborts is removed immediately, while a
// request already in service occupies the disk until it completes.
//
// A priority (EDF-ordered) queue discipline is also provided; the paper
// cites real-time IO scheduling as related work, and the ablation benchmarks
// use it to quantify how much of CCA's win survives a smarter disk.
package disk

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Discipline selects the service order of queued requests.
type Discipline int

const (
	// FCFS serves requests in arrival order (the paper's model).
	FCFS Discipline = iota
	// Priority serves the highest-priority queued request first
	// (ablation; priority is supplied per request, e.g. -deadline).
	Priority
)

// String names the discipline.
func (d Discipline) String() string {
	if d == Priority {
		return "priority"
	}
	return "fcfs"
}

// Request is one disk access.
type Request struct {
	// Done is invoked at completion, in simulated time. It is not called
	// for cancelled requests.
	Done func()
	// Priority orders the queue under the Priority discipline
	// (higher first); ignored under FCFS.
	Priority float64
	// Tag is opaque caller context (the engine stores the transaction).
	Tag any

	seq       uint64
	queued    bool
	inService bool
	cancelled bool
}

// InService reports whether the request is currently being served.
func (r *Request) InService() bool { return r.inService }

// Queued reports whether the request is waiting in the disk queue.
func (r *Request) Queued() bool { return r.queued }

// Disk is a single-server queueing model of a disk.
type Disk struct {
	sim        *sim.Simulator
	accessTime time.Duration
	discipline Discipline

	queue   []*Request
	current *Request
	seq     uint64

	busySince  sim.Time
	busyTotal  time.Duration
	served     int
	cancelled  int
	maxQueue   int
	queuedArea float64 // integral of queue length over time, for stats
	lastChange sim.Time
}

// New returns an idle disk with the given per-access service time.
func New(s *sim.Simulator, accessTime time.Duration, d Discipline) *Disk {
	if accessTime <= 0 {
		panic(fmt.Sprintf("disk: access time %v <= 0", accessTime))
	}
	return &Disk{sim: s, accessTime: accessTime, discipline: d}
}

// AccessTime returns the per-request service time.
func (d *Disk) AccessTime() time.Duration { return d.accessTime }

// Busy reports whether a request is in service.
func (d *Disk) Busy() bool { return d.current != nil }

// QueueLen returns the number of waiting (not in-service) requests.
func (d *Disk) QueueLen() int { return len(d.queue) }

// Served returns the number of completed requests.
func (d *Disk) Served() int { return d.served }

// Cancelled returns the number of requests cancelled while queued.
func (d *Disk) Cancelled() int { return d.cancelled }

// MaxQueueLen returns the high-water mark of the wait queue.
func (d *Disk) MaxQueueLen() int { return d.maxQueue }

// BusyTime returns the cumulative time the disk has spent serving requests.
func (d *Disk) BusyTime() time.Duration {
	t := d.busyTotal
	if d.current != nil {
		t += time.Duration(d.sim.Now() - d.busySince)
	}
	return t
}

// Utilization returns BusyTime divided by elapsed simulated time.
func (d *Disk) Utilization() float64 {
	now := d.sim.Now()
	if now == 0 {
		return 0
	}
	return float64(d.BusyTime()) / float64(now)
}

func (d *Disk) noteQueueChange() {
	now := d.sim.Now()
	d.queuedArea += float64(len(d.queue)) * float64(now-d.lastChange)
	d.lastChange = now
	if len(d.queue) > d.maxQueue {
		d.maxQueue = len(d.queue)
	}
}

// MeanQueueLen returns the time-averaged wait-queue length.
func (d *Disk) MeanQueueLen() float64 {
	now := d.sim.Now()
	if now == 0 {
		return 0
	}
	area := d.queuedArea + float64(len(d.queue))*float64(now-d.lastChange)
	return area / float64(now)
}

// Submit enqueues a request, starting service immediately if the disk is
// idle. Submitting the same request twice, or a request with no Done
// callback, panics.
func (d *Disk) Submit(r *Request) {
	if r.Done == nil {
		panic("disk: request without Done callback")
	}
	if r.queued || r.inService || r.cancelled {
		panic("disk: request resubmitted")
	}
	r.seq = d.seq
	d.seq++
	if d.current == nil {
		d.startService(r)
		return
	}
	d.noteQueueChange()
	r.queued = true
	d.queue = append(d.queue, r)
	if len(d.queue) > d.maxQueue {
		d.maxQueue = len(d.queue)
	}
}

// Cancel removes a request that is still waiting in the queue. It reports
// whether the request was removed; a request in service cannot be cancelled
// (the disk stays busy until it completes, per the paper), but its Done
// callback is suppressed.
func (d *Disk) Cancel(r *Request) bool {
	if r.inService {
		r.cancelled = true // suppress Done; service runs to completion
		return false
	}
	if !r.queued {
		return false
	}
	d.noteQueueChange()
	for i, q := range d.queue {
		if q == r {
			d.queue = append(d.queue[:i], d.queue[i+1:]...)
			break
		}
	}
	r.queued = false
	r.cancelled = true
	d.cancelled++
	return true
}

func (d *Disk) startService(r *Request) {
	r.queued = false
	r.inService = true
	d.current = r
	d.busySince = d.sim.Now()
	d.sim.After(d.accessTime, func() { d.complete(r) })
}

func (d *Disk) complete(r *Request) {
	d.busyTotal += time.Duration(d.sim.Now() - d.busySince)
	r.inService = false
	d.current = nil
	d.served++
	d.startNext()
	if !r.cancelled {
		r.Done()
	}
}

func (d *Disk) startNext() {
	if len(d.queue) == 0 {
		return
	}
	d.noteQueueChange()
	best := 0
	if d.discipline == Priority {
		for i := 1; i < len(d.queue); i++ {
			q, b := d.queue[i], d.queue[best]
			if q.Priority > b.Priority || (q.Priority == b.Priority && q.seq < b.seq) {
				best = i
			}
		}
	}
	r := d.queue[best]
	d.queue = append(d.queue[:best], d.queue[best+1:]...)
	d.startService(r)
}
