// Package disk models the single disk of the paper's disk-resident
// configuration (§5): a queueing server with a fixed access time, FCFS
// service order, and the paper's cancellation semantics — a request still in
// the queue when its transaction aborts is removed immediately, while a
// request already in service occupies the disk until it completes.
//
// A priority (EDF-ordered) queue discipline is also provided; the paper
// cites real-time IO scheduling as related work, and the ablation benchmarks
// use it to quantify how much of CCA's win survives a smarter disk.
package disk

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Discipline selects the service order of queued requests.
type Discipline int

const (
	// FCFS serves requests in arrival order (the paper's model).
	FCFS Discipline = iota
	// Priority serves the highest-priority queued request first
	// (ablation; priority is supplied per request, e.g. -deadline).
	Priority
)

// String names the discipline.
func (d Discipline) String() string {
	if d == Priority {
		return "priority"
	}
	return "fcfs"
}

// Faults is the disk's fault-injection hook (implemented by
// fault.Injector). The disk consults ServiceTime when an access starts
// service (latency spikes, brownouts) and TransientError when it
// completes; a transient error is retried after an exponentially backed
// off delay up to the RetryPolicy limit, after which the request
// completes failed. A nil Faults — the default — leaves the disk's
// behaviour exactly as before.
type Faults interface {
	// ServiceTime maps the nominal access time to the (possibly inflated)
	// actual service time of an access starting at instant now.
	ServiceTime(now, base time.Duration) time.Duration
	// TransientError reports whether the access that just completed
	// failed transiently.
	TransientError() bool
	// RetryPolicy returns the retry limit and the first backoff delay
	// (attempt n waits backoff << (n-1)).
	RetryPolicy() (limit int, backoff time.Duration)
}

// Request is one disk access.
type Request struct {
	// Done is invoked at completion, in simulated time. It is not called
	// for cancelled requests.
	Done func()
	// Priority orders the queue under the Priority discipline
	// (higher first); ignored under FCFS.
	Priority float64
	// Tag is opaque caller context (the engine stores the transaction).
	Tag any

	seq       uint64
	queued    bool
	inService bool
	cancelled bool

	attempts   int // transient-error retries consumed so far
	retryWait  bool
	retryEvent sim.Handle
	failed     bool
}

// InService reports whether the request is currently being served.
func (r *Request) InService() bool { return r.inService }

// Queued reports whether the request is waiting in the disk queue.
func (r *Request) Queued() bool { return r.queued }

// Failed reports whether the request exhausted its transient-error
// retries; its Done callback still runs, and the caller decides what a
// permanently failed access means (the engine aborts the transaction).
func (r *Request) Failed() bool { return r.failed }

// Attempts returns the number of transient-error retries the request
// consumed.
func (r *Request) Attempts() int { return r.attempts }

// Disk is a single-server queueing model of a disk.
type Disk struct {
	sim        *sim.Simulator
	accessTime time.Duration
	discipline Discipline
	faults     Faults

	queue   []*Request
	current *Request
	seq     uint64

	busySince  sim.Time
	busyTotal  time.Duration
	served     int
	cancelled  int
	retried    int
	failed     int
	maxQueue   int
	queuedArea float64 // integral of queue length over time, for stats
	lastChange sim.Time
}

// New returns an idle disk with the given per-access service time.
func New(s *sim.Simulator, accessTime time.Duration, d Discipline) *Disk {
	if accessTime <= 0 {
		panic(fmt.Sprintf("disk: access time %v <= 0", accessTime))
	}
	return &Disk{sim: s, accessTime: accessTime, discipline: d}
}

// SetFaults installs the fault-injection hook. Must be called before any
// request is submitted; nil (the default) disables injection.
func (d *Disk) SetFaults(f Faults) { d.faults = f }

// AccessTime returns the per-request service time.
func (d *Disk) AccessTime() time.Duration { return d.accessTime }

// Busy reports whether a request is in service.
func (d *Disk) Busy() bool { return d.current != nil }

// QueueLen returns the number of waiting (not in-service) requests.
func (d *Disk) QueueLen() int { return len(d.queue) }

// Served returns the number of completed requests.
func (d *Disk) Served() int { return d.served }

// Cancelled returns the number of requests cancelled while queued.
func (d *Disk) Cancelled() int { return d.cancelled }

// Retried returns the number of transient-error retries served.
func (d *Disk) Retried() int { return d.retried }

// Failed returns the number of requests that exhausted their retries.
func (d *Disk) Failed() int { return d.failed }

// MaxQueueLen returns the high-water mark of the wait queue.
func (d *Disk) MaxQueueLen() int { return d.maxQueue }

// BusyTime returns the cumulative time the disk has spent serving requests.
func (d *Disk) BusyTime() time.Duration {
	t := d.busyTotal
	if d.current != nil {
		t += time.Duration(d.sim.Now() - d.busySince)
	}
	return t
}

// Utilization returns BusyTime divided by elapsed simulated time.
func (d *Disk) Utilization() float64 {
	now := d.sim.Now()
	if now == 0 {
		return 0
	}
	return float64(d.BusyTime()) / float64(now)
}

func (d *Disk) noteQueueChange() {
	now := d.sim.Now()
	d.queuedArea += float64(len(d.queue)) * float64(now-d.lastChange)
	d.lastChange = now
	if len(d.queue) > d.maxQueue {
		d.maxQueue = len(d.queue)
	}
}

// MeanQueueLen returns the time-averaged wait-queue length.
func (d *Disk) MeanQueueLen() float64 {
	now := d.sim.Now()
	if now == 0 {
		return 0
	}
	area := d.queuedArea + float64(len(d.queue))*float64(now-d.lastChange)
	return area / float64(now)
}

// Submit enqueues a request, starting service immediately if the disk is
// idle. Submitting the same request twice, or a request with no Done
// callback, panics.
func (d *Disk) Submit(r *Request) {
	if r.Done == nil {
		panic("disk: request without Done callback")
	}
	if r.queued || r.inService || r.cancelled {
		panic("disk: request resubmitted")
	}
	r.seq = d.seq
	d.seq++
	if d.current == nil {
		d.startService(r)
		return
	}
	d.noteQueueChange()
	r.queued = true
	d.queue = append(d.queue, r)
	if len(d.queue) > d.maxQueue {
		d.maxQueue = len(d.queue)
	}
}

// Cancel removes a request that is still waiting in the queue or in a
// retry backoff. It reports whether the request was removed; a request in
// service cannot be cancelled (the disk stays busy until it completes, per
// the paper), but its Done callback is suppressed.
func (d *Disk) Cancel(r *Request) bool {
	if r.inService {
		r.cancelled = true // suppress Done; service runs to completion
		return false
	}
	if r.retryWait {
		d.sim.Cancel(r.retryEvent)
		r.retryWait = false
		r.cancelled = true
		d.cancelled++
		return true
	}
	if !r.queued {
		return false
	}
	d.noteQueueChange()
	for i, q := range d.queue {
		if q == r {
			d.queue = append(d.queue[:i], d.queue[i+1:]...)
			break
		}
	}
	r.queued = false
	r.cancelled = true
	d.cancelled++
	return true
}

func (d *Disk) startService(r *Request) {
	r.queued = false
	r.inService = true
	d.current = r
	d.busySince = d.sim.Now()
	t := d.accessTime
	if d.faults != nil {
		t = d.faults.ServiceTime(d.sim.Now(), t)
	}
	d.sim.After(t, func() { d.complete(r) })
}

func (d *Disk) complete(r *Request) {
	d.busyTotal += time.Duration(d.sim.Now() - d.busySince)
	r.inService = false
	d.current = nil
	// A transient error sends the request into a backed-off retry instead
	// of completing it; the disk itself is free to serve others meanwhile.
	// Cancelled requests never retry — their transaction is gone.
	if d.faults != nil && !r.cancelled && d.faults.TransientError() {
		limit, backoff := d.faults.RetryPolicy()
		if r.attempts < limit {
			r.attempts++
			d.retried++
			req := r
			r.retryWait = true
			r.retryEvent = d.sim.After(backoff<<(r.attempts-1), func() { d.resubmit(req) })
			d.startNext()
			return
		}
		r.failed = true
		d.failed++
	}
	d.served++
	d.startNext()
	if !r.cancelled {
		r.Done()
	}
}

// resubmit re-enters a request after its retry backoff. The request keeps
// its original seq, so under the Priority discipline it retains its age
// tiebreak.
func (d *Disk) resubmit(r *Request) {
	r.retryWait = false
	if r.cancelled {
		return
	}
	if d.current == nil {
		d.startService(r)
		return
	}
	d.noteQueueChange()
	r.queued = true
	d.queue = append(d.queue, r)
	if len(d.queue) > d.maxQueue {
		d.maxQueue = len(d.queue)
	}
}

func (d *Disk) startNext() {
	if len(d.queue) == 0 {
		return
	}
	d.noteQueueChange()
	best := 0
	if d.discipline == Priority {
		for i := 1; i < len(d.queue); i++ {
			q, b := d.queue[i], d.queue[best]
			if q.Priority > b.Priority || (q.Priority == b.Priority && q.seq < b.seq) {
				best = i
			}
		}
	}
	r := d.queue[best]
	d.queue = append(d.queue[:best], d.queue[best+1:]...)
	d.startService(r)
}
