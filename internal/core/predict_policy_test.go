package core

// Tests for the conflict-prediction policies (CCA-P, CCA-T): the anchor
// degenerate-equivalence theorem against stock CCA, the fast-path
// equivalence matrix for the non-degenerate configurations, the runtime
// oracle + serializability checker on random faulted runs, the decision
// tap's contract, and the tuner-convergence statistical regression.

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/fault"
)

// predictOn returns the standard non-degenerate prediction knobs for tests.
func predictOn() PredictConfig {
	return PredictConfig{RateScale: 1, Decay: 0.5}
}

// TestPredictDegenerateEquivalence is the anchor theorem: with any
// degenerate knob — RateScale 0 (prediction term off) or Decay 0 (stats
// retain nothing), plus TunerOff for CCA-T — the prediction policies must
// be bit-identical to stock CCA: same schedule, same metrics, across the
// whole 2×2 naive-scan × naive-dispatch grid.
func TestPredictDegenerateEquivalence(t *testing.T) {
	degenerate := []struct {
		name   string
		policy PolicyKind
		pc     PredictConfig
	}{
		{"ccap-ratescale0", CCAP, PredictConfig{RateScale: 0, Decay: 0.5}},
		{"ccap-decay0", CCAP, PredictConfig{RateScale: 1, Decay: 0}},
		{"ccat-tuneroff-ratescale0", CCAT, PredictConfig{RateScale: 0, Decay: 0.5, TunerOff: true}},
		{"ccat-tuneroff-decay0", CCAT, PredictConfig{RateScale: 1, Decay: 0, TunerOff: true}},
	}
	bases := []struct {
		name string
		cfg  Config
	}{}
	for seed := int64(1); seed <= 3; seed++ {
		cfg := MainMemoryConfig(CCA, seed)
		cfg.Workload.Count = 200
		cfg.Workload.ArrivalRate = 12
		bases = append(bases, struct {
			name string
			cfg  Config
		}{"mm", cfg})
	}
	disk := DiskConfig(CCA, 2)
	disk.Workload.Count = 100
	bases = append(bases, struct {
		name string
		cfg  Config
	}{"disk", disk})
	firm := MainMemoryConfig(CCA, 4)
	firm.Workload.Count = 200
	firm.Workload.ArrivalRate = 14
	firm.FirmDeadlines = true
	bases = append(bases, struct {
		name string
		cfg  Config
	}{"firm", firm})

	grid := []struct{ scan, dispatch bool }{
		{false, false}, {true, false}, {false, true}, {true, true},
	}
	for _, base := range bases {
		for _, g := range grid {
			ref := base.cfg
			ref.Policy = CCA
			ref.NaiveConflictScan = g.scan
			ref.NaiveDispatch = g.dispatch
			ref.CheckInvariants = true
			refSched, refRes := runForEquivalence(t, ref, nil)
			for _, d := range degenerate {
				c := ref
				c.Policy = d.policy
				c.Predict = d.pc
				sched, res := runForEquivalence(t, c, nil)
				if !reflect.DeepEqual(refSched, sched) {
					t.Fatalf("%s/%s (scan=%v dispatch=%v): schedule diverges from stock CCA", base.name, d.name, g.scan, g.dispatch)
				}
				if !reflect.DeepEqual(refRes, res) {
					t.Fatalf("%s/%s (scan=%v dispatch=%v): metrics diverge from stock CCA", base.name, d.name, g.scan, g.dispatch)
				}
			}
		}
	}
}

// TestPredictEquivalenceMatrix holds the non-degenerate prediction
// policies to the fast-path equivalence contract: live statistics, the
// per-term rate scaling, and the tuner must all be bit-identical across
// the naive scan/dispatch grid.
func TestPredictEquivalenceMatrix(t *testing.T) {
	for _, pol := range []PolicyKind{CCAP, CCAT} {
		for seed := int64(1); seed <= 2; seed++ {
			cfg := MainMemoryConfig(pol, seed)
			cfg.Workload.Count = 250
			cfg.Workload.ArrivalRate = 14
			cfg.Predict = predictOn()
			cfg.Predict.FeedbackWindow = 20
			assertEquivalent(t, "predict-"+string(pol), cfg, nil)
		}
		cfg := DiskConfig(pol, 1)
		cfg.Workload.Count = 100
		cfg.Predict = predictOn()
		assertEquivalent(t, "predict-disk-"+string(pol), cfg, nil)

		firm := MainMemoryConfig(pol, 3)
		firm.Workload.Count = 200
		firm.Workload.ArrivalRate = 16
		firm.FirmDeadlines = true
		firm.Predict = predictOn()
		assertEquivalent(t, "predict-firm-"+string(pol), cfg, nil)

		mp := MainMemoryConfig(pol, 4)
		mp.Workload.Count = 200
		mp.Workload.ArrivalRate = 16
		mp.NumCPUs = 2
		mp.Predict = predictOn()
		assertEquivalent(t, "predict-mp-"+string(pol), mp, nil)
	}
}

// TestPredictOracleFaultedRuns: the runtime oracle (Theorem 1, Lemma 1,
// Theorem 2) and the conflict-serializability checker must pass on random
// faulted runs under both prediction policies — the priority assignment
// changed, the correctness results must not.
func TestPredictOracleFaultedRuns(t *testing.T) {
	for _, pol := range []PolicyKind{CCAP, CCAT} {
		for seed := int64(1); seed <= 4; seed++ {
			cfg := MainMemoryConfig(pol, seed)
			cfg.Workload.Count = 150
			cfg.Workload.ArrivalRate = 10
			cfg.Predict = predictOn()
			cfg.Predict.FeedbackWindow = 15
			cfg.Fault = fault.Plan{CPUJitterProb: 0.2, CPUJitterFactor: 2, AbortProb: 0.02}
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			e.EnableOracle()
			if _, err := e.Run(); err != nil {
				t.Fatalf("%v seed %d: oracle failed a faulted run: %v", pol, seed, err)
			}
		}
		// Disk-resident with the full fault plan: IO interleavings are
		// where Theorem 1 bites.
		cfg := DiskConfig(pol, 5)
		cfg.Workload.Count = 100
		cfg.Predict = predictOn()
		cfg.Fault = testPlan()
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.EnableOracle()
		if _, err := e.Run(); err != nil {
			t.Fatalf("%v disk: oracle failed a faulted run: %v", pol, err)
		}
	}
}

// TestPredictRandomFaultedSerializable replays adversarial random
// workloads (clustered items, shared locks, near-zero slack) under both
// prediction policies with history recording and checks conflict
// serializability of every run.
func TestPredictRandomFaultedSerializable(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		pol := CCAP
		if seed%2 == 0 {
			pol = CCAT
		}
		rng := rand.New(rand.NewSource(seed))
		wl := genRandomWorkload(rng, 40, 60, seed%3 == 0)
		cfg := MainMemoryConfig(pol, seed)
		cfg.Workload = wl.Params
		cfg.Predict = predictOn()
		cfg.Fault = fault.Plan{CPUJitterProb: 0.3, CPUJitterFactor: 2, AbortProb: 0.05}
		cfg.RecordHistory = true
		cfg.CheckInvariants = true
		e, err := NewWithWorkload(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatalf("%v seed %d: %v", pol, seed, err)
		}
		if ok, cycle := e.History().Serializable(); !ok {
			t.Fatalf("%v seed %d: history not conflict serializable: cycle %v", pol, seed, cycle)
		}
	}
}

// TestPredictStatsFeed sanity-checks the tap→table plumbing: a contended
// CCA-P run must accumulate live pair statistics, and its snapshot must
// expose them. The config needs two properties: parallel CPUs so commits
// actually see partially-executed peers (a single-CPU main-memory CCA run
// is near-serial and records almost nothing), and a stats ring wide enough
// that the records from the busy phase are still inside the window span
// when the post-drain snapshot is taken.
func TestPredictStatsFeed(t *testing.T) {
	cfg := MainMemoryConfig(CCAP, 1)
	cfg.Workload.Count = 400
	cfg.Workload.ArrivalRate = 12
	cfg.NumCPUs = 2
	cfg.AbortCost = 40 * time.Millisecond
	cfg.RecoveryProportionalFactor = 2
	cfg.Predict = PredictConfig{
		RateScale: 1,
		Decay:     0.9,
		Window:    5 * time.Second,
		Windows:   32,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
	snap, ok := e.PredictSnapshot()
	if !ok {
		t.Fatal("CCAP engine reports no predict snapshot")
	}
	if snap.Policy != CCAP || snap.W != 1 || snap.TunerSteps != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.ActivePairs == 0 || len(snap.TopPairs) == 0 {
		t.Fatalf("contended run accumulated no pair statistics: %+v", snap)
	}
	if snap.Table == nil {
		t.Fatal("snapshot carries no table clone")
	}
	// Non-predictive policies expose nothing.
	cca, err := New(MainMemoryConfig(CCA, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cca.PredictSnapshot(); ok {
		t.Fatal("stock CCA reports a predict snapshot")
	}
	if cca.PredictTable() != nil {
		t.Fatal("stock CCA reports a predict table")
	}
}

// recordingObserver counts decision-tap deliveries.
type recordingObserver struct {
	wounds, blocks, restarts, terminals, commits int
}

func (o *recordingObserver) ObserveWound(*Engine, *Txn, *Txn) { o.wounds++ }
func (o *recordingObserver) ObserveBlock(*Engine, *Txn, *Txn) { o.blocks++ }
func (o *recordingObserver) ObserveRestart(*Engine, *Txn)     { o.restarts++ }
func (o *recordingObserver) ObserveTerminal(_ *Engine, _ *Txn, committed, _ bool) {
	o.terminals++
	if committed {
		o.commits++
	}
}

// TestDecisionObserverDelivery: an explicitly attached observer sees every
// decision class, consistent with the run's own counters, and under a
// waiting policy it sees blocks.
func TestDecisionObserverDelivery(t *testing.T) {
	cfg := MainMemoryConfig(CCA, 1)
	cfg.Workload.Count = 250
	cfg.Workload.ArrivalRate = 14
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs := &recordingObserver{}
	e.SetDecisionObserver(obs)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if obs.restarts != res.Restarts {
		t.Fatalf("observer saw %d restarts, run counted %d", obs.restarts, res.Restarts)
	}
	if obs.commits != res.Committed {
		t.Fatalf("observer saw %d commits, run counted %d", obs.commits, res.Committed)
	}
	if obs.wounds == 0 || obs.wounds != obs.restarts {
		t.Fatalf("CCA: %d wounds vs %d restarts (every restart is a wound here)", obs.wounds, obs.restarts)
	}
	if obs.blocks != 0 {
		t.Fatalf("CCA observed %d blocks (Theorem 1)", obs.blocks)
	}

	cfg.Policy = EDFWP
	e, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs = &recordingObserver{}
	e.SetDecisionObserver(obs)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if obs.blocks == 0 {
		t.Fatal("EDF-WP observed no blocks")
	}
}

// TestObserverAttachmentNeutral: attaching an inert observer must not
// change the schedule — notifications re-clock evaluation, and the
// Staticness contract says a re-evaluation recomputes identical values.
func TestObserverAttachmentNeutral(t *testing.T) {
	for _, pol := range []PolicyKind{CCA, EDFHP, LSFHP} {
		cfg := MainMemoryConfig(pol, 2)
		cfg.Workload.Count = 200
		cfg.Workload.ArrivalRate = 12
		cfg.CheckInvariants = true
		refSched, refRes := runForEquivalence(t, cfg, nil)

		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.SetDecisionObserver(&recordingObserver{})
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		sched := make([]txnOutcome, len(e.all))
		for i, tx := range e.all {
			sched[i] = txnOutcome{State: tx.state, Finish: time.Duration(tx.finish), Restarts: tx.restarts, Secondary: tx.ranAsSecondary}
		}
		if !reflect.DeepEqual(refSched, sched) || !reflect.DeepEqual(refRes, res) {
			t.Fatalf("%v: attaching an inert observer changed the run", pol)
		}
	}
}

// tunerTrajectory runs the CCA-T convergence workload and returns the w
// trajectory and the result.
func tunerTrajectory(t *testing.T, seed int64) ([]float64, interface{}) {
	t.Helper()
	cfg := tunerConvergenceConfig(seed)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := e.PredictSnapshot()
	if !ok {
		t.Fatal("no predict snapshot")
	}
	return snap.WTrajectory, res
}

// tunerConvergenceConfig is a fixed-seed high-contention workload with a
// known-better penalty weight: two CPUs (parallel partially-executed
// holders), an expensive recovery regime (large abort cost plus
// recovery-proportional rollback — §6's "very attractive" case for CCA),
// and overload. Sweeping w by hand gives a steep monotone gradient (seed
// average: 83% missed at w=0 down to 37% at w=4), so w*≈4 and the w=0
// starting point is known-bad. The tuner must climb out of it and hold a
// band around the known-better region.
func tunerConvergenceConfig(seed int64) Config {
	cfg := MainMemoryConfig(CCAT, seed)
	cfg.Workload.Count = 6000
	cfg.Workload.ArrivalRate = 12
	cfg.NumCPUs = 2
	cfg.PenaltyWeight = 0 // deliberately bad starting point
	cfg.AbortCost = 40 * time.Millisecond
	cfg.RecoveryProportionalFactor = 2
	cfg.Predict = PredictConfig{
		RateScale:      1,
		Decay:          0.5,
		FeedbackWindow: 100,
		TunerStep:      0.5,
		TunerMax:       8,
	}
	return cfg
}

// TestTunerConvergenceRegression is the statistical regression harness for
// the self-tuning weight: from the known-bad w=0 the tuned weight must (a)
// leave the degenerate starting point within a bounded number of feedback
// windows, (b) spend the tail of the run inside the tolerance band around
// the known-better region, and (c) produce an identical trajectory on a
// re-run with the same seed regardless of GOMAXPROCS.
func TestTunerConvergenceRegression(t *testing.T) {
	traj, _ := tunerTrajectory(t, 11)
	if len(traj) < 40 {
		t.Fatalf("only %d feedback windows; workload too small for a regression", len(traj))
	}
	// (a) Bounded escape: within the first 20 windows the weight must have
	// moved off the degenerate w=0.
	escaped := false
	for _, w := range traj[:20] {
		if w >= 0.25 {
			escaped = true
			break
		}
	}
	if !escaped {
		t.Fatalf("tuner never left w=0 in the first 20 windows: %v", traj[:20])
	}
	// (b) Tail band: over the last third of the run the tuned weight stays
	// in the tolerance band around the known-better region (positive,
	// bounded — i.e. it neither collapses back to EDF nor pegs the clamp).
	tail := traj[len(traj)-len(traj)/3:]
	const bandLo, bandHi = 1.0, 6.0
	for i, w := range tail {
		if w < bandLo || w > bandHi {
			t.Fatalf("tail window %d: w=%v outside tolerance band [%v, %v]\ntail: %v", i, w, bandLo, bandHi, tail)
		}
	}
	// The tail must average clearly above the starting point, in the
	// neighbourhood of the hand-swept optimum w*≈4.
	var sum float64
	for _, w := range tail {
		sum += w
	}
	if mean := sum / float64(len(tail)); mean < 2.0 {
		t.Fatalf("tail mean w=%v has not converged toward the known-better region\ntail: %v", mean, tail)
	}

	// (c) Determinism: identical seed → identical trajectory, on 1 and
	// many procs.
	prev := runtime.GOMAXPROCS(1)
	traj1, res1 := tunerTrajectory(t, 11)
	runtime.GOMAXPROCS(4)
	traj4, res4 := tunerTrajectory(t, 11)
	runtime.GOMAXPROCS(prev)
	if !reflect.DeepEqual(traj, traj1) || !reflect.DeepEqual(traj, traj4) {
		t.Fatal("w trajectory is not deterministic across re-runs / GOMAXPROCS")
	}
	if !reflect.DeepEqual(res1, res4) {
		t.Fatal("results differ across GOMAXPROCS")
	}
}

// TestTunerEpsilonDeterministic: the ε-greedy variant draws from the run
// seed's named stream, so it is just as reproducible.
func TestTunerEpsilonDeterministic(t *testing.T) {
	run := func() []float64 {
		cfg := tunerConvergenceConfig(7)
		cfg.Workload.Count = 1500
		cfg.Predict.Epsilon = 0.2
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		snap, _ := e.PredictSnapshot()
		return snap.WTrajectory
	}
	a, b := run(), run()
	if len(a) == 0 || !reflect.DeepEqual(a, b) {
		t.Fatalf("ε-greedy trajectories differ (len %d vs %d)", len(a), len(b))
	}
}
