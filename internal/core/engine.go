// Package core implements the paper's real-time transaction processing
// engine: a discrete-event simulation of a single- (or multi-) CPU database
// system executing soft-deadline transactions under a pluggable scheduling
// policy — the paper's Cost Conscious Approach (CCA) or one of the baselines
// (EDF-HP, EDF-WP, LSF-HP, EDF-CR, AED, PCP, FCFS).
//
// The engine follows the paper's model (§3.3):
//
//   - the scheduler is invoked whenever a transaction arrives, the running
//     transaction finishes, or an IO wait occurs; priorities use continuous
//     evaluation — they are refreshed at every scheduling point (for CCA
//     the penalty of conflict changes as partially executed transactions
//     accumulate service time);
//   - on a data conflict the policy either wounds the holders (High
//     Priority: the victim is rolled back at a fixed CPU cost and restarts
//     from scratch with its original deadline) or blocks the requester;
//   - while the highest-priority transaction is blocked on IO, CCA's
//     IOwait-schedule gives the CPU only to ready transactions that do not
//     conflict — even conditionally — with any partially executed
//     transaction, eliminating noncontributing executions;
//   - a transaction wounded while its disk access is in service does not
//     release the disk until the access completes (§5).
package core

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"time"

	"repro/internal/db"
	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/history"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/workload"
)

// negInf marks "no inherited priority".
var negInf = math.Inf(-1)

// Engine executes one simulation run.
type Engine struct {
	cfg    Config
	policy Policy
	sim    *sim.Simulator
	lm     *lock.Manager
	disks  []*disk.Disk // empty for the main-memory configuration
	store  *db.Store
	hist   *history.History // nil unless Config.RecordHistory
	wl     *workload.Workload

	all   []*Txn // every transaction, indexed by ID
	live  []*Txn // arrived, not yet committed, in arrival order
	slots []*Txn // CPU occupants (nil = idle)
	// freeIDs holds retired transaction IDs for reuse (wall-clock service
	// mode only; simulation runs never retire IDs).
	freeIDs []int
	// idsPinned latches recycling off for the engine's lifetime: set the
	// moment any consumer that keys state by transaction ID attaches (the
	// history/oracle, a trace recorder). A latch — not a live check against
	// e.hist/e.rec — so detaching the recorder later cannot silently
	// re-enable reuse of IDs the consumer already indexed.
	idsPinned bool
	// idRecycled records that some retired ID was actually reused; once
	// true, attaching an ID-keyed consumer is an error caught by
	// EnableOracle/SetRecorder (their theorems and event streams assume
	// stable IDs).
	idRecycled bool

	// Incremental dispatch state (unused when Config.NaiveDispatch keeps
	// the original re-sort-everything pass):
	//
	// ranked mirrors live's membership in priority order (best first, per
	// less). It is maintained across scheduling points: arrivals append
	// and mark the order dirty, removals preserve order, and a dispatch
	// pass re-sorts only when some transaction's priority actually changed
	// — for statically-prioritised policies that means no sorting at all
	// after each arrival settles.
	ranked []*Txn
	// orderDirty records that ranked's order is stale (an arrival was
	// appended, or a priority changed since the last sort).
	orderDirty bool
	// poolBuf and desiredBuf are engine-owned scratch for the dispatch
	// pass, reused so steady-state passes allocate nothing.
	poolBuf    []*Txn
	desiredBuf []*Txn
	// passStamp identifies the current dispatch pass; Txn.desiredStamp ==
	// passStamp marks membership in the pass's desired set in O(1).
	passStamp uint64
	// evalMode is the policy's Staticness, downgraded to EvalDynamic when
	// an EvalConflictClocked policy runs without the conflict index (the
	// naive penalty scans have no generation to key staleness on).
	evalMode Staticness

	// ci incrementally tracks might/has overlaps between live
	// transactions so the scheduling hot paths (PenaltyOfConflict, the
	// IOwait-schedule compatibility test, P-list size accounting) avoid
	// rescanning every live transaction; nil when
	// Config.NaiveConflictScan selects the original full scans.
	ci *conflictIndex

	committed int
	dropped   int
	rejected  int
	hasReads  bool // any shared-lock accesses in the workload
	run       metrics.Run
	lastNote  sim.Time

	// Stepped-run state (StartRun/StepTo/FinishRun): the stall watchdog's
	// counters live on the engine so a same-instant burst split across two
	// StepTo calls (an epoch boundary landing mid-instant) is still caught.
	runStarted   bool
	wdStallAt    sim.Time
	wdStallCount int

	inReschedule    bool
	rescheduleAgain bool

	// fault injects the configured fault plan (Config.Fault); nil for the
	// zero plan, so unfaulted runs never touch the fault streams.
	fault *fault.Injector
	// oracle, when non-nil, validates the paper's invariants live
	// (EnableOracle).
	oracle *Oracle

	// trace, when non-nil, receives engine events (tests and examples).
	trace func(format string, args ...any)
	// rec, when non-nil, receives structured events (internal/trace).
	rec trace.Recorder
	// obs, when non-nil, receives scheduler decisions (observer.go). A
	// policy implementing DecisionObserver is attached automatically.
	obs DecisionObserver
}

// New builds an engine for the configuration. The workload is generated
// immediately from cfg.Seed.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	wl, err := workload.GenerateFaulted(cfg.Workload, cfg.Seed, cfg.Fault.Bursts)
	if err != nil {
		return nil, err
	}
	return NewWithWorkload(cfg, wl)
}

// NewWithWorkload builds an engine that executes a caller-supplied workload
// (hand-crafted scenarios, trace replays) instead of generating one from
// cfg.Seed. cfg.Workload still supplies the structural parameters (database
// size, disk access time); each transaction's items must lie in
// [0, DBSize).
func NewWithWorkload(cfg Config, wl *workload.Workload) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if wl == nil || len(wl.Txns) == 0 {
		return nil, fmt.Errorf("core: empty workload")
	}
	return newEngine(cfg, wl)
}

// NewShardEngine is NewWithWorkload for a caller-partitioned shard slice,
// which may be empty: a shard whose only work arrives dynamically (via
// SubmitSpec at epoch boundaries) still needs a fully constructed kernel.
// Everything else — validation, fast paths, fault injection — is identical
// to NewWithWorkload.
func NewShardEngine(cfg Config, wl *workload.Workload) (*Engine, error) {
	if wl == nil {
		wl = &workload.Workload{Params: cfg.Workload}
	}
	return newEngine(cfg, wl)
}

func newEngine(cfg Config, wl *workload.Workload) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for i := range wl.Txns {
		s := &wl.Txns[i]
		if s.ID != i {
			return nil, fmt.Errorf("core: transaction %d has ID %d; IDs must be dense arrival indices", i, s.ID)
		}
		if len(s.Items) == 0 {
			return nil, fmt.Errorf("core: transaction %d accesses no items", i)
		}
		for _, it := range s.Items {
			if int(it) < 0 || int(it) >= cfg.Workload.DBSize {
				return nil, fmt.Errorf("core: transaction %d item %d outside database of size %d", i, it, cfg.Workload.DBSize)
			}
		}
		if i > 0 && s.Arrival < wl.Txns[i-1].Arrival {
			return nil, fmt.Errorf("core: transaction %d arrives before its predecessor", i)
		}
	}
	newSim := sim.New
	if cfg.NaiveDispatch {
		// The naive path keeps the original allocate-per-event calendar
		// so the allocation benchmarks compare against the true baseline;
		// behaviour is identical either way.
		newSim = sim.NewUnpooled
	}
	e := &Engine{
		cfg:    cfg,
		policy: newPolicy(cfg),
		sim:    newSim(),
		lm:     lock.NewManagerSized(cfg.Workload.DBSize, len(wl.Txns)),
		store:  db.New(cfg.Workload.DBSize),
		wl:     wl,
		slots:  make([]*Txn, cfg.NumCPUs),
	}
	if cfg.RecordHistory {
		e.hist = history.New()
	}
	if !cfg.NaiveConflictScan {
		e.ci = newConflictIndex(cfg.Workload.DBSize)
	}
	e.evalMode = e.policy.Staticness()
	if e.evalMode == EvalConflictClocked && e.ci == nil {
		e.evalMode = EvalDynamic
	}
	if o, ok := e.policy.(DecisionObserver); ok {
		e.obs = o
	}
	if !cfg.Fault.Zero() {
		// One shared injector: draws happen in simulation-event order
		// across all disks and transactions, which is what makes a
		// faulted run deterministic and bit-reproducible.
		e.fault = fault.NewInjector(cfg.Seed, cfg.Fault)
	}
	if cfg.Workload.DiskAccessProb > 0 {
		n := cfg.NumDisks
		if n <= 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			d := disk.New(e.sim, cfg.Workload.DiskAccessTime, cfg.DiskDiscipline)
			if e.fault != nil {
				d.SetFaults(e.fault)
			}
			e.disks = append(e.disks, d)
		}
	}
	// The Txn records and their bitsets are carved out of two slab
	// allocations: with thousands of transactions × (might + has [+
	// mightFull]) sets, individual allocations dominate construction cost.
	words := (cfg.Workload.DBSize + 63) / 64
	nsets := 0
	for i := range wl.Txns {
		nsets += 2
		if len(wl.Txns[i].MightFull) > 0 {
			nsets += 1
		}
	}
	slab := make([]uint64, nsets*words)
	carve := func(items []txn.Item) bitset {
		b := bitset(slab[:words:words])
		slab = slab[words:]
		for _, it := range items {
			b.add(it)
		}
		return b
	}
	txns := make([]Txn, len(wl.Txns))
	e.all = make([]*Txn, 0, len(wl.Txns))
	for i := range wl.Txns {
		spec := &wl.Txns[i]
		t := &txns[i]
		t.Spec = spec
		t.might = carve(spec.Items)
		t.has = carve(nil)
		t.cpu = -1
		t.plistIdx = -1
		t.inherited = negInf
		if len(spec.MightFull) > 0 && !cfg.PessimisticAnalysis {
			// Decision-point transaction: until the decision point
			// executes, the scheduler must assume both branches.
			t.mightNarrow = t.might
			t.mightFull = carve(spec.MightFull)
			t.might = t.mightFull
		} else if len(spec.MightFull) > 0 {
			// Pessimistic mode: the union set for the whole lifetime.
			t.might = carve(spec.MightFull)
		}
		for _, r := range spec.Reads {
			if r {
				e.hasReads = true
				break
			}
		}
		// Recurring event callbacks, built once so the hot path never
		// allocates a closure per scheduled event.
		t.updateDoneFn = func() { e.onUpdateDone(t) }
		t.rollbackDoneFn = func() { e.onRollbackDone(t, t.pendingRollback) }
		e.all = append(e.all, t)
	}
	e.run.CPUs = cfg.NumCPUs
	return e, nil
}

// SetTrace installs a human-readable trace sink (nil disables tracing).
func (e *Engine) SetTrace(fn func(format string, args ...any)) { e.trace = fn }

// SetRecorder installs a structured event recorder (nil disables). The
// recorder keys events by transaction ID, so attaching one pins IDs for the
// engine's lifetime; attaching after an ID has already been recycled
// (wall-clock service mode) panics — the stream would conflate distinct
// transactions that shared an ID.
func (e *Engine) SetRecorder(r trace.Recorder) {
	if r != nil {
		if e.idRecycled {
			panic("core: SetRecorder after transaction IDs were recycled; attach the recorder before submissions (IDs are no longer unique)")
		}
		e.idsPinned = true
	}
	e.rec = r
}

// InjectEvent feeds a forged trace event through the engine's observers
// (oracle and recorder). It exists for fault-injection tooling: forging a
// violating event is how tests prove the oracle actually aborts a run.
func (e *Engine) InjectEvent(ev trace.Event) { e.emit(ev) }

// emit sends a structured event to the oracle and the recorder, if any.
func (e *Engine) emit(ev trace.Event) {
	if e.rec == nil && e.oracle == nil {
		return
	}
	ev.At = time.Duration(e.sim.Now())
	if e.oracle != nil {
		e.oracle.observe(ev)
	}
	if e.rec != nil {
		e.rec.Record(ev)
	}
}

func (e *Engine) tracef(format string, args ...any) {
	if e.trace != nil {
		e.trace("[%8.3fms] "+format, append([]any{ms(time.Duration(e.sim.Now()))}, args...)...)
	}
}

// Workload returns the generated workload of this run.
func (e *Engine) Workload() *workload.Workload { return e.wl }

// Now returns the current simulated time.
func (e *Engine) Now() time.Duration { return time.Duration(e.sim.Now()) }

// Txns returns the runtime transactions (indexed by ID).
func (e *Engine) Txns() []*Txn { return e.all }

// Run executes the simulation to completion and returns the run metrics.
// It fails if the event guard trips before every transaction commits (which
// would indicate an engine bug — the workload is finite and soft-deadline
// transactions are never dropped), if the stall watchdog detects a
// non-advancing calendar, or if the safety oracle (EnableOracle) records a
// violation — the latter two fail fast, at the offending event, instead of
// spinning to the guard.
func (e *Engine) Run() (metrics.Result, error) {
	e.StartRun()
	if err := e.stepEvents(0, false); err != nil {
		return metrics.Result{}, err
	}
	return e.FinishRun()
}

// StartRun schedules every workload arrival on the calendar. It must be
// called exactly once, before any StepTo; Run calls it internally. The
// shard runner calls it per shard and then interleaves StepTo with
// cross-shard SubmitSpec injections at epoch boundaries.
func (e *Engine) StartRun() {
	if e.runStarted {
		panic("core: StartRun called twice")
	}
	e.runStarted = true
	for _, t := range e.all {
		t := t
		e.sim.At(sim.Time(t.Spec.Arrival), func() { e.onArrival(t) })
	}
}

// StepTo fires every calendar event due at or before t — with the same
// event guard, oracle fail-fast and stall watchdog Run applies — and then
// advances the simulated clock to exactly t. Splitting a run into StepTo
// segments fires the identical event sequence a single Run does: the
// boundaries only partition it, they never reorder or perturb it (the
// shard equivalence suite asserts bit identity for N=1).
func (e *Engine) StepTo(t sim.Time) error {
	if !e.runStarted {
		panic("core: StepTo before StartRun")
	}
	return e.stepEvents(t, true)
}

// Done reports whether every transaction (workload plus injected) has
// reached a terminal state.
func (e *Engine) Done() bool {
	return e.committed+e.dropped+e.rejected == len(e.all)
}

// RunSnapshot returns a deep copy of the run counters accumulated so far,
// for cross-shard merging (metrics.MergeRuns).
func (e *Engine) RunSnapshot() metrics.Run { return e.run.Clone() }

// stepEvents is the run loop shared by Run (unbounded) and StepTo
// (bounded): fire events — all of them, or those due at or before bound —
// under the event guard, the oracle fail-fast and the stall watchdog. The
// guard and watchdog budget are derived from the current transaction count
// so injected transactions scale them exactly as workload ones do.
func (e *Engine) stepEvents(bound sim.Time, bounded bool) error {
	guard := e.cfg.maxEvents(len(e.all))
	budget := e.cfg.WatchdogBudget
	if budget == 0 {
		// Default: generously above any legitimate same-instant burst
		// (every live transaction can transition a few times per instant).
		budget = 16*len(e.all) + 1024
	}
	for e.sim.Executed() < guard {
		if bounded {
			if next, ok := e.sim.NextAt(); !ok || next > bound {
				break
			}
		}
		if !e.sim.Step() {
			break
		}
		if e.oracle != nil && e.oracle.err != nil {
			return fmt.Errorf("core: oracle: %w", e.oracle.err)
		}
		if budget > 0 {
			if now := e.sim.Now(); now != e.wdStallAt {
				e.wdStallAt, e.wdStallCount = now, 0
			} else if e.wdStallCount++; e.wdStallCount > budget {
				return fmt.Errorf("core: watchdog: %s", e.stallDump(budget))
			}
		}
	}
	if bounded && bound > e.sim.Now() {
		// No events remain at or before bound; RunUntil only advances the
		// clock (the P-list/live-area integrals are unaffected — they
		// integrate from lastNote inside event handlers).
		e.sim.RunUntil(bound)
	}
	return nil
}

// FinishRun completes a stepped run: it verifies every transaction
// finished, drains the disks, runs the oracle's final checks, verifies the
// store and returns the run metrics. Run calls it internally; the shard
// runner calls it once per shard after the epoch loop terminates.
func (e *Engine) FinishRun() (metrics.Result, error) {
	if e.committed+e.dropped+e.rejected != len(e.all) {
		return metrics.Result{}, fmt.Errorf("core: %d/%d transactions finished after %d events (engine stall or guard too low)",
			e.committed+e.dropped+e.rejected, len(e.all), e.sim.Executed())
	}
	if len(e.disks) > 0 {
		// Drain any orphaned in-service accesses so busy time is complete.
		e.sim.Run()
		for _, d := range e.disks {
			e.run.DiskBusy += d.BusyTime()
			e.run.RetriedIO += d.Retried()
		}
		e.run.Disks = len(e.disks)
	}
	if e.oracle != nil {
		if err := e.oracle.finish(); err != nil {
			return metrics.Result{}, fmt.Errorf("core: oracle: %w", err)
		}
	}
	e.store.CheckClean()
	return e.run.Result(), nil
}

// SubmitSpec injects a dynamically arriving transaction at the current
// simulated instant — the shard runner's cross-shard hook: at an epoch
// boundary every participant shard receives its sub-transaction through
// here, in canonical order. spec.Arrival must equal the engine's current
// clock and spec.Deadline is absolute (under FirmDeadlines it must not be
// in the past, or the deadline event would be unschedulable). done, when
// non-nil, fires once when the transaction reaches a terminal state; it
// runs inside the engine's event processing and must not block.
func (e *Engine) SubmitSpec(spec *workload.Spec, done func(*Txn)) *Txn {
	if got, now := spec.Arrival, time.Duration(e.sim.Now()); got != now {
		panic(fmt.Sprintf("core: SubmitSpec arrival %v != engine clock %v", got, now))
	}
	t := e.addServiceTxn(spec, done)
	e.onArrival(t)
	return t
}

// stallDump renders the watchdog's diagnostic: where the calendar stuck
// and what every live transaction was doing, so a stall is debuggable from
// the error alone.
func (e *Engine) stallDump(budget int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "calendar stalled at t=%v: %d events executed without the clock advancing (budget %d); %d/%d finished, %d live",
		time.Duration(e.sim.Now()), budget, budget, e.committed+e.dropped+e.rejected, len(e.all), len(e.live))
	counts := make(map[State]int)
	for _, t := range e.live {
		counts[t.state]++
	}
	for st := StateReady; st <= StateRejected; st++ {
		if counts[st] > 0 {
			fmt.Fprintf(&b, "; %d %v", counts[st], st)
		}
	}
	const sample = 8
	for i, t := range e.live {
		if i >= sample {
			fmt.Fprintf(&b, "; … %d more", len(e.live)-sample)
			break
		}
		fmt.Fprintf(&b, "; T%d %v item %d/%d", t.ID(), t.state, t.next, len(t.Spec.Items))
	}
	return b.String()
}

// diskFor returns the disk serving the given item (items stripe across
// disks by item number).
func (e *Engine) diskFor(it txn.Item) *disk.Disk {
	return e.disks[int(it)%len(e.disks)]
}

// Store returns the database store (for inspection after Run).
func (e *Engine) Store() *db.Store { return e.store }

// PendingEvents returns the number of scheduled calendar events. The shard
// runner uses it for stall detection: an engine with live transactions but
// an empty calendar (and no future cross-shard input) can never finish.
func (e *Engine) PendingEvents() int { return e.sim.Pending() }

// TxnOutcomes returns every transaction's outcome in engine-ID order — the
// shard runner's bridge from shard-local transactions back to logical ones.
// Meaningful once the run has finished; recycled slots (wall-clock service
// only) are zero entries.
func (e *Engine) TxnOutcomes() []ServiceOutcome {
	out := make([]ServiceOutcome, len(e.all))
	for i, t := range e.all {
		if t != nil {
			out[i] = outcomeOf(t)
		}
	}
	return out
}

// History returns the recorded operation history, or nil when
// Config.RecordHistory is false.
func (e *Engine) History() *history.History { return e.hist }

// note integrates the P-list size up to the current instant; every event
// handler calls it before mutating state.
func (e *Engine) note() {
	now := e.sim.Now()
	if now > e.lastNote {
		n := 0
		if e.ci != nil {
			n = len(e.ci.plist)
		} else {
			for _, t := range e.live {
				if t.PartiallyExecuted() {
					n++
				}
			}
		}
		e.run.PListArea += float64(n) * float64(now-e.lastNote)
		e.run.LiveArea += float64(len(e.live)) * float64(now-e.lastNote)
		e.lastNote = now
	}
}

// PenaltyOfConflict returns the paper's TL for t: the effective service
// time (plus, optionally, rollback time) of every partially executed
// transaction that is unsafe or conditionally unsafe with respect to t —
// i.e. has accessed an item t might access. (Paper §3.3.1; the simulation
// mode treats unsafe and conditionally unsafe alike, as §4 does.)
//
// With the conflict index the sum walks only the partially executed
// holders of items t might access (near-O(overlap)); a cached term
// short-circuits the repeated evaluations inside a multi-pass scheduling
// point. The cache is keyed by (timestamp, index generation) — every
// contributor's effective service time is constant while the clock stands
// still and no has-set changed — so a hit is exact, never stale.
func (e *Engine) PenaltyOfConflict(t *Txn) time.Duration {
	if e.ci == nil {
		return e.penaltyOfConflictScan(t)
	}
	now := e.sim.Now()
	if t.penaltyGen == e.ci.gen && t.penaltyAt == now {
		return t.penaltyVal
	}
	sum := e.ci.penalty(e, t)
	t.penaltyVal, t.penaltyAt, t.penaltyGen = sum, now, e.ci.gen
	return sum
}

// penaltyOfConflictScan is the original full-scan implementation
// (O(live × DBSize/64) per call), kept for Config.NaiveConflictScan and
// the equivalence suite.
func (e *Engine) penaltyOfConflictScan(t *Txn) time.Duration {
	var sum time.Duration
	for _, p := range e.live {
		if p == t || !p.PartiallyExecuted() {
			continue
		}
		if p.has.intersects(t.might) {
			sum += e.serviceNow(p)
			if e.cfg.PenaltyIncludesRollback {
				sum += e.rollbackCost(p)
			}
		}
	}
	return sum
}

// serviceNow returns p's effective service time including the partial
// current CPU slice of a running transaction.
func (e *Engine) serviceNow(p *Txn) time.Duration {
	s := p.service
	if p.state == StateRunning && p.cpuEvent.Pending() {
		s += time.Duration(e.sim.Now() - p.sliceStart)
	}
	return s
}

// rollbackCost returns the CPU time to roll back v: the fixed abort cost,
// plus a share proportional to v's executed work when the
// recovery-proportional extension is enabled.
func (e *Engine) rollbackCost(v *Txn) time.Duration {
	c := e.cfg.AbortCost
	if e.cfg.RecoveryProportionalFactor > 0 {
		c += time.Duration(e.cfg.RecoveryProportionalFactor * float64(e.serviceNow(v)))
	}
	return c
}

// --- event handlers ---------------------------------------------------

func (e *Engine) onArrival(t *Txn) {
	e.note()
	if e.cfg.Admission.Mode != AdmitAll {
		if e.rejects(t) {
			// The transaction never enters the system: no live-set entry,
			// no deadline event, no locks. It counts as a miss.
			t.state = StateRejected
			e.rejected++
			e.run.Rejected++
			e.tracef("T%d rejected at arrival (%s, %d live)", t.ID(), e.cfg.Admission.Mode, len(e.live))
			e.emit(trace.Event{Kind: trace.Reject, Txn: t.ID(), Other: -1, Item: -1})
			if now := time.Duration(e.sim.Now()); now > e.run.Elapsed {
				e.run.Elapsed = now
			}
			t.notifyDone()
			return
		}
		e.run.Admitted++
	}
	t.state = StateReady
	e.live = append(e.live, t)
	e.ranked = append(e.ranked, t)
	e.orderDirty = true
	if e.trace != nil {
		e.tracef("T%d arrives (deadline %.1fms, %d items)", t.ID(), ms(t.Spec.Deadline), len(t.Spec.Items))
	}
	e.emit(trace.Event{Kind: trace.Arrival, Txn: t.ID(), Other: -1, Item: -1})
	if e.cfg.FirmDeadlines {
		e.sim.At(sim.Time(t.Spec.Deadline), func() { e.onDeadline(t) })
	}
	e.reschedule()
}

// onUpdateDone fires when the current update's computation completes. Per
// the paper the scheduler is not re-invoked between updates; the
// transaction continues directly with its next item.
func (e *Engine) onUpdateDone(t *Txn) {
	e.note()
	elapsed := time.Duration(e.sim.Now() - t.sliceStart)
	t.cpuEvent = sim.Handle{}
	t.service += elapsed
	e.run.CPUBusy += elapsed
	t.remain = 0
	t.ioDone = false
	if e.fault != nil && e.fault.SpuriousAbort() {
		// The slice's CPU time is already accrued (and will be counted as
		// wasted service by abort); the update itself never applies.
		e.run.FaultAborts++
		e.tracef("T%d spuriously aborted by the fault plan (update %d/%d)", t.ID(), t.next+1, len(t.Spec.Items))
		e.abort(t)
		if e.rescheduleAgain && !e.inReschedule {
			e.reschedule()
		}
		return
	}
	e.applyUpdate(t)
	if t.mightNarrow != nil && t.next == t.Spec.DecisionIndex {
		// The decision point has executed: the transaction is now
		// committed to its branch and its might-access set narrows
		// (paper §3.2.2 — "refinements of what we know about the
		// transaction's execution").
		e.setMight(t, t.mightNarrow)
		e.tracef("T%d passes its decision point; might-set narrows", t.ID())
	}
	t.next++
	e.startItem(t)
	// If the transaction blocked (IO or lock) or wounded victims whose
	// release woke waiters, the scheduler must run; if it simply moved on
	// to its next update, no scheduling point occurs (paper §3.3.2: the
	// scheduler is invoked on arrival, finish and IO wait only).
	if e.rescheduleAgain && !e.inReschedule {
		e.reschedule()
	}
}

func (e *Engine) onIODone(t *Txn, req *disk.Request) {
	e.note()
	if t.ioReq != req {
		// Stale completion: t was wounded while this access was in
		// service; the restart was deferred until the disk released
		// (paper §5).
		if t.state == StateAborting {
			t.state = StateReady
			e.tracef("T%d disk released after wound; restart ready", t.ID())
			e.reschedule()
		}
		return
	}
	t.ioReq = nil
	if req.Failed() {
		// The access exhausted its transient-error retries: treat the
		// permanent failure as a media error that aborts (restarts) the
		// transaction. ioReq is already nil, so detach's IO branch no-ops
		// and the restart is immediate.
		e.run.FaultAborts++
		e.tracef("T%d IO failed permanently after %d retries; restarting", t.ID(), req.Attempts())
		e.abort(t)
		e.reschedule()
		return
	}
	t.ioDone = true
	t.state = StateReady
	if e.trace != nil {
		e.tracef("T%d IO complete (item %d/%d)", t.ID(), t.next+1, len(t.Spec.Items))
	}
	e.emit(trace.Event{Kind: trace.IODone, Txn: t.ID(), Other: -1, Item: t.Spec.Items[t.next]})
	e.reschedule()
}

func (e *Engine) onRollbackDone(t *Txn, cost time.Duration) {
	e.note()
	t.cpuEvent = sim.Handle{}
	t.inRollback = false
	e.run.CPUBusy += cost
	e.run.RollbackTime += cost
	e.proceedItem(t)
	e.reschedule()
}

// applyUpdate performs the completed update's data operation against the
// store (under the lock acquired at item start) and records it in the
// history when recording is enabled.
func (e *Engine) applyUpdate(t *Txn) {
	item := t.Spec.Items[t.next]
	read := len(t.Spec.Reads) > 0 && t.Spec.Reads[t.next]
	if read {
		e.store.Read(db.TxnID(t.ID()), item)
	} else {
		e.store.Write(db.TxnID(t.ID()), t.restarts, item)
	}
	if e.hist != nil {
		kind := history.Write
		if read {
			kind = history.Read
		}
		e.hist.Add(t.ID(), item, kind, time.Duration(e.sim.Now()))
	}
}

// --- transaction execution --------------------------------------------

// startItem begins processing t's next update on its CPU: acquire the lock
// (wounding or waiting per policy), then perform the disk access and the
// computation.
func (e *Engine) startItem(t *Txn) {
	if t.next >= len(t.Spec.Items) {
		e.commit(t)
		return
	}
	if ap, isAP := e.policy.(admissionPolicy); isAP && !t.ceilingExempt {
		if ok, _ := ap.admits(e, t); !ok {
			// Ceiling-blocked mid-run (PCP): yield the CPU; dispatch
			// re-evaluates admission at every scheduling point.
			e.run.LockWaits++
			e.tracef("T%d ceiling-blocked before item %d", t.ID(), t.Spec.Items[t.next])
			t.state = StateReady
			e.freeCPU(t)
			e.requestReschedule()
			return
		}
	}
	t.ceilingExempt = false
	item := t.Spec.Items[t.next]
	mode := lock.Write
	if len(t.Spec.Reads) > 0 && t.Spec.Reads[t.next] {
		mode = lock.Read
	}
	var rollback time.Duration
	for !e.lm.Acquire(lock.TxnID(t.ID()), item, mode) {
		holders := e.lm.Conflicting(lock.TxnID(t.ID()), item, mode)
		if len(holders) == 0 {
			// Shared-lock corner: the grant is blocked not by a
			// holder but by a queued writer (reader fairness) or by
			// co-readers on an upgrade. Queue behind them. This can
			// only happen under the waiting baselines — CCA never
			// enqueues, so its queues are always empty.
			e.block(t, item, mode)
			return
		}
		woundAll := true
		for _, h := range holders {
			if !e.policy.Wounds(e, t, e.all[int(h)]) {
				woundAll = false
				break
			}
		}
		if !woundAll {
			for _, h := range holders {
				e.notifyBlock(t, e.all[int(h)])
			}
			e.block(t, item, mode)
			return
		}
		for _, h := range holders {
			v := e.all[int(h)]
			rollback += e.rollbackCost(v)
			e.tracef("T%d wounds T%d on item %d (victim service %.1fms)", t.ID(), v.ID(), item, ms(v.service))
			e.emit(trace.Event{Kind: trace.Wound, Txn: t.ID(), Other: v.ID(), Item: item,
				Priority: t.priority, OtherPriority: v.priority})
			e.notifyWound(t, v)
			e.abort(v)
		}
	}
	e.hasAcquired(t, item)
	if rollback > 0 {
		// The wounding transaction's CPU performs the rollback before
		// the update proceeds; the rollback section is not preemptable
		// (it is system recovery work, a few ms at most).
		t.inRollback = true
		t.pendingRollback = rollback
		t.cpuEvent = e.sim.After(rollback, t.rollbackDoneFn)
		return
	}
	e.proceedItem(t)
}

// proceedItem performs the disk access (if the update needs one and it has
// not happened yet) and then the computation for the current update.
func (e *Engine) proceedItem(t *Txn) {
	if t.next < len(t.Spec.NeedsIO) && t.Spec.NeedsIO[t.next] && !t.ioDone {
		req := &disk.Request{Priority: t.priority, Tag: t}
		req.Done = func() { e.onIODone(t, req) }
		t.ioReq = req
		t.state = StateIOWait
		e.freeCPU(t)
		e.diskFor(t.Spec.Items[t.next]).Submit(req)
		if e.trace != nil {
			e.tracef("T%d blocks on IO (item %d/%d)", t.ID(), t.next+1, len(t.Spec.Items))
		}
		e.emit(trace.Event{Kind: trace.IOStart, Txn: t.ID(), Other: -1, Item: t.Spec.Items[t.next]})
		e.requestReschedule()
		return
	}
	t.remain = t.Spec.Compute
	if e.fault != nil {
		// CPU jitter applies to fresh slices only; a preempted slice
		// resumes its drawn remainder, so the draw count is independent
		// of the preemption pattern.
		t.remain = e.fault.ComputeTime(t.remain)
	}
	t.sliceStart = e.sim.Now()
	t.cpuEvent = e.sim.After(t.remain, t.updateDoneFn)
}

// block suspends t on a data conflict (waiting baselines only).
func (e *Engine) block(t *Txn, item txn.Item, mode lock.Mode) {
	e.run.LockWaits++
	t.state = StateLockWait
	e.freeCPU(t)
	e.lm.Enqueue(&lock.Request{Txn: lock.TxnID(t.ID()), Item: item, Mode: mode, Priority: t.priority})
	e.tracef("T%d blocks on item %d", t.ID(), item)
	e.emit(trace.Event{Kind: trace.Block, Txn: t.ID(), Other: -1, Item: item, Priority: t.priority})
	if e.policy.Inherits() {
		e.propagateInheritance(t)
	}
	// Deadlock detection runs for every policy that can block. Under
	// EDF-HP and FCFS waits always point at strictly higher-priority
	// holders, so no cycle can form (the integration tests assert the
	// counter stays zero); under EDF-WP — and under LSF-HP, whose
	// continuously re-evaluated priorities can invert a wait edge after
	// it is created — cycles are possible and are resolved by aborting
	// the lowest-priority member.
	if cycle := e.lm.DetectCycle(lock.TxnID(t.ID())); len(cycle) > 0 {
		e.resolveDeadlock(cycle)
	}
	e.requestReschedule()
}

// propagateInheritance floors the priority of every transaction t
// transitively waits on at t's priority (Wait Promote).
func (e *Engine) propagateInheritance(t *Txn) {
	seen := make(map[int]bool)
	var walk func(v *Txn)
	walk = func(v *Txn) {
		for _, h := range e.lm.WaitsFor(lock.TxnID(v.ID())) {
			ht := e.all[int(h)]
			if seen[ht.ID()] {
				continue
			}
			seen[ht.ID()] = true
			if t.priority > ht.inherited {
				ht.inherited = t.priority
			}
			walk(ht)
		}
	}
	walk(t)
}

// resolveDeadlock aborts the lowest-priority transaction on the cycle.
func (e *Engine) resolveDeadlock(cycle []lock.TxnID) {
	e.run.Deadlocks++
	victim := e.all[int(cycle[0])]
	for _, id := range cycle[1:] {
		c := e.all[int(id)]
		if less(victim, c) {
			victim = c
		}
	}
	e.tracef("deadlock: aborting T%d (cycle of %d)", victim.ID(), len(cycle))
	e.emit(trace.Event{Kind: trace.Deadlock, Txn: victim.ID(), Other: -1, Item: -1})
	e.abort(victim)
}

// commit finishes t: release its locks (waking granted waiters), record the
// lateness statistics, and invoke the scheduler (tr-finish-schedule).
func (e *Engine) commit(t *Txn) {
	t.state = StateCommitted
	t.finish = e.sim.Now()
	e.freeCPU(t)
	e.store.Commit(db.TxnID(t.ID()))
	if e.hist != nil {
		e.hist.Commit(t.ID(), time.Duration(t.finish))
	}
	e.wake(e.lm.ReleaseAll(lock.TxnID(t.ID())))
	if e.ci != nil {
		e.ci.deindexHas(t)
	}
	e.removeLive(t)
	e.committed++
	e.run.Observe(t.Spec.Class, t.Spec.Arrival, time.Duration(t.finish), t.Spec.Deadline)
	if o, ok := e.policy.(commitObserver); ok {
		o.observeCommit(e, t, time.Duration(t.finish) > t.Spec.Deadline)
	}
	e.notifyTerminal(t, true, time.Duration(t.finish) > t.Spec.Deadline)
	e.run.Elapsed = time.Duration(t.finish)
	if e.trace != nil {
		e.tracef("T%d commits (lateness %.1fms, restarts %d)", t.ID(), ms(time.Duration(t.finish)-t.Spec.Deadline), t.restarts)
	}
	e.emit(trace.Event{Kind: trace.Commit, Txn: t.ID(), Other: -1, Item: -1, Priority: t.priority})
	t.notifyDone()
	e.requestReschedule()
	if !e.inReschedule {
		e.reschedule()
	}
}

// onDeadline fires at a transaction's deadline in firm mode: if it has not
// committed, it is aborted and discarded — a late result has no value.
func (e *Engine) onDeadline(t *Txn) {
	if t.state == StateCommitted || t.state == StateDropped {
		return
	}
	e.note()
	e.drop(t)
	e.reschedule()
}

// drop discards t (firm-deadline mode): everything it holds or waits for is
// released, its effects are undone, and it never restarts.
func (e *Engine) drop(t *Txn) {
	e.tracef("T%d dropped at its deadline", t.ID())
	e.detach(t)
	e.store.Abort(db.TxnID(t.ID()))
	if e.hist != nil {
		e.hist.Abort(t.ID())
	}
	e.wake(e.lm.ReleaseAll(lock.TxnID(t.ID())))
	if e.ci != nil {
		e.ci.deindexHas(t) // before has.clear: deindexing reads the has-set
	}
	t.cpuEvent = sim.Handle{}
	t.ioReq = nil
	t.has.clear()
	t.state = StateDropped
	e.removeLive(t)
	e.dropped++
	e.run.Dropped++
	if o, ok := e.policy.(commitObserver); ok {
		o.observeCommit(e, t, true)
	}
	e.notifyTerminal(t, false, true)
	now := time.Duration(e.sim.Now())
	if now > e.run.Elapsed {
		e.run.Elapsed = now
	}
	t.notifyDone()
	e.requestReschedule()
}

// detach cancels whatever v is currently doing (CPU slice, rollback
// section, lock wait or disk access) without deciding its fate; abort and
// drop share it.
func (e *Engine) detach(v *Txn) {
	switch v.state {
	case StateRunning:
		if v.inRollback {
			elapsed := time.Duration(e.sim.Now() - v.sliceStart)
			e.run.CPUBusy += elapsed
			e.run.RollbackTime += elapsed
			e.sim.Cancel(v.cpuEvent)
			v.cpuEvent = sim.Handle{}
			v.inRollback = false
			e.freeCPU(v)
			v.state = StateReady
		} else {
			e.preempt(v)
		}
	case StateLockWait:
		granted, _ := e.lm.CancelWait(lock.TxnID(v.ID()))
		e.wake(granted)
	case StateIOWait:
		if v.ioReq != nil && !v.ioReq.InService() {
			// Queued, or waiting out a transient-error retry backoff:
			// either way the disk can drop it immediately.
			e.diskFor(v.Spec.Items[v.next]).Cancel(v.ioReq)
			v.ioReq = nil
		}
		// An in-service access keeps the disk busy; its completion is
		// ignored via the stale-request check.
	}
}

// abort wounds v: cancel whatever it is doing, release its locks, charge
// the bookkeeping, and rewind it for restart. A victim whose disk access is
// in service keeps the disk busy and completes its restart at IO
// completion (paper §5).
func (e *Engine) abort(v *Txn) {
	if v.state == StateCommitted || v.state == StateAborting {
		panic(fmt.Sprintf("core: aborting T%d in state %v", v.ID(), v.state))
	}
	e.run.Restarts++
	e.run.WastedService += e.serviceNow(v)
	if v.ranAsSecondary {
		e.run.NoncontributingAborts++
	}
	v.restarts++
	e.notifyRestart(v)

	deferRestart := v.state == StateIOWait && v.ioReq != nil && v.ioReq.InService()
	e.detach(v)
	e.store.Abort(db.TxnID(v.ID()))
	if e.hist != nil {
		e.hist.Abort(v.ID())
	}
	e.wake(e.lm.ReleaseAll(lock.TxnID(v.ID())))
	if e.ci != nil {
		e.ci.deindexHas(v) // before resetForRestart clears the has-set
	}
	if v.mightNarrow != nil {
		// A restarted transaction is back before its decision point; its
		// might-set re-widens (no-op if it never narrowed).
		e.setMight(v, v.mightFull)
	}
	v.resetForRestart()
	v.inherited = negInf
	if deferRestart {
		v.state = StateAborting
	}
	e.requestReschedule()
}

// preempt takes v off its CPU mid-computation, accruing the partial slice.
func (e *Engine) preempt(v *Txn) {
	if v.inRollback {
		panic(fmt.Sprintf("core: preempting T%d during rollback", v.ID()))
	}
	if v.cpuEvent.Pending() {
		e.sim.Cancel(v.cpuEvent)
		v.cpuEvent = sim.Handle{}
		elapsed := time.Duration(e.sim.Now() - v.sliceStart)
		v.remain -= elapsed
		v.service += elapsed
		e.run.CPUBusy += elapsed
	}
	e.freeCPU(v)
	v.state = StateReady
}

// wake transitions lock-grant recipients back to ready.
func (e *Engine) wake(granted []*lock.Request) {
	for _, g := range granted {
		w := e.all[int(g.Txn)]
		if w.state != StateLockWait {
			panic(fmt.Sprintf("core: waking T%d in state %v", w.ID(), w.state))
		}
		e.hasAcquired(w, g.Item)
		w.state = StateReady
		e.tracef("T%d granted item %d, wakes", w.ID(), g.Item)
		e.emit(trace.Event{Kind: trace.Wake, Txn: w.ID(), Other: -1, Item: g.Item})
	}
}

func (e *Engine) freeCPU(t *Txn) {
	if t.cpu >= 0 {
		e.slots[t.cpu] = nil
		t.cpu = -1
	}
}

// hasAcquired records that t now holds item, keeping the has-set and the
// conflict index in sync. Re-acquisitions (re-entrant locks, read→write
// upgrades, a wait grant on an already-held item) are no-ops.
func (e *Engine) hasAcquired(t *Txn, item txn.Item) {
	if t.has.contains(item) {
		return
	}
	t.has.add(item)
	if e.ci != nil {
		e.ci.hasAdd(t, item)
	}
}

// setMight switches t's current might-access set (decision-point narrowing
// or restart re-widening). Only t's own penalty depends on t.might, so only
// t's cached term is invalidated (generation 0 never matches a live index).
func (e *Engine) setMight(t *Txn, b bitset) {
	t.might = b
	t.penaltyGen = 0
	t.predGen = 0
	t.evalGen = 0
}

func (e *Engine) removeLive(t *Txn) {
	for i, v := range e.live {
		if v == t {
			e.live = append(e.live[:i], e.live[i+1:]...)
			break
		}
	}
	for i, v := range e.ranked {
		if v == t {
			e.ranked = append(e.ranked[:i], e.ranked[i+1:]...)
			return
		}
	}
}

// --- scheduler ---------------------------------------------------------

// less orders transactions for dispatch: higher criticality first, then
// higher priority, then earlier arrival (lower ID) for determinism.
func less(a, b *Txn) bool {
	if a.Spec.Criticality != b.Spec.Criticality {
		return a.Spec.Criticality > b.Spec.Criticality
	}
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.ID() < b.ID()
}

// requestReschedule marks that the scheduler must run again; used by
// transitions that happen inside a dispatch pass.
func (e *Engine) requestReschedule() { e.rescheduleAgain = true }

// reschedule is the single scheduling entry point, implementing the
// paper's tr-arrival-schedule, tr-finish-schedule and IOwait-schedule with
// one uniform rule:
//
//   - every live transaction's priority is re-evaluated (continuous
//     evaluation);
//   - the CPU(s) run the highest-priority dispatchable transactions, except
//     that when the overall highest-priority transaction is blocked,
//     policies with FiltersIOWait (CCA) only dispatch transactions that do
//     not conflict with any partially executed transaction.
//
// Dispatching can immediately block the dispatched transaction (IO or lock
// wait) or wound victims whose release wakes waiters, so the pass loops
// until no transition happens.
func (e *Engine) reschedule() {
	if e.inReschedule {
		e.rescheduleAgain = true
		return
	}
	e.inReschedule = true
	for pass := 0; ; pass++ {
		if pass > 4*len(e.all)+64 {
			panic("core: reschedule did not converge")
		}
		e.rescheduleAgain = false
		if e.cfg.NaiveDispatch {
			e.dispatchPassNaive()
		} else {
			e.dispatchPass()
		}
		if !e.rescheduleAgain {
			break
		}
	}
	e.inReschedule = false
	if e.cfg.CheckInvariants {
		e.checkInvariants()
	}
}

// dispatchPassNaive is the original scheduling pass, retained verbatim
// behind Config.NaiveDispatch: every live transaction is re-evaluated, the
// dispatch pool is rebuilt and stable-sorted from scratch, and desired-set
// membership is a linear scan. The equivalence suite asserts the incremental
// dispatchPass below produces bit-identical schedules and metrics.
func (e *Engine) dispatchPassNaive() {
	// Continuous evaluation.
	for _, t := range e.live {
		t.priority = e.policy.Evaluate(e, t)
		if e.policy.Inherits() && t.inherited > t.priority {
			t.priority = t.inherited
		}
	}

	// The globally highest-priority live transaction (TH), whatever its
	// state: the paper's invariant is that the CPU runs TH, or — if TH is
	// blocked — under CCA only transactions compatible with the P-list.
	var top *Txn
	for _, t := range e.live {
		if t.state == StateAborting {
			continue
		}
		if top == nil || less(t, top) {
			top = t
		}
	}
	if top == nil {
		return
	}

	// Dispatchable pool, best first.
	var pool []*Txn
	for _, t := range e.live {
		if t.state == StateReady || (t.state == StateRunning && !t.inRollback) {
			pool = append(pool, t)
		}
	}
	sort.SliceStable(pool, func(i, j int) bool { return less(pool[i], pool[j]) })

	// Choose the desired occupants.
	slots := len(e.slots)
	desired := make([]*Txn, 0, slots)
	for _, t := range e.live {
		if t.state == StateRunning && t.inRollback {
			desired = append(desired, t) // pinned
		}
	}
	filter := e.policy.FiltersIOWait()
	admission, hasAdmission := e.policy.(admissionPolicy)
	for _, c := range pool {
		if len(desired) >= slots {
			break
		}
		if c != top && filter && !e.compatible(c, desired) {
			continue
		}
		if hasAdmission && c.state != StateRunning {
			ok, changed := admission.admits(e, c)
			if changed {
				// Inheritance was applied: re-rank the pool so the
				// promoted holder gets the CPU.
				e.rescheduleAgain = true
			}
			if !ok {
				continue // ceiling-blocked
			}
		}
		desired = append(desired, c)
	}

	// Progress override for admission policies (PCP): classic PCP assumes
	// no self-suspension and a static claim set, but disk IO suspends
	// lock holders mid-region and new arrivals raise ceilings after
	// entry, so two entered holders can end up mutually ceiling-blocked.
	// When nothing at all is admitted, dispatch the best lock-holding
	// candidate anyway; direct conflicts then resolve by inheritance
	// waits, with the deadlock detector as backstop.
	if hasAdmission && len(desired) == 0 && len(pool) > 0 {
		best := pool[0]
		for _, c := range pool {
			if c.has.any() {
				best = c
				break
			}
		}
		e.tracef("T%d dispatched by PCP progress override", best.ID())
		best.ceilingExempt = true
		desired = append(desired, best)
	}

	inDesired := func(t *Txn) bool {
		for _, d := range desired {
			if d == t {
				return true
			}
		}
		return false
	}

	// Preempt running transactions that lost their slot.
	for _, s := range e.slots {
		if s != nil && !inDesired(s) {
			e.tracef("T%d preempted", s.ID())
			e.emit(trace.Event{Kind: trace.Preempt, Txn: s.ID(), Other: -1, Item: -1, Priority: s.priority})
			e.preempt(s)
		}
	}

	// Dispatch the rest onto free slots.
	for _, d := range desired {
		if d.state == StateRunning {
			continue
		}
		slot := -1
		for i, s := range e.slots {
			if s == nil {
				slot = i
				break
			}
		}
		if slot < 0 {
			panic("core: no free CPU for desired transaction")
		}
		e.dispatch(d, slot, d != top && blocked(top))
		if d.state != StateRunning {
			// The dispatch immediately blocked or committed; the
			// pass must be recomputed.
			return
		}
	}
}

// compareTxn is less as a three-way comparison for slices.SortFunc. less is
// a strict total order (ID tie-break), so the sorted order is unique and any
// comparison sort — stable or not — produces the same permutation the naive
// pass's sort.SliceStable does.
func compareTxn(a, b *Txn) int {
	if less(a, b) {
		return -1
	}
	if less(b, a) {
		return 1
	}
	return 0
}

// dispatchPass is the allocation-free scheduling pass. It computes exactly
// what dispatchPassNaive computes — the equivalence suite asserts bit
// identity — but avoids the per-pass costs:
//
//   - priorities are re-evaluated only when the policy's Staticness contract
//     says the value could have moved (never for EDF/FCFS/PCP after the
//     first pass; for CCA only when the clock advanced or a has-set changed;
//     every pass for LSF/AED);
//   - the priority order is maintained in e.ranked across passes and
//     re-sorted only when some effective priority actually changed, instead
//     of rebuilding and stable-sorting a fresh pool slice;
//   - the pool and desired sets live in engine-owned scratch buffers, and
//     desired-set membership is a generation stamp instead of a linear scan.
//
// The evaluation loop iterates e.live in arrival order — the same order the
// naive pass uses — because stateful policies can consume randomness on
// first evaluation (AED draws its group key lazily), so evaluation order is
// behaviourally observable.
func (e *Engine) dispatchPass() {
	// Continuous evaluation, memoised per the policy's Staticness.
	now := e.sim.Now()
	var gen uint64
	if e.ci != nil {
		gen = e.ci.gen
	}
	inherits := e.policy.Inherits()
	dirty := e.orderDirty
	for _, t := range e.live {
		need := !t.evalValid
		if !need {
			switch e.evalMode {
			case EvalStatic:
				// A valid base priority is final.
			case EvalConflictClocked:
				need = t.evalAt != now || t.evalGen != gen
			default: // EvalDynamic
				need = true
			}
		}
		if need {
			t.basePr = e.policy.Evaluate(e, t)
			t.evalValid = true
			t.evalAt, t.evalGen = now, gen
		}
		pr := t.basePr
		if inherits && t.inherited > pr {
			pr = t.inherited
		}
		if pr != t.priority {
			t.priority = pr
			dirty = true
		}
	}
	if dirty {
		slices.SortFunc(e.ranked, compareTxn)
	}
	e.orderDirty = false

	// The globally highest-priority live transaction (TH): the first
	// non-aborting member of the ranked order. less is total, so this is
	// the same transaction the naive pass's minimum scan finds.
	var top *Txn
	for _, t := range e.ranked {
		if t.state != StateAborting {
			top = t
			break
		}
	}
	if top == nil {
		return
	}

	// Dispatchable pool, best first: filtering the sorted ranked slice
	// yields the same order as the naive pass's filter-then-stable-sort.
	pool := e.poolBuf[:0]
	for _, t := range e.ranked {
		if t.state == StateReady || (t.state == StateRunning && !t.inRollback) {
			pool = append(pool, t)
		}
	}
	e.poolBuf = pool

	// Choose the desired occupants, marking membership with the pass stamp.
	e.passStamp++
	stamp := e.passStamp
	slots := len(e.slots)
	desired := e.desiredBuf[:0]
	for _, t := range e.live {
		if t.state == StateRunning && t.inRollback {
			t.desiredStamp = stamp
			desired = append(desired, t) // pinned
		}
	}
	filter := e.policy.FiltersIOWait()
	admission, hasAdmission := e.policy.(admissionPolicy)
	for _, c := range pool {
		if len(desired) >= slots {
			break
		}
		if c != top && filter && !e.compatible(c, desired) {
			continue
		}
		if hasAdmission && c.state != StateRunning {
			ok, changed := admission.admits(e, c)
			if changed {
				// Inheritance was applied: re-rank the pool so the
				// promoted holder gets the CPU.
				e.rescheduleAgain = true
			}
			if !ok {
				continue // ceiling-blocked
			}
		}
		c.desiredStamp = stamp
		desired = append(desired, c)
	}

	// Progress override for admission policies (PCP); see dispatchPassNaive.
	if hasAdmission && len(desired) == 0 && len(pool) > 0 {
		best := pool[0]
		for _, c := range pool {
			if c.has.any() {
				best = c
				break
			}
		}
		e.tracef("T%d dispatched by PCP progress override", best.ID())
		best.ceilingExempt = true
		best.desiredStamp = stamp
		desired = append(desired, best)
	}
	e.desiredBuf = desired

	// Preempt running transactions that lost their slot.
	for _, s := range e.slots {
		if s != nil && s.desiredStamp != stamp {
			e.tracef("T%d preempted", s.ID())
			e.emit(trace.Event{Kind: trace.Preempt, Txn: s.ID(), Other: -1, Item: -1, Priority: s.priority})
			e.preempt(s)
		}
	}

	// Dispatch the rest onto free slots.
	for _, d := range desired {
		if d.state == StateRunning {
			continue
		}
		slot := -1
		for i, s := range e.slots {
			if s == nil {
				slot = i
				break
			}
		}
		if slot < 0 {
			panic("core: no free CPU for desired transaction")
		}
		e.dispatch(d, slot, d != top && blocked(top))
		if d.state != StateRunning {
			// The dispatch immediately blocked or committed; the
			// pass must be recomputed.
			return
		}
	}
}

// blocked reports whether the globally top transaction cannot use a CPU.
func blocked(top *Txn) bool {
	return top.state == StateIOWait || top.state == StateLockWait
}

// compatible reports whether c conflicts with no partially executed
// transaction (the IOwait-schedule admission test) and, on a
// multiprocessor, with no already-chosen peer. With the conflict index the
// test intersects against the P-list only (average size 1–2 per the paper)
// instead of scanning every live transaction.
func (e *Engine) compatible(c *Txn, desired []*Txn) bool {
	if e.ci == nil {
		return e.compatibleScan(c, desired)
	}
	for _, p := range e.ci.plist {
		if p != c && p.might.intersects(c.might) {
			return false
		}
	}
	for _, d := range desired {
		if d != c && d.might.intersects(c.might) {
			return false
		}
	}
	return true
}

// compatibleScan is the original full-scan IOwait-schedule test, kept for
// Config.NaiveConflictScan and the equivalence suite.
func (e *Engine) compatibleScan(c *Txn, desired []*Txn) bool {
	for _, p := range e.live {
		if p != c && p.PartiallyExecuted() && p.might.intersects(c.might) {
			return false
		}
	}
	for _, d := range desired {
		if d != c && d.might.intersects(c.might) {
			return false
		}
	}
	return true
}

// dispatch puts t on a CPU and resumes or starts its work.
func (e *Engine) dispatch(t *Txn, slot int, asSecondary bool) {
	t.state = StateRunning
	t.cpu = slot
	e.slots[slot] = t
	if asSecondary {
		t.ranAsSecondary = true
		e.tracef("T%d dispatched as secondary", t.ID())
	}
	e.emit(trace.Event{Kind: trace.Dispatch, Txn: t.ID(), Other: -1, Item: -1,
		Priority: t.priority, Secondary: asSecondary})
	if t.remain > 0 {
		// Resume the interrupted computation.
		t.sliceStart = e.sim.Now()
		t.cpuEvent = e.sim.After(t.remain, t.updateDoneFn)
		return
	}
	e.startItem(t)
}

// --- invariants ---------------------------------------------------------

// checkInvariants asserts engine-wide consistency; it is enabled by
// Config.CheckInvariants and exercised heavily by the test suite. The
// checks encode the paper's theorems: no lock waits under CCA (Theorem 1:
// deadlock freedom via no-wait) and wound edges only from higher to lower
// priority under the HP baselines.
func (e *Engine) checkInvariants() {
	e.lm.CheckInvariants()
	if e.ci != nil {
		e.ci.verify(e)
	}
	if !e.cfg.NaiveDispatch {
		// ranked mirrors live's membership and, between scheduling points,
		// stays sorted by the stored priorities (nothing mutates a priority
		// outside the dispatch pass, and the pass re-sorts on any change).
		if len(e.ranked) != len(e.live) {
			panic(fmt.Sprintf("core: ranked has %d members, live has %d", len(e.ranked), len(e.live)))
		}
		inLive := make(map[*Txn]bool, len(e.live))
		for _, t := range e.live {
			inLive[t] = true
		}
		for i, t := range e.ranked {
			if !inLive[t] {
				panic(fmt.Sprintf("core: ranked member T%d not live", t.ID()))
			}
			if i > 0 && less(t, e.ranked[i-1]) {
				panic(fmt.Sprintf("core: ranked order violated at %d (T%d before T%d)", i, e.ranked[i-1].ID(), t.ID()))
			}
		}
	}
	occupied := make(map[int]bool)
	for i, s := range e.slots {
		if s == nil {
			continue
		}
		if s.state != StateRunning {
			panic(fmt.Sprintf("core: slot %d occupant T%d in state %v", i, s.ID(), s.state))
		}
		if s.cpu != i {
			panic(fmt.Sprintf("core: slot %d occupant T%d thinks it is on %d", i, s.ID(), s.cpu))
		}
		if occupied[s.ID()] {
			panic(fmt.Sprintf("core: T%d on two CPUs", s.ID()))
		}
		occupied[s.ID()] = true
	}
	for _, t := range e.live {
		switch t.state {
		case StateRunning:
			if t.cpu < 0 || e.slots[t.cpu] != t {
				panic(fmt.Sprintf("core: running T%d not on its slot", t.ID()))
			}
		case StateReady, StateIOWait, StateLockWait, StateAborting:
			if t.cpu >= 0 {
				panic(fmt.Sprintf("core: non-running T%d holds CPU %d", t.ID(), t.cpu))
			}
		case StateCommitted:
			panic(fmt.Sprintf("core: committed T%d still live", t.ID()))
		}
		if t.state == StateLockWait && isCCAFamily(e.policy.Kind()) {
			panic("core: Theorem 1 violated — lock wait under CCA")
		}
		if t.state == StateAborting && t.has.any() {
			panic(fmt.Sprintf("core: aborting T%d still holds items", t.ID()))
		}
		// The hasaccessed bitset mirrors the lock table exactly: equal
		// counts plus has ⊆ held imply set equality.
		if n := e.lm.HeldCount(lock.TxnID(t.ID())); n != t.has.count() {
			panic(fmt.Sprintf("core: T%d bitset has %d items but holds %d locks", t.ID(), t.has.count(), n))
		}
		t.has.forEach(func(it txn.Item) {
			if !e.lm.Holds(lock.TxnID(t.ID()), it) {
				panic(fmt.Sprintf("core: T%d bitset item %d not locked", t.ID(), it))
			}
		})
		// Pending store writes never exceed processed updates.
		if e.store.Pending(db.TxnID(t.ID())) > t.next {
			panic(fmt.Sprintf("core: T%d has %d pending writes after %d updates", t.ID(), e.store.Pending(db.TxnID(t.ID())), t.next))
		}
	}
	if isCCAFamily(e.policy.Kind()) && e.run.LockWaits > 0 {
		panic("core: Theorem 1 violated — CCA recorded lock waits")
	}
	// With exclusive locks only, EDF-HP/FCFS waits always point at
	// strictly higher-priority holders, so cycles are impossible. Shared
	// locks break the argument: a requester facing mixed-priority
	// co-holders waits on the lower-priority ones too, and such waits can
	// cycle — a genuine (and resolved) deadlock, not an engine bug.
	if !e.hasReads && (e.policy.Kind() == EDFHP || e.policy.Kind() == FCFS) && e.run.Deadlocks > 0 {
		panic("core: deadlock under a static-priority HP policy with exclusive locks")
	}
}
