package core

import (
	"fmt"
	"time"

	"repro/internal/history"
	"repro/internal/trace"
)

// oracleSpotCheckEvery is the commit interval between live serializability
// checks (the full history is always checked once more at the end of the
// run).
const oracleSpotCheckEvery = 256

// Oracle is the opt-in runtime safety monitor: it watches the engine's
// structured event stream during a live run — not just in tests — and
// fails the run at the first violation of the paper's correctness results:
//
//   - Theorem 1: CCA never lock-waits (and, as a corollary, never
//     deadlocks);
//   - Lemma 1: no priority reversal — a wound always goes from a priority
//     at least the victim's (checked for the High Priority family; CCA
//     only on a single CPU, where the lemma is stated);
//   - Theorem 2: no circular aborts — the wound edges of any single
//     simulated instant form an acyclic graph;
//   - conflict serializability of the recorded history, spot-checked
//     every oracleSpotCheckEvery commits and fully at run end.
//
// Enable it with Engine.EnableOracle before Run; Run then fails fast on
// the first violation instead of completing with corrupt results.
type Oracle struct {
	e           *Engine
	checkLemma1 bool

	instant time.Duration
	edges   [][2]int32 // same-instant wound edges (wounder, victim)
	commits int
	err     error
}

// EnableOracle attaches the runtime safety oracle to the engine and
// returns it. History recording is switched on if it was not already —
// the serializability checks need it. Must be called before Run; calling
// it twice returns the same oracle.
//
// The oracle's checks key state by transaction ID, so enabling it pins IDs
// for the engine's lifetime (the wall-clock service then grows its tables
// instead of recycling). Enabling it after an ID has already been recycled
// panics — fail fast, because the history would conflate distinct
// transactions that shared an ID and every theorem the oracle checks
// assumes stable IDs. Attach the oracle before the first submission.
func (e *Engine) EnableOracle() *Oracle {
	if e.oracle != nil {
		return e.oracle
	}
	if e.idRecycled {
		panic("core: EnableOracle after transaction IDs were recycled; enable the oracle before submissions (IDs are no longer unique)")
	}
	e.idsPinned = true
	if e.hist == nil {
		e.hist = history.New()
	}
	o := &Oracle{e: e}
	switch e.cfg.Policy {
	case EDFHP, LSFHP, FCFS, AED:
		// These wound strictly higher-over-lower by construction; the
		// check holds on any CPU count.
		o.checkLemma1 = true
	case CCA, CCAP, CCAT:
		// The CCA family wounds unconditionally; Lemma 1 is the paper's
		// single-CPU result that the wounder, being the dispatched
		// transaction, outranks every victim. It holds for CCA-P/CCA-T too:
		// the priority assignment differs but the dispatched transaction is
		// still the live maximum.
		o.checkLemma1 = e.cfg.NumCPUs == 1
		// EDF-CR wounds a lower-priority requester's holder when it cannot
		// finish within the requester's slack (a legitimate reversal);
		// EDF-WP and PCP never wound.
	}
	e.oracle = o
	return o
}

// Err returns the first recorded violation (nil while the run is clean).
func (o *Oracle) Err() error { return o.err }

func (o *Oracle) fail(format string, args ...any) {
	if o.err == nil {
		o.err = fmt.Errorf(format, args...)
	}
}

// observe consumes one engine event, in emission order. The engine calls
// it from emit, so the oracle sees exactly what a trace.Recorder would.
func (o *Oracle) observe(ev trace.Event) {
	if o.err != nil {
		return
	}
	if ev.At != o.instant {
		o.flushInstant()
		o.instant = ev.At
	}
	switch ev.Kind {
	case trace.Block:
		if isCCAFamily(o.e.cfg.Policy) {
			o.fail("Theorem 1 violated: CCA lock-waited (T%d on item %d at %v)", ev.Txn, ev.Item, ev.At)
		}
	case trace.Deadlock:
		if isCCAFamily(o.e.cfg.Policy) {
			o.fail("Theorem 1 violated: deadlock under CCA (T%d aborted at %v)", ev.Txn, ev.At)
		}
	case trace.Wound:
		if o.checkLemma1 && ev.Priority < ev.OtherPriority {
			o.fail("Lemma 1 violated: priority reversal — T%d (%.3f) wounded T%d (%.3f) at %v",
				ev.Txn, ev.Priority, ev.Other, ev.OtherPriority, ev.At)
		}
		o.edges = append(o.edges, [2]int32{int32(ev.Txn), int32(ev.Other)})
	case trace.Commit:
		o.commits++
		if o.commits%oracleSpotCheckEvery == 0 {
			o.checkSerializable("spot check")
		}
	}
}

// flushInstant closes the current simulated instant: the wound edges it
// accumulated must form an acyclic wounder→victim graph (Theorem 2).
// Cycle existence is independent of traversal order, so the map-ordered
// DFS is deterministic in outcome.
func (o *Oracle) flushInstant() {
	if len(o.edges) >= 2 {
		adj := make(map[int32][]int32, len(o.edges))
		for _, e := range o.edges {
			adj[e[0]] = append(adj[e[0]], e[1])
		}
		const (
			visiting = 1
			done     = 2
		)
		state := make(map[int32]int8, len(adj))
		var dfs func(n int32) bool
		dfs = func(n int32) bool {
			state[n] = visiting
			for _, m := range adj[n] {
				switch state[m] {
				case visiting:
					return true
				case 0:
					if dfs(m) {
						return true
					}
				}
			}
			state[n] = done
			return false
		}
		for n := range adj {
			if state[n] == 0 && dfs(n) {
				o.fail("Theorem 2 violated: wound cycle at t=%v among %d wounds", o.instant, len(o.edges))
				break
			}
		}
	}
	o.edges = o.edges[:0]
}

// checkSerializable verifies the recorded history's conflict graph. The
// engine holds every lock to commit or abort (strict two-phase locking),
// so the history must be conflict serializable at every prefix, not just
// at run end — a mid-run cycle is a real violation, not a transient.
func (o *Oracle) checkSerializable(what string) {
	if ok, cycle := o.e.hist.Serializable(); !ok {
		o.fail("serializability violated (%s at %d commits): conflict cycle %v", what, o.commits, cycle)
	}
}

// finish flushes the last instant and runs the final full-history check;
// the engine calls it after the event loop drains.
func (o *Oracle) finish() error {
	o.flushInstant()
	if o.err == nil {
		o.checkSerializable("final")
	}
	return o.err
}
