package core

import (
	"fmt"
	"time"
)

// AdmissionMode selects the overload controller consulted at every arrival.
// The paper's model admits everything; admission control is the robustness
// extension that lets the engine shed load past saturation instead of
// letting the live set grow without bound.
type AdmissionMode string

const (
	// AdmitAll (the zero value) disables admission control.
	AdmitAll AdmissionMode = ""
	// RejectNewest turns an arrival away when the live set already holds
	// MaxLive transactions — the simplest load shedder: the backlog is
	// served, newcomers are sacrificed.
	RejectNewest AdmissionMode = "reject-newest"
	// RejectInfeasible turns an arrival away when its deadline is
	// infeasible given the current backlog: the static CPU work of every
	// live transaction plus the arrival's own resource time, divided
	// across the CPUs, would finish past the arrival's deadline. This is
	// the firm-deadline analogue of the paper's drop rule — a transaction
	// that cannot meet its deadline contributes nothing but interference.
	RejectInfeasible AdmissionMode = "reject-infeasible"
)

// AdmissionConfig configures the engine's overload controller
// (Config.Admission). The zero value admits everything.
type AdmissionConfig struct {
	// Mode selects the rejection rule.
	Mode AdmissionMode
	// MaxLive is the live-set bound. Required (> 0) for RejectNewest;
	// optional for RejectInfeasible, where > 0 adds a hard cap on top of
	// the feasibility test.
	MaxLive int
}

// Validate reports the first problem with the admission configuration.
func (a AdmissionConfig) Validate() error {
	switch a.Mode {
	case AdmitAll, RejectInfeasible:
	case RejectNewest:
		if a.MaxLive <= 0 {
			return fmt.Errorf("core: admission mode %q requires MaxLive > 0", a.Mode)
		}
	default:
		return fmt.Errorf("core: unknown admission mode %q", a.Mode)
	}
	if a.MaxLive < 0 {
		return fmt.Errorf("core: Admission.MaxLive %d < 0", a.MaxLive)
	}
	return nil
}

// rejects is the admission decision for an arriving transaction; callers
// guard on a non-AdmitAll mode. The feasibility estimate is deliberately a
// heuristic: it sums the static CPU demand of the backlog (ignoring
// conflicts and restarts, which only make matters worse) plus the
// arrival's full resource time, so a rejection is near-certainly a
// transaction that would have missed.
func (e *Engine) rejects(t *Txn) bool {
	a := e.cfg.Admission
	switch a.Mode {
	case RejectNewest:
		return len(e.live) >= a.MaxLive
	case RejectInfeasible:
		if a.MaxLive > 0 && len(e.live) >= a.MaxLive {
			return true
		}
		backlog := t.Spec.ResourceTime(e.cfg.Workload.DiskAccessTime)
		for _, v := range e.live {
			backlog += v.remainingStatic()
		}
		eta := time.Duration(e.sim.Now()) + backlog/time.Duration(e.cfg.NumCPUs)
		return eta > t.Spec.Deadline
	}
	return false
}
