package core

// Randomised workload property tests: arbitrary hand-built spec lists
// (random items, IO patterns, read/write mixes, criticalities, bursty
// arrivals) must drain under every policy with invariants on, produce
// serializable histories, and leave a database state equal to the last
// committed writers.

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/txn"
	"repro/internal/workload"
)

// genRandomWorkload builds a structurally valid but adversarial workload:
// clustered items, occasional zero-slack deadlines, random IO and read
// flags, bursts of simultaneous-ish arrivals.
func genRandomWorkload(rng *rand.Rand, dbSize, count int, withIO bool) *workload.Workload {
	p := workload.BaseMainMemory()
	p.DBSize = dbSize
	p.Count = count
	if withIO {
		p.DiskAccessProb = 0.2
		p.DiskAccessTime = 10 * time.Millisecond
	}
	wl := &workload.Workload{Params: p}
	var arrival time.Duration
	for i := 0; i < count; i++ {
		if rng.Intn(4) > 0 { // 25% of txns arrive simultaneously with predecessor
			arrival += time.Duration(rng.ExpFloat64() * float64(30*time.Millisecond))
		}
		n := 1 + rng.Intn(6)
		seen := map[int]bool{}
		var items []txn.Item
		for len(items) < n {
			// Cluster around a hot region half the time.
			var v int
			if rng.Intn(2) == 0 {
				v = rng.Intn(dbSize / 3)
			} else {
				v = rng.Intn(dbSize)
			}
			if !seen[v] {
				seen[v] = true
				items = append(items, txn.Item(v))
			}
		}
		s := workload.Spec{
			ID:      i,
			Arrival: arrival,
			Items:   items,
			Compute: time.Duration(1+rng.Intn(5)) * time.Millisecond,
		}
		if withIO {
			s.NeedsIO = make([]bool, n)
			for j := range s.NeedsIO {
				s.NeedsIO[j] = rng.Intn(5) == 0
			}
		}
		if rng.Intn(3) == 0 {
			s.Reads = make([]bool, n)
			for j := range s.Reads {
				s.Reads[j] = rng.Intn(2) == 0
			}
		}
		if rng.Intn(5) == 0 {
			s.Criticality = rng.Intn(3)
		}
		res := s.ResourceTime(p.DiskAccessTime)
		slack := 1.0 + rng.Float64()*8 // occasionally nearly zero slack
		if rng.Intn(8) == 0 {
			slack = 1.0001
		}
		s.Deadline = s.Arrival + time.Duration(float64(res)*slack)
		wl.Txns = append(wl.Txns, s)
	}
	return wl
}

// TestQuickRandomWorkloadsDrainSerializable: the heavyweight end-to-end
// property — every policy, random adversarial workloads, invariants on,
// serializability checked, final state matched against the history.
func TestQuickRandomWorkloadsDrainSerializable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pols := Policies()
	f := func(seed int64, polQ uint8, ioQ bool) bool {
		rng := rand.New(rand.NewSource(seed))
		pol := pols[int(polQ)%len(pols)]
		if pol == PCP && ioQ {
			pol = EDFHP // PCP is main-memory only
		}
		wl := genRandomWorkload(rng, 40, 60, ioQ)
		cfg := MainMemoryConfig(pol, seed)
		cfg.Workload = wl.Params
		cfg.CheckInvariants = true
		cfg.RecordHistory = true
		e, err := NewWithWorkload(cfg, wl)
		if err != nil {
			return false
		}
		res, err := e.Run()
		if err != nil || res.Committed != 60 {
			return false
		}
		if ok, _ := e.History().Serializable(); !ok {
			return false
		}
		// Final store state matches the last committed writer per item.
		last := map[txn.Item]int{}
		for _, op := range e.History().Ops() {
			if op.Kind == 1 {
				last[op.Item] = op.Txn
			}
		}
		for it := 0; it < 40; it++ {
			v := e.Store().Get(txn.Item(it))
			if w, ok := last[txn.Item(it)]; ok {
				if int(v.Writer) != w {
					return false
				}
			} else if v.Writer != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomWorkloadsFirmMode: as above under firm deadlines
// (commit + dropped must account for every transaction).
func TestQuickRandomWorkloadsFirmMode(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pols := Policies()
	f := func(seed int64, polQ uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		pol := pols[int(polQ)%len(pols)]
		if pol == PCP {
			pol = EDFHP // PCP is main-memory only (workload has IO)
		}
		wl := genRandomWorkload(rng, 30, 50, true)
		cfg := MainMemoryConfig(pol, seed)
		cfg.Workload = wl.Params
		cfg.FirmDeadlines = true
		cfg.CheckInvariants = true
		cfg.RecordHistory = true
		e, err := NewWithWorkload(cfg, wl)
		if err != nil {
			return false
		}
		res, err := e.Run()
		if err != nil || res.Committed+res.Dropped != 50 {
			return false
		}
		ok, _ := e.History().Serializable()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomMultiprocessor: random workloads on 2-3 CPUs and 2 disks.
func TestQuickRandomMultiprocessor(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64, cpuQ, polQ uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		wl := genRandomWorkload(rng, 60, 40, true)
		pols := []PolicyKind{CCA, EDFHP, EDFWP}
		cfg := MainMemoryConfig(pols[int(polQ)%len(pols)], seed)
		cfg.Workload = wl.Params
		cfg.NumCPUs = 2 + int(cpuQ%2)
		cfg.NumDisks = 2
		cfg.CheckInvariants = true
		e, err := NewWithWorkload(cfg, wl)
		if err != nil {
			return false
		}
		res, err := e.Run()
		return err == nil && res.Committed == 40
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
