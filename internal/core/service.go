// Service runs the engine as a wall-clock transaction service: instead of
// executing a pre-generated workload in virtual time, transactions are
// submitted while the clock runs (from HTTP handlers, load generators,
// tests), execute under the configured policy exactly as they would in the
// simulator, and report their fate back to the submitter.
//
// The engine code is shared, not forked: the same calendar, the same
// scheduling points, the same conflict machinery. The only difference is
// the driver (sim.Realtime sleeps until events are due and folds in
// injected arrivals) and the per-transaction completion callback, which is
// nil on every simulation run. That is the whole equivalence argument for
// the Clock refactor — virtual-time runs execute byte-for-byte the same
// code they always did, and the equivalence matrix keeps proving them
// bit-identical.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/db"
	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/history"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Errors reported by Service.Submit.
var (
	// ErrServiceStopped reports a submission against a service whose Run
	// has returned (shutdown, engine failure).
	ErrServiceStopped = errors.New("core: service stopped")
	// ErrDraining reports a submission during graceful drain: the service
	// finishes in-flight transactions but accepts no new ones.
	ErrDraining = errors.New("core: service draining")
	// ErrEngineFailed reports a submission that was in flight when the
	// engine driver failed (panic or oracle violation). Unlike
	// ErrDraining/ErrServiceStopped, the transaction MAY have partially
	// executed — its outcome is unknown, so callers must not treat it
	// as safely retriable without idempotence of their own.
	ErrEngineFailed = errors.New("core: engine failed with transaction in flight")
)

// ServiceOptions tune the wall-clock service without changing what the
// engine computes.
type ServiceOptions struct {
	// Speed is the simulated-to-wall time ratio (sim.RealtimeOptions.Speed);
	// 0 means 1 (real time). Tests compress time with large speeds.
	Speed float64
	// SampleWindow bounds the engine's per-commit tardiness samples to the
	// most recent N commits so a long-lived service keeps constant memory
	// (0 picks a default of 4096). Only consulted with UseSampleRing: the
	// default histogram is constant-memory over any run length.
	SampleWindow int
	// UseSampleRing is the compat flag for the pre-histogram percentile
	// path: keep the bounded sample ring (recent-window percentiles,
	// re-sorted per query) instead of the fixed-bucket log-scale
	// histogram (whole-run percentiles, exact-to-bucket, bucket-sum
	// merging). Retired once the figure suite migrates to histograms.
	UseSampleRing bool
	// Oracle attaches the runtime safety oracle: a violated paper
	// invariant stops the service with an error (surfaced by Err and
	// /healthz) instead of silently corrupting results. The oracle records
	// the full operation history, so it is meant for soak and verification
	// runs, not unbounded production serving.
	Oracle bool
	// StallBudget is the wall-clock watchdog (sim.RealtimeOptions
	// .StallBudget): max same-instant events before the driver declares a
	// stall. 0 picks a generous default; < 0 disables.
	StallBudget int
	// WAL, when non-nil, makes submissions durable: submit records are
	// appended before injection, outcomes before the client's callback
	// fires (see WALHook). nil leaves the submit path untouched.
	WAL *wal.Logger
}

// ServiceRequest describes one submitted transaction. The deadline is
// relative to the (server-assigned) arrival instant, which is the moment
// the request reaches the engine's clock.
type ServiceRequest struct {
	// Items is the ordered access list; every item must lie in
	// [0, DBSize).
	Items []txn.Item
	// Reads optionally flags, per item, a shared-lock access (nil = all
	// writes). Length must match Items when non-nil.
	Reads []bool
	// NeedsIO optionally flags, per item, a disk access before the
	// computation (nil = none). Length must match Items when non-nil.
	NeedsIO []bool
	// Compute is the CPU time per item update.
	Compute time.Duration
	// Deadline is the client's soft deadline, relative to arrival.
	Deadline time.Duration
	// Criticality and Class carry the workload extensions (0 is fine).
	Criticality int
	Class       int
}

// validate reports the first problem with the request against the
// service's configuration.
func (r *ServiceRequest) validate(cfg *Config) error {
	if len(r.Items) == 0 {
		return fmt.Errorf("core: transaction accesses no items")
	}
	for _, it := range r.Items {
		if int(it) < 0 || int(it) >= cfg.Workload.DBSize {
			return fmt.Errorf("core: item %d outside database of size %d", it, cfg.Workload.DBSize)
		}
	}
	if r.Reads != nil && len(r.Reads) != len(r.Items) {
		return fmt.Errorf("core: %d read flags for %d items", len(r.Reads), len(r.Items))
	}
	if r.NeedsIO != nil && len(r.NeedsIO) != len(r.Items) {
		return fmt.Errorf("core: %d io flags for %d items", len(r.NeedsIO), len(r.Items))
	}
	if r.Compute <= 0 {
		return fmt.Errorf("core: compute time %v <= 0", r.Compute)
	}
	if r.Deadline <= 0 {
		return fmt.Errorf("core: relative deadline %v <= 0", r.Deadline)
	}
	if cfg.Workload.DiskAccessProb <= 0 {
		for i, io := range r.NeedsIO {
			if io {
				return fmt.Errorf("core: item %d needs IO but the service is main-memory-resident (DiskAccessProb 0)", r.Items[i])
			}
		}
	}
	return nil
}

// ServiceOutcome reports a submitted transaction's fate. Times are on the
// service's clock (simulated time, which tracks the wall).
type ServiceOutcome struct {
	// State is the terminal state: StateCommitted, StateDropped (wounded
	// by cancellation or drain) or StateRejected (admission control).
	State State
	// Missed reports a commit after the deadline (always true for dropped
	// and rejected transactions).
	Missed bool
	// Arrival, Finish and Deadline are absolute service-clock times.
	Arrival  time.Duration
	Finish   time.Duration
	Deadline time.Duration
	// Response is Finish − Arrival (0 for rejected transactions).
	Response time.Duration
	// Restarts counts how many times the transaction was wounded and
	// re-run before finishing.
	Restarts int
	// Seq is the write-ahead-log sequence number of the submission (0
	// when the service runs without a WAL). Clients journal it to
	// reconcile against the recovered server after a crash.
	Seq uint64
}

// ServiceStats is a point-in-time observability snapshot.
type ServiceStats struct {
	// Result carries the engine's run counters so far (commits, misses,
	// restarts, admission counters, percentiles over the recent window).
	Result metrics.Result
	// Live is the number of admitted, unfinished transactions.
	Live int
	// Now is the current service-clock time.
	Now time.Duration
	// Predict is the conflict-prediction snapshot (CCAP/CCAT policies
	// only; nil otherwise).
	Predict *PredictSnapshot
}

// Service is a wall-clock transaction service over one Engine.
type Service struct {
	e   *Engine
	rt  *sim.Realtime
	wal WALHook

	stopCh chan struct{}

	mu       sync.Mutex
	draining bool
	err      error
}

// NewService builds a wall-clock service for the configuration.
// cfg.Workload supplies the structural parameters (database size, compute
// and disk times); its generation parameters (Count, ArrivalRate, slack)
// are unused — arrivals and deadlines come from submissions.
func NewService(cfg Config, opt ServiceOptions) (*Service, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:    cfg,
		policy: newPolicy(cfg),
		sim:    sim.New(),
		lm:     lock.NewManagerSized(cfg.Workload.DBSize, 64),
		store:  db.New(cfg.Workload.DBSize),
		wl:     &workload.Workload{Params: cfg.Workload},
		slots:  make([]*Txn, cfg.NumCPUs),
	}
	if cfg.RecordHistory {
		e.hist = history.New()
	}
	if !cfg.NaiveConflictScan {
		e.ci = newConflictIndex(cfg.Workload.DBSize)
	}
	e.evalMode = e.policy.Staticness()
	if e.evalMode == EvalConflictClocked && e.ci == nil {
		e.evalMode = EvalDynamic
	}
	if o, ok := e.policy.(DecisionObserver); ok {
		e.obs = o
	}
	if !cfg.Fault.Zero() {
		e.fault = fault.NewInjector(cfg.Seed, cfg.Fault)
	}
	if cfg.Workload.DiskAccessProb > 0 {
		n := cfg.NumDisks
		if n <= 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			d := disk.New(e.sim, cfg.Workload.DiskAccessTime, cfg.DiskDiscipline)
			if e.fault != nil {
				d.SetFaults(e.fault)
			}
			e.disks = append(e.disks, d)
		}
	}
	e.run.CPUs = cfg.NumCPUs
	e.run.UseHistogram = !opt.UseSampleRing
	e.run.SampleWindow = opt.SampleWindow
	if e.run.SampleWindow == 0 {
		e.run.SampleWindow = 4096
	}
	s := &Service{e: e, wal: WALHook{Log: opt.WAL}, stopCh: make(chan struct{})}
	if opt.Oracle {
		e.EnableOracle()
	}
	s.rt = sim.NewRealtime(e.sim, sim.RealtimeOptions{
		Speed:       opt.Speed,
		StallBudget: opt.StallBudget,
		Check: func() error {
			if e.oracle != nil && e.oracle.err != nil {
				return fmt.Errorf("core: oracle: %w", e.oracle.err)
			}
			return nil
		},
	})
	return s, nil
}

// Run drives the service until the context is cancelled or the engine
// fails (a panic, a stall, or an oracle violation). It must be called
// exactly once; Submit blocks until Run is live. Cancellation is a normal
// shutdown and returns ctx.Err(); any other return is a failure, also
// surfaced by Err.
func (s *Service) Run(ctx context.Context) error {
	defer close(s.stopCh)
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("core: service engine panic: %v", p)
			}
		}()
		return s.rt.Run(ctx)
	}()
	if err != nil && !errors.Is(err, context.Canceled) {
		s.mu.Lock()
		s.err = err
		s.mu.Unlock()
	}
	// The driver is dead (this goroutine WAS the driver), so the live
	// set is frozen: answer every still-inflight waiter before stopCh
	// closes, converting a crashed engine into failed-with-error
	// outcomes instead of hangs or misleading "stopped" errors.
	s.failLive(err)
	return err
}

// failLive fires the failure hook of every transaction that was still
// live when the driver stopped. On a clean cancellation waiters get
// ErrServiceStopped (what the stopCh path would have told them); on an
// engine failure they get ErrEngineFailed wrapping the cause, which the
// front-ends must NOT mark retriable — the transaction may have
// partially executed. Runs on Run's goroutine after the driver exited,
// so it owns the engine state; notifyDone's disarming guarantees no
// transaction is answered twice even if the panic struck between a
// terminal callback and live-set removal.
func (s *Service) failLive(cause error) {
	ferr := error(ErrServiceStopped)
	if cause != nil && !errors.Is(cause, context.Canceled) && !errors.Is(cause, context.DeadlineExceeded) {
		ferr = fmt.Errorf("%w: %v", ErrEngineFailed, cause)
	}
	for _, t := range s.e.live {
		if t == nil || t.failHook == nil {
			continue
		}
		hook := t.failHook
		t.failHook = nil
		hook(ferr)
	}
}

// Degraded reports partial capacity loss. A single-engine service is
// never degraded — an engine failure stops it outright (see Err). The
// sharded service overrides this with real partial-failure state.
func (s *Service) Degraded() bool { return false }

// InjectPanic crashes the engine driver with a forged panic on its own
// goroutine — fault-injection tooling for supervision and containment
// tests, the wall-clock analogue of InjectEvent's forged trace events.
// It returns once the panic is enqueued; the crash lands at the
// driver's next wakeup.
func (s *Service) InjectPanic(msg string) error {
	return s.rt.Call(func() { panic(fmt.Sprintf("core: injected panic: %s", msg)) })
}

// Err returns the failure that stopped (or is about to stop) the service:
// an engine panic, a driver stall, or an oracle violation. nil while
// healthy and after a clean cancellation.
func (s *Service) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Draining reports whether graceful drain has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Submit runs one transaction through the service and blocks until it
// reaches a terminal state. The request context carries the client:
// cancellation wounds the transaction (it is dropped — a response no one
// is waiting for has no value) and returns the ctx error alongside the
// dropped outcome. ErrDraining and ErrServiceStopped reject the
// submission outright; an admission-control rejection is not an error but
// an outcome (StateRejected) so callers can distinguish shedding from
// failure.
func (s *Service) Submit(ctx context.Context, req ServiceRequest) (ServiceOutcome, error) {
	if err := req.validate(&s.e.cfg); err != nil {
		return ServiceOutcome{}, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ServiceOutcome{}, ErrDraining
	}
	s.mu.Unlock()

	done := make(chan ServiceOutcome, 1)
	failed := make(chan error, 1)
	seq, err := s.wal.LogSubmit(&req)
	if err != nil {
		return ServiceOutcome{}, err
	}
	// deliver routes a terminal answer onto the waiter's channels; with a
	// WAL the wrapping defers it until the outcome record is durable.
	deliver := s.wal.WrapDone(seq, false, func(o ServiceOutcome, err error) {
		if err != nil {
			failed <- err
			return
		}
		done <- o
	})
	spec := &workload.Spec{
		Items:       req.Items,
		Compute:     req.Compute,
		Reads:       req.Reads,
		NeedsIO:     req.NeedsIO,
		Criticality: req.Criticality,
		Class:       req.Class,
	}
	// tp is written by the arrival call and read by the cancellation
	// call; both run on the driver goroutine, which orders them.
	var tp *Txn
	err = s.rt.Call(func() {
		now := time.Duration(s.e.sim.Now())
		spec.Arrival = now
		spec.Deadline = now + req.Deadline
		tp = s.e.addServiceTxn(spec, func(t *Txn) {
			deliver(outcomeOf(t), nil)
			s.e.retireServiceTxn(t)
		})
		tp.failHook = func(err error) { deliver(ServiceOutcome{}, err) }
		s.e.onArrival(tp)
	})
	if err != nil {
		deliver(ServiceOutcome{}, ErrServiceStopped)
		return ServiceOutcome{}, ErrServiceStopped
	}

	select {
	case o := <-done:
		return o, nil
	case err := <-failed:
		return ServiceOutcome{}, err
	case <-s.stopCh:
		return ServiceOutcome{}, s.stoppedErr(failed)
	case <-ctx.Done():
		// The client is gone: wound the transaction if it is still in
		// flight. Its terminal callback still fires (as a drop), so the
		// outcome arrives on done unless the driver stops first.
		_ = s.rt.Call(func() { s.e.cancelServiceTxn(tp) })
		select {
		case o := <-done:
			return o, ctx.Err()
		case err := <-failed:
			return ServiceOutcome{}, err
		case <-s.stopCh:
			return ServiceOutcome{}, s.stoppedErr(failed)
		}
	}
}

// stoppedErr resolves the stopCh race: the failure sweep delivers on
// failed strictly before stopCh closes, but a waiter's select may still
// pick the stop case when both are ready — prefer the precise error.
func (s *Service) stoppedErr(failed chan error) error {
	select {
	case err := <-failed:
		return err
	default:
		return ErrServiceStopped
	}
}

// Drain performs graceful shutdown of the transaction flow: new
// submissions fail with ErrDraining, in-flight transactions run to
// completion, and when the context expires before they finish every
// remaining one is wounded and dropped. It returns nil when the live set
// drained naturally, ctx.Err() when stragglers were wounded. The caller
// still owns Run's context and should cancel it after Drain returns.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	for {
		live := make(chan int, 1)
		if err := s.rt.Call(func() { live <- len(s.e.live) }); err != nil {
			return nil // driver already stopped: nothing left to drain
		}
		select {
		case n := <-live:
			if n == 0 {
				return nil
			}
		case <-s.stopCh:
			return nil
		}
		select {
		case <-ctx.Done():
			wounded := make(chan struct{}, 1)
			if err := s.rt.Call(func() {
				s.e.dropAllLive()
				wounded <- struct{}{}
			}); err != nil {
				return nil
			}
			select {
			case <-wounded:
			case <-s.stopCh:
			}
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		case <-s.stopCh:
			return nil
		}
	}
}

// InjectEvent feeds a forged trace event through the engine's observers on
// the driver goroutine (see Engine.InjectEvent) — fault-injection tooling:
// forging a violating event is how tests prove the live oracle actually
// stops the service.
func (s *Service) InjectEvent(ev trace.Event) error {
	return s.rt.Call(func() { s.e.InjectEvent(ev) })
}

// Stats returns a point-in-time observability snapshot, or ok=false once
// the service has stopped.
func (s *Service) Stats() (ServiceStats, bool) {
	ch := make(chan ServiceStats, 1)
	if err := s.rt.Call(func() {
		st := ServiceStats{
			Result: s.e.run.Result(),
			Live:   len(s.e.live),
			Now:    time.Duration(s.e.sim.Now()),
		}
		if ps, ok := s.e.PredictSnapshot(); ok {
			st.Predict = &ps
		}
		ch <- st
	}); err != nil {
		return ServiceStats{}, false
	}
	select {
	case st := <-ch:
		return st, true
	case <-s.stopCh:
		return ServiceStats{}, false
	}
}

// RunSnapshot is Stats in mergeable form: a deep copy of the raw run
// counters rather than the computed Result, so a sharded service can fold
// its shards together with metrics.MergeRuns before computing one
// system-wide Result (averaging per-shard Results would bias every ratio;
// merging the counters is exact). ok=false once the service has stopped.
func (s *Service) RunSnapshot() (run metrics.Run, live int, now time.Duration, ok bool) {
	type snap struct {
		run  metrics.Run
		live int
		now  time.Duration
	}
	ch := make(chan snap, 1)
	if err := s.rt.Call(func() {
		ch <- snap{run: s.e.run.Clone(), live: len(s.e.live), now: time.Duration(s.e.sim.Now())}
	}); err != nil {
		return metrics.Run{}, 0, 0, false
	}
	select {
	case sn := <-ch:
		return sn.run, sn.live, sn.now, true
	case <-s.stopCh:
		return metrics.Run{}, 0, 0, false
	}
}

// PredictSnapshot returns the conflict-prediction snapshot on the driver
// goroutine; ok=false when the policy keeps no statistics or the service
// has stopped. The snapshot's Table is a deep copy, safe to merge off the
// driver (the sharded service folds shard snapshots together).
func (s *Service) PredictSnapshot() (PredictSnapshot, bool) {
	type snap struct {
		ps PredictSnapshot
		ok bool
	}
	ch := make(chan snap, 1)
	if err := s.rt.Call(func() {
		ps, ok := s.e.PredictSnapshot()
		ch <- snap{ps, ok}
	}); err != nil {
		return PredictSnapshot{}, false
	}
	select {
	case sn := <-ch:
		return sn.ps, sn.ok
	case <-s.stopCh:
		return PredictSnapshot{}, false
	}
}

// SetPredictView installs the cross-shard merged statistics view on the
// driver goroutine (see Engine.SetPredictView). No-op for policies without
// statistics; the view must not be mutated after the call.
func (s *Service) SetPredictView(v *predict.Table) error {
	return s.rt.Call(func() { s.e.SetPredictView(v) })
}

// Outcome converts a terminal transaction into its submission outcome —
// the exported form of the service's internal conversion, for the shard
// runner's cross-shard completion callbacks.
func (t *Txn) Outcome() ServiceOutcome { return outcomeOf(t) }

// outcomeOf converts a terminal transaction into its submission outcome.
func outcomeOf(t *Txn) ServiceOutcome {
	o := ServiceOutcome{
		State:    t.state,
		Arrival:  t.Spec.Arrival,
		Deadline: t.Spec.Deadline,
		Restarts: t.restarts,
	}
	switch t.state {
	case StateCommitted:
		o.Finish = time.Duration(t.finish)
		o.Response = o.Finish - o.Arrival
		o.Missed = o.Finish > o.Deadline
	default: // dropped or rejected
		o.Missed = true
	}
	return o
}

// --- engine-side service plumbing (driver goroutine only) ---------------

// addServiceTxn builds the runtime transaction for a dynamically submitted
// spec, assigns its ID (recycling finished IDs so the lock-manager, store
// and transaction tables stay bounded by the peak live set, not the
// request count) and registers the terminal callback. The construction
// mirrors NewWithWorkload's per-transaction setup.
func (e *Engine) addServiceTxn(spec *workload.Spec, done func(*Txn)) *Txn {
	// Recycling is safe only when nothing identifies transactions across
	// time: the history (and so the oracle's serializability checks) and
	// the trace recorder key operations by transaction ID. idsPinned is the
	// lifetime latch — once any such consumer has ever attached, IDs stay
	// stable even if the consumer is later detached.
	recycle := !e.idsPinned && e.hist == nil && e.rec == nil
	id := -1
	if recycle && len(e.freeIDs) > 0 {
		id = e.freeIDs[len(e.freeIDs)-1]
		e.freeIDs = e.freeIDs[:len(e.freeIDs)-1]
		e.idRecycled = true
	}
	if id < 0 {
		id = len(e.all)
		e.all = append(e.all, nil)
	}
	spec.ID = id

	t := &Txn{Spec: spec}
	words := (e.cfg.Workload.DBSize + 63) / 64
	nsets := 2
	if len(spec.MightFull) > 0 {
		nsets++
	}
	slab := make([]uint64, nsets*words)
	carve := func(items []txn.Item) bitset {
		b := bitset(slab[:words:words])
		slab = slab[words:]
		for _, it := range items {
			b.add(it)
		}
		return b
	}
	t.might = carve(spec.Items)
	t.has = carve(nil)
	t.cpu = -1
	t.plistIdx = -1
	t.inherited = negInf
	if len(spec.MightFull) > 0 && !e.cfg.PessimisticAnalysis {
		t.mightNarrow = t.might
		t.mightFull = carve(spec.MightFull)
		t.might = t.mightFull
	} else if len(spec.MightFull) > 0 {
		t.might = carve(spec.MightFull)
	}
	for _, r := range spec.Reads {
		if r {
			e.hasReads = true
			break
		}
	}
	t.updateDoneFn = func() { e.onUpdateDone(t) }
	t.rollbackDoneFn = func() { e.onRollbackDone(t, t.pendingRollback) }
	t.done = done
	e.all[id] = t
	return t
}

// retireServiceTxn releases a terminal transaction's table slot so its ID
// can be reused by a later submission. Old references (a pending firm
// deadline event, a stale disk completion) hold the Txn object itself and
// observe its terminal state; they never go through the freed slot.
func (e *Engine) retireServiceTxn(t *Txn) {
	if e.idsPinned || e.hist != nil || e.rec != nil {
		return // IDs stay unique for the history/trace; tables grow instead
	}
	e.all[t.ID()] = nil
	e.freeIDs = append(e.freeIDs, t.ID())
}

// cancelServiceTxn wounds a submitted transaction whose client has gone
// away (or whose drain deadline expired): it is dropped exactly like a
// firm-deadline expiry. A transaction already terminal is left alone.
func (e *Engine) cancelServiceTxn(t *Txn) {
	if t == nil {
		return
	}
	switch t.state {
	case StateCommitted, StateDropped, StateRejected:
		return
	}
	e.note()
	e.drop(t)
	e.reschedule()
}

// dropAllLive wounds every live transaction (drain-deadline expiry).
func (e *Engine) dropAllLive() {
	e.note()
	for len(e.live) > 0 {
		e.drop(e.live[0])
	}
	e.reschedule()
}
