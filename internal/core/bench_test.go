package core

// Scheduling hot-path benchmarks: full CCA simulations across the engine's
// fast-path matrix. Two axes (see Config):
//
//   - NaiveConflictScan: incremental conflict index vs the original
//     O(live × DBSize/64) full rescans;
//   - NaiveDispatch: incremental memoised dispatch pass + pooled event
//     calendar + engine-owned scratch vs the original re-evaluate-and-
//     stable-sort pass with an allocate-per-event calendar.
//
// The configurations mirror the two regimes that matter:
//
//   - base-mm: the paper's Table 1 database (30 items) — heavily contended,
//     small bitsets, the fast paths' worst case;
//   - large-db-high-mpl: a large database (8192 items) driven past
//     saturation so hundreds of transactions are live at once — the regime
//     the naive rescans and per-pass sorting collapse in.
//
// `BENCH_BASELINE=1 go test ./internal/core -run TestWriteBenchBaseline`
// refreshes the committed BENCH_core.json baseline (see DESIGN.md) so
// future changes can track the trajectory. Run the benchmarks themselves
// with -benchmem: allocation counts are first-class here — the dispatch
// fast path's whole point is an allocation-free steady state.

import (
	"encoding/json"
	"os"
	"testing"
)

func benchCCAConfig(dbSize, count int, rate float64, naiveScan, naiveDispatch bool) Config {
	cfg := MainMemoryConfig(CCA, 7)
	cfg.Workload.DBSize = dbSize
	cfg.Workload.Count = count
	cfg.Workload.ArrivalRate = rate
	cfg.NaiveConflictScan = naiveScan
	cfg.NaiveDispatch = naiveDispatch
	return cfg
}

func benchRun(b *testing.B, cfg Config) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// Fast = incremental everything (the default engine). NaiveDispatch keeps
// the conflict index but restores the original dispatch pass and calendar —
// the previous PR's engine, the baseline this PR's allocation work is
// measured against. NaiveFull disables both fast paths.
func BenchmarkCCABaseFast(b *testing.B)          { benchRun(b, benchCCAConfig(30, 300, 8, false, false)) }
func BenchmarkCCABaseNaiveDispatch(b *testing.B) { benchRun(b, benchCCAConfig(30, 300, 8, false, true)) }
func BenchmarkCCABaseNaiveScan(b *testing.B)     { benchRun(b, benchCCAConfig(30, 300, 8, true, false)) }
func BenchmarkCCABaseNaiveFull(b *testing.B)     { benchRun(b, benchCCAConfig(30, 300, 8, true, true)) }

func BenchmarkCCALargeDBHighMPLFast(b *testing.B) {
	benchRun(b, benchCCAConfig(8192, 400, 25, false, false))
}

func BenchmarkCCALargeDBHighMPLNaiveDispatch(b *testing.B) {
	benchRun(b, benchCCAConfig(8192, 400, 25, false, true))
}

func BenchmarkCCALargeDBHighMPLNaiveScan(b *testing.B) {
	benchRun(b, benchCCAConfig(8192, 400, 25, true, false))
}

func BenchmarkCCALargeDBHighMPLNaiveFull(b *testing.B) {
	benchRun(b, benchCCAConfig(8192, 400, 25, true, true))
}

// The EDF-HP pair isolates the static-policy win: with EvalStatic the fast
// pass stops calling Evaluate entirely after each transaction's first pass.
func BenchmarkEDFHPBaseFast(b *testing.B) {
	cfg := benchCCAConfig(30, 300, 8, false, false)
	cfg.Policy = EDFHP
	benchRun(b, cfg)
}

func BenchmarkEDFHPBaseNaiveDispatch(b *testing.B) {
	cfg := benchCCAConfig(30, 300, 8, false, true)
	cfg.Policy = EDFHP
	benchRun(b, cfg)
}

// The predict-policy pair isolates the cost of the conflict-prediction
// term: CCA-P with live stats (observed-rate penalty scaling + decision
// tap feeding the table) against stock CCA on the same workload. The
// acceptance floor is throughput ≥0.9× stock — prediction must ride the
// memoised dispatch pass, not defeat it.
func BenchmarkCCAPBaseFast(b *testing.B) {
	cfg := benchCCAConfig(30, 300, 8, false, false)
	cfg.Policy = CCAP
	cfg.Predict = DefaultPredictConfig()
	benchRun(b, cfg)
}

func BenchmarkCCATBaseFast(b *testing.B) {
	cfg := benchCCAConfig(30, 300, 8, false, false)
	cfg.Policy = CCAT
	cfg.Predict = DefaultPredictConfig()
	benchRun(b, cfg)
}

// TestObserverTapZeroAlloc pins the decision-tap cost with no observer
// attached: every notify helper must be a nil-check and nothing else —
// zero allocations on the hot paths that wound, block, restart and commit
// take.
func TestObserverTapZeroAlloc(t *testing.T) {
	cfg := benchCCAConfig(30, 50, 8, false, false)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.obs != nil {
		t.Fatal("stock CCA engine has an observer attached")
	}
	if len(e.all) < 2 {
		t.Fatal("workload too small")
	}
	a, b := e.all[0], e.all[1]
	if allocs := testing.AllocsPerRun(100, func() {
		e.notifyWound(a, b)
		e.notifyBlock(a, b)
		e.notifyRestart(a)
		e.notifyTerminal(a, true, false)
	}); allocs != 0 {
		t.Fatalf("observer tap with no observer allocates %.1f times per cycle", allocs)
	}
}

// benchModeResult is one engine mode's measurement in BENCH_core.json.
type benchModeResult struct {
	Ms       float64 `json:"ms"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// benchBaselineEntry is one row of BENCH_core.json.
type benchBaselineEntry struct {
	Case   string  `json:"case"`
	DBSize int     `json:"db_size"`
	Txns   int     `json:"txns"`
	Rate   float64 `json:"arrival_rate"`
	// Fast is the default engine (incremental dispatch + conflict index +
	// pooled calendar). NaiveDispatch keeps the index but restores the
	// original dispatch pass and allocate-per-event calendar (the previous
	// baseline the allocation work is measured against). NaiveFull disables
	// both fast paths (the original seed engine).
	Fast          benchModeResult `json:"fast"`
	NaiveDispatch benchModeResult `json:"naive_dispatch"`
	NaiveFull     benchModeResult `json:"naive_full"`
	// SpeedupVsNaiveDispatch and AllocRatioVsNaiveDispatch are this PR's
	// wall-time and allocs/op improvements; SpeedupVsNaiveFull is the
	// cumulative improvement over the seed engine.
	SpeedupVsNaiveDispatch    float64 `json:"speedup_vs_naive_dispatch"`
	AllocRatioVsNaiveDispatch float64 `json:"alloc_ratio_vs_naive_dispatch"`
	SpeedupVsNaiveFull        float64 `json:"speedup_vs_naive_full"`
}

// TestWriteBenchBaseline refreshes the repository's BENCH_core.json when
// BENCH_BASELINE=1 is set. It measures wall time, B/op and allocs/op for the
// three engine modes on both benchmark configurations via testing.Benchmark
// and enforces the acceptance floors: on large-db-high-mpl the fast engine
// must allocate ≥5× less than the naive-dispatch engine and run ≥2× faster
// than the fully naive engine, and on base-mm the fast engine's wall time
// must not regress against naive dispatch.
func TestWriteBenchBaseline(t *testing.T) {
	if os.Getenv("BENCH_BASELINE") == "" {
		t.Skip("set BENCH_BASELINE=1 to refresh BENCH_core.json (see DESIGN.md)")
	}
	measure := func(cfg Config) benchModeResult {
		r := testing.Benchmark(func(b *testing.B) { benchRun(b, cfg) })
		return benchModeResult{
			Ms:       float64(r.NsPerOp()) / 1e6,
			BOp:      r.AllocedBytesPerOp(),
			AllocsOp: r.AllocsPerOp(),
		}
	}
	cases := []struct {
		name   string
		dbSize int
		count  int
		rate   float64
	}{
		{"base-mm", 30, 300, 8},
		{"large-db-high-mpl", 8192, 400, 25},
	}
	out := struct {
		Note          string               `json:"note"`
		Refresh       string               `json:"refresh"`
		Cases         []benchBaselineEntry `json:"cases"`
		PredictPolicy struct {
			CCAMs           float64 `json:"cca_ms"`
			CCAPMs          float64 `json:"ccap_ms"`
			ThroughputRatio float64 `json:"throughput_ratio_vs_cca"`
		} `json:"predict_policy"`
	}{
		Note:    "CCA engine wall time and allocations per full run: fast (incremental dispatch + conflict index + pooled calendar) vs naive_dispatch (index only) vs naive_full (original seed engine); measured by testing.Benchmark",
		Refresh: "BENCH_BASELINE=1 go test ./internal/core -run TestWriteBenchBaseline",
	}
	for _, c := range cases {
		e := benchBaselineEntry{Case: c.name, DBSize: c.dbSize, Txns: c.count, Rate: c.rate}
		e.Fast = measure(benchCCAConfig(c.dbSize, c.count, c.rate, false, false))
		e.NaiveDispatch = measure(benchCCAConfig(c.dbSize, c.count, c.rate, false, true))
		e.NaiveFull = measure(benchCCAConfig(c.dbSize, c.count, c.rate, true, true))
		if e.Fast.Ms > 0 {
			e.SpeedupVsNaiveDispatch = e.NaiveDispatch.Ms / e.Fast.Ms
			e.SpeedupVsNaiveFull = e.NaiveFull.Ms / e.Fast.Ms
		}
		if e.Fast.AllocsOp > 0 {
			e.AllocRatioVsNaiveDispatch = float64(e.NaiveDispatch.AllocsOp) / float64(e.Fast.AllocsOp)
		}
		out.Cases = append(out.Cases, e)
		t.Logf("%s: fast %.1fms/%d allocs, naive-dispatch %.1fms/%d allocs, naive-full %.1fms/%d allocs → speedup %.2fx, alloc ratio %.1fx, vs seed %.2fx",
			c.name, e.Fast.Ms, e.Fast.AllocsOp, e.NaiveDispatch.Ms, e.NaiveDispatch.AllocsOp,
			e.NaiveFull.Ms, e.NaiveFull.AllocsOp,
			e.SpeedupVsNaiveDispatch, e.AllocRatioVsNaiveDispatch, e.SpeedupVsNaiveFull)
		switch c.name {
		case "large-db-high-mpl":
			if e.AllocRatioVsNaiveDispatch < 5 {
				t.Errorf("%s: alloc ratio %.1fx < 5x acceptance floor", c.name, e.AllocRatioVsNaiveDispatch)
			}
			if e.SpeedupVsNaiveFull < 2 {
				t.Errorf("%s: speedup vs seed engine %.2fx < 2x acceptance floor", c.name, e.SpeedupVsNaiveFull)
			}
		case "base-mm":
			if e.Fast.Ms > e.NaiveDispatch.Ms*1.15 {
				t.Errorf("%s: fast wall time %.1fms regresses vs naive dispatch %.1fms", c.name, e.Fast.Ms, e.NaiveDispatch.Ms)
			}
		}
	}
	// Predict-policy dispatch overhead: CCA-P with live stats vs stock CCA
	// on the base configuration. Acceptance floor: ≥0.9× stock throughput.
	ccaMs := measure(benchCCAConfig(30, 300, 8, false, false)).Ms
	ccapCfg := benchCCAConfig(30, 300, 8, false, false)
	ccapCfg.Policy = CCAP
	ccapCfg.Predict = DefaultPredictConfig()
	ccapMs := measure(ccapCfg).Ms
	out.PredictPolicy.CCAMs = ccaMs
	out.PredictPolicy.CCAPMs = ccapMs
	if ccapMs > 0 {
		out.PredictPolicy.ThroughputRatio = ccaMs / ccapMs
	}
	t.Logf("predict-policy: cca %.1fms, cca-p %.1fms → throughput ratio %.2fx", ccaMs, ccapMs, out.PredictPolicy.ThroughputRatio)
	if out.PredictPolicy.ThroughputRatio < 0.9 {
		t.Errorf("predict-policy: cca-p throughput %.2fx stock CCA < 0.9x acceptance floor", out.PredictPolicy.ThroughputRatio)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_core.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
