package core

// Scheduling hot-path benchmarks: full CCA simulations with the incremental
// conflict index against the original full-scan engine
// (Config.NaiveConflictScan). The pair of configurations mirrors the two
// regimes that matter:
//
//   - base-mm: the paper's Table 1 database (30 items) — heavily contended,
//     small bitsets, the index's worst case;
//   - large-db-high-mpl: a large database (8192 items) driven past
//     saturation so hundreds of transactions are live at once — the regime
//     the naive O(live × DBSize/64) rescans collapse in.
//
// `BENCH_BASELINE=1 go test ./internal/core -run TestWriteBenchBaseline`
// refreshes the committed BENCH_core.json baseline (see DESIGN.md) so
// future changes can track the trajectory.

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

func benchCCAConfig(dbSize, count int, rate float64, naive bool) Config {
	cfg := MainMemoryConfig(CCA, 7)
	cfg.Workload.DBSize = dbSize
	cfg.Workload.Count = count
	cfg.Workload.ArrivalRate = rate
	cfg.NaiveConflictScan = naive
	return cfg
}

func benchRun(b *testing.B, cfg Config) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCCABaseIndexed(b *testing.B) { benchRun(b, benchCCAConfig(30, 300, 8, false)) }
func BenchmarkCCABaseNaive(b *testing.B)   { benchRun(b, benchCCAConfig(30, 300, 8, true)) }

func BenchmarkCCALargeDBHighMPLIndexed(b *testing.B) {
	benchRun(b, benchCCAConfig(8192, 400, 25, false))
}

func BenchmarkCCALargeDBHighMPLNaive(b *testing.B) {
	benchRun(b, benchCCAConfig(8192, 400, 25, true))
}

// BenchmarkEDFHPBaseIndexed measures the index's overhead on a policy that
// never queries penalties — only the P-list statistic uses it — to keep the
// maintenance cost honest for the baselines.
func BenchmarkEDFHPBaseIndexed(b *testing.B) {
	cfg := benchCCAConfig(30, 300, 8, false)
	cfg.Policy = EDFHP
	benchRun(b, cfg)
}

func BenchmarkEDFHPBaseNaive(b *testing.B) {
	cfg := benchCCAConfig(30, 300, 8, true)
	cfg.Policy = EDFHP
	benchRun(b, cfg)
}

// benchBaselineEntry is one row of BENCH_core.json.
type benchBaselineEntry struct {
	Case      string  `json:"case"`
	DBSize    int     `json:"db_size"`
	Txns      int     `json:"txns"`
	Rate      float64 `json:"arrival_rate"`
	IndexedMs float64 `json:"indexed_ms"`
	NaiveMs   float64 `json:"naive_ms"`
	Speedup   float64 `json:"speedup"`
}

// TestWriteBenchBaseline refreshes the repository's BENCH_core.json when
// BENCH_BASELINE=1 is set. It records the wall time of the indexed and
// naive engines on both benchmark configurations (best of three runs) and
// fails if the large-DB/high-MPL case regresses below a 2× speedup.
func TestWriteBenchBaseline(t *testing.T) {
	if os.Getenv("BENCH_BASELINE") == "" {
		t.Skip("set BENCH_BASELINE=1 to refresh BENCH_core.json (see DESIGN.md)")
	}
	measure := func(cfg Config) float64 {
		best := 0.0
		for r := 0; r < 3; r++ {
			start := time.Now()
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.Run(); err != nil {
				t.Fatal(err)
			}
			if d := float64(time.Since(start)) / float64(time.Millisecond); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	cases := []struct {
		name   string
		dbSize int
		count  int
		rate   float64
	}{
		{"base-mm", 30, 300, 8},
		{"large-db-high-mpl", 8192, 400, 25},
	}
	out := struct {
		Note    string               `json:"note"`
		Refresh string               `json:"refresh"`
		Cases   []benchBaselineEntry `json:"cases"`
	}{
		Note:    "CCA engine wall time, incremental conflict index vs naive full scans (best of 3)",
		Refresh: "BENCH_BASELINE=1 go test ./internal/core -run TestWriteBenchBaseline",
	}
	for _, c := range cases {
		idx := measure(benchCCAConfig(c.dbSize, c.count, c.rate, false))
		naive := measure(benchCCAConfig(c.dbSize, c.count, c.rate, true))
		e := benchBaselineEntry{
			Case: c.name, DBSize: c.dbSize, Txns: c.count, Rate: c.rate,
			IndexedMs: idx, NaiveMs: naive,
		}
		if idx > 0 {
			e.Speedup = naive / idx
		}
		out.Cases = append(out.Cases, e)
		t.Logf("%s: indexed %.1fms naive %.1fms speedup %.2fx", c.name, idx, naive, e.Speedup)
		if c.name == "large-db-high-mpl" && e.Speedup < 2 {
			t.Errorf("%s: speedup %.2fx < 2x acceptance floor", c.name, e.Speedup)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_core.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
