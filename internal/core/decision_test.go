package core

// Decision-point tests: the paper's §6 notes its simulator omitted the
// effects of conditionally-unsafe/conditionally-conflicting transactions;
// this extension simulates them — a transaction's might-access set starts
// as the union of both branches and narrows when its decision point
// executes — and these tests pin the semantics down.

import (
	"testing"

	"repro/internal/txn"
	"repro/internal/workload"
)

// decisionWorkload hand-builds one branching transaction and one flat
// transaction that conflicts only with the NOT-taken branch.
func decisionWorkload() *workload.Workload {
	p := workload.BaseMainMemory()
	p.DBSize = 10
	p.Count = 2
	wl := &workload.Workload{Params: p}
	wl.Txns = []workload.Spec{
		{
			// T0 executes prefix {0,1} then branch A {2,3}; branch B
			// would have been {4,5}. Needs IO on the last prefix update
			// so there is an IO window right at the decision point.
			ID: 0, Arrival: 0, Deadline: 500 * msec,
			Items:         []txn.Item{0, 1, 2, 3},
			MightFull:     []txn.Item{0, 1, 2, 3, 4, 5},
			DecisionIndex: 1,
			Compute:       4 * msec,
			NeedsIO:       []bool{false, true, false, false},
		},
		{
			// T1 touches only item 4 — on T0's untaken branch B: it
			// conditionally conflicts with T0 before the decision and
			// does not conflict after it.
			ID: 1, Arrival: 1 * msec, Deadline: 1000 * msec,
			Items:   []txn.Item{4},
			Compute: 4 * msec,
		},
	}
	return wl
}

func decisionConfig(pol PolicyKind) Config {
	cfg := MainMemoryConfig(pol, 1)
	cfg.Workload.DBSize = 10
	cfg.Workload.DiskAccessProb = 0.1 // enable the disk model
	cfg.Workload.DiskAccessTime = 25 * msec
	cfg.CheckInvariants = true
	return cfg
}

// TestScenarioConditionalConflictBlocksSecondary: while T0 is before its
// decision point, CCA's IOwait-schedule must not admit T1 (conditional
// conflict counts as conflict, per the paper's IOwait-schedule pseudocode).
func TestScenarioConditionalConflictBlocksSecondary(t *testing.T) {
	e, res := runScenario(t, decisionConfig(CCA), decisionWorkload())
	// T0: item0 compute 0..4; item1 lock + IO 4..29 (T1 arrives at 1 but
	// might-sets overlap on {4}: CPU idles); item1 compute 29..33 —
	// decision point passes, might narrows to {0,1,2,3}; items 2,3 at
	// 33..41; commit 41. T1 runs 41..45.
	wantCommit(t, e, 0, 41*msec)
	wantCommit(t, e, 1, 45*msec)
	if res.Restarts != 0 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
}

// TestScenarioNarrowingAdmitsSecondary: with a later IO window (after the
// decision point), T1 becomes compatible and is admitted. Same pair of
// transactions, IO moved to the first post-decision update.
func TestScenarioNarrowingAdmitsSecondary(t *testing.T) {
	wl := decisionWorkload()
	wl.Txns[0].NeedsIO = []bool{false, false, true, false}
	e, res := runScenario(t, decisionConfig(CCA), wl)
	// T0: items 0,1 at 0..8 (decision passes at 8, might narrows);
	// item2 lock + IO 8..33 — during which T1 (now non-conflicting) runs
	// 8..12; T0 computes item2 33..37, item3 37..41.
	wantCommit(t, e, 1, 12*msec)
	wantCommit(t, e, 0, 41*msec)
	if res.Restarts != 0 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
}

// TestScenarioPessimisticAnalysisNeverAdmits: with PessimisticAnalysis the
// might-set never narrows, so even the post-decision IO window stays
// closed to T1 — the "too pessimistic" behaviour the paper criticises.
func TestScenarioPessimisticAnalysisNeverAdmits(t *testing.T) {
	wl := decisionWorkload()
	wl.Txns[0].NeedsIO = []bool{false, false, true, false}
	cfg := decisionConfig(CCA)
	cfg.PessimisticAnalysis = true
	e, res := runScenario(t, cfg, wl)
	// CPU idles during T0's IO (8..33); T1 only runs after T0 commits.
	wantCommit(t, e, 0, 41*msec)
	wantCommit(t, e, 1, 45*msec)
	if res.Restarts != 0 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
}

// TestDecisionRestartRestoresPessimism: a wounded branching transaction is
// back before its decision point, so its might-set must be the full union
// again.
func TestDecisionRestartRestoresPessimism(t *testing.T) {
	p := workload.BaseMainMemory()
	p.DBSize = 10
	p.Count = 2
	wl := &workload.Workload{Params: p}
	wl.Txns = []workload.Spec{
		{
			ID: 0, Arrival: 0, Deadline: 500 * msec,
			Items:         []txn.Item{0, 1, 2},
			MightFull:     []txn.Item{0, 1, 2, 4},
			DecisionIndex: 0,
			Compute:       4 * msec,
		},
		// Urgent conflicting transaction wounds T0 after its decision.
		{
			ID: 1, Arrival: 6 * msec, Deadline: 30 * msec,
			Items:   []txn.Item{1},
			Compute: 4 * msec,
		},
	}
	cfg := MainMemoryConfig(EDFHP, 1)
	cfg.Workload.DBSize = 10
	cfg.CheckInvariants = true
	e, err := NewWithWorkload(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	t0 := e.Txns()[0]
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if t0.restarts != 1 {
		t.Fatalf("T0 restarts = %d, want 1", t0.restarts)
	}
	// After the rerun T0 passed its decision again; its final might is
	// the narrowed set. The important part was mid-run and is enforced
	// by resetForRestart; spot-check the wiring end state:
	if !t0.might.contains(2) || t0.might.contains(4) {
		t.Fatalf("final might-set not narrowed: %v", t0.might)
	}
}

// TestDecisionWorkloadGeneration: generated branching types are well
// formed and instances pick both branches.
func TestDecisionWorkloadGeneration(t *testing.T) {
	p := workload.BaseMainMemory()
	p.DBSize = 300
	p.Count = 400
	p.DecisionPoints = true
	w := workload.MustGenerate(p, 3)
	branchy := 0
	sawDiffPaths := false
	paths := map[int]string{}
	for i := range w.Txns {
		s := &w.Txns[i]
		if len(s.MightFull) == 0 {
			continue
		}
		branchy++
		full := txn.NewSet(s.MightFull...)
		for _, it := range s.Items {
			if !full.Contains(it) {
				t.Fatalf("txn %d executes outside its might-set", i)
			}
		}
		if s.DecisionIndex < 0 || s.DecisionIndex >= len(s.Items) {
			t.Fatalf("txn %d decision index %d", i, s.DecisionIndex)
		}
		if len(s.MightFull) <= len(s.Items) {
			t.Fatalf("txn %d might-set no larger than its path", i)
		}
		key := ""
		for _, it := range s.Items {
			key += string(rune(it)) // cheap path fingerprint
		}
		if prev, ok := paths[s.Type]; ok && prev != key {
			sawDiffPaths = true
		}
		paths[s.Type] = key
	}
	if branchy < 300 {
		t.Fatalf("only %d branching instances of 400", branchy)
	}
	if !sawDiffPaths {
		t.Fatal("no type ever took two different branches")
	}
	// Type programs round-trip through the pre-analysis formalism.
	ty := w.Types[0]
	if len(ty.BranchA) > 0 {
		a, err := txn.Analyze(ty.Program("T0"))
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Leaves("T0")) != 2 {
			t.Fatal("type program should have two leaves")
		}
	}
}

// TestDecisionWorkloadsDrainAllPolicies: generated branching workloads
// complete under every policy, with serializable histories.
func TestDecisionWorkloadsDrainAllPolicies(t *testing.T) {
	for _, pol := range Policies() {
		cfg := MainMemoryConfig(pol, 2)
		cfg.Workload.Count = 120
		cfg.Workload.ArrivalRate = 8
		cfg.Workload.DecisionPoints = true
		cfg.CheckInvariants = true
		cfg.RecordHistory = true
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.Committed != 120 {
			t.Fatalf("%s: committed %d", pol, res.Committed)
		}
		if ok, cycle := e.History().Serializable(); !ok {
			t.Fatalf("%s: not serializable: %v", pol, cycle)
		}
	}
}

// TestDecisionDiskCCAvsPessimistic: on a disk-resident branching workload,
// pre-analysis narrowing must not be worse than lifetime pessimism (it
// opens IO windows to more transactions).
func TestDecisionDiskCCAvsPessimistic(t *testing.T) {
	run := func(pessimistic bool) float64 {
		var total float64
		for seed := int64(1); seed <= 5; seed++ {
			cfg := DiskConfig(CCA, seed)
			cfg.Workload.Count = 150
			cfg.Workload.ArrivalRate = 5
			cfg.Workload.DBSize = 120
			cfg.Workload.DecisionPoints = true
			cfg.PessimisticAnalysis = pessimistic
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			total += res.MeanLatenessMs
		}
		return total / 5
	}
	refined, pessimistic := run(false), run(true)
	t.Logf("mean lateness: refined=%.2fms pessimistic=%.2fms", refined, pessimistic)
	if refined > pessimistic*1.05+0.5 {
		t.Fatalf("pre-analysis narrowing hurt: %.2f vs %.2f", refined, pessimistic)
	}
}
