package core

import (
	"fmt"
	"time"
)

// Staticness classifies how a policy's Evaluate output can change over a
// transaction's life — the contract the engine's incremental dispatch pass
// uses to skip provably redundant re-evaluations (continuous evaluation
// with memoisation; the observable priorities are identical to evaluating
// from scratch at every scheduling point, which the equivalence suite
// asserts against the retained Config.NaiveDispatch path).
type Staticness int

const (
	// EvalStatic: Evaluate(t) is a constant for t's whole life, restarts
	// included (EDF's deadline, FCFS's arrival time are fixed at arrival).
	EvalStatic Staticness = iota
	// EvalConflictClocked: Evaluate(t) is constant while the pair
	// (simulated time, conflict-index generation) is unchanged — CCA's
	// penalty of conflict moves only when the clock advances (running
	// holders accrue service) or a has-set changes (the same key the
	// engine's penalty cache uses). Without a conflict index (naive scans)
	// the engine conservatively treats such a policy as EvalDynamic.
	EvalConflictClocked
	// EvalDynamic: Evaluate(t) may change at any scheduling point for
	// reasons the engine cannot observe cheaply (LSF's slack shrinks with
	// wall-clock time; AED's group assignment depends on the whole live
	// set and its feedback controller), so it is re-run every pass.
	EvalDynamic
)

// Policy is a scheduling algorithm: a priority assignment plus a conflict
// resolution choice. The engine calls Evaluate at every scheduling point
// (continuous evaluation); policies with static evaluation simply return a
// value that does not change over a transaction's life.
type Policy interface {
	// Kind returns the policy's name.
	Kind() PolicyKind
	// Evaluate returns t's priority now; higher values run first.
	Evaluate(e *Engine, t *Txn) float64
	// Staticness declares when Evaluate's output can change; the engine
	// holds the policy to it by skipping evaluations the declaration
	// proves redundant.
	Staticness() Staticness
	// Wounds decides a data conflict: true aborts the holder (High
	// Priority / wound), false blocks the requester (wait).
	Wounds(e *Engine, requester, holder *Txn) bool
	// FiltersIOWait reports whether, while the highest-priority
	// transaction is blocked, the CPU may only be given to transactions
	// that do not conflict (even conditionally) with any partially
	// executed transaction — the paper's IOwait-schedule.
	FiltersIOWait() bool
	// Inherits reports whether blocked requesters promote the priority
	// of the holders they wait for (Wait Promote).
	Inherits() bool
}

// newPolicy instantiates the policy for a validated config.
func newPolicy(c Config) Policy {
	switch c.Policy {
	case CCA:
		return ccaPolicy{weight: c.PenaltyWeight}
	case EDFHP:
		return edfPolicy{wounds: true}
	case EDFWP:
		return edfPolicy{wounds: false, inherits: true}
	case LSFHP:
		return lsfPolicy{}
	case EDFCR:
		return edfCRPolicy{}
	case AED:
		return newAEDPolicy(c.Seed)
	case PCP:
		return pcpPolicy{}
	case FCFS:
		return fcfsPolicy{}
	case CCAP:
		return newCCAPPolicy(c)
	case CCAT:
		return newCCATPolicy(c)
	default:
		panic(fmt.Sprintf("core: unknown policy %q", c.Policy))
	}
}

// ms converts a duration to float64 milliseconds for priority arithmetic.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// ccaPolicy is the paper's contribution:
//
//	Pr(T) = -(deadline + w · penaltyOfConflict(T))
//
// with High Priority (always-wound) data conflict resolution and the
// IOwait-schedule CPU filter. Continuous evaluation: the penalty changes as
// partially executed transactions accumulate service time, so Evaluate runs
// for every live transaction at every scheduling point — the engine's
// incremental conflict index (conflict.go) keeps each evaluation
// near-O(overlap) rather than O(live × DBSize).
type ccaPolicy struct {
	weight float64
}

func (ccaPolicy) Kind() PolicyKind { return CCA }

func (p ccaPolicy) Evaluate(e *Engine, t *Txn) float64 {
	return -(ms(t.Spec.Deadline) + p.weight*ms(e.PenaltyOfConflict(t)))
}

// Wounds is unconditionally true: in CCA the running transaction aborts
// conflicting transactions; there is no lock wait (the source of CCA's
// deadlock freedom, Theorem 1).
func (ccaPolicy) Wounds(*Engine, *Txn, *Txn) bool { return true }

func (ccaPolicy) FiltersIOWait() bool { return true }
func (ccaPolicy) Inherits() bool      { return false }

// Staticness: the priority is -(deadline + w·penalty); the deadline is
// fixed and the penalty moves only with (clock, conflict-index generation).
func (ccaPolicy) Staticness() Staticness { return EvalConflictClocked }

// edfPolicy is Earliest Deadline First. With wounds=true it is the paper's
// EDF-HP baseline (requester aborts lower-priority holders, waits for
// higher-priority ones); with wounds=false and inherits=true it is EDF-WP
// (never aborts; waiters promote holders; deadlocks possible).
type edfPolicy struct {
	wounds   bool
	inherits bool
}

func (p edfPolicy) Kind() PolicyKind {
	if p.wounds {
		return EDFHP
	}
	return EDFWP
}

func (edfPolicy) Evaluate(_ *Engine, t *Txn) float64 { return -ms(t.Spec.Deadline) }

func (p edfPolicy) Wounds(_ *Engine, requester, holder *Txn) bool {
	if !p.wounds {
		return false
	}
	// High Priority: resolve in favour of the higher-priority
	// transaction. EDF priorities are static, so this comparison cannot
	// invert later (no wound cycles).
	return requester.priority > holder.priority ||
		(requester.priority == holder.priority && requester.ID() < holder.ID())
}

func (edfPolicy) FiltersIOWait() bool { return false }
func (p edfPolicy) Inherits() bool    { return p.inherits }

// Staticness: the deadline is fixed at arrival and survives restarts.
func (edfPolicy) Staticness() Staticness { return EvalStatic }

// lsfPolicy is Least Slack First with High Priority conflict resolution:
// slack = deadline − now − static execution-time estimate.
//
// The estimate deliberately ignores execution progress: a progress-aware
// estimate combined with wounding livelocks (an aborted victim's remaining
// time resets to its full value, making it *more* urgent, so it immediately
// re-preempts and re-wounds its wounder — the priority-reversal instability
// the paper warns about for continuous-evaluation LSF in §3.2). With the
// static estimate, slack differences between transactions are constant over
// time, so the priority order is a fixed total order and wound edges cannot
// cycle.
type lsfPolicy struct{}

func (lsfPolicy) Kind() PolicyKind { return LSFHP }

func (lsfPolicy) Evaluate(e *Engine, t *Txn) float64 {
	res := t.Spec.ResourceTime(e.cfg.Workload.DiskAccessTime)
	slack := t.Spec.Deadline - time.Duration(e.sim.Now()) - res
	return -ms(slack)
}

func (lsfPolicy) Wounds(_ *Engine, requester, holder *Txn) bool {
	return requester.priority > holder.priority ||
		(requester.priority == holder.priority && requester.ID() < holder.ID())
}

func (lsfPolicy) FiltersIOWait() bool { return false }
func (lsfPolicy) Inherits() bool      { return false }

// Staticness: slack shrinks as the simulated clock advances.
func (lsfPolicy) Staticness() Staticness { return EvalDynamic }

// edfCRPolicy is Earliest Deadline First with Conditional Restart (Abbott
// & Garcia-Molina; paper §2/§3.3.2): on a data conflict, the requester
// blocks if the holder's estimated remaining execution fits within the
// requester's slack — the holder is "close enough to done" that waiting is
// cheaper than throwing its work away — and wounds it otherwise. The paper
// points out this hybrid can deadlock (the wait direction is not priority
// ordered); the engine's cycle detector resolves those.
type edfCRPolicy struct{}

func (edfCRPolicy) Kind() PolicyKind { return EDFCR }

func (edfCRPolicy) Evaluate(_ *Engine, t *Txn) float64 { return -ms(t.Spec.Deadline) }

func (edfCRPolicy) Wounds(e *Engine, requester, holder *Txn) bool {
	if holder.priority >= requester.priority {
		// High Priority still protects a more urgent holder.
		return false
	}
	now := time.Duration(e.sim.Now())
	slack := requester.Spec.Deadline - now - requester.remainingStatic()
	// Conditional restart: wait only when the holder can finish within
	// the requester's slack.
	return holder.remainingStatic() > slack
}

func (edfCRPolicy) FiltersIOWait() bool { return false }
func (edfCRPolicy) Inherits() bool      { return false }

// Staticness: the priority is the fixed deadline (only the Wounds decision
// is time-dependent, and that is evaluated per conflict, not cached).
func (edfCRPolicy) Staticness() Staticness { return EvalStatic }

// fcfsPolicy is the non-real-time control: arrival-order priority with High
// Priority conflict resolution.
type fcfsPolicy struct{}

func (fcfsPolicy) Kind() PolicyKind { return FCFS }

func (fcfsPolicy) Evaluate(_ *Engine, t *Txn) float64 { return -ms(t.Spec.Arrival) }

func (fcfsPolicy) Wounds(_ *Engine, requester, holder *Txn) bool {
	return requester.priority > holder.priority
}

func (fcfsPolicy) FiltersIOWait() bool { return false }
func (fcfsPolicy) Inherits() bool      { return false }

// Staticness: the arrival time never changes.
func (fcfsPolicy) Staticness() Staticness { return EvalStatic }
