package core

import (
	"testing"
	"testing/quick"

	"repro/internal/txn"
)

func TestBitsetBasics(t *testing.T) {
	b := newBitset(130)
	if b.any() {
		t.Fatal("fresh bitset non-empty")
	}
	for _, it := range []txn.Item{0, 63, 64, 129} {
		b.add(it)
		if !b.contains(it) {
			t.Fatalf("missing item %d", it)
		}
	}
	if b.count() != 4 {
		t.Fatalf("count = %d, want 4", b.count())
	}
	if b.contains(5) {
		t.Fatal("spurious member")
	}
	b.clear()
	if b.any() || b.count() != 0 {
		t.Fatal("clear did not empty the set")
	}
}

func TestBitsetIntersects(t *testing.T) {
	a := fromItems(100, []txn.Item{1, 70})
	b := fromItems(100, []txn.Item{70, 99})
	c := fromItems(100, []txn.Item{2, 3})
	if !a.intersects(b) || !b.intersects(a) {
		t.Fatal("overlap not detected")
	}
	if a.intersects(c) || c.intersects(a) {
		t.Fatal("false overlap")
	}
	var zero bitset
	if zero.intersects(a) || a.intersects(zero) {
		t.Fatal("empty set intersects")
	}
}

func TestBitsetMatchesTxnSet(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		const n = 256
		ia := make([]txn.Item, len(xs))
		for i, x := range xs {
			ia[i] = txn.Item(x)
		}
		ib := make([]txn.Item, len(ys))
		for i, y := range ys {
			ib[i] = txn.Item(y)
		}
		ba, bb := fromItems(n, ia), fromItems(n, ib)
		sa, sb := txn.NewSet(ia...), txn.NewSet(ib...)
		if ba.count() != sa.Len() || bb.count() != sb.Len() {
			return false
		}
		return ba.intersects(bb) == sa.Intersects(sb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
