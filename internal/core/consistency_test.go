package core

// Consistency tests: the engine maintains an actual versioned store with
// undo logging (internal/db) and can record its operation history
// (internal/history). These tests verify, end-to-end, that every policy's
// schedule is conflict serializable and that the final database state is
// exactly what the committed transactions produced — i.e. that wound-based
// restart really leaves no trace of aborted work.

import (
	"testing"

	"repro/internal/db"
	"repro/internal/txn"
)

func historyConfig(p PolicyKind, seed int64, diskRes bool) Config {
	var cfg Config
	if diskRes {
		cfg = DiskConfig(p, seed)
		cfg.Workload.Count = 80
		cfg.Workload.ArrivalRate = 5
	} else {
		cfg = MainMemoryConfig(p, seed)
		cfg.Workload.Count = 150
		cfg.Workload.ArrivalRate = 8
	}
	cfg.CheckInvariants = true
	cfg.RecordHistory = true
	return cfg
}

// TestSerializabilityAllPolicies: the committed history of every policy is
// conflict serializable, main memory and disk resident.
func TestSerializabilityAllPolicies(t *testing.T) {
	for _, p := range Policies() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			for _, diskRes := range []bool{false, true} {
				if p == PCP && diskRes {
					continue // main-memory only
				}
				e, err := New(historyConfig(p, 3, diskRes))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := e.Run(); err != nil {
					t.Fatal(err)
				}
				h := e.History()
				if h.Committed() != len(e.Txns()) {
					t.Fatalf("history committed %d/%d", h.Committed(), len(e.Txns()))
				}
				if ok, cycle := h.Serializable(); !ok {
					t.Fatalf("disk=%v: history not serializable, cycle %v", diskRes, cycle)
				}
				if _, err := h.SerialOrder(); err != nil {
					t.Fatalf("disk=%v: %v", diskRes, err)
				}
			}
		})
	}
}

// TestSerializabilityWithReadLocks: shared locks added (extension).
func TestSerializabilityWithReadLocks(t *testing.T) {
	for _, p := range []PolicyKind{CCA, EDFHP, EDFWP} {
		cfg := historyConfig(p, 7, false)
		cfg.Workload.ReadFraction = 0.5
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if ok, cycle := e.History().Serializable(); !ok {
			t.Fatalf("%s: read-lock history not serializable, cycle %v", p, cycle)
		}
	}
}

// TestFinalStateMatchesHistory: the store's final value of every item is
// the last committed write in the recorded history — aborted writes were
// fully undone.
func TestFinalStateMatchesHistory(t *testing.T) {
	for _, p := range []PolicyKind{CCA, EDFHP, EDFWP, EDFCR} {
		e, err := New(historyConfig(p, 5, false))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		lastWriter := map[txn.Item]int{}
		for _, op := range e.History().Ops() {
			if op.Kind == 1 { // history.Write
				lastWriter[op.Item] = op.Txn
			}
		}
		for it := 0; it < e.cfg.Workload.DBSize; it++ {
			got := e.Store().Get(txn.Item(it))
			want, written := lastWriter[txn.Item(it)]
			if !written {
				if got.Writer != -1 {
					t.Fatalf("%s: item %d written by T%d but history has no write", p, it, got.Writer)
				}
				continue
			}
			if int(got.Writer) != want {
				t.Fatalf("%s: item %d final writer T%d, history says T%d", p, it, got.Writer, want)
			}
		}
	}
}

// TestStoreCleanAfterRun: no undo logs survive the run.
func TestStoreCleanAfterRun(t *testing.T) {
	e, err := New(historyConfig(CCA, 9, true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Store().ActiveWriters() != 0 {
		t.Fatal("store has active writers after drain")
	}
	_, writes, commits, aborts := e.Store().Stats()
	if writes == 0 || commits != uint64(len(e.Txns())) {
		t.Fatalf("stats: %d writes, %d commits", writes, commits)
	}
	// Aborts in the store correspond to engine restarts plus the final
	// no-op Abort calls... store.Abort is called once per wound.
	_ = aborts
}

// TestHistoryRecordsRestarts: the history's discarded-operation counter
// reflects wound-induced restarts.
func TestHistoryRecordsRestarts(t *testing.T) {
	e, err := New(historyConfig(EDFHP, 3, false))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts > 0 && e.History().AbortedOps() == 0 {
		t.Fatal("restarts occurred but no operations were discarded")
	}
}

// TestSerialOrderAgreesWithStore: replaying the equivalent serial order's
// writes yields the same final state as the concurrent execution — the
// definition of serializability made executable.
func TestSerialOrderAgreesWithStore(t *testing.T) {
	e, err := New(historyConfig(CCA, 11, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	order, err := e.History().SerialOrder()
	if err != nil {
		t.Fatal(err)
	}
	// Replay: execute each transaction's writes serially in that order.
	replay := db.New(e.cfg.Workload.DBSize)
	for _, id := range order {
		spec := e.Txns()[id].Spec
		for _, it := range spec.Items {
			replay.Write(db.TxnID(id), 0, it)
		}
		replay.Commit(db.TxnID(id))
	}
	for it := 0; it < e.cfg.Workload.DBSize; it++ {
		got := e.Store().Get(txn.Item(it)).Writer
		want := replay.Get(txn.Item(it)).Writer
		if got != want {
			t.Fatalf("item %d: concurrent writer T%d, serial replay writer T%d", it, got, want)
		}
	}
}
