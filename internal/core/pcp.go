package core

import "repro/internal/txn"

// pcpPolicy implements the Priority Ceiling Protocol ([Sha88]; extended to
// databases as the read/write priority ceiling protocol in [SRSC91]), which
// the paper identifies as the pure-wait extreme opposite EDF-HP's pure
// abort: "EDF-HP and Priority Ceiling Protocol are the extreme methods that
// use abort and wait respectively" (§6).
//
// Priorities are earliest-deadline-first; since each transaction's deadline
// is fixed at arrival, priorities are job-static, which is the setting
// PCP's guarantees need. The ceiling of a data item is the highest priority
// of any live transaction that might access it (derived from the
// pre-analysis might-sets — this is where the paper's transaction analysis
// meets Sha's protocol). A transaction may begin a new data access only if
// its priority exceeds the ceiling of every item locked by other
// transactions; otherwise it is ceiling-blocked and the holders of the
// blocking items inherit its priority.
//
// Two classic properties follow, and the test suite checks both: a
// transaction that is admitted never finds its lock taken (so PCP never
// aborts anything), and there are no deadlocks.
//
// The engine realises ceiling blocking at dispatch: a transaction whose
// next action is an inadmissible lock acquisition is simply not given the
// CPU; every scheduling point re-evaluates admission, and inheritance makes
// the blocking holder the highest-priority dispatchable transaction so the
// blockage drains.
type pcpPolicy struct{}

func (pcpPolicy) Kind() PolicyKind { return PCP }

func (pcpPolicy) Evaluate(_ *Engine, t *Txn) float64 { return -ms(t.Spec.Deadline) }

// Wounds should be unreachable: an admitted transaction's lock is always
// free (any holder of an item t might access would have given that item a
// ceiling at least t's priority, blocking t's admission). Waiting is the
// safe fallback.
func (pcpPolicy) Wounds(*Engine, *Txn, *Txn) bool { return false }

func (pcpPolicy) FiltersIOWait() bool { return false }
func (pcpPolicy) Inherits() bool      { return true }

// Staticness: the base priority is the fixed deadline; ceiling admission
// and inheritance act outside Evaluate (the engine re-applies the
// inherited floor every pass regardless of evaluation caching).
func (pcpPolicy) Staticness() Staticness { return EvalStatic }

// admits implements the ceiling test for dispatching t, applying priority
// inheritance to the blocking holders when it fails. The second result
// reports whether any holder's inherited priority was raised (the caller
// must then re-rank the dispatch pool).
func (p pcpPolicy) admits(e *Engine, t *Txn) (ok, inheritanceChanged bool) {
	if t.remain > 0 || t.ioDone {
		return true, false // mid-update: no new lock acquisition pending
	}
	if t.next >= len(t.Spec.Items) {
		return true, false // about to commit
	}
	item := t.Spec.Items[t.next]
	if t.has.contains(item) {
		return true, false // re-entrant (granted while waking from a wait)
	}
	base := p.Evaluate(e, t) // ceilings compare base (non-inherited) priorities
	ok = true
	for _, h := range e.live {
		if h == t || !h.has.any() {
			continue
		}
		// The ceiling of the items h holds: max base priority of live
		// transactions that might access any of them. Computing the max
		// over holders h whose held set intersects a claimant's might
		// set is equivalent and avoids per-item bookkeeping.
		ceiling := negInf
		for _, c := range e.live {
			if c != h && c.might.intersects(h.has) {
				if pr := p.Evaluate(e, c); pr > ceiling {
					ceiling = pr
				}
			}
		}
		if base <= ceiling {
			ok = false
			// Priority inheritance: the holder blocks t (and possibly
			// higher claimants); floor it at the highest blocked
			// claimant's priority so it runs and releases.
			if base > h.inherited {
				h.inherited = base
				inheritanceChanged = true
			}
		}
	}
	return ok, inheritanceChanged
}

// itemCeiling returns the PCP ceiling of one item (exported within the
// package for tests): the max base priority among live transactions that
// might access it.
func (p pcpPolicy) itemCeiling(e *Engine, item txn.Item) float64 {
	ceiling := negInf
	for _, c := range e.live {
		if c.might.contains(item) {
			if pr := p.Evaluate(e, c); pr > ceiling {
				ceiling = pr
			}
		}
	}
	return ceiling
}

// admissionPolicy lets a policy veto dispatching a candidate whose next
// action would violate its admission rule (PCP's ceiling test).
type admissionPolicy interface {
	admits(e *Engine, t *Txn) (ok, inheritanceChanged bool)
}
