package core

import (
	"math/bits"

	"repro/internal/txn"
)

// bitset is a fixed-capacity item set used on the engine's hot paths
// (unsafe/conflict tests run at every scheduling point). Capacity is the
// database size, so intersection tests are a handful of word ANDs.
type bitset []uint64

// newBitset returns an empty set able to hold items [0, n).
func newBitset(n int) bitset {
	return make(bitset, (n+63)/64)
}

// add inserts the item.
func (b bitset) add(it txn.Item) { b[int(it)/64] |= 1 << (uint(it) % 64) }

// contains reports membership.
func (b bitset) contains(it txn.Item) bool {
	return b[int(it)/64]&(1<<(uint(it)%64)) != 0
}

// clear removes all items.
func (b bitset) clear() {
	for i := range b {
		b[i] = 0
	}
}

// any reports whether the set is non-empty.
func (b bitset) any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// intersects reports whether b and o share an item.
func (b bitset) intersects(o bitset) bool {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// intersectCount returns the number of items shared by b and o.
func (b bitset) intersectCount(o bitset) int {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(b[i] & o[i])
	}
	return c
}

// forEach calls fn for every item in the set, in ascending order.
func (b bitset) forEach(fn func(it txn.Item)) {
	for i, w := range b {
		for ; w != 0; w &= w - 1 {
			fn(txn.Item(i*64 + bits.TrailingZeros64(w)))
		}
	}
}

// count returns the number of items in the set.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// fromItems builds a bitset of capacity n from an item list.
func fromItems(n int, items []txn.Item) bitset {
	b := newBitset(n)
	for _, it := range items {
		b.add(it)
	}
	return b
}
