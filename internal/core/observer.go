package core

// DecisionObserver is the engine's decision tap: scheduler outcomes —
// wounds, blocks, restarts, terminal fates — delivered to one registered
// observer, synchronously at the decision site. The conflict-prediction
// policies (predict_policy.go) feed their statistics tables through it, and
// future observers (externally attached learners, decision loggers) share
// the same tap instead of growing policy-internal plumbing.
//
// Contract:
//
//   - callbacks run on the engine's event-processing goroutine, inside the
//     decision that triggered them; they must not block, re-enter the
//     engine, or retain the *Txn arguments past the call;
//   - the tap is nil-safe and allocation-free when unset (pinned by
//     TestObserverTapZeroAlloc in bench_test.go) — an engine without an
//     observer pays one nil check per decision;
//   - every notification re-clocks evaluation: the engine bumps the
//     conflict-index generation afterwards, so a policy whose Evaluate
//     consumes observer-fed state (an EvalConflictClocked policy reading a
//     stats table) is re-evaluated exactly as it would be after a conflict
//     event. Observers that mutate no evaluation inputs just cost a memo
//     refresh that recomputes identical values.
type DecisionObserver interface {
	// ObserveWound: wounder aborted victim on a data conflict.
	ObserveWound(e *Engine, wounder, victim *Txn)
	// ObserveBlock: requester chose to wait for holder on a data conflict
	// (never fires under the CCA family — Theorem 1).
	ObserveBlock(e *Engine, requester, holder *Txn)
	// ObserveRestart: victim was aborted — by a wound, a deadlock
	// resolution, a fault, or a permanent IO failure — and will rerun.
	ObserveRestart(e *Engine, victim *Txn)
	// ObserveTerminal: t reached a terminal state. committed distinguishes
	// a commit from a firm-mode drop/cancellation; missed reports a blown
	// deadline (always true for drops).
	ObserveTerminal(e *Engine, t *Txn, committed, missed bool)
}

// SetDecisionObserver installs the decision tap (nil detaches it). A
// policy that itself implements DecisionObserver is attached automatically
// at engine construction; installing an explicit observer replaces that.
func (e *Engine) SetDecisionObserver(o DecisionObserver) {
	e.obs = o
	e.reclockEval()
}

// reclockEval invalidates the evaluation and penalty memos by bumping the
// conflict-index generation — the same key a has-set change bumps — so the
// Staticness contract covers observer-driven state: stats updates re-clock
// evaluation exactly like conflict events do. Without the index (naive
// scans) EvalConflictClocked policies already run as EvalDynamic and every
// pass re-evaluates.
func (e *Engine) reclockEval() {
	if e.ci != nil {
		e.ci.gen++
	}
}

func (e *Engine) notifyWound(wounder, victim *Txn) {
	if e.obs == nil {
		return
	}
	e.obs.ObserveWound(e, wounder, victim)
	e.reclockEval()
}

func (e *Engine) notifyBlock(requester, holder *Txn) {
	if e.obs == nil {
		return
	}
	e.obs.ObserveBlock(e, requester, holder)
	e.reclockEval()
}

func (e *Engine) notifyRestart(victim *Txn) {
	if e.obs == nil {
		return
	}
	e.obs.ObserveRestart(e, victim)
	e.reclockEval()
}

func (e *Engine) notifyTerminal(t *Txn, committed, missed bool) {
	if e.obs == nil {
		return
	}
	e.obs.ObserveTerminal(e, t, committed, missed)
	e.reclockEval()
}
