package core

import (
	"fmt"
	"time"

	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/workload"
)

// State is a transaction's lifecycle state inside the engine.
type State int

const (
	// StateReady: runnable, waiting for a CPU.
	StateReady State = iota
	// StateRunning: occupying a CPU.
	StateRunning
	// StateIOWait: blocked on a disk access.
	StateIOWait
	// StateLockWait: blocked on a data conflict (waiting baselines only;
	// never entered under CCA — Theorem 1).
	StateLockWait
	// StateAborting: wounded while its disk access was in service; the
	// restart completes when the disk is released (paper §5).
	StateAborting
	// StateCommitted: finished.
	StateCommitted
	// StateDropped: discarded at its deadline (firm-deadline mode only).
	StateDropped
	// StateRejected: turned away at arrival by the admission controller
	// (Config.Admission); the transaction never entered the system.
	StateRejected
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateIOWait:
		return "io-wait"
	case StateLockWait:
		return "lock-wait"
	case StateAborting:
		return "aborting"
	case StateCommitted:
		return "committed"
	case StateDropped:
		return "dropped"
	case StateRejected:
		return "rejected"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Txn is the runtime representation of one transaction instance.
type Txn struct {
	// Spec is the generated workload description (items, deadline, ...).
	Spec *workload.Spec

	state State
	// next indexes the update currently being processed.
	next int
	// remain is the CPU time left in the current update's computation
	// (> 0 when resuming after preemption mid-update).
	remain time.Duration
	// ioDone records that the current update's disk access has completed.
	ioDone bool
	// service is the accumulated effective service time (CPU work that
	// an abort would throw away).
	service time.Duration
	// restarts counts aborts of this transaction.
	restarts int
	// inRollback pins the transaction to its CPU while it performs
	// rollback work on behalf of wounded victims.
	inRollback bool
	// ranAsSecondary records that the transaction was ever dispatched
	// while a higher-priority transaction was blocked (for the
	// noncontributing-execution statistic).
	ranAsSecondary bool
	// ceilingExempt is a one-shot pass around a ceiling-admission check,
	// set by the PCP progress override (see dispatchPass) and consumed
	// by the next startItem.
	ceilingExempt bool

	sliceStart sim.Time
	cpuEvent   sim.Handle
	ioReq      *disk.Request
	cpu        int // CPU slot while running, -1 otherwise

	// updateDoneFn and rollbackDoneFn are the transaction's recurring event
	// callbacks, built once at engine construction so the hot path schedules
	// tens of thousands of events without allocating a closure per event.
	// rollbackDoneFn reads pendingRollback, set just before scheduling.
	updateDoneFn    func()
	rollbackDoneFn  func()
	pendingRollback time.Duration

	// might is the current might-access set: mightFull before the
	// decision point, mightNarrow after it (flat transactions use a
	// single set throughout).
	might bitset
	// mightFull is the pessimistic pre-decision might-access set.
	mightFull bitset
	// mightNarrow is the post-decision might-access set (the executed
	// path); nil for flat transactions.
	mightNarrow bitset
	// has is the set of items accessed (locked) so far.
	has bitset

	// Conflict-index state (unused when the engine runs the naive scan,
	// Config.NaiveConflictScan):
	//
	// plistIdx is this transaction's position on the index's P-list slice,
	// or -1 while it has accessed nothing.
	plistIdx int
	// hasCount is the number of items in has (maintained by the index;
	// an O(1) stand-in for has.count()).
	hasCount int
	// seenStamp marks the last penalty walk that visited this transaction
	// (deduplicates holders of several overlapping items).
	seenStamp uint64
	// penaltyVal caches PenaltyOfConflict computed at simulated time
	// penaltyAt under index generation penaltyGen; valid while both still
	// match (no has-set changed and the clock has not advanced).
	penaltyVal time.Duration
	penaltyAt  sim.Time
	penaltyGen uint64
	// predVal/predAt/predGen cache the prediction-policy penalty extension
	// (Engine.predictPenalty) under the same keying discipline.
	predVal time.Duration
	predAt  sim.Time
	predGen uint64

	// priority is the value from the last continuous-evaluation pass
	// (higher runs first).
	priority float64
	// inherited is the floor priority received from waiters under the
	// Wait Promote baseline.
	inherited float64

	// Incremental-evaluation state (unused when Config.NaiveDispatch keeps
	// the original re-evaluate-everything dispatch pass):
	//
	// basePr is the policy's own Evaluate value from the last evaluation
	// (before the inherited-priority floor is applied).
	basePr float64
	// evalValid marks basePr as ever-evaluated; for EvalStatic policies a
	// valid basePr is final for the transaction's whole life.
	evalValid bool
	// evalAt/evalGen key basePr for EvalConflictClocked policies (CCA):
	// the value is provably unchanged while the simulated clock and the
	// conflict-index generation both stand still. evalGen 0 (set by
	// Engine.setMight) never matches a live index generation.
	evalAt  sim.Time
	evalGen uint64
	// desiredStamp marks membership in the dispatch pass identified by
	// Engine.passStamp — an O(1) replacement for scanning the desired set.
	desiredStamp uint64

	finish sim.Time

	// done, when non-nil, is invoked once when the transaction reaches a
	// terminal state (committed, dropped or rejected) — the wall-clock
	// service's completion notification. nil for every simulation run, so
	// the virtual-time path is untouched. It runs on the engine's driver
	// goroutine and must not block.
	done func(*Txn)

	// failHook, when non-nil, is the engine-failure escape hatch: if the
	// driver dies (panic, stall, oracle violation) with this transaction
	// still live, the service's failure sweep invokes it exactly once so
	// the waiter gets failed-with-error instead of a hang. Disarmed the
	// moment done fires — a transaction is answered exactly once.
	failHook func(error)
}

// notifyDone fires the terminal callback (if any) and disarms the
// failure hook, so the engine-failure sweep can never answer a
// transaction its terminal callback already answered.
func (t *Txn) notifyDone() {
	t.failHook = nil
	if t.done != nil {
		t.done(t)
	}
}

// ID returns the transaction instance ID.
func (t *Txn) ID() int { return t.Spec.ID }

// State returns the lifecycle state.
func (t *Txn) State() State { return t.state }

// Deadline returns the absolute deadline.
func (t *Txn) Deadline() time.Duration { return t.Spec.Deadline }

// ServiceTime returns the accumulated effective service time.
func (t *Txn) ServiceTime() time.Duration { return t.service }

// Restarts returns how many times the transaction was aborted.
func (t *Txn) Restarts() int { return t.restarts }

// Priority returns the last evaluated scheduling priority.
func (t *Txn) Priority() float64 { return t.priority }

// PartiallyExecuted reports whether the transaction belongs to the paper's
// P-list: it has accessed at least one data item and has not committed.
func (t *Txn) PartiallyExecuted() bool {
	return t.state != StateCommitted && t.has.any()
}

// remainingStatic returns the isolated CPU time still needed (the engine's
// LSF slack estimate).
func (t *Txn) remainingStatic() time.Duration {
	rem := t.remain
	if t.remain == 0 && t.next < len(t.Spec.Items) && t.state != StateCommitted {
		// The current update's compute has not started.
		rem = t.Spec.Compute
	}
	if t.next < len(t.Spec.Items) {
		rem += time.Duration(len(t.Spec.Items)-t.next-1) * t.Spec.Compute
	}
	return rem
}

// resetForRestart rewinds the transaction to its beginning after an abort.
// The deadline, item list and IO draws are unchanged: the paper's soft
// real-time model re-executes the same transaction.
func (t *Txn) resetForRestart() {
	t.next = 0
	t.remain = 0
	t.ioDone = false
	t.service = 0
	t.inRollback = false
	t.ranAsSecondary = false
	t.ceilingExempt = false
	t.has.clear()
	if t.mightNarrow != nil {
		// A restarted transaction is back before its decision point:
		// its access set is pessimistic again.
		t.might = t.mightFull
	}
	t.cpuEvent = sim.Handle{}
	t.ioReq = nil
	t.cpu = -1
	t.state = StateReady
}
