package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/txn"
)

// TestEnginePanicFailsInflight: a driver panic with submissions in
// flight must answer every waiter with ErrEngineFailed — exactly once,
// never a hang — and Run must return the panic as an error.
func TestEnginePanicFailsInflight(t *testing.T) {
	s, err := NewService(MainMemoryConfig(CCA, 5), ServiceOptions{Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(context.Background()) }()

	// Slow transactions (1s simulated compute at speed 1) so they are
	// still live when the panic lands.
	const n = 8
	var wg sync.WaitGroup
	var answers atomic.Int64
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = s.Submit(context.Background(), ServiceRequest{
				Items:    []txn.Item{txn.Item(i)},
				Compute:  time.Second,
				Deadline: time.Hour,
			})
			answers.Add(1)
		}()
	}
	// Wait until all n are live inside the engine.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, ok := s.Stats()
		if ok && st.Live == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submissions never went live")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := s.InjectPanic("chaos test"); err != nil {
		t.Fatalf("InjectPanic: %v", err)
	}

	select {
	case err := <-runDone:
		if err == nil {
			t.Fatal("Run returned nil after injected panic")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after injected panic")
	}
	wg.Wait()
	if got := answers.Load(); got != n {
		t.Fatalf("%d answers for %d submissions", got, n)
	}
	for i, err := range errs {
		if !errors.Is(err, ErrEngineFailed) {
			t.Fatalf("submit %d: err = %v, want ErrEngineFailed", i, err)
		}
	}
	if s.Err() == nil {
		t.Fatal("Err() nil after driver death")
	}

	// Post-mortem submits fail fast, not hang.
	if _, err := s.Submit(context.Background(), simpleReq(1)); err == nil {
		t.Fatal("submit to dead service succeeded")
	}
}

// TestEnginePanicFailsBatch: the batched path gets the same guarantee —
// every injected submission's Done fires exactly once with an error.
func TestEnginePanicFailsBatch(t *testing.T) {
	s, err := NewService(MainMemoryConfig(CCA, 6), ServiceOptions{Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(context.Background()) }()

	const n = 6
	var calls [n]atomic.Int64
	got := make(chan error, n)
	subs := make([]Submission, n)
	for i := 0; i < n; i++ {
		i := i
		subs[i] = Submission{
			Req: ServiceRequest{
				Items:    []txn.Item{txn.Item(i)},
				Compute:  time.Second,
				Deadline: time.Hour,
			},
			Done: func(o ServiceOutcome, err error) {
				calls[i].Add(1)
				got <- err
			},
		}
	}
	s.SubmitBatch(subs)

	deadline := time.Now().Add(10 * time.Second)
	for {
		st, ok := s.Stats()
		if ok && st.Live == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch never went live")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.InjectPanic("batch chaos"); err != nil {
		t.Fatalf("InjectPanic: %v", err)
	}
	<-runDone

	for i := 0; i < n; i++ {
		select {
		case err := <-got:
			if !errors.Is(err, ErrEngineFailed) {
				t.Fatalf("batch answer %d: %v, want ErrEngineFailed", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("batch submission %d never answered", i)
		}
	}
	// Give any double-fire a moment to land, then check exactly-once.
	time.Sleep(50 * time.Millisecond)
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("submission %d answered %d times", i, n)
		}
	}
}

// TestCancelUnaffectedByFailHook: the ordinary cancel/drain paths still
// answer exactly once with the hardening in place (regression guard for
// the notifyDone refactor).
func TestCancelUnaffectedByFailHook(t *testing.T) {
	s, stop := startService(t, MainMemoryConfig(CCA, 7), ServiceOptions{Speed: 1})
	defer stop()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, ServiceRequest{
			Items:    []txn.Item{3},
			Compute:  time.Second,
			Deadline: time.Hour,
		})
		done <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, ok := s.Stats()
		if ok && st.Live == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submission never went live")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled submit: %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled submit hung")
	}
}
