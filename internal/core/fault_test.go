package core

// Robustness-extension suite: deterministic fault injection (zero-plan
// bit-identity, seeded reproducibility, fast-path equivalence under
// faults), overload admission control, the runtime safety oracle and the
// calendar watchdog.

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/trace"
)

// testPlan is a non-trivial plan exercising every fault class at once.
func testPlan() fault.Plan {
	return fault.Plan{
		DiskSlowProb: 0.2, DiskSlowFactor: 3,
		DiskErrorProb: 0.1, RetryLimit: 2, RetryBackoff: time.Millisecond,
		Brownouts:      []fault.Window{{Start: 2 * time.Second, End: 4 * time.Second}},
		BrownoutFactor: 4,
		CPUJitterProb:  0.2, CPUJitterFactor: 2,
		AbortProb: 0.01,
		Bursts:    []fault.Burst{{Window: fault.Window{Start: 0, End: 3 * time.Second}, RateFactor: 2}},
	}
}

// TestZeroPlanBitIdentical: an explicitly-zero fault plan must leave every
// run bit-identical to an unfaulted one — schedule, metrics, and even the
// JSON encoding of the result (the new counters are omitempty precisely so
// old checkpoints stay byte-comparable).
func TestZeroPlanBitIdentical(t *testing.T) {
	for _, mk := range []struct {
		name string
		cfg  Config
	}{
		{"mm-cca", MainMemoryConfig(CCA, 3)},
		{"disk-edfhp", DiskConfig(EDFHP, 3)},
	} {
		cfg := mk.cfg
		cfg.Workload.Count = 150
		plainSched, plainRes := runForEquivalence(t, cfg, nil)

		faulted := cfg
		faulted.Fault = fault.Plan{}
		fSched, fRes := runForEquivalence(t, faulted, nil)
		if !reflect.DeepEqual(plainSched, fSched) {
			t.Fatalf("%s: zero plan changed the schedule", mk.name)
		}
		if !reflect.DeepEqual(plainRes, fRes) {
			t.Fatalf("%s: zero plan changed the metrics", mk.name)
		}
		a, err := json.Marshal(plainRes)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(fRes)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s: zero plan changed the result encoding:\n%s\n%s", mk.name, a, b)
		}

		// White box: a zero plan must not even build the injector.
		e, err := New(faulted)
		if err != nil {
			t.Fatal(err)
		}
		if e.fault != nil {
			t.Fatalf("%s: zero plan built an injector", mk.name)
		}
	}
}

// TestFaultedRunDeterministic: the same (seed, plan) pair reproduces the
// faulted run bit-identically.
func TestFaultedRunDeterministic(t *testing.T) {
	cfg := DiskConfig(CCA, 5)
	cfg.Workload.Count = 150
	cfg.Fault = testPlan()
	aSched, aRes := runForEquivalence(t, cfg, nil)
	bSched, bRes := runForEquivalence(t, cfg, nil)
	if !reflect.DeepEqual(aSched, bSched) {
		t.Fatal("faulted schedule differs between identical runs")
	}
	if !reflect.DeepEqual(aRes, bRes) {
		t.Fatalf("faulted metrics differ between identical runs:\n%+v\n%+v", aRes, bRes)
	}
	// A different seed must actually produce different faults (otherwise
	// the test above proves nothing).
	cfg2 := cfg
	cfg2.Seed = 6
	_, cRes := runForEquivalence(t, cfg2, nil)
	if reflect.DeepEqual(aRes, cRes) {
		t.Fatal("different seeds produced identical faulted metrics")
	}
}

// TestFaultedEquivalenceMatrix: the scheduling fast paths must stay
// bit-identical to the naive reference under active fault injection too —
// fault draws happen at simulation events shared by all four engines.
func TestFaultedEquivalenceMatrix(t *testing.T) {
	mm := MainMemoryConfig(CCA, 7)
	mm.Workload.Count = 120
	mm.Fault = testPlan()
	assertEquivalent(t, "faulted-mm-cca", mm, nil)

	dk := DiskConfig(EDFHP, 7)
	dk.Workload.Count = 100
	dk.Fault = testPlan()
	assertEquivalent(t, "faulted-disk-edfhp", dk, nil)
}

// TestFaultCountersPropagate: injected faults surface in the run metrics.
func TestFaultCountersPropagate(t *testing.T) {
	cfg := DiskConfig(CCA, 2)
	cfg.Workload.Count = 200
	cfg.Fault = fault.Plan{DiskErrorProb: 0.3, RetryLimit: 2, RetryBackoff: time.Millisecond, AbortProb: 0.02}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.RetriedIO == 0 {
		t.Fatal("30% disk error rate produced no IO retries")
	}
	if res.FaultAborts == 0 {
		t.Fatal("spurious-abort probability produced no fault aborts")
	}
	if res.Restarts < res.FaultAborts {
		t.Fatalf("Restarts %d < FaultAborts %d (every fault abort restarts)", res.Restarts, res.FaultAborts)
	}
}

// TestFaultPlanValidatedByConfig: Config.Validate surfaces plan errors.
func TestFaultPlanValidatedByConfig(t *testing.T) {
	cfg := MainMemoryConfig(CCA, 1)
	cfg.Fault.AbortProb = 2
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "AbortProb") {
		t.Fatalf("invalid plan not rejected: %v", err)
	}
}

// --- admission control ------------------------------------------------

func TestAdmissionValidate(t *testing.T) {
	if err := (AdmissionConfig{}).Validate(); err != nil {
		t.Fatalf("zero admission config rejected: %v", err)
	}
	if err := (AdmissionConfig{Mode: RejectNewest}).Validate(); err == nil {
		t.Fatal("reject-newest without MaxLive accepted")
	}
	if err := (AdmissionConfig{Mode: "bogus"}).Validate(); err == nil {
		t.Fatal("unknown admission mode accepted")
	}
	if err := (AdmissionConfig{Mode: RejectInfeasible, MaxLive: -1}).Validate(); err == nil {
		t.Fatal("negative MaxLive accepted")
	}
	if err := (AdmissionConfig{Mode: RejectInfeasible}).Validate(); err != nil {
		t.Fatalf("reject-infeasible without cap rejected: %v", err)
	}
}

// TestRejectNewestShedsLoad: past saturation with a tiny live-set cap, the
// controller sheds arrivals and the books still balance.
func TestRejectNewestShedsLoad(t *testing.T) {
	cfg := MainMemoryConfig(CCA, 1)
	cfg.Workload.Count = 300
	cfg.Workload.ArrivalRate = 40 // ~3x the 12.5 tr/s capacity
	cfg.Admission = AdmissionConfig{Mode: RejectNewest, MaxLive: 4}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatal("overloaded run rejected nothing")
	}
	if res.Admitted == 0 {
		t.Fatal("overloaded run admitted nothing")
	}
	if res.Admitted+res.Rejected != cfg.Workload.Count {
		t.Fatalf("admitted %d + rejected %d != %d arrivals", res.Admitted, res.Rejected, cfg.Workload.Count)
	}
	if res.Committed+res.Rejected != cfg.Workload.Count {
		t.Fatalf("committed %d + rejected %d != %d (soft deadlines: every admitted txn commits)",
			res.Committed, res.Rejected, cfg.Workload.Count)
	}
	if res.MissPercent <= 0 {
		t.Fatal("rejections must count as misses")
	}
}

// TestRejectInfeasibleShedsOnlyUnderOverload: at a trivial load nothing is
// infeasible; past saturation the feasibility test sheds.
func TestRejectInfeasibleShedsOnlyUnderOverload(t *testing.T) {
	light := MainMemoryConfig(CCA, 1)
	light.Workload.Count = 100
	light.Workload.ArrivalRate = 1
	light.Admission = AdmissionConfig{Mode: RejectInfeasible}
	e, err := New(light)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 {
		t.Fatalf("light load rejected %d transactions", res.Rejected)
	}
	if res.Admitted != 100 {
		t.Fatalf("light load admitted %d, want all 100", res.Admitted)
	}

	heavy := light
	heavy.Workload.ArrivalRate = 50
	heavy.Workload.Count = 300
	e, err = New(heavy)
	if err != nil {
		t.Fatal(err)
	}
	res, err = e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatal("4x-overload run shed nothing under reject-infeasible")
	}
}

// TestAdmissionDeterministic: the controller's decisions replay exactly.
func TestAdmissionDeterministic(t *testing.T) {
	cfg := MainMemoryConfig(EDFHP, 9)
	cfg.Workload.Count = 200
	cfg.Workload.ArrivalRate = 30
	cfg.Admission = AdmissionConfig{Mode: RejectInfeasible, MaxLive: 32}
	aSched, aRes := runForEquivalence(t, cfg, nil)
	bSched, bRes := runForEquivalence(t, cfg, nil)
	if !reflect.DeepEqual(aSched, bSched) || !reflect.DeepEqual(aRes, bRes) {
		t.Fatal("admission-controlled run not deterministic")
	}
	assertEquivalent(t, "admission-edfhp", cfg, nil)
}

// --- watchdog ---------------------------------------------------------

// TestWatchdogDetectsStalledCalendar: a pathological event that reschedules
// itself at the same instant must trip the watchdog with a diagnostic dump
// instead of spinning until the global event guard.
func TestWatchdogDetectsStalledCalendar(t *testing.T) {
	cfg := MainMemoryConfig(CCA, 1)
	cfg.Workload.Count = 20
	cfg.WatchdogBudget = 64
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var spin func()
	spin = func() { e.sim.At(e.sim.Now(), spin) }
	e.sim.At(0, spin)
	_, err = e.Run()
	if err == nil {
		t.Fatal("stalled calendar did not fail")
	}
	if !strings.Contains(err.Error(), "watchdog") || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("watchdog error lacks diagnostics: %v", err)
	}
	if !strings.Contains(err.Error(), "budget 64") {
		t.Fatalf("watchdog error lacks the budget: %v", err)
	}
}

// TestWatchdogDisabled: a negative budget turns the watchdog off — the
// stall then runs into the global event guard instead.
func TestWatchdogDisabled(t *testing.T) {
	cfg := MainMemoryConfig(CCA, 1)
	cfg.Workload.Count = 5
	cfg.WatchdogBudget = -1
	cfg.MaxEvents = 3000
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var spin func()
	spin = func() { e.sim.At(e.sim.Now(), spin) }
	e.sim.At(0, spin)
	_, err = e.Run()
	if err == nil {
		t.Fatal("stall with disabled watchdog did not hit the event guard")
	}
	if strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("disabled watchdog still fired: %v", err)
	}
}

// TestWatchdogQuietOnHealthyRuns: the default budget never trips on
// legitimate workloads (which do have same-instant bursts).
func TestWatchdogQuietOnHealthyRuns(t *testing.T) {
	cfg := MainMemoryConfig(CCA, 4)
	cfg.Workload.Count = 300
	cfg.Workload.ArrivalRate = 12 // near saturation: big same-instant cascades
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("healthy run tripped the watchdog: %v", err)
	}
}

// --- oracle -----------------------------------------------------------

func TestEnableOracleIdempotent(t *testing.T) {
	cfg := MainMemoryConfig(CCA, 1)
	cfg.Workload.Count = 10
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := e.EnableOracle()
	if o == nil || e.EnableOracle() != o {
		t.Fatal("EnableOracle not idempotent")
	}
}

// TestOracleCleanRuns: the oracle stays silent on correct runs of every
// policy family it checks, with every fault class active.
func TestOracleCleanRuns(t *testing.T) {
	for _, p := range []PolicyKind{CCA, EDFHP, LSFHP, EDFWP, EDFCR, AED, PCP, FCFS} {
		cfg := MainMemoryConfig(p, 3)
		cfg.Workload.Count = 150
		cfg.Workload.ArrivalRate = 10
		cfg.Fault = fault.Plan{CPUJitterProb: 0.2, AbortProb: 0.01}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.EnableOracle()
		if _, err := e.Run(); err != nil {
			t.Fatalf("%v: oracle failed a correct run: %v", p, err)
		}
	}
	// Disk-resident too (IO interleavings are where Theorem 1 bites).
	cfg := DiskConfig(CCA, 3)
	cfg.Workload.Count = 120
	cfg.Fault = testPlan()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.EnableOracle()
	if _, err := e.Run(); err != nil {
		t.Fatalf("disk CCA: oracle failed a correct run: %v", err)
	}
}

// TestOracleTheorem1: a lock wait under CCA is a violation; under a waiting
// policy it is business as usual.
func TestOracleTheorem1(t *testing.T) {
	cfg := MainMemoryConfig(CCA, 1)
	cfg.Workload.Count = 10
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := e.EnableOracle()
	o.observe(trace.Event{Kind: trace.Block, Txn: 1, Other: 2, Item: 3})
	if o.Err() == nil || !strings.Contains(o.Err().Error(), "Theorem 1") {
		t.Fatalf("CCA block not flagged: %v", o.Err())
	}

	wp := MainMemoryConfig(EDFWP, 1)
	wp.Workload.Count = 10
	e, err = New(wp)
	if err != nil {
		t.Fatal(err)
	}
	o = e.EnableOracle()
	o.observe(trace.Event{Kind: trace.Block, Txn: 1, Other: 2, Item: 3})
	if o.Err() != nil {
		t.Fatalf("EDF-WP block wrongly flagged: %v", o.Err())
	}
}

// TestOracleLemma1: a wound from a lower priority onto a higher one is a
// reversal for the High Priority family.
func TestOracleLemma1(t *testing.T) {
	cfg := MainMemoryConfig(EDFHP, 1)
	cfg.Workload.Count = 10
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := e.EnableOracle()
	o.observe(trace.Event{Kind: trace.Wound, Txn: 1, Other: 2, Priority: 1, OtherPriority: 5})
	if o.Err() == nil || !strings.Contains(o.Err().Error(), "Lemma 1") {
		t.Fatalf("priority reversal not flagged: %v", o.Err())
	}

	// EDF-CR may legitimately wound upward; the oracle must not check it.
	cr := MainMemoryConfig(EDFCR, 1)
	cr.Workload.Count = 10
	e, err = New(cr)
	if err != nil {
		t.Fatal(err)
	}
	o = e.EnableOracle()
	o.observe(trace.Event{Kind: trace.Wound, Txn: 1, Other: 2, Priority: 1, OtherPriority: 5})
	if o.Err() != nil {
		t.Fatalf("EDF-CR upward wound wrongly flagged: %v", o.Err())
	}
}

// TestOracleTheorem2: same-instant wound edges that form a cycle are a
// circular abort; an acyclic chain is fine.
func TestOracleTheorem2(t *testing.T) {
	mk := func() *Oracle {
		cfg := MainMemoryConfig(EDFHP, 1)
		cfg.Workload.Count = 10
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e.EnableOracle()
	}
	o := mk()
	o.observe(trace.Event{Kind: trace.Wound, Txn: 1, Other: 2, Priority: 5, OtherPriority: 1})
	o.observe(trace.Event{Kind: trace.Wound, Txn: 2, Other: 1, Priority: 5, OtherPriority: 1})
	o.flushInstant()
	if o.Err() == nil || !strings.Contains(o.Err().Error(), "Theorem 2") {
		t.Fatalf("wound cycle not flagged: %v", o.Err())
	}

	o = mk()
	o.observe(trace.Event{Kind: trace.Wound, Txn: 1, Other: 2, Priority: 5, OtherPriority: 1})
	o.observe(trace.Event{Kind: trace.Wound, Txn: 2, Other: 3, Priority: 5, OtherPriority: 1})
	o.flushInstant()
	if o.Err() != nil {
		t.Fatalf("acyclic wound chain wrongly flagged: %v", o.Err())
	}
}

// TestOracleFailsRunFast: a violation observed mid-run aborts Run with the
// oracle's diagnosis instead of completing with corrupt results.
func TestOracleFailsRunFast(t *testing.T) {
	cfg := MainMemoryConfig(CCA, 1)
	cfg.Workload.Count = 50
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.EnableOracle()
	// Forge a violating event before the run starts; the run loop must
	// fail on its first step.
	e.emit(trace.Event{Kind: trace.Block, Txn: 0, Other: -1, Item: 0})
	if _, err := e.Run(); err == nil || !strings.Contains(err.Error(), "oracle") {
		t.Fatalf("run did not fail on oracle violation: %v", err)
	}
}

// TestOracleZeroPlanUnperturbed: enabling the oracle must not change the
// schedule or metrics of a run (it only observes).
func TestOracleZeroPlanUnperturbed(t *testing.T) {
	cfg := MainMemoryConfig(CCA, 2)
	cfg.Workload.Count = 150
	_, plain := runForEquivalence(t, cfg, nil)

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.EnableOracle()
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, interface{}(res)) {
		t.Fatalf("oracle observation changed the metrics:\n%+v\n%+v", plain, res)
	}
}
