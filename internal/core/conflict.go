package core

import (
	"fmt"
	"time"

	"repro/internal/txn"
)

// conflictIndex incrementally maintains the conflict state the scheduler
// queries at every scheduling point, so that CCA's continuous priority
// evaluation (PenaltyOfConflict) and the IOwait-schedule compatibility test
// run in time proportional to the transactions that actually overlap
// instead of rescanning every live transaction's bitset
// (O(live × DBSize/64) per query).
//
// The index consists of:
//
//   - hasAt, an item → partially-executed-holders inverted index: which
//     live transactions have accessed (locked) each item. Updated on lock
//     acquisition, commit release, and abort release.
//   - plist, the paper's P-list: the live transactions with at least one
//     accessed item, as a dense slice for cheap iteration (the paper
//     observes it averages 1–2 members).
//   - a per-transaction cached penalty term (Txn.penaltyVal), invalidated
//     when any overlapping transaction's has-set changes (tracked by the
//     generation counter gen) or when simulated time advances (tracked by
//     timestamp — a running overlapper's effective service time grows with
//     the clock). While the clock stands still and no has-set changed, the
//     penalty is provably constant, so a cache hit is exact, never stale.
//
// With the index, PenaltyOfConflict walks the holders of the items the
// transaction might access (deduplicated with a visit stamp — no
// allocation), and the IOwait-schedule test intersects against the P-list
// only. The engine keeps the original full-scan implementations alongside
// (Config.NaiveConflictScan); the equivalence suite in conflict_test.go
// asserts both produce bit-identical schedules and metrics.
// itemHolders lists the partially executed transactions holding one item.
// The first holder is stored inline: without shared locks an item never has
// a second holder, so the common case allocates no per-item slice at all.
type itemHolders struct {
	first *Txn   // nil = no holder
	extra []*Txn // co-holders beyond the first (shared readers)
}

func (h *itemHolders) add(t *Txn) {
	if h.first == nil {
		h.first = t
		return
	}
	h.extra = append(h.extra, t)
}

func (h *itemHolders) remove(t *Txn) {
	if h.first == t {
		if n := len(h.extra); n > 0 {
			h.first = h.extra[n-1]
			h.extra = h.extra[:n-1]
		} else {
			h.first = nil
		}
		return
	}
	for i, v := range h.extra {
		if v == t {
			n := len(h.extra)
			h.extra[i] = h.extra[n-1]
			h.extra = h.extra[:n-1]
			return
		}
	}
}

type conflictIndex struct {
	// hasAt[i] holds the live transactions that have accessed item i.
	hasAt []itemHolders
	// plist holds the live transactions with a non-empty has-set; each
	// member's plistIdx is its position (swap-remove keeps it dense).
	plist []*Txn
	// gen increments on every has-set mutation; penalty caches carry the
	// generation they were computed at.
	gen uint64
	// stamp is the visit marker for the penalty walk's deduplication.
	stamp uint64
}

// newConflictIndex returns an empty index over a database of dbSize items.
// gen starts at 1 so a zero Txn.penaltyGen (or an explicit invalidation to
// 0) can never match a live generation.
func newConflictIndex(dbSize int) *conflictIndex {
	return &conflictIndex{hasAt: make([]itemHolders, dbSize), gen: 1}
}

// hasAdd records that t has accessed (locked) a new item. Callers must not
// report an item already in t.has.
func (ci *conflictIndex) hasAdd(t *Txn, it txn.Item) {
	ci.hasAt[int(it)].add(t)
	if t.plistIdx < 0 {
		t.plistIdx = len(ci.plist)
		ci.plist = append(ci.plist, t)
	}
	t.hasCount++
	ci.gen++
}

// deindexHas removes every item of t.has from the inverted index and t
// from the P-list (abort release, commit, drop). It reads t.has but does
// not clear it; callers that empty the set (abort, drop) do so afterwards.
func (ci *conflictIndex) deindexHas(t *Txn) {
	if t.hasCount == 0 {
		return
	}
	t.has.forEach(func(it txn.Item) {
		ci.hasAt[int(it)].remove(t)
	})
	last := len(ci.plist) - 1
	moved := ci.plist[last]
	ci.plist[t.plistIdx] = moved
	moved.plistIdx = t.plistIdx
	ci.plist = ci.plist[:last]
	t.plistIdx = -1
	t.hasCount = 0
	ci.gen++
}

// penalty computes the paper's TL for t from the inverted index: the sum
// over the distinct partially executed holders of items t might access.
// The visit stamp deduplicates holders of several overlapping items
// without allocating.
func (ci *conflictIndex) penalty(e *Engine, t *Txn) time.Duration {
	ci.stamp++
	var sum time.Duration
	visit := func(p *Txn) {
		if p == t || p.seenStamp == ci.stamp {
			return
		}
		p.seenStamp = ci.stamp
		sum += e.serviceNow(p)
		if e.cfg.PenaltyIncludesRollback {
			sum += e.rollbackCost(p)
		}
	}
	t.might.forEach(func(it txn.Item) {
		hs := &ci.hasAt[int(it)]
		if hs.first == nil {
			return
		}
		visit(hs.first)
		for _, p := range hs.extra {
			visit(p)
		}
	})
	return sum
}

// verify recomputes the whole index by brute force and panics on any
// divergence. It runs only under Config.CheckInvariants, giving every
// invariant-enabled engine test full coverage of the incremental updates.
func (ci *conflictIndex) verify(e *Engine) {
	inPlist := make(map[*Txn]bool, len(ci.plist))
	for i, t := range ci.plist {
		if t.plistIdx != i {
			panic(fmt.Sprintf("core: T%d plistIdx %d but sits at %d", t.ID(), t.plistIdx, i))
		}
		if inPlist[t] {
			panic(fmt.Sprintf("core: T%d on the P-list twice", t.ID()))
		}
		inPlist[t] = true
	}
	live := 0
	for _, t := range e.live {
		if pe := t.PartiallyExecuted(); pe != inPlist[t] {
			panic(fmt.Sprintf("core: conflict index P-list disagrees for T%d (partially executed %v)", t.ID(), pe))
		}
		if inPlist[t] {
			live++
		}
		if t.hasCount != t.has.count() {
			panic(fmt.Sprintf("core: T%d hasCount %d but bitset has %d items", t.ID(), t.hasCount, t.has.count()))
		}
	}
	if live != len(ci.plist) {
		panic(fmt.Sprintf("core: P-list has %d members, %d of which are live", len(ci.plist), live))
	}
	for i := range ci.hasAt {
		hs := &ci.hasAt[i]
		seen := make(map[*Txn]bool, 1+len(hs.extra))
		check := func(t *Txn) {
			if seen[t] {
				panic(fmt.Sprintf("core: hasAt[%d] lists T%d twice", i, t.ID()))
			}
			seen[t] = true
			if !t.has.contains(txn.Item(i)) || !inPlist[t] {
				panic(fmt.Sprintf("core: stale hasAt entry T%d item %d", t.ID(), i))
			}
		}
		if hs.first != nil {
			check(hs.first)
		}
		for _, t := range hs.extra {
			check(t)
		}
		if hs.first == nil && len(hs.extra) > 0 {
			panic(fmt.Sprintf("core: hasAt[%d] has overflow holders but no first", i))
		}
	}
	for _, t := range e.live {
		t.has.forEach(func(it txn.Item) {
			hs := &ci.hasAt[int(it)]
			if hs.first == t {
				return
			}
			for _, h := range hs.extra {
				if h == t {
					return
				}
			}
			panic(fmt.Sprintf("core: hasAt missing T%d item %d", t.ID(), it))
		})
	}
}
