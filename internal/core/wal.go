// WAL binding: how the wall-clock service makes submissions durable.
//
// The contract, shared by Service and shard.Service (which logs at its
// top level before routing, so per-shard cores run with a nil hook):
//
//   - A submit record is appended after validation, before the
//     submission is injected into the engine (append-before-ack). The
//     append is buffered — the driver goroutine never waits on disk.
//   - The terminal outcome is appended from the engine's done-hook and
//     the client's Done fires only once that record is fsynced (group
//     commit). FIFO append order makes the durable outcome imply a
//     durable submit, so one wait covers both.
//   - A submission answered with an error after its submit record was
//     appended is resolved with an aborted outcome record — its client
//     was told to retry, so recovery must not replay it. The one
//     exception is ErrEngineFailed: the engine died with the
//     transaction in flight, the client was told the outcome is
//     unknown, and the unresolved record makes recovery re-run it so
//     the log converges on exactly one terminal outcome.
//   - Replayed submissions (Submission.WALSeq != 0) skip the submit
//     append — their record already exists — and their outcomes carry
//     FlagReplayed, the at-most-once marker for reconnecting clients.
//
// A nil hook (WAL disabled) is a pure passthrough: LogSubmit returns
// seq 0 and WrapDone returns the callback it was given — the same
// function value, zero overhead on the submit path.
package core

import (
	"errors"
	"fmt"

	"repro/internal/txn"
	"repro/internal/wal"
)

// ErrLogFailed reports a submission whose engine outcome could not be
// made durable: the write-ahead log failed to append or sync the
// outcome record. The transaction DID reach the reported state inside
// the engine, but after a restart it may be replayed — callers must
// treat it like ErrEngineFailed: ambiguous, not blindly retriable.
var ErrLogFailed = errors.New("core: write-ahead log failed")

// WALHook binds a wal.Logger to a submit path. The zero value (and a
// nil pointer) disables logging.
type WALHook struct {
	Log *wal.Logger
}

// Enabled reports whether the hook actually logs.
func (h *WALHook) Enabled() bool { return h != nil && h.Log != nil }

// LogSubmit appends the submit record for req and returns its assigned
// sequence number; 0 with a nil error when logging is disabled.
func (h *WALHook) LogSubmit(req *ServiceRequest) (uint64, error) {
	if !h.Enabled() {
		return 0, nil
	}
	rec := wal.SubmitRecord{
		Items:       make([]int32, len(req.Items)),
		Compute:     req.Compute,
		Deadline:    req.Deadline,
		Criticality: req.Criticality,
		Class:       req.Class,
	}
	for i, it := range req.Items {
		rec.Items[i] = int32(it)
	}
	if req.Reads != nil {
		rec.Reads = append([]bool(nil), req.Reads...)
	}
	if req.NeedsIO != nil {
		rec.NeedsIO = append([]bool(nil), req.NeedsIO...)
	}
	seq, err := h.Log.AppendSubmit(&rec)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrLogFailed, err)
	}
	return seq, nil
}

// WrapDone returns a completion callback that makes outcomes durable
// before delivering them. seq 0 (logging disabled, or the submit
// record was never appended) returns done unchanged. replay marks the
// outcome record FlagReplayed.
//
// The wrapped callback is safe for the engine's done-hook contract: it
// never blocks — the durability wait happens on the logger's sync
// goroutine, which then runs done there.
func (h *WALHook) WrapDone(seq uint64, replay bool, done func(ServiceOutcome, error)) func(ServiceOutcome, error) {
	if !h.Enabled() || seq == 0 {
		return done
	}
	log := h.Log
	return func(o ServiceOutcome, err error) {
		if err != nil {
			if errors.Is(err, ErrEngineFailed) {
				// Outcome unknown: leave the submit record unresolved so
				// recovery replays it.
				done(o, err)
				return
			}
			// The client is told to retry (drain, shutdown, validation on
			// the sharded path): resolve the record so recovery does not
			// double-run the retried work. Fire-and-forget — the error
			// answer does not need to wait for the abort record.
			rec := abortRecord(seq, replay)
			log.AppendOutcome(&rec, nil)
			done(o, err)
			return
		}
		o.Seq = seq
		rec := outcomeRecord(seq, replay, &o)
		aerr := log.AppendOutcome(&rec, func(werr error) {
			if werr != nil {
				done(o, fmt.Errorf("%w: %v", ErrLogFailed, werr))
				return
			}
			done(o, nil)
		})
		if aerr != nil {
			done(o, fmt.Errorf("%w: %v", ErrLogFailed, aerr))
		}
	}
}

func outcomeRecord(seq uint64, replay bool, o *ServiceOutcome) wal.OutcomeRecord {
	rec := wal.OutcomeRecord{
		Seq:      seq,
		State:    uint8(o.State),
		Missed:   o.Missed,
		Restarts: uint32(o.Restarts),
		Arrival:  o.Arrival,
		Finish:   o.Finish,
		Deadline: o.Deadline,
		Response: o.Response,
	}
	if replay {
		rec.Flags |= wal.FlagReplayed
	}
	return rec
}

func abortRecord(seq uint64, replay bool) wal.OutcomeRecord {
	rec := wal.OutcomeRecord{
		Seq:   seq,
		Flags: wal.FlagAborted,
		State: uint8(StateDropped),
	}
	if replay {
		rec.Flags |= wal.FlagReplayed
	}
	return rec
}

// RequestFromWAL reconstructs the ServiceRequest a recovered submit
// record described — the replay path's inverse of LogSubmit.
func RequestFromWAL(rec *wal.SubmitRecord) ServiceRequest {
	req := ServiceRequest{
		Compute:     rec.Compute,
		Deadline:    rec.Deadline,
		Criticality: rec.Criticality,
		Class:       rec.Class,
	}
	req.Items = make([]txn.Item, len(rec.Items))
	for i, it := range rec.Items {
		req.Items[i] = txn.Item(it)
	}
	if rec.Reads != nil {
		req.Reads = append([]bool(nil), rec.Reads...)
	}
	if rec.NeedsIO != nil {
		req.NeedsIO = append([]bool(nil), rec.NeedsIO...)
	}
	return req
}
