package core

import (
	"testing"

	"repro/internal/txn"
)

// TestPCPNeverAborts: PCP's admission rule guarantees an admitted
// transaction's locks are free, so nothing is ever wounded.
func TestPCPNeverAborts(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		res := mustRun(t, smallMM(PCP, seed))
		if res.Restarts != 0 {
			t.Fatalf("MM seed %d: PCP aborted %d transactions", seed, res.Restarts)
		}
		if res.Deadlocks != 0 {
			t.Fatalf("MM seed %d: PCP deadlocked", seed)
		}
	}
}

// TestPCPRejectsDiskConfig: ceiling guarantees assume no self-suspension,
// so the disk-resident configuration is rejected up front.
func TestPCPRejectsDiskConfig(t *testing.T) {
	if _, err := New(DiskConfig(PCP, 1)); err == nil {
		t.Fatal("PCP accepted a disk-resident configuration")
	}
}

// TestPCPScenarioCeilingBlock: the classic PCP behaviours in one scenario —
// priority inheritance lets a blocked urgent transaction accelerate its
// blocker, and a medium transaction with a disjoint access is still held
// back while the inherited holder runs.
func TestPCPScenarioCeilingBlock(t *testing.T) {
	ins := []specIn{
		// T0 (lowest priority): locks item 0 at t=0.
		{arrival: 0, deadline: 300 * msec, items: []txn.Item{0, 1}},
		// T1 (medium): wants only item 2, disjoint from everyone.
		{arrival: 2 * msec, deadline: 200 * msec, items: []txn.Item{2}},
		// T2 (highest): claims item 0, held by T0.
		{arrival: 3 * msec, deadline: 50 * msec, items: []txn.Item{0}},
	}
	cfg := scenarioConfig(PCP, 10, false)
	e, res := runScenario(t, cfg, buildWorkload(10, ins))
	if res.Restarts != 0 {
		t.Fatalf("restarts = %d (PCP must not abort)", res.Restarts)
	}
	// t=0..2: T0 computes item 0. t=2: T1 (higher) preempts (admitted:
	// ceiling(0) is only T0's claim at this instant) and locks item 2.
	// t=3: T2 arrives, is ceiling-blocked on item 0, and T0 inherits
	// T2's priority, preempting T1. T0 finishes item 0 (one 1 ms
	// remains... 2 of 4 ms remain) at 5, item 1 at 9 (admitted over
	// T1's item-2 ceiling thanks to inheritance). T2 runs 9..13. T1
	// resumes its interrupted update and commits at 16.
	wantCommit(t, e, 0, 9*msec)
	wantCommit(t, e, 2, 13*msec)
	wantCommit(t, e, 1, 16*msec)
	// T0 finished well before its own deadline required because it ran
	// at T2's inherited priority — the signature PCP effect.
}

// TestPCPAdmitsWhenNoContention: disjoint transactions run unimpeded.
func TestPCPAdmitsWhenNoContention(t *testing.T) {
	ins := []specIn{
		{arrival: 0, deadline: 300 * msec, items: []txn.Item{0}},
		{arrival: 1 * msec, deadline: 100 * msec, items: []txn.Item{1}},
	}
	e, res := runScenario(t, scenarioConfig(PCP, 10, false), buildWorkload(10, ins))
	// T1 (higher priority) preempts at 1ms: Pr(T1) > ceiling(0) =
	// Pr(T0)... ceiling(0) is only claimed by T0 itself, so T1 is
	// admitted. T1 runs 1..5, T0 resumes 5..8.
	wantCommit(t, e, 1, 5*msec)
	wantCommit(t, e, 0, 8*msec)
	if res.LockWaits != 0 {
		t.Fatalf("LockWaits = %d, want 0 (no contention)", res.LockWaits)
	}
}

// TestPCPSerializable: PCP schedules are serializable too.
func TestPCPSerializable(t *testing.T) {
	cfg := historyConfig(PCP, 6, false)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ok, cycle := e.History().Serializable(); !ok {
		t.Fatalf("PCP history not serializable: %v", cycle)
	}
}

// TestPCPItemCeiling: the ceiling of an item is the max priority among its
// live claimants.
func TestPCPItemCeiling(t *testing.T) {
	e, t0, t1 := policyFixture(t, PCP)
	p := e.policy.(pcpPolicy)
	// Both T0 (deadline 100 -> -100) and T1 (deadline 90 -> -90) might
	// access item 0; only T0 might access item 1.
	if got := p.itemCeiling(e, 0); got != -90 {
		t.Fatalf("ceiling(0) = %v, want -90", got)
	}
	if got := p.itemCeiling(e, 1); got != -100 {
		t.Fatalf("ceiling(1) = %v, want -100", got)
	}
	_ = t0
	_ = t1
}

// TestPCPFirmAndDiskDrain: PCP under firm deadlines and on disk.
func TestPCPFirmAndDiskDrain(t *testing.T) {
	cfg := smallMM(PCP, 2)
	cfg.FirmDeadlines = true
	cfg.Workload.ArrivalRate = 11
	res := mustRun(t, cfg)
	if res.Committed+res.Dropped != 150 {
		t.Fatalf("firm PCP: %d+%d != 150", res.Committed, res.Dropped)
	}
}
