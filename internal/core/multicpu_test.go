package core

// Multi-CPU dispatch determinism: with several CPU slots the dispatch pass
// fills slots from the ranked pool in order, so any instability in pool
// ordering or desired-set construction would surface as schedule divergence
// here first. These tests pin (a) replay determinism — identical configs
// replay identical multi-CPU schedules — and (b) fast-path equivalence —
// the incremental dispatch pass and the naive pass agree on multiprocessor
// configurations, with invariants checked at every scheduling point.

import (
	"reflect"
	"testing"
)

// multiCPUConfig is a moderately contended multiprocessor configuration:
// the enlarged database keeps the pairwise conflict probability low enough
// that several CPUs genuinely run in parallel (on the 30-object base
// database CCA's compatibility rule serialises execution).
func multiCPUConfig(pol PolicyKind, cpus int, seed int64) Config {
	cfg := MainMemoryConfig(pol, seed)
	cfg.Workload.Count = 200
	cfg.Workload.DBSize = 2000
	cfg.Workload.ArrivalRate = 8 * float64(cpus)
	cfg.NumCPUs = cpus
	cfg.CheckInvariants = true
	return cfg
}

// TestMultiCPUDeterministicReplay: the same multi-CPU config replays to an
// identical schedule, for both the incremental and the naive dispatch pass.
func TestMultiCPUDeterministicReplay(t *testing.T) {
	for _, cpus := range []int{2, 4} {
		for _, naive := range []bool{false, true} {
			cfg := multiCPUConfig(CCA, cpus, 7)
			cfg.NaiveDispatch = naive
			s1, r1 := runForEquivalence(t, cfg, nil)
			s2, r2 := runForEquivalence(t, cfg, nil)
			if !reflect.DeepEqual(s1, s2) {
				t.Fatalf("cpus=%d naive=%v: replay diverged", cpus, naive)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("cpus=%d naive=%v: replay metrics diverged", cpus, naive)
			}
		}
	}
}

// TestMultiCPUDispatchEquivalence: the full fast-path matrix agrees on
// multiprocessor configurations across policies with distinct Staticness
// contracts (static EDF-HP, conflict-clocked CCA, dynamic LSF/AED) and on a
// multi-disk configuration where IO waits interleave with dispatch.
func TestMultiCPUDispatchEquivalence(t *testing.T) {
	for _, cpus := range []int{2, 4} {
		for _, pol := range []PolicyKind{CCA, EDFHP, LSFHP, AED} {
			for seed := int64(1); seed <= 2; seed++ {
				assertEquivalent(t, "mp-"+string(pol), multiCPUConfig(pol, cpus, seed), nil)
			}
		}
	}
	cfg := DiskConfig(CCA, 5)
	cfg.Workload.Count = 120
	cfg.NumCPUs = 4
	cfg.NumDisks = 2
	assertEquivalent(t, "mp-disk", cfg, nil)
}
