package core

// The conflict-prediction policies: CCA-P and CCA-T.
//
// CCA keeps the paper's cost term w·penaltyOfConflict(T) static: every
// conflicting holder contributes its full effective service time, however
// rarely that type pair actually conflicts. CCA-P scales each holder's
// contribution by the observed conflict rate for the live (type, type)
// pair, read from an online predict.Table fed through the engine's
// DecisionObserver tap. CCA-T additionally tunes w itself with a
// deterministic seeded hill-climb (optionally ε-greedy) over commit-rate
// feedback windows.
//
// Determinism and equivalence:
//
//   - every extra penalty term is rounded to an integer time.Duration
//     before summation, so the sum is permutation-invariant and the
//     naive/fast equivalence matrix holds for the prediction term exactly
//     as it does for the base penalty;
//   - with RateScale 0 the evaluation expression is literally CCA's, and
//     with Decay 0 the table retains nothing so every rate term is 0 —
//     either degenerate knob reduces CCA-P bit-identically to stock CCA
//     (the anchor theorem, pinned by the policy-cross equivalence suite);
//   - stats updates re-clock evaluation through the observer tap's
//     generation bump, so Staticness stays EvalConflictClocked: a priority
//     is provably unchanged while the clock and the generation stand still.

import (
	"fmt"
	"math"
	"time"

	"repro/internal/predict"
	"repro/internal/stats"
	"repro/internal/txn"
)

// PredictConfig tunes the conflict-prediction layer of CCA-P and CCA-T.
// The zero value is valid: defaults are applied at policy construction
// (RateScale defaults to 1 and Decay to 0.5 only via DefaultPredictConfig —
// a literal zero RateScale/Decay is meaningful and means "off", which is
// what makes the degenerate-equivalence knobs expressible).
type PredictConfig struct {
	// RateScale scales the observed-conflict penalty term: each
	// conflicting holder contributes RateScale · rate(pair) · its base
	// penalty contribution, on top of the base penalty. 0 disables the
	// term (CCA-P then evaluates exactly like CCA).
	RateScale float64
	// Decay is the per-window statistics decay in [0, 1]
	// (predict.Config.Decay). 0 retains nothing — the other degenerate
	// knob.
	Decay float64
	// Window is the statistics bucket width in simulated time
	// (0 = predict.DefaultWindow).
	Window time.Duration
	// Windows is the statistics ring length (0 = predict.DefaultWindows).
	Windows int
	// FeedbackWindow is the number of terminal transactions per tuner
	// feedback window (CCA-T; 0 = 50).
	FeedbackWindow int
	// TunerOff freezes w at Config.PenaltyWeight (CCA-T then evaluates
	// exactly like CCA-P).
	TunerOff bool
	// TunerStep is the initial hill-climb step (0 = 0.25).
	TunerStep float64
	// TunerMin and TunerMax clamp the tuned w (both 0 = [0, 8]).
	TunerMin, TunerMax float64
	// Epsilon is the ε-greedy probability of re-randomising the climb
	// direction at a feedback window boundary, drawn from the run seed's
	// "cca-t" stream (0 = pure hill-climb, fully deterministic without
	// consuming randomness).
	Epsilon float64
}

// DefaultPredictConfig returns the standard prediction knobs: rate term on
// at scale 1, half-life-per-window decay, tuner bounds [0, 8].
func DefaultPredictConfig() PredictConfig {
	return PredictConfig{RateScale: 1, Decay: 0.5}
}

// Validate reports the first problem with the prediction configuration.
func (p PredictConfig) Validate() error {
	if p.RateScale < 0 || math.IsNaN(p.RateScale) || math.IsInf(p.RateScale, 0) {
		return fmt.Errorf("core: Predict.RateScale %v invalid", p.RateScale)
	}
	if p.Decay < 0 || p.Decay > 1 || math.IsNaN(p.Decay) {
		return fmt.Errorf("core: Predict.Decay %v outside [0, 1]", p.Decay)
	}
	if p.Window < 0 {
		return fmt.Errorf("core: Predict.Window %v < 0", p.Window)
	}
	if p.Windows < 0 || p.Windows > predict.MaxWindows {
		return fmt.Errorf("core: Predict.Windows %d outside [0, %d]", p.Windows, predict.MaxWindows)
	}
	if p.FeedbackWindow < 0 {
		return fmt.Errorf("core: Predict.FeedbackWindow %d < 0", p.FeedbackWindow)
	}
	if p.TunerStep < 0 || math.IsNaN(p.TunerStep) {
		return fmt.Errorf("core: Predict.TunerStep %v invalid", p.TunerStep)
	}
	if math.IsNaN(p.TunerMin) || math.IsNaN(p.TunerMax) || p.TunerMin > p.TunerMax {
		return fmt.Errorf("core: Predict tuner bounds [%v, %v] inverted", p.TunerMin, p.TunerMax)
	}
	if p.Epsilon < 0 || p.Epsilon > 1 || math.IsNaN(p.Epsilon) {
		return fmt.Errorf("core: Predict.Epsilon %v outside [0, 1]", p.Epsilon)
	}
	return nil
}

// tableConfig derives the statistics-table geometry for a run config.
func (p PredictConfig) tableConfig(c *Config) predict.Config {
	return predict.Config{
		Types:   c.Workload.TxnTypes,
		Window:  p.Window,
		Windows: p.Windows,
		Decay:   p.Decay,
	}
}

// predictivePolicy is the engine-internal face of a stats-driven policy:
// the shard runner and the observability surface reach the table and the
// tuner through it.
type predictivePolicy interface {
	predictTable() *predict.Table
	setPredictView(*predict.Table)
	predictState() (w float64, steps int, traj []float64)
}

// ccapPolicy is CCA-P; with a tuner attached (ccatPolicy) it is CCA-T.
type ccapPolicy struct {
	kind   PolicyKind
	weight float64
	pc     PredictConfig
	// table receives this engine's own decisions (via the observer tap).
	table *predict.Table
	// view, when non-nil, is the read side used by Evaluate instead of
	// table — the shard runner installs the canonical cross-shard merge at
	// epoch boundaries. nil (single-kernel runs) reads the live table.
	view *predict.Table
}

func newCCAPPolicy(c Config) *ccapPolicy {
	return &ccapPolicy{
		kind:   CCAP,
		weight: c.PenaltyWeight,
		pc:     c.Predict,
		table:  predict.New(c.Predict.tableConfig(&c)),
	}
}

func (p *ccapPolicy) Kind() PolicyKind { return p.kind }

func (p *ccapPolicy) readView() *predict.Table {
	if p.view != nil {
		return p.view
	}
	return p.table
}

// Evaluate is CCA's priority with the prediction term folded into the
// penalty: -(deadline + w·(penalty + predictPenalty)). With RateScale 0
// the expression reduces to CCA's, float-for-float.
func (p *ccapPolicy) Evaluate(e *Engine, t *Txn) float64 {
	pen := e.PenaltyOfConflict(t)
	if p.pc.RateScale != 0 {
		pen += e.predictPenalty(t, p.readView(), p.pc.RateScale)
	}
	return -(ms(t.Spec.Deadline) + p.weight*ms(pen))
}

// Wounds is unconditionally true — the CCA family never lock-waits
// (Theorem 1 applies to CCA-P/CCA-T verbatim: the conflict-resolution rule
// is untouched, only the priority assignment changes).
func (p *ccapPolicy) Wounds(*Engine, *Txn, *Txn) bool { return true }

func (p *ccapPolicy) FiltersIOWait() bool { return true }
func (p *ccapPolicy) Inherits() bool      { return false }

// Staticness: the priority moves only with (clock, generation) — the base
// penalty by CCA's argument, the prediction term because every stats
// update and view install re-clocks the generation through the observer
// tap.
func (p *ccapPolicy) Staticness() Staticness { return EvalConflictClocked }

// --- observer feed ------------------------------------------------------

func (p *ccapPolicy) ObserveWound(e *Engine, wounder, victim *Txn) {
	p.table.Record(predict.Wound, wounder.Spec.Type, victim.Spec.Type, e.Now())
}

func (p *ccapPolicy) ObserveBlock(e *Engine, requester, holder *Txn) {
	p.table.Record(predict.Block, requester.Spec.Type, holder.Spec.Type, e.Now())
}

// ObserveRestart files system-caused aborts (faults, IO failures,
// deadline drops re-running) on the victim's diagonal — they carry no pair
// information but still mark the type as churn-prone. Wound restarts were
// already counted pairwise by ObserveWound.
func (p *ccapPolicy) ObserveRestart(e *Engine, victim *Txn) {
	p.table.Record(predict.Restart, victim.Spec.Type, victim.Spec.Type, e.Now())
}

// ObserveTerminal credits a commit against every partially executed peer
// the committer coexisted with — the conflict-rate denominator: "this pair
// was live together and did not conflict". Peers are read from the P-list
// (or the live scan, naive mode); both enumerate the same set, and counts
// are order-free, so the equivalence matrix is unaffected.
func (p *ccapPolicy) ObserveTerminal(e *Engine, t *Txn, committed, missed bool) {
	if !committed {
		return
	}
	now := e.Now()
	if e.ci != nil {
		for _, peer := range e.ci.plist {
			p.table.Record(predict.Commit, t.Spec.Type, peer.Spec.Type, now)
		}
		return
	}
	for _, peer := range e.live {
		if peer != t && peer.PartiallyExecuted() {
			p.table.Record(predict.Commit, t.Spec.Type, peer.Spec.Type, now)
		}
	}
}

// --- predictive plumbing ------------------------------------------------

func (p *ccapPolicy) predictTable() *predict.Table        { return p.table }
func (p *ccapPolicy) setPredictView(v *predict.Table)     { p.view = v }
func (p *ccapPolicy) predictState() (float64, int, []float64) {
	return p.weight, 0, nil
}

// ccatPolicy is CCA-T: CCA-P plus the self-tuning w. At every
// FeedbackWindow terminal transactions it scores the window's on-time
// commit rate and hill-climbs w: keep direction while the score does not
// degrade (growing the step), reverse and halve it when it does, with an
// optional ε-greedy random re-direction drawn from the run seed's "cca-t"
// stream. All state advances only on terminal events, so the w trajectory
// is a deterministic function of (seed, workload, config).
type ccatPolicy struct {
	ccapPolicy
	rng  *stats.Stream
	step float64
	dir  float64

	count, hits int
	lastScore   float64
	haveScore   bool

	steps int
	traj  []float64
}

// trajCap bounds the retained trajectory on unbounded (wall-clock) runs;
// steps keeps counting past it.
const trajCap = 1 << 16

func newCCATPolicy(c Config) *ccatPolicy {
	p := &ccatPolicy{
		ccapPolicy: *newCCAPPolicy(c),
		rng:        stats.NewSource(c.Seed).Stream("cca-t"),
		dir:        1,
		step:       c.Predict.TunerStep,
	}
	p.kind = CCAT
	if p.step == 0 {
		p.step = 0.25
	}
	return p
}

// tunerBounds returns the effective clamp on w.
func (p *ccatPolicy) tunerBounds() (float64, float64) {
	lo, hi := p.pc.TunerMin, p.pc.TunerMax
	if lo == 0 && hi == 0 {
		hi = 8
	}
	return lo, hi
}

func (p *ccatPolicy) feedbackWindow() int {
	if p.pc.FeedbackWindow > 0 {
		return p.pc.FeedbackWindow
	}
	return 50
}

func (p *ccatPolicy) ObserveTerminal(e *Engine, t *Txn, committed, missed bool) {
	p.ccapPolicy.ObserveTerminal(e, t, committed, missed)
	if p.pc.TunerOff {
		return
	}
	p.count++
	if committed && !missed {
		p.hits++
	}
	if p.count < p.feedbackWindow() {
		return
	}
	score := float64(p.hits) / float64(p.count)
	p.count, p.hits = 0, 0

	move := true
	if p.haveScore {
		switch {
		case score < p.lastScore:
			// The last move hurt: back off and probe finer.
			p.dir = -p.dir
			p.step = math.Max(p.step*0.5, p.initialStep()/4)
		case score > p.lastScore:
			// The last move helped: press on a little harder.
			p.step = math.Min(p.step*1.5, p.initialStep()*4)
		default:
			// An exact tie carries no gradient information; moving anyway
			// would drift w on pure noise (a perfect-commit plateau would
			// walk it to the clamp). Hold, unless ε-greedy exploration is
			// on.
			move = false
		}
	}
	p.lastScore, p.haveScore = score, true
	if p.pc.Epsilon > 0 && p.rng.Float64() < p.pc.Epsilon {
		if p.rng.Float64() < 0.5 {
			p.dir = 1
		} else {
			p.dir = -1
		}
		move = true
	}
	if !move {
		return
	}
	lo, hi := p.tunerBounds()
	p.weight = math.Min(hi, math.Max(lo, p.weight+p.dir*p.step))
	p.steps++
	if len(p.traj) < trajCap {
		p.traj = append(p.traj, p.weight)
	}
}

func (p *ccatPolicy) initialStep() float64 {
	if p.pc.TunerStep > 0 {
		return p.pc.TunerStep
	}
	return 0.25
}

func (p *ccatPolicy) predictState() (float64, int, []float64) {
	return p.weight, p.steps, p.traj
}

// --- engine-side prediction term ---------------------------------------

// predictPenalty is the observed-conflict extension of PenaltyOfConflict:
// for every partially executed holder conflicting with t it adds
// scale · rate(t.Type, holder.Type) · (the holder's base penalty
// contribution), each term rounded to an integer Duration so the sum is
// permutation-invariant across the index walk and the naive scan. Cached
// under the same (timestamp, generation) key as the base penalty — stats
// updates and view installs bump the generation via the observer tap, so a
// hit is exact.
func (e *Engine) predictPenalty(t *Txn, tab *predict.Table, scale float64) time.Duration {
	if e.ci == nil {
		var sum time.Duration
		for _, p := range e.live {
			if p == t || !p.PartiallyExecuted() {
				continue
			}
			if p.has.intersects(t.might) {
				sum += e.predictTerm(t, p, tab, scale)
			}
		}
		return sum
	}
	now := e.sim.Now()
	if t.predGen == e.ci.gen && t.predAt == now {
		return t.predVal
	}
	ci := e.ci
	ci.stamp++
	var sum time.Duration
	visit := func(p *Txn) {
		if p == t || p.seenStamp == ci.stamp {
			return
		}
		p.seenStamp = ci.stamp
		sum += e.predictTerm(t, p, tab, scale)
	}
	t.might.forEach(func(it txn.Item) {
		hs := &ci.hasAt[int(it)]
		if hs.first == nil {
			return
		}
		visit(hs.first)
		for _, q := range hs.extra {
			visit(q)
		}
	})
	t.predVal, t.predAt, t.predGen = sum, now, ci.gen
	return sum
}

// predictTerm is one holder's contribution to the prediction penalty.
func (e *Engine) predictTerm(t, p *Txn, tab *predict.Table, scale float64) time.Duration {
	r := tab.Rate(t.Spec.Type, p.Spec.Type, time.Duration(e.sim.Now()))
	if r == 0 {
		return 0
	}
	contrib := e.serviceNow(p)
	if e.cfg.PenaltyIncludesRollback {
		contrib += e.rollbackCost(p)
	}
	return time.Duration(scale * r * float64(contrib))
}

// --- observability ------------------------------------------------------

// PredictSnapshot is the observability view of a prediction policy's
// state, surfaced through /metrics.
type PredictSnapshot struct {
	// Policy is the owning policy kind (CCAP or CCAT).
	Policy PolicyKind `json:"policy"`
	// W is the current penalty weight (fixed for CCA-P; tuned for CCA-T).
	W float64 `json:"w"`
	// TunerSteps counts tuner adjustments so far (0 for CCA-P).
	TunerSteps int `json:"tuner_steps"`
	// ActivePairs is the number of type pairs with live statistics.
	ActivePairs int `json:"active_pairs"`
	// TopPairs are the highest-conflict-rate pairs (bounded).
	TopPairs []predict.PairRate `json:"top_pairs,omitempty"`
	// WTrajectory is the tuned-w history (CCA-T; bounded, test/debug use).
	WTrajectory []float64 `json:"-"`
	// Table is a deep copy of the local statistics table, so sharded
	// surfaces can merge snapshots exactly. Not serialized.
	Table *predict.Table `json:"-"`
}

// predictTopPairs bounds the per-snapshot pair list.
const predictTopPairs = 8

// PredictTable returns the policy's local statistics table, or nil when
// the policy keeps none. The shard runner reads it between lockstep rounds
// (the engine is quiescent then); no other cross-goroutine access is safe.
func (e *Engine) PredictTable() *predict.Table {
	if p, ok := e.policy.(predictivePolicy); ok {
		return p.predictTable()
	}
	return nil
}

// SetPredictView installs the read-side statistics table used by Evaluate
// (nil reverts to the policy's own table). The shard runner installs the
// canonical cross-shard merge at every epoch boundary; the view must not
// be mutated after installation. Installing a view re-clocks evaluation.
func (e *Engine) SetPredictView(v *predict.Table) {
	if p, ok := e.policy.(predictivePolicy); ok {
		p.setPredictView(v)
		e.reclockEval()
	}
}

// PredictSnapshot returns the prediction layer's observability snapshot,
// or ok=false when the policy keeps no statistics. Must run on the
// engine's goroutine (the service wraps it in a driver call).
func (e *Engine) PredictSnapshot() (PredictSnapshot, bool) {
	p, ok := e.policy.(predictivePolicy)
	if !ok {
		return PredictSnapshot{}, false
	}
	w, steps, traj := p.predictState()
	now := e.Now()
	tab := p.predictTable()
	s := PredictSnapshot{
		Policy:      e.policy.Kind(),
		W:           w,
		TunerSteps:  steps,
		ActivePairs: tab.ActivePairs(now),
		TopPairs:    tab.TopPairs(now, predictTopPairs),
		Table:       tab.Clone(),
	}
	if len(traj) > 0 {
		s.WTrajectory = append([]float64(nil), traj...)
	}
	return s, true
}
