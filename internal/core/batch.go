// Batched submission: the wire-speed ingestion path into the wall-clock
// service. Submit pays one driver Call — a mutex, a closure, a wakeup —
// per transaction; under a high-rate front-end that per-request handoff is
// the bottleneck, not the engine. SubmitBatch amortises it: the server's
// submit queues collect every request that arrived while the driver was
// busy and inject them all in a single Call, so the handoff cost is paid
// once per driver wakeup instead of once per transaction. The engine-side
// semantics are unchanged — each submission still goes through the same
// validation, admission control and onArrival as Submit, in batch order.
package core

import (
	"time"

	"repro/internal/workload"
)

// Submission is one entry of a batched submit. Done is invoked exactly
// once per submission: with the terminal outcome (on the engine's driver
// goroutine — it must not block; hand off to a channel or queue), or with
// a validation / ErrDraining / ErrServiceStopped error (from the
// SubmitBatch caller's goroutine).
type Submission struct {
	Req  ServiceRequest
	Done func(ServiceOutcome, error)
	// WALSeq marks a crash-recovery replay: the submission's submit
	// record already exists in the write-ahead log under this sequence
	// number, so the service skips the submit append and stamps the
	// outcome record FlagReplayed. Zero for ordinary submissions.
	WALSeq uint64
}

// SubmitHandle wounds one batched in-flight submission, the batch
// analogue of Submit's cancel-on-context-done: the front-end calls Cancel
// when the client disconnects so abandoned work stops consuming the CPU.
// The zero handle is a no-op (a submission that was never injected).
// Cancel is idempotent and safe after the transaction reached a terminal
// state.
type SubmitHandle struct {
	svc      *Service
	t        *Txn
	cancelFn func()
}

// Cancel wounds the submission if it is still in flight.
func (h SubmitHandle) Cancel() {
	switch {
	case h.svc != nil:
		_ = h.svc.rt.Call(func() { h.svc.e.cancelServiceTxn(h.t) })
	case h.cancelFn != nil:
		h.cancelFn()
	}
}

// CancelHandle wraps an arbitrary cancel func as a SubmitHandle (the
// sharded service's cross-shard path uses it).
func CancelHandle(fn func()) SubmitHandle { return SubmitHandle{cancelFn: fn} }

// failAll reports err to every submission that has not been answered yet
// (specs[i] == nil marks an entry whose Done already ran).
func failAll(subs []Submission, specs []*workload.Spec, err error) {
	for i := range subs {
		if specs == nil || specs[i] != nil {
			subs[i].Done(ServiceOutcome{}, err)
		}
	}
}

// SubmitBatch injects every submission in one driver call and returns
// right after injection; outcomes (and every error: validation, draining,
// stopped service) are delivered through each Submission.Done, which is
// guaranteed to be invoked exactly once per entry. The returned handles
// are index-aligned with subs; an entry that was never injected (it
// already failed) carries the zero no-op handle.
func (s *Service) SubmitBatch(subs []Submission) []SubmitHandle {
	handles := make([]SubmitHandle, len(subs))
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		failAll(subs, nil, ErrDraining)
		return handles
	}
	s.mu.Unlock()

	specs := make([]*workload.Spec, len(subs))
	any := false
	for i := range subs {
		sub := &subs[i]
		if err := sub.Req.validate(&s.e.cfg); err != nil {
			sub.Done(ServiceOutcome{}, err)
			continue
		}
		// Durability: append the submit record before injection (replays
		// already have one), and gate Done on the outcome record's fsync.
		if s.wal.Enabled() {
			seq, replay := sub.WALSeq, sub.WALSeq != 0
			if !replay {
				var err error
				if seq, err = s.wal.LogSubmit(&sub.Req); err != nil {
					sub.Done(ServiceOutcome{}, err)
					continue
				}
			}
			sub.Done = s.wal.WrapDone(seq, replay, sub.Done)
		}
		specs[i] = &workload.Spec{
			Items:       sub.Req.Items,
			Compute:     sub.Req.Compute,
			Reads:       sub.Req.Reads,
			NeedsIO:     sub.Req.NeedsIO,
			Criticality: sub.Req.Criticality,
			Class:       sub.Req.Class,
		}
		any = true
	}
	if !any {
		return handles
	}

	ready := make(chan struct{})
	err := s.rt.Call(func() {
		now := time.Duration(s.e.sim.Now())
		for i := range subs {
			spec := specs[i]
			if spec == nil {
				continue
			}
			done := subs[i].Done
			spec.Arrival = now
			spec.Deadline = now + subs[i].Req.Deadline
			t := s.e.addServiceTxn(spec, func(t *Txn) {
				done(outcomeOf(t), nil)
				s.e.retireServiceTxn(t)
			})
			// If the driver dies with this submission live, the failure
			// sweep answers it (exactly once — notifyDone disarms this).
			t.failHook = func(err error) { done(ServiceOutcome{}, err) }
			handles[i] = SubmitHandle{svc: s, t: t}
			s.e.onArrival(t)
		}
		close(ready)
	})
	if err != nil {
		failAll(subs, specs, ErrServiceStopped)
		return handles
	}
	select {
	case <-ready:
		return handles
	case <-s.stopCh:
		// The driver may have run the injection just before stopping; only
		// fail the batch if it truly never ran (dropped calls never run).
		select {
		case <-ready:
			return handles
		default:
			failAll(subs, specs, ErrServiceStopped)
			return handles
		}
	}
}
