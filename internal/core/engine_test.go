package core

// Integration tests: full generated workloads under every policy, with the
// engine's internal invariant checks enabled, plus the paper's theorems and
// cross-policy consistency properties.

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/metrics"
	"repro/internal/txn"
)

// smallMM returns a quick main-memory config (reduced count for test speed).
func smallMM(p PolicyKind, seed int64) Config {
	cfg := MainMemoryConfig(p, seed)
	cfg.Workload.Count = 150
	cfg.Workload.ArrivalRate = 8
	cfg.CheckInvariants = true
	return cfg
}

// smallDisk returns a quick disk-resident config.
func smallDisk(p PolicyKind, seed int64) Config {
	cfg := DiskConfig(p, seed)
	cfg.Workload.Count = 80
	cfg.Workload.ArrivalRate = 5
	cfg.CheckInvariants = true
	return cfg
}

func mustRun(t *testing.T, cfg Config) metrics.Result {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllPoliciesCompleteMainMemory(t *testing.T) {
	for _, p := range Policies() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				res := mustRun(t, smallMM(p, seed))
				if res.Committed != 150 {
					t.Fatalf("seed %d: committed %d/150", seed, res.Committed)
				}
			}
		})
	}
}

func TestAllPoliciesCompleteDisk(t *testing.T) {
	for _, p := range Policies() {
		p := p
		if p == PCP {
			continue // main-memory only (see Config.Validate)
		}
		t.Run(string(p), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				res := mustRun(t, smallDisk(p, seed))
				if res.Committed != 80 {
					t.Fatalf("seed %d: committed %d/80", seed, res.Committed)
				}
			}
		})
	}
}

// TestTheorem1NoLockWaitUnderCCA: CCA never blocks on data (its deadlock
// freedom); the engine also asserts this at every scheduling point via
// CheckInvariants.
func TestTheorem1NoLockWaitUnderCCA(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		if res := mustRun(t, smallMM(CCA, seed)); res.LockWaits != 0 {
			t.Fatalf("MM seed %d: %d lock waits under CCA", seed, res.LockWaits)
		}
		if res := mustRun(t, smallDisk(CCA, seed)); res.LockWaits != 0 {
			t.Fatalf("disk seed %d: %d lock waits under CCA", seed, res.LockWaits)
		}
	}
}

// TestNoDeadlockUnderHPPolicies: EDF-HP and FCFS waits always point at
// higher-priority holders, so the cycle detector must never fire.
func TestNoDeadlockUnderHPPolicies(t *testing.T) {
	for _, p := range []PolicyKind{EDFHP, FCFS, CCA} {
		for seed := int64(1); seed <= 3; seed++ {
			if res := mustRun(t, smallDisk(p, seed)); res.Deadlocks != 0 {
				t.Fatalf("%s seed %d: %d deadlocks", p, seed, res.Deadlocks)
			}
		}
	}
}

// TestEDFWPNeverAborts: wait-promote resolves every conflict by blocking;
// the only aborts are deadlock victims.
func TestEDFWPNeverAborts(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		res := mustRun(t, smallMM(EDFWP, seed))
		if res.Restarts != res.Deadlocks {
			t.Fatalf("seed %d: %d restarts but %d deadlocks (WP must only abort deadlock victims)",
				seed, res.Restarts, res.Deadlocks)
		}
	}
}

// TestDeterministicReplay: identical config and seed yields identical
// results, event counts included.
func TestDeterministicReplay(t *testing.T) {
	for _, mk := range []func(PolicyKind, int64) Config{smallMM, smallDisk} {
		for _, p := range []PolicyKind{CCA, EDFHP} {
			a := mustRun(t, mk(p, 7))
			b := mustRun(t, mk(p, 7))
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: replay diverged:\n%+v\n%+v", p, a, b)
			}
		}
	}
}

// TestCCAZeroWeightEqualsEDFHPMainMemory: the paper's observation that
// penalty-weight 0 produces EDF-HP on a main-memory database.
func TestCCAZeroWeightEqualsEDFHPMainMemory(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cca := smallMM(CCA, seed)
		cca.PenaltyWeight = 0
		edf := smallMM(EDFHP, seed)
		a, b := mustRun(t, cca), mustRun(t, edf)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: w=0 CCA != EDF-HP:\n%+v\n%+v", seed, a, b)
		}
	}
}

// TestLargeWeightActsLikeEDFWait: a huge penalty weight suppresses nearly
// all aborts (the paper's EDF-Wait limit). With the IOwait filter and no
// lock waits, CCA with w→∞ should restart (almost) nothing.
func TestLargeWeightActsLikeEDFWait(t *testing.T) {
	cfg := smallMM(CCA, 3)
	cfg.PenaltyWeight = 1e9
	res := mustRun(t, cfg)
	if res.Restarts != 0 {
		t.Fatalf("restarts = %d, want 0 with w=1e9", res.Restarts)
	}
}

// TestConservationAcrossPolicies: every policy commits every transaction
// exactly once and reports self-consistent utilisations.
func TestConservationAcrossPolicies(t *testing.T) {
	for _, p := range Policies() {
		res := mustRun(t, smallMM(p, 11))
		if res.Committed != 150 {
			t.Fatalf("%s: committed %d", p, res.Committed)
		}
		if res.CPUUtilization <= 0 || res.CPUUtilization > 1.0000001 {
			t.Fatalf("%s: CPU utilisation %v out of (0,1]", p, res.CPUUtilization)
		}
		if res.MissPercent < 0 || res.MissPercent > 100 {
			t.Fatalf("%s: miss%% %v", p, res.MissPercent)
		}
		if res.AvgPListSize < 0 {
			t.Fatalf("%s: negative P-list size", p)
		}
	}
}

// TestLocksReleasedAtEnd: after a run the lock table is empty.
func TestLocksReleasedAtEnd(t *testing.T) {
	e, err := New(smallMM(CCA, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n := e.lm.LockedItems(); n != 0 {
		t.Fatalf("%d items still locked after drain", n)
	}
	for _, tx := range e.all {
		if tx.state != StateCommitted {
			t.Fatalf("T%d in state %v after drain", tx.ID(), tx.state)
		}
	}
}

// TestPaperPListSize: the paper reports an average of 1-2 partially
// executed transactions with base parameters.
func TestPaperPListSize(t *testing.T) {
	cfg := MainMemoryConfig(CCA, 1)
	cfg.Workload.Count = 400
	cfg.Workload.ArrivalRate = 8
	res := mustRun(t, cfg)
	if res.AvgPListSize > 4 {
		t.Fatalf("average P-list size %v is far above the paper's 1-2", res.AvgPListSize)
	}
}

// TestCCANotWorseThanEDFOnBase: the headline comparison at a contended
// arrival rate, averaged over several seeds — CCA must restart less and
// miss no more than EDF-HP.
func TestCCANotWorseThanEDFOnBase(t *testing.T) {
	var edfMiss, ccaMiss, edfRestarts, ccaRestarts float64
	const seeds = 6
	for seed := int64(1); seed <= seeds; seed++ {
		cfgE := MainMemoryConfig(EDFHP, seed)
		cfgE.Workload.Count = 300
		cfgE.Workload.ArrivalRate = 8
		cfgC := cfgE
		cfgC.Policy = CCA
		re, rc := mustRun(t, cfgE), mustRun(t, cfgC)
		edfMiss += re.MissPercent
		ccaMiss += rc.MissPercent
		edfRestarts += re.RestartsPerTxn
		ccaRestarts += rc.RestartsPerTxn
	}
	if ccaRestarts >= edfRestarts {
		t.Errorf("CCA restarts/txn %.3f >= EDF-HP %.3f", ccaRestarts/seeds, edfRestarts/seeds)
	}
	if ccaMiss > edfMiss*1.1+1 {
		t.Errorf("CCA miss%% %.2f materially worse than EDF-HP %.2f", ccaMiss/seeds, edfMiss/seeds)
	}
}

// TestMultiprocessorCompletes (extension): 2 and 4 CPUs drain every policy.
func TestMultiprocessorCompletes(t *testing.T) {
	for _, cpus := range []int{2, 4} {
		for _, p := range []PolicyKind{CCA, EDFHP} {
			cfg := smallMM(p, 2)
			cfg.NumCPUs = cpus
			cfg.Workload.ArrivalRate = 12
			res := mustRun(t, cfg)
			if res.Committed != 150 {
				t.Fatalf("%s on %d CPUs: committed %d", p, cpus, res.Committed)
			}
		}
	}
}

// TestReadLockWorkloadCompletes (extension): shared locks across policies.
func TestReadLockWorkloadCompletes(t *testing.T) {
	for _, p := range Policies() {
		cfg := smallMM(p, 4)
		cfg.Workload.ReadFraction = 0.5
		res := mustRun(t, cfg)
		if res.Committed != 150 {
			t.Fatalf("%s with read locks: committed %d", p, res.Committed)
		}
	}
}

// TestCriticalityWorkloadCompletes (extension).
func TestCriticalityWorkloadCompletes(t *testing.T) {
	cfg := smallMM(CCA, 4)
	cfg.Workload.CriticalityLevels = 3
	if res := mustRun(t, cfg); res.Committed != 150 {
		t.Fatalf("criticality workload: committed %d", res.Committed)
	}
}

// TestProportionalRecoveryCompletes (extension).
func TestProportionalRecoveryCompletes(t *testing.T) {
	for _, p := range []PolicyKind{CCA, EDFHP} {
		cfg := smallMM(p, 4)
		cfg.RecoveryProportionalFactor = 1
		if res := mustRun(t, cfg); res.Committed != 150 {
			t.Fatalf("%s proportional recovery: committed %d", p, res.Committed)
		}
	}
}

// TestConfigValidation rejects malformed configs.
func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Policy = "nope" },
		func(c *Config) { c.PenaltyWeight = -1 },
		func(c *Config) { c.AbortCost = -time.Millisecond },
		func(c *Config) { c.NumCPUs = 0 },
		func(c *Config) { c.RecoveryProportionalFactor = -1 },
		func(c *Config) { c.Workload.Count = 0 },
	}
	for i, mutate := range cases {
		cfg := MainMemoryConfig(CCA, 1)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestNewWithWorkloadValidation rejects malformed hand-built workloads.
func TestNewWithWorkloadValidation(t *testing.T) {
	cfg := MainMemoryConfig(CCA, 1)
	cfg.Workload.DBSize = 5
	if _, err := NewWithWorkload(cfg, nil); err == nil {
		t.Error("nil workload accepted")
	}
	bad := buildWorkload(5, []specIn{{arrival: 0, deadline: msec, items: nil}})
	if _, err := NewWithWorkload(cfg, bad); err == nil {
		t.Error("itemless transaction accepted")
	}
	oob := buildWorkload(5, []specIn{{arrival: 0, deadline: msec, items: []txn.Item{9}}})
	if _, err := NewWithWorkload(cfg, oob); err == nil {
		t.Error("out-of-range item accepted")
	}
	unordered := buildWorkload(5, []specIn{
		{arrival: 10 * msec, deadline: 20 * msec, items: []txn.Item{0}},
		{arrival: 5 * msec, deadline: 20 * msec, items: []txn.Item{1}},
	})
	if _, err := NewWithWorkload(cfg, unordered); err == nil {
		t.Error("unordered arrivals accepted")
	}
}

// TestStateString covers the state names.
func TestStateString(t *testing.T) {
	names := map[State]string{
		StateReady:     "ready",
		StateRunning:   "running",
		StateIOWait:    "io-wait",
		StateLockWait:  "lock-wait",
		StateAborting:  "aborting",
		StateCommitted: "committed",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if State(99).String() == "" {
		t.Error("unknown state should render")
	}
}

// TestQuickEngineAlwaysDrains: random small parameter draws under every
// policy always commit every transaction with invariants on.
func TestQuickEngineAlwaysDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64, rateQ, dbQ, polQ uint8) bool {
		pols := Policies()
		cfg := MainMemoryConfig(pols[int(polQ)%len(pols)], seed)
		cfg.Workload.Count = 40
		cfg.Workload.ArrivalRate = 1 + float64(rateQ%15)
		cfg.Workload.DBSize = 10 + int(dbQ%100)
		cfg.CheckInvariants = true
		e, err := New(cfg)
		if err != nil {
			return false
		}
		res, err := e.Run()
		return err == nil && res.Committed == 40
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDiskEngineAlwaysDrains: as above for the disk configuration.
func TestQuickDiskEngineAlwaysDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64, rateQ, polQ uint8) bool {
		pols := Policies()
		pol := pols[int(polQ)%len(pols)]
		if pol == PCP {
			pol = EDFHP // PCP is main-memory only
		}
		cfg := DiskConfig(pol, seed)
		cfg.Workload.Count = 30
		cfg.Workload.ArrivalRate = 1 + float64(rateQ%7)
		cfg.CheckInvariants = true
		e, err := New(cfg)
		if err != nil {
			return false
		}
		res, err := e.Run()
		return err == nil && res.Committed == 30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
