package core

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/workload"
)

// policyFixture builds an engine with two live transactions for direct
// policy-function tests: T0 partially executed (holds item 0, 6 ms of
// service), T1 fresh and conflicting on item 0.
func policyFixture(t *testing.T, kind PolicyKind) (*Engine, *Txn, *Txn) {
	t.Helper()
	cfg := MainMemoryConfig(kind, 1)
	cfg.Workload.DBSize = 10
	wl := buildWorkload(10, []specIn{
		{arrival: 0, deadline: 100 * msec, items: []txn.Item{0, 1}},
		{arrival: 0, deadline: 90 * msec, items: []txn.Item{0, 2}},
	})
	e, err := NewWithWorkload(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	t0, t1 := e.all[0], e.all[1]
	e.live = []*Txn{t0, t1}
	e.hasAcquired(t0, 0)
	t0.service = 6 * msec
	return e, t0, t1
}

func TestCCAEvaluateIncludesPenalty(t *testing.T) {
	e, _, t1 := policyFixture(t, CCA)
	// penalty(T1) = service(6) + rollback(4) = 10ms; deadline 90ms.
	if got := e.policy.Evaluate(e, t1); got != -100 {
		t.Fatalf("Pr(T1) = %v, want -100", got)
	}
}

func TestCCAEvaluateNoPenaltyForDisjoint(t *testing.T) {
	e, t0, t1 := policyFixture(t, CCA)
	if e.ci != nil {
		e.ci.deindexHas(t0)
	}
	t0.has.clear()
	e.hasAcquired(t0, 1) // now holds only item 1, which T1 never accesses
	if got := e.policy.Evaluate(e, t1); got != -90 {
		t.Fatalf("Pr(T1) = %v, want -90 (no unsafe P-list member)", got)
	}
}

func TestCCAEvaluateExcludesSelf(t *testing.T) {
	e, t0, _ := policyFixture(t, CCA)
	if got := e.policy.Evaluate(e, t0); got != -100 {
		t.Fatalf("Pr(T0) = %v, want -100 (own service is not its own penalty)", got)
	}
}

func TestCCAPenaltyWithoutRollback(t *testing.T) {
	e, _, t1 := policyFixture(t, CCA)
	e.cfg.PenaltyIncludesRollback = false
	if got := e.PenaltyOfConflict(t1); got != 6*msec {
		t.Fatalf("penalty = %v, want 6ms (service only)", got)
	}
}

func TestCCAPenaltyWeightScales(t *testing.T) {
	e, _, t1 := policyFixture(t, CCA)
	e.policy = ccaPolicy{weight: 3}
	if got := e.policy.Evaluate(e, t1); got != -120 {
		t.Fatalf("Pr(T1) with w=3 = %v, want -(90+3*10)", got)
	}
}

func TestEDFEvaluateIsDeadlineOnly(t *testing.T) {
	e, t0, t1 := policyFixture(t, EDFHP)
	if e.policy.Evaluate(e, t0) != -100 || e.policy.Evaluate(e, t1) != -90 {
		t.Fatal("EDF priority must be -deadline")
	}
}

func TestEDFHPWoundsOnlyHigherPriority(t *testing.T) {
	e, t0, t1 := policyFixture(t, EDFHP)
	t0.priority, t1.priority = -100, -90
	if !e.policy.Wounds(e, t1, t0) {
		t.Error("higher-priority requester must wound")
	}
	if e.policy.Wounds(e, t0, t1) {
		t.Error("lower-priority requester must wait")
	}
	// Tie broken by ID.
	t0.priority = -90
	if e.policy.Wounds(e, t1, t0) {
		t.Error("equal priority: higher ID must not wound lower ID")
	}
	if !e.policy.Wounds(e, t0, t1) {
		t.Error("equal priority: lower ID must wound")
	}
}

func TestCCAAlwaysWounds(t *testing.T) {
	e, t0, t1 := policyFixture(t, CCA)
	t0.priority, t1.priority = -1, -1000
	if !e.policy.Wounds(e, t1, t0) || !e.policy.Wounds(e, t0, t1) {
		t.Error("CCA must wound regardless of priorities (no lock wait)")
	}
}

func TestEDFWPNeverWounds(t *testing.T) {
	e, t0, t1 := policyFixture(t, EDFWP)
	t1.priority, t0.priority = 0, -1000
	if e.policy.Wounds(e, t1, t0) {
		t.Error("WP must never wound")
	}
	if !e.policy.Inherits() {
		t.Error("WP must inherit")
	}
}

func TestLSFEvaluateStaticSlack(t *testing.T) {
	e, t0, _ := policyFixture(t, LSFHP)
	// T0: deadline 100, resource 2x4=8 -> slack 92 at t=0.
	if got := e.policy.Evaluate(e, t0); got != -92 {
		t.Fatalf("LSF priority = %v, want -92", got)
	}
}

func TestFCFSEvaluateByArrival(t *testing.T) {
	e, t0, _ := policyFixture(t, FCFS)
	if got := e.policy.Evaluate(e, t0); got != 0 {
		t.Fatalf("FCFS priority = %v, want -arrival = 0", got)
	}
}

func TestEDFCRWoundDecision(t *testing.T) {
	e, t0, t1 := policyFixture(t, EDFCR)
	// Priorities: T1 (deadline 90) > T0 (deadline 100).
	t0.priority, t1.priority = -100, -90
	// T0 (holder) remaining static = 8ms - nothing executed in the
	// runtime sense (next=0, remain=0) -> 8ms. T1's slack at t=0:
	// 90 - 0 - 8 = 82ms >= 8ms: conditional restart says wait.
	if e.policy.Wounds(e, t1, t0) {
		t.Error("holder fits in requester slack: must wait, not wound")
	}
	// Shrink the requester's slack below the holder's remaining time.
	t1.Spec.Deadline = 15 * msec
	if !e.policy.Wounds(e, t1, t0) {
		t.Error("holder cannot finish within slack: must wound")
	}
	// A holder with higher priority is never wounded.
	t0.priority = -10
	if e.policy.Wounds(e, t1, t0) {
		t.Error("higher-priority holder must never be wounded")
	}
}

func TestEDFCRCompletesWorkloads(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		res := mustRun(t, smallMM(EDFCR, seed))
		if res.Committed != 150 {
			t.Fatalf("seed %d: committed %d", seed, res.Committed)
		}
		res = mustRun(t, smallDisk(EDFCR, seed))
		if res.Committed != 80 {
			t.Fatalf("disk seed %d: committed %d", seed, res.Committed)
		}
	}
}

func TestPolicyKindsAndFilters(t *testing.T) {
	cases := []struct {
		kind    PolicyKind
		filters bool
	}{
		{CCA, true}, {EDFHP, false}, {EDFWP, false}, {LSFHP, false}, {EDFCR, false}, {AED, false}, {PCP, false}, {FCFS, false},
	}
	for _, c := range cases {
		cfg := MainMemoryConfig(c.kind, 1)
		p := newPolicy(cfg)
		if p.Kind() != c.kind {
			t.Errorf("Kind() = %v, want %v", p.Kind(), c.kind)
		}
		if p.FiltersIOWait() != c.filters {
			t.Errorf("%v FiltersIOWait = %v", c.kind, p.FiltersIOWait())
		}
	}
}

func TestNewPolicyPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown policy did not panic")
		}
	}()
	newPolicy(Config{Policy: "bogus"})
}

func TestServiceNowIncludesRunningSlice(t *testing.T) {
	e, t0, _ := policyFixture(t, CCA)
	t0.state = StateRunning
	t0.sliceStart = e.sim.Now()
	t0.cpuEvent = e.sim.After(10*msec, func() {})
	e.sim.RunUntil(4 * msec)
	if got := e.serviceNow(t0); got != 10*msec {
		t.Fatalf("serviceNow = %v, want 6ms accrued + 4ms in flight", got)
	}
}

func TestRollbackCostProportional(t *testing.T) {
	e, t0, _ := policyFixture(t, CCA)
	e.cfg.RecoveryProportionalFactor = 0.5
	// 4ms fixed + 0.5 * 6ms service = 7ms.
	if got := e.rollbackCost(t0); got != 7*msec {
		t.Fatalf("rollbackCost = %v, want 7ms", got)
	}
}

func TestLessOrdering(t *testing.T) {
	mk := func(id, crit int, pri float64) *Txn {
		return &Txn{Spec: &workload.Spec{ID: id, Criticality: crit}, priority: pri}
	}
	if !less(mk(1, 1, -100), mk(0, 0, -1)) {
		t.Error("criticality must dominate priority")
	}
	if !less(mk(1, 0, -1), mk(0, 0, -2)) {
		t.Error("priority must dominate ID")
	}
	if !less(mk(0, 0, -1), mk(1, 0, -1)) {
		t.Error("lower ID must win ties")
	}
}

// TestLemma1NoPriorityReversal: under CCA (main memory), whenever a wound
// occurs the wounding (running) transaction's priority is at least the
// victim's — verified on full runs via the structured event trace.
func TestLemma1NoPriorityReversal(t *testing.T) {
	cfg := MainMemoryConfig(CCA, 3)
	cfg.Workload.Count = 200
	cfg.Workload.ArrivalRate = 9
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf := &trace.Buffer{Filter: func(ev trace.Event) bool { return ev.Kind == trace.Wound }}
	e.SetRecorder(buf)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	wounds := buf.Events()
	if len(wounds) == 0 {
		t.Skip("no wounds occurred at this seed; Lemma 1 vacuous here")
	}
	for _, ev := range wounds {
		if ev.Priority < ev.OtherPriority {
			t.Errorf("priority reversal: T%d (%.2f) wounded T%d (%.2f)",
				ev.Txn, ev.Priority, ev.Other, ev.OtherPriority)
		}
	}
}

// TestEDFHPWoundsRespectPriority: EDF-HP wounds are always from strictly
// higher (or tie-broken) priority to lower, in both configurations.
func TestEDFHPWoundsRespectPriority(t *testing.T) {
	for _, disk := range []bool{false, true} {
		var cfg Config
		if disk {
			cfg = DiskConfig(EDFHP, 2)
			cfg.Workload.Count = 100
			cfg.Workload.ArrivalRate = 6
		} else {
			cfg = MainMemoryConfig(EDFHP, 2)
			cfg.Workload.Count = 200
			cfg.Workload.ArrivalRate = 9
		}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		buf := &trace.Buffer{Filter: func(ev trace.Event) bool { return ev.Kind == trace.Wound }}
		e.SetRecorder(buf)
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		for _, ev := range buf.Events() {
			if ev.Priority < ev.OtherPriority {
				t.Errorf("disk=%v: EDF-HP wound from lower priority: %+v", disk, ev)
			}
		}
	}
}

// TestTraceLifecycleConsistency: per transaction, the structured trace
// shows exactly one arrival, exactly one commit, and dispatches >= commits.
func TestTraceLifecycleConsistency(t *testing.T) {
	cfg := DiskConfig(CCA, 4)
	cfg.Workload.Count = 80
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf trace.Buffer
	e.SetRecorder(&buf)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	arrivals := map[int]int{}
	commits := map[int]int{}
	for _, ev := range buf.Events() {
		switch ev.Kind {
		case trace.Arrival:
			arrivals[ev.Txn]++
		case trace.Commit:
			commits[ev.Txn]++
		}
	}
	for id := 0; id < 80; id++ {
		if arrivals[id] != 1 {
			t.Fatalf("T%d arrived %d times", id, arrivals[id])
		}
		if commits[id] != 1 {
			t.Fatalf("T%d committed %d times", id, commits[id])
		}
	}
	if buf.Count(trace.Dispatch) < 80 {
		t.Fatal("fewer dispatches than transactions")
	}
	// Every IO start eventually has a matching IO done or the txn was
	// wounded mid-service; starts >= dones always.
	if buf.Count(trace.IODone) > buf.Count(trace.IOStart) {
		t.Fatal("more IO completions than starts")
	}
}

// TestSecondaryDispatchMarking: under CCA every secondary dispatch is of a
// transaction compatible with the P-list, so no secondary is ever wounded;
// under EDF-HP on disk, wounds of secondaries are the noncontributing
// aborts the metrics report.
func TestSecondaryDispatchMarking(t *testing.T) {
	cfg := DiskConfig(EDFHP, 3)
	cfg.Workload.Count = 120
	cfg.Workload.ArrivalRate = 6
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf trace.Buffer
	e.SetRecorder(&buf)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	secondaries := 0
	for _, ev := range buf.OfKind(trace.Dispatch) {
		if ev.Secondary {
			secondaries++
		}
	}
	if res.NoncontributingAborts > 0 && secondaries == 0 {
		t.Fatal("noncontributing aborts recorded but no secondary dispatches traced")
	}
}

// TestZeroSlackWorkload: deadlines equal to static time are missed whenever
// any queueing occurs, but everything still commits.
func TestZeroSlackWorkload(t *testing.T) {
	cfg := MainMemoryConfig(CCA, 2)
	cfg.Workload.Count = 100
	cfg.Workload.MinSlack = 0
	cfg.Workload.MaxSlack = 0
	cfg.Workload.ArrivalRate = 10
	cfg.CheckInvariants = true
	res := mustRun(t, cfg)
	if res.Committed != 100 {
		t.Fatalf("committed %d", res.Committed)
	}
	if res.MissPercent < 50 {
		t.Errorf("zero slack at high load should miss most deadlines, got %.1f%%", res.MissPercent)
	}
}

// TestSingleItemDatabase: total serialisation; every pair conflicts.
func TestSingleItemDatabase(t *testing.T) {
	for _, p := range Policies() {
		cfg := MainMemoryConfig(p, 2)
		cfg.Workload.Count = 60
		cfg.Workload.DBSize = 1
		cfg.Workload.UpdatesMean = 1
		cfg.Workload.UpdatesStd = 0
		cfg.CheckInvariants = true
		res := mustRun(t, cfg)
		if res.Committed != 60 {
			t.Fatalf("%s: committed %d on 1-item DB", p, res.Committed)
		}
	}
}

// TestBurstArrivals: many transactions arriving in a tight burst drain
// correctly under every policy.
func TestBurstArrivals(t *testing.T) {
	for _, p := range Policies() {
		cfg := MainMemoryConfig(p, 5)
		cfg.Workload.Count = 80
		cfg.Workload.ArrivalRate = 500 // effectively simultaneous
		cfg.CheckInvariants = true
		res := mustRun(t, cfg)
		if res.Committed != 80 {
			t.Fatalf("%s: committed %d under burst", p, res.Committed)
		}
	}
}

// TestWholeDatabaseTransactions: every transaction touches every item.
func TestWholeDatabaseTransactions(t *testing.T) {
	cfg := MainMemoryConfig(CCA, 6)
	cfg.Workload.Count = 40
	cfg.Workload.DBSize = 10
	cfg.Workload.UpdatesMean = 10
	cfg.Workload.UpdatesStd = 0
	cfg.CheckInvariants = true
	res := mustRun(t, cfg)
	if res.Committed != 40 {
		t.Fatalf("committed %d", res.Committed)
	}
}
