package core

import (
	"math"

	"repro/internal/stats"
)

// aedPolicy implements Adaptive Earliest Deadline (Haritsa, Carey & Livny,
// "On Being Optimistic About Real-Time Constraints" — the paper's [HCL90]),
// as an extension baseline.
//
// Mechanism: every transaction draws a random key on arrival and the live
// transactions are virtually ordered by key. The first hitCapacity of them
// form the HIT group, scheduled by EDF; the rest form the MISS group,
// scheduled below every HIT transaction in random (key) order. A feedback
// loop adapts hitCapacity so that HIT transactions almost always meet their
// deadlines: the capacity is the observed HIT-group hit ratio times the
// group size, inflated by 5% (the original's HITcapacity = HitRatio(HIT) ×
// HITbatch × 1.05), re-estimated over fixed-size batches of commits.
//
// Under light load everything fits in the HIT group and AED behaves like
// EDF; past saturation the HIT group shrinks, sparing EDF its collapse.
// Conflicts are resolved High Priority (wound lower priority, wait for
// higher), like the other extension baselines.
type aedPolicy struct {
	keys    map[int]float64 // random priority key per transaction ID
	rng     *stats.Stream
	hitCap  float64
	batch   int // commits observed in the current batch
	hits    int // of which in the HIT group and on time
	inHIT   int // commits that were in the HIT group
	batchSz int
}

func newAEDPolicy(seed int64) *aedPolicy {
	return &aedPolicy{
		keys:    make(map[int]float64),
		rng:     stats.NewSource(seed).Stream("aed-keys"),
		hitCap:  1e9, // start unbounded: pure EDF until feedback kicks in
		batchSz: 20,
	}
}

func (p *aedPolicy) Kind() PolicyKind { return AED }

// key returns t's random group-assignment key, drawing it on first use.
func (p *aedPolicy) key(t *Txn) float64 {
	k, ok := p.keys[t.ID()]
	if !ok {
		k = p.rng.Float64()
		p.keys[t.ID()] = k
	}
	return k
}

// inHITGroup reports whether t currently falls inside the HIT capacity:
// its key-rank among live transactions is below hitCap.
func (p *aedPolicy) inHITGroup(e *Engine, t *Txn) bool {
	if p.hitCap >= float64(len(e.live)) {
		return true
	}
	kt := p.key(t)
	rank := 0
	for _, o := range e.live {
		if o != t && p.key(o) < kt {
			rank++
		}
	}
	return float64(rank) < p.hitCap
}

// Evaluate places HIT transactions in a high band ordered by EDF and MISS
// transactions in a low band ordered by their random key.
func (p *aedPolicy) Evaluate(e *Engine, t *Txn) float64 {
	const band = 1e12
	if p.inHITGroup(e, t) {
		return band - ms(t.Spec.Deadline)
	}
	return -band - p.key(t)*1e6
}

func (p *aedPolicy) Wounds(_ *Engine, requester, holder *Txn) bool {
	return requester.priority > holder.priority ||
		(requester.priority == holder.priority && requester.ID() < holder.ID())
}

func (p *aedPolicy) FiltersIOWait() bool { return false }
func (p *aedPolicy) Inherits() bool      { return false }

// Staticness: group membership depends on the whole live set and the
// feedback-adapted HIT capacity, both of which move between passes.
func (p *aedPolicy) Staticness() Staticness { return EvalDynamic }

// observeCommit feeds the HIT-ratio controller. The engine calls it on
// every commit (and on every firm-mode drop, which counts as a miss).
func (p *aedPolicy) observeCommit(e *Engine, t *Txn, missed bool) {
	inHIT := t.priority > 0 // HIT band is positive
	p.batch++
	if inHIT {
		p.inHIT++
		if !missed {
			p.hits++
		}
	}
	if p.batch < p.batchSz {
		return
	}
	if p.inHIT > 0 {
		// HITcapacity := HitRatio(HIT) × HITcapacity × 1.05: while the
		// HIT group meets its deadlines (ratio ≥ 0.95) the capacity
		// creeps up; when it starts missing, the capacity shrinks
		// multiplicatively until the group is small enough to be
		// schedulable — the original's feedback law.
		ratio := float64(p.hits) / float64(p.inHIT)
		cap := minFloat(p.hitCap, capCeiling)
		if ratio >= 0.95 {
			p.hitCap = math.Max(cap*1.05, cap+1)
		} else {
			p.hitCap = math.Max(1, ratio*cap*1.05)
		}
	}
	p.batch, p.hits, p.inHIT = 0, 0, 0
}

// capCeiling bounds the HIT capacity so that shrinking from the unbounded
// initial value takes one batch, not dozens.
const capCeiling = 512

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// commitObserver lets stateful policies receive commit feedback.
type commitObserver interface {
	observeCommit(e *Engine, t *Txn, missed bool)
}
