package core

import (
	"reflect"
	"testing"
)

// TestAEDLightLoadEqualsEDFHP: before the feedback controller ever shrinks
// the HIT capacity (no misses at light load), AED's HIT group holds every
// transaction, the HIT band is EDF-ordered and conflicts resolve exactly
// like EDF-HP — so the runs are identical.
func TestAEDLightLoadEqualsEDFHP(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		mk := func(p PolicyKind) Config {
			cfg := MainMemoryConfig(p, seed)
			cfg.Workload.Count = 120
			cfg.Workload.ArrivalRate = 2 // light: nothing misses
			cfg.CheckInvariants = true
			return cfg
		}
		a, b := mustRun(t, mk(AED)), mustRun(t, mk(EDFHP))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: AED != EDF-HP at light load:\n%+v\n%+v", seed, a, b)
		}
	}
}

// TestAEDCompletesUnderOverload: the feedback loop must remain stable and
// drain the workload even past CPU saturation (rate 16 > capacity 12.5).
func TestAEDCompletesUnderOverload(t *testing.T) {
	cfg := MainMemoryConfig(AED, 2)
	cfg.Workload.Count = 250
	cfg.Workload.ArrivalRate = 16
	cfg.CheckInvariants = true
	res := mustRun(t, cfg)
	if res.Committed != 250 {
		t.Fatalf("committed %d/250", res.Committed)
	}
}

// TestAEDFirmOverloadBeatsEDF: AED's reason to exist — under firm
// deadlines past saturation, shrinking the HIT group avoids EDF's collapse
// (everything gets near its deadline, everything misses). AED should be at
// least competitive with EDF-HP there.
func TestAEDFirmOverloadBeatsEDF(t *testing.T) {
	get := func(p PolicyKind) float64 {
		var total float64
		for seed := int64(1); seed <= 5; seed++ {
			cfg := MainMemoryConfig(p, seed)
			cfg.Workload.Count = 300
			cfg.Workload.ArrivalRate = 18 // well past capacity
			cfg.FirmDeadlines = true
			res := mustRun(t, cfg)
			total += res.MissPercent
		}
		return total / 5
	}
	aed, edf := get(AED), get(EDFHP)
	if aed > edf+5 {
		t.Fatalf("AED miss %.2f%% materially worse than EDF-HP %.2f%% in firm overload", aed, edf)
	}
	t.Logf("firm overload: AED %.2f%% vs EDF-HP %.2f%%", aed, edf)
}

// TestAEDDiskCompletes: AED on the disk-resident configuration.
func TestAEDDiskCompletes(t *testing.T) {
	res := mustRun(t, smallDisk(AED, 1))
	if res.Committed != 80 {
		t.Fatalf("committed %d/80", res.Committed)
	}
}

// TestAEDKeysStableAndDeterministic: a transaction's group key is drawn
// once; replays are identical.
func TestAEDKeysStableAndDeterministic(t *testing.T) {
	a, b := mustRun(t, smallMM(AED, 9)), mustRun(t, smallMM(AED, 9))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("AED replay diverged")
	}
}
