package core

// Firm-deadline mode tests (extension; Haritsa's model, which the paper
// contrasts with its soft model in §1-§2).

import (
	"testing"

	"repro/internal/txn"
)

// TestFirmScenarioDrop: a transaction whose deadline cannot be met is
// discarded exactly at its deadline; the other transaction commits.
func TestFirmScenarioDrop(t *testing.T) {
	ins := []specIn{
		// Needs 8ms but deadline at 5ms: dropped at 5ms.
		{arrival: 0, deadline: 5 * msec, items: []txn.Item{0, 1}},
		// Arrives during T0's doomed run; completes fine afterwards.
		{arrival: 1 * msec, deadline: 100 * msec, items: []txn.Item{2}},
	}
	cfg := scenarioConfig(EDFHP, 10, false)
	cfg.FirmDeadlines = true
	e, res := runScenario(t, cfg, buildWorkload(10, ins))
	if res.Dropped != 1 || res.Committed != 1 {
		t.Fatalf("dropped=%d committed=%d, want 1/1", res.Dropped, res.Committed)
	}
	if e.all[0].state != StateDropped {
		t.Fatalf("T0 state = %v, want dropped", e.all[0].state)
	}
	// T0 dropped at 5ms; T1 then runs 5..9.
	wantCommit(t, e, 1, 9*msec)
	if res.MissPercent != 50 {
		t.Fatalf("MissPercent = %v, want 50 (1 dropped of 2)", res.MissPercent)
	}
}

// TestFirmDropReleasesLocks: the dropped transaction's locks are released
// and a waiter is granted.
func TestFirmDropReleasesLocks(t *testing.T) {
	ins := []specIn{
		{arrival: 0, deadline: 6 * msec, items: []txn.Item{0, 1}},          // dropped at 6
		{arrival: 1 * msec, deadline: 200 * msec, items: []txn.Item{0, 1}}, // conflicts
	}
	cfg := scenarioConfig(EDFWP, 10, false) // waiting policy: T1 blocks on T0
	cfg.FirmDeadlines = true
	e, res := runScenario(t, cfg, buildWorkload(10, ins))
	if res.Dropped != 1 || res.Committed != 1 {
		t.Fatalf("dropped=%d committed=%d", res.Dropped, res.Committed)
	}
	// T1 blocked at 1ms on item 0; T0 dropped at 6ms; T1 granted and
	// finishes its two updates by 14ms (compute restarts fresh at 6).
	wantCommit(t, e, 1, 14*msec)
	if e.lm.LockedItems() != 0 {
		t.Fatal("locks leak after drop")
	}
}

// TestFirmAllPoliciesDrain: every policy finishes (commit or drop) every
// transaction under firm deadlines, in both configurations.
func TestFirmAllPoliciesDrain(t *testing.T) {
	for _, p := range Policies() {
		cfg := smallMM(p, 3)
		cfg.FirmDeadlines = true
		cfg.Workload.ArrivalRate = 10
		res := mustRun(t, cfg)
		if res.Committed+res.Dropped != 150 {
			t.Fatalf("%s MM: %d+%d != 150", p, res.Committed, res.Dropped)
		}
		if p == PCP {
			continue // main-memory only
		}
		dcfg := smallDisk(p, 3)
		dcfg.FirmDeadlines = true
		res = mustRun(t, dcfg)
		if res.Committed+res.Dropped != 80 {
			t.Fatalf("%s disk: %d+%d != 80", p, res.Committed, res.Dropped)
		}
	}
}

// TestFirmSerializable: dropped transactions leave no trace in the
// committed history or the store.
func TestFirmSerializable(t *testing.T) {
	cfg := historyConfig(CCA, 5, false)
	cfg.FirmDeadlines = true
	cfg.Workload.ArrivalRate = 11 // overload so drops occur
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Skip("no drops at this load; firm serializability vacuous")
	}
	if ok, cycle := e.History().Serializable(); !ok {
		t.Fatalf("firm-mode history not serializable: %v", cycle)
	}
	if e.History().Committed() != res.Committed {
		t.Fatal("history commit count mismatch")
	}
	for it := 0; it < cfg.Workload.DBSize; it++ {
		w := e.Store().Get(txn.Item(it)).Writer
		if w >= 0 && e.all[int(w)].state == StateDropped {
			t.Fatalf("item %d written by dropped T%d", it, w)
		}
	}
}

// TestFirmMissPercentHigherUnderOverload: in overload, firm mode converts
// hopeless lateness into drops; soft-mode lateness disappears but the miss
// percent reflects the drops.
func TestFirmCCAStillBeatsEDF(t *testing.T) {
	get := func(p PolicyKind) float64 {
		var total float64
		for seed := int64(1); seed <= 5; seed++ {
			cfg := MainMemoryConfig(p, seed)
			cfg.Workload.Count = 300
			cfg.Workload.ArrivalRate = 10
			cfg.FirmDeadlines = true
			res := mustRun(t, cfg)
			total += res.MissPercent
		}
		return total / 5
	}
	edf, cca := get(EDFHP), get(CCA)
	if cca > edf+1 {
		t.Fatalf("firm mode: CCA miss %.2f%% materially worse than EDF-HP %.2f%%", cca, edf)
	}
}

// TestFirmDropDuringIOService: a transaction dropped while its disk access
// is in service leaves the disk busy until completion and never restarts.
func TestFirmDropDuringIOService(t *testing.T) {
	ins := []specIn{
		{arrival: 0, deadline: 10 * msec, items: []txn.Item{0}, needsIO: []bool{true}}, // IO 0..25, dropped at 10
		{arrival: 1 * msec, deadline: 100 * msec, items: []txn.Item{1}, needsIO: []bool{true}},
	}
	cfg := scenarioConfig(CCA, 10, true)
	cfg.FirmDeadlines = true
	e, res := runScenario(t, cfg, buildWorkload(10, ins))
	if res.Dropped != 1 || res.Committed != 1 {
		t.Fatalf("dropped=%d committed=%d", res.Dropped, res.Committed)
	}
	// T1's IO queues behind T0's orphaned access (0..25), runs 25..50,
	// computes 50..54.
	wantCommit(t, e, 1, 54*msec)
	if e.all[0].restarts != 0 {
		t.Fatal("dropped transaction restarted")
	}
}
