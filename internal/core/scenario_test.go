package core

// Scenario tests: tiny hand-built workloads with exact expected timelines,
// exercising each scheduling mechanism in isolation. Times are in ms.

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/txn"
	"repro/internal/workload"
)

const msec = time.Millisecond

// spec builds a transaction Spec with 4 ms compute per update.
type specIn struct {
	arrival  time.Duration
	deadline time.Duration
	items    []txn.Item
	needsIO  []bool
	compute  time.Duration
}

func buildWorkload(dbSize int, ins []specIn) *workload.Workload {
	p := workload.BaseMainMemory()
	p.DBSize = dbSize
	p.Count = len(ins)
	wl := &workload.Workload{Params: p}
	for i, in := range ins {
		c := in.compute
		if c == 0 {
			c = 4 * msec
		}
		wl.Txns = append(wl.Txns, workload.Spec{
			ID:       i,
			Arrival:  in.arrival,
			Deadline: in.deadline,
			Items:    in.items,
			Compute:  c,
			NeedsIO:  in.needsIO,
		})
	}
	return wl
}

func scenarioConfig(policy PolicyKind, dbSize int, hasIO bool) Config {
	cfg := MainMemoryConfig(policy, 1)
	cfg.Workload.DBSize = dbSize
	cfg.CheckInvariants = true
	if hasIO {
		cfg.Workload.DiskAccessProb = 0.1 // enables the disk model
		cfg.Workload.DiskAccessTime = 25 * msec
		cfg.AbortCost = 5 * msec
	}
	return cfg
}

func runScenario(t *testing.T, cfg Config, wl *workload.Workload) (*Engine, metrics.Result) {
	t.Helper()
	e, err := NewWithWorkload(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return e, res
}

func commitTime(e *Engine, id int) time.Duration {
	return time.Duration(e.all[id].finish)
}

func wantCommit(t *testing.T, e *Engine, id int, want time.Duration) {
	t.Helper()
	if got := commitTime(e, id); got != want {
		t.Errorf("T%d committed at %v, want %v", id, got, want)
	}
}

// --- main memory --------------------------------------------------------

// TestScenarioSingleTxn: one transaction, two updates of 4 ms: commit at 8 ms.
func TestScenarioSingleTxn(t *testing.T) {
	wl := buildWorkload(10, []specIn{
		{arrival: 0, deadline: 100 * msec, items: []txn.Item{0, 1}},
	})
	e, res := runScenario(t, scenarioConfig(EDFHP, 10, false), wl)
	wantCommit(t, e, 0, 8*msec)
	if res.MissPercent != 0 || res.Restarts != 0 {
		t.Errorf("result = %+v", res)
	}
	if res.CPUUtilization != 1.0 {
		t.Errorf("CPU utilisation = %v, want 1.0", res.CPUUtilization)
	}
}

// TestScenarioMissedDeadline: the deadline is before the static execution
// time; soft real-time still commits and records the lateness.
func TestScenarioMissedDeadline(t *testing.T) {
	wl := buildWorkload(10, []specIn{
		{arrival: 0, deadline: 5 * msec, items: []txn.Item{0, 1}},
	})
	e, res := runScenario(t, scenarioConfig(EDFHP, 10, false), wl)
	wantCommit(t, e, 0, 8*msec)
	if res.MissPercent != 100 {
		t.Errorf("MissPercent = %v, want 100", res.MissPercent)
	}
	if res.MeanLatenessMs != 3 {
		t.Errorf("MeanLatenessMs = %v, want 3", res.MeanLatenessMs)
	}
}

// TestScenarioPreemptionDisjoint: an urgent disjoint transaction preempts;
// the preempted one resumes where it stopped. Identical under EDF-HP and
// CCA (penalty is zero for disjoint transactions).
func TestScenarioPreemptionDisjoint(t *testing.T) {
	ins := []specIn{
		{arrival: 0, deadline: 1000 * msec, items: []txn.Item{0, 1, 2}},
		{arrival: 2 * msec, deadline: 20 * msec, items: []txn.Item{3, 4}},
	}
	for _, pol := range []PolicyKind{EDFHP, CCA} {
		e, res := runScenario(t, scenarioConfig(pol, 10, false), buildWorkload(10, ins))
		// T1 runs 2-10; T0 resumes its interrupted update (2 of 4 ms
		// remaining) and finishes 3 updates at 20.
		wantCommit(t, e, 1, 10*msec)
		wantCommit(t, e, 0, 20*msec)
		if res.Restarts != 0 {
			t.Errorf("%s: restarts = %d, want 0", pol, res.Restarts)
		}
		if res.MissPercent != 0 {
			t.Errorf("%s: miss%% = %v", pol, res.MissPercent)
		}
	}
}

// TestScenarioWoundMM: under EDF-HP an urgent conflicting arrival wounds
// the running transaction; the 4 ms rollback precedes its first update.
func TestScenarioWoundMM(t *testing.T) {
	wl := buildWorkload(10, []specIn{
		{arrival: 0, deadline: 1000 * msec, items: []txn.Item{0, 1}},
		{arrival: 2 * msec, deadline: 20 * msec, items: []txn.Item{0}},
	})
	e, res := runScenario(t, scenarioConfig(EDFHP, 10, false), wl)
	// T1 preempts at 2, wounds T0 (rollback 2→6), computes 6→10.
	wantCommit(t, e, 1, 10*msec)
	// T0 restarts from scratch: 10→18.
	wantCommit(t, e, 0, 18*msec)
	if res.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", res.Restarts)
	}
	if e.all[0].restarts != 1 || e.all[1].restarts != 0 {
		t.Error("per-transaction restart counts wrong")
	}
	if res.CPUUtilization != 1.0 {
		t.Errorf("CPU utilisation = %v, want 1.0 (2+4+4+8 of 18ms)", res.CPUUtilization)
	}
}

// TestScenarioCCAAvoidsWound is the cost-conscious decision in miniature:
// deadlines nearly equal, so the penalty of wounding the partially executed
// holder outweighs the newcomer's slightly earlier deadline. EDF-HP wounds;
// CCA lets the holder finish and both meet their deadlines with no restart.
func TestScenarioCCAAvoidsWound(t *testing.T) {
	ins := []specIn{
		{arrival: 0, deadline: 30 * msec, items: []txn.Item{0, 1}},
		{arrival: 2 * msec, deadline: 28 * msec, items: []txn.Item{0}},
	}

	eEDF, rEDF := runScenario(t, scenarioConfig(EDFHP, 10, false), buildWorkload(10, ins))
	// EDF-HP: T1 (deadline 28 < 30) preempts and wounds T0 at 2 ms.
	wantCommit(t, eEDF, 1, 10*msec)
	wantCommit(t, eEDF, 0, 18*msec)
	if rEDF.Restarts != 1 {
		t.Fatalf("EDF-HP restarts = %d, want 1", rEDF.Restarts)
	}

	eCCA, rCCA := runScenario(t, scenarioConfig(CCA, 10, false), buildWorkload(10, ins))
	// CCA at 2 ms: penalty(T1) = service(2) + rollback(4) = 6, so
	// Pr(T1) = -(28+6) < Pr(T0) = -30: T0 keeps the CPU.
	wantCommit(t, eCCA, 0, 8*msec)
	wantCommit(t, eCCA, 1, 12*msec)
	if rCCA.Restarts != 0 {
		t.Fatalf("CCA restarts = %d, want 0", rCCA.Restarts)
	}
	if rCCA.MissPercent != 0 || rEDF.MissPercent != 0 {
		t.Error("both schedules should meet all deadlines here")
	}
}

// TestScenarioCCAWoundsWhenWorthIt: with a much more urgent newcomer the
// penalty does not outweigh the deadline and CCA wounds exactly like EDF-HP.
func TestScenarioCCAWoundsWhenWorthIt(t *testing.T) {
	ins := []specIn{
		{arrival: 0, deadline: 1000 * msec, items: []txn.Item{0, 1}},
		{arrival: 2 * msec, deadline: 20 * msec, items: []txn.Item{0}},
	}
	e, res := runScenario(t, scenarioConfig(CCA, 10, false), buildWorkload(10, ins))
	wantCommit(t, e, 1, 10*msec)
	wantCommit(t, e, 0, 18*msec)
	if res.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", res.Restarts)
	}
}

// TestScenarioPenaltyWeightZeroIsEDF: w=0 makes CCA take EDF-HP's decision
// in the avoid-wound scenario.
func TestScenarioPenaltyWeightZero(t *testing.T) {
	ins := []specIn{
		{arrival: 0, deadline: 30 * msec, items: []txn.Item{0, 1}},
		{arrival: 2 * msec, deadline: 28 * msec, items: []txn.Item{0}},
	}
	cfg := scenarioConfig(CCA, 10, false)
	cfg.PenaltyWeight = 0
	e, res := runScenario(t, cfg, buildWorkload(10, ins))
	wantCommit(t, e, 1, 10*msec)
	wantCommit(t, e, 0, 18*msec)
	if res.Restarts != 1 {
		t.Errorf("restarts = %d, want 1 (w=0 must behave like EDF-HP)", res.Restarts)
	}
}

// TestScenarioPenaltyPseudocodeVariant: with PenaltyIncludesRollback=false
// the penalty is only the victim's effective service time (the paper's
// pseudocode); penalty 2 < deadline gap... still large enough here to block
// the wound (28+2 > 30 is false: -(30) > -(30)? exactly equal deadline+2).
func TestScenarioPenaltyPseudocodeVariant(t *testing.T) {
	ins := []specIn{
		{arrival: 0, deadline: 31 * msec, items: []txn.Item{0, 1}},
		{arrival: 2 * msec, deadline: 28 * msec, items: []txn.Item{0}},
	}
	cfg := scenarioConfig(CCA, 10, false)
	cfg.PenaltyIncludesRollback = false
	// penalty(T1) = service(T0) = 2ms -> Pr(T1) = -30 > Pr(T0) = -31:
	// T1 wounds despite the penalty.
	e, res := runScenario(t, cfg, buildWorkload(10, ins))
	wantCommit(t, e, 1, 10*msec)
	if res.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", res.Restarts)
	}
	// With rollback included the penalty is 6ms and the wound is avoided.
	cfg.PenaltyIncludesRollback = true
	e2, res2 := runScenario(t, cfg, buildWorkload(10, ins))
	wantCommit(t, e2, 0, 8*msec)
	if res2.Restarts != 0 {
		t.Errorf("restarts = %d, want 0", res2.Restarts)
	}
}

// TestScenarioLSF: least slack first picks the transaction with less slack
// even when its deadline is later.
func TestScenarioLSF(t *testing.T) {
	ins := []specIn{
		// T0: deadline 100, work 8 -> slack 92 at t=0.
		{arrival: 0, deadline: 100 * msec, items: []txn.Item{0, 1}},
		// T1: deadline 120 (later!), work 10x4=40 -> slack at 2: 120-2-40=78.
		{arrival: 2 * msec, deadline: 120 * msec, items: []txn.Item{2, 3, 4, 5, 6, 7, 8, 9, 2, 3}[:10:10], compute: 4 * msec},
	}
	// Make T1's items valid and distinct.
	ins[1].items = []txn.Item{2, 3, 4, 5, 6, 7, 8, 9}
	e, res := runScenario(t, scenarioConfig(LSFHP, 10, false), buildWorkload(10, ins))
	// T1 has less slack at its arrival: 120-2-32=86 vs T0's 100-2-6=92,
	// so T1 preempts, runs 2..34; T0 resumes and finishes at 40.
	wantCommit(t, e, 1, 34*msec)
	wantCommit(t, e, 0, 40*msec)
	if res.Restarts != 0 {
		t.Errorf("restarts = %d", res.Restarts)
	}
}

// TestScenarioFCFSNoPreemption: FCFS never preempts the earliest arrival.
func TestScenarioFCFSNoPreemption(t *testing.T) {
	ins := []specIn{
		{arrival: 0, deadline: 1000 * msec, items: []txn.Item{0, 1}},
		{arrival: 2 * msec, deadline: 10 * msec, items: []txn.Item{0}},
	}
	e, res := runScenario(t, scenarioConfig(FCFS, 10, false), buildWorkload(10, ins))
	wantCommit(t, e, 0, 8*msec)
	wantCommit(t, e, 1, 12*msec)
	if res.Restarts != 0 || res.MissPercent != 50 {
		t.Errorf("result = %+v, want no restarts and a 50%% miss (T1 late)", res)
	}
}

// TestScenarioWPDeadlock: EDF-WP never aborts on conflict, so opposite-order
// access deadlocks; the engine detects the cycle and aborts the
// lower-priority member.
func TestScenarioWPDeadlock(t *testing.T) {
	ins := []specIn{
		{arrival: 0, deadline: 1000 * msec, items: []txn.Item{0, 1}},
		{arrival: 2 * msec, deadline: 100 * msec, items: []txn.Item{1, 0}},
	}
	_, res := runScenario(t, scenarioConfig(EDFWP, 10, false), buildWorkload(10, ins))
	if res.Deadlocks != 1 {
		t.Fatalf("deadlocks = %d, want 1", res.Deadlocks)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (the deadlock victim)", res.Restarts)
	}
	if res.Committed != 2 {
		t.Fatal("both transactions must still commit")
	}
}

// --- disk resident ------------------------------------------------------

// TestScenarioDiskSingle: lock, 25 ms IO, 4 ms compute, second update
// without IO: commit at 33 ms.
func TestScenarioDiskSingle(t *testing.T) {
	wl := buildWorkload(10, []specIn{
		{arrival: 0, deadline: 100 * msec, items: []txn.Item{0, 1}, needsIO: []bool{true, false}},
	})
	e, res := runScenario(t, scenarioConfig(EDFHP, 10, true), wl)
	wantCommit(t, e, 0, 33*msec)
	if res.DiskUtilization <= 0.7 || res.DiskUtilization >= 0.8 {
		t.Errorf("disk utilisation = %v, want 25/33", res.DiskUtilization)
	}
}

// TestScenarioNoncontributingExecution is the paper's §3.3.2 IO scenario.
// T0 (urgent) blocks on IO; T1 conflicts with T0's data set.
//
// EDF-HP runs T1 during the wait — a noncontributing execution that is
// wounded when T0 resumes. CCA's IOwait-schedule leaves the CPU idle, T0
// finishes earlier, and nobody restarts.
func TestScenarioNoncontributingExecution(t *testing.T) {
	ins := []specIn{
		{arrival: 0, deadline: 60 * msec, items: []txn.Item{0, 1}, needsIO: []bool{true, false}},
		{arrival: 1 * msec, deadline: 500 * msec, items: []txn.Item{1, 2}, needsIO: []bool{false, false}, compute: 20 * msec},
	}

	eEDF, rEDF := runScenario(t, scenarioConfig(EDFHP, 10, true), buildWorkload(10, ins))
	// EDF-HP: T1 runs 1..25 (locks 1, then 2 at 21); T0 resumes at 25,
	// computes item0 25..29, then wounds T1 on item 1 (rollback 29..34),
	// computes 34..38.
	wantCommit(t, eEDF, 0, 38*msec)
	// T1 restarts from scratch at 38: two 20 ms updates -> 78.
	wantCommit(t, eEDF, 1, 78*msec)
	if rEDF.Restarts != 1 || rEDF.NoncontributingAborts != 1 {
		t.Fatalf("EDF-HP: restarts=%d noncontrib=%d, want 1/1", rEDF.Restarts, rEDF.NoncontributingAborts)
	}

	eCCA, rCCA := runScenario(t, scenarioConfig(CCA, 10, true), buildWorkload(10, ins))
	// CCA: T1 conflicts with the partially executed T0 (might-sets
	// intersect on item 1), so the CPU idles 1..25; T0 finishes at 33;
	// T1 runs 33..73.
	wantCommit(t, eCCA, 0, 33*msec)
	wantCommit(t, eCCA, 1, 73*msec)
	if rCCA.Restarts != 0 || rCCA.NoncontributingAborts != 0 {
		t.Fatalf("CCA: restarts=%d noncontrib=%d, want 0/0", rCCA.Restarts, rCCA.NoncontributingAborts)
	}
}

// TestScenarioSecondaryRunsWhenCompatible: CCA does use the IO wait when a
// ready transaction is compatible with every partially executed one.
func TestScenarioSecondaryRunsWhenCompatible(t *testing.T) {
	ins := []specIn{
		{arrival: 0, deadline: 60 * msec, items: []txn.Item{0, 1}, needsIO: []bool{true, false}},
		{arrival: 1 * msec, deadline: 500 * msec, items: []txn.Item{5, 6}, needsIO: []bool{false, false}},
	}
	e, res := runScenario(t, scenarioConfig(CCA, 10, true), buildWorkload(10, ins))
	// T1 (disjoint) runs 1..9 during T0's IO.
	wantCommit(t, e, 1, 9*msec)
	wantCommit(t, e, 0, 33*msec)
	if res.Restarts != 0 {
		t.Errorf("restarts = %d", res.Restarts)
	}
	if res.CPUUtilization <= 0.3 {
		t.Errorf("CPU should overlap with IO; utilisation = %v", res.CPUUtilization)
	}
}

// TestScenarioLockWaitEDFHP: under EDF-HP a requester blocks when the
// conflicting holder has higher priority (here: the holder is IO-waiting
// with an earlier deadline), and is granted the lock when the holder
// commits.
func TestScenarioLockWaitEDFHP(t *testing.T) {
	ins := []specIn{
		{arrival: 0, deadline: 100 * msec, items: []txn.Item{0}, needsIO: []bool{true}},
		{arrival: 1 * msec, deadline: 200 * msec, items: []txn.Item{0}, needsIO: []bool{false}},
	}
	e, res := runScenario(t, scenarioConfig(EDFHP, 10, true), buildWorkload(10, ins))
	// T0: IO 0..25, compute 25..29, commit 29. T1 dispatched at 1,
	// blocks on item 0 (holder has higher priority), granted at 29,
	// computes 29..33.
	wantCommit(t, e, 0, 29*msec)
	wantCommit(t, e, 1, 33*msec)
	if res.LockWaits != 1 {
		t.Errorf("LockWaits = %d, want 1", res.LockWaits)
	}
	if res.Restarts != 0 {
		t.Errorf("restarts = %d, want 0 (wait, not wound)", res.Restarts)
	}
}

// TestScenarioAbortDuringIOService: a transaction wounded while its disk
// access is in service keeps the disk busy and restarts only when the disk
// releases (paper §5).
func TestScenarioAbortDuringIOService(t *testing.T) {
	ins := []specIn{
		// T1 will be mid-IO when the urgent conflicting T0... order by
		// arrival: T0 arrives first and starts IO; T1 wounds it.
		{arrival: 0, deadline: 1000 * msec, items: []txn.Item{0}, needsIO: []bool{true}},
		{arrival: 5 * msec, deadline: 40 * msec, items: []txn.Item{0}, needsIO: []bool{false}},
	}
	e, res := runScenario(t, scenarioConfig(EDFHP, 10, true), buildWorkload(10, ins))
	// T0 starts IO at 0 (in service until 25). T1 arrives at 5; T0 is
	// the globally top transaction? No: deadline 40 < 1000, so T1 is
	// top, is dispatched, requests item 0, wounds T0 (rollback 5..10),
	// computes 10..14 and commits. T0's restart waits for the disk
	// release at 25, then runs IO 25..50, computes 50..54.
	wantCommit(t, e, 1, 14*msec)
	wantCommit(t, e, 0, 54*msec)
	if res.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", res.Restarts)
	}
}

// TestScenarioReadLocksShare (extension): two readers of the same item do
// not conflict; a writer behind them waits or wounds per policy.
func TestScenarioReadLocksShare(t *testing.T) {
	p := workload.BaseMainMemory()
	p.DBSize = 10
	p.Count = 2
	wl := &workload.Workload{Params: p}
	wl.Txns = []workload.Spec{
		{ID: 0, Arrival: 0, Deadline: 1000 * msec, Items: []txn.Item{0, 1}, Compute: 4 * msec, Reads: []bool{true, false}},
		{ID: 1, Arrival: 2 * msec, Deadline: 50 * msec, Items: []txn.Item{0}, Compute: 4 * msec, Reads: []bool{true}},
	}
	cfg := scenarioConfig(EDFHP, 10, false)
	e, res := runScenario(t, cfg, wl)
	// T1 preempts at 2 and read-locks item 0 alongside T0's read lock:
	// no conflict, no wound.
	wantCommit(t, e, 1, 6*msec)
	wantCommit(t, e, 0, 12*msec)
	if res.Restarts != 0 || res.LockWaits != 0 {
		t.Errorf("shared read should not conflict: %+v", res)
	}
}

// TestScenarioProportionalRecovery (extension): recovery cost proportional
// to executed work raises CCA's penalty and blocks a wound that the fixed
// cost would allow.
func TestScenarioProportionalRecovery(t *testing.T) {
	ins := []specIn{
		{arrival: 0, deadline: 34 * msec, items: []txn.Item{0, 1}},
		{arrival: 6 * msec, deadline: 28 * msec, items: []txn.Item{0}},
	}
	// Fixed cost: penalty = 6 (service) + 4 = 10; Pr(T1) = -38 < -34:
	// avoided even with fixed cost. Shrink: use weight to discriminate.
	cfg := scenarioConfig(CCA, 10, false)
	cfg.PenaltyWeight = 0.3
	// penalty*w = 3 -> Pr(T1) = -31 > Pr(T0) = -34: wound happens.
	e, res := runScenario(t, cfg, buildWorkload(10, ins))
	if res.Restarts != 1 {
		t.Fatalf("fixed-cost restarts = %d, want 1", res.Restarts)
	}
	_ = e

	cfg.RecoveryProportionalFactor = 2 // rollback = 4ms + 2*service(6ms) = 16ms
	// penalty*w = (6+16)*0.3 = 6.6 -> Pr(T1) = -34.6 < -34: avoided.
	e2, res2 := runScenario(t, cfg, buildWorkload(10, ins))
	wantCommit(t, e2, 0, 8*msec)
	if res2.Restarts != 0 {
		t.Fatalf("proportional-cost restarts = %d, want 0", res2.Restarts)
	}
}

// TestScenarioMultiprocessor (extension): two CPUs run disjoint
// transactions in parallel.
func TestScenarioMultiprocessor(t *testing.T) {
	ins := []specIn{
		{arrival: 0, deadline: 100 * msec, items: []txn.Item{0, 1}},
		{arrival: 0, deadline: 200 * msec, items: []txn.Item{2, 3}},
	}
	cfg := scenarioConfig(EDFHP, 10, false)
	cfg.NumCPUs = 2
	e, res := runScenario(t, cfg, buildWorkload(10, ins))
	wantCommit(t, e, 0, 8*msec)
	wantCommit(t, e, 1, 8*msec)
	if res.CPUUtilization != 1.0 {
		t.Errorf("2-CPU utilisation = %v, want 1.0", res.CPUUtilization)
	}
}

// TestScenarioMultiDisk (extension): items stripe across disks, so two
// disjoint transactions' accesses proceed in parallel on two disks while a
// single disk serialises them.
func TestScenarioMultiDisk(t *testing.T) {
	ins := []specIn{
		{arrival: 0, deadline: 100 * msec, items: []txn.Item{0}, needsIO: []bool{true}},
		{arrival: 0, deadline: 200 * msec, items: []txn.Item{1}, needsIO: []bool{true}},
	}
	// One disk: T1's access queues behind T0's (0..25, 25..50).
	cfg1 := scenarioConfig(CCA, 10, true)
	e1, _ := runScenario(t, cfg1, buildWorkload(10, ins))
	wantCommit(t, e1, 0, 29*msec)
	wantCommit(t, e1, 1, 54*msec)

	// Two disks: items 0 and 1 live on different disks; both accesses run
	// 0..25 in parallel; CPU then serves T0 25..29 and T1 29..33.
	cfg2 := scenarioConfig(CCA, 10, true)
	cfg2.NumDisks = 2
	e2, res2 := runScenario(t, cfg2, buildWorkload(10, ins))
	wantCommit(t, e2, 0, 29*msec)
	wantCommit(t, e2, 1, 33*msec)
	if res2.DiskUtilization <= 0 {
		t.Error("disk utilisation not recorded for multi-disk")
	}
}

// TestScenarioCriticality (extension): a higher-criticality transaction
// outranks an earlier deadline.
func TestScenarioCriticality(t *testing.T) {
	p := workload.BaseMainMemory()
	p.DBSize = 10
	p.Count = 2
	wl := &workload.Workload{Params: p}
	wl.Txns = []workload.Spec{
		{ID: 0, Arrival: 0, Deadline: 1000 * msec, Items: []txn.Item{0}, Compute: 4 * msec, Criticality: 1},
		{ID: 1, Arrival: 1 * msec, Deadline: 10 * msec, Items: []txn.Item{1}, Compute: 4 * msec, Criticality: 0},
	}
	e, _ := runScenario(t, scenarioConfig(EDFHP, 10, false), wl)
	// T1's deadline is far earlier but its criticality class is lower:
	// T0 is not preempted.
	wantCommit(t, e, 0, 4*msec)
	wantCommit(t, e, 1, 8*msec)
}
