package core

import (
	"fmt"
	"time"

	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/workload"
)

// PolicyKind names a scheduling algorithm.
type PolicyKind string

const (
	// CCA is the paper's cost conscious approach: priority
	// -(deadline + w·penaltyOfConflict), High Priority (wound) conflict
	// resolution, and conflict-aware IO-wait scheduling.
	CCA PolicyKind = "cca"
	// EDFHP is the Abbott/Garcia-Molina baseline: earliest deadline
	// first with High Priority conflict resolution.
	EDFHP PolicyKind = "edf-hp"
	// EDFWP is earliest deadline first with the Wait Promote
	// (priority-inheritance, non-abortive) conflict resolution; it can
	// deadlock, which the engine resolves by detection (extension).
	EDFWP PolicyKind = "edf-wp"
	// LSFHP is least slack first with High Priority conflict resolution
	// (extension baseline).
	LSFHP PolicyKind = "lsf-hp"
	// EDFCR is earliest deadline first with the Conditional Restart
	// conflict resolution of Abbott/Garcia-Molina, which the paper
	// discusses as a compromise between abort and wait: the requester
	// blocks if the holder can finish within the requester's slack and
	// wounds it otherwise. As the paper notes, it can deadlock; the
	// engine resolves detected cycles by abort.
	EDFCR PolicyKind = "edf-cr"
	// AED is Adaptive Earliest Deadline (Haritsa, Carey & Livny — the
	// paper's [HCL90]): a feedback mechanism partitions transactions
	// into a HIT group scheduled by EDF and a MISS group scheduled by
	// random priority, shrinking the HIT group under overload so that
	// EDF's past-saturation collapse is avoided (extension baseline;
	// conflicts resolved High Priority).
	AED PolicyKind = "aed"
	// PCP is the Priority Ceiling Protocol ([Sha88], [SRSC91]) — the
	// pure-wait extreme the paper contrasts with EDF-HP's pure abort
	// (§6). EDF priorities, ceiling-based admission with priority
	// inheritance; never aborts, never deadlocks (extension baseline).
	PCP PolicyKind = "pcp"
	// FCFS is first-come-first-served with High Priority conflict
	// resolution (non-real-time control).
	FCFS PolicyKind = "fcfs"
	// CCAP is CCA with a predicted-conflict penalty: each conflicting
	// holder's contribution is additionally scaled by the observed
	// conflict rate for the live type pair, from an online statistics
	// table fed by the engine's decision tap (extension; see
	// predict_policy.go). With Predict.RateScale 0 or Predict.Decay 0 it
	// is bit-identical to CCA.
	CCAP PolicyKind = "cca-p"
	// CCAT is CCAP with a self-tuning penalty weight: a deterministic
	// seeded hill-climb (optionally ε-greedy) adjusts w over commit-rate
	// feedback windows (extension). With Predict.TunerOff and a degenerate
	// statistics knob it is bit-identical to CCA.
	CCAT PolicyKind = "cca-t"
)

// Policies lists every implemented policy kind.
func Policies() []PolicyKind {
	return []PolicyKind{CCA, EDFHP, EDFWP, LSFHP, EDFCR, AED, PCP, FCFS, CCAP, CCAT}
}

// isCCAFamily reports whether k schedules with CCA's conflict-resolution
// rule (always wound, never lock-wait) — the policies Theorem 1 covers.
func isCCAFamily(k PolicyKind) bool { return k == CCA || k == CCAP || k == CCAT }

// Config fully describes one simulation run.
type Config struct {
	// Workload holds the workload generation parameters.
	Workload workload.Params
	// Policy selects the scheduling algorithm.
	Policy PolicyKind
	// PenaltyWeight is the paper's w: the weight of the penalty of
	// conflict in CCA's priority (Table 1/2: 1). 0 reduces CCA to EDF-HP
	// on a main-memory database.
	PenaltyWeight float64
	// PenaltyIncludesRollback adds each victim's rollback time to the
	// penalty of conflict, matching §3.3.1's TL = Σ (rollback + exec);
	// disable to match the pseudocode, which adds only effective service.
	PenaltyIncludesRollback bool
	// AbortCost is the fixed CPU time to roll back one transaction
	// (Table 1: 4 ms; Table 2: 5 ms).
	AbortCost time.Duration
	// RecoveryProportionalFactor, when > 0, makes rollback cost
	// AbortCost + factor × victim's effective service time (extension;
	// the paper's §6 notes CCA is "very attractive" in this regime).
	RecoveryProportionalFactor float64
	// NumCPUs is the number of processors (paper: 1; >1 is the paper's
	// §6 multiprocessor extension).
	NumCPUs int
	// DiskDiscipline selects the disk queue order (paper: FCFS).
	DiskDiscipline disk.Discipline
	// NumDisks is the number of disks; items are striped across them by
	// item number (paper: 1; >1 is an extension in the spirit of §6's
	// "more resources" multiprocessor discussion).
	NumDisks int
	// Seed selects the workload and is the run's only source of
	// randomness; identical configs with identical seeds replay exactly.
	Seed int64
	// FirmDeadlines switches from the paper's soft model (late
	// transactions still run to commit) to the firm model of Haritsa et
	// al., which the paper contrasts with (§1, §2): a transaction whose
	// deadline expires before commit is aborted and discarded, since a
	// late result has no value. Dropped transactions count as misses.
	FirmDeadlines bool
	// CheckInvariants enables expensive internal consistency checks at
	// every scheduling point (used by the test suite).
	CheckInvariants bool
	// PessimisticAnalysis disables might-set narrowing at decision
	// points: the scheduler then treats every conditionally-conflicting
	// transaction as conflicting for its whole lifetime, which is the
	// "standard transaction pre-analysis" the paper calls "too
	// pessimistic to use in real-time systems" (§3). Only meaningful for
	// workloads generated with DecisionPoints.
	PessimisticAnalysis bool
	// RecordHistory records every data operation for post-run conflict
	// serializability checking (Engine.History).
	RecordHistory bool
	// NaiveConflictScan disables the incremental conflict index and falls
	// back to the original O(live × DBSize) bitset rescans at every
	// scheduling point. Behaviour is bit-identical either way (the
	// equivalence suite asserts it); the flag exists for that suite and
	// for benchmarking the index (see BENCH_core.json).
	NaiveConflictScan bool
	// NaiveDispatch disables the allocation-free incremental dispatch pass
	// and the pooled event calendar, restoring the original scheduling hot
	// path: every pass re-evaluates every live transaction's priority,
	// rebuilds and stable-sorts a fresh dispatch pool, scans the desired
	// set linearly, and every simulator event is a fresh heap allocation.
	// Behaviour is bit-identical either way (the equivalence suite asserts
	// it); the flag exists for that suite and for the allocation
	// benchmarks (see BENCH_core.json).
	NaiveDispatch bool
	// MaxEvents bounds the simulation as a runaway guard; 0 picks a
	// generous default derived from the workload size.
	MaxEvents uint64
	// Fault declares the deterministic fault plan of the run: disk latency
	// spikes, transient IO errors with bounded retry, brownout windows,
	// CPU jitter, spurious aborts and arrival bursts, all drawn from named
	// substreams of Seed. The zero value injects nothing and leaves the
	// run bit-identical to an unfaulted one.
	Fault fault.Plan
	// Admission configures the overload controller consulted at every
	// arrival; the zero value admits everything (the paper's model).
	Admission AdmissionConfig
	// WatchdogBudget bounds how many consecutive events the engine may
	// execute without the simulated clock advancing before the run fails
	// fast with a stall diagnostic. 0 picks a generous default scaled to
	// the workload; < 0 disables the watchdog.
	WatchdogBudget int
	// Predict configures the conflict-prediction layer of the CCAP and
	// CCAT policies; ignored by every other policy. The zero value is
	// valid (and degenerate: RateScale 0 evaluates exactly like CCA).
	Predict PredictConfig
}

// MainMemoryConfig returns the paper's §4 base configuration (Table 1) for
// the given policy and seed.
func MainMemoryConfig(p PolicyKind, seed int64) Config {
	return Config{
		Workload:                workload.BaseMainMemory(),
		Policy:                  p,
		PenaltyWeight:           1,
		PenaltyIncludesRollback: true,
		AbortCost:               4 * time.Millisecond,
		NumCPUs:                 1,
		Seed:                    seed,
	}
}

// DiskConfig returns the paper's §5 base configuration (Table 2).
func DiskConfig(p PolicyKind, seed int64) Config {
	c := MainMemoryConfig(p, seed)
	c.Workload = workload.BaseDisk()
	c.AbortCost = 5 * time.Millisecond
	return c
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	switch c.Policy {
	case CCA, EDFHP, EDFWP, LSFHP, EDFCR, AED, PCP, FCFS, CCAP, CCAT:
	default:
		return fmt.Errorf("core: unknown policy %q", c.Policy)
	}
	if err := c.Predict.Validate(); err != nil {
		return err
	}
	if c.PenaltyWeight < 0 {
		return fmt.Errorf("core: PenaltyWeight %v < 0", c.PenaltyWeight)
	}
	if c.AbortCost < 0 {
		return fmt.Errorf("core: AbortCost %v < 0", c.AbortCost)
	}
	if c.RecoveryProportionalFactor < 0 {
		return fmt.Errorf("core: RecoveryProportionalFactor %v < 0", c.RecoveryProportionalFactor)
	}
	if c.NumCPUs <= 0 {
		return fmt.Errorf("core: NumCPUs %d <= 0", c.NumCPUs)
	}
	if c.NumDisks < 0 {
		return fmt.Errorf("core: NumDisks %d < 0", c.NumDisks)
	}
	if c.Policy == PCP && c.Workload.DiskAccessProb > 0 {
		// Classic priority-ceiling guarantees (single blocking, no
		// deadlock) assume critical sections do not self-suspend; disk
		// IO suspends lock holders mid-region, which lets two entered
		// holders ceiling-block each other. The published RTDB ceiling
		// protocols ([Sha88], [SRSC91]) are defined for main-memory
		// databases, and so is this implementation.
		return fmt.Errorf("core: PCP requires a main-memory-resident database (ceiling guarantees assume no self-suspension)")
	}
	if err := c.Fault.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.Admission.Validate(); err != nil {
		return err
	}
	return nil
}

// maxEvents returns the runaway guard for a run over count transactions.
func (c Config) maxEvents(count int) uint64 {
	if c.MaxEvents > 0 {
		return c.MaxEvents
	}
	// Generous: every transaction could restart many times; each attempt
	// touches every item with a lock, an IO and a compute event.
	per := uint64(c.Workload.UpdatesMean*8+16) * 64
	return uint64(count)*per + 4096
}
