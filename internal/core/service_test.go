package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/txn"
)

// startService builds and runs a wall-clock service at heavily compressed
// time, returning it plus a shutdown func that stops the driver and waits
// for Run to return.
func startService(t *testing.T, cfg Config, opt ServiceOptions) (*Service, func()) {
	t.Helper()
	if opt.Speed == 0 {
		opt.Speed = 5000 // 1ms simulated ≈ 200ns wall
	}
	s, err := NewService(cfg, opt)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	return s, func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("service Run did not return after cancel")
		}
	}
}

// simpleReq builds a small all-write main-memory transaction.
func simpleReq(items ...txn.Item) ServiceRequest {
	return ServiceRequest{
		Items:    items,
		Compute:  time.Millisecond,
		Deadline: 500 * time.Millisecond,
	}
}

// TestServiceCommits submits concurrent transactions against the
// wall-clock CCA engine and checks they all commit with coherent timings.
func TestServiceCommits(t *testing.T) {
	s, stop := startService(t, MainMemoryConfig(CCA, 1), ServiceOptions{})
	defer stop()

	const n = 24
	var wg sync.WaitGroup
	outcomes := make([]ServiceOutcome, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			outcomes[i], errs[i] = s.Submit(context.Background(), simpleReq(txn.Item(i%7), txn.Item(15+i%11)))
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		o := outcomes[i]
		if o.State != StateCommitted {
			t.Fatalf("submit %d finished %v, want committed", i, o.State)
		}
		if o.Finish < o.Arrival || o.Response != o.Finish-o.Arrival {
			t.Fatalf("submit %d has incoherent timing: %+v", i, o)
		}
	}
	st, ok := s.Stats()
	if !ok {
		t.Fatal("Stats after commits: service reported stopped")
	}
	if st.Result.Committed != n {
		t.Fatalf("stats report %d commits, want %d", st.Result.Committed, n)
	}
	if st.Live != 0 {
		t.Fatalf("stats report %d live after all commits", st.Live)
	}
}

// TestServiceValidation checks that malformed requests are refused before
// they reach the engine.
func TestServiceValidation(t *testing.T) {
	s, stop := startService(t, MainMemoryConfig(CCA, 2), ServiceOptions{})
	defer stop()

	bad := []ServiceRequest{
		{Compute: time.Millisecond, Deadline: time.Second},                                          // no items
		{Items: []txn.Item{100000}, Compute: time.Millisecond, Deadline: time.Second},               // out of range
		{Items: []txn.Item{1}, Compute: 0, Deadline: time.Second},                                   // no compute
		{Items: []txn.Item{1}, Compute: time.Millisecond, Deadline: 0},                              // no deadline
		{Items: []txn.Item{1}, Compute: time.Millisecond, Deadline: time.Second, Reads: []bool{}},   // flag length
		{Items: []txn.Item{1}, Compute: time.Millisecond, Deadline: time.Second, NeedsIO: []bool{true}}, // IO without disks
	}
	bad[4].Reads = []bool{true, false}
	for i, req := range bad {
		if _, err := s.Submit(context.Background(), req); err == nil {
			t.Fatalf("bad request %d was accepted", i)
		}
	}
}

// TestServiceAdmissionSheds checks that the reject-infeasible admission
// controller surfaces shedding as a StateRejected outcome, not an error.
func TestServiceAdmissionSheds(t *testing.T) {
	cfg := MainMemoryConfig(CCA, 3)
	cfg.Admission = AdmissionConfig{Mode: RejectInfeasible}
	s, stop := startService(t, cfg, ServiceOptions{})
	defer stop()

	// 25 updates × 1ms compute on one CPU cannot finish in 2ms.
	req := ServiceRequest{
		Items:    make([]txn.Item, 25),
		Compute:  time.Millisecond,
		Deadline: 2 * time.Millisecond,
	}
	for i := range req.Items {
		req.Items[i] = txn.Item(i)
	}
	o, err := s.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if o.State != StateRejected || !o.Missed {
		t.Fatalf("infeasible request finished %+v, want rejected+missed", o)
	}

	// A feasible one still commits.
	o, err = s.Submit(context.Background(), simpleReq(3))
	if err != nil {
		t.Fatalf("Submit feasible: %v", err)
	}
	if o.State != StateCommitted {
		t.Fatalf("feasible request finished %v, want committed", o.State)
	}
}

// TestServiceClientCancel checks that a departed client's transaction is
// wounded: the outcome is a drop and the ctx error is surfaced.
func TestServiceClientCancel(t *testing.T) {
	// Slow things down so the transaction is reliably still in flight when
	// the client cancels: 1 simulated second of compute at Speed 50 is
	// 20ms of wall time.
	cfg := MainMemoryConfig(CCA, 4)
	s, stop := startService(t, cfg, ServiceOptions{Speed: 50})
	defer stop()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	o, err := s.Submit(ctx, ServiceRequest{
		Items:    []txn.Item{1, 2, 3},
		Compute:  time.Second,
		Deadline: time.Hour,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit returned err %v, want context.Canceled", err)
	}
	if o.State != StateDropped {
		t.Fatalf("cancelled transaction finished %v, want dropped", o.State)
	}
}

// TestServiceDrain checks graceful drain: new submissions are refused,
// in-flight work is wounded when the drain deadline expires, and the live
// set is empty afterwards.
func TestServiceDrain(t *testing.T) {
	cfg := MainMemoryConfig(CCA, 5)
	s, stop := startService(t, cfg, ServiceOptions{Speed: 50})
	defer stop()

	started := make(chan struct{})
	result := make(chan ServiceOutcome, 1)
	go func() {
		close(started)
		o, _ := s.Submit(context.Background(), ServiceRequest{
			Items:    []txn.Item{1, 2, 3, 4, 5},
			Compute:  time.Second,
			Deadline: time.Hour,
		})
		result <- o
	}()
	<-started
	time.Sleep(5 * time.Millisecond) // let the submission reach the engine

	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer dcancel()
	if err := s.Drain(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain returned %v, want deadline exceeded (wounded stragglers)", err)
	}

	if _, err := s.Submit(context.Background(), simpleReq(9)); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit during drain returned %v, want ErrDraining", err)
	}

	select {
	case o := <-result:
		if o.State != StateDropped {
			t.Fatalf("drained transaction finished %v, want dropped", o.State)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drained transaction never reported its outcome")
	}
	if st, ok := s.Stats(); !ok || st.Live != 0 {
		t.Fatalf("after drain: stats ok=%v live=%d, want ok live=0", ok, st.Live)
	}
}

// TestServiceDrainClean checks that a drain with no in-flight work (or
// work that finishes in time) returns nil.
func TestServiceDrainClean(t *testing.T) {
	s, stop := startService(t, MainMemoryConfig(CCA, 6), ServiceOptions{})
	defer stop()
	if _, err := s.Submit(context.Background(), simpleReq(1)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain of an idle service: %v", err)
	}
}

// TestServiceStoppedSubmit checks that submissions against a stopped
// service fail with ErrServiceStopped.
func TestServiceStoppedSubmit(t *testing.T) {
	s, stop := startService(t, MainMemoryConfig(CCA, 7), ServiceOptions{})
	stop()
	if _, err := s.Submit(context.Background(), simpleReq(1)); !errors.Is(err, ErrServiceStopped) {
		t.Fatalf("Submit after stop returned %v, want ErrServiceStopped", err)
	}
	if _, ok := s.Stats(); ok {
		t.Fatal("Stats after stop reported ok")
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain after stop: %v", err)
	}
}

// TestServiceIDRecycling checks that a long sequential request stream
// reuses transaction IDs so the engine's tables stay bounded by the peak
// live set instead of the request count.
func TestServiceIDRecycling(t *testing.T) {
	s, stop := startService(t, MainMemoryConfig(CCA, 8), ServiceOptions{})
	defer stop()
	for i := 0; i < 200; i++ {
		if _, err := s.Submit(context.Background(), simpleReq(txn.Item(i%30))); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	n := make(chan int, 1)
	if err := s.rt.Call(func() { n <- len(s.e.all) }); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got := <-n; got > 16 {
		t.Fatalf("transaction table grew to %d entries over 200 sequential requests; IDs are not recycled", got)
	}
}

// TestServiceOracleLive checks that the live oracle observes a healthy run
// without tripping, and that enabling it disables ID recycling (the
// history keys operations by transaction ID).
func TestServiceOracleLive(t *testing.T) {
	s, stop := startService(t, MainMemoryConfig(CCA, 9), ServiceOptions{Oracle: true})
	defer stop()
	for i := 0; i < 30; i++ {
		o, err := s.Submit(context.Background(), simpleReq(txn.Item(i%5), txn.Item(20+i%3)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if o.State != StateCommitted {
			t.Fatalf("submit %d finished %v", i, o.State)
		}
	}
	if err := s.Err(); err != nil {
		t.Fatalf("oracle tripped on a healthy run: %v", err)
	}
	n := make(chan int, 1)
	if err := s.rt.Call(func() { n <- len(s.e.all) }); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got := <-n; got != 30 {
		t.Fatalf("oracle run recycled IDs: table has %d entries, want 30", got)
	}
}

// TestServiceDiskIO runs the disk-resident configuration with IO-bearing
// requests through the wall-clock path.
func TestServiceDiskIO(t *testing.T) {
	cfg := DiskConfig(CCA, 10)
	s, stop := startService(t, cfg, ServiceOptions{})
	defer stop()
	req := ServiceRequest{
		Items:    []txn.Item{5, 25},
		NeedsIO:  []bool{true, true},
		Compute:  time.Millisecond,
		Deadline: 2 * time.Second,
	}
	o, err := s.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if o.State != StateCommitted {
		t.Fatalf("IO transaction finished %v, want committed", o.State)
	}
	if st, ok := s.Stats(); !ok || st.Result.Committed != 1 {
		t.Fatalf("stats after IO commit: ok=%v %+v", ok, st.Result)
	}
}
