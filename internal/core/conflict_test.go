package core

// Equivalence suite for the incremental conflict index: every run must be
// bit-identical — same per-transaction schedule (commit times, restarts,
// secondary dispatches) and same metrics — whether the engine maintains the
// index or performs the original full scans (Config.NaiveConflictScan).
// The indexed runs execute with CheckInvariants on, which additionally
// cross-checks the index against a brute-force recomputation at every
// scheduling point.

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/workload"
)

// txnOutcome is the schedule-visible fate of one transaction.
type txnOutcome struct {
	State     State
	Finish    time.Duration
	Restarts  int
	Secondary bool
}

func runForEquivalence(t *testing.T, cfg Config, wl *workload.Workload) ([]txnOutcome, interface{}) {
	t.Helper()
	var (
		e   *Engine
		err error
	)
	if wl != nil {
		e, err = NewWithWorkload(cfg, wl)
	} else {
		e, err = New(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]txnOutcome, len(e.all))
	for i, tx := range e.all {
		out[i] = txnOutcome{
			State:     tx.state,
			Finish:    time.Duration(tx.finish),
			Restarts:  tx.restarts,
			Secondary: tx.ranAsSecondary,
		}
	}
	return out, res
}

// assertEquivalent runs cfg twice — indexed (with invariants verifying the
// index) and naive — and requires bit-identical schedules and metrics.
func assertEquivalent(t *testing.T, name string, cfg Config, wl *workload.Workload) {
	t.Helper()
	idxCfg := cfg
	idxCfg.NaiveConflictScan = false
	idxCfg.CheckInvariants = true
	naiveCfg := cfg
	naiveCfg.NaiveConflictScan = true
	naiveCfg.CheckInvariants = true

	idxSched, idxRes := runForEquivalence(t, idxCfg, wl)
	naiveSched, naiveRes := runForEquivalence(t, naiveCfg, wl)
	if !reflect.DeepEqual(idxSched, naiveSched) {
		for i := range idxSched {
			if idxSched[i] != naiveSched[i] {
				t.Errorf("%s: T%d diverges: indexed %+v, naive %+v", name, i, idxSched[i], naiveSched[i])
			}
		}
		t.Fatalf("%s: schedules diverge between indexed and naive engines", name)
	}
	if !reflect.DeepEqual(idxRes, naiveRes) {
		t.Fatalf("%s: metrics diverge:\nindexed: %+v\nnaive:   %+v", name, idxRes, naiveRes)
	}
}

// TestConflictIndexEquivalenceGenerated covers the paper's generated
// workloads: main-memory and disk base configurations under CCA at several
// arrival rates and seeds (the paths that exercise PenaltyOfConflict and
// the IOwait-schedule filter continuously).
func TestConflictIndexEquivalenceGenerated(t *testing.T) {
	for _, rate := range []float64{5, 10, 15} {
		for seed := int64(1); seed <= 3; seed++ {
			cfg := MainMemoryConfig(CCA, seed)
			cfg.Workload.Count = 250
			cfg.Workload.ArrivalRate = rate
			assertEquivalent(t, "mm-cca", cfg, nil)
		}
	}
	for seed := int64(1); seed <= 3; seed++ {
		cfg := DiskConfig(CCA, seed)
		cfg.Workload.Count = 120
		assertEquivalent(t, "disk-cca", cfg, nil)
	}
}

// TestConflictIndexEquivalenceAllPolicies runs every policy on the base
// workload: the index is maintained engine-wide (the P-list statistic uses
// it for every policy), so every policy must stay bit-identical too.
func TestConflictIndexEquivalenceAllPolicies(t *testing.T) {
	for _, pol := range Policies() {
		cfg := MainMemoryConfig(pol, 2)
		cfg.Workload.Count = 150
		cfg.Workload.ArrivalRate = 10
		assertEquivalent(t, "policy-"+string(pol), cfg, nil)
	}
}

// TestConflictIndexEquivalenceDecisionPoints covers might-set narrowing at
// decision points and re-widening on restart, in both the narrowing and
// the pessimistic-analysis modes.
func TestConflictIndexEquivalenceDecisionPoints(t *testing.T) {
	for _, pessimistic := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			cfg := MainMemoryConfig(CCA, seed)
			cfg.Workload.Count = 200
			cfg.Workload.ArrivalRate = 12
			cfg.Workload.DecisionPoints = true
			cfg.PessimisticAnalysis = pessimistic
			assertEquivalent(t, "decision-points", cfg, nil)
		}
	}
}

// TestConflictIndexEquivalenceFirmAndMP covers departure paths beyond
// commit: firm-deadline drops, and the multiprocessor + multi-disk
// configuration where the IOwait filter also constrains chosen peers.
func TestConflictIndexEquivalenceFirmAndMP(t *testing.T) {
	cfg := MainMemoryConfig(CCA, 3)
	cfg.Workload.Count = 200
	cfg.Workload.ArrivalRate = 14
	cfg.FirmDeadlines = true
	assertEquivalent(t, "firm", cfg, nil)

	cfg = DiskConfig(CCA, 4)
	cfg.Workload.Count = 120
	cfg.NumCPUs = 2
	cfg.NumDisks = 2
	assertEquivalent(t, "mp", cfg, nil)
}

// TestConflictIndexEquivalenceRandomWorkloads replays the adversarial
// random-workload generator (clustered items, reads, criticalities, bursty
// arrivals, near-zero slack) through both engines for a spread of policies.
func TestConflictIndexEquivalenceRandomWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pols := Policies()
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		withIO := seed%2 == 0
		pol := pols[int(seed)%len(pols)]
		if pol == PCP && withIO {
			pol = CCA
		}
		wl := genRandomWorkload(rng, 40, 60, withIO)
		cfg := MainMemoryConfig(pol, seed)
		cfg.Workload = wl.Params
		assertEquivalent(t, "random-"+string(pol), cfg, wl)
	}
}
