package core

// Equivalence suite for the scheduling fast paths: every run must be
// bit-identical — same per-transaction schedule (commit times, restarts,
// secondary dispatches) and same metrics — across the full 2×2 matrix of
// Config.NaiveConflictScan (incremental conflict index vs original full
// scans) × Config.NaiveDispatch (incremental memoised dispatch pass and
// pooled event calendar vs original re-evaluate-and-re-sort pass with
// allocate-per-event calendar). Every variant executes with CheckInvariants
// on, which additionally cross-checks the index against a brute-force
// recomputation and the ranked order against the stored priorities at every
// scheduling point.

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/workload"
)

// txnOutcome is the schedule-visible fate of one transaction.
type txnOutcome struct {
	State     State
	Finish    time.Duration
	Restarts  int
	Secondary bool
}

func runForEquivalence(t *testing.T, cfg Config, wl *workload.Workload) ([]txnOutcome, interface{}) {
	t.Helper()
	var (
		e   *Engine
		err error
	)
	if wl != nil {
		e, err = NewWithWorkload(cfg, wl)
	} else {
		e, err = New(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]txnOutcome, len(e.all))
	for i, tx := range e.all {
		out[i] = txnOutcome{
			State:     tx.state,
			Finish:    time.Duration(tx.finish),
			Restarts:  tx.restarts,
			Secondary: tx.ranAsSecondary,
		}
	}
	return out, res
}

// assertEquivalent runs cfg through the full fast-path matrix — the fully
// incremental engine (reference), naive conflict scans, naive dispatch, and
// both naive — and requires bit-identical schedules and metrics everywhere.
// All four variants run with invariant checking on.
func assertEquivalent(t *testing.T, name string, cfg Config, wl *workload.Workload) {
	t.Helper()
	ref := cfg
	ref.NaiveConflictScan = false
	ref.NaiveDispatch = false
	ref.CheckInvariants = true
	refSched, refRes := runForEquivalence(t, ref, wl)

	variants := []struct {
		label          string
		scan, dispatch bool
	}{
		{"naive-scan", true, false},
		{"naive-dispatch", false, true},
		{"naive-both", true, true},
	}
	for _, v := range variants {
		c := cfg
		c.NaiveConflictScan = v.scan
		c.NaiveDispatch = v.dispatch
		c.CheckInvariants = true
		sched, res := runForEquivalence(t, c, wl)
		if !reflect.DeepEqual(refSched, sched) {
			for i := range refSched {
				if refSched[i] != sched[i] {
					t.Errorf("%s: T%d diverges: incremental %+v, %s %+v", name, i, refSched[i], v.label, sched[i])
				}
			}
			t.Fatalf("%s: schedules diverge between incremental and %s engines", name, v.label)
		}
		if !reflect.DeepEqual(refRes, res) {
			t.Fatalf("%s: metrics diverge:\nincremental: %+v\n%s: %+v", name, refRes, v.label, res)
		}
	}
}

// TestConflictIndexEquivalenceGenerated covers the paper's generated
// workloads: main-memory and disk base configurations under CCA at several
// arrival rates and seeds (the paths that exercise PenaltyOfConflict and
// the IOwait-schedule filter continuously).
func TestConflictIndexEquivalenceGenerated(t *testing.T) {
	for _, rate := range []float64{5, 10, 15} {
		for seed := int64(1); seed <= 3; seed++ {
			cfg := MainMemoryConfig(CCA, seed)
			cfg.Workload.Count = 250
			cfg.Workload.ArrivalRate = rate
			assertEquivalent(t, "mm-cca", cfg, nil)
		}
	}
	for seed := int64(1); seed <= 3; seed++ {
		cfg := DiskConfig(CCA, seed)
		cfg.Workload.Count = 120
		assertEquivalent(t, "disk-cca", cfg, nil)
	}
}

// TestConflictIndexEquivalenceAllPolicies runs every policy on the base
// workload: the index is maintained engine-wide (the P-list statistic uses
// it for every policy), so every policy must stay bit-identical too.
func TestConflictIndexEquivalenceAllPolicies(t *testing.T) {
	for _, pol := range Policies() {
		cfg := MainMemoryConfig(pol, 2)
		cfg.Workload.Count = 150
		cfg.Workload.ArrivalRate = 10
		assertEquivalent(t, "policy-"+string(pol), cfg, nil)
	}
}

// TestConflictIndexEquivalenceDecisionPoints covers might-set narrowing at
// decision points and re-widening on restart, in both the narrowing and
// the pessimistic-analysis modes.
func TestConflictIndexEquivalenceDecisionPoints(t *testing.T) {
	for _, pessimistic := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			cfg := MainMemoryConfig(CCA, seed)
			cfg.Workload.Count = 200
			cfg.Workload.ArrivalRate = 12
			cfg.Workload.DecisionPoints = true
			cfg.PessimisticAnalysis = pessimistic
			assertEquivalent(t, "decision-points", cfg, nil)
		}
	}
}

// TestConflictIndexEquivalenceFirmAndMP covers departure paths beyond
// commit: firm-deadline drops, and the multiprocessor + multi-disk
// configuration where the IOwait filter also constrains chosen peers.
func TestConflictIndexEquivalenceFirmAndMP(t *testing.T) {
	cfg := MainMemoryConfig(CCA, 3)
	cfg.Workload.Count = 200
	cfg.Workload.ArrivalRate = 14
	cfg.FirmDeadlines = true
	assertEquivalent(t, "firm", cfg, nil)

	cfg = DiskConfig(CCA, 4)
	cfg.Workload.Count = 120
	cfg.NumCPUs = 2
	cfg.NumDisks = 2
	assertEquivalent(t, "mp", cfg, nil)
}

// TestConflictIndexEquivalenceRandomWorkloads replays the adversarial
// random-workload generator (clustered items, reads, criticalities, bursty
// arrivals, near-zero slack) through both engines for a spread of policies.
func TestConflictIndexEquivalenceRandomWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pols := Policies()
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		withIO := seed%2 == 0
		pol := pols[int(seed)%len(pols)]
		if pol == PCP && withIO {
			pol = CCA
		}
		wl := genRandomWorkload(rng, 40, 60, withIO)
		cfg := MainMemoryConfig(pol, seed)
		cfg.Workload = wl.Params
		assertEquivalent(t, "random-"+string(pol), cfg, wl)
	}
}
