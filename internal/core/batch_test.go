package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/txn"
)

// batchCollect builds a Submission whose outcome lands on a buffered
// channel (the Done contract: never block the driver).
func batchCollect(req ServiceRequest) (Submission, chan ServiceOutcome, chan error) {
	oc := make(chan ServiceOutcome, 1)
	ec := make(chan error, 1)
	return Submission{
		Req: req,
		Done: func(o ServiceOutcome, err error) {
			oc <- o
			ec <- err
		},
	}, oc, ec
}

// TestSubmitBatchCommits injects a batch in one driver call and checks
// every entry reaches a terminal outcome, including a validation failure
// answered without touching the engine.
func TestSubmitBatchCommits(t *testing.T) {
	s, stop := startService(t, MainMemoryConfig(CCA, 3), ServiceOptions{})
	defer stop()

	const n = 16
	subs := make([]Submission, 0, n+1)
	ocs := make([]chan ServiceOutcome, 0, n)
	for i := 0; i < n; i++ {
		sub, oc, _ := batchCollect(simpleReq(txn.Item(i), txn.Item(i+14)))
		subs = append(subs, sub)
		ocs = append(ocs, oc)
	}
	bad, _, badErr := batchCollect(ServiceRequest{Compute: time.Millisecond, Deadline: time.Second})
	subs = append(subs, bad)

	handles := s.SubmitBatch(subs)
	if len(handles) != n+1 {
		t.Fatalf("got %d handles, want %d", len(handles), n+1)
	}
	select {
	case err := <-badErr:
		if err == nil {
			t.Fatal("empty-items submission did not fail validation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("validation failure never reported")
	}
	for i, oc := range ocs {
		select {
		case o := <-oc:
			if o.State != StateCommitted {
				t.Fatalf("entry %d: state %v, want committed", i, o.State)
			}
			if o.Response <= 0 || o.Finish < o.Arrival {
				t.Fatalf("entry %d: incoherent timings %+v", i, o)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("entry %d never finished", i)
		}
	}
}

// TestSubmitBatchCancel wounds one batched submission via its handle and
// checks it is dropped while its batch-mates commit.
func TestSubmitBatchCancel(t *testing.T) {
	s, stop := startService(t, MainMemoryConfig(CCA, 4), ServiceOptions{})
	defer stop()

	// A transaction too long to ever finish in the test window, and a
	// short one that must be unaffected by the wound.
	long, longOC, _ := batchCollect(ServiceRequest{
		Items:    []txn.Item{1},
		Compute:  time.Hour,
		Deadline: 10 * time.Hour,
	})
	short, shortOC, _ := batchCollect(simpleReq(2))
	handles := s.SubmitBatch([]Submission{long, short})

	select {
	case o := <-shortOC:
		if o.State != StateCommitted {
			t.Fatalf("short: state %v, want committed", o.State)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("short entry never finished")
	}
	handles[0].Cancel()
	select {
	case o := <-longOC:
		if o.State != StateDropped {
			t.Fatalf("cancelled: state %v, want dropped", o.State)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled entry never reached a terminal state")
	}
	// Cancel is idempotent, including after the terminal state.
	handles[0].Cancel()
	SubmitHandle{}.Cancel() // zero handle is a no-op
}

// TestSubmitBatchDraining checks the whole-batch refusal path.
func TestSubmitBatchDraining(t *testing.T) {
	s, stop := startService(t, MainMemoryConfig(CCA, 5), ServiceOptions{})
	defer stop()
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	sub, _, ec := batchCollect(simpleReq(1))
	s.SubmitBatch([]Submission{sub})
	select {
	case err := <-ec:
		if !errors.Is(err, ErrDraining) {
			t.Fatalf("err = %v, want ErrDraining", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("draining batch never answered")
	}
}
