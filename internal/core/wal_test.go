package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/txn"
	"repro/internal/wal"
)

// TestWALHookDisabledPassthrough proves the WAL-off submit path costs
// nothing: LogSubmit is (0, nil) without touching the request, and
// WrapDone hands back the very callback it was given — the same
// function value, no wrapper allocation, no indirection.
func TestWALHookDisabledPassthrough(t *testing.T) {
	var h WALHook
	if h.Enabled() {
		t.Fatal("zero WALHook reports enabled")
	}
	seq, err := h.LogSubmit(&ServiceRequest{Items: []txn.Item{1}})
	if seq != 0 || err != nil {
		t.Fatalf("disabled LogSubmit = (%d, %v), want (0, nil)", seq, err)
	}
	called := false
	done := func(ServiceOutcome, error) { called = true }
	got := h.WrapDone(0, false, done)
	if reflect.ValueOf(got).Pointer() != reflect.ValueOf(done).Pointer() {
		t.Fatal("disabled WrapDone did not return the callback unchanged")
	}
	got(ServiceOutcome{}, nil)
	if !called {
		t.Fatal("returned callback is not the original")
	}
}

// TestWALHookSeqZeroPassthrough: even with a live logger, a submission
// whose submit record was never appended (seq 0) must not gain an
// outcome record — WrapDone is the identity there too.
func TestWALHookSeqZeroPassthrough(t *testing.T) {
	log, _, err := wal.Open(wal.Options{FS: wal.NewMemFS()})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	h := WALHook{Log: log}
	if !h.Enabled() {
		t.Fatal("hook with logger reports disabled")
	}
	done := func(ServiceOutcome, error) {}
	if got := h.WrapDone(0, false, done); reflect.ValueOf(got).Pointer() != reflect.ValueOf(done).Pointer() {
		t.Fatal("seq-0 WrapDone did not return the callback unchanged")
	}
}

// TestRequestFromWALRoundTrip: LogSubmit's record and RequestFromWAL
// are inverses, so a replayed submission is byte-for-byte the request
// the client originally sent.
func TestRequestFromWALRoundTrip(t *testing.T) {
	memfs := wal.NewMemFS()
	log, _, err := wal.Open(wal.Options{FS: memfs})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	h := WALHook{Log: log}
	req := ServiceRequest{
		Items:       []txn.Item{4, 9, 2},
		Reads:       []bool{true, false, true},
		NeedsIO:     []bool{false, true, false},
		Compute:     3 * time.Millisecond,
		Deadline:    250 * time.Millisecond,
		Criticality: 2,
		Class:       1,
	}
	seq, err := h.LogSubmit(&req)
	if err != nil || seq == 0 {
		t.Fatalf("LogSubmit = (%d, %v)", seq, err)
	}
	if err := log.Sync(); err != nil {
		t.Fatal(err)
	}
	var got ServiceRequest
	found := false
	if _, err := wal.Scan(memfs, func(hd wal.Header, sub *wal.SubmitRecord, _ *wal.OutcomeRecord) error {
		if hd.Type == wal.RecSubmit && sub.Seq == seq {
			got = RequestFromWAL(sub)
			found = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatalf("seq %d not found in log", seq)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, req)
	}
}
