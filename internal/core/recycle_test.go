package core

// Regression tests for the ID-recycling / stable-ID latch: the wall-clock
// service reuses retired transaction IDs to keep its tables bounded, but
// the oracle's theorems (and a trace recorder's event stream) key state by
// ID. The latch has two halves: attaching an ID-keyed consumer pins IDs
// for the engine's lifetime, and attaching one after an ID was already
// reused fails fast instead of silently conflating transactions.

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/workload"
)

// serviceEngine builds an engine the way NewService does (no pre-generated
// workload) but driven in virtual time, so the recycle flow is exercised
// deterministically without a Realtime driver.
func serviceEngine(t *testing.T) *Engine {
	t.Helper()
	cfg := MainMemoryConfig(CCA, 1)
	e, err := NewShardEngine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.StartRun()
	return e
}

// submitAndFinish runs one submission to its terminal state and retires it,
// mirroring Service.Submit's done callback.
func submitAndFinish(t *testing.T, e *Engine, item int) int {
	t.Helper()
	now := time.Duration(e.sim.Now())
	spec := &workload.Spec{
		Items:    []txn.Item{txn.Item(item)},
		Compute:  time.Millisecond,
		Arrival:  now,
		Deadline: now + 50*time.Millisecond,
	}
	tp := e.SubmitSpec(spec, func(tx *Txn) { e.retireServiceTxn(tx) })
	id := tp.ID()
	if err := e.StepTo(e.sim.Now() + sim.Time(100*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if tp.State() != StateCommitted {
		t.Fatalf("submission T%d ended %v, want committed", id, tp.State())
	}
	return id
}

func TestEnableOracleFailsFastAfterRecycle(t *testing.T) {
	e := serviceEngine(t)
	first := submitAndFinish(t, e, 3)
	second := submitAndFinish(t, e, 7)
	if first != second {
		t.Fatalf("expected ID reuse (got %d then %d): recycle path not exercised", first, second)
	}
	if !e.idRecycled {
		t.Fatal("idRecycled not latched after reuse")
	}
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("EnableOracle after recycling did not fail fast")
		}
		if !strings.Contains(p.(string), "recycled") {
			t.Fatalf("unexpected panic: %v", p)
		}
	}()
	e.EnableOracle()
}

func TestSetRecorderFailsFastAfterRecycle(t *testing.T) {
	e := serviceEngine(t)
	submitAndFinish(t, e, 3)
	submitAndFinish(t, e, 7)
	defer func() {
		if recover() == nil {
			t.Fatal("SetRecorder after recycling did not fail fast")
		}
	}()
	e.SetRecorder(&trace.Buffer{Cap: 4})
}

// TestOracleLatchesRecyclingOff: enable the oracle first, then submit —
// IDs must never be reused, and detaching a recorder later must not
// re-open recycling (the latch outlives the consumer).
func TestOracleLatchesRecyclingOff(t *testing.T) {
	e := serviceEngine(t)
	e.EnableOracle()
	a := submitAndFinish(t, e, 3)
	b := submitAndFinish(t, e, 7)
	if a == b {
		t.Fatalf("IDs recycled (both %d) despite the oracle", a)
	}
	if len(e.freeIDs) != 0 {
		t.Fatalf("retired IDs queued for reuse despite the oracle: %v", e.freeIDs)
	}
}

func TestRecorderDetachKeepsIDsPinned(t *testing.T) {
	e := serviceEngine(t)
	e.SetRecorder(&trace.Buffer{Cap: 64})
	a := submitAndFinish(t, e, 3)
	e.SetRecorder(nil) // detach: the latch must survive
	b := submitAndFinish(t, e, 7)
	if a == b {
		t.Fatalf("IDs recycled (both %d) after the recorder detached", a)
	}
	if !e.idsPinned {
		t.Fatal("idsPinned cleared by SetRecorder(nil)")
	}
}
