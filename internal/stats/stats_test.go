package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamReproducible(t *testing.T) {
	s1 := NewSource(42).Stream("arrivals")
	s2 := NewSource(42).Stream("arrivals")
	for i := 0; i < 100; i++ {
		a, b := s1.Float64(), s2.Float64()
		if a != b {
			t.Fatalf("draw %d: %v != %v (same seed+name must match)", i, a, b)
		}
	}
}

func TestStreamsIndependentByName(t *testing.T) {
	src := NewSource(42)
	a := src.Stream("a")
	b := src.Stream("b")
	same := 0
	for i := 0; i < 50; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 'a' and 'b' matched on %d/50 draws; expected independence", same)
	}
}

func TestStreamsDifferBySeed(t *testing.T) {
	a := NewSource(1).Stream("x")
	b := NewSource(2).Stream("x")
	if a.Float64() == b.Float64() && a.Float64() == b.Float64() {
		t.Fatal("different seeds produced identical draws")
	}
}

func TestSourceSeedAccessor(t *testing.T) {
	if got := NewSource(99).Seed(); got != 99 {
		t.Fatalf("Seed() = %d, want 99", got)
	}
}

func TestUniformRange(t *testing.T) {
	st := NewStream(7)
	for i := 0; i < 1000; i++ {
		v := st.Uniform(0.2, 8.0)
		if v < 0.2 || v >= 8.0 {
			t.Fatalf("Uniform(0.2, 8.0) = %v out of range", v)
		}
	}
}

func TestUniformInvertedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted bounds did not panic")
		}
	}()
	NewStream(1).Uniform(2, 1)
}

func TestExponentialMean(t *testing.T) {
	st := NewStream(11)
	var acc Accumulator
	for i := 0; i < 200000; i++ {
		acc.Add(st.Exponential(100))
	}
	if math.Abs(acc.Mean()-100) > 2 {
		t.Fatalf("Exponential mean = %v, want ~100", acc.Mean())
	}
}

func TestExponentialNonPositiveMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive mean did not panic")
		}
	}()
	NewStream(1).Exponential(0)
}

func TestNormalMoments(t *testing.T) {
	st := NewStream(13)
	var acc Accumulator
	for i := 0; i < 200000; i++ {
		acc.Add(st.Normal(20, 10))
	}
	if math.Abs(acc.Mean()-20) > 0.3 {
		t.Fatalf("Normal mean = %v, want ~20", acc.Mean())
	}
	if math.Abs(acc.StdDev()-10) > 0.3 {
		t.Fatalf("Normal std = %v, want ~10", acc.StdDev())
	}
}

func TestNormalNegativeStdPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative std did not panic")
		}
	}()
	NewStream(1).Normal(0, -1)
}

func TestNormalIntClamped(t *testing.T) {
	st := NewStream(17)
	for i := 0; i < 5000; i++ {
		v := st.NormalIntClamped(20, 10, 1, 30)
		if v < 1 || v > 30 {
			t.Fatalf("NormalIntClamped out of [1,30]: %d", v)
		}
	}
}

func TestNormalIntClampedInvertedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted clamp bounds did not panic")
		}
	}()
	NewStream(1).NormalIntClamped(0, 1, 5, 4)
}

func TestBernoulliProbability(t *testing.T) {
	st := NewStream(19)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if st.Bernoulli(0.1) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.1) > 0.01 {
		t.Fatalf("Bernoulli(0.1) hit rate = %v", p)
	}
}

func TestBernoulliEdges(t *testing.T) {
	st := NewStream(23)
	for i := 0; i < 100; i++ {
		if st.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !st.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p>1 did not panic")
		}
	}()
	NewStream(1).Bernoulli(1.5)
}

func TestSampleWithoutReplacementDistinct(t *testing.T) {
	st := NewStream(29)
	for trial := 0; trial < 200; trial++ {
		got := st.SampleWithoutReplacement(30, 20)
		if len(got) != 20 {
			t.Fatalf("len = %d, want 20", len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= 30 {
				t.Fatalf("value %d out of [0,30)", v)
			}
			if seen[v] {
				t.Fatalf("duplicate value %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementFull(t *testing.T) {
	st := NewStream(31)
	got := st.SampleWithoutReplacement(5, 5)
	seen := map[int]bool{}
	for _, v := range got {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("full sample not a permutation: %v", got)
	}
}

func TestSampleWithoutReplacementTooManyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k > n did not panic")
		}
	}()
	NewStream(1).SampleWithoutReplacement(3, 4)
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	st := NewStream(37)
	counts := make([]int, 10)
	const trials = 30000
	for i := 0; i < trials; i++ {
		for _, v := range st.SampleWithoutReplacement(10, 3) {
			counts[v]++
		}
	}
	want := float64(trials) * 3 / 10
	for v, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Fatalf("item %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if a.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", a.Mean())
	}
	if math.Abs(a.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", a.Variance(), 32.0/7.0)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", a.Min(), a.Max())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.CI95() != 0 || a.StdErr() != 0 {
		t.Fatal("empty accumulator not all-zero")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Mean() != 3.5 || a.Variance() != 0 || a.CI95() != 0 {
		t.Fatal("single-observation accumulator wrong")
	}
}

func TestCI95SmallSample(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{1, 2, 3} {
		a.Add(x)
	}
	// df=2 -> t=4.303; stderr = 1/sqrt(3)
	want := 4.303 / math.Sqrt(3)
	if math.Abs(a.CI95()-want) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v", a.CI95(), want)
	}
}

func TestTCriticalMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 40; df++ {
		v := tCritical95(df)
		if v > prev {
			t.Fatalf("tCritical95 not non-increasing at df=%d: %v > %v", df, v, prev)
		}
		prev = v
	}
	if tCritical95(1000) != 1.96 {
		t.Fatal("large-df critical value should be 1.96")
	}
	if tCritical95(0) != 0 {
		t.Fatal("df=0 should return 0")
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty slice should give 0")
	}
	if Mean([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("Mean wrong")
	}
	if Median([]float64{5, 1, 3}) != 3 {
		t.Fatal("odd Median wrong")
	}
	if Median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Fatal("even Median wrong")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(10, 7); got != 30 {
		t.Fatalf("Improvement(10,7) = %v, want 30", got)
	}
	if got := Improvement(0, 5); got != 0 {
		t.Fatalf("Improvement(0,5) = %v, want 0", got)
	}
	if got := Improvement(4, 6); got != -50 {
		t.Fatalf("Improvement(4,6) = %v, want -50 (regression)", got)
	}
}

// Property: accumulator mean matches direct mean; variance matches two-pass.
func TestQuickAccumulatorMatchesDirect(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var a Accumulator
		for _, x := range clean {
			a.Add(x)
		}
		m := Mean(clean)
		if math.Abs(a.Mean()-m) > 1e-6*(1+math.Abs(m)) {
			return false
		}
		var ss float64
		for _, x := range clean {
			ss += (x - m) * (x - m)
		}
		v := ss / float64(len(clean)-1)
		return math.Abs(a.Variance()-v) <= 1e-6*(1+v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Improvement is antisymmetric around equality and 0 at equality.
func TestQuickImprovementProperties(t *testing.T) {
	f := func(a uint16) bool {
		b := float64(a) + 1 // strictly positive
		return Improvement(b, b) == 0 && Improvement(b, 0) == 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelCI95(t *testing.T) {
	var a Accumulator
	if !math.IsInf(a.RelCI95(), 1) {
		t.Error("n=0: want +Inf")
	}
	a.Add(10)
	if !math.IsInf(a.RelCI95(), 1) {
		t.Error("n=1: want +Inf")
	}
	a.Add(12)
	a.Add(8)
	want := a.CI95() / a.Mean()
	if got := a.RelCI95(); got != want {
		t.Errorf("RelCI95 = %v, want CI95/mean = %v", got, want)
	}
	var z Accumulator
	z.Add(0)
	z.Add(0)
	if z.RelCI95() != 0 {
		t.Errorf("all-zero: RelCI95 = %v, want 0 (estimate is exact)", z.RelCI95())
	}
	var m Accumulator
	m.Add(-1)
	m.Add(1)
	if !math.IsInf(m.RelCI95(), 1) {
		t.Error("zero mean with spread: want +Inf (no relative scale)")
	}
	var n Accumulator
	n.Add(-5)
	n.Add(-7)
	if n.RelCI95() < 0 {
		t.Error("negative mean: relative CI must use |mean|")
	}
}
