package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes running mean and variance (Welford's algorithm),
// min and max of a stream of observations without storing them.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Min returns the smallest observation (0 for an empty accumulator).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 for an empty accumulator).
func (a *Accumulator) Max() float64 { return a.max }

// Variance returns the unbiased sample variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI95 returns the half-width of the 95% confidence interval for the mean,
// using Student's t critical values for small samples.
func (a *Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return tCritical95(a.n-1) * a.StdErr()
}

// RelCI95 returns the CI95 half-width relative to the magnitude of the
// mean — the convergence measure of adaptive-precision sweeps. With fewer
// than two observations no interval exists and the result is +Inf. A zero
// mean yields 0 when every observation was zero (the estimate is exact)
// and +Inf otherwise (no relative scale exists).
func (a *Accumulator) RelCI95() float64 {
	if a.n < 2 {
		return math.Inf(1)
	}
	ci := a.CI95()
	if a.mean == 0 {
		if ci == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return ci / math.Abs(a.mean)
}

// String formats the accumulator as "mean ± ci95 (n=..)".
func (a *Accumulator) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", a.Mean(), a.CI95(), a.N())
}

// tCritical95 returns the two-sided 95% Student's t critical value for the
// given degrees of freedom. Values above 30 degrees use the normal
// approximation 1.96; the table covers the seed counts used in the paper
// (10 and 30 runs).
func tCritical95(df int) float64 {
	table := []float64{
		0, // df = 0 unused
		12.706, 4.303, 3.182, 2.776, 2.571,
		2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131,
		2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060,
		2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs (0 for an empty slice).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Improvement returns the paper's improvement metric
// (baseline - candidate) / baseline * 100, i.e. the percentage by which the
// candidate reduces the baseline's value of a lower-is-better metric. It
// returns 0 when the baseline is 0 (both systems are already perfect).
func Improvement(baseline, candidate float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - candidate) / baseline * 100
}
