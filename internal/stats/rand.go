// Package stats provides the random-variate generation and statistical
// summarisation used by the simulator and the experiment harness.
//
// Random numbers are organised as named streams derived from a single run
// seed, so that (for example) the arrival process and the slack assignment
// consume independent substreams: changing how many variates one stream
// draws never perturbs another. This mirrors common practice in simulation
// packages (and is what makes cross-policy comparisons on "the same"
// workload meaningful).
package stats

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// Source derives independent, reproducible random streams from one seed.
type Source struct {
	seed int64
}

// NewSource returns a stream factory rooted at seed.
func NewSource(seed int64) *Source {
	return &Source{seed: seed}
}

// Seed returns the root seed of the source.
func (s *Source) Seed() int64 { return s.seed }

// Stream returns the substream with the given name. Calling Stream twice
// with the same name yields streams that produce identical sequences.
func (s *Source) Stream(name string) *Stream {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", s.seed, name)
	return &Stream{rng: rand.New(rand.NewSource(int64(h.Sum64())))}
}

// Stream is a single random-variate stream.
type Stream struct {
	rng *rand.Rand
}

// NewStream returns a stand-alone stream with the given seed; most callers
// should derive streams from a Source instead.
func NewStream(seed int64) *Stream {
	return &Stream{rng: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform variate in [0, 1).
func (st *Stream) Float64() float64 { return st.rng.Float64() }

// Intn returns a uniform integer in [0, n).
func (st *Stream) Intn(n int) int { return st.rng.Intn(n) }

// Perm returns a random permutation of [0, n).
func (st *Stream) Perm(n int) []int { return st.rng.Perm(n) }

// Uniform returns a uniform variate in [a, b). It panics if b < a.
func (st *Stream) Uniform(a, b float64) float64 {
	if b < a {
		panic(fmt.Sprintf("stats: Uniform bounds inverted: [%v, %v)", a, b))
	}
	return a + (b-a)*st.rng.Float64()
}

// Exponential returns an exponential variate with the given mean. This is
// the inter-arrival distribution of the paper's Poisson arrival process.
func (st *Stream) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("stats: Exponential mean %v <= 0", mean))
	}
	return st.rng.ExpFloat64() * mean
}

// Normal returns a normal variate with the given mean and standard deviation.
func (st *Stream) Normal(mean, std float64) float64 {
	if std < 0 {
		panic(fmt.Sprintf("stats: Normal std %v < 0", std))
	}
	return st.rng.NormFloat64()*std + mean
}

// NormalIntClamped draws a normal variate, rounds it to the nearest integer
// and clamps it into [min, max]. The paper draws the number of updates per
// transaction type from N(20, 10) and a count must be at least 1 and at most
// the database size, so clamping is the natural truncation.
func (st *Stream) NormalIntClamped(mean, std float64, min, max int) int {
	if min > max {
		panic(fmt.Sprintf("stats: NormalIntClamped bounds inverted: [%d, %d]", min, max))
	}
	v := int(math.Round(st.Normal(mean, std)))
	if v < min {
		v = min
	}
	if v > max {
		v = max
	}
	return v
}

// Bernoulli reports true with probability p.
func (st *Stream) Bernoulli(p float64) bool {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: Bernoulli p %v outside [0,1]", p))
	}
	return st.rng.Float64() < p
}

// SampleWithoutReplacement returns k distinct integers drawn uniformly from
// [0, n). It panics if k > n.
func (st *Stream) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic(fmt.Sprintf("stats: cannot sample %d distinct values from %d", k, n))
	}
	// Partial Fisher-Yates over an index table.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + st.rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = idx[i]
	}
	return out
}
