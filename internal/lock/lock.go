// Package lock implements the strict two-phase-locking lock manager
// underlying every scheduling policy in this repository.
//
// The paper's own analysis allows only exclusive (write) locks; shared
// (read) locks are implemented as well because the paper lists them as
// future work ("shared locks will make the dynamic cost an even more
// important factor"). The manager itself is policy-free: it reports
// conflicts and maintains wait queues, while the scheduling policy decides
// whether a conflicting requester wounds the holders (High Priority / CCA),
// waits (EDF-WP), or waits conditionally (EDF-HP with a higher-priority
// holder). Wait queues are kept in descending requester priority so that a
// release always grants the most urgent compatible waiters first.
//
// The tables are dense slices indexed by item and transaction ID (both are
// dense small integers throughout the repository), not maps: the lock
// manager sits on the engine's per-access hot path, and the slice layout
// makes the common operations — acquire with no conflict, release-all at
// commit — allocation-free. Each item's first holder is stored inline
// (exclusive-lock workloads never have a second), and a transaction's held
// list keeps its capacity across the release/reacquire cycles of restarts.
package lock

import (
	"fmt"
	"sort"

	"repro/internal/txn"
)

// TxnID identifies a transaction instance to the lock manager.
type TxnID int

// Mode is a lock mode.
type Mode int

const (
	// Write is an exclusive lock (the only mode used in the paper).
	Write Mode = iota
	// Read is a shared lock (extension).
	Read
)

// String returns "W" or "R".
func (m Mode) String() string {
	if m == Read {
		return "R"
	}
	return "W"
}

// compatible reports whether two lock modes may be held simultaneously.
func compatible(a, b Mode) bool { return a == Read && b == Read }

// Request is a pending (blocked) lock request.
type Request struct {
	Txn      TxnID
	Item     txn.Item
	Mode     Mode
	Priority float64
}

// holder is one lock holder of an item.
type holder struct {
	txn  TxnID
	mode Mode
}

// entry is the per-item lock state. The first holder lives inline —
// workloads without shared locks never have co-holders, so the exclusive
// hot path touches no per-item heap state at all.
type entry struct {
	first    holder
	hasFirst bool
	extra    []holder // co-holders beyond the first (shared readers)
	waiters  []*Request
}

func (e *entry) holderCount() int {
	n := len(e.extra)
	if e.hasFirst {
		n++
	}
	return n
}

func (e *entry) holderMode(t TxnID) (Mode, bool) {
	if e.hasFirst && e.first.txn == t {
		return e.first.mode, true
	}
	for _, h := range e.extra {
		if h.txn == t {
			return h.mode, true
		}
	}
	return 0, false
}

// setOrAddHolder grants (or upgrades) t's hold on the item.
func (e *entry) setOrAddHolder(t TxnID, m Mode) {
	if e.hasFirst && e.first.txn == t {
		e.first.mode = m
		return
	}
	for i := range e.extra {
		if e.extra[i].txn == t {
			e.extra[i].mode = m
			return
		}
	}
	if !e.hasFirst {
		e.first = holder{txn: t, mode: m}
		e.hasFirst = true
		return
	}
	e.extra = append(e.extra, holder{txn: t, mode: m})
}

func (e *entry) removeHolder(t TxnID) {
	if e.hasFirst && e.first.txn == t {
		if n := len(e.extra); n > 0 {
			e.first = e.extra[n-1]
			e.extra = e.extra[:n-1]
		} else {
			e.hasFirst = false
		}
		return
	}
	for i := range e.extra {
		if e.extra[i].txn == t {
			n := len(e.extra)
			e.extra[i] = e.extra[n-1]
			e.extra = e.extra[:n-1]
			return
		}
	}
}

// hasConflict reports whether any holder other than t is incompatible with
// mode — the allocation-free core of Acquire and grantWaiters.
func (e *entry) hasConflict(t TxnID, mode Mode) bool {
	if e.hasFirst && e.first.txn != t && !compatible(mode, e.first.mode) {
		return true
	}
	for _, h := range e.extra {
		if h.txn != t && !compatible(mode, h.mode) {
			return true
		}
	}
	return false
}

// heldItem is one entry of a transaction's held-lock list.
type heldItem struct {
	item txn.Item
	mode Mode
}

// Manager tracks lock ownership and wait queues for a set of items.
type Manager struct {
	items   []entry      // indexed by item
	held    [][]heldItem // indexed by TxnID; emptied (capacity kept) on release
	waiting []*Request   // indexed by TxnID; nil when not blocked
}

// NewManager returns an empty lock manager; the tables grow on demand.
func NewManager() *Manager { return &Manager{} }

// NewManagerSized returns an empty lock manager with tables pre-sized for
// items in [0, items) and transactions in [0, txns) — one allocation each
// instead of growth doublings.
func NewManagerSized(items, txns int) *Manager {
	return &Manager{
		items:   make([]entry, items),
		held:    make([][]heldItem, txns),
		waiting: make([]*Request, txns),
	}
}

// entry returns the per-item state, growing the table if needed.
func (m *Manager) entry(it txn.Item) *entry {
	if n := int(it) + 1; n > len(m.items) {
		if n < 2*len(m.items) {
			n = 2 * len(m.items)
		}
		grown := make([]entry, n)
		copy(grown, m.items)
		m.items = grown
	}
	return &m.items[int(it)]
}

// peek returns the per-item state without growing, or nil if never touched.
func (m *Manager) peek(it txn.Item) *entry {
	if int(it) < 0 || int(it) >= len(m.items) {
		return nil
	}
	return &m.items[int(it)]
}

// growTxn ensures the per-transaction tables cover t.
func (m *Manager) growTxn(t TxnID) {
	if n := int(t) + 1; n > len(m.held) {
		if n < 2*len(m.held) {
			n = 2 * len(m.held)
		}
		grownHeld := make([][]heldItem, n)
		copy(grownHeld, m.held)
		m.held = grownHeld
		grownWait := make([]*Request, n)
		copy(grownWait, m.waiting)
		m.waiting = grownWait
	}
}

func (m *Manager) heldOf(t TxnID) []heldItem {
	if int(t) < 0 || int(t) >= len(m.held) {
		return nil
	}
	return m.held[t]
}

// heldSetOrAdd records t's hold of item in its held list (or updates the
// mode on upgrade). The first acquisition of a transaction's life allocates
// the list; releases keep the capacity for the next life.
func (m *Manager) heldSetOrAdd(t TxnID, item txn.Item, mode Mode) {
	m.growTxn(t)
	hs := m.held[t]
	for i := range hs {
		if hs[i].item == item {
			hs[i].mode = mode
			return
		}
	}
	if hs == nil {
		hs = make([]heldItem, 0, 32)
	}
	m.held[t] = append(hs, heldItem{item: item, mode: mode})
}

// Holds reports whether t holds a lock on item (in any mode).
func (m *Manager) Holds(t TxnID, item txn.Item) bool {
	for _, h := range m.heldOf(t) {
		if h.item == item {
			return true
		}
	}
	return false
}

// HeldCount returns the number of items t holds locks on, in O(1).
func (m *Manager) HeldCount(t TxnID) int { return len(m.heldOf(t)) }

// HeldBy returns the items locked by t, in ascending order.
func (m *Manager) HeldBy(t TxnID) []txn.Item {
	hs := m.heldOf(t)
	out := make([]txn.Item, 0, len(hs))
	for _, h := range hs {
		out = append(out, h.item)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Holders returns the transactions holding a lock on item, in ascending ID
// order (deterministic for the simulator).
func (m *Manager) Holders(item txn.Item) []TxnID {
	e := m.peek(item)
	if e == nil || e.holderCount() == 0 {
		return nil
	}
	out := make([]TxnID, 0, e.holderCount())
	if e.hasFirst {
		out = append(out, e.first.txn)
	}
	for _, h := range e.extra {
		out = append(out, h.txn)
	}
	sortTxnIDs(out)
	return out
}

// Conflicting returns the holders of item whose mode is incompatible with
// acquiring it in the given mode by t (excluding t itself), ascending.
func (m *Manager) Conflicting(t TxnID, item txn.Item, mode Mode) []TxnID {
	e := m.peek(item)
	if e == nil {
		return nil
	}
	var out []TxnID
	if e.hasFirst && e.first.txn != t && !compatible(mode, e.first.mode) {
		out = append(out, e.first.txn)
	}
	for _, h := range e.extra {
		if h.txn != t && !compatible(mode, h.mode) {
			out = append(out, h.txn)
		}
	}
	sortTxnIDs(out)
	return out
}

// sortTxnIDs sorts ascending without reflection or closures (holder sets
// are tiny — at most the co-readers of one item).
func sortTxnIDs(ids []TxnID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// Acquire grants the lock to t if no incompatible holder exists, upgrading
// Read->Write when t is the sole holder. It reports whether the lock was
// granted; when it returns false the caller must decide between Wound
// (release the holders) and Wait (Enqueue). Acquire never enqueues.
func (m *Manager) Acquire(t TxnID, item txn.Item, mode Mode) bool {
	if m.Waiting(t) != nil {
		panic(fmt.Sprintf("lock: txn %d acquiring %v while blocked on another item", t, item))
	}
	e := m.entry(item)
	if cur, ok := e.holderMode(t); ok {
		if cur == mode || cur == Write {
			return true // re-entrant or already stronger
		}
		// Read -> Write upgrade: allowed only as sole holder.
		if e.holderCount() == 1 {
			e.setOrAddHolder(t, Write)
			m.heldSetOrAdd(t, item, Write)
			return true
		}
		return false
	}
	if e.hasConflict(t, mode) {
		return false
	}
	// Note: a reader IS allowed to join current readers even when a writer
	// is queued. The wait queue is priority-ordered, not FIFO, so the
	// FIFO-fairness "no bypass" rule does not apply — and enforcing it
	// here once produced requests that were blocked while waiting on
	// nobody, invisible to the waits-for graph (an undetectable stall).
	// Writer starvation is bounded by the priority queue: the writer is
	// granted at the first release at which it outranks the readers.
	e.setOrAddHolder(t, mode)
	m.heldSetOrAdd(t, item, mode)
	return true
}

// Enqueue blocks t on item: the request joins the item's wait queue ordered
// by descending priority (FIFO among equal priorities). A transaction can
// wait for at most one item at a time.
func (m *Manager) Enqueue(r *Request) {
	if m.Waiting(r.Txn) != nil {
		panic(fmt.Sprintf("lock: txn %d enqueued twice", r.Txn))
	}
	e := m.entry(r.Item)
	pos := len(e.waiters)
	for i, w := range e.waiters {
		if r.Priority > w.Priority {
			pos = i
			break
		}
	}
	e.waiters = append(e.waiters, nil)
	copy(e.waiters[pos+1:], e.waiters[pos:])
	e.waiters[pos] = r
	m.growTxn(r.Txn)
	m.waiting[r.Txn] = r
}

// Waiting returns the request t is blocked on, or nil.
func (m *Manager) Waiting(t TxnID) *Request {
	if int(t) < 0 || int(t) >= len(m.waiting) {
		return nil
	}
	return m.waiting[t]
}

// Waiters returns the queued requests for item in grant order.
func (m *Manager) Waiters(item txn.Item) []*Request {
	e := m.peek(item)
	if e == nil {
		return nil
	}
	return append([]*Request(nil), e.waiters...)
}

// CancelWait removes t from whatever wait queue it is in (used when a
// blocked transaction is wounded) and reports whether t was waiting.
// Removing a queued request can unblock the requests behind it — e.g. a
// reader queued behind a now-cancelled writer on an item held only by
// readers — so the grant pass re-runs and the newly granted requests are
// returned; the caller must wake those transactions.
func (m *Manager) CancelWait(t TxnID) (granted []*Request, wasWaiting bool) {
	r := m.Waiting(t)
	if r == nil {
		return nil, false
	}
	m.waiting[t] = nil
	e := m.entry(r.Item)
	for i, w := range e.waiters {
		if w == r {
			e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
			break
		}
	}
	return m.grantWaiters(r.Item), true
}

// ReleaseAll releases every lock held by t (commit or abort under strict
// 2PL) and grants queued requests that become compatible, front-to-back in
// ascending item order. It returns the newly granted requests; the caller
// is responsible for waking those transactions. The common case — no
// waiters anywhere — allocates nothing.
func (m *Manager) ReleaseAll(t TxnID) []*Request {
	hs := m.heldOf(t)
	sortHeld(hs)
	for _, h := range hs {
		m.items[h.item].removeHolder(t)
	}
	var granted []*Request
	for _, h := range hs {
		granted = append(granted, m.grantWaiters(h.item)...)
	}
	if hs != nil {
		m.held[t] = hs[:0]
	}
	return granted
}

// sortHeld orders a held list by ascending item (items are unique per
// transaction) without reflection or closures.
func sortHeld(hs []heldItem) {
	for i := 1; i < len(hs); i++ {
		for j := i; j > 0 && hs[j].item < hs[j-1].item; j-- {
			hs[j], hs[j-1] = hs[j-1], hs[j]
		}
	}
}

// grantWaiters grants the head of the queue (and, for readers, every
// following compatible reader) if the item's current holders allow it.
func (m *Manager) grantWaiters(item txn.Item) []*Request {
	e := m.entry(item)
	var granted []*Request
	for len(e.waiters) > 0 {
		r := e.waiters[0]
		if e.hasConflict(r.Txn, r.Mode) {
			break
		}
		e.waiters = e.waiters[1:]
		m.waiting[r.Txn] = nil
		e.setOrAddHolder(r.Txn, r.Mode)
		m.heldSetOrAdd(r.Txn, item, r.Mode)
		granted = append(granted, r)
		if r.Mode == Write {
			break
		}
	}
	return granted
}

// WaitsFor returns the transactions t is directly waiting on: the
// incompatible holders of the item t is blocked on, plus the transactions
// whose requests are queued ahead of t's (grants are strictly in queue
// order, so a request cannot be granted before everything ahead of it).
// The queue edges are a conservative over-approximation — two adjacent
// readers would in fact be granted together — which can at worst abort a
// deadlock victim slightly early, never miss a real cycle. The result is
// deduplicated and in ascending order.
func (m *Manager) WaitsFor(t TxnID) []TxnID {
	r := m.Waiting(t)
	if r == nil {
		return nil
	}
	seen := make(map[TxnID]bool)
	for _, h := range m.Conflicting(t, r.Item, r.Mode) {
		seen[h] = true
	}
	for _, w := range m.entry(r.Item).waiters {
		if w == r {
			break
		}
		if w.Txn != t {
			seen[w.Txn] = true
		}
	}
	out := make([]TxnID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DetectCycle searches the waits-for graph for a cycle reachable from t and
// returns the transactions on the cycle (empty if none). The waiting
// baselines (EDF-WP) use this for deadlock resolution; CCA never waits and
// therefore can never deadlock.
func (m *Manager) DetectCycle(t TxnID) []TxnID {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[TxnID]int)
	var stack []TxnID
	var cycle []TxnID
	var dfs func(v TxnID) bool
	dfs = func(v TxnID) bool {
		color[v] = grey
		stack = append(stack, v)
		for _, w := range m.WaitsFor(v) {
			switch color[w] {
			case grey:
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == w {
						break
					}
				}
				return true
			case white:
				if dfs(w) {
					return true
				}
			}
		}
		color[v] = black
		stack = stack[:len(stack)-1]
		return false
	}
	if dfs(t) {
		return cycle
	}
	return nil
}

// LockedItems returns how many items currently have at least one holder.
func (m *Manager) LockedItems() int {
	n := 0
	for i := range m.items {
		if m.items[i].holderCount() > 0 {
			n++
		}
	}
	return n
}

// CheckInvariants panics if the lock table violates its structural
// invariants (at most one writer per item, writer excludes readers,
// held/items tables consistent, waiters sorted). Engine integration tests
// call this at every scheduling point.
func (m *Manager) CheckInvariants() {
	for i := range m.items {
		e := &m.items[i]
		it := txn.Item(i)
		writers := 0
		checkHolder := func(h holder) {
			if h.mode == Write {
				writers++
			}
			if !m.Holds(h.txn, it) {
				panic(fmt.Sprintf("lock: held table missing txn %d item %d", h.txn, it))
			}
		}
		if e.hasFirst {
			checkHolder(e.first)
		}
		for _, h := range e.extra {
			checkHolder(h)
		}
		if writers > 1 {
			panic(fmt.Sprintf("lock: item %d has %d writers", it, writers))
		}
		if writers == 1 && e.holderCount() > 1 {
			panic(fmt.Sprintf("lock: item %d has a writer and %d holders", it, e.holderCount()))
		}
		for w := 1; w < len(e.waiters); w++ {
			if e.waiters[w-1].Priority < e.waiters[w].Priority {
				panic(fmt.Sprintf("lock: item %d wait queue out of order", it))
			}
		}
	}
	for t, items := range m.held {
		for _, h := range items {
			if _, ok := m.items[h.item].holderMode(TxnID(t)); !ok {
				panic(fmt.Sprintf("lock: held table has stale txn %d item %d", t, h.item))
			}
		}
	}
}
