// Package lock implements the strict two-phase-locking lock manager
// underlying every scheduling policy in this repository.
//
// The paper's own analysis allows only exclusive (write) locks; shared
// (read) locks are implemented as well because the paper lists them as
// future work ("shared locks will make the dynamic cost an even more
// important factor"). The manager itself is policy-free: it reports
// conflicts and maintains wait queues, while the scheduling policy decides
// whether a conflicting requester wounds the holders (High Priority / CCA),
// waits (EDF-WP), or waits conditionally (EDF-HP with a higher-priority
// holder). Wait queues are kept in descending requester priority so that a
// release always grants the most urgent compatible waiters first.
package lock

import (
	"fmt"
	"sort"

	"repro/internal/txn"
)

// TxnID identifies a transaction instance to the lock manager.
type TxnID int

// Mode is a lock mode.
type Mode int

const (
	// Write is an exclusive lock (the only mode used in the paper).
	Write Mode = iota
	// Read is a shared lock (extension).
	Read
)

// String returns "W" or "R".
func (m Mode) String() string {
	if m == Read {
		return "R"
	}
	return "W"
}

// compatible reports whether two lock modes may be held simultaneously.
func compatible(a, b Mode) bool { return a == Read && b == Read }

// Request is a pending (blocked) lock request.
type Request struct {
	Txn      TxnID
	Item     txn.Item
	Mode     Mode
	Priority float64
}

type entry struct {
	holders map[TxnID]Mode
	waiters []*Request
}

// Manager tracks lock ownership and wait queues for a set of items.
type Manager struct {
	items   map[txn.Item]*entry
	held    map[TxnID]map[txn.Item]Mode
	waiting map[TxnID]*Request
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	return &Manager{
		items:   make(map[txn.Item]*entry),
		held:    make(map[TxnID]map[txn.Item]Mode),
		waiting: make(map[TxnID]*Request),
	}
}

func (m *Manager) entry(it txn.Item) *entry {
	e := m.items[it]
	if e == nil {
		e = &entry{holders: make(map[TxnID]Mode)}
		m.items[it] = e
	}
	return e
}

// Holds reports whether t holds a lock on item (in any mode).
func (m *Manager) Holds(t TxnID, item txn.Item) bool {
	_, ok := m.held[t][item]
	return ok
}

// HeldCount returns the number of items t holds locks on, in O(1).
func (m *Manager) HeldCount(t TxnID) int { return len(m.held[t]) }

// HeldBy returns the items locked by t, in ascending order.
func (m *Manager) HeldBy(t TxnID) []txn.Item {
	out := make([]txn.Item, 0, len(m.held[t]))
	for it := range m.held[t] {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Holders returns the transactions holding a lock on item, in ascending ID
// order (deterministic for the simulator).
func (m *Manager) Holders(item txn.Item) []TxnID {
	e := m.items[item]
	if e == nil {
		return nil
	}
	out := make([]TxnID, 0, len(e.holders))
	for t := range e.holders {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Conflicting returns the holders of item whose mode is incompatible with
// acquiring it in the given mode by t (excluding t itself).
func (m *Manager) Conflicting(t TxnID, item txn.Item, mode Mode) []TxnID {
	e := m.items[item]
	if e == nil {
		return nil
	}
	var out []TxnID
	for h, hm := range e.holders {
		if h != t && !compatible(mode, hm) {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Acquire grants the lock to t if no incompatible holder exists, upgrading
// Read->Write when t is the sole holder. It reports whether the lock was
// granted; when it returns false the caller must decide between Wound
// (release the holders) and Wait (Enqueue). Acquire never enqueues.
func (m *Manager) Acquire(t TxnID, item txn.Item, mode Mode) bool {
	if m.waiting[t] != nil {
		panic(fmt.Sprintf("lock: txn %d acquiring %v while blocked on another item", t, item))
	}
	e := m.entry(item)
	if cur, ok := e.holders[t]; ok {
		if cur == mode || cur == Write {
			return true // re-entrant or already stronger
		}
		// Read -> Write upgrade: allowed only as sole holder.
		if len(e.holders) == 1 {
			e.holders[t] = Write
			m.held[t][item] = Write
			return true
		}
		return false
	}
	if len(m.Conflicting(t, item, mode)) > 0 {
		return false
	}
	// Note: a reader IS allowed to join current readers even when a writer
	// is queued. The wait queue is priority-ordered, not FIFO, so the
	// FIFO-fairness "no bypass" rule does not apply — and enforcing it
	// here once produced requests that were blocked while waiting on
	// nobody, invisible to the waits-for graph (an undetectable stall).
	// Writer starvation is bounded by the priority queue: the writer is
	// granted at the first release at which it outranks the readers.
	e.holders[t] = mode
	if m.held[t] == nil {
		m.held[t] = make(map[txn.Item]Mode)
	}
	m.held[t][item] = mode
	return true
}

// Enqueue blocks t on item: the request joins the item's wait queue ordered
// by descending priority (FIFO among equal priorities). A transaction can
// wait for at most one item at a time.
func (m *Manager) Enqueue(r *Request) {
	if m.waiting[r.Txn] != nil {
		panic(fmt.Sprintf("lock: txn %d enqueued twice", r.Txn))
	}
	e := m.entry(r.Item)
	pos := len(e.waiters)
	for i, w := range e.waiters {
		if r.Priority > w.Priority {
			pos = i
			break
		}
	}
	e.waiters = append(e.waiters, nil)
	copy(e.waiters[pos+1:], e.waiters[pos:])
	e.waiters[pos] = r
	m.waiting[r.Txn] = r
}

// Waiting returns the request t is blocked on, or nil.
func (m *Manager) Waiting(t TxnID) *Request { return m.waiting[t] }

// Waiters returns the queued requests for item in grant order.
func (m *Manager) Waiters(item txn.Item) []*Request {
	e := m.items[item]
	if e == nil {
		return nil
	}
	return append([]*Request(nil), e.waiters...)
}

// CancelWait removes t from whatever wait queue it is in (used when a
// blocked transaction is wounded) and reports whether t was waiting.
// Removing a queued request can unblock the requests behind it — e.g. a
// reader queued behind a now-cancelled writer on an item held only by
// readers — so the grant pass re-runs and the newly granted requests are
// returned; the caller must wake those transactions.
func (m *Manager) CancelWait(t TxnID) (granted []*Request, wasWaiting bool) {
	r := m.waiting[t]
	if r == nil {
		return nil, false
	}
	delete(m.waiting, t)
	e := m.items[r.Item]
	for i, w := range e.waiters {
		if w == r {
			e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
			break
		}
	}
	return m.grantWaiters(r.Item), true
}

// ReleaseAll releases every lock held by t (commit or abort under strict
// 2PL) and grants queued requests that become compatible, front-to-back.
// It returns the newly granted requests; the caller is responsible for
// waking those transactions.
func (m *Manager) ReleaseAll(t TxnID) []*Request {
	items := m.HeldBy(t)
	for _, it := range items {
		delete(m.items[it].holders, t)
	}
	delete(m.held, t)
	var granted []*Request
	for _, it := range items {
		granted = append(granted, m.grantWaiters(it)...)
	}
	return granted
}

// grantWaiters grants the head of the queue (and, for readers, every
// following compatible reader) if the item's current holders allow it.
func (m *Manager) grantWaiters(item txn.Item) []*Request {
	e := m.items[item]
	var granted []*Request
	for len(e.waiters) > 0 {
		r := e.waiters[0]
		ok := true
		for h, hm := range e.holders {
			if h != r.Txn && !compatible(r.Mode, hm) {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		e.waiters = e.waiters[1:]
		delete(m.waiting, r.Txn)
		e.holders[r.Txn] = r.Mode
		if m.held[r.Txn] == nil {
			m.held[r.Txn] = make(map[txn.Item]Mode)
		}
		m.held[r.Txn][item] = r.Mode
		granted = append(granted, r)
		if r.Mode == Write {
			break
		}
	}
	return granted
}

// WaitsFor returns the transactions t is directly waiting on: the
// incompatible holders of the item t is blocked on, plus the transactions
// whose requests are queued ahead of t's (grants are strictly in queue
// order, so a request cannot be granted before everything ahead of it).
// The queue edges are a conservative over-approximation — two adjacent
// readers would in fact be granted together — which can at worst abort a
// deadlock victim slightly early, never miss a real cycle. The result is
// deduplicated and in ascending order.
func (m *Manager) WaitsFor(t TxnID) []TxnID {
	r := m.waiting[t]
	if r == nil {
		return nil
	}
	seen := make(map[TxnID]bool)
	for _, h := range m.Conflicting(t, r.Item, r.Mode) {
		seen[h] = true
	}
	for _, w := range m.items[r.Item].waiters {
		if w == r {
			break
		}
		if w.Txn != t {
			seen[w.Txn] = true
		}
	}
	out := make([]TxnID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DetectCycle searches the waits-for graph for a cycle reachable from t and
// returns the transactions on the cycle (empty if none). The waiting
// baselines (EDF-WP) use this for deadlock resolution; CCA never waits and
// therefore can never deadlock.
func (m *Manager) DetectCycle(t TxnID) []TxnID {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[TxnID]int)
	var stack []TxnID
	var cycle []TxnID
	var dfs func(v TxnID) bool
	dfs = func(v TxnID) bool {
		color[v] = grey
		stack = append(stack, v)
		for _, w := range m.WaitsFor(v) {
			switch color[w] {
			case grey:
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == w {
						break
					}
				}
				return true
			case white:
				if dfs(w) {
					return true
				}
			}
		}
		color[v] = black
		stack = stack[:len(stack)-1]
		return false
	}
	if dfs(t) {
		return cycle
	}
	return nil
}

// LockedItems returns how many items currently have at least one holder.
func (m *Manager) LockedItems() int {
	n := 0
	for _, e := range m.items {
		if len(e.holders) > 0 {
			n++
		}
	}
	return n
}

// CheckInvariants panics if the lock table violates its structural
// invariants (at most one writer per item, writer excludes readers,
// held/items tables consistent, waiters sorted). Engine integration tests
// call this at every scheduling point.
func (m *Manager) CheckInvariants() {
	for it, e := range m.items {
		writers := 0
		for _, mode := range e.holders {
			if mode == Write {
				writers++
			}
		}
		if writers > 1 {
			panic(fmt.Sprintf("lock: item %d has %d writers", it, writers))
		}
		if writers == 1 && len(e.holders) > 1 {
			panic(fmt.Sprintf("lock: item %d has a writer and %d holders", it, len(e.holders)))
		}
		for i := 1; i < len(e.waiters); i++ {
			if e.waiters[i-1].Priority < e.waiters[i].Priority {
				panic(fmt.Sprintf("lock: item %d wait queue out of order", it))
			}
		}
		for h := range e.holders {
			if _, ok := m.held[h][it]; !ok {
				panic(fmt.Sprintf("lock: holder table missing txn %d item %d", h, it))
			}
		}
	}
	for t, items := range m.held {
		for it := range items {
			if _, ok := m.items[it].holders[t]; !ok {
				panic(fmt.Sprintf("lock: held table has stale txn %d item %d", t, it))
			}
		}
	}
}
