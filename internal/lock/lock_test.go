package lock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/txn"
)

func TestAcquireGrantAndReentry(t *testing.T) {
	m := NewManager()
	if !m.Acquire(1, 10, Write) {
		t.Fatal("first Acquire denied")
	}
	if !m.Acquire(1, 10, Write) {
		t.Fatal("re-entrant Acquire denied")
	}
	if !m.Holds(1, 10) {
		t.Fatal("Holds false after grant")
	}
	if got := m.HeldBy(1); len(got) != 1 || got[0] != 10 {
		t.Fatalf("HeldBy = %v", got)
	}
	if got := m.Holders(10); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Holders = %v", got)
	}
	m.CheckInvariants()
}

func TestWriteExcludesWrite(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 10, Write)
	if m.Acquire(2, 10, Write) {
		t.Fatal("conflicting write granted")
	}
	got := m.Conflicting(2, 10, Write)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Conflicting = %v, want [1]", got)
	}
}

func TestSharedReaders(t *testing.T) {
	m := NewManager()
	if !m.Acquire(1, 5, Read) || !m.Acquire(2, 5, Read) || !m.Acquire(3, 5, Read) {
		t.Fatal("concurrent readers denied")
	}
	if m.Acquire(4, 5, Write) {
		t.Fatal("write granted alongside readers")
	}
	if len(m.Conflicting(4, 5, Write)) != 3 {
		t.Fatal("write should conflict with all 3 readers")
	}
	if len(m.Conflicting(1, 5, Read)) != 0 {
		t.Fatal("reader should not conflict with readers")
	}
	m.CheckInvariants()
}

func TestReadUpgrade(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 5, Read)
	if !m.Acquire(1, 5, Write) {
		t.Fatal("sole-holder upgrade denied")
	}
	if m.Acquire(2, 5, Read) {
		t.Fatal("read granted against upgraded writer")
	}
	// Upgrade with other readers present must fail.
	m2 := NewManager()
	m2.Acquire(1, 5, Read)
	m2.Acquire(2, 5, Read)
	if m2.Acquire(1, 5, Write) {
		t.Fatal("upgrade granted with a co-reader present")
	}
}

func TestWriterThenReadDenied(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 7, Write)
	if m.Acquire(2, 7, Read) {
		t.Fatal("read granted against writer")
	}
	// Re-entrant weaker mode when holding Write stays granted.
	if !m.Acquire(1, 7, Read) {
		t.Fatal("holder's weaker-mode re-acquire denied")
	}
	if mode, ok := m.items[7].holderMode(1); !ok || mode != Write {
		t.Fatal("holder mode demoted by weaker re-acquire")
	}
}

func TestEnqueueOrderByPriority(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 3, Write)
	m.Enqueue(&Request{Txn: 2, Item: 3, Mode: Write, Priority: 5})
	m.Enqueue(&Request{Txn: 3, Item: 3, Mode: Write, Priority: 9})
	m.Enqueue(&Request{Txn: 4, Item: 3, Mode: Write, Priority: 5})
	ws := m.Waiters(3)
	wantOrder := []TxnID{3, 2, 4} // highest priority first, FIFO on ties
	for i, w := range ws {
		if w.Txn != wantOrder[i] {
			t.Fatalf("waiter %d = txn %d, want %d", i, w.Txn, wantOrder[i])
		}
	}
	m.CheckInvariants()
}

func TestEnqueueTwicePanics(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 3, Write)
	m.Enqueue(&Request{Txn: 2, Item: 3, Mode: Write})
	defer func() {
		if recover() == nil {
			t.Fatal("double enqueue did not panic")
		}
	}()
	m.Enqueue(&Request{Txn: 2, Item: 4, Mode: Write})
}

func TestAcquireWhileBlockedPanics(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 3, Write)
	m.Enqueue(&Request{Txn: 2, Item: 3, Mode: Write})
	defer func() {
		if recover() == nil {
			t.Fatal("acquire while blocked did not panic")
		}
	}()
	m.Acquire(2, 4, Write)
}

func TestReleaseGrantsWaiters(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 3, Write)
	m.Acquire(1, 4, Write)
	m.Enqueue(&Request{Txn: 2, Item: 3, Mode: Write, Priority: 1})
	m.Enqueue(&Request{Txn: 3, Item: 4, Mode: Write, Priority: 1})
	granted := m.ReleaseAll(1)
	if len(granted) != 2 {
		t.Fatalf("granted %d requests, want 2", len(granted))
	}
	if !m.Holds(2, 3) || !m.Holds(3, 4) {
		t.Fatal("waiters not granted after release")
	}
	if m.Waiting(2) != nil || m.Waiting(3) != nil {
		t.Fatal("granted waiters still marked waiting")
	}
	if len(m.HeldBy(1)) != 0 {
		t.Fatal("releaser still holds items")
	}
	m.CheckInvariants()
}

func TestReleaseGrantsReaderBatch(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 3, Write)
	m.Enqueue(&Request{Txn: 2, Item: 3, Mode: Read, Priority: 3})
	m.Enqueue(&Request{Txn: 3, Item: 3, Mode: Read, Priority: 2})
	m.Enqueue(&Request{Txn: 4, Item: 3, Mode: Write, Priority: 1})
	granted := m.ReleaseAll(1)
	if len(granted) != 2 {
		t.Fatalf("granted %d, want the 2 readers", len(granted))
	}
	if !m.Holds(2, 3) || !m.Holds(3, 3) || m.Holds(4, 3) {
		t.Fatal("reader batch grant wrong")
	}
	// Writer is granted once both readers release.
	m.ReleaseAll(2)
	if m.Holds(4, 3) {
		t.Fatal("writer granted too early")
	}
	g := m.ReleaseAll(3)
	if len(g) != 1 || g[0].Txn != 4 || !m.Holds(4, 3) {
		t.Fatal("writer not granted after readers release")
	}
}

func TestReadMayJoinReadersDespiteQueuedWriter(t *testing.T) {
	// The queue is priority-ordered, not FIFO: a compatible reader is
	// granted immediately even with a writer queued (see Acquire's note).
	m := NewManager()
	m.Acquire(1, 3, Read)
	m.Enqueue(&Request{Txn: 2, Item: 3, Mode: Write, Priority: 1})
	if !m.Acquire(3, 3, Read) {
		t.Fatal("compatible reader was refused")
	}
	m.CheckInvariants()
}

func TestCancelWait(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 3, Write)
	m.Enqueue(&Request{Txn: 2, Item: 3, Mode: Write})
	if _, ok := m.CancelWait(2); !ok {
		t.Fatal("CancelWait returned false for waiting txn")
	}
	if _, ok := m.CancelWait(2); ok {
		t.Fatal("second CancelWait returned true")
	}
	if len(m.Waiters(3)) != 0 {
		t.Fatal("cancelled waiter still queued")
	}
	if granted := m.ReleaseAll(1); len(granted) != 0 {
		t.Fatal("cancelled waiter granted on release")
	}
}

// TestCancelWaitGrantsBlockedFollowers: a reader queued behind a writer on
// a reader-held item must be granted when that writer's wait is cancelled
// (e.g. the writer is wounded) — otherwise it would sleep forever on an
// item that is compatible with it.
func TestCancelWaitGrantsBlockedFollowers(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 3, Read)
	m.Enqueue(&Request{Txn: 2, Item: 3, Mode: Write, Priority: 5})
	// Queue the reader directly behind the writer (lower priority).
	m.Enqueue(&Request{Txn: 3, Item: 3, Mode: Read, Priority: 1})
	granted, ok := m.CancelWait(2)
	if !ok {
		t.Fatal("writer was waiting")
	}
	if len(granted) != 1 || granted[0].Txn != 3 {
		t.Fatalf("granted = %v, want the blocked reader", granted)
	}
	if !m.Holds(3, 3) {
		t.Fatal("reader not holding after grant")
	}
	m.CheckInvariants()
}

// TestCancelWaitOnHeldItemGrantsNothing: cancelling a waiter on an item
// with an incompatible holder must not grant anyone.
func TestCancelWaitOnHeldItemGrantsNothing(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 3, Write)
	m.Enqueue(&Request{Txn: 2, Item: 3, Mode: Write, Priority: 5})
	m.Enqueue(&Request{Txn: 3, Item: 3, Mode: Write, Priority: 1})
	granted, ok := m.CancelWait(2)
	if !ok || len(granted) != 0 {
		t.Fatalf("granted = %v, want none", granted)
	}
	if len(m.Waiters(3)) != 1 {
		t.Fatal("remaining waiter lost")
	}
}

func TestWaitsFor(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 3, Write)
	m.Enqueue(&Request{Txn: 2, Item: 3, Mode: Write})
	wf := m.WaitsFor(2)
	if len(wf) != 1 || wf[0] != 1 {
		t.Fatalf("WaitsFor(2) = %v, want [1]", wf)
	}
	if m.WaitsFor(1) != nil {
		t.Fatal("non-waiting txn has waits-for edges")
	}
}

func TestDetectCycleSimple(t *testing.T) {
	m := NewManager()
	// 1 holds A, 2 holds B; 1 waits for B, 2 waits for A -> cycle.
	m.Acquire(1, 100, Write)
	m.Acquire(2, 200, Write)
	m.Enqueue(&Request{Txn: 1, Item: 200, Mode: Write})
	m.Enqueue(&Request{Txn: 2, Item: 100, Mode: Write})
	cycle := m.DetectCycle(1)
	if len(cycle) != 2 {
		t.Fatalf("cycle = %v, want 2 transactions", cycle)
	}
	seen := map[TxnID]bool{}
	for _, v := range cycle {
		seen[v] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("cycle = %v, want {1,2}", cycle)
	}
}

func TestDetectCycleThreeWay(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 100, Write)
	m.Acquire(2, 200, Write)
	m.Acquire(3, 300, Write)
	m.Enqueue(&Request{Txn: 1, Item: 200, Mode: Write})
	m.Enqueue(&Request{Txn: 2, Item: 300, Mode: Write})
	m.Enqueue(&Request{Txn: 3, Item: 100, Mode: Write})
	if got := m.DetectCycle(2); len(got) != 3 {
		t.Fatalf("3-cycle not found: %v", got)
	}
}

func TestDetectCycleNone(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 100, Write)
	m.Enqueue(&Request{Txn: 2, Item: 100, Mode: Write})
	if got := m.DetectCycle(2); got != nil {
		t.Fatalf("found spurious cycle %v", got)
	}
}

func TestLockedItems(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 1, Write)
	m.Acquire(1, 2, Write)
	m.Acquire(2, 3, Write)
	if got := m.LockedItems(); got != 3 {
		t.Fatalf("LockedItems = %d, want 3", got)
	}
	m.ReleaseAll(1)
	if got := m.LockedItems(); got != 1 {
		t.Fatalf("LockedItems after release = %d, want 1", got)
	}
}

func TestHeldCount(t *testing.T) {
	m := NewManager()
	if m.HeldCount(1) != 0 {
		t.Fatal("fresh manager reports held locks")
	}
	m.Acquire(1, 1, Write)
	m.Acquire(1, 2, Read)
	m.Acquire(1, 2, Read) // re-entrant: no double count
	m.Acquire(2, 3, Write)
	if got := m.HeldCount(1); got != 2 {
		t.Fatalf("HeldCount(1) = %d, want 2", got)
	}
	if got := len(m.HeldBy(1)); got != m.HeldCount(1) {
		t.Fatalf("HeldCount(1) = %d disagrees with HeldBy length %d", m.HeldCount(1), got)
	}
	m.ReleaseAll(1)
	if got := m.HeldCount(1); got != 0 {
		t.Fatalf("HeldCount(1) after release = %d, want 0", got)
	}
	if got := m.HeldCount(2); got != 1 {
		t.Fatalf("HeldCount(2) = %d, want 1", got)
	}
}

// Property: under random write-lock traffic with wound-style releases, the
// table never has two holders of one item and always passes CheckInvariants.
func TestQuickWriteLockExclusivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewManager()
		live := map[TxnID]bool{}
		for op := 0; op < 300; op++ {
			id := TxnID(rng.Intn(10))
			item := txn.Item(rng.Intn(6))
			switch rng.Intn(3) {
			case 0: // acquire or wound
				if m.Waiting(id) != nil {
					continue
				}
				// Wound until granted: releasing a holder may promote a
				// queued waiter into a fresh holder, which must be wounded
				// in turn (finitely many waiters, so this terminates).
				rounds := 0
				for !m.Acquire(id, item, Write) {
					if rounds++; rounds > 20 {
						return false // wounding every conflicter must eventually grant
					}
					for _, h := range m.Conflicting(id, item, Write) {
						m.CancelWait(h)
						m.ReleaseAll(h)
						delete(live, h)
					}
				}
				live[id] = true
			case 1: // enqueue behind a conflict
				if m.Waiting(id) != nil {
					continue
				}
				if !m.Acquire(id, item, Write) {
					m.Enqueue(&Request{Txn: id, Item: item, Mode: Write, Priority: rng.Float64()})
				}
			case 2: // commit
				m.CancelWait(id)
				m.ReleaseAll(id)
				delete(live, id)
			}
			for it := txn.Item(0); it < 6; it++ {
				if len(m.Holders(it)) > 1 {
					return false
				}
			}
			m.CheckInvariants()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: HP wound ordering — if waiters always have lower priority than
// holders, the waits-for graph is acyclic (the EDF-HP no-deadlock argument).
func TestQuickNoDeadlockWhenWaitersLowerPriority(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewManager()
		prio := map[TxnID]float64{}
		for i := TxnID(0); i < 8; i++ {
			prio[i] = rng.Float64()
		}
		for op := 0; op < 200; op++ {
			id := TxnID(rng.Intn(8))
			item := txn.Item(rng.Intn(5))
			if m.Waiting(id) != nil {
				continue
			}
			if rng.Intn(4) == 3 {
				m.ReleaseAll(id)
				continue
			}
			if m.Acquire(id, item, Write) {
				continue
			}
			hs := m.Conflicting(id, item, Write)
			allLower := true
			for _, h := range hs {
				if prio[h] >= prio[id] {
					allLower = false
				}
			}
			if allLower {
				for _, h := range hs {
					m.CancelWait(h)
					m.ReleaseAll(h)
				}
				m.Acquire(id, item, Write)
			} else {
				m.Enqueue(&Request{Txn: id, Item: item, Mode: Write, Priority: prio[id]})
			}
			for t := range prio {
				if m.DetectCycle(t) != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if Write.String() != "W" || Read.String() != "R" {
		t.Fatal("Mode.String wrong")
	}
}
