package txn

import (
	"fmt"
	"sort"
)

// Node is one vertex of a transaction tree. The root represents the start of
// the transaction program; every decision point (a conditional that commits
// the execution to a subset of the data set) splits the tree into one child
// per branch. Accesses holds the items the transaction accesses after
// reaching this node and before reaching its next decision point. A node
// with no children is a leaf: an execution state from which no further
// decision points will run.
type Node struct {
	// Label uniquely identifies the node within its program (paper
	// notation: "A", "Aa", "Ab", ...).
	Label string
	// Accesses is the set of items accessed between this node and the
	// next decision point (or commit, for a leaf).
	Accesses Set
	// Children are the branches of the decision point at the end of this
	// node's straight-line section; empty for leaves.
	Children []*Node
}

// Program is a pre-analysed transaction program: a tree of decision points.
// The paper notes a loop-free program is really a DAG but uses a tree for
// simplicity; we follow the paper.
type Program struct {
	// Name identifies the program (and is conventionally the root label).
	Name string
	// Root is the entry node.
	Root *Node
}

// Flat returns a single-node program that unconditionally accesses the given
// items. Workload transactions in the paper's simulations are flat: the
// simulated pre-analysis distinguishes only safe/unsafe, never
// conditionally-unsafe (paper §4).
func Flat(name string, items ...Item) *Program {
	return &Program{Name: name, Root: &Node{Label: name, Accesses: NewSet(items...)}}
}

// Branch builds an interior node. It is a convenience for assembling
// programs in tests and examples.
func Branch(label string, accesses Set, children ...*Node) *Node {
	return &Node{Label: label, Accesses: accesses, Children: children}
}

// Leaf builds a leaf node.
func Leaf(label string, items ...Item) *Node {
	return &Node{Label: label, Accesses: NewSet(items...)}
}

// Validate checks the structural invariants of the program: a non-nil root,
// non-nil nodes, and unique labels. Analysis requires a valid program.
func (p *Program) Validate() error {
	if p == nil || p.Root == nil {
		return fmt.Errorf("txn: program %q has no root", p.name())
	}
	seen := make(map[string]bool)
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n == nil {
			return fmt.Errorf("txn: program %q contains a nil node", p.Name)
		}
		if n.Label == "" {
			return fmt.Errorf("txn: program %q contains a node with an empty label", p.Name)
		}
		if seen[n.Label] {
			return fmt.Errorf("txn: program %q has duplicate label %q", p.Name, n.Label)
		}
		seen[n.Label] = true
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(p.Root)
}

func (p *Program) name() string {
	if p == nil {
		return "<nil>"
	}
	return p.Name
}

// Analysis holds the per-node hasaccessed / mightaccess sets and leaf lists
// derived from a program, exactly as defined in paper §3.2.2:
//
//	hasaccessed(P) = union of accesses(K) for K on the root-to-P path
//	mightaccess(P) = hasaccessed(P)                      if P is a leaf
//	                 union over children C of mightaccess(C)  otherwise
type Analysis struct {
	prog        *Program
	nodes       map[string]*Node
	hasAccessed map[string]Set
	mightAccess map[string]Set
	leaves      map[string][]string
	parent      map[string]string
}

// Analyze validates the program and computes its analysis tables.
func Analyze(p *Program) (*Analysis, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	a := &Analysis{
		prog:        p,
		nodes:       make(map[string]*Node),
		hasAccessed: make(map[string]Set),
		mightAccess: make(map[string]Set),
		leaves:      make(map[string][]string),
		parent:      make(map[string]string),
	}
	var walk func(n *Node, pathAcc Set)
	walk = func(n *Node, pathAcc Set) {
		a.nodes[n.Label] = n
		has := pathAcc.Union(n.Accesses)
		a.hasAccessed[n.Label] = has
		if len(n.Children) == 0 {
			a.mightAccess[n.Label] = has
			a.leaves[n.Label] = []string{n.Label}
			return
		}
		might := Set{}
		var lv []string
		for _, c := range n.Children {
			a.parent[c.Label] = n.Label
			walk(c, has)
			might = might.Union(a.mightAccess[c.Label])
			lv = append(lv, a.leaves[c.Label]...)
		}
		a.mightAccess[n.Label] = might
		a.leaves[n.Label] = lv
	}
	walk(p.Root, Set{})
	return a, nil
}

// MustAnalyze is Analyze for statically known-good programs; it panics on
// error.
func MustAnalyze(p *Program) *Analysis {
	a, err := Analyze(p)
	if err != nil {
		panic(err)
	}
	return a
}

// Program returns the analysed program.
func (a *Analysis) Program() *Program { return a.prog }

// Node returns the node with the given label, or nil.
func (a *Analysis) Node(label string) *Node { return a.nodes[label] }

// Labels returns all node labels in sorted order.
func (a *Analysis) Labels() []string {
	out := make([]string, 0, len(a.nodes))
	for l := range a.nodes {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// HasAccessed returns the set of items a transaction at the given label has
// accessed (under the paper's convention that items are accessed when the
// transaction begins and immediately after each decision point).
func (a *Analysis) HasAccessed(label string) Set { return a.hasAccessed[label] }

// MightAccess returns the set of items a transaction at the given label
// might still access on some execution path (including what it has already
// accessed).
func (a *Analysis) MightAccess(label string) Set { return a.mightAccess[label] }

// Leaves returns the labels of the leaves of the subtree rooted at label.
func (a *Analysis) Leaves(label string) []string { return a.leaves[label] }

// IsLeaf reports whether the label names a leaf node.
func (a *Analysis) IsLeaf(label string) bool {
	n := a.nodes[label]
	return n != nil && len(n.Children) == 0
}

// Parent returns the parent label of the given node and whether it has one.
func (a *Analysis) Parent(label string) (string, bool) {
	p, ok := a.parent[label]
	return p, ok
}
