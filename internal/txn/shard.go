package txn

import "fmt"

// ShardOf maps an item to its home shard under an n-way modular partition
// of the item space. The rule matches the disk-striping convention
// (item % n) so a shard's items and its disk stripe coincide, and it is a
// pure function of the item — every component (router, engine, workload
// splitter) can classify independently and agree.
func ShardOf(it Item, n int) int {
	if n < 1 {
		panic(fmt.Sprintf("txn: ShardOf with %d shards", n))
	}
	return int(it) % n
}

// ShardsTouched returns, as a bitmask over shard indices (n <= 64), the
// set of shards an access list touches. The mask form makes the common
// questions cheap: single-shard iff mask has one bit, home shard = lowest
// set bit.
func ShardsTouched(items []Item, n int) uint64 {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("txn: ShardsTouched with %d shards (want 1..64)", n))
	}
	var mask uint64
	for _, it := range items {
		mask |= 1 << uint(ShardOf(it, n))
	}
	return mask
}
