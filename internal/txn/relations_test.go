package txn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPaperConflictExample reproduces §3.2.2's worked example: before A's
// decision point A and B conditionally conflict; after taking the Aa branch
// they conflict; after taking Ab they don't conflict.
func TestPaperConflictExample(t *testing.T) {
	a := MustAnalyze(paperProgramA())
	b := MustAnalyze(paperProgramB())
	bState := NewState(b)

	if got := ConflictBetween(At(a, "A"), bState); got != ConditionallyConflict {
		t.Errorf("A vs B = %v, want conditionally-conflict", got)
	}
	if got := ConflictBetween(At(a, "Aa"), bState); got != Conflict {
		t.Errorf("Aa vs B = %v, want conflict", got)
	}
	if got := ConflictBetween(At(a, "Ab"), bState); got != NoConflict {
		t.Errorf("Ab vs B = %v, want no-conflict", got)
	}
}

func TestConflictSymmetry(t *testing.T) {
	a := MustAnalyze(paperProgramA())
	b := MustAnalyze(paperProgramB())
	t2 := MustAnalyze(paperProgramT2())
	states := []State{
		At(a, "A"), At(a, "Aa"), At(a, "Ab"),
		NewState(b),
		At(t2, "T21"), At(t2, "T22"), At(t2, "T24"), At(t2, "T27"),
	}
	for _, x := range states {
		for _, y := range states {
			if ConflictBetween(x, y) != ConflictBetween(y, x) {
				t.Fatalf("conflict not symmetric for %s vs %s", x.Label, y.Label)
			}
		}
	}
}

func TestPaperSafetyExample(t *testing.T) {
	a := MustAnalyze(paperProgramA())
	b := MustAnalyze(paperProgramB())
	bState := NewState(b)

	// A at its root has accessed only w (item 0): safe wrt scheduling B.
	if got := SafetyOf(At(a, "A"), bState); got != Safe {
		t.Errorf("safety(A wrt B) = %v, want safe", got)
	}
	// A at Aa has accessed I1..I3, which B will access: unsafe.
	if got := SafetyOf(At(a, "Aa"), bState); got != Unsafe {
		t.Errorf("safety(Aa wrt B) = %v, want unsafe", got)
	}
	// A at Ab accessed w, I4..I6, disjoint from B: safe.
	if got := SafetyOf(At(a, "Ab"), bState); got != Safe {
		t.Errorf("safety(Ab wrt B) = %v, want safe", got)
	}
	// B has accessed I1..I3; scheduling A might take the Ab branch that
	// avoids them: conditionally unsafe.
	if got := SafetyOf(bState, At(a, "A")); got != ConditionallyUnsafe {
		t.Errorf("safety(B wrt A) = %v, want conditionally-unsafe", got)
	}
	// Once A is committed to Aa, B is unsafe wrt it.
	if got := SafetyOf(bState, At(a, "Aa")); got != Unsafe {
		t.Errorf("safety(B wrt Aa) = %v, want unsafe", got)
	}
	// And once A is committed to Ab, B is safe wrt it.
	if got := SafetyOf(bState, At(a, "Ab")); got != Safe {
		t.Errorf("safety(B wrt Ab) = %v, want safe", got)
	}
}

func TestSafetyOnAuxiliaryTree(t *testing.T) {
	t2 := MustAnalyze(paperProgramT2())
	// A flat transaction that accessed item C (12).
	c := MustAnalyze(Flat("C", 12))
	cState := NewState(c)

	// Scheduling T2 at its root: C's accessed item appears on leaves T24
	// and T26 but not T25/T27, so C is conditionally unsafe wrt T21.
	if got := SafetyOf(cState, At(t2, "T21")); got != ConditionallyUnsafe {
		t.Errorf("safety(C wrt T21) = %v, want conditionally-unsafe", got)
	}
	// Scheduling T2 already at leaf T24 ({A, C}): unsafe.
	if got := SafetyOf(cState, At(t2, "T24")); got != Unsafe {
		t.Errorf("safety(C wrt T24) = %v, want unsafe", got)
	}
	// Scheduling T2 at leaf T27 ({B, D}): safe.
	if got := SafetyOf(cState, At(t2, "T27")); got != Safe {
		t.Errorf("safety(C wrt T27) = %v, want safe", got)
	}
}

func TestFlatSafetyReducesToIntersection(t *testing.T) {
	x := NewState(MustAnalyze(Flat("X", 1, 2)))
	y := NewState(MustAnalyze(Flat("Y", 2, 3)))
	z := NewState(MustAnalyze(Flat("Z", 4, 5)))
	if SafetyOf(x, y) != Unsafe || SafetyOf(y, x) != Unsafe {
		t.Error("overlapping flat transactions should be mutually unsafe")
	}
	if SafetyOf(x, z) != Safe || SafetyOf(z, x) != Safe {
		t.Error("disjoint flat transactions should be mutually safe")
	}
	if ConflictBetween(x, y) != Conflict {
		t.Error("overlapping flat transactions should conflict")
	}
	if ConflictBetween(x, z) != NoConflict {
		t.Error("disjoint flat transactions should not conflict")
	}
}

func TestAtPanicsOnUnknownLabel(t *testing.T) {
	a := MustAnalyze(paperProgramB())
	defer func() {
		if recover() == nil {
			t.Fatal("At with unknown label did not panic")
		}
	}()
	At(a, "nope")
}

func TestRelationTableMatchesDirect(t *testing.T) {
	a := MustAnalyze(paperProgramA())
	t2 := MustAnalyze(paperProgramT2())
	tab := BuildRelationTable(a, t2)
	for _, la := range a.Labels() {
		for _, lb := range t2.Labels() {
			if tab.Conflict(la, lb) != ConflictBetween(At(a, la), At(t2, lb)) {
				t.Fatalf("table conflict mismatch at (%s, %s)", la, lb)
			}
			if tab.Safety(la, lb) != SafetyOf(At(a, la), At(t2, lb)) {
				t.Fatalf("table safety mismatch at (%s, %s)", la, lb)
			}
		}
	}
}

func TestClassStrings(t *testing.T) {
	cases := map[string]string{
		NoConflict.String():            "no-conflict",
		ConditionallyConflict.String(): "conditionally-conflict",
		Conflict.String():              "conflict",
		Safe.String():                  "safe",
		ConditionallyUnsafe.String():   "conditionally-unsafe",
		Unsafe.String():                "unsafe",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if ConflictClass(99).String() == "" || SafetyClass(99).String() == "" {
		t.Error("unknown classes should still render")
	}
}

// genProgram builds a random transaction tree for property testing.
func genProgram(rng *rand.Rand, name string) *Program {
	label := 0
	var gen func(depth int) *Node
	gen = func(depth int) *Node {
		label++
		n := &Node{Label: name + string(rune('0'+label%10)) + "-" + itoa(label)}
		nAcc := rng.Intn(4)
		items := make([]Item, nAcc)
		for i := range items {
			items[i] = Item(rng.Intn(12))
		}
		n.Accesses = NewSet(items...)
		if depth < 3 && rng.Intn(2) == 0 {
			kids := 2 + rng.Intn(2)
			for i := 0; i < kids; i++ {
				n.Children = append(n.Children, gen(depth+1))
			}
		}
		return n
	}
	return &Program{Name: name, Root: gen(0)}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// Property: structural invariants of the analysis on random trees.
func TestQuickAnalysisInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := MustAnalyze(genProgram(rng, "P"))
		for _, l := range a.Labels() {
			has, might := a.HasAccessed(l), a.MightAccess(l)
			// hasaccessed is always a subset of mightaccess.
			if !has.Subset(might) {
				return false
			}
			// mightaccess is the union over the subtree's leaves.
			u := Set{}
			for _, leaf := range a.Leaves(l) {
				u = u.Union(a.MightAccess(leaf))
			}
			if !might.Equal(u) {
				return false
			}
			// at a leaf, has == might.
			if a.IsLeaf(l) && !has.Equal(might) {
				return false
			}
			// children have at least the parent's hasaccessed.
			for _, c := range a.Node(l).Children {
				if !has.Subset(a.HasAccessed(c.Label)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: classification refinement is monotone as transactions advance
// through their trees — the behaviour the scheduler relies on when it
// re-evaluates relations at decision points (§3.2.2):
//
//   - a descendant's mightaccess is a subset of its ancestor's, so
//     NoConflict at a node persists at every descendant, and Conflict at a
//     node persists at every descendant;
//   - two leaf states can never ConditionallyConflict (each has a single
//     execution path, so the leaf-pair intersection is all-or-nothing);
//   - as the partially executed side advances (hasaccessed grows), safety
//     only degrades: Safe < ConditionallyUnsafe < Unsafe is monotone
//     non-decreasing down the tree.
func TestQuickConflictRefinementMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := MustAnalyze(genProgram(rng, "A"))
		b := MustAnalyze(genProgram(rng, "B"))
		var descend func(n *Node, visit func(anc, desc *Node))
		descend = func(n *Node, visit func(anc, desc *Node)) {
			var walk func(d *Node)
			walk = func(d *Node) {
				visit(n, d)
				for _, c := range d.Children {
					walk(c)
				}
			}
			walk(n)
			for _, c := range n.Children {
				descend(c, visit)
			}
		}
		ok := true
		for _, lb := range b.Labels() {
			sb := At(b, lb)
			descend(a.Program().Root, func(anc, desc *Node) {
				cAnc := ConflictBetween(At(a, anc.Label), sb)
				cDesc := ConflictBetween(At(a, desc.Label), sb)
				if cAnc == NoConflict && cDesc != NoConflict {
					ok = false
				}
				if cAnc == Conflict && cDesc != Conflict {
					ok = false
				}
				// Safety of the advancing side is monotone non-decreasing.
				if SafetyOf(At(a, anc.Label), sb) > SafetyOf(At(a, desc.Label), sb) {
					ok = false
				}
			})
			if b.IsLeaf(lb) {
				for _, la := range a.Labels() {
					if a.IsLeaf(la) && ConflictBetween(At(a, la), sb) == ConditionallyConflict {
						ok = false
					}
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 75}); err != nil {
		t.Fatal(err)
	}
}

// Property: conflict classification trichotomy and consistency with
// might-access sets on random tree pairs.
func TestQuickConflictConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := MustAnalyze(genProgram(rng, "A"))
		b := MustAnalyze(genProgram(rng, "B"))
		for _, la := range a.Labels() {
			sa := At(a, la)
			for _, lb := range b.Labels() {
				sb := At(b, lb)
				c := ConflictBetween(sa, sb)
				if c != ConflictBetween(sb, sa) {
					return false // symmetry
				}
				overlap := sa.MightAccess().Intersects(sb.MightAccess())
				switch c {
				case NoConflict:
					// all leaf pairs disjoint => unions disjoint
					if overlap {
						return false
					}
				case Conflict, ConditionallyConflict:
					if !overlap {
						return false
					}
				}
				// safety consistency
				s := SafetyOf(sa, sb)
				hasOverlap := sa.HasAccessed().Intersects(sb.MightAccess())
				if (s == Safe) == hasOverlap {
					return false
				}
				// A transaction that accessed nothing is safe wrt anything.
				if sa.HasAccessed().Empty() && s != Safe {
					return false
				}
				// Unsafe implies conflict is not NoConflict.
				if s == Unsafe && c == NoConflict {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
