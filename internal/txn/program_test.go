package txn

import (
	"strings"
	"testing"
)

// paperProgramA is Figure 1/2's program A: access w (item 0), then at the
// decision point branch to {I1,I2,I3} (items 1..3) or {I4,I5,I6} (items 4..6).
func paperProgramA() *Program {
	return &Program{
		Name: "A",
		Root: Branch("A", NewSet(0),
			Leaf("Aa", 1, 2, 3),
			Leaf("Ab", 4, 5, 6),
		),
	}
}

// paperProgramB is Figure 1/2's program B: a straight-line access of
// {I1, I2, I3} with no decision points.
func paperProgramB() *Program {
	return Flat("B", 1, 2, 3)
}

// paperProgramT2 is Figure 3's auxiliary transaction tree: the root T21
// branches to T22 (accesses A) and T23 (accesses B); T22 branches to T24
// (accesses C) and T25 (accesses D); T23 branches to T26 (C) and T27 (D).
// Items: A=10, B=11, C=12, D=13.
func paperProgramT2() *Program {
	return &Program{
		Name: "T2",
		Root: Branch("T21", Set{},
			Branch("T22", NewSet(10),
				Leaf("T24", 12),
				Leaf("T25", 13),
			),
			Branch("T23", NewSet(11),
				Leaf("T26", 12),
				Leaf("T27", 13),
			),
		),
	}
}

func TestValidateAcceptsPaperPrograms(t *testing.T) {
	for _, p := range []*Program{paperProgramA(), paperProgramB(), paperProgramT2()} {
		if err := p.Validate(); err != nil {
			t.Fatalf("Validate(%s) = %v", p.Name, err)
		}
	}
}

func TestValidateRejectsNilRoot(t *testing.T) {
	if err := (&Program{Name: "x"}).Validate(); err == nil {
		t.Fatal("nil root accepted")
	}
	var p *Program
	if err := p.Validate(); err == nil {
		t.Fatal("nil program accepted")
	}
}

func TestValidateRejectsDuplicateLabels(t *testing.T) {
	p := &Program{Name: "d", Root: Branch("d", Set{}, Leaf("x"), Leaf("x"))}
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate labels: err = %v", err)
	}
}

func TestValidateRejectsEmptyLabel(t *testing.T) {
	p := &Program{Name: "e", Root: Branch("e", Set{}, Leaf(""))}
	if err := p.Validate(); err == nil {
		t.Fatal("empty label accepted")
	}
}

func TestValidateRejectsNilChild(t *testing.T) {
	p := &Program{Name: "n", Root: &Node{Label: "n", Children: []*Node{nil}}}
	if err := p.Validate(); err == nil {
		t.Fatal("nil child accepted")
	}
}

func TestAnalyzeRejectsInvalid(t *testing.T) {
	if _, err := Analyze(&Program{Name: "bad"}); err == nil {
		t.Fatal("Analyze accepted invalid program")
	}
}

func TestMustAnalyzePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAnalyze did not panic")
		}
	}()
	MustAnalyze(&Program{Name: "bad"})
}

// TestPaperFigure2 checks hasaccessed/mightaccess for programs A and B.
func TestPaperFigure2(t *testing.T) {
	a := MustAnalyze(paperProgramA())

	if got := a.HasAccessed("A"); !got.Equal(NewSet(0)) {
		t.Errorf("hasaccessed(A) = %v, want {0}", got)
	}
	if got := a.MightAccess("A"); !got.Equal(NewSet(0, 1, 2, 3, 4, 5, 6)) {
		t.Errorf("mightaccess(A) = %v, want {0..6}", got)
	}
	if got := a.HasAccessed("Aa"); !got.Equal(NewSet(0, 1, 2, 3)) {
		t.Errorf("hasaccessed(Aa) = %v", got)
	}
	if got := a.MightAccess("Aa"); !got.Equal(NewSet(0, 1, 2, 3)) {
		t.Errorf("mightaccess(Aa) = %v", got)
	}
	if got := a.MightAccess("Ab"); !got.Equal(NewSet(0, 4, 5, 6)) {
		t.Errorf("mightaccess(Ab) = %v", got)
	}

	b := MustAnalyze(paperProgramB())
	if got := b.MightAccess("B"); !got.Equal(NewSet(1, 2, 3)) {
		t.Errorf("mightaccess(B) = %v", got)
	}
	if !b.IsLeaf("B") {
		t.Error("single-node program's root should be a leaf")
	}
}

// TestPaperFigure3 checks the auxiliary transaction tree's derived sets.
func TestPaperFigure3(t *testing.T) {
	a := MustAnalyze(paperProgramT2())

	wantHas := map[string]Set{
		"T21": {},
		"T22": NewSet(10),
		"T23": NewSet(11),
		"T24": NewSet(10, 12),
		"T25": NewSet(10, 13),
		"T26": NewSet(11, 12),
		"T27": NewSet(11, 13),
	}
	for label, want := range wantHas {
		if got := a.HasAccessed(label); !got.Equal(want) {
			t.Errorf("hasaccessed(%s) = %v, want %v", label, got, want)
		}
	}
	wantMight := map[string]Set{
		"T21": NewSet(10, 11, 12, 13),
		"T22": NewSet(10, 12, 13),
		"T23": NewSet(11, 12, 13),
		"T24": NewSet(10, 12),
		"T27": NewSet(11, 13),
	}
	for label, want := range wantMight {
		if got := a.MightAccess(label); !got.Equal(want) {
			t.Errorf("mightaccess(%s) = %v, want %v", label, got, want)
		}
	}
	if got := a.Leaves("T21"); len(got) != 4 {
		t.Errorf("leaves(T21) = %v, want 4 leaves", got)
	}
	if got := a.Leaves("T22"); len(got) != 2 {
		t.Errorf("leaves(T22) = %v, want 2 leaves", got)
	}
}

func TestAnalysisAccessors(t *testing.T) {
	a := MustAnalyze(paperProgramA())
	if a.Program().Name != "A" {
		t.Error("Program() wrong")
	}
	if a.Node("Aa") == nil || a.Node("zzz") != nil {
		t.Error("Node lookup wrong")
	}
	labels := a.Labels()
	want := []string{"A", "Aa", "Ab"}
	if len(labels) != len(want) {
		t.Fatalf("Labels = %v", labels)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("Labels = %v, want %v", labels, want)
		}
	}
	if p, ok := a.Parent("Aa"); !ok || p != "A" {
		t.Errorf("Parent(Aa) = %q, %v", p, ok)
	}
	if _, ok := a.Parent("A"); ok {
		t.Error("root should have no parent")
	}
	if !a.IsLeaf("Ab") || a.IsLeaf("A") {
		t.Error("IsLeaf wrong")
	}
}

func TestFlatProgram(t *testing.T) {
	p := Flat("F", 7, 8)
	a := MustAnalyze(p)
	if !a.IsLeaf("F") {
		t.Fatal("flat program root is not a leaf")
	}
	if !a.MightAccess("F").Equal(NewSet(7, 8)) {
		t.Fatal("flat program might-access wrong")
	}
	if !a.HasAccessed("F").Equal(a.MightAccess("F")) {
		t.Fatal("flat program has/might mismatch")
	}
}
