// Package txn implements the paper's transaction model and pre-analysis
// (§3.2.2): transaction programs as trees whose branch points ("decision
// points") progressively refine the set of data items an execution may
// access, plus the derived conflict and safety relations used by the
// cost-conscious scheduler.
package txn

import (
	"fmt"
	"sort"
	"strings"
)

// Item identifies a database object.
type Item int

// Set is an immutable-by-convention set of database items. The zero value
// is the empty set.
type Set struct {
	m map[Item]struct{}
}

// NewSet returns a set holding the given items.
func NewSet(items ...Item) Set {
	s := Set{m: make(map[Item]struct{}, len(items))}
	for _, it := range items {
		s.m[it] = struct{}{}
	}
	return s
}

// Len returns the number of items in the set.
func (s Set) Len() int { return len(s.m) }

// Empty reports whether the set has no items.
func (s Set) Empty() bool { return len(s.m) == 0 }

// Contains reports whether the set holds it.
func (s Set) Contains(it Item) bool {
	_, ok := s.m[it]
	return ok
}

// Union returns a new set holding the items of s and t.
func (s Set) Union(t Set) Set {
	u := Set{m: make(map[Item]struct{}, len(s.m)+len(t.m))}
	for it := range s.m {
		u.m[it] = struct{}{}
	}
	for it := range t.m {
		u.m[it] = struct{}{}
	}
	return u
}

// Intersects reports whether s and t share at least one item.
func (s Set) Intersects(t Set) bool {
	small, large := s.m, t.m
	if len(large) < len(small) {
		small, large = large, small
	}
	for it := range small {
		if _, ok := large[it]; ok {
			return true
		}
	}
	return false
}

// Intersection returns the set of items present in both s and t.
func (s Set) Intersection(t Set) Set {
	small, large := s.m, t.m
	if len(large) < len(small) {
		small, large = large, small
	}
	u := Set{m: make(map[Item]struct{})}
	for it := range small {
		if _, ok := large[it]; ok {
			u.m[it] = struct{}{}
		}
	}
	return u
}

// Subset reports whether every item of s is in t.
func (s Set) Subset(t Set) bool {
	if len(s.m) > len(t.m) {
		return false
	}
	for it := range s.m {
		if _, ok := t.m[it]; !ok {
			return false
		}
	}
	return true
}

// Equal reports whether s and t hold exactly the same items.
func (s Set) Equal(t Set) bool {
	return len(s.m) == len(t.m) && s.Subset(t)
}

// Items returns the elements in ascending order.
func (s Set) Items() []Item {
	out := make([]Item, 0, len(s.m))
	for it := range s.m {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the set as "{1, 2, 3}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, it := range s.Items() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", int(it))
	}
	b.WriteByte('}')
	return b.String()
}
