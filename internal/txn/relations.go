package txn

import "fmt"

// ConflictClass classifies the conflict relation between two transaction
// states (paper §3.2.2).
type ConflictClass int

const (
	// NoConflict: for every pair of execution paths the two transactions'
	// might-access sets are disjoint.
	NoConflict ConflictClass = iota
	// ConditionallyConflict: some pairs of execution paths overlap and
	// some do not; whether the transactions conflict depends on their
	// future decisions.
	ConditionallyConflict
	// Conflict: every pair of execution paths overlaps; the transactions
	// will conflict no matter which branches they take.
	Conflict
)

// String returns the class name.
func (c ConflictClass) String() string {
	switch c {
	case NoConflict:
		return "no-conflict"
	case ConditionallyConflict:
		return "conditionally-conflict"
	case Conflict:
		return "conflict"
	default:
		return fmt.Sprintf("ConflictClass(%d)", int(c))
	}
}

// SafetyClass classifies how a partially executed transaction relates to a
// transaction that is about to be scheduled (paper §3.2.2). It determines
// whether the partially executed one would have to be rolled back.
type SafetyClass int

const (
	// Safe: the partially executed transaction has accessed nothing the
	// other might access; blocking suffices, no rollback is needed.
	Safe SafetyClass = iota
	// ConditionallyUnsafe: on some execution paths of the scheduled
	// transaction a rollback would be needed, on others not.
	ConditionallyUnsafe
	// Unsafe: on every execution path of the scheduled transaction the
	// partially executed one must be rolled back.
	Unsafe
)

// String returns the class name.
func (s SafetyClass) String() string {
	switch s {
	case Safe:
		return "safe"
	case ConditionallyUnsafe:
		return "conditionally-unsafe"
	case Unsafe:
		return "unsafe"
	default:
		return fmt.Sprintf("SafetyClass(%d)", int(s))
	}
}

// State is a transaction's position in its program: an analysis plus the
// label of the node it most recently reached.
type State struct {
	Analysis *Analysis
	Label    string
}

// NewState returns the state of a freshly started transaction of the given
// analysed program (positioned at the root).
func NewState(a *Analysis) State {
	return State{Analysis: a, Label: a.Program().Root.Label}
}

// At returns the state positioned at the given label.
func At(a *Analysis, label string) State {
	if a.Node(label) == nil {
		panic(fmt.Sprintf("txn: program %q has no node %q", a.Program().Name, label))
	}
	return State{Analysis: a, Label: label}
}

// HasAccessed returns the items the transaction has accessed so far.
func (s State) HasAccessed() Set { return s.Analysis.HasAccessed(s.Label) }

// MightAccess returns the items the transaction might access.
func (s State) MightAccess() Set { return s.Analysis.MightAccess(s.Label) }

// Leaves returns the leaf labels reachable from the state.
func (s State) Leaves() []string { return s.Analysis.Leaves(s.Label) }

// ConflictBetween classifies the conflict relation between two transaction
// states, following the paper's definitions:
//
//   - conflict iff for all leaves p of A and q of B,
//     mightaccess(p) ∩ mightaccess(q) ≠ ∅;
//   - conditionally conflict iff some leaf pair intersects and some leaf
//     pair does not;
//   - don't conflict otherwise (no leaf pair intersects).
//
// The relation is symmetric.
func ConflictBetween(a, b State) ConflictClass {
	anyOverlap, anyDisjoint := false, false
	for _, p := range a.Leaves() {
		mp := a.Analysis.MightAccess(p)
		for _, q := range b.Leaves() {
			if mp.Intersects(b.Analysis.MightAccess(q)) {
				anyOverlap = true
			} else {
				anyDisjoint = true
			}
			if anyOverlap && anyDisjoint {
				return ConditionallyConflict
			}
		}
	}
	switch {
	case anyOverlap:
		return Conflict
	default:
		return NoConflict
	}
}

// SafetyOf classifies how the partially executed transaction `part` relates
// to the transaction `sched` that is about to be scheduled:
//
//   - safe iff hasaccessed(part) ∩ mightaccess(sched) = ∅;
//   - unsafe iff for every leaf q of sched,
//     hasaccessed(part) ∩ mightaccess(q) ≠ ∅;
//   - conditionally unsafe iff the intersection with mightaccess(sched) is
//     non-empty but some leaf of sched avoids it.
//
// Unlike conflict, safety is not symmetric: it depends on what `part` has
// already accessed.
func SafetyOf(part, sched State) SafetyClass {
	has := part.HasAccessed()
	if !has.Intersects(sched.MightAccess()) {
		return Safe
	}
	for _, q := range sched.Leaves() {
		if !has.Intersects(sched.Analysis.MightAccess(q)) {
			return ConditionallyUnsafe
		}
	}
	return Unsafe
}

// RelationTable precomputes the pairwise conflict classification for every
// (node, node) pair of two programs. The scheduler consults tables like this
// instead of re-deriving relations at every scheduling point; the paper
// argues this space-for-time trade-off is reasonable for an RTDBS (§3.2.2).
type RelationTable struct {
	a, b     *Analysis
	conflict map[[2]string]ConflictClass
	safety   map[[2]string]SafetyClass
}

// BuildRelationTable computes the full table between two analysed programs
// (which may be the same program, for self-relations between two instances).
func BuildRelationTable(a, b *Analysis) *RelationTable {
	t := &RelationTable{
		a:        a,
		b:        b,
		conflict: make(map[[2]string]ConflictClass),
		safety:   make(map[[2]string]SafetyClass),
	}
	for _, la := range a.Labels() {
		sa := At(a, la)
		for _, lb := range b.Labels() {
			sb := At(b, lb)
			t.conflict[[2]string{la, lb}] = ConflictBetween(sa, sb)
			t.safety[[2]string{la, lb}] = SafetyOf(sa, sb)
		}
	}
	return t
}

// Conflict returns the precomputed conflict class for (labelA, labelB).
func (t *RelationTable) Conflict(labelA, labelB string) ConflictClass {
	return t.conflict[[2]string{labelA, labelB}]
}

// Safety returns the precomputed safety class of a partially executed
// transaction at labelA with respect to scheduling a transaction at labelB.
func (t *RelationTable) Safety(labelA, labelB string) SafetyClass {
	return t.safety[[2]string{labelA, labelB}]
}
