package txn

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseProgram throws arbitrary text at the program parser. Invalid
// input must produce an error, never a panic; valid input must satisfy the
// canonicalisation property: parse → write reaches a fixed point in one
// step (re-parsing the rendered text and rendering again yields the same
// bytes), and the parsed program passes analysis.
func FuzzParseProgram(f *testing.F) {
	f.Add("program transfer\nnode transfer accesses 0\n  node ok accesses 1\n  node overdraft accesses 1 3 4\n")
	f.Add("program p\nnode root\n")
	f.Add("program p\nnode a accesses 0 1 2\n  node b accesses 3\n    node c accesses 4\n  node d accesses 5\n")
	f.Add("# comment only\nprogram x\nnode r accesses 007 +5\n")
	f.Add("program bad\nnode a\nnode b\n")
	f.Add("")
	f.Add("program p\nnode a accesses -1\n")
	f.Add("program p\n\tnode a\n")
	f.Fuzz(func(t *testing.T, text string) {
		p, err := ParseProgram(strings.NewReader(text))
		if err != nil {
			return // rejected input; only panics are failures
		}
		var first bytes.Buffer
		if err := WriteProgram(&first, p); err != nil {
			t.Fatalf("parsed program failed to render: %v", err)
		}
		p2, err := ParseProgram(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("rendered program failed to re-parse: %v\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := WriteProgram(&second, p2); err != nil {
			t.Fatalf("re-parsed program failed to render: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("canonical form not a fixed point:\n--- first\n%s--- second\n%s", first.String(), second.String())
		}
		// A program that validates must also analyse (hasaccessed /
		// mightaccess construction cannot fail on a valid tree).
		if _, err := Analyze(p); err != nil {
			t.Fatalf("valid program failed analysis: %v", err)
		}
	})
}
