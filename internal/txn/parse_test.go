package txn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const paperAText = `
# Figure 1's program A: read w (item 0), branch on its value.
program A
node A accesses 0
  node Aa accesses 1 2 3   # w > 100
  node Ab accesses 4 5 6   # w <= 100
`

func TestParsePaperProgram(t *testing.T) {
	p, err := ParseProgram(strings.NewReader(paperAText))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "A" {
		t.Fatalf("name = %q", p.Name)
	}
	a := MustAnalyze(p)
	if !a.MightAccess("A").Equal(NewSet(0, 1, 2, 3, 4, 5, 6)) {
		t.Fatalf("mightaccess(A) = %v", a.MightAccess("A"))
	}
	if !a.IsLeaf("Aa") || !a.IsLeaf("Ab") || a.IsLeaf("A") {
		t.Fatal("tree shape wrong")
	}
}

func TestParseDeepNesting(t *testing.T) {
	text := `program T2
node T21
  node T22 accesses 10
    node T24 accesses 12
    node T25 accesses 13
  node T23 accesses 11
    node T26 accesses 12
    node T27 accesses 13
`
	p, err := ParseProgram(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	a := MustAnalyze(p)
	if got := a.Leaves("T21"); len(got) != 4 {
		t.Fatalf("leaves = %v", got)
	}
	if !a.HasAccessed("T26").Equal(NewSet(11, 12)) {
		t.Fatalf("hasaccessed(T26) = %v", a.HasAccessed("T26"))
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"no header":       "node x accesses 1\n",
		"bad header":      "prog A\nnode A\n",
		"bad node line":   "program A\nnde A\n",
		"bad keyword":     "program A\nnode A acceses 1\n",
		"bad item":        "program A\nnode A accesses x\n",
		"negative item":   "program A\nnode A accesses -2\n",
		"two roots":       "program A\nnode A accesses 1\nnode B accesses 2\n",
		"duplicate label": "program A\nnode A\n  node B\n  node B\n",
	}
	for name, text := range cases {
		if _, err := ParseProgram(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}

func TestParseAccesslessNode(t *testing.T) {
	p, err := ParseProgram(strings.NewReader("program P\nnode root\n  node a accesses 1\n  node b accesses 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	a := MustAnalyze(p)
	if !a.HasAccessed("root").Empty() {
		t.Fatal("access-less root should have empty hasaccessed")
	}
}

func TestWriteProgramRoundTrip(t *testing.T) {
	orig, err := ParseProgram(strings.NewReader(paperAText))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProgram(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseProgram(&buf)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, buf.String())
	}
	if !equalPrograms(orig, back) {
		t.Fatalf("round trip changed the program:\n%s", buf.String())
	}
}

func TestWriteProgramRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProgram(&buf, &Program{Name: "x"}); err == nil {
		t.Fatal("invalid program written")
	}
}

func equalPrograms(a, b *Program) bool {
	if a.Name != b.Name {
		return false
	}
	var eq func(x, y *Node) bool
	eq = func(x, y *Node) bool {
		if x.Label != y.Label || !x.Accesses.Equal(y.Accesses) || len(x.Children) != len(y.Children) {
			return false
		}
		for i := range x.Children {
			if !eq(x.Children[i], y.Children[i]) {
				return false
			}
		}
		return true
	}
	return eq(a.Root, b.Root)
}

// Property: write/parse round trip is the identity on random trees.
func TestQuickParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := genProgram(rng, "P")
		var buf bytes.Buffer
		if err := WriteProgram(&buf, p); err != nil {
			return false
		}
		back, err := ParseProgram(&buf)
		if err != nil {
			return false
		}
		return equalPrograms(p, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
