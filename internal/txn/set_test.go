package txn

import (
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(3, 1, 2, 3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (duplicates collapse)", s.Len())
	}
	if !s.Contains(1) || !s.Contains(2) || !s.Contains(3) {
		t.Fatal("missing member")
	}
	if s.Contains(4) {
		t.Fatal("spurious member")
	}
	if s.Empty() {
		t.Fatal("non-empty set reported Empty")
	}
	var zero Set
	if !zero.Empty() || zero.Len() != 0 {
		t.Fatal("zero Set is not empty")
	}
	if zero.Contains(1) {
		t.Fatal("zero Set contains an item")
	}
}

func TestSetUnion(t *testing.T) {
	u := NewSet(1, 2).Union(NewSet(2, 3))
	if !u.Equal(NewSet(1, 2, 3)) {
		t.Fatalf("Union = %v", u)
	}
	// Union must not mutate operands.
	a := NewSet(1)
	_ = a.Union(NewSet(9))
	if a.Contains(9) {
		t.Fatal("Union mutated its receiver")
	}
}

func TestSetIntersects(t *testing.T) {
	if !NewSet(1, 2, 3).Intersects(NewSet(3, 4)) {
		t.Fatal("overlapping sets reported disjoint")
	}
	if NewSet(1, 2).Intersects(NewSet(3, 4)) {
		t.Fatal("disjoint sets reported overlapping")
	}
	var zero Set
	if zero.Intersects(NewSet(1)) || NewSet(1).Intersects(zero) {
		t.Fatal("empty set intersects something")
	}
}

func TestSetIntersection(t *testing.T) {
	got := NewSet(1, 2, 3, 4).Intersection(NewSet(2, 4, 6))
	if !got.Equal(NewSet(2, 4)) {
		t.Fatalf("Intersection = %v, want {2, 4}", got)
	}
}

func TestSetSubsetEqual(t *testing.T) {
	a := NewSet(1, 2)
	b := NewSet(1, 2, 3)
	if !a.Subset(b) {
		t.Fatal("subset not detected")
	}
	if b.Subset(a) {
		t.Fatal("superset reported as subset")
	}
	if !a.Equal(NewSet(2, 1)) {
		t.Fatal("order-independent equality failed")
	}
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
}

func TestSetItemsSorted(t *testing.T) {
	got := NewSet(5, 1, 3).Items()
	want := []Item{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Items() = %v, want %v", got, want)
		}
	}
}

func TestSetString(t *testing.T) {
	if s := NewSet(2, 1).String(); s != "{1, 2}" {
		t.Fatalf("String() = %q", s)
	}
	var zero Set
	if s := zero.String(); s != "{}" {
		t.Fatalf("empty String() = %q", s)
	}
}

func toSet(xs []uint8) Set {
	items := make([]Item, len(xs))
	for i, x := range xs {
		items[i] = Item(x % 32)
	}
	return NewSet(items...)
}

func TestQuickSetAlgebra(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := toSet(xs), toSet(ys)
		u := a.Union(b)
		// union contains both operands
		if !a.Subset(u) || !b.Subset(u) {
			return false
		}
		// intersection is subset of both
		in := a.Intersection(b)
		if !in.Subset(a) || !in.Subset(b) {
			return false
		}
		// Intersects agrees with Intersection
		if a.Intersects(b) != !in.Empty() {
			return false
		}
		// symmetry
		if a.Intersects(b) != b.Intersects(a) {
			return false
		}
		// inclusion-exclusion on sizes
		return u.Len() == a.Len()+b.Len()-in.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
