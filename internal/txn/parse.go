package txn

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseProgram reads a transaction program from the indentation-based text
// format used by cmd/rtanalyze and the documentation:
//
//	program transfer
//	node transfer accesses 0
//	  node transfer/ok accesses 1
//	  node transfer/overdraft accesses 1 3 4
//
// Rules: the first non-comment line is "program <name>"; each following
// line is "node <label> [accesses <item>...]"; nesting is by indentation
// (any consistent mix of spaces, two columns per level is conventional);
// the first node is the root and must be the least indented; '#' starts a
// comment. The resulting program is validated.
func ParseProgram(r io.Reader) (*Program, error) {
	sc := bufio.NewScanner(r)
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := sc.Text()
			if i := strings.IndexByte(line, '#'); i >= 0 {
				line = line[:i]
			}
			if strings.TrimSpace(line) == "" {
				continue
			}
			return line, true
		}
		return "", false
	}

	head, ok := next()
	if !ok {
		return nil, fmt.Errorf("txn: empty program text")
	}
	fields := strings.Fields(head)
	if len(fields) != 2 || fields[0] != "program" {
		return nil, fmt.Errorf("txn: line %d: expected \"program <name>\", got %q", lineNo, strings.TrimSpace(head))
	}
	p := &Program{Name: fields[1]}

	type frame struct {
		indent int
		node   *Node
	}
	var stack []frame

	for {
		line, ok := next()
		if !ok {
			break
		}
		indent := len(line) - len(strings.TrimLeft(line, " \t"))
		fields := strings.Fields(line)
		if len(fields) < 2 || fields[0] != "node" {
			return nil, fmt.Errorf("txn: line %d: expected \"node <label> [accesses ...]\"", lineNo)
		}
		n := &Node{Label: fields[1]}
		if len(fields) > 2 {
			if fields[2] != "accesses" {
				return nil, fmt.Errorf("txn: line %d: expected \"accesses\", got %q", lineNo, fields[2])
			}
			var items []Item
			for _, f := range fields[3:] {
				v, err := strconv.Atoi(f)
				if err != nil || v < 0 {
					return nil, fmt.Errorf("txn: line %d: bad item %q", lineNo, f)
				}
				items = append(items, Item(v))
			}
			n.Accesses = NewSet(items...)
		}

		// Pop frames at >= this indentation; the remaining top is the parent.
		for len(stack) > 0 && stack[len(stack)-1].indent >= indent {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			if p.Root != nil {
				return nil, fmt.Errorf("txn: line %d: second root %q (only one least-indented node allowed)", lineNo, n.Label)
			}
			p.Root = n
		} else {
			parent := stack[len(stack)-1].node
			parent.Children = append(parent.Children, n)
		}
		stack = append(stack, frame{indent: indent, node: n})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("txn: reading program: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// WriteProgram renders a program in the text format accepted by
// ParseProgram (round-trip safe for valid programs).
func WriteProgram(w io.Writer, p *Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "program %s\n", p.Name); err != nil {
		return err
	}
	var walk func(n *Node, depth int) error
	walk = func(n *Node, depth int) error {
		line := strings.Repeat("  ", depth) + "node " + n.Label
		if !n.Accesses.Empty() {
			parts := make([]string, 0, n.Accesses.Len())
			items := n.Accesses.Items()
			sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
			for _, it := range items {
				parts = append(parts, strconv.Itoa(int(it)))
			}
			line += " accesses " + strings.Join(parts, " ")
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(p.Root, 0)
}
