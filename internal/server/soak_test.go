package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestSoakOverload drives the server well past saturation with a bursty
// client and checks the graceful-degradation contract end to end:
//
//   - shed requests (engine admission or inflight bound) answer fast —
//     overload must not turn into queueing delay for the shed traffic;
//   - admitted requests keep a bounded p99 response — the engine never
//     builds an unbounded backlog because infeasible work is refused;
//   - after drain the process has no leaked goroutines — every handler,
//     driver and helper wound down.
//
// The test runs under -race in CI.
func TestSoakOverload(t *testing.T) {
	baseline := runtime.NumGoroutine()

	cfg := core.MainMemoryConfig(core.CCA, 42)
	cfg.Admission = core.AdmissionConfig{Mode: core.RejectInfeasible}
	opts := Options{
		Core: cfg,
		// Speed 50 fixes the wall-clock service time of a transaction
		// (2 items × 2 sim-ms = 80µs wall) independent of machine speed,
		// so 24 tight-loop workers always outrun the engine's capacity and
		// the run reliably saturates — with or without the race detector.
		Service:      core.ServiceOptions{Speed: 50, SampleWindow: 2048},
		MaxInflight:  32,
		DrainTimeout: 2 * time.Second,
	}
	_, base, stop := startServer(t, opts)

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	defer client.CloseIdleConnections()

	const (
		workers   = 24
		perWorker = 50
	)
	var (
		committed atomic.Int64
		shed      atomic.Int64 // 503 with Retry-After (capacity or admission)
		other     atomic.Int64

		mu       sync.Mutex
		okLatMs  []float64
		badLatMs []float64
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				// Bursty: a clump of back-to-back requests, then a lull.
				if i%10 == 0 {
					time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
				}
				req := SubmitRequest{
					Items: []int{rng.Intn(30), rng.Intn(30)},
					// 2 sim-ms per item on one CPU, 20 sim-ms deadline:
					// at most ~5 transactions fit the deadline, so 24
					// concurrent workers guarantee admission shedding.
					Compute:  jsonDuration(2 * time.Millisecond),
					Deadline: jsonDuration(20 * time.Millisecond),
				}
				body, _ := json.Marshal(req)
				start := time.Now()
				resp, err := client.Post(base+"/submit", "application/json", bytes.NewReader(body))
				lat := float64(time.Since(start)) / float64(time.Millisecond)
				if err != nil {
					t.Errorf("worker %d: POST: %v", w, err)
					return
				}
				var out SubmitResponse
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if decErr != nil {
					t.Errorf("worker %d: decode: %v", w, decErr)
					return
				}
				switch {
				case resp.StatusCode == http.StatusOK && out.State == "committed":
					committed.Add(1)
					mu.Lock()
					okLatMs = append(okLatMs, lat)
					mu.Unlock()
				case resp.StatusCode == http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("worker %d: 503 without Retry-After (state %q)", w, out.State)
						return
					}
					shed.Add(1)
					mu.Lock()
					badLatMs = append(badLatMs, lat)
					mu.Unlock()
				default:
					other.Add(1)
					t.Errorf("worker %d: unexpected status %d state %q", w, resp.StatusCode, out.State)
					return
				}
			}
		}()
	}
	wg.Wait()

	if t.Failed() {
		return
	}
	// The run must have actually saturated: both committed and shed
	// traffic in meaningful volume.
	if c := committed.Load(); c < 50 {
		t.Fatalf("only %d commits; the soak never made progress", c)
	}
	if s := shed.Load(); s < 50 {
		t.Fatalf("only %d shed responses; the soak never saturated", s)
	}

	p99 := func(ms []float64) float64 {
		sort.Float64s(ms)
		return ms[len(ms)*99/100]
	}
	mu.Lock()
	okP99, shedP99 := p99(okLatMs), p99(badLatMs)
	mu.Unlock()
	// Bounds are generous (race detector, loaded CI machines): what they
	// rule out is unbounded queueing, where overload pushes latencies
	// toward the test's own lifetime.
	if shedP99 > 2000 {
		t.Fatalf("shed p99 %.1fms; shedding must answer fast under overload", shedP99)
	}
	if okP99 > 5000 {
		t.Fatalf("admitted p99 %.1fms; admitted work queued without bound", okP99)
	}
	t.Logf("soak: %d committed (p99 %.1fms), %d shed (p99 %.1fms)",
		committed.Load(), okP99, shed.Load(), shedP99)

	// Graceful drain, then the goroutine-leak check: everything the server
	// started must wind down. The runtime needs a moment to retire
	// finished goroutines, so poll with a deadline instead of asserting
	// once. A small slack absorbs runtime helpers (GC workers, the race
	// runtime) that come and go.
	if err := stop(); err != nil {
		t.Fatalf("Serve returned %v on drain", err)
	}
	client.CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after drain: %d now vs %d at start\n%s", now, baseline, buf[:n])
		}
		runtime.GC()
		time.Sleep(50 * time.Millisecond)
	}
}
