// The batcher is the amortisation layer between the front-ends and the
// engine: every protocol (HTTP/JSON, binary wire) enqueues decoded
// submissions here, and per-queue flushers inject everything that
// accumulated while the engine driver was busy in a single SubmitBatch
// call. Under load the per-transaction cross-goroutine handoff — the
// dominant serving cost once parsing is cheap — collapses to one driver
// wakeup per batch. Queues are sharded to align with the engine shards
// (item i lives on shard i % N), so a flusher's batch tends to be
// single-shard and takes the sharded service's direct routing path.
package server

import (
	"sync"

	"repro/internal/core"
	"repro/internal/wire"
)

// pending is one decoded submission waiting for batch injection.
type pending struct {
	id  uint64
	req core.ServiceRequest
	c   wire.Completer
}

type batcher struct {
	svc      Service
	queues   []chan pending
	maxBatch int
	stop     chan struct{}
	wg       sync.WaitGroup

	mu     sync.RWMutex
	closed bool
}

func newBatcher(svc Service, shards, depth int) *batcher {
	if shards < 1 {
		shards = 1
	}
	if depth < 1 {
		depth = 256
	}
	qs := make([]chan pending, shards)
	for i := range qs {
		qs[i] = make(chan pending, depth)
	}
	return &batcher{
		svc:      svc,
		queues:   qs,
		maxBatch: 512,
		stop:     make(chan struct{}),
	}
}

func (b *batcher) start() {
	for _, q := range b.queues {
		b.wg.Add(1)
		go b.flusher(q)
	}
}

// shutdown stops the flushers and fails anything still queued. Every
// enqueued submission is guaranteed an answer: entries that reached a
// flusher were answered through SubmitBatch's Done contract, and the
// final sweep here answers the stragglers.
func (b *batcher) shutdown() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	close(b.stop)
	b.wg.Wait()
	for _, q := range b.queues {
		for {
			select {
			case p := <-q:
				p.c.Complete(p.id, core.ServiceOutcome{}, core.ErrDraining)
			default:
			}
			if len(q) == 0 {
				break
			}
		}
	}
}

// enqueue routes one submission to its shard-aligned queue. False means
// the queue is full or the batcher is shut down — an overload shed the
// caller must answer itself (nothing will be called back).
func (b *batcher) enqueue(id uint64, req core.ServiceRequest, c wire.Completer) bool {
	qi := 0
	if n := len(b.queues); n > 1 && len(req.Items) > 0 {
		if it := int(req.Items[0]); it >= 0 {
			qi = it % n
		}
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return false
	}
	select {
	case b.queues[qi] <- pending{id: id, req: req, c: c}:
		return true
	default:
		return false
	}
}

func (b *batcher) flusher(q chan pending) {
	defer b.wg.Done()
	batch := make([]pending, 0, b.maxBatch)
	subs := make([]core.Submission, 0, b.maxBatch)
	for {
		select {
		case p := <-q:
			batch = append(batch[:0], p)
			b.fill(&batch, q)
			subs = b.inject(batch, subs[:0])
		case <-b.stop:
			// Final greedy sweep; the service is draining by now, so
			// these resolve instantly with ErrDraining.
			for {
				select {
				case p := <-q:
					batch = append(batch[:0], p)
					b.fill(&batch, q)
					subs = b.inject(batch, subs[:0])
				default:
					return
				}
			}
		}
	}
}

// fill greedily drains q into batch — everything that arrived while the
// driver was busy rides the same injection.
func (b *batcher) fill(batch *[]pending, q chan pending) {
	for len(*batch) < b.maxBatch {
		select {
		case p := <-q:
			*batch = append(*batch, p)
		default:
			return
		}
	}
}

func (b *batcher) inject(batch []pending, subs []core.Submission) []core.Submission {
	for i := range batch {
		p := batch[i]
		subs = append(subs, core.Submission{
			Req:  p.req,
			Done: func(o core.ServiceOutcome, err error) { p.c.Complete(p.id, o, err) },
		})
	}
	handles := b.svc.SubmitBatch(subs)
	for i := range handles {
		batch[i].c.OnHandle(batch[i].id, handles[i])
	}
	return subs
}
