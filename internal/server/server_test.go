package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// startServer builds a server on a loopback listener and runs it until the
// returned stop func is called (which also waits for Serve to return and
// reports its error).
func startServer(t *testing.T, opts Options) (*Server, string, func() error) {
	t.Helper()
	if opts.Service.Speed == 0 {
		opts.Service.Speed = 5000
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	stopped := false
	stop := func() error {
		if stopped {
			return nil
		}
		stopped = true
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(30 * time.Second):
			t.Fatal("Serve did not return after cancel")
			return nil
		}
	}
	t.Cleanup(func() { _ = stop() })
	return s, "http://" + ln.Addr().String(), stop
}

func postSubmit(t *testing.T, base string, req SubmitRequest) (int, SubmitResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /submit: %v", err)
	}
	defer resp.Body.Close()
	var out SubmitResponse
	if resp.StatusCode != http.StatusMethodNotAllowed && resp.StatusCode != http.StatusBadRequest {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode, out
}

// TestServerSubmitCommit drives a commit end to end over HTTP.
func TestServerSubmitCommit(t *testing.T) {
	_, base, _ := startServer(t, Options{Core: core.MainMemoryConfig(core.CCA, 1)})
	code, out := postSubmit(t, base, SubmitRequest{
		Items:    []int{1, 2, 3},
		Compute:  jsonDuration(time.Millisecond),
		Deadline: jsonDuration(500 * time.Millisecond),
	})
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200 (%+v)", code, out)
	}
	if out.State != "committed" || out.Missed {
		t.Fatalf("outcome %+v, want committed and met", out)
	}
	if out.ResponseMs <= 0 || out.FinishMs < out.ArrivalMs {
		t.Fatalf("incoherent timings: %+v", out)
	}
}

// TestServerBadRequests checks the 400/405 paths.
func TestServerBadRequests(t *testing.T) {
	_, base, _ := startServer(t, Options{Core: core.MainMemoryConfig(core.CCA, 2)})

	resp, err := http.Get(base + "/submit")
	if err != nil {
		t.Fatalf("GET /submit: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /submit: status %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(base+"/submit", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatalf("POST bad json: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d, want 400", resp.StatusCode)
	}

	// Valid JSON, invalid transaction (no items).
	code, _ := postSubmit(t, base, SubmitRequest{Compute: jsonDuration(time.Millisecond), Deadline: jsonDuration(time.Second)})
	if code != http.StatusBadRequest {
		t.Fatalf("empty items: status %d, want 400", code)
	}
}

// TestServerDurationCodec checks both accepted deadline encodings.
func TestServerDurationCodec(t *testing.T) {
	var d jsonDuration
	if err := json.Unmarshal([]byte(`"40ms"`), &d); err != nil || time.Duration(d) != 40*time.Millisecond {
		t.Fatalf("string form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`2.5`), &d); err != nil || time.Duration(d) != 2500*time.Microsecond {
		t.Fatalf("number form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"nope"`), &d); err == nil {
		t.Fatal("garbage duration accepted")
	}
}

// TestServerShedsAtCapacity checks the bounded accept queue: with the one
// slot occupied by a slow transaction, the next submission is shed with a
// fast 503 + Retry-After instead of queueing.
func TestServerShedsAtCapacity(t *testing.T) {
	opts := Options{
		Core:        core.MainMemoryConfig(core.CCA, 3),
		Service:     core.ServiceOptions{Speed: 50}, // slow enough to hold the slot
		MaxInflight: 1,
	}
	_, base, _ := startServer(t, opts)

	slow := make(chan int, 1)
	go func() {
		code, _ := postSubmit(t, base, SubmitRequest{
			Items:    []int{1},
			Compute:  jsonDuration(2 * time.Second), // 40ms wall at speed 50
			Deadline: jsonDuration(time.Hour),
		})
		slow <- code
	}()
	// Wait until the slow submission holds the inflight slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("slow submission never occupied the inflight slot")
		}
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		var m MetricsResponse
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode metrics: %v", err)
		}
		if m.Inflight >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	body, _ := json.Marshal(SubmitRequest{Items: []int{2}, Compute: jsonDuration(time.Millisecond), Deadline: jsonDuration(time.Second)})
	resp, err := http.Post(base+"/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("shed POST: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d body %s, want 503", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("shed response took %v; shedding must be fast", elapsed)
	}
	if code := <-slow; code != http.StatusOK {
		t.Fatalf("slow submission finished with %d, want 200", code)
	}
}

// TestServerAdmissionRejects checks that an engine-level admission
// rejection surfaces as 503 + Retry-After with state "rejected".
func TestServerAdmissionRejects(t *testing.T) {
	cfg := core.MainMemoryConfig(core.CCA, 4)
	cfg.Admission = core.AdmissionConfig{Mode: core.RejectInfeasible}
	_, base, _ := startServer(t, Options{Core: cfg})

	items := make([]int, 25)
	for i := range items {
		items[i] = i
	}
	code, out := postSubmit(t, base, SubmitRequest{
		Items:    items,
		Compute:  jsonDuration(time.Millisecond),
		Deadline: jsonDuration(2 * time.Millisecond), // infeasible
	})
	if code != http.StatusServiceUnavailable || out.State != "rejected" {
		t.Fatalf("infeasible submit: status %d state %q, want 503 rejected", code, out.State)
	}
}

// TestServerObservability checks /metrics, /healthz, /debug/vars and
// /debug/pprof respond sensibly.
func TestServerObservability(t *testing.T) {
	_, base, _ := startServer(t, Options{Core: core.MainMemoryConfig(core.CCA, 5)})
	if code, _ := postSubmit(t, base, SubmitRequest{
		Items: []int{4}, Compute: jsonDuration(time.Millisecond), Deadline: jsonDuration(time.Second),
	}); code != http.StatusOK {
		t.Fatalf("seed submit: %d", code)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var m MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	resp.Body.Close()
	if m.Accepted != 1 || m.Engine == nil {
		t.Fatalf("metrics %+v: want accepted=1 with engine counters", m)
	}
	eng, _ := json.Marshal(m.Engine)
	var res struct {
		Committed int `json:"committed"`
	}
	_ = json.Unmarshal(eng, &res)
	if res.Committed != 1 {
		t.Fatalf("engine counters %s: want committed=1", eng)
	}

	for _, path := range []string{"/healthz", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}

// TestServerPanicIsolation checks that a handler panic answers 500 on that
// request alone: the engine and subsequent requests are unaffected.
func TestServerPanicIsolation(t *testing.T) {
	s, base, _ := startServer(t, Options{Core: core.MainMemoryConfig(core.CCA, 6)})
	s.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })

	resp, err := http.Get(base + "/boom")
	if err != nil {
		t.Fatalf("GET /boom: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500", resp.StatusCode)
	}
	if got := s.panics.Load(); got != 1 {
		t.Fatalf("panic counter %d, want 1", got)
	}
	// The service survived and still commits.
	code, out := postSubmit(t, base, SubmitRequest{
		Items: []int{1}, Compute: jsonDuration(time.Millisecond), Deadline: jsonDuration(time.Second),
	})
	if code != http.StatusOK || out.State != "committed" {
		t.Fatalf("post-panic submit: %d %+v", code, out)
	}
}

// TestServerGracefulShutdown checks the drain sequence: cancelling Serve's
// context wounds the in-flight transaction (its handler answers 503
// dropped), Serve returns nil, and the listener is closed afterwards.
func TestServerGracefulShutdown(t *testing.T) {
	opts := Options{
		Core:         core.MainMemoryConfig(core.CCA, 7),
		Service:      core.ServiceOptions{Speed: 50},
		DrainTimeout: 50 * time.Millisecond,
	}
	_, base, stop := startServer(t, opts)

	inflight := make(chan SubmitResponse, 1)
	codes := make(chan int, 1)
	go func() {
		code, out := postSubmit(t, base, SubmitRequest{
			Items:    []int{1, 2, 3},
			Compute:  jsonDuration(time.Minute), // far longer than the drain budget
			Deadline: jsonDuration(time.Hour),
		})
		codes <- code
		inflight <- out
	}()
	time.Sleep(20 * time.Millisecond) // let the submission reach the engine

	start := time.Now()
	if err := stop(); err != nil {
		t.Fatalf("Serve returned %v, want nil on cancellation", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("shutdown took %v", elapsed)
	}
	select {
	case code := <-codes:
		out := <-inflight
		if code != http.StatusServiceUnavailable || out.State != "dropped" {
			t.Fatalf("in-flight request answered %d %+v, want 503 dropped", code, out)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never answered during drain")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestServerEngineFailureSurfaces checks that a live safety-oracle
// violation stops the service, makes Serve return the failure, and turns
// /healthz into a 503 naming it.
func TestServerEngineFailureSurfaces(t *testing.T) {
	opts := Options{
		Core:    core.MainMemoryConfig(core.CCA, 8),
		Service: core.ServiceOptions{Speed: 5000, Oracle: true},
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	// A lower-priority transaction wounding a higher-priority one violates
	// Lemma 1; the live oracle must stop the service on observing it.
	if err := s.svc.InjectEvent(trace.Event{Kind: trace.Wound, Txn: 1, Other: 2, Priority: 1, OtherPriority: 5}); err != nil {
		t.Fatalf("InjectEvent: %v", err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Serve returned nil after an oracle violation")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after the oracle violation")
	}
	if s.svc.Err() == nil {
		t.Fatal("Err() nil after an oracle violation")
	}
	// The handler still reports the failure even though the listener is
	// closed: exercise /healthz directly against the mux.
	req, _ := http.NewRequest(http.MethodGet, "/healthz", nil)
	rec := newRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.status != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after violation: status %d, want 503", rec.status)
	}
	if !bytes.Contains(rec.body.Bytes(), []byte("oracle")) {
		t.Fatalf("/healthz body %q does not name the oracle", rec.body.String())
	}
}

// recorder is a minimal ResponseWriter for post-shutdown handler checks.
type recorder struct {
	h      http.Header
	status int
	body   bytes.Buffer
}

func newRecorder() *recorder             { return &recorder{h: make(http.Header), status: 200} }
func (r *recorder) Header() http.Header  { return r.h }
func (r *recorder) WriteHeader(code int) { r.status = code }
func (r *recorder) Write(b []byte) (int, error) {
	return r.body.Write(b)
}
