package server

// The server over a sharded service: routing is invisible to clients —
// single-shard and cross-shard submissions commit over plain /submit, and
// /metrics reports the shards merged into one system-wide snapshot.

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
)

func TestServerShardedSubmitAndMetrics(t *testing.T) {
	cfg := core.MainMemoryConfig(core.CCA, 1)
	cfg.Workload.DBSize = 1000
	_, base, _ := startServer(t, Options{
		Core:   cfg,
		Shards: 4,
		Epoch:  10 * time.Millisecond,
	})

	// Single-shard: items 3, 7 both live on shard 3.
	code, out := postSubmit(t, base, SubmitRequest{
		Items:    []int{3, 7},
		Compute:  jsonDuration(time.Millisecond),
		Deadline: jsonDuration(2 * time.Second),
	})
	if code != http.StatusOK || out.State != "committed" {
		t.Fatalf("single-shard submit: status %d, %+v", code, out)
	}

	// Cross-shard: items on shards 0 and 1, epoch-batched.
	code, out = postSubmit(t, base, SubmitRequest{
		Items:    []int{4, 5},
		Compute:  jsonDuration(time.Millisecond),
		Deadline: jsonDuration(5 * time.Second),
	})
	if code != http.StatusOK || out.State != "committed" {
		t.Fatalf("cross-shard submit: status %d, %+v", code, out)
	}

	// /metrics merges the shards: 1 single-shard commit + 2 cross parts.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var m struct {
		Engine struct {
			Committed int `json:"committed"`
		} `json:"engine"`
		Live int `json:"live"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	if m.Engine.Committed != 3 {
		t.Fatalf("merged Committed = %d, want 3 (1 direct + 2 cross parts)", m.Engine.Committed)
	}
}
