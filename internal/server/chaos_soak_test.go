package server

import (
	"bytes"
	"context"
	"encoding/json"

	"io"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/txn"
	"repro/internal/wire"
)

// startDual boots the dual-protocol server and returns both listener
// addresses plus a stop func.
func startDual(t *testing.T, opts Options) (httpAddr, wireAddr string, stop func() error) {
	t.Helper()
	if opts.Service.Speed == 0 {
		opts.Service.Speed = 500
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wireLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ServeListeners(ctx, httpLn, wireLn) }()
	stopped := false
	stop = func() error {
		if stopped {
			return nil
		}
		stopped = true
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(30 * time.Second):
			t.Fatal("ServeListeners did not return after cancel")
			return nil
		}
	}
	t.Cleanup(func() { _ = stop() })
	return httpLn.Addr().String(), wireLn.Addr().String(), stop
}

// startChaosProxy puts a seeded chaos proxy in front of target and
// returns its address.
func startChaosProxy(t *testing.T, target string, seed int64, plan chaos.Plan) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := chaos.NewProxy(ln, target, seed, plan)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Serve() }()
	t.Cleanup(func() {
		if err := p.Close(); err != nil {
			t.Errorf("proxy close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("proxy serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// TestChaosSoak is the capstone: rtload-shaped traffic over both
// protocols through a fault-injecting proxy, under -race in CI. The
// contract it enforces:
//
//   - every submission gets exactly one terminal answer — an outcome or
//     an error, never a hang, never a double answer (each worker counts
//     its answers and the totals must match the issues);
//   - error rates stay bounded: chaos severs connections, but the
//     surviving ones keep committing — a fault schedule must degrade
//     throughput, not correctness;
//   - after drain the process has no leaked goroutines: the proxy, both
//     front-ends, the resilient clients and the engine all wind down.
func TestChaosSoak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	cfg := core.MainMemoryConfig(core.CCA, 42)
	cfg.Admission = core.AdmissionConfig{Mode: core.RejectInfeasible}
	httpAddr, wireAddr, stop := startDual(t, Options{
		Core:            cfg,
		Service:         core.ServiceOptions{Speed: 500},
		MaxInflight:     128,
		DrainTimeout:    2 * time.Second,
		WireIdleTimeout: 2 * time.Second,
	})

	plan := chaos.Plan{
		ResetProb:           0.25,
		ResetAfterMeanBytes: 4096,
		TruncateProb:        0.5,
		BlackholeProb:       0.1,
		BlackholeAfterMean:  50 * time.Millisecond,
		BlackholeFor:        300 * time.Millisecond,
		ThrottleProb:        0.25,
		ThrottleBytesPerSec: 256 << 10,
		WriteDelayProb:      0.2,
		WriteDelayMax:       5 * time.Millisecond,
	}
	wireProxy := startChaosProxy(t, wireAddr, 7, plan)
	httpProxy := startChaosProxy(t, httpAddr, 8, plan)

	const (
		wireWorkers = 6
		wirePer     = 40
		httpWorkers = 4
		httpPer     = 25
	)
	var (
		issued    atomic.Int64
		answered  atomic.Int64
		committed atomic.Int64
		failed    atomic.Int64 // transport/chaos errors — allowed, bounded
	)

	var wg sync.WaitGroup
	for w := 0; w < wireWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One resilient client per worker: redials after injected
			// resets, resubmits only provably-unsent requests.
			rc := wire.NewResilient(wireProxy, wire.ResilientOptions{
				DialTimeout: 2 * time.Second,
				Client:      wire.ClientOptions{RequestTimeout: 2 * time.Second},
				BackoffBase: 5 * time.Millisecond,
				BackoffMax:  100 * time.Millisecond,
				Seed:        int64(w),
			})
			defer rc.Close()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			for i := 0; i < wirePer; i++ {
				issued.Add(1)
				resp, err := rc.Submit(&wire.SubmitReq{
					Items:    []txn.Item{txn.Item(rng.Intn(20)), txn.Item(20 + rng.Intn(10))},
					Compute:  100 * time.Microsecond,
					Deadline: 2 * time.Second,
				})
				answered.Add(1)
				switch {
				case err != nil:
					failed.Add(1)
				case resp.Status == wire.StatusCommitted:
					committed.Add(1)
				}
			}
		}(w)
	}
	for w := 0; w < httpWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hc := &http.Client{Timeout: 2 * time.Second}
			defer hc.CloseIdleConnections()
			rng := rand.New(rand.NewSource(int64(w)*104729 + 1))
			url := "http://" + httpProxy + "/submit"
			for i := 0; i < httpPer; i++ {
				issued.Add(1)
				body, _ := json.Marshal(SubmitRequest{
					Items:    []int{rng.Intn(20), 20 + rng.Intn(10)},
					Compute:  jsonDuration(100 * time.Microsecond),
					Deadline: jsonDuration(2 * time.Second),
				})
				resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
				answered.Add(1)
				if err != nil {
					failed.Add(1)
					continue
				}
				var out SubmitResponse
				if json.NewDecoder(resp.Body).Decode(&out) == nil && out.State == "committed" {
					committed.Add(1)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}

	loadDone := make(chan struct{})
	go func() { wg.Wait(); close(loadDone) }()
	select {
	case <-loadDone:
	case <-time.After(120 * time.Second):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("chaos soak wedged: %d/%d answered\n%s",
			answered.Load(), issued.Load(), buf[:n])
	}

	total := int64(wireWorkers*wirePer + httpWorkers*httpPer)
	if issued.Load() != total || answered.Load() != total {
		t.Fatalf("answer accounting broken: issued %d answered %d want %d",
			issued.Load(), answered.Load(), total)
	}
	if committed.Load() == 0 {
		t.Fatalf("nothing committed through chaos: %d failed of %d", failed.Load(), total)
	}
	// Bounded errors: faults sever individual connections, not the
	// service. The plan leaves most connections unfaulted, so a majority
	// of requests must still land.
	if failed.Load() > total*3/4 {
		t.Fatalf("error rate unbounded: %d/%d failed", failed.Load(), total)
	}
	t.Logf("chaos soak: %d committed, %d transport failures of %d", committed.Load(), failed.Load(), total)

	if err := stop(); err != nil {
		t.Fatalf("drain under chaos: %v", err)
	}
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(15 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after chaos drain: %d vs baseline %d\n%s", now, baseline, buf[:n])
		}
		runtime.GC()
		time.Sleep(50 * time.Millisecond)
	}
}

// TestShardPanicDegradesNotDead: a supervised shard driver panic turns
// into failed submissions and a degraded-but-200 /healthz; the other
// shards keep serving and drain stays clean.
func TestShardPanicDegradesNotDead(t *testing.T) {
	s, base, stop := startServer(t, Options{
		Core:      core.MainMemoryConfig(core.CCA, 11),
		Shards:    4,
		Supervise: shard.SuperviseOptions{Enabled: true},
	})

	// Healthy and not degraded to start.
	body := getBody(t, base+"/healthz")
	if !strings.HasPrefix(body, "ok") || !strings.Contains(body, "degraded=false") {
		t.Fatalf("healthz before panic: %q", body)
	}

	sv, ok := s.svc.(*shard.Service)
	if !ok {
		t.Fatalf("supervised options built %T, want *shard.Service", s.svc)
	}
	if err := sv.InjectShardPanic(2, "server chaos"); err != nil {
		t.Fatalf("InjectShardPanic: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !sv.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("panic never degraded the service")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// /healthz: still 200, still "ok"-prefixed, now degraded.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d after contained panic, want 200 (%s)", resp.StatusCode, b)
	}
	if !strings.HasPrefix(string(b), "ok") || !strings.Contains(string(b), "degraded=true") {
		t.Fatalf("healthz body %q, want ok + degraded=true", b)
	}

	// /metrics reports the supervision snapshot.
	var m MetricsResponse
	if err := json.Unmarshal([]byte(getBody(t, base+"/metrics")), &m); err != nil {
		t.Fatal(err)
	}
	if !m.Degraded || m.Supervision == nil || m.Supervision.Failures != 1 {
		t.Fatalf("metrics %+v, want degraded with 1 supervision failure", m)
	}

	// Shards 0, 1, 3 still commit (single-item submissions route direct).
	for _, item := range []int{0, 1, 3} {
		code, out := postSubmit(t, base, SubmitRequest{
			Items:    []int{item},
			Compute:  jsonDuration(time.Millisecond),
			Deadline: jsonDuration(2 * time.Second),
		})
		if code != http.StatusOK || out.State != "committed" {
			t.Fatalf("item %d after shard-2 death: %d %+v", item, code, out)
		}
	}
	// The dead shard's traffic gets an error response, not a hang.
	code, _ := postSubmit(t, base, SubmitRequest{
		Items:    []int{2},
		Compute:  jsonDuration(time.Millisecond),
		Deadline: jsonDuration(2 * time.Second),
	})
	if code == http.StatusOK {
		t.Fatalf("dead shard answered %d, want an error status", code)
	}

	if err := stop(); err != nil {
		t.Fatalf("drain with a dead shard: %v", err)
	}
}

// TestSupervisedRestartServesAgain: with restart enabled the panicked
// shard comes back and its item range commits again, end to end over
// HTTP.
func TestSupervisedRestartServesAgain(t *testing.T) {
	s, base, _ := startServer(t, Options{
		Core:      core.MainMemoryConfig(core.CCA, 12),
		Shards:    2,
		Supervise: shard.SuperviseOptions{Enabled: true, Restart: true},
	})
	sv := s.svc.(*shard.Service)
	if err := sv.InjectShardPanic(1, "restart"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		code, out := postSubmit(t, base, SubmitRequest{
			Items:    []int{1},
			Compute:  jsonDuration(time.Millisecond),
			Deadline: jsonDuration(2 * time.Second),
		})
		if code == http.StatusOK && out.State == "committed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted shard never served again: %d %+v (%+v)",
				code, out, sv.SupervisionStats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := sv.SupervisionStats(); st.Restarts < 1 {
		t.Fatalf("supervision stats %+v, want >= 1 restart", st)
	}
	if !sv.Degraded() {
		t.Fatal("degraded flag cleared by restart; must stay sticky")
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
