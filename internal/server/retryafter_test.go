package server

// Retry-After derivation: a 503's Retry-After header must track the
// admission state — "1" on an idle service, the estimated drain time of
// the live backlog when loaded — instead of the old hardcoded "1".

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
)

func TestRetryAfterTracksLoad(t *testing.T) {
	// Slow service: at Speed 0.001, one 10ms-compute transaction occupies
	// the engine for ~10s of wall time, so the live set persists while we
	// probe. MaxInflight 1 makes the second submission shed.
	opts := Options{
		Core:        core.MainMemoryConfig(core.CCA, 1),
		MaxInflight: 1,
	}
	opts.Service.Speed = 0.001
	s, base, _ := startServer(t, opts)

	// Idle: no live transactions → shed (from capacity) says retry in 1s.
	if got := s.retryAfterSecs(); got != 1 {
		t.Fatalf("idle retryAfterSecs = %d, want 1", got)
	}

	// Occupy the only inflight slot (and the engine) with a long
	// transaction whose client never gives up.
	bg, bgCancel := context.WithCancel(context.Background())
	defer bgCancel()
	launched := make(chan struct{})
	go func() {
		body, _ := json.Marshal(SubmitRequest{
			Items:    []int{1},
			Compute:  jsonDuration(10 * time.Millisecond),
			Deadline: jsonDuration(time.Hour),
		})
		req, _ := http.NewRequestWithContext(bg, http.MethodPost, base+"/submit", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		close(launched)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-launched

	// Wait until the background submission holds the only inflight slot —
	// a probe before that would be admitted and, at this speed, take ages.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.inflight) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background submission never became inflight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Wait out the stats cache so the estimate sees the live transaction.
	time.Sleep(2 * statsCacheTTL)
	resp, err := http.Post(base+"/submit", "application/json",
		bytes.NewReader(mustJSON(t, SubmitRequest{
			Items:    []int{2},
			Compute:  jsonDuration(time.Millisecond),
			Deadline: jsonDuration(time.Second),
		})))
	if err != nil {
		t.Fatalf("probe POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("probe status %d, want 503 (server at capacity)", resp.StatusCode)
	}
	header := resp.Header.Get("Retry-After")
	secs, err := time.ParseDuration(header + "s")
	if err != nil || secs < 2*time.Second {
		t.Fatalf("loaded Retry-After = %q, want >= 2 seconds (live backlog at Speed 0.001)", header)
	}
	// One 20-update × 4ms transaction on one CPU is ~80ms of sim work →
	// 80s of wall time at Speed 0.001, which the clamp caps at 30.
	if secs > 30*time.Second {
		t.Fatalf("Retry-After %v above the 30s clamp", secs)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
