package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
)

// TestJSONDurationRejectsNonsense: the JSON codec must refuse negative
// and non-finite compute/deadline values instead of admitting them into
// the engine (the binary codec applies the same rule in
// wire.DecodeSubmit, covered by the wire tests).
func TestJSONDurationRejectsNonsense(t *testing.T) {
	for _, tc := range []struct {
		in string
		ok bool
	}{
		{`"40ms"`, true},
		{`2.5`, true},
		{`0`, true}, // zero passes the codec; the engine rejects it with its own message
		{`"-5ms"`, false},
		{`-3`, false},
		{`1e309`, false},       // +Inf after parsing
		{`1e308`, false},       // finite but overflows int64 nanoseconds
		{`"not-a-dur"`, false},
		{`{"ms":1}`, false},
	} {
		var d jsonDuration
		err := json.Unmarshal([]byte(tc.in), &d)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.in, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: accepted as %v, want error", tc.in, time.Duration(d))
		}
	}

	// And end to end: a negative deadline answers 400, not a hang or a
	// 200 with nonsense timings.
	_, base, _ := startServer(t, Options{Core: core.MainMemoryConfig(core.CCA, 31)})
	for _, body := range []string{
		`{"items":[1],"compute":"1ms","deadline":-7}`,
		`{"items":[1],"compute":1e309,"deadline":"1s"}`,
	} {
		resp, err := http.Post(base+"/submit", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", body, resp.StatusCode)
		}
	}
}
