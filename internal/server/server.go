// Package server exposes the wall-clock transaction service (core.Service)
// over HTTP/JSON, engineered to degrade gracefully under real overload:
//
//   - submissions carry the client's deadline and are load-shed by the
//     engine's admission controller (a shed request gets a fast 503 with
//     Retry-After instead of queueing into certain lateness);
//   - concurrency is bounded by an accept semaphore: past the bound the
//     server answers 503 immediately rather than accumulating goroutines;
//   - a departed client's transaction is wounded (context propagation all
//     the way into the engine), so abandoned work stops consuming the CPU;
//   - handler panics are isolated to the request that caused them;
//   - shutdown drains: new work is refused, in-flight transactions finish
//     or are wounded at the drain deadline, and the metrics snapshot stays
//     servable until the very end;
//   - observability is built in: /metrics (engine counters + server-side
//     response percentiles), /healthz (engine/oracle failure surfaces
//     here), /debug/pprof and /debug/vars.
//
// Two front-ends share one serving path: this HTTP/JSON listener and the
// binary wire protocol (internal/wire, enabled via ServeListeners). Both
// decode into core.ServiceRequest and enqueue into the sharded batcher,
// which injects every submission that arrived while the engine driver
// was busy in one SubmitBatch call — so the per-request handoff cost is
// paid per driver wakeup, not per transaction. Overload and drain
// behavior is identical on both: fast shed with an admission-derived
// Retry-After.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Service is the server's view of a wall-clock transaction service. Both
// core.Service (one engine) and shard.Service (N engine shards behind a
// router) satisfy it; the server is agnostic to which is behind it.
type Service interface {
	Run(ctx context.Context) error
	Submit(ctx context.Context, req core.ServiceRequest) (core.ServiceOutcome, error)
	SubmitBatch(subs []core.Submission) []core.SubmitHandle
	Drain(ctx context.Context) error
	Stats() (core.ServiceStats, bool)
	InjectEvent(ev trace.Event) error
	Err() error
	Draining() bool
	// Degraded reports that the service survived an internal failure
	// (e.g. a supervised shard driver panicked and was contained or
	// restarted). The server stays up but advertises the event on
	// /healthz and /metrics.
	Degraded() bool
}

// Options configure the server.
type Options struct {
	// Core is the engine configuration (policy, workload structure,
	// admission control). Admission is the server's load-shedding rule:
	// core.RejectInfeasible turns arrivals that cannot meet their deadline
	// into fast 503s.
	Core core.Config
	// Service tunes the wall-clock service (speed for tests, sample
	// window, live oracle).
	Service core.ServiceOptions
	// Shards partitions the item space across N engine shards (item i →
	// shard i % N): single-shard submissions route directly to their
	// shard, cross-shard ones batch at epoch boundaries (see
	// internal/shard). 0 or 1 runs the classic single-engine service.
	Shards int
	// Epoch is the cross-shard batching interval in simulated time
	// (0 = shard.DefaultEpoch). Ignored unless Shards > 1.
	Epoch time.Duration
	// Supervise contains shard-driver failures: a panicking shard becomes
	// failed-with-error outcomes for its inflight transactions and a
	// degraded /healthz instead of a dead process. Enabling it with
	// Shards <= 1 runs a single supervised shard.
	Supervise shard.SuperviseOptions
	// WireIdleTimeout closes a wire connection that sits idle between
	// frames (slow-loris guard). 0 = wire.DefaultIdleTimeout; negative
	// disables.
	WireIdleTimeout time.Duration
	// MaxInflight bounds concurrently admitted HTTP submissions; past the
	// bound the server sheds with a fast 503 (default 256).
	MaxInflight int
	// DrainTimeout bounds graceful shutdown: in-flight transactions get
	// this long to finish before being wounded (default 5s).
	DrainTimeout time.Duration
	// ReadTimeout and WriteTimeout guard against slow clients holding
	// connections (and their inflight slots) forever (default 15s each).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// WALDir enables the durable submission log: accepted submissions
	// and their outcomes are appended to segment files in this
	// directory, and answers wait for the outcome record's group-commit
	// fsync. Empty (and WALFS nil) disables durability entirely — the
	// submit path is then a proven zero-overhead passthrough.
	WALDir string
	// WALSync is the group-commit coalescing interval (0 = fsync every
	// observed batch; see wal.Options.SyncEvery).
	WALSync time.Duration
	// WALSegmentBytes and WALRetain tune segment rotation and retention
	// (0 = wal defaults).
	WALSegmentBytes int64
	WALRetain       int
	// Recover replays unresolved submissions found in the WAL at
	// startup through the engine (outcomes stamped FlagReplayed).
	// Without it, unresolved records are resolved as aborted — the log
	// converges, nothing re-executes.
	Recover bool
	// WALFS overrides the log's filesystem (tests, crash harness);
	// when set, WALDir is ignored.
	WALFS wal.FS
	// WALFileFaults injects seeded file-level faults (torn writes,
	// short writes, fsync errors, checksum corruption) into every
	// segment file — the crash harness's knob. The zero plan is an
	// identity passthrough.
	WALFileFaults fault.FilePlan
	WALFaultSeed  int64
}

func (o *Options) fillDefaults() {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 256
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 15 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 15 * time.Second
	}
}

// Server is the front-end over one transaction Service (single engine
// or sharded): the HTTP/JSON listener, and optionally the binary wire
// listener (ServeListeners), both feeding the sharded submit batcher.
type Server struct {
	opts  Options
	svc   Service
	mux   *http.ServeMux
	batch *batcher

	inflight chan struct{}

	// statsMu caches the service stats snapshot for retry-after
	// derivation: under overload every shed consults the load estimate,
	// and hammering the driver goroutine with Stats calls would make the
	// overload worse.
	statsMu sync.Mutex
	statsAt time.Time
	stats   core.ServiceStats
	statsOK bool

	// Request counters (also rendered by /metrics).
	accepted atomic.Int64 // submissions that reached the engine
	shed     atomic.Int64 // fast 503s: inflight bound or draining
	rejected atomic.Int64 // engine admission rejections
	badReqs  atomic.Int64
	panics   atomic.Int64
	failed   atomic.Int64 // engine-failure outcomes (500s): outcome unknown

	// wireSrv holds the wire front-end once ServeListeners starts it, so
	// /metrics can render its connection counters.
	wireSrv atomic.Pointer[wire.Server]

	// respHist accumulates wall-clock response times of completed
	// submissions in a fixed-bucket log-scale histogram: constant
	// memory, bounded quantile error, no sample eviction.
	respMu   sync.Mutex
	respHist metrics.Histogram

	finalMu sync.Mutex
	final   core.ServiceStats
	finalOK bool

	// Durability state (nil wal = disabled). recovering is true from
	// construction until the startup replay of unresolved WAL records
	// has finished; replayDone closes at that point so shutdown can
	// order the logger's Close after the replay.
	wal        *wal.Logger
	recovery   *wal.Recovery
	recovering atomic.Bool
	replayDone chan struct{}
	replay     replayState
}

// New builds the server and its engine(s): one core.Service, or a
// shard.Service when Options.Shards > 1.
func New(opts Options) (*Server, error) {
	opts.fillDefaults()
	log, recovery, err := openWAL(&opts)
	if err != nil {
		return nil, err
	}
	var svc Service
	if opts.Shards > 1 || opts.Supervise.Enabled {
		n := opts.Shards
		if n < 1 {
			n = 1
		}
		svc, err = shard.NewService(opts.Core, shard.ServiceOptions{
			Shards:    n,
			Epoch:     opts.Epoch,
			Core:      opts.Service,
			Supervise: opts.Supervise,
			WAL:       log,
		})
	} else {
		opts.Service.WAL = log
		svc, err = core.NewService(opts.Core, opts.Service)
	}
	if err != nil {
		if log != nil {
			_ = log.Close()
		}
		return nil, err
	}
	s := &Server{
		opts:       opts,
		svc:        svc,
		mux:        http.NewServeMux(),
		inflight:   make(chan struct{}, opts.MaxInflight),
		wal:        log,
		recovery:   recovery,
		replayDone: make(chan struct{}),
	}
	if log != nil {
		s.replay.unresolved = len(recovery.Unresolved)
		s.recovering.Store(true)
	} else {
		close(s.replayDone)
	}
	s.batch = newBatcher(svc, opts.Shards, opts.MaxInflight)
	s.mux.HandleFunc("/submit", s.handleSubmit)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux.Handle("/debug/vars", expvar.Handler())
	return s, nil
}

// Service returns the underlying wall-clock service (tests, direct use).
func (s *Server) Service() Service { return s.svc }

// Final returns the metrics snapshot flushed during shutdown, once Serve
// has returned. It reports false if Serve never drained (engine died
// before the snapshot could be taken).
func (s *Server) Final() (core.ServiceStats, bool) {
	s.finalMu.Lock()
	defer s.finalMu.Unlock()
	return s.final, s.finalOK
}

// Handler returns the full HTTP handler with per-request panic isolation.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				// The panic stays confined to this request; the engine
				// and every other connection keep running. If the
				// response was already partly written this is a no-op
				// and the connection just closes.
				s.panics.Add(1)
				http.Error(w, fmt.Sprintf("internal error: %v", p), http.StatusInternalServerError)
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// Serve runs the engine and the HTTP server on ln until ctx is cancelled
// or the engine fails, then shuts down gracefully: refuse new work, drain
// or wound in-flight transactions, stop the listener, stop the engine.
// A cancellation-initiated shutdown returns nil; an engine failure returns
// its error.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	return s.ServeListeners(ctx, ln, nil)
}

// ServeListeners is Serve with an optional second listener speaking the
// binary wire protocol (internal/wire). Both front-ends share the
// batcher, the admission machinery and the drain sequence; wireLn may be
// nil for HTTP only.
func (s *Server) ServeListeners(ctx context.Context, httpLn, wireLn net.Listener) error {
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	svcDone := make(chan error, 1)
	go func() { svcDone <- s.svc.Run(runCtx) }()
	s.batch.start()
	if s.wal != nil {
		// Resolve the crash backlog in the background while the
		// listeners serve; /healthz reports recovering=true until done.
		go s.replayWAL(runCtx)
	}

	hs := &http.Server{
		Handler:      s.Handler(),
		ReadTimeout:  s.opts.ReadTimeout,
		WriteTimeout: s.opts.WriteTimeout,
	}
	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(httpLn) }()

	var ws *wire.Server
	var wireDone chan error
	if wireLn != nil {
		ws = wire.NewServer(wireBackend{s}, wire.ServerOptions{
			MaxInflightPerConn: s.opts.MaxInflight,
			IdleTimeout:        s.opts.WireIdleTimeout,
		})
		s.wireSrv.Store(ws)
		wireDone = make(chan error, 1)
		go func() { wireDone <- ws.Serve(wireLn) }()
	}

	var failure error
	select {
	case <-ctx.Done():
	case err := <-svcDone:
		svcDone = nil
		failure = fmt.Errorf("server: engine stopped: %w", err)
	case err := <-httpDone:
		httpDone = nil
		failure = fmt.Errorf("server: listener failed: %w", err)
	case err := <-wireDone:
		wireDone = nil
		failure = fmt.Errorf("server: wire listener failed: %w", err)
	}

	// Graceful drain. Order matters: Drain first flips the service to
	// refusing submissions (503s/sheds for anyone still connected) and
	// then finishes or wounds the in-flight transactions, which unblocks
	// their handlers and flushes their wire responses; the listener
	// shutdowns then wait out the (now fast) active requests; the batcher
	// sweep answers anything still queued; only then does the engine
	// driver stop.
	dctx, dcancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
	defer dcancel()
	_ = s.svc.Drain(dctx)
	// Flush a last metrics snapshot while the driver can still answer, so
	// the operator sees the final counters even after the engine stops.
	if st, ok := s.svc.Stats(); ok {
		s.finalMu.Lock()
		s.final, s.finalOK = st, true
		s.finalMu.Unlock()
	}
	_ = hs.Shutdown(dctx)
	if ws != nil {
		_ = ws.Shutdown(dctx)
	}
	s.batch.shutdown()
	cancelRun()
	if svcDone != nil {
		<-svcDone
	}
	if httpDone != nil {
		<-httpDone
	}
	if wireDone != nil {
		<-wireDone
	}
	// The WAL closes last: the drain above answered every in-flight
	// submission, which required their outcome records to sync, and the
	// replay goroutine (if any) has observed the cancelled runCtx.
	<-s.replayDone
	if s.wal != nil {
		_ = s.wal.Close()
	}
	return failure
}

// wireBackend adapts the server to the wire front-end's Backend
// interface without widening Server's public API.
type wireBackend struct{ s *Server }

func (b wireBackend) Enqueue(id uint64, req core.ServiceRequest, c wire.Completer) bool {
	return b.s.batch.enqueue(id, req, countingCompleter{b.s, c})
}

// countingCompleter folds wire-path submissions into the server's
// request counters so /metrics reports the same truths regardless of
// which protocol carried the request.
type countingCompleter struct {
	s *Server
	c wire.Completer
}

func (cc countingCompleter) OnHandle(id uint64, h core.SubmitHandle) { cc.c.OnHandle(id, h) }

func (cc countingCompleter) Complete(id uint64, o core.ServiceOutcome, err error) {
	switch {
	case err == nil:
		cc.s.accepted.Add(1)
		if o.State == core.StateRejected {
			cc.s.rejected.Add(1)
		}
	case errors.Is(err, core.ErrDraining) || errors.Is(err, core.ErrServiceStopped):
		cc.s.shed.Add(1)
	case errors.Is(err, core.ErrEngineFailed), errors.Is(err, core.ErrLogFailed):
		cc.s.failed.Add(1)
	default:
		cc.s.badReqs.Add(1)
	}
	cc.c.Complete(id, o, err)
}

func (b wireBackend) RetryAfterSecs() int { return b.s.retryAfterSecs() }
func (b wireBackend) Draining() bool      { return b.s.svc.Draining() }
func (b wireBackend) HealthErr() error    { return b.s.svc.Err() }

func (b wireBackend) MetricsBody() ([]byte, error) {
	return json.Marshal(b.s.metricsResponse())
}

// --- request/response codec ---------------------------------------------

// jsonDuration accepts a Go duration string ("40ms") or a bare number of
// milliseconds, and marshals to the string form so round-trips are exact.
type jsonDuration time.Duration

func (d jsonDuration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *jsonDuration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		if v < 0 {
			return fmt.Errorf("duration %q is negative", s)
		}
		*d = jsonDuration(v)
		return nil
	}
	var ms float64
	if err := json.Unmarshal(b, &ms); err != nil {
		return err
	}
	// encoding/json already refuses bare NaN/Inf literals, but a value
	// like 1e309 parses as +Inf and a huge-but-finite one can overflow
	// the int64 duration; reject anything that is not a sane,
	// non-negative millisecond count. The binary codec applies the same
	// rule in wire.DecodeSubmit.
	ns := ms * float64(time.Millisecond)
	if math.IsNaN(ns) || math.IsInf(ns, 0) || ms < 0 || ns > float64(math.MaxInt64) {
		return fmt.Errorf("duration %s ms is not a usable non-negative duration", b)
	}
	*d = jsonDuration(ns)
	return nil
}

// SubmitRequest is the POST /submit body.
type SubmitRequest struct {
	// Items is the ordered data-item access list.
	Items []int `json:"items"`
	// Reads optionally flags shared-lock accesses, per item.
	Reads []bool `json:"reads,omitempty"`
	// NeedsIO optionally flags disk accesses, per item.
	NeedsIO []bool `json:"needs_io,omitempty"`
	// Compute is the CPU time per item ("1ms" or bare milliseconds).
	Compute jsonDuration `json:"compute"`
	// Deadline is the client's deadline relative to arrival.
	Deadline jsonDuration `json:"deadline"`
	// Criticality and Class carry the workload extensions.
	Criticality int `json:"criticality,omitempty"`
	Class       int `json:"class,omitempty"`
}

// SubmitResponse is the POST /submit reply.
type SubmitResponse struct {
	// State is the terminal state: "committed", "dropped" or "rejected".
	State string `json:"state"`
	// Missed reports a deadline miss (late commit, drop or rejection).
	Missed bool `json:"missed"`
	// Engine-clock timings, milliseconds.
	ArrivalMs  float64 `json:"arrival_ms"`
	FinishMs   float64 `json:"finish_ms,omitempty"`
	DeadlineMs float64 `json:"deadline_ms"`
	ResponseMs float64 `json:"response_ms,omitempty"`
	// Restarts is how many times the transaction was wounded and re-run.
	Restarts int `json:"restarts"`
	// WALSeq is the submission's durable sequence number (WAL enabled
	// only): the answer was written to the log before it was sent, and
	// a reconnecting client can match it against recovered outcomes.
	WALSeq uint64 `json:"wal_seq,omitempty"`
	// Error carries a human-readable refusal reason (shed, draining).
	Error string `json:"error,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// --- handlers ------------------------------------------------------------

// statsCacheTTL bounds how stale the retry-after load estimate may be.
const statsCacheTTL = 250 * time.Millisecond

// cachedStats returns a recent service stats snapshot, refreshing it at
// most once per statsCacheTTL.
func (s *Server) cachedStats() (core.ServiceStats, bool) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	if time.Since(s.statsAt) < statsCacheTTL {
		return s.stats, s.statsOK
	}
	s.stats, s.statsOK = s.svc.Stats()
	s.statsAt = time.Now()
	return s.stats, s.statsOK
}

// retryAfterSecs derives the Retry-After value for a 503 (or a wire
// shed) from the admission state instead of a hardcoded 1: the
// estimated wall-clock time to drain the current live set at the
// service's capacity, clamped to [1, 30] seconds. An idle or unreadable
// service answers 1 — retry immediately — while a deep backlog tells
// clients to stay away long enough for the estimate to actually change.
func (s *Server) retryAfterSecs() int {
	st, ok := s.cachedStats()
	if !ok || st.Live == 0 {
		return 1
	}
	p := s.opts.Core.Workload
	// Mean per-transaction resource demand (sim time): updates × (compute
	// + expected disk time per update).
	compute := p.ComputePerUpdate
	if len(p.Classes) > 0 {
		var mean float64
		for _, c := range p.Classes {
			mean += c.Fraction * float64(c.ComputePerUpdate)
		}
		compute = time.Duration(mean)
	}
	perTxn := time.Duration(p.UpdatesMean * (float64(compute) + p.DiskAccessProb*float64(p.DiskAccessTime)))
	cpus := s.opts.Core.NumCPUs
	if cpus <= 0 {
		cpus = 1
	}
	shards := s.opts.Shards
	if shards <= 0 {
		shards = 1
	}
	speed := s.opts.Service.Speed
	if speed <= 0 {
		speed = 1
	}
	drainSim := time.Duration(float64(st.Live) * float64(perTxn) / float64(cpus*shards))
	drainWall := time.Duration(float64(drainSim) / speed)
	secs := int((drainWall + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

func (s *Server) shedResponse(w http.ResponseWriter, reason string) {
	s.shed.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(SubmitResponse{State: "shed", Missed: true, Error: reason})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// Bounded accept queue: past MaxInflight concurrent submissions the
	// server sheds immediately instead of stacking goroutines behind an
	// overloaded engine.
	select {
	case s.inflight <- struct{}{}:
		defer func() { <-s.inflight }()
	default:
		s.shedResponse(w, "server at capacity")
		return
	}

	var req SubmitRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.badReqs.Add(1)
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	items := make([]txn.Item, len(req.Items))
	for i, it := range req.Items {
		items[i] = txn.Item(it)
	}
	creq := core.ServiceRequest{
		Items:       items,
		Reads:       req.Reads,
		NeedsIO:     req.NeedsIO,
		Compute:     time.Duration(req.Compute),
		Deadline:    time.Duration(req.Deadline),
		Criticality: req.Criticality,
		Class:       req.Class,
	}

	start := time.Now()
	// The submission rides the sharded batcher like every other
	// front-end; if the client disconnects the waiter wounds it so
	// abandoned work stops consuming CPU.
	wt := &httpWaiter{ch: make(chan outcomeErr, 1)}
	if !s.batch.enqueue(0, creq, wt) {
		s.shedResponse(w, "server at capacity")
		return
	}
	var o core.ServiceOutcome
	var err error
	select {
	case oe := <-wt.ch:
		o, err = oe.o, oe.err
	case <-r.Context().Done():
		// Client gone: wound the submission, then wait for its terminal
		// outcome so the engine is done with it before we return. Nobody
		// is reading the response, but write a coherent one for proxies
		// that still are.
		wt.cancel()
		<-wt.ch
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	switch {
	case err == nil:
	case errors.Is(err, core.ErrDraining):
		s.shedResponse(w, "draining")
		return
	case errors.Is(err, core.ErrServiceStopped):
		s.shedResponse(w, "service stopped")
		return
	case errors.Is(err, core.ErrEngineFailed), errors.Is(err, core.ErrLogFailed):
		// The engine died with this submission in flight (or its outcome
		// could not be made durable): the outcome is unknown, so this is
		// a 500 (not a retriable 503) — blind resubmission could
		// double-execute.
		s.failed.Add(1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	default:
		s.badReqs.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.accepted.Add(1)

	resp := SubmitResponse{
		State:      o.State.String(),
		Missed:     o.Missed,
		ArrivalMs:  ms(o.Arrival),
		DeadlineMs: ms(o.Deadline),
		Restarts:   o.Restarts,
		WALSeq:     o.Seq,
	}
	status := http.StatusOK
	switch o.State {
	case core.StateCommitted:
		resp.FinishMs = ms(o.Finish)
		resp.ResponseMs = ms(o.Response)
		s.observeResponse(time.Since(start))
	case core.StateRejected:
		// Load shed by the engine's admission controller: the deadline
		// was infeasible given the backlog. Fast 503, try again later.
		s.rejected.Add(1)
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
	default: // dropped (drain wound)
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(resp)
}

// outcomeErr pairs a terminal outcome with its error for channel
// delivery.
type outcomeErr struct {
	o   core.ServiceOutcome
	err error
}

// httpWaiter adapts one HTTP submission to the batcher's completion
// interface: the handler goroutine parks on ch while the flusher and
// engine do the work, and cancel wounds the submission on client
// disconnect whether the handle has arrived yet or not.
type httpWaiter struct {
	ch chan outcomeErr

	mu        sync.Mutex
	h         core.SubmitHandle
	cancelled bool
}

func (wt *httpWaiter) Complete(_ uint64, o core.ServiceOutcome, err error) {
	wt.ch <- outcomeErr{o, err}
}

func (wt *httpWaiter) OnHandle(_ uint64, h core.SubmitHandle) {
	wt.mu.Lock()
	wt.h = h
	cancelled := wt.cancelled
	wt.mu.Unlock()
	if cancelled {
		h.Cancel()
	}
}

func (wt *httpWaiter) cancel() {
	wt.mu.Lock()
	wt.cancelled = true
	h := wt.h
	wt.mu.Unlock()
	h.Cancel()
}

// MetricsResponse is the GET /metrics body.
type MetricsResponse struct {
	// Engine is the service's run counters, or null once stopped.
	Engine any `json:"engine"`
	// Live is the number of admitted, unfinished transactions.
	Live int `json:"live"`
	// NowMs is the engine clock, milliseconds.
	NowMs float64 `json:"now_ms"`
	// Draining reports graceful drain in progress.
	Draining bool `json:"draining"`
	// Degraded reports the service survived an internal failure (a
	// supervised shard driver died and was contained or restarted).
	Degraded bool `json:"degraded"`
	// Supervision is the shard-supervisor snapshot (sharded service with
	// supervision enabled only; null otherwise).
	Supervision *shard.SupervisionStats `json:"supervision,omitempty"`
	// Wire holds the binary front-end's connection counters (null when
	// the wire listener is not running).
	Wire *wire.Counters `json:"wire,omitempty"`
	// HTTP-level counters.
	Accepted int64 `json:"http_accepted"`
	Shed     int64 `json:"http_shed"`
	Rejected int64 `json:"http_rejected"`
	BadReqs  int64 `json:"http_bad_requests"`
	Panics   int64 `json:"http_panics"`
	Failed   int64 `json:"http_failed"`
	Inflight int   `json:"http_inflight"`
	// Wall-clock response-time percentiles over the recent window, ms.
	P50ResponseMs float64 `json:"p50_response_ms"`
	P95ResponseMs float64 `json:"p95_response_ms"`
	P99ResponseMs float64 `json:"p99_response_ms"`
	// Predict is the conflict-prediction snapshot (cca-p/cca-t policies
	// only; null otherwise): current penalty weight, tuner step count,
	// and the highest observed per-pair conflict rates.
	Predict *core.PredictSnapshot `json:"predict,omitempty"`
	// WAL holds the write-ahead-log counters (null when durability is
	// disabled) and Replay the startup crash-recovery progress.
	WAL        *wal.Stats   `json:"wal,omitempty"`
	Replay     *ReplayStats `json:"wal_replay,omitempty"`
	Recovering bool         `json:"recovering,omitempty"`
}

// metricsResponse builds the snapshot served by HTTP /metrics and the
// wire protocol's metrics frame. The engine-side fields ride the same
// 250ms stats cache as Retry-After derivation, so a metrics-polling
// dashboard cannot add driver pressure during an overload.
func (s *Server) metricsResponse() MetricsResponse {
	resp := MetricsResponse{
		Draining: s.svc.Draining(),
		Degraded: s.svc.Degraded(),
		Accepted: s.accepted.Load(),
		Shed:     s.shed.Load(),
		Rejected: s.rejected.Load(),
		BadReqs:  s.badReqs.Load(),
		Panics:   s.panics.Load(),
		Failed:   s.failed.Load(),
		Inflight: len(s.inflight),
	}
	if sup, ok := s.svc.(interface{ SupervisionStats() shard.SupervisionStats }); ok {
		st := sup.SupervisionStats()
		if st.Enabled {
			resp.Supervision = &st
		}
	}
	if ws := s.wireSrv.Load(); ws != nil {
		wc := ws.Counters()
		resp.Wire = &wc
	}
	if st, ok := s.cachedStats(); ok {
		resp.Engine = st.Result
		resp.Live = st.Live
		resp.NowMs = ms(st.Now)
		resp.Predict = st.Predict
	}
	if s.wal != nil {
		ws := s.wal.Stats()
		rs := s.ReplayStats()
		resp.WAL = &ws
		resp.Replay = &rs
		resp.Recovering = s.Recovering()
	}
	resp.P50ResponseMs, resp.P95ResponseMs, resp.P99ResponseMs = s.responsePercentiles()
	return resp
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	resp := s.metricsResponse()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if err := s.svc.Err(); err != nil {
		// An engine failure or a violated paper invariant (live oracle):
		// the server is no longer trustworthy and says so.
		http.Error(w, "unhealthy: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	// A degraded service is still healthy (HTTP 200, "ok" prefix — probes
	// grep for it) but advertises that it survived an internal failure.
	// recovering=true means the startup replay of unresolved WAL records
	// is still running (new traffic is served normally meanwhile).
	fmt.Fprintf(w, "ok draining=%v degraded=%v recovering=%v\n",
		s.svc.Draining(), s.svc.Degraded(), s.Recovering())
}

// observeResponse records one completed submission's wall response time.
func (s *Server) observeResponse(d time.Duration) {
	v := ms(d)
	s.respMu.Lock()
	s.respHist.Observe(v)
	s.respMu.Unlock()
}

func (s *Server) responsePercentiles() (p50, p95, p99 float64) {
	s.respMu.Lock()
	defer s.respMu.Unlock()
	if s.respHist.Count() == 0 {
		return 0, 0, 0
	}
	return s.respHist.Quantile(0.50), s.respHist.Quantile(0.95), s.respHist.Quantile(0.99)
}
