// Crash harness: the in-process kill-point matrix. Each case drives a
// real engine over a MemFS-backed WAL into a prescribed durable state —
// acked submissions (outcome fsynced before the answer), durable-but-
// unanswered submit records, a half-written record at the tail — then
// crashes it (MemFS.Crash keeps exactly the synced prefix, like SIGKILL
// plus page-cache loss), recovers twice, replays through a fresh
// server, and asserts the durability contract:
//
//   - every submission acknowledged before the crash has exactly one
//     outcome record afterwards, never marked FlagReplayed (zero
//     duplicate effects);
//   - every durable-but-unanswered submission is resolved by replay
//     with exactly one FlagReplayed outcome;
//   - the torn tail leaves no trace;
//   - scanning or recovering the same crashed log twice is
//     bit-identical.
//
// The matrix re-runs under every file-fault plan. Faults shrink the
// acked set (the logger's sticky failure answers clients with
// ErrLogFailed — ambiguous, not lost), but must never cost an acked
// submission its outcome or give it a duplicate. Checksum corruption is
// the documented exception: a silently corrupted acked record is
// indistinguishable from a torn tail, so only the determinism and
// no-duplicate invariants apply there.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/txn"
	"repro/internal/wal"
)

func crashReq(i int) core.ServiceRequest {
	// Two distinct items inside the paper's 30-item main-memory
	// database: the first lands in [0,15), the second in [15,30).
	return core.ServiceRequest{
		Items:    []txn.Item{txn.Item(i % 15), txn.Item(15 + (i*7+3)%15)},
		Compute:  time.Millisecond,
		Deadline: 5 * time.Second,
	}
}

func submitRecordFor(req core.ServiceRequest) wal.SubmitRecord {
	rec := wal.SubmitRecord{Compute: req.Compute, Deadline: req.Deadline}
	for _, it := range req.Items {
		rec.Items = append(rec.Items, int32(it))
	}
	return rec
}

func walSegments(t *testing.T, fsys wal.FS) []string {
	t.Helper()
	names, err := fsys.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	segs := names[:0:0]
	for _, n := range names {
		if strings.HasPrefix(n, "wal-") && strings.HasSuffix(n, ".log") {
			segs = append(segs, n)
		}
	}
	return segs
}

// victimState is what the stage-1 process knew when it died.
type victimState struct {
	acked      map[uint64]core.ServiceOutcome // answers delivered with err == nil
	ackErrs    int                            // answers delivered as errors (ErrLogFailed under faults)
	unresolved []uint64                       // durable submit records with no outcome
}

const tornSeq = 9999 // the mid-append record's seq; must never survive recovery

// runVictim drives the stage-1 service to the kill points and crashes
// it: 12 submissions taken to full acknowledgement (post-ack), up to 5
// submit records fsynced with no outcome (post-append/pre-ack), and one
// record cut in half at the tail (the append that was in flight when
// the process died).
func runVictim(t *testing.T, memfs *wal.MemFS, plan fault.FilePlan, seed int64) victimState {
	t.Helper()
	wo := wal.Options{FS: memfs}
	if !plan.Zero() {
		wo.WrapFile = func(name string, f wal.File) wal.File {
			return fault.WrapFile(seed, plan, name, f)
		}
	}
	log, _, err := wal.Open(wo)
	if err != nil {
		t.Fatalf("open victim wal: %v", err)
	}
	svc, err := core.NewService(core.MainMemoryConfig(core.CCA, seed), core.ServiceOptions{Speed: 5000, WAL: log})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- svc.Run(ctx) }()

	v := victimState{acked: make(map[uint64]core.ServiceOutcome)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o, err := svc.Submit(context.Background(), crashReq(i))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				v.ackErrs++
				return
			}
			v.acked[o.Seq] = o
		}(i)
	}
	wg.Wait()

	for i := 0; i < 5; i++ {
		rec := submitRecordFor(crashReq(100 + i))
		seq, err := log.AppendSubmit(&rec)
		if err != nil {
			continue // sticky log failure under a fault plan
		}
		if log.Sync() == nil {
			v.unresolved = append(v.unresolved, seq)
		}
	}

	if segs := walSegments(t, memfs); len(segs) > 0 {
		rec := submitRecordFor(crashReq(200))
		rec.Seq = tornSeq
		torn := wal.AppendSubmit(nil, &rec)
		if err := memfs.Append(segs[len(segs)-1], torn[:len(torn)/2]); err != nil {
			t.Fatalf("torn append: %v", err)
		}
	}

	memfs.Crash()
	cancel()
	<-runDone
	_ = log.Close() // post-crash flushes fail against the closed files; this just stops the sync goroutine
	return v
}

// recoveredView projects a Recovery to the state that must be
// bit-identical across repeated recovery runs (repair bookkeeping like
// Truncated differs between the run that truncates and the ones after).
func recoveredView(t *testing.T, rec *wal.Recovery) string {
	t.Helper()
	b, err := json.Marshal(struct {
		MaxSeq     uint64
		Records    int
		Submits    int
		Outcomes   int
		Unresolved []wal.SubmitRecord
	}{rec.MaxSeq, rec.Records, rec.Submits, rec.Outcomes, rec.Unresolved})
	if err != nil {
		t.Fatalf("marshal recovery: %v", err)
	}
	return string(b)
}

func openAndClose(t *testing.T, fsys wal.FS) *wal.Recovery {
	t.Helper()
	log, rec, err := wal.Open(wal.Options{FS: fsys})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	if err := log.Close(); err != nil {
		t.Fatalf("recovery Close: %v", err)
	}
	return rec
}

func waitNotRecovering(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for s.Recovering() {
		if time.Now().After(deadline) {
			t.Fatal("replay did not finish")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCrashRecoveryMatrix(t *testing.T) {
	cases := []struct {
		name    string
		plan    fault.FilePlan
		corrupt bool // acked bytes can rot on disk: skip the per-ack check
	}{
		{"clean", fault.FilePlan{}, false},
		{"torn-writes", fault.FilePlan{TornWriteProb: 0.3}, false},
		{"short-writes", fault.FilePlan{ShortWriteProb: 0.3}, false},
		{"fsync-errors", fault.FilePlan{SyncErrProb: 0.3}, false},
		{"corruption", fault.FilePlan{CorruptProb: 0.3}, true},
		{"mixed", fault.FilePlan{TornWriteProb: 0.1, ShortWriteProb: 0.1, SyncErrProb: 0.1, CorruptProb: 0.1}, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			memfs := wal.NewMemFS()
			v := runVictim(t, memfs, tc.plan, 42)

			// Read-only scans of the crashed log are bit-identical.
			scanA, err := wal.Scan(memfs, nil)
			if err != nil {
				t.Fatalf("scan A: %v", err)
			}
			scanB, err := wal.Scan(memfs, nil)
			if err != nil {
				t.Fatalf("scan B: %v", err)
			}
			if !reflect.DeepEqual(scanA, scanB) {
				t.Fatalf("read-only scans disagree:\n%+v\nvs\n%+v", scanA, scanB)
			}
			// So are repairing recoveries (the first truncates the torn
			// tail; the bytes it removes are exactly the bytes the next
			// run never sees).
			rec1 := openAndClose(t, memfs)
			rec2 := openAndClose(t, memfs)
			if a, b := recoveredView(t, rec1), recoveredView(t, rec2); a != b {
				t.Fatalf("recovery not deterministic:\n%s\nvs\n%s", a, b)
			}
			if a, b := recoveredView(t, scanA), recoveredView(t, rec1); a != b {
				t.Fatalf("read-only scan and repair recovered different states:\n%s\nvs\n%s", a, b)
			}

			if tc.plan.Zero() {
				// No faults: nothing ambiguous, and recovery's unresolved
				// set is exactly what the victim left unanswered.
				if len(v.acked) != 12 || v.ackErrs != 0 {
					t.Fatalf("clean victim: %d acked, %d errors (want 12, 0)", len(v.acked), v.ackErrs)
				}
				if len(v.unresolved) != 5 {
					t.Fatalf("clean victim: %d unresolved (want 5)", len(v.unresolved))
				}
				var got []uint64
				for i := range rec1.Unresolved {
					got = append(got, rec1.Unresolved[i].Seq)
				}
				if fmt.Sprint(got) != fmt.Sprint(v.unresolved) {
					t.Fatalf("recovered unresolved %v, victim left %v", got, v.unresolved)
				}
			}

			// Stage 2: a fresh server recovers the log and replays.
			srv, _, stop := startServer(t, Options{
				Core:      core.MainMemoryConfig(core.CCA, 7),
				Service:   core.ServiceOptions{Speed: 5000},
				WALFS:     memfs,
				WALRetain: 16, // keep every segment: stage 3 reads them all back
				Recover:   true,
			})
			waitNotRecovering(t, srv)
			if rs := srv.ReplayStats(); rs.Unresolved != len(rec1.Unresolved) {
				t.Fatalf("server saw %d unresolved, recovery found %d", rs.Unresolved, len(rec1.Unresolved))
			}
			if err := stop(); err != nil {
				t.Fatalf("serve: %v", err)
			}

			// Stage 3: the contract, read back from what is durable now.
			submits := make(map[uint64]bool)
			outcomes := make(map[uint64]wal.OutcomeRecord)
			if _, err := wal.Scan(memfs, func(h wal.Header, sub *wal.SubmitRecord, out *wal.OutcomeRecord) error {
				switch h.Type {
				case wal.RecSubmit:
					if submits[sub.Seq] {
						t.Errorf("seq %d has two submit records", sub.Seq)
					}
					submits[sub.Seq] = true
				case wal.RecOutcome:
					if _, dup := outcomes[out.Seq]; dup {
						t.Errorf("seq %d has two outcome records (duplicate effect)", out.Seq)
					}
					outcomes[out.Seq] = *out
				}
				return nil
			}); err != nil {
				t.Fatalf("final scan: %v", err)
			}
			if !tc.corrupt {
				for seq := range v.acked {
					o, ok := outcomes[seq]
					if !ok {
						t.Errorf("acked seq %d lost its outcome record", seq)
						continue
					}
					if o.Replayed() {
						t.Errorf("acked seq %d was replayed: duplicate effect", seq)
					}
				}
			}
			for i := range rec1.Unresolved {
				seq := rec1.Unresolved[i].Seq
				o, ok := outcomes[seq]
				if !ok {
					t.Errorf("unresolved seq %d was never resolved by replay", seq)
					continue
				}
				if !o.Replayed() {
					t.Errorf("seq %d resolved by replay but not marked FlagReplayed", seq)
				}
			}
			if submits[tornSeq] {
				t.Error("half-written tail record survived recovery")
			}
		})
	}
}

// TestRecoveryWithoutReplayAborts: without Recover, unresolved records
// are resolved as aborted — the log converges with zero re-execution,
// and a later -recover run finds nothing to do.
func TestRecoveryWithoutReplayAborts(t *testing.T) {
	memfs := wal.NewMemFS()
	log, _, err := wal.Open(wal.Options{FS: memfs})
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for i := 0; i < 10; i++ {
		rec := submitRecordFor(crashReq(i))
		seq, err := log.AppendSubmit(&rec)
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	srv, _, stop := startServer(t, Options{
		Core:    core.MainMemoryConfig(core.CCA, 1),
		WALFS:   memfs,
		Recover: false,
	})
	waitNotRecovering(t, srv)
	rs := srv.ReplayStats()
	if rs.Aborted != 10 || rs.Replayed != 0 {
		t.Fatalf("replay stats = %+v, want 10 aborted, 0 replayed", rs)
	}
	if err := stop(); err != nil {
		t.Fatalf("serve: %v", err)
	}

	aborted := make(map[uint64]bool)
	if _, err := wal.Scan(memfs, func(h wal.Header, _ *wal.SubmitRecord, out *wal.OutcomeRecord) error {
		if h.Type == wal.RecOutcome {
			if !out.Aborted() || !out.Replayed() {
				t.Errorf("seq %d resolved with flags %#x, want aborted+replayed", out.Seq, out.Flags)
			}
			aborted[out.Seq] = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, seq := range seqs {
		if !aborted[seq] {
			t.Errorf("seq %d was not resolved", seq)
		}
	}
	rec := openAndClose(t, memfs)
	if len(rec.Unresolved) != 0 {
		t.Fatalf("%d submissions still unresolved after abort pass", len(rec.Unresolved))
	}
}

// TestDrainDuringRecoveryReplay: SIGTERM (context cancellation) while
// the startup replay is still running. /healthz must advertise
// recovering=true during the replay, the drain must stop the replay
// without stranding it, untouched records must stay unresolved for the
// next recovery, and no goroutines may leak.
func TestDrainDuringRecoveryReplay(t *testing.T) {
	memfs := wal.NewMemFS()
	log, _, err := wal.Open(wal.Options{FS: memfs})
	if err != nil {
		t.Fatal(err)
	}
	const backlog = 1500
	for i := 0; i < backlog; i++ {
		rec := submitRecordFor(core.ServiceRequest{
			Items:    []txn.Item{txn.Item(i % 30)},
			Compute:  2 * time.Millisecond,
			Deadline: 120 * time.Second,
		})
		if _, err := log.AppendSubmit(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	baseline := runtime.NumGoroutine()
	srv, base, stop := startServer(t, Options{
		Core: core.MainMemoryConfig(core.CCA, 1),
		// Speed 1: the 1500×2ms backlog needs seconds of wall clock, so
		// the drain below lands mid-replay deterministically.
		Service:      core.ServiceOptions{Speed: 1},
		WALFS:        memfs,
		Recover:      true,
		DrainTimeout: time.Second,
	})
	if !srv.Recovering() {
		t.Fatal("server not recovering right after start")
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 256)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), "recovering=true") {
		t.Fatalf("healthz during replay = %q, want recovering=true", body[:n])
	}

	if err := stop(); err != nil {
		t.Fatalf("serve: %v", err)
	}
	if srv.Recovering() {
		t.Error("still recovering after drain")
	}
	rs := srv.ReplayStats()
	if rs.Replayed+rs.Aborted+rs.Failed != backlog {
		t.Fatalf("replay stats %+v do not account for all %d records", rs, backlog)
	}
	if rs.Failed == 0 {
		t.Fatalf("replay stats %+v: drain should have interrupted the replay", rs)
	}

	// Interrupted records are still unresolved — the next recovery gets
	// another chance at them.
	rec := openAndClose(t, memfs)
	if len(rec.Unresolved) == 0 {
		t.Error("drain mid-replay left nothing unresolved; expected a remainder for the next recovery")
	}

	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > baseline {
		t.Errorf("goroutine leak after drain-during-replay: %d -> %d", baseline, now)
	}
}

// TestWALSeqOnHTTPResponse: the durable sequence number rides the JSON
// answer, so a reconnecting client can match acked work against a
// recovered log.
func TestWALSeqOnHTTPResponse(t *testing.T) {
	_, base, _ := startServer(t, Options{
		Core:  core.MainMemoryConfig(core.CCA, 1),
		WALFS: wal.NewMemFS(),
	})
	status, resp := postSubmit(t, base, SubmitRequest{
		Items: []int{3, 17}, Compute: jsonDuration(time.Millisecond), Deadline: jsonDuration(time.Second),
	})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if resp.WALSeq != 1 {
		t.Fatalf("wal_seq = %d, want 1", resp.WALSeq)
	}
}
