package server

// Serving-path throughput baseline: BENCH_serve.json records committed
// transactions per wall second, client-observed p99 wall response and
// heap bytes allocated per request for the two serving protocols —
// HTTP/JSON and the binary wire protocol — against the same in-process
// engine. This is the number the wire-speed serving path exists to
// move: the binary protocol's pipelined frames and pooled codecs must
// beat the JSON path by the issue's acceptance floors (>=2x txns/sec,
// >=5x fewer bytes per request, 0 codec allocs/op) or the test refuses
// to write a baseline.
//
// Refresh with:
//
//	BENCH_BASELINE=1 go test ./internal/server -run TestWriteServeBenchBaseline

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/txn"
	"repro/internal/wire"
)

const (
	serveBenchDBSize  = 4096
	serveBenchSpeed   = 1e5
	serveBenchWorkers = 16
	serveBenchConns   = 4
	serveBenchPool    = 128 // open loop: worker pool / outstanding cap
	serveBenchWarm    = 300 * time.Millisecond
	serveBenchRun     = 1500 * time.Millisecond
)

type serveBenchResult struct {
	Proto       string  `json:"proto"`
	Workers     int     `json:"workers,omitempty"`     // closed loop: synchronous submitters
	TargetRate  float64 `json:"target_rate,omitempty"` // open loop: offered Poisson rate
	TxnsPerSec  float64 `json:"txns_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	BytesPerReq float64 `json:"bytes_per_req"`
}

// measureServe drives a dual-protocol server over one protocol and
// returns committed/sec, client p50/p99 wall latency, and heap bytes
// allocated per answered request (client+server, both in-process — the
// same accounting for both protocols, so the ratio is honest even
// though the absolute number includes the test client).
//
// rate 0 is the closed loop: serveBenchWorkers synchronous submitters,
// the saturation probe. rate > 0 is an open loop: Poisson arrivals at
// that rate (absolute schedule, so oversleeps self-correct), served by
// a pool of serveBenchPool workers — arrivals beyond the pool are
// dropped, so a server that cannot sustain the rate shows up as
// committed/sec falling short of it, never as a stretched clock.
//
// With withWAL the server runs a real on-disk write-ahead log at the
// default group-commit sync interval, so the entry prices durability
// the way production pays it: every answer waits for its outcome
// record's batched fsync. The WAL entry is measured open-loop because
// group commit trades latency for batching: a fixed-size closed loop
// converts the fsync wait into idle workers and measures that latency,
// not throughput capacity, while under offered load the batch per
// fsync grows with the backlog and capacity stays engine-bound.
func measureServe(t *testing.T, proto string, withWAL bool, rate float64) serveBenchResult {
	t.Helper()
	workers := serveBenchWorkers
	cfg := core.MainMemoryConfig(core.CCA, 1)
	cfg.Workload.DBSize = serveBenchDBSize
	cfg.Admission = core.AdmissionConfig{Mode: core.AdmitAll}
	o := Options{
		Core:        cfg,
		Service:     core.ServiceOptions{Speed: serveBenchSpeed},
		MaxInflight: 1024,
	}
	label := proto
	if rate > 0 {
		label = proto + "_open"
	}
	if withWAL {
		o.WALDir = t.TempDir()
		o.WALSync = 0 // rtserve's -wal-sync default: sync as soon as appends are pending
		label = proto + "_wal"
	}
	_, base, wireAddr, stop := startDualServer(t, o)
	defer stop() //nolint:errcheck

	// submit issues one 2-item transaction and reports commit + latency.
	var submit func(rng *rand.Rand) (bool, time.Duration)
	switch proto {
	case "wire":
		clients := make([]*wire.Client, serveBenchConns)
		for i := range clients {
			c, err := wire.Dial(wireAddr, 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			clients[i] = c
			defer c.Close()
		}
		var mu sync.Mutex
		next := 0
		submit = func(rng *rand.Rand) (bool, time.Duration) {
			mu.Lock()
			c := clients[next%len(clients)]
			next++
			mu.Unlock()
			a := rng.Intn(serveBenchDBSize - 1)
			t0 := time.Now()
			resp, err := c.Submit(&wire.SubmitReq{
				Items:   []txn.Item{txn.Item(a), txn.Item(a + 1)},
				Compute: 50 * time.Microsecond, Deadline: time.Minute,
			})
			return err == nil && resp.Status == wire.StatusCommitted, time.Since(t0)
		}
	case "json":
		tr := &http.Transport{MaxIdleConns: workers, MaxIdleConnsPerHost: workers}
		defer tr.CloseIdleConnections()
		hc := &http.Client{Transport: tr, Timeout: 30 * time.Second}
		url := base + "/submit"
		submit = func(rng *rand.Rand) (bool, time.Duration) {
			a := rng.Intn(serveBenchDBSize - 1)
			body, _ := json.Marshal(SubmitRequest{
				Items:   []int{a, a + 1},
				Compute: jsonDuration(50 * time.Microsecond), Deadline: jsonDuration(time.Minute),
			})
			t0 := time.Now()
			resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				return false, time.Since(t0)
			}
			var sr SubmitResponse
			derr := json.NewDecoder(resp.Body).Decode(&sr)
			resp.Body.Close()
			return derr == nil && sr.State == "committed", time.Since(t0)
		}
	default:
		t.Fatalf("unknown proto %q", proto)
	}

	var (
		mu        sync.Mutex
		hist      metrics.Histogram
		committed int64
		counting  bool
		stopCh    = make(chan struct{})
		wg        sync.WaitGroup
	)
	record := func(ok bool, d time.Duration) {
		mu.Lock()
		if counting && ok {
			committed++
			hist.Observe(float64(d) / float64(time.Millisecond))
		}
		mu.Unlock()
	}
	if rate > 0 {
		// Open loop: a pacer hands paced arrival tokens to a worker
		// pool; a full pool drops the arrival instead of slowing the
		// arrival process down.
		tokens := make(chan struct{}, serveBenchPool)
		for w := 0; w < serveBenchPool; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
				for {
					select {
					case <-stopCh:
						return
					case <-tokens:
					}
					ok, d := submit(rng)
					record(ok, d)
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(42))
			next := time.Now()
			for {
				select {
				case <-stopCh:
					return
				default:
				}
				next = next.Add(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				select {
				case tokens <- struct{}{}:
				default: // pool saturated: arrival dropped
				}
			}
		}()
	} else {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
				for {
					select {
					case <-stopCh:
						return
					default:
					}
					ok, d := submit(rng)
					record(ok, d)
				}
			}(w)
		}
	}

	time.Sleep(serveBenchWarm)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	mu.Lock()
	counting = true
	mu.Unlock()
	start := time.Now()
	time.Sleep(serveBenchRun)
	mu.Lock()
	counting = false
	mu.Unlock()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	close(stopCh)
	wg.Wait()

	res := serveBenchResult{Proto: label}
	if rate > 0 {
		res.TargetRate = rate
	} else {
		res.Workers = workers
	}
	mu.Lock()
	n := committed
	if n > 0 {
		res.TxnsPerSec = float64(n) / elapsed.Seconds()
		res.P50Ms = hist.Quantile(0.50)
		res.P99Ms = hist.Quantile(0.99)
		res.BytesPerReq = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n)
	}
	mu.Unlock()
	if n == 0 {
		t.Fatalf("%s: nothing committed in the measurement window", label)
	}
	return res
}

type serveBenchBaseline struct {
	Note         string             `json:"note"`
	Refresh      string             `json:"refresh"`
	Workers      int                `json:"workers"`
	DBSize       int                `json:"db_size"`
	Speed        float64            `json:"speed"`
	HostCPUs     int                `json:"host_cpus"`
	Entries      []serveBenchResult `json:"entries"`
	TputRatio    float64            `json:"ratio_wire_vs_json_txns_per_sec"`
	WALRatio     float64            `json:"ratio_wire_wal_vs_wire_open_txns_per_sec"`
	BytesRatio   float64            `json:"ratio_json_vs_wire_bytes_per_req"`
	CodecAllocs  float64            `json:"codec_allocs_per_op"`
	WallP99WireS float64            `json:"wire_p99_ms"`
}

// TestWriteServeBenchBaseline measures both serving protocols end to
// end and writes BENCH_serve.json at the repo root. Gated behind
// BENCH_BASELINE=1: it takes ~6s of wall time and saturates the
// machine, which is exactly what a unit-test run must not do.
func TestWriteServeBenchBaseline(t *testing.T) {
	if os.Getenv("BENCH_BASELINE") == "" {
		t.Skip("set BENCH_BASELINE=1 to measure and write BENCH_serve.json")
	}

	// The zero-alloc floor on the codec itself, re-proven at baseline
	// time (the steady serving path allocates nothing per frame in
	// encode, decode, or frame reassembly).
	req := wire.SubmitReq{
		Items: []txn.Item{3, 17}, Compute: time.Millisecond, Deadline: 50 * time.Millisecond,
	}
	frame := wire.AppendSubmit(nil, 1, &req)
	buf := make([]byte, 0, len(frame))
	var dec wire.SubmitReq
	codecAllocs := testing.AllocsPerRun(200, func() {
		buf = wire.AppendSubmit(buf[:0], 1, &req)
		if err := wire.DecodeSubmit(buf[wire.HeaderLen:], &dec); err != nil {
			t.Fatal(err)
		}
	})
	if codecAllocs != 0 {
		t.Errorf("codec allocates %.1f/op, want 0 (acceptance floor)", codecAllocs)
	}

	jsonRes := measureServe(t, "json", false, 0)
	wireRes := measureServe(t, "wire", false, 0)
	// The WAL cost comparison runs both arms open-loop at the same
	// offered rate — 0.4x the no-WAL closed-loop capacity, a load the
	// durable path can physically sustain here (each fsync forces an
	// ext3 journal commit whose kernel-side work shares this host's
	// single CPU, so absolute durable capacity is disk-bound, not
	// WAL-bound; see DESIGN.md section 7). The ratio isolates what the
	// WAL machinery itself costs at the default sync interval. The WAL
	// arm runs last: opening an on-disk log floors GOMAXPROCS at 2
	// (server/wal.go), and the no-WAL arms must measure the
	// single-P configuration rtserve actually runs without -wal-dir.
	rate := 0.4 * wireRes.TxnsPerSec
	openRes := measureServe(t, "wire", false, rate)
	walRes := measureServe(t, "wire", true, rate)
	t.Logf("json: %.0f txns/s p99=%.3fms %.0f B/req", jsonRes.TxnsPerSec, jsonRes.P99Ms, jsonRes.BytesPerReq)
	t.Logf("wire: %.0f txns/s p99=%.3fms %.0f B/req", wireRes.TxnsPerSec, wireRes.P99Ms, wireRes.BytesPerReq)
	t.Logf("wire open @%.0f/s: %.0f txns/s p99=%.3fms", rate, openRes.TxnsPerSec, openRes.P99Ms)
	t.Logf("wire+wal @%.0f/s: %.0f txns/s p99=%.3fms %.0f B/req", rate, walRes.TxnsPerSec, walRes.P99Ms, walRes.BytesPerReq)

	tputRatio := wireRes.TxnsPerSec / jsonRes.TxnsPerSec
	bytesRatio := jsonRes.BytesPerReq / wireRes.BytesPerReq
	if tputRatio < 2 {
		t.Errorf("wire vs json throughput ratio = %.2f, want >= 2 (acceptance floor)", tputRatio)
	}
	if bytesRatio < 5 {
		t.Errorf("json vs wire bytes/request ratio = %.2f, want >= 5 (acceptance floor)", bytesRatio)
	}
	walRatio := walRes.TxnsPerSec / openRes.TxnsPerSec
	if walRatio < 0.85 {
		t.Errorf("wal vs no-wal wire throughput ratio = %.2f at %.0f offered txns/s, want >= 0.85 (group commit must cost <= 15%%)", walRatio, rate)
	}
	if t.Failed() {
		return
	}

	base := serveBenchBaseline{
		Note: "end-to-end serving throughput (committed transactions per wall second) for the two " +
			"front-ends against one engine: closed-loop workers issue 2-item writes; the wire " +
			"protocol's pipelined frames, batched submit and zero-alloc codecs carry the gap; " +
			"bytes_per_req is heap allocated per answered request (client+server in-process, " +
			"same accounting both protocols); wire_open and wire_wal run the wire path open-loop " +
			"(Poisson arrivals) at the same offered rate, without and with an on-disk write-ahead " +
			"log at the default sync interval (0: fsync whenever appends are pending) — every " +
			"WAL-arm answer waits for its outcome record's group-commit fsync, and the ratio of " +
			"the two isolates the WAL's cost from the host's absolute durable-fsync ceiling",
		Refresh:      "BENCH_BASELINE=1 go test ./internal/server -run TestWriteServeBenchBaseline",
		Workers:      serveBenchWorkers,
		DBSize:       serveBenchDBSize,
		Speed:        serveBenchSpeed,
		HostCPUs:     runtime.NumCPU(),
		Entries:      []serveBenchResult{jsonRes, wireRes, openRes, walRes},
		TputRatio:    tputRatio,
		WALRatio:     walRatio,
		BytesRatio:   bytesRatio,
		CodecAllocs:  codecAllocs,
		WallP99WireS: wireRes.P99Ms,
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		t.Fatalf("marshal baseline: %v", err)
	}
	if err := os.WriteFile("../../BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write BENCH_serve.json: %v", err)
	}
}
