package server

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/txn"
	"repro/internal/wire"
)

// startDualServer runs a server with both the HTTP and the wire
// listener on loopback ports.
func startDualServer(t *testing.T, opts Options) (*Server, string, string, func() error) {
	t.Helper()
	if opts.Service.Speed == 0 {
		opts.Service.Speed = 5000
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wireLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ServeListeners(ctx, httpLn, wireLn) }()
	stopped := false
	stop := func() error {
		if stopped {
			return nil
		}
		stopped = true
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(30 * time.Second):
			t.Fatal("ServeListeners did not return after cancel")
			return nil
		}
	}
	t.Cleanup(func() { _ = stop() })
	return s, "http://" + httpLn.Addr().String(), wireLn.Addr().String(), stop
}

// TestWireFrontEnd drives the binary protocol against the real engine:
// commits, metrics and health parity with HTTP, and drain semantics.
func TestWireFrontEnd(t *testing.T) {
	s, base, wireAddr, stop := startDualServer(t, Options{
		Core: core.MainMemoryConfig(core.CCA, 21),
	})

	c, err := wire.Dial(wireAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A commit over the wire.
	resp, err := c.Submit(&wire.SubmitReq{
		Items:   itemSeq(1, 2, 3),
		Compute: 500 * time.Microsecond, Deadline: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusCommitted || resp.Missed {
		t.Fatalf("wire submit: %+v, want on-time commit", resp)
	}
	if resp.Response <= 0 || resp.Finish < resp.Arrival {
		t.Fatalf("incoherent timings: %+v", resp)
	}

	// An invalid submission is rejected at the codec with a reason.
	resp, err = c.Submit(&wire.SubmitReq{Items: itemSeq(1), Compute: -1, Deadline: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusInvalid || !strings.Contains(resp.Err, "compute") {
		t.Fatalf("invalid submit: %+v", resp)
	}

	// Engine-level validation failures surface as StatusInvalid too.
	resp, err = c.Submit(&wire.SubmitReq{Items: itemSeq(10_000), Compute: 1, Deadline: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusInvalid || !strings.Contains(resp.Err, "outside database") {
		t.Fatalf("out-of-range submit: %+v", resp)
	}

	// Health parity.
	hr, err := c.Health()
	if err != nil || !hr.Healthy || hr.Draining {
		t.Fatalf("health: %+v err %v", hr, err)
	}

	// Metrics parity: the wire metrics frame carries the same JSON
	// document the HTTP endpoint serves.
	body, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	var viaWire MetricsResponse
	if err := json.Unmarshal(body, &viaWire); err != nil {
		t.Fatalf("wire metrics not MetricsResponse JSON: %v\n%s", err, body)
	}
	hres, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var viaHTTP MetricsResponse
	if err := json.NewDecoder(hres.Body).Decode(&viaHTTP); err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if viaWire.Accepted < 1 || viaHTTP.Accepted < viaWire.Accepted-1 {
		t.Fatalf("metrics disagree: wire %+v http %+v", viaWire, viaHTTP)
	}

	// Drain: stopping the server sheds wire submissions with a
	// Retry-After hint, mirroring HTTP's 503 contract.
	drained := make(chan struct{})
	go func() { defer close(drained); _ = stop() }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err = c.Submit(&wire.SubmitReq{
			Items: itemSeq(4), Compute: time.Millisecond, Deadline: time.Second,
		})
		if err != nil {
			break // connection closed by the completed shutdown: also fine
		}
		if resp.Status == wire.StatusShed {
			if resp.RetryAfter < 1 {
				t.Fatalf("shed without Retry-After: %+v", resp)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never shed a wire submission")
		}
		time.Sleep(time.Millisecond)
	}
	<-drained
	_ = s
}

// TestWireBatchedThroughput pushes concurrent pipelined submissions
// from several connections through the batcher and checks they all
// commit and are counted.
func TestWireBatchedThroughput(t *testing.T) {
	s, _, wireAddr, _ := startDualServer(t, Options{
		Core:        core.MainMemoryConfig(core.CCA, 22),
		MaxInflight: 1024,
	})

	const conns = 4
	const perConn = 100
	var wg sync.WaitGroup
	errs := make(chan error, conns*perConn)
	for ci := 0; ci < conns; ci++ {
		c, err := wire.Dial(wireAddr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(c *wire.Client, g int) {
				defer wg.Done()
				for i := 0; i < perConn/4; i++ {
					a := (g*7 + i) % 30
					b := (g*11 + i + 1) % 30
					if a == b {
						b = (b + 1) % 30
					}
					resp, err := c.Submit(&wire.SubmitReq{
						Items:   itemSeq(a, b),
						Compute: 50 * time.Microsecond, Deadline: 30 * time.Second,
					})
					if err != nil {
						errs <- err
						return
					}
					if resp.Status != wire.StatusCommitted {
						errs <- &net.AddrError{Err: "not committed: " + resp.Err, Addr: ""}
						return
					}
				}
			}(c, g)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.accepted.Load(); got != conns*perConn {
		t.Fatalf("accepted %d, want %d", got, conns*perConn)
	}
}

func itemSeq(items ...int) []txn.Item {
	out := make([]txn.Item, len(items))
	for i, it := range items {
		out[i] = txn.Item(it)
	}
	return out
}
