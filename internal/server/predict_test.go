package server

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
)

// TestMetricsPredictSnapshot: under a conflict-prediction policy /metrics
// carries the predict block (current w, tuner step count, per-pair
// conflict rates); under stock CCA the field is absent.
func TestMetricsPredictSnapshot(t *testing.T) {
	cfg := core.MainMemoryConfig(core.CCAT, 1)
	cfg.Predict = core.DefaultPredictConfig()
	_, base, _ := startServer(t, Options{Core: cfg})

	code, out := postSubmit(t, base, SubmitRequest{
		Items:    []int{1, 2, 3},
		Compute:  jsonDuration(time.Millisecond),
		Deadline: jsonDuration(500 * time.Millisecond),
	})
	if code != http.StatusOK || out.State != "committed" {
		t.Fatalf("submit under cca-t: status %d, outcome %+v", code, out)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var m struct {
		Predict *struct {
			Policy     string          `json:"policy"`
			W          float64         `json:"w"`
			TunerSteps int             `json:"tuner_steps"`
			TopPairs   json.RawMessage `json:"top_pairs"`
		} `json:"predict"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	if m.Predict == nil {
		t.Fatal("/metrics under cca-t has no predict block")
	}
	if m.Predict.Policy != string(core.CCAT) {
		t.Fatalf("predict.policy = %q, want %q", m.Predict.Policy, core.CCAT)
	}
	if m.Predict.W <= 0 {
		t.Fatalf("predict.w = %v, want the live penalty weight", m.Predict.W)
	}

	// Stock CCA: no predict block.
	_, base2, _ := startServer(t, Options{Core: core.MainMemoryConfig(core.CCA, 1)})
	resp2, err := http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp2.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp2.Body).Decode(&raw); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	if _, ok := raw["predict"]; ok {
		t.Fatal("/metrics under stock CCA carries a predict block")
	}
}
