package server

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/txn"
	"repro/internal/wire"
)

// equivCorpus is a protocol-shape corpus: every optional field present
// and absent, sub-millisecond durations (where a ms/ns unit confusion
// between the JSON codec and the binary codec would show), reads/IO
// bitmaps crossing the 8-item byte boundary.
func equivCorpus() []core.ServiceRequest {
	return []core.ServiceRequest{
		{Items: []txn.Item{1, 2}, Compute: time.Millisecond, Deadline: time.Second},
		{Items: []txn.Item{7}, Reads: []bool{true}, Compute: 250 * time.Microsecond,
			Deadline: 40 * time.Millisecond, Criticality: 2, Class: 1},
		{Items: []txn.Item{0, 3, 6, 9, 12, 15, 18, 21, 24},
			Reads:   []bool{true, false, true, false, true, false, true, false, true},
			NeedsIO: []bool{false, true, false, true, false, true, false, true, false},
			Compute: 1500 * time.Nanosecond, Deadline: 2 * time.Second},
		{Items: []txn.Item{29}, Compute: 3 * time.Millisecond, Deadline: time.Minute, Class: 3},
	}
}

// jsonBody renders req the way an HTTP client would post it.
func jsonBody(req core.ServiceRequest) []byte {
	items := make([]int, len(req.Items))
	for i, it := range req.Items {
		items[i] = int(it)
	}
	b, err := json.Marshal(SubmitRequest{
		Items:       items,
		Reads:       req.Reads,
		NeedsIO:     req.NeedsIO,
		Compute:     jsonDuration(req.Compute),
		Deadline:    jsonDuration(req.Deadline),
		Criticality: req.Criticality,
		Class:       req.Class,
	})
	if err != nil {
		panic(err)
	}
	return b
}

// decodeJSONPath mirrors handleSubmit's decode step.
func decodeJSONPath(t *testing.T, body []byte) core.ServiceRequest {
	t.Helper()
	var req SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatalf("json decode: %v", err)
	}
	items := make([]txn.Item, len(req.Items))
	for i, it := range req.Items {
		items[i] = txn.Item(it)
	}
	return core.ServiceRequest{
		Items:       items,
		Reads:       req.Reads,
		NeedsIO:     req.NeedsIO,
		Compute:     time.Duration(req.Compute),
		Deadline:    time.Duration(req.Deadline),
		Criticality: req.Criticality,
		Class:       req.Class,
	}
}

// decodeBinaryPath mirrors the wire connection's decode step.
func decodeBinaryPath(t *testing.T, req core.ServiceRequest) core.ServiceRequest {
	t.Helper()
	wreq := wire.SubmitReq{
		Items: req.Items, Reads: req.Reads, NeedsIO: req.NeedsIO,
		Compute: req.Compute, Deadline: req.Deadline,
		Criticality: req.Criticality, Class: req.Class,
	}
	frame := wire.AppendSubmit(nil, 1, &wreq)
	fr := wire.NewFrameReader(bytes.NewReader(frame), 0)
	_, payload, err := fr.Next()
	if err != nil {
		t.Fatalf("frame: %v", err)
	}
	var dec wire.SubmitReq
	if err := wire.DecodeSubmit(payload, &dec); err != nil {
		t.Fatalf("binary decode: %v", err)
	}
	out := core.ServiceRequest{
		Items:       append([]txn.Item(nil), dec.Items...),
		Compute:     dec.Compute,
		Deadline:    dec.Deadline,
		Criticality: dec.Criticality,
		Class:       dec.Class,
	}
	if dec.Reads != nil {
		out.Reads = append([]bool(nil), dec.Reads...)
	}
	if dec.NeedsIO != nil {
		out.NeedsIO = append([]bool(nil), dec.NeedsIO...)
	}
	return out
}

// TestProtocolEquivalence proves the two serving protocols are the same
// service: each corpus request decodes to an identical
// core.ServiceRequest through the JSON path and the binary path, and
// feeding both decoded streams to identical engines (same seed, same
// config, virtual time driven by sequential submission) produces
// identical terminal outcomes and identical final engine counters.
func TestProtocolEquivalence(t *testing.T) {
	corpus := equivCorpus()
	viaJSON := make([]core.ServiceRequest, len(corpus))
	viaBin := make([]core.ServiceRequest, len(corpus))
	for i, req := range corpus {
		viaJSON[i] = decodeJSONPath(t, jsonBody(req))
		viaBin[i] = decodeBinaryPath(t, req)
		if !reflect.DeepEqual(viaJSON[i], viaBin[i]) {
			t.Fatalf("request %d decodes differently:\n json   %+v\n binary %+v",
				i, viaJSON[i], viaBin[i])
		}
	}

	run := func(reqs []core.ServiceRequest) ([]core.ServiceOutcome, core.ServiceStats) {
		// Disk config: the corpus exercises NeedsIO, which a
		// main-memory-resident service rejects.
		svc, err := core.NewService(core.DiskConfig(core.CCA, 99), core.ServiceOptions{Speed: 5000})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done := make(chan error, 1)
		go func() { done <- svc.Run(ctx) }()
		outs := make([]core.ServiceOutcome, len(reqs))
		for i, req := range reqs {
			o, err := svc.Submit(ctx, req)
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			outs[i] = o
		}
		st, ok := svc.Stats()
		if !ok {
			t.Fatal("stats unavailable")
		}
		cancel()
		<-done
		return outs, st
	}

	outJSON, stJSON := run(viaJSON)
	outBin, stBin := run(viaBin)
	for i := range outJSON {
		// Sequential submission makes states and restart counts
		// deterministic; absolute times are wall-driven and may differ.
		if outJSON[i].State != outBin[i].State ||
			outJSON[i].Restarts != outBin[i].Restarts {
			t.Errorf("outcome %d diverged:\n json   %+v\n binary %+v",
				i, outJSON[i], outBin[i])
		}
	}
	if stJSON.Result.Committed != stBin.Result.Committed ||
		stJSON.Result.Dropped != stBin.Result.Dropped {
		t.Fatalf("engine counters diverged:\n json   %+v\n binary %+v",
			stJSON.Result, stBin.Result)
	}
	if stJSON.Result.Committed != len(corpus) {
		t.Fatalf("committed %d, want the whole corpus (%d)", stJSON.Result.Committed, len(corpus))
	}
}
