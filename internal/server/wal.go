// WAL glue: the server side of durable submissions. New opens the log
// (openWAL) and hands it to the service, so every accepted submission
// is appended before injection and every answer waits for its outcome
// record's fsync (see core.WALHook). On startup the log may hold
// unresolved submissions — accepted work whose client never got an
// answer before the last crash. ServeListeners resolves them exactly
// once, in a background replay that /healthz advertises as
// `recovering=true` until it finishes:
//
//   - with Options.Recover, each unresolved submission is re-run
//     through the unchanged engine (chunked SubmitBatch entries with
//     WALSeq set, so the service skips the duplicate submit append and
//     stamps the outcome FlagReplayed — the at-most-once marker a
//     reconnecting client uses to discard duplicate effects);
//   - without it, each is resolved with an aborted outcome record: the
//     log converges without re-executing work the operator chose not
//     to trust.
//
// Drain during replay is safe: submissions the service refuses stay
// unresolved (no record is appended on the pre-wrap ErrDraining path),
// so the next -recover run picks them up again.
package server

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/wal"
)

// replayChunk bounds one SubmitBatch of recovered submissions, so a
// large backlog replays in bounded bursts instead of flooding the
// engine's admission controller in one call.
const replayChunk = 256

// ReplayStats summarizes startup crash recovery for /metrics.
type ReplayStats struct {
	// Unresolved is how many submissions the scan found accepted but
	// unanswered.
	Unresolved int `json:"unresolved"`
	// Replayed were re-executed to a terminal outcome (Recover set).
	Replayed int64 `json:"replayed"`
	// Aborted were resolved with an aborted outcome record: Recover
	// unset, or the replay was refused by validation.
	Aborted int64 `json:"aborted"`
	// Failed were not re-executed (drain, shutdown, engine or log
	// failure); those still unresolved in the log are picked up by the
	// next recovery.
	Failed int64 `json:"failed"`
	// Done reports that the replay pass has finished.
	Done bool `json:"done"`
}

// replayState carries the counters the replay goroutine updates while
// /metrics reads them.
type replayState struct {
	unresolved int
	replayed   atomic.Int64
	aborted    atomic.Int64
	failed     atomic.Int64
}

// openWAL opens the write-ahead log per Options; (nil, nil, nil) when
// durability is disabled.
func openWAL(opts *Options) (*wal.Logger, *wal.Recovery, error) {
	if opts.WALDir == "" && opts.WALFS == nil {
		return nil, nil, nil
	}
	fsys := opts.WALFS
	if fsys == nil {
		d, err := wal.NewDirFS(opts.WALDir)
		if err != nil {
			return nil, nil, err
		}
		fsys = d
		// An on-disk WAL needs at least two Ps: every answer waits for
		// the sync goroutine's fsync, and with GOMAXPROCS=1 that
		// goroutine re-queues behind the whole run queue each time the
		// syscall returns, inflating the group-commit cycle (measured
		// ~6x under load on a single-CPU host). A second P lets the
		// fsync return resume immediately and overlap with request
		// processing. Raise-only, and only when durability is on.
		if runtime.GOMAXPROCS(0) < 2 {
			runtime.GOMAXPROCS(2)
		}
	}
	wo := wal.Options{
		FS:           fsys,
		SyncEvery:    opts.WALSync,
		SegmentBytes: opts.WALSegmentBytes,
		Retain:       opts.WALRetain,
	}
	if !opts.WALFileFaults.Zero() {
		if err := opts.WALFileFaults.Validate(); err != nil {
			return nil, nil, err
		}
		plan, seed := opts.WALFileFaults, opts.WALFaultSeed
		wo.WrapFile = func(name string, f wal.File) wal.File {
			return fault.WrapFile(seed, plan, name, f)
		}
	}
	return wal.Open(wo)
}

// Recovering reports that the startup replay of unresolved WAL records
// is still in progress (also on /healthz as recovering=true).
func (s *Server) Recovering() bool { return s.recovering.Load() }

// WAL returns the server's write-ahead log (nil when disabled) — test
// and tooling access.
func (s *Server) WAL() *wal.Logger { return s.wal }

// Recovery returns what the startup scan of the WAL found (nil when
// the WAL is disabled).
func (s *Server) Recovery() *wal.Recovery { return s.recovery }

// ReplayStats snapshots the recovery-replay counters.
func (s *Server) ReplayStats() ReplayStats {
	return ReplayStats{
		Unresolved: s.replay.unresolved,
		Replayed:   s.replay.replayed.Load(),
		Aborted:    s.replay.aborted.Load(),
		Failed:     s.replay.failed.Load(),
		Done:       !s.recovering.Load(),
	}
}

// replayWAL resolves every unresolved submission the startup scan
// found, then clears the recovering flag. Runs once, in the background,
// while the listeners already serve: new live traffic and replay
// traffic interleave safely because both flow through the same
// append-before-ack submit path.
func (s *Server) replayWAL(ctx context.Context) {
	defer close(s.replayDone)
	defer s.recovering.Store(false)
	unresolved := s.recovery.Unresolved
	if len(unresolved) == 0 {
		return
	}
	if !s.opts.Recover {
		// Resolve without re-execution: append an aborted outcome for
		// each record so the log converges. FlagReplayed marks these as
		// recovery-produced, not client-visible effects.
		for i := range unresolved {
			rec := wal.OutcomeRecord{
				Seq:    unresolved[i].Seq,
				Flags:  wal.FlagAborted | wal.FlagReplayed,
				State:  uint8(core.StateDropped),
				Missed: true,
			}
			if err := s.wal.AppendOutcome(&rec, nil); err != nil {
				s.replay.failed.Add(1)
				continue
			}
			s.replay.aborted.Add(1)
		}
		_ = s.wal.Sync()
		return
	}
	for start := 0; start < len(unresolved); start += replayChunk {
		if ctx.Err() != nil {
			// Shutdown mid-replay: everything not yet resolved stays
			// unresolved in the log for the next -recover run.
			s.replay.failed.Add(int64(len(unresolved) - start))
			return
		}
		end := start + replayChunk
		if end > len(unresolved) {
			end = len(unresolved)
		}
		var wg sync.WaitGroup
		subs := make([]core.Submission, 0, end-start)
		for i := start; i < end; i++ {
			rec := &unresolved[i]
			wg.Add(1)
			subs = append(subs, core.Submission{
				Req:    core.RequestFromWAL(rec),
				WALSeq: rec.Seq,
				Done: func(o core.ServiceOutcome, err error) {
					defer wg.Done()
					switch {
					case err == nil:
						s.replay.replayed.Add(1)
					case errors.Is(err, core.ErrDraining),
						errors.Is(err, core.ErrServiceStopped),
						errors.Is(err, core.ErrEngineFailed),
						errors.Is(err, core.ErrLogFailed):
						// Not re-executed; a record left unresolved (the
						// drain path refuses before any append) is picked
						// up by the next recovery.
						s.replay.failed.Add(1)
					default:
						// Refused by validation: WrapDone appended the
						// aborted outcome; the record is resolved.
						s.replay.aborted.Add(1)
					}
				},
			})
		}
		s.svc.SubmitBatch(subs)
		// One chunk in flight at a time: bounded engine load, and the
		// chunk's outcome records are durable before the next burst.
		wg.Wait()
	}
}
