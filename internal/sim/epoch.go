package sim

// Epoch support for sharded execution. Each shard owns an independent
// Simulator (its own calendar and clock); determinism across shards comes
// from agreeing on a fixed grid of simulated instants — epoch boundaries —
// at which cross-shard work is exchanged and applied in canonical order.
// Between boundaries the shards share nothing, so they may run on any
// number of OS threads in any interleaving without the outcome changing.

import (
	"fmt"
	"sync"
)

// EpochSchedule is the fixed epoch grid: boundary k is at k*Interval.
type EpochSchedule struct {
	Interval Time
}

// Boundary returns the simulated time of the k-th epoch boundary (k >= 1).
func (s EpochSchedule) Boundary(k int) Time {
	if s.Interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive epoch interval %v", s.Interval))
	}
	if k < 1 {
		panic(fmt.Sprintf("sim: epoch boundary index %d < 1", k))
	}
	return Time(k) * s.Interval
}

// EpochOf returns the index of the first boundary at or after t, i.e. the
// epoch during which an event at time t is exchanged. Events exactly on a
// boundary belong to that boundary's epoch.
func (s EpochSchedule) EpochOf(t Time) int {
	if s.Interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive epoch interval %v", s.Interval))
	}
	if t <= 0 {
		return 1
	}
	k := int((t + s.Interval - 1) / s.Interval)
	if k < 1 {
		k = 1
	}
	return k
}

// Lockstep runs n workers through synchronized rounds: every worker must
// finish round k before any worker starts round k+1. Workers run on their
// own goroutines inside a round, so a round's wall-clock cost is the
// slowest worker, not the sum — but the barrier guarantees that whatever
// the workers exchange between rounds is exchanged at a quiescent point.
type Lockstep struct {
	n    int
	errs []error
}

// NewLockstep returns a barrier for n workers.
func NewLockstep(n int) *Lockstep {
	if n < 1 {
		panic(fmt.Sprintf("sim: lockstep over %d workers", n))
	}
	return &Lockstep{n: n, errs: make([]error, n)}
}

// Round runs step(i) for every worker i concurrently and waits for all of
// them. If any step fails, Round returns the error of the lowest-indexed
// failing worker — a deterministic choice, so a failing sharded run
// reports the same error no matter how the goroutines interleave.
func (l *Lockstep) Round(step func(i int) error) error {
	if l.n == 1 {
		return step(0)
	}
	var wg sync.WaitGroup
	wg.Add(l.n)
	for i := 0; i < l.n; i++ {
		go func(i int) {
			defer wg.Done()
			l.errs[i] = step(i)
		}(i)
	}
	wg.Wait()
	for _, err := range l.errs {
		if err != nil {
			return err
		}
	}
	return nil
}
