package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestNewSimulatorStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", s.Pending())
	}
	if s.Executed() != 0 {
		t.Fatalf("Executed() = %d, want 0", s.Executed())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var got []Time
	for _, d := range []time.Duration{30, 10, 20, 5, 25} {
		d := d
		s.At(d, func() { got = append(got, s.Now()) })
	}
	s.Run()
	want := []Time{5, 10, 20, 25, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO tie-break violated)", i, v, i)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var fired Time = -1
	s.At(50, func() {
		s.After(25, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 75 {
		t.Fatalf("nested After fired at %v, want 75", fired)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	s := New()
	fired := false
	e := s.At(10, func() { fired = true })
	if !s.Cancel(e) {
		t.Fatal("Cancel returned false for a pending event")
	}
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if s.Cancel(e) {
		t.Fatal("second Cancel returned true")
	}
}

func TestCancelNilIsNoop(t *testing.T) {
	s := New()
	if s.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestCancelFiredEventReturnsFalse(t *testing.T) {
	s := New()
	e := s.At(1, func() {})
	s.Run()
	if s.Cancel(e) {
		t.Fatal("Cancel of fired event returned true")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := New()
	var got []int
	var events []*Event
	for i := 0; i < 20; i++ {
		i := i
		events = append(events, s.At(Time(i), func() { got = append(got, i) }))
	}
	// Cancel every third event.
	for i := 0; i < 20; i += 3 {
		s.Cancel(events[i])
	}
	s.Run()
	for _, v := range got {
		if v%3 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(got) != 13 {
		t.Fatalf("fired %d events, want 13", len(got))
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(5, func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestNilFuncPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil event func did not panic")
		}
	}()
	s.At(1, nil)
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New()
	fired := 0
	s.At(10, func() { fired++ })
	s.At(20, func() { fired++ })
	s.At(30, func() { fired++ })
	s.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (events at t<=20)", fired)
	}
	if s.Now() != 20 {
		t.Fatalf("Now() = %v, want 20", s.Now())
	}
	s.RunUntil(100)
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
	if s.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", s.Now())
	}
}

func TestRunLimitBoundsExecution(t *testing.T) {
	s := New()
	// Self-perpetuating event chain.
	var tick func()
	tick = func() { s.After(1, tick) }
	s.After(1, tick)
	n := s.RunLimit(500)
	if n != 500 {
		t.Fatalf("RunLimit fired %d, want 500", n)
	}
	if s.Executed() != 500 {
		t.Fatalf("Executed() = %d, want 500", s.Executed())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Fatal("Step() on empty calendar returned true")
	}
}

func TestEventAtAccessor(t *testing.T) {
	s := New()
	e := s.At(42, func() {})
	if e.At() != 42 {
		t.Fatalf("At() = %v, want 42", e.At())
	}
	if !e.Pending() {
		t.Fatal("freshly scheduled event not pending")
	}
}

func TestClockMonotone(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(7))
	var last Time = -1
	for i := 0; i < 200; i++ {
		s.At(Time(rng.Intn(1000)), func() {
			if s.Now() < last {
				t.Fatalf("clock went backwards: %v after %v", s.Now(), last)
			}
			last = s.Now()
		})
	}
	s.Run()
}

func TestEventsScheduledDuringRunFire(t *testing.T) {
	s := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			s.After(10, recurse)
		}
	}
	s.After(10, recurse)
	s.Run()
	if depth != 5 {
		t.Fatalf("recursion depth = %d, want 5", depth)
	}
	if s.Now() != 50 {
		t.Fatalf("Now() = %v, want 50", s.Now())
	}
}

// Property: for any slice of non-negative offsets, events fire in sorted
// order and the clock ends at the max.
func TestQuickOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := New()
		var fireTimes []Time
		for _, r := range raw {
			s.At(Time(r), func() { fireTimes = append(fireTimes, s.Now()) })
		}
		s.Run()
		if len(fireTimes) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fireTimes, func(i, j int) bool { return fireTimes[i] < fireTimes[j] }) {
			return false
		}
		want := make([]Time, len(raw))
		for i, r := range raw {
			want[i] = Time(r)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fireTimes[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset leaves exactly the complement to fire.
func TestQuickCancellationProperty(t *testing.T) {
	f := func(raw []uint16, mask []bool) bool {
		s := New()
		fired := make(map[int]bool)
		var events []*Event
		for i, r := range raw {
			i := i
			events = append(events, s.At(Time(r), func() { fired[i] = true }))
		}
		cancelled := make(map[int]bool)
		for i := range events {
			if i < len(mask) && mask[i] {
				s.Cancel(events[i])
				cancelled[i] = true
			}
		}
		s.Run()
		for i := range raw {
			if cancelled[i] == fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.At(Time(j%97), func() {})
		}
		s.Run()
	}
}
