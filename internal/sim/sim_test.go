package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestNewSimulatorStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", s.Pending())
	}
	if s.Executed() != 0 {
		t.Fatalf("Executed() = %d, want 0", s.Executed())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var got []Time
	for _, d := range []time.Duration{30, 10, 20, 5, 25} {
		d := d
		s.At(d, func() { got = append(got, s.Now()) })
	}
	s.Run()
	want := []Time{5, 10, 20, 25, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO tie-break violated)", i, v, i)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var fired Time = -1
	s.At(50, func() {
		s.After(25, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 75 {
		t.Fatalf("nested After fired at %v, want 75", fired)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	s := New()
	fired := false
	e := s.At(10, func() { fired = true })
	if !s.Cancel(e) {
		t.Fatal("Cancel returned false for a pending event")
	}
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if s.Cancel(e) {
		t.Fatal("second Cancel returned true")
	}
}

func TestCancelZeroHandleIsNoop(t *testing.T) {
	s := New()
	if s.Cancel(Handle{}) {
		t.Fatal("Cancel of the zero handle returned true")
	}
	if (Handle{}).Pending() || (Handle{}).Cancelled() {
		t.Fatal("zero handle reports pending or cancelled")
	}
}

func TestCancelFiredEventReturnsFalse(t *testing.T) {
	s := New()
	e := s.At(1, func() {})
	s.Run()
	if s.Cancel(e) {
		t.Fatal("Cancel of fired event returned true")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := New()
	var got []int
	var events []Handle
	for i := 0; i < 20; i++ {
		i := i
		events = append(events, s.At(Time(i), func() { got = append(got, i) }))
	}
	// Cancel every third event.
	for i := 0; i < 20; i += 3 {
		s.Cancel(events[i])
	}
	s.Run()
	for _, v := range got {
		if v%3 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(got) != 13 {
		t.Fatalf("fired %d events, want 13", len(got))
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(5, func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestNilFuncPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil event func did not panic")
		}
	}()
	s.At(1, nil)
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New()
	fired := 0
	s.At(10, func() { fired++ })
	s.At(20, func() { fired++ })
	s.At(30, func() { fired++ })
	s.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (events at t<=20)", fired)
	}
	if s.Now() != 20 {
		t.Fatalf("Now() = %v, want 20", s.Now())
	}
	s.RunUntil(100)
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
	if s.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", s.Now())
	}
}

func TestRunLimitBoundsExecution(t *testing.T) {
	s := New()
	// Self-perpetuating event chain.
	var tick func()
	tick = func() { s.After(1, tick) }
	s.After(1, tick)
	n := s.RunLimit(500)
	if n != 500 {
		t.Fatalf("RunLimit fired %d, want 500", n)
	}
	if s.Executed() != 500 {
		t.Fatalf("Executed() = %d, want 500", s.Executed())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Fatal("Step() on empty calendar returned true")
	}
}

func TestEventAtAccessor(t *testing.T) {
	s := New()
	e := s.At(42, func() {})
	if e.At() != 42 {
		t.Fatalf("At() = %v, want 42", e.At())
	}
	if !e.Pending() {
		t.Fatal("freshly scheduled event not pending")
	}
}

func TestClockMonotone(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(7))
	var last Time = -1
	for i := 0; i < 200; i++ {
		s.At(Time(rng.Intn(1000)), func() {
			if s.Now() < last {
				t.Fatalf("clock went backwards: %v after %v", s.Now(), last)
			}
			last = s.Now()
		})
	}
	s.Run()
}

func TestEventsScheduledDuringRunFire(t *testing.T) {
	s := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			s.After(10, recurse)
		}
	}
	s.After(10, recurse)
	s.Run()
	if depth != 5 {
		t.Fatalf("recursion depth = %d, want 5", depth)
	}
	if s.Now() != 50 {
		t.Fatalf("Now() = %v, want 50", s.Now())
	}
}

// Property: for any slice of non-negative offsets, events fire in sorted
// order and the clock ends at the max.
func TestQuickOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := New()
		var fireTimes []Time
		for _, r := range raw {
			s.At(Time(r), func() { fireTimes = append(fireTimes, s.Now()) })
		}
		s.Run()
		if len(fireTimes) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fireTimes, func(i, j int) bool { return fireTimes[i] < fireTimes[j] }) {
			return false
		}
		want := make([]Time, len(raw))
		for i, r := range raw {
			want[i] = Time(r)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fireTimes[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset leaves exactly the complement to fire.
func TestQuickCancellationProperty(t *testing.T) {
	f := func(raw []uint16, mask []bool) bool {
		s := New()
		fired := make(map[int]bool)
		var events []Handle
		for i, r := range raw {
			i := i
			events = append(events, s.At(Time(r), func() { fired[i] = true }))
		}
		cancelled := make(map[int]bool)
		for i := range events {
			if i < len(mask) && mask[i] {
				s.Cancel(events[i])
				cancelled[i] = true
			}
		}
		s.Run()
		for i := range raw {
			if cancelled[i] == fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- handle semantics under record pooling ------------------------------

// TestFiredHandleIsInertAfterRecycle is the core pooling-safety regression:
// once an event fires, its record goes back to the free list and is reused
// for the next scheduled event. A stale handle to the fired event must stay
// a complete no-op — Cancel false, Pending false, Cancelled false — and in
// particular must not cancel or otherwise disturb the recycled record's new
// event.
func TestFiredHandleIsInertAfterRecycle(t *testing.T) {
	s := New()
	h1 := s.At(10, func() {})
	s.Run()
	// The first At refilled the free list with a whole slab; the fired
	// record went back on top of it.
	if s.FreeListLen() != eventSlabSize {
		t.Fatalf("free list holds %d records after one fire, want %d", s.FreeListLen(), eventSlabSize)
	}

	secondFired := false
	h2 := s.At(20, func() { secondFired = true })
	if h2.ev != h1.ev {
		t.Fatal("second event did not reuse the recycled record (LIFO free list)")
	}
	// The stale handle is inert in every way.
	if h1.Pending() {
		t.Error("fired handle reports pending after its record was recycled")
	}
	if h1.Cancelled() {
		t.Error("fired handle reports cancelled")
	}
	if s.Cancel(h1) {
		t.Error("Cancel of a fired handle returned true")
	}
	// ...and crucially did not kill the recycled record's new event.
	if !h2.Pending() {
		t.Fatal("recycled record's new event lost its pending state")
	}
	s.Run()
	if !secondFired {
		t.Fatal("stale Cancel suppressed the recycled record's event")
	}
}

// TestCancelledHandleIsInertAfterRecycle: same guarantee for a handle whose
// event was cancelled (rather than fired) before the record was reused —
// and Cancelled() keeps answering for the right incarnation on both sides.
func TestCancelledHandleIsInertAfterRecycle(t *testing.T) {
	s := New()
	h1 := s.At(10, func() { t.Error("cancelled event fired") })
	if !s.Cancel(h1) {
		t.Fatal("Cancel of a pending event returned false")
	}
	if !h1.Cancelled() {
		t.Fatal("handle not marked cancelled before reuse")
	}

	fired := false
	h2 := s.At(20, func() { fired = true })
	if h2.ev != h1.ev {
		t.Fatal("second event did not reuse the cancelled record")
	}
	// h1's incarnation was cancelled; h2's was not (yet).
	if !h1.Cancelled() {
		t.Error("cancelled handle forgot its cancellation after record reuse")
	}
	if h1.Pending() {
		t.Error("cancelled handle reports pending after record reuse")
	}
	if h2.Cancelled() {
		t.Error("fresh event reports cancelled because its record's previous incarnation was")
	}
	if s.Cancel(h1) {
		t.Error("double Cancel via a stale handle returned true")
	}
	s.Run()
	if !fired {
		t.Fatal("stale double-Cancel suppressed the recycled record's event")
	}
}

// TestHandleAtSurvivesRecycling: the scheduled time is captured in the
// handle, so At() stays correct after the record is reused at a different
// time.
func TestHandleAtSurvivesRecycling(t *testing.T) {
	s := New()
	h1 := s.At(7, func() {})
	s.Run()
	s.At(99, func() {})
	if h1.At() != 7 {
		t.Fatalf("stale handle At() = %v, want 7", h1.At())
	}
}

// TestPoolReusesRecordsBounded: a long event chain with only one event
// pending at a time must run the whole chain on a single record.
func TestPoolReusesRecordsBounded(t *testing.T) {
	s := New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 1000 {
			s.After(1, tick)
		}
	}
	s.After(1, tick)
	s.Run()
	if n != 1000 {
		t.Fatalf("chain ran %d ticks, want 1000", n)
	}
	// The whole chain ran on the one slab allocated by the first After: the
	// free list never dipped below slab size - 1 and ends exactly full.
	if s.FreeListLen() != eventSlabSize {
		t.Fatalf("free list holds %d records after a serial chain, want %d", s.FreeListLen(), eventSlabSize)
	}
}

// TestUnpooledSemanticsMatch: the unpooled calendar must behave identically
// (ordering, cancellation, handle checks) — it only skips record reuse.
func TestUnpooledSemanticsMatch(t *testing.T) {
	s := NewUnpooled()
	var got []Time
	h := s.At(5, func() { t.Error("cancelled event fired") })
	for _, d := range []time.Duration{30, 10, 20} {
		s.At(d, func() { got = append(got, s.Now()) })
	}
	if !s.Cancel(h) {
		t.Fatal("Cancel failed on unpooled calendar")
	}
	if !h.Cancelled() || h.Pending() {
		t.Fatal("handle state wrong after unpooled Cancel")
	}
	s.Run()
	want := []Time{10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
	if s.FreeListLen() != 0 {
		t.Fatalf("unpooled simulator grew a free list of %d", s.FreeListLen())
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.At(Time(j%97), func() {})
		}
		s.Run()
	}
}

// benchCalendarChurn drives the regime engines put the calendar through:
// a bounded number of pending events recycled through schedule/fire (and
// an occasional cancel) hundreds of thousands of times.
func benchCalendarChurn(b *testing.B, s func() *Simulator) {
	b.Helper()
	b.ReportAllocs()
	fn := func() {}
	for i := 0; i < b.N; i++ {
		sim := s()
		for j := 0; j < 64; j++ {
			sim.At(Time(j), fn)
		}
		for j := 0; j < 100000; j++ {
			h := sim.After(Time(17+(j%13)), fn)
			if j%7 == 0 {
				sim.Cancel(h)
			}
			sim.Step()
		}
		sim.Run()
	}
}

func BenchmarkCalendarChurnPooled(b *testing.B)   { benchCalendarChurn(b, New) }
func BenchmarkCalendarChurnUnpooled(b *testing.B) { benchCalendarChurn(b, NewUnpooled) }
