// Package sim implements a deterministic discrete-event simulation kernel.
//
// It is the Go equivalent of the SIMPACK event-scheduling core the paper's
// original C simulator was built on: a virtual clock, an event calendar
// ordered by firing time, and cancellable events. Events scheduled for the
// same instant fire in FIFO order of scheduling, which makes every run fully
// deterministic for a given seed and input.
//
// The kernel is single-threaded by design. Parallelism in this repository
// lives above the kernel: the experiment harness runs many independent
// simulations (seeds x sweep points x policies) concurrently, each with its
// own Simulator.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in simulated time, expressed as an offset from the start
// of the simulation. Using time.Duration gives nanosecond resolution, far
// finer than the paper's millisecond-scale parameters.
type Time = time.Duration

// Event is a scheduled callback. It is returned by Simulator.At and
// Simulator.After so that callers can cancel it before it fires.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	index     int // position in the heap, -1 once removed
	cancelled bool
}

// At returns the simulated time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called on the event before it fired.
func (e *Event) Cancelled() bool { return e.cancelled }

// Pending reports whether the event is still in the calendar.
func (e *Event) Pending() bool { return e.index >= 0 }

// Simulator owns the virtual clock and the event calendar.
type Simulator struct {
	now      Time
	seq      uint64
	calendar eventHeap
	executed uint64
	running  bool
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Executed returns the number of events that have fired so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending returns the number of events still scheduled.
func (s *Simulator) Pending() int { return len(s.calendar) }

// At schedules fn to run at absolute simulated time t. It panics if t is in
// the past; scheduling at the current instant is allowed and fires after all
// previously scheduled events for that instant (FIFO order).
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event function")
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.calendar, e)
	return e
}

// After schedules fn to run d after the current simulated time.
func (s *Simulator) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event with negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a scheduled event from the calendar. It reports whether the
// event was still pending; cancelling an already-fired or already-cancelled
// event is a harmless no-op that returns false.
func (s *Simulator) Cancel(e *Event) bool {
	if e == nil || e.index < 0 {
		return false
	}
	e.cancelled = true
	heap.Remove(&s.calendar, e.index)
	return true
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event was fired.
func (s *Simulator) Step() bool {
	if len(s.calendar) == 0 {
		return false
	}
	e := heap.Pop(&s.calendar).(*Event)
	s.now = e.at
	s.executed++
	e.fn()
	return true
}

// Run fires events until the calendar drains.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with firing time <= t, then advances the clock to t.
// Events scheduled exactly at t do fire.
func (s *Simulator) RunUntil(t Time) {
	for len(s.calendar) > 0 && s.calendar[0].at <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunLimit fires at most n events; it returns the number actually fired.
// It exists as a guard for tests that want to bound runaway simulations.
func (s *Simulator) RunLimit(n uint64) uint64 {
	var fired uint64
	for fired < n && s.Step() {
		fired++
	}
	return fired
}

// eventHeap is a min-heap ordered by (time, scheduling sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
