// Package sim implements a deterministic discrete-event simulation kernel.
//
// It is the Go equivalent of the SIMPACK event-scheduling core the paper's
// original C simulator was built on: a virtual clock, an event calendar
// ordered by firing time, and cancellable events. Events scheduled for the
// same instant fire in FIFO order of scheduling, which makes every run fully
// deterministic for a given seed and input.
//
// The kernel is single-threaded by design. Parallelism in this repository
// lives above the kernel: the experiment harness runs many independent
// simulations (seeds x sweep points x policies) concurrently, each with its
// own Simulator.
//
// Engines schedule hundreds of thousands of events per run, so the calendar
// recycles event records through a per-Simulator free list instead of
// allocating each one on the heap. Callers hold generation-checked Handle
// values: a Handle captures the incarnation of the record it was issued
// for, so Cancel (or Pending/Cancelled) on a handle whose event has already
// fired is a guaranteed no-op even after the record has been reused for an
// unrelated event. NewUnpooled retains the original allocate-per-event
// calendar for the equivalence suite and allocation benchmarks; behaviour
// is bit-identical either way.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in simulated time, expressed as an offset from the start
// of the simulation. Using time.Duration gives nanosecond resolution, far
// finer than the paper's millisecond-scale parameters.
type Time = time.Duration

// Event is one scheduled-callback record in the calendar. Records are owned
// and recycled by the Simulator; callers refer to them only through the
// generation-checked Handle returned by At and After.
type Event struct {
	at  Time
	seq uint64
	fn  func()
	// index is the record's position in the heap, -1 once removed.
	index int
	// gen is the record's incarnation counter: it is bumped every time the
	// record leaves the calendar (fire or cancel), so a Handle issued for
	// an earlier incarnation can never act on a recycled record.
	gen uint64
	// cancelledGen remembers the incarnation (if any) that was removed by
	// Cancel rather than by firing, so Handle.Cancelled stays answerable
	// after the record is recycled.
	cancelledGen uint64
}

// Handle is a caller's reference to one scheduled event. It is a small
// value (no allocation) pairing the calendar record with the incarnation it
// was issued for. The zero Handle refers to no event: Pending and Cancelled
// report false and Cancel is a no-op.
type Handle struct {
	ev  *Event
	gen uint64
	at  Time
}

// At returns the simulated time the event was scheduled to fire. It remains
// valid after the event fires or is cancelled (the time is captured in the
// handle). The zero Handle returns 0.
func (h Handle) At() Time { return h.at }

// Pending reports whether the event is still in the calendar: it has
// neither fired nor been cancelled. A stale handle — one whose record has
// been recycled for a different event — reports false.
func (h Handle) Pending() bool { return h.ev != nil && h.ev.gen == h.gen }

// Cancelled reports whether Cancel removed this handle's event before it
// fired. It answers for exactly the incarnation the handle was issued for:
// a handle whose event fired reports false forever, even after the
// underlying record is recycled and the new incarnation is cancelled.
func (h Handle) Cancelled() bool { return h.ev != nil && h.ev.cancelledGen == h.gen }

// eventSlabSize is the batch size for refilling a pooled simulator's free
// list: records are allocated in slabs so calendar growth amortises to one
// allocation per slab.
const eventSlabSize = 64

// Simulator owns the virtual clock and the event calendar.
type Simulator struct {
	now      Time
	seq      uint64
	calendar eventHeap
	executed uint64
	// free holds recycled event records (LIFO); nil disables pooling
	// entirely (NewUnpooled) — pool reports whether pooling is on, since
	// an empty pooled free list is also nil-lengthed.
	free []*Event
	pool bool
}

// New returns an empty simulator with the clock at zero. Event records are
// pooled: each fire or cancel returns the record to a free list for the
// next At/After, so a long run's calendar allocates only up to its
// high-water mark of concurrently pending events.
func New() *Simulator {
	return &Simulator{pool: true}
}

// NewUnpooled returns a simulator that allocates a fresh record for every
// scheduled event — the original calendar, retained so the equivalence
// suite and the allocation benchmarks can compare against it. Handle
// semantics (generation checks included) are identical to the pooled
// calendar.
func NewUnpooled() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Executed returns the number of events that have fired so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending returns the number of events still scheduled.
func (s *Simulator) Pending() int { return len(s.calendar) }

// NextAt returns the firing time of the earliest pending event. ok is false
// when the calendar is empty. It is the peek a clock driver needs to decide
// how long to sleep before the next Step.
func (s *Simulator) NextAt() (t Time, ok bool) {
	if len(s.calendar) == 0 {
		return 0, false
	}
	return s.calendar[0].at, true
}

// FreeListLen returns the number of recycled records currently available
// for reuse (0 for an unpooled simulator); exposed for tests.
func (s *Simulator) FreeListLen() int { return len(s.free) }

// At schedules fn to run at absolute simulated time t. It panics if t is in
// the past; scheduling at the current instant is allowed and fires after all
// previously scheduled events for that instant (FIFO order).
func (s *Simulator) At(t Time, fn func()) Handle {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event function")
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else if s.pool {
		// Refill the free list a slab at a time: growing the calendar to its
		// high-water mark costs one allocation per batch, not per event.
		// gen starts at 1 so a zero Handle (gen 0) can never match, and
		// cancelledGen 0 means "no incarnation was ever cancelled".
		slab := make([]Event, eventSlabSize)
		for i := range slab {
			slab[i].gen = 1
		}
		for i := eventSlabSize - 1; i > 0; i-- {
			s.free = append(s.free, &slab[i])
		}
		e = &slab[0]
	} else {
		e = &Event{gen: 1}
	}
	e.at, e.seq, e.fn = t, s.seq, fn
	s.seq++
	heap.Push(&s.calendar, e)
	return Handle{ev: e, gen: e.gen, at: t}
}

// After schedules fn to run d after the current simulated time.
func (s *Simulator) After(d time.Duration, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event with negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// recycle retires a record that has left the calendar: its incarnation is
// closed (so stale handles go inert) and, on a pooled simulator, the record
// is returned to the free list.
func (s *Simulator) recycle(e *Event) {
	e.gen++
	e.fn = nil
	if s.pool {
		s.free = append(s.free, e)
	}
}

// Cancel removes a scheduled event from the calendar. It reports whether the
// event was still pending; cancelling an already-fired, already-cancelled or
// zero handle is a harmless no-op that returns false and can never disturb a
// recycled record (the handle's generation no longer matches).
func (s *Simulator) Cancel(h Handle) bool {
	e := h.ev
	if e == nil || e.gen != h.gen {
		return false
	}
	heap.Remove(&s.calendar, e.index)
	e.cancelledGen = e.gen
	s.recycle(e)
	return true
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event was fired.
func (s *Simulator) Step() bool {
	if len(s.calendar) == 0 {
		return false
	}
	e := heap.Pop(&s.calendar).(*Event)
	s.now = e.at
	s.executed++
	fn := e.fn
	// Recycle before running the callback: the fired incarnation is over,
	// so the callback (and anything it schedules) may reuse the record —
	// a handle to the fired event is already inert by generation check.
	s.recycle(e)
	fn()
	return true
}

// Run fires events until the calendar drains.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with firing time <= t, then advances the clock to t.
// Events scheduled exactly at t do fire.
func (s *Simulator) RunUntil(t Time) {
	for len(s.calendar) > 0 && s.calendar[0].at <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunLimit fires at most n events; it returns the number actually fired.
// It exists as a guard for tests that want to bound runaway simulations.
func (s *Simulator) RunLimit(n uint64) uint64 {
	var fired uint64
	for fired < n && s.Step() {
		fired++
	}
	return fired
}

// eventHeap is a min-heap ordered by (time, scheduling sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
