// Realtime drives a Simulator's calendar against the wall clock. This is
// the repository's Clock abstraction: the calendar, the event records and
// every engine callback are exactly the ones the virtual-time path uses —
// the only thing that changes is who decides when the next event fires.
// The virtual driver (Simulator.Run and the engine's Run loop) fires events
// as fast as the CPU allows; the real-time driver sleeps until the wall
// instant an event is due and folds in work injected asynchronously from
// other goroutines (arriving transaction requests, cancellations, metric
// probes).
//
// Because the calendar itself is untouched, a virtual-time run is
// bit-identical to what it was before this file existed — the equivalence
// matrix in internal/core proves it — and everything proven about the
// engine under the simulator (determinism, the paper's theorems, the
// oracle's checks) transfers unchanged to the wall-clock service.
//
// Shutdown discipline: the driver may be asleep for a long time (an idle
// server, a disk retry backoff minutes away). Every sleep is a
// timer+select on the context, an injected-call wakeup and the timer, so
// cancellation interrupts any sleep immediately — a real-time engine must
// never block shutdown on a sleeping retry timer.
package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// RealtimeOptions tune a Realtime driver.
type RealtimeOptions struct {
	// Speed is the ratio of simulated time to wall time (default 1: one
	// simulated second per wall second). Tests compress time with large
	// speeds; the engine's millisecond-scale events then fire in
	// microseconds of wall time.
	Speed float64
	// StallBudget bounds how many consecutive events may fire without the
	// simulated clock advancing before Run fails with a stall error — the
	// wall-clock analogue of the engine's watchdog. 0 picks a generous
	// default; < 0 disables the check.
	StallBudget int
	// Check, when non-nil, runs after every catch-up batch (and after
	// every injected call batch); a non-nil error stops the driver and is
	// returned by Run. The service layer uses it to surface live oracle
	// violations.
	Check func() error
}

// ErrStopped reports a Call against a driver whose Run has returned.
var ErrStopped = errors.New("sim: realtime driver stopped")

const defaultStallBudget = 1 << 20

// Realtime runs a Simulator in wall-clock time. Construct with NewRealtime,
// start the single driver goroutine with Run, and inject work from any
// goroutine with Call. The Simulator must not be touched by any other
// goroutine while Run is live; everything goes through Call.
type Realtime struct {
	s     *Simulator
	speed float64
	stall int
	check func() error

	mu      sync.Mutex
	calls   []func()
	started bool
	stopped bool
	start   time.Time

	wake chan struct{}
}

// NewRealtime returns a driver for s. The simulator may already hold
// scheduled events; they fire at their mapped wall instants once Run
// starts.
func NewRealtime(s *Simulator, opt RealtimeOptions) *Realtime {
	speed := opt.Speed
	if speed == 0 {
		speed = 1
	}
	if speed < 0 {
		panic(fmt.Sprintf("sim: realtime speed %v < 0", speed))
	}
	stall := opt.StallBudget
	if stall == 0 {
		stall = defaultStallBudget
	}
	return &Realtime{
		s:     s,
		speed: speed,
		stall: stall,
		check: opt.Check,
		wake:  make(chan struct{}, 1),
	}
}

// Now returns the driver's current simulated time: the calendar clock once
// Run has started (mapped to the wall), zero before. It is safe from any
// goroutine but only approximate outside the driver goroutine; injected
// calls observe the exact advanced clock via Simulator.Now.
func (r *Realtime) Now() Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started {
		return 0
	}
	return r.simNow(time.Now())
}

// simNow maps a wall instant to simulated time. Callers hold r.mu or run
// on the driver goroutine after start (r.start is written once).
func (r *Realtime) simNow(wall time.Time) Time {
	return Time(float64(wall.Sub(r.start)) * r.speed)
}

// wallFor maps a simulated time to the wall instant it is due.
func (r *Realtime) wallFor(t Time) time.Time {
	return r.start.Add(time.Duration(float64(t) / r.speed))
}

// Call enqueues fn to run on the driver goroutine, with the simulated
// clock advanced to the current wall instant — the injection point for
// asynchronously arriving work. Calls run in submission order, before any
// event due later. It returns ErrStopped once Run has returned (fn will
// never run); a call enqueued while Run is shutting down may also be
// dropped, so waiters must additionally select on their own stop signal.
func (r *Realtime) Call(fn func()) error {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return ErrStopped
	}
	r.calls = append(r.calls, fn)
	r.mu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default:
	}
	return nil
}

// Run drives the calendar until the context is cancelled or a check/stall
// error occurs. It must be called exactly once, and it owns the Simulator
// until it returns. Pending calls that never got to run are dropped once
// Run returns; subsequent Calls return ErrStopped.
func (r *Realtime) Run(ctx context.Context) error {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		panic("sim: Realtime.Run called twice")
	}
	r.started = true
	r.start = time.Now()
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.stopped = true
		r.calls = nil
		r.mu.Unlock()
	}()

	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()

	for {
		// Cancellation wins over any amount of due work: an overloaded
		// server must still shut down promptly.
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}

		// Catch up: fire everything due at the current wall instant, then
		// fold in injected calls at that instant. Calls may schedule new
		// due events (an arrival dispatches immediately), so loop until
		// neither source has anything due.
		target := r.simNow(time.Now())
		if err := r.stepUntil(target); err != nil {
			return err
		}
		r.mu.Lock()
		calls := r.calls
		r.calls = nil
		r.mu.Unlock()
		for _, fn := range calls {
			fn()
		}
		if r.check != nil {
			if err := r.check(); err != nil {
				return err
			}
		}
		if len(calls) > 0 {
			continue // calls may have scheduled events already due
		}
		if next, ok := r.s.NextAt(); ok {
			d := time.Until(r.wallFor(next))
			if d <= 0 {
				continue
			}
			timer.Reset(d)
			select {
			case <-ctx.Done():
				if !timer.Stop() {
					<-timer.C
				}
				return ctx.Err()
			case <-r.wake:
				if !timer.Stop() {
					<-timer.C
				}
			case <-timer.C:
			}
		} else {
			// Idle: nothing scheduled; sleep until injected work or
			// cancellation.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-r.wake:
			}
		}
	}
}

// stepUntil fires every event due at or before target and advances the
// clock to target, guarding against a calendar that churns events without
// the simulated clock advancing (the stall watchdog).
func (r *Realtime) stepUntil(target Time) error {
	var (
		stallAt    Time
		stallCount int
	)
	for {
		next, ok := r.s.NextAt()
		if !ok || next > target {
			break
		}
		r.s.Step()
		if r.stall > 0 {
			if now := r.s.Now(); now != stallAt {
				stallAt, stallCount = now, 0
			} else if stallCount++; stallCount > r.stall {
				return fmt.Errorf("sim: realtime stall: %d events at t=%v without the clock advancing", stallCount, time.Duration(stallAt))
			}
		}
	}
	r.s.RunUntil(target)
	return nil
}
