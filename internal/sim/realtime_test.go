package sim

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestRealtimeFiresInOrder checks that events scheduled before Run fire in
// calendar order at (compressed) wall pace and that the clock lands past
// the last event.
func TestRealtimeFiresInOrder(t *testing.T) {
	s := New()
	var fired []int
	all := make(chan struct{})
	for i := 1; i <= 5; i++ {
		i := i
		s.At(Time(i)*Time(time.Millisecond), func() {
			fired = append(fired, i)
			if len(fired) == 5 {
				close(all)
			}
		})
	}
	rt := NewRealtime(s, RealtimeOptions{Speed: 100})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rt.Run(ctx) }()

	select {
	case <-all:
	case <-time.After(5 * time.Second):
		t.Fatal("events did not fire in time")
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if len(fired) != 5 {
		t.Fatalf("fired %d events, want 5", len(fired))
	}
	for i, v := range fired {
		if v != i+1 {
			t.Fatalf("fired order %v, want ascending", fired)
		}
	}
}

// TestRealtimeCallInjection checks that Call runs its closure on the driver
// goroutine with the clock advanced, that closures can schedule events that
// then fire, and that calls submitted before Run still execute.
func TestRealtimeCallInjection(t *testing.T) {
	s := New()
	rt := NewRealtime(s, RealtimeOptions{Speed: 1000})

	early := make(chan Time, 1)
	if err := rt.Call(func() { early <- s.Now() }); err != nil {
		t.Fatalf("Call before Run: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- rt.Run(ctx) }()

	select {
	case <-early:
	case <-time.After(5 * time.Second):
		t.Fatal("pre-Run call never executed")
	}

	fired := make(chan Time, 1)
	if err := rt.Call(func() {
		s.After(time.Millisecond, func() { fired <- s.Now() })
	}); err != nil {
		t.Fatalf("Call: %v", err)
	}
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("event scheduled by an injected call never fired")
	}

	cancel()
	<-done
	if err := rt.Call(func() {}); !errors.Is(err, ErrStopped) {
		t.Fatalf("Call after stop returned %v, want ErrStopped", err)
	}
}

// TestRealtimeCancelDuringBackoff is the shutdown regression for the
// wall-clock path: with the only pending event a long retry backoff (the
// disk's transient-error retries schedule exactly this shape), cancelling
// the context must interrupt the sleep immediately — shutdown must never
// block on a sleeping retry timer.
func TestRealtimeCancelDuringBackoff(t *testing.T) {
	s := New()
	// One event an hour of simulated time away: the driver will go to
	// sleep on its timer for ~an hour of wall time at Speed 1.
	s.After(time.Hour, func() { t.Error("backoff event fired") })
	rt := NewRealtime(s, RealtimeOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rt.Run(ctx) }()

	time.Sleep(20 * time.Millisecond) // let the driver reach its sleep
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("shutdown took %v; a sleeping timer blocked it", waited)
	}
}

// TestRealtimeIdleWakeup checks that a driver with an empty calendar parks
// and is woken by an injected call rather than spinning.
func TestRealtimeIdleWakeup(t *testing.T) {
	s := New()
	rt := NewRealtime(s, RealtimeOptions{Speed: 1000})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- rt.Run(ctx) }()

	time.Sleep(10 * time.Millisecond) // idle park
	ran := make(chan struct{})
	if err := rt.Call(func() { close(ran) }); err != nil {
		t.Fatalf("Call: %v", err)
	}
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("idle driver never woke for an injected call")
	}
	cancel()
	<-done
}

// TestRealtimeCheckStops checks that a failing Check hook stops the driver
// with its error.
func TestRealtimeCheckStops(t *testing.T) {
	s := New()
	boom := errors.New("oracle violation")
	var once sync.Once
	failing := false
	rt := NewRealtime(s, RealtimeOptions{Speed: 1000, Check: func() error {
		if failing {
			return boom
		}
		return nil
	}})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- rt.Run(ctx) }()
	once.Do(func() {})
	if err := rt.Call(func() { failing = true }); err != nil {
		t.Fatalf("Call: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("Run returned %v, want the check error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("driver did not stop on a failing check")
	}
}

// TestRealtimeStallWatchdog checks that a same-instant event livelock is
// detected instead of spinning forever.
func TestRealtimeStallWatchdog(t *testing.T) {
	s := New()
	// A self-rescheduling zero-delay event: the simulated clock never
	// advances past its first firing instant.
	var spin func()
	spin = func() { s.After(0, spin) }
	s.After(0, spin)
	rt := NewRealtime(s, RealtimeOptions{Speed: 1000, StallBudget: 1000})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- rt.Run(ctx) }()
	select {
	case err := <-done:
		if err == nil || errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want a stall error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stall watchdog never tripped")
	}
}
