package sim

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestEpochScheduleBoundary(t *testing.T) {
	s := EpochSchedule{Interval: Time(10 * time.Millisecond)}
	if got := s.Boundary(1); got != Time(10*time.Millisecond) {
		t.Fatalf("Boundary(1) = %v", got)
	}
	if got := s.Boundary(7); got != Time(70*time.Millisecond) {
		t.Fatalf("Boundary(7) = %v", got)
	}
}

func TestEpochOf(t *testing.T) {
	s := EpochSchedule{Interval: Time(10 * time.Millisecond)}
	cases := []struct {
		at   Time
		want int
	}{
		{0, 1},
		{Time(1 * time.Millisecond), 1},
		{Time(10 * time.Millisecond), 1}, // exactly on the boundary
		{Time(10*time.Millisecond) + 1, 2},
		{Time(25 * time.Millisecond), 3},
	}
	for _, c := range cases {
		if got := s.EpochOf(c.at); got != c.want {
			t.Errorf("EpochOf(%v) = %d, want %d", c.at, got, c.want)
		}
		// Consistency: an event at t is applied no later than its epoch's
		// boundary, and after the previous one.
		k := s.EpochOf(c.at)
		if b := s.Boundary(k); b < c.at {
			t.Errorf("EpochOf(%v) = %d but Boundary(%d) = %v is earlier", c.at, k, k, b)
		}
	}
}

func TestLockstepRoundsAreBarriers(t *testing.T) {
	const n, rounds = 4, 50
	l := NewLockstep(n)
	var entered atomic.Int64
	for r := 0; r < rounds; r++ {
		err := l.Round(func(i int) error {
			entered.Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// After Round returns, every worker of this round has finished.
		if got := entered.Load(); got != int64((r+1)*n) {
			t.Fatalf("round %d: %d steps ran, want %d", r, got, (r+1)*n)
		}
	}
}

func TestLockstepLowestIndexedError(t *testing.T) {
	l := NewLockstep(4)
	e1 := errors.New("worker 1")
	e3 := errors.New("worker 3")
	for trial := 0; trial < 20; trial++ {
		err := l.Round(func(i int) error {
			switch i {
			case 1:
				return e1
			case 3:
				return e3
			}
			return nil
		})
		if err != e1 {
			t.Fatalf("trial %d: Round error = %v, want lowest-indexed %v", trial, err, e1)
		}
	}
}

func TestLockstepSingleWorkerInline(t *testing.T) {
	l := NewLockstep(1)
	ran := false
	if err := l.Round(func(i int) error { ran = true; return nil }); err != nil || !ran {
		t.Fatalf("single-worker round: ran=%v err=%v", ran, err)
	}
}
