package chaos

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Counters is a point-in-time view of a proxy's traffic and the faults
// it has assigned and fired.
type Counters struct {
	Accepted   int64 `json:"accepted"`
	DialErrors int64 `json:"dial_errors"`
	// Planned fault assignments, by kind (drawn at accept time).
	ResetsPlanned     int64 `json:"resets_planned"`
	TruncatesPlanned  int64 `json:"truncates_planned"`
	BlackholesPlanned int64 `json:"blackholes_planned"`
	Throttled         int64 `json:"throttled"`
	// ResetsFired counts planned resets that actually tripped before
	// the connection ended for another reason.
	ResetsFired int64 `json:"resets_fired"`
}

// Proxy is a chaos TCP proxy: it accepts client connections, dials the
// target for each, and relays bytes both ways through the fault
// schedule drawn for that connection's accept index. Faults are
// injected on the client-facing side, so both request and response
// bytes pass through them; the target sees an ordinary peer that
// sometimes resets, stalls, or trickles.
type Proxy struct {
	ln          net.Listener
	target      string
	seed        int64
	plan        Plan
	dialTimeout time.Duration

	accepted   atomic.Int64
	dialErrors atomic.Int64
	planned    [4]atomic.Int64 // reset, truncate, blackhole, throttle

	mu     sync.Mutex
	conns  map[net.Conn]*Conn // tracked pairs: upstream -> wrapped client side
	closed bool
	wg     sync.WaitGroup

	resetsFired atomic.Int64
}

// NewProxy builds a chaos proxy from ln to target. The plan may be
// zero, which makes the proxy a plain relay — useful as the control arm
// of a chaos experiment.
func NewProxy(ln net.Listener, target string, seed int64, plan Plan) (*Proxy, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Proxy{
		ln:          ln,
		target:      target,
		seed:        seed,
		plan:        plan,
		dialTimeout: 5 * time.Second,
		conns:       make(map[net.Conn]*Conn),
	}, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() net.Addr { return p.ln.Addr() }

// Counters snapshots the proxy's traffic counters.
func (p *Proxy) Counters() Counters {
	return Counters{
		Accepted:          p.accepted.Load(),
		DialErrors:        p.dialErrors.Load(),
		ResetsPlanned:     p.planned[0].Load(),
		TruncatesPlanned:  p.planned[1].Load(),
		BlackholesPlanned: p.planned[2].Load(),
		Throttled:         p.planned[3].Load(),
		ResetsFired:       p.resetsFired.Load(),
	}
}

// Serve accepts and relays until the listener fails or Close is called
// (which returns nil).
func (p *Proxy) Serve() error {
	for {
		nc, err := p.ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("chaos: accept: %w", err)
		}
		idx := int(p.accepted.Add(1)) - 1
		sc := p.plan.ScheduleFor(p.seed, idx)
		if sc.ResetAfter > 0 {
			p.planned[0].Add(1)
			if sc.TruncateWrite {
				p.planned[1].Add(1)
			}
		}
		if sc.BlackholeFor > 0 {
			p.planned[2].Add(1)
		}
		if sc.ThrottleBps > 0 {
			p.planned[3].Add(1)
		}
		p.wg.Add(1)
		go p.relay(nc, sc)
	}
}

// Close stops accepting and severs every relayed connection, then waits
// for the relay goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.closed = true
	ups := make([]net.Conn, 0, len(p.conns))
	cls := make([]*Conn, 0, len(p.conns))
	for up, cl := range p.conns {
		ups = append(ups, up)
		if cl != nil {
			cls = append(cls, cl)
		}
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, up := range ups {
		up.Close()
	}
	for _, cl := range cls {
		cl.Close()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) relay(client net.Conn, sc Schedule) {
	defer p.wg.Done()
	up, err := net.DialTimeout("tcp", p.target, p.dialTimeout)
	if err != nil {
		p.dialErrors.Add(1)
		client.Close()
		return
	}
	if tc, ok := client.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if tc, ok := up.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}

	faulted := WrapConn(client, sc)
	chaosConn, _ := faulted.(*Conn)

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		up.Close()
		faulted.Close()
		return
	}
	p.conns[up] = chaosConn
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.conns, up)
		p.mu.Unlock()
		if chaosConn != nil && chaosConn.ResetFired() {
			p.resetsFired.Add(1)
		}
	}()

	// Two copiers; whichever direction dies first severs the other so
	// neither goroutine leaks. Half-close is deliberately not preserved:
	// the wire protocol never uses it, and chaos semantics are "the
	// connection died", not "one direction finished politely".
	var once sync.Once
	sever := func() {
		once.Do(func() {
			up.Close()
			faulted.Close()
		})
	}
	var inner sync.WaitGroup
	inner.Add(1)
	go func() {
		defer inner.Done()
		io.Copy(up, faulted) // client -> target through the fault path
		sever()
	}()
	io.Copy(faulted, up) // target -> client through the fault path
	sever()
	inner.Wait()
}
