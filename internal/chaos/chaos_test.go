package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"reflect"
	"testing"
	"time"
)

// aggressive is a plan with every fault class armed, used where tests
// want schedules that actually contain something.
var aggressive = Plan{
	ResetProb:           0.7,
	ResetAfterMeanBytes: 4096,
	TruncateProb:        0.5,
	BlackholeProb:       0.4,
	BlackholeAfterMean:  10 * time.Millisecond,
	BlackholeFor:        20 * time.Millisecond,
	ThrottleProb:        0.3,
	ThrottleBytesPerSec: 1 << 20,
	WriteDelayProb:      0.2,
	WriteDelayMax:       time.Millisecond,
}

// TestScheduleDeterminism is the acceptance criterion: the same (seed,
// plan) pair materializes the identical fault schedule for every
// connection index, and a different seed materializes a different one.
func TestScheduleDeterminism(t *testing.T) {
	const n = 200
	a := make([]Schedule, n)
	b := make([]Schedule, n)
	for i := 0; i < n; i++ {
		a[i] = aggressive.ScheduleFor(42, i)
		b[i] = aggressive.ScheduleFor(42, i)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules")
	}
	diff := false
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(a[i], aggressive.ScheduleFor(43, i)) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatalf("seeds 42 and 43 produced identical schedules for all %d connections", n)
	}
	// Coverage sanity: with these probabilities, 200 draws must assign
	// every fault class at least once.
	var resets, truncs, holes, throttles int
	for _, sc := range a {
		if sc.ResetAfter > 0 {
			resets++
			if sc.TruncateWrite {
				truncs++
			}
		}
		if sc.BlackholeFor > 0 {
			holes++
		}
		if sc.ThrottleBps > 0 {
			throttles++
		}
	}
	if resets == 0 || truncs == 0 || holes == 0 || throttles == 0 {
		t.Fatalf("fault classes not all exercised: resets=%d truncates=%d blackholes=%d throttles=%d",
			resets, truncs, holes, throttles)
	}
}

// TestScheduleIndependentOfOtherKnobs: disabling one fault class must
// not change what another class draws for the same index (fixed draw
// order, fixed draw count per class).
func TestScheduleIndependentOfOtherKnobs(t *testing.T) {
	noReset := aggressive
	noReset.ResetProb = 0
	for i := 0; i < 100; i++ {
		full := aggressive.ScheduleFor(7, i)
		part := noReset.ScheduleFor(7, i)
		if part.ResetAfter != 0 {
			t.Fatalf("conn %d: ResetProb 0 still planned a reset", i)
		}
		if part.BlackholeAt != full.BlackholeAt || part.BlackholeFor != full.BlackholeFor ||
			part.ThrottleBps != full.ThrottleBps {
			t.Fatalf("conn %d: disabling resets perturbed other draws: %+v vs %+v", i, part, full)
		}
	}
}

// TestZeroPlanPassthrough is the zero-overhead guarantee: wrapping with
// a zero plan or schedule returns the argument itself.
func TestZeroPlanPassthrough(t *testing.T) {
	if !(Plan{}).Zero() {
		t.Fatalf("zero Plan not Zero()")
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if got := WrapConn(c1, Schedule{}); got != c1 {
		t.Fatalf("WrapConn(zero) returned a wrapper, want the conn itself")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if got := WrapListener(ln, 1, Plan{}); got != ln {
		t.Fatalf("WrapListener(zero) returned a wrapper, want the listener itself")
	}
	// And the allocation side of the claim.
	if n := testing.AllocsPerRun(100, func() {
		_ = WrapConn(c1, Schedule{})
	}); n != 0 {
		t.Fatalf("zero-schedule WrapConn allocates %v per call", n)
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{ResetProb: -0.1},
		{ResetProb: 1.5},
		{TruncateProb: 2},
		{BlackholeProb: 0.5, BlackholeFor: -time.Second},
		{ThrottleProb: 0.5, ThrottleBytesPerSec: -1},
		{WriteDelayProb: 0.5, WriteDelayMax: -time.Millisecond},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d validated", i)
		}
	}
	if err := aggressive.Validate(); err != nil {
		t.Fatalf("aggressive plan rejected: %v", err)
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan(`{"reset_prob":0.5,"blackhole_prob":0.1,"blackhole_for_ns":1000000}`)
	if err != nil {
		t.Fatal(err)
	}
	if p.ResetProb != 0.5 || p.BlackholeFor != time.Millisecond {
		t.Fatalf("parsed plan wrong: %+v", p)
	}
	if _, err := ParsePlan(`{"reset_prob":7}`); err == nil {
		t.Fatalf("out-of-range probability accepted")
	}
	if _, err := ParsePlan(`{"rest_prob":0.5}`); err == nil {
		t.Fatalf("unknown field accepted")
	}
}

// tcpPair returns a connected loopback TCP pair.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		server, _ = ln.Accept()
		close(done)
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if server == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

// TestResetAfterBudget: a planned reset trips once the byte budget is
// crossed; our side sees ErrInjectedReset, the peer sees a hard error.
func TestResetAfterBudget(t *testing.T) {
	client, server := tcpPair(t)
	w := NewConn(client, Schedule{ResetAfter: 100})
	buf := make([]byte, 64)
	var total int
	var lastErr error
	for i := 0; i < 10; i++ {
		n, err := w.Write(buf)
		total += n
		if err != nil {
			lastErr = err
			break
		}
		// Drain on the peer so the loopback buffers never matter.
		io.ReadFull(server, make([]byte, n))
	}
	if !errors.Is(lastErr, ErrInjectedReset) {
		t.Fatalf("wanted ErrInjectedReset after budget, got total=%d err=%v", total, lastErr)
	}
	if !w.ResetFired() {
		t.Fatalf("ResetFired false after injected reset")
	}
	if _, err := w.Write(buf); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset write error = %v", err)
	}
	if _, err := w.Read(buf); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset read error = %v", err)
	}
	// The peer's next read must fail (RST or EOF depending on timing).
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		if _, err := server.Read(buf); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatalf("peer never observed the reset")
			}
			return
		}
	}
}

// TestTruncatedWrite: with TruncateWrite the budget-crossing write
// delivers exactly the remaining bytes, then resets.
func TestTruncatedWrite(t *testing.T) {
	client, server := tcpPair(t)
	w := NewConn(client, Schedule{ResetAfter: 10, TruncateWrite: true})
	n, err := w.Write(bytes.Repeat([]byte{0xAB}, 64))
	if n != 10 || !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("truncated write = (%d, %v), want (10, ErrInjectedReset)", n, err)
	}
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, _ := io.ReadAll(server)
	if len(got) > 10 {
		t.Fatalf("peer received %d bytes past the truncation point", len(got))
	}
}

// TestBlackholeHonorsDeadline: a read stalled by a blackhole window
// still times out at the deadline the caller set — the slow-loris
// guard above the injector keeps working.
func TestBlackholeHonorsDeadline(t *testing.T) {
	client, _ := tcpPair(t)
	w := NewConn(client, Schedule{BlackholeAt: 0, BlackholeFor: 10 * time.Second})
	w.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err := w.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("blackholed read error = %v, want deadline exceeded", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("blackholed read error is not a timeout net.Error: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not cut the blackhole short (%v)", elapsed)
	}
}

// TestBlackholeWakesOnClose: closing the connection releases a stalled
// operation immediately.
func TestBlackholeWakesOnClose(t *testing.T) {
	client, _ := tcpPair(t)
	w := NewConn(client, Schedule{BlackholeAt: 0, BlackholeFor: 10 * time.Second})
	errCh := make(chan error, 1)
	go func() {
		_, err := w.Read(make([]byte, 1))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	w.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("read after close = %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("close did not wake the blackholed read")
	}
}

// TestWriteDelaysDeterministic: the per-write delay draws come from the
// schedule's seed, so two conns with the same schedule stall the same
// writes by the same amounts.
func TestWriteDelaysDeterministic(t *testing.T) {
	sc := Schedule{WriteDelayProb: 0.5, WriteDelayMax: time.Millisecond, WriteSeed: 99}
	draw := func() []time.Duration {
		c1, c2 := net.Pipe()
		defer c1.Close()
		go io.Copy(io.Discard, c2)
		w := NewConn(c1, sc)
		var ds []time.Duration
		for i := 0; i < 32; i++ {
			w.dmu.Lock()
			var d time.Duration
			if w.wrng.Float64() < sc.WriteDelayProb {
				d = time.Duration(w.wrng.Int63n(int64(sc.WriteDelayMax)) + 1)
			}
			w.dmu.Unlock()
			ds = append(ds, d)
		}
		return ds
	}
	if !reflect.DeepEqual(draw(), draw()) {
		t.Fatalf("write-delay draws differ across conns with the same schedule")
	}
}

// TestProxyRelay: a zero-plan proxy is a faithful relay end to end.
func TestProxyRelay(t *testing.T) {
	echo, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer echo.Close()
	go func() {
		for {
			c, err := echo.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()

	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	px, err := NewProxy(pln, echo.Addr().String(), 1, Plan{})
	if err != nil {
		t.Fatal(err)
	}
	go px.Serve()
	defer px.Close()

	c, err := net.Dial("tcp", px.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("through the looking glass")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("relay corrupted bytes: %q", got)
	}
	if cs := px.Counters(); cs.Accepted != 1 || cs.ResetsPlanned != 0 {
		t.Fatalf("counters = %+v", cs)
	}
}

// TestProxyInjectsReset: with ResetProb 1 and a tiny budget every
// proxied connection dies, and the client observes a hard error rather
// than a hang.
func TestProxyInjectsReset(t *testing.T) {
	sink, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	go func() {
		for {
			c, err := sink.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()

	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	px, err := NewProxy(pln, sink.Addr().String(), 5, Plan{ResetProb: 1, ResetAfterMeanBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	go px.Serve()
	defer px.Close()

	c, err := net.Dial("tcp", px.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(10 * time.Second))
	buf := bytes.Repeat([]byte{1}, 256)
	sawErr := false
	for i := 0; i < 1000; i++ {
		if _, err := c.Write(buf); err != nil {
			sawErr = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !sawErr {
		t.Fatalf("client never observed the injected reset")
	}
	cs := px.Counters()
	if cs.ResetsPlanned == 0 {
		t.Fatalf("no reset planned with ResetProb 1: %+v", cs)
	}
}
