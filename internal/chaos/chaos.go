// Package chaos injects deterministic network faults into real TCP
// connections: forced resets, blackhole windows, byte-level throttling,
// delayed writes and mid-frame truncation. It is the wall-clock sibling
// of internal/fault — where fault.Plan perturbs the simulated engine,
// chaos.Plan perturbs the serving path that carries traffic to it.
//
// Determinism is the design center. A Plan never draws randomness at
// fault time: every connection's faults are fully materialized into a
// Schedule when the connection is wrapped, drawn from a named substream
// of the run seed keyed by the connection's accept index (stream
// "chaos/conn/N", via stats.Source). The same (seed, Plan) pair
// therefore always assigns the same faults to the same connections, no
// matter how goroutines interleave — what stays nondeterministic is
// only where in the byte stream the kernel happens to slice reads,
// which the hardened layers above must tolerate anyway.
//
// The zero Plan is a provable no-op: WrapConn and WrapListener return
// their argument unchanged (pointer identity), so a disabled injector
// costs nothing — no wrapper, no allocation, no extra call on the hot
// path.
package chaos

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// ErrInjectedReset is the error surfaced on the wrapped side of a
// connection the injector reset. The peer observes a real TCP RST (the
// socket is closed with SO_LINGER 0), not this sentinel.
var ErrInjectedReset = errors.New("chaos: injected connection reset")

// Plan declares the faults to inject into a listener's connections. The
// zero value injects nothing and wrapping with it is an identity
// operation. Probabilities are per connection (drawn once at accept)
// except WriteDelayProb, which is per write. Durations encode as
// integer nanoseconds in JSON, matching fault.Plan.
type Plan struct {
	// ResetProb is the probability a connection is assigned a forced
	// reset after an exponentially distributed number of transferred
	// bytes (mean ResetAfterMeanBytes, default 16384). The reset closes
	// the socket with SO_LINGER 0 so the peer sees ECONNRESET.
	ResetProb float64 `json:"reset_prob,omitempty"`
	// ResetAfterMeanBytes is the mean byte budget before a planned
	// reset fires (default 16384).
	ResetAfterMeanBytes int64 `json:"reset_after_mean_bytes,omitempty"`

	// TruncateProb is, for connections assigned a reset, the probability
	// the reset additionally truncates the write that crosses the byte
	// budget — the peer receives a partial frame followed by RST, the
	// nastiest failure a length-prefixed protocol can see.
	TruncateProb float64 `json:"truncate_prob,omitempty"`

	// BlackholeProb is the probability a connection is assigned one
	// blackhole window: for BlackholeFor (default 1s), starting an
	// exponentially distributed time after accept (mean
	// BlackholeAfterMean, default 250ms), all reads and writes stall —
	// bytes neither flow nor error, exactly like a dead middlebox.
	BlackholeProb float64 `json:"blackhole_prob,omitempty"`
	// BlackholeAfterMean is the mean delay from accept to the window
	// opening (default 250ms).
	BlackholeAfterMean time.Duration `json:"blackhole_after_mean_ns,omitempty"`
	// BlackholeFor is the window length (default 1s).
	BlackholeFor time.Duration `json:"blackhole_for_ns,omitempty"`

	// ThrottleProb is the probability a connection is throttled to
	// ThrottleBytesPerSec (default 64 KiB/s) in each direction.
	ThrottleProb float64 `json:"throttle_prob,omitempty"`
	// ThrottleBytesPerSec is the throttled rate (default 65536).
	ThrottleBytesPerSec int64 `json:"throttle_bytes_per_sec,omitempty"`

	// WriteDelayProb is the per-write probability of stalling the write
	// by a uniform duration in (0, WriteDelayMax] (default 20ms) —
	// jitter that reorders flush timing without corrupting bytes.
	WriteDelayProb float64 `json:"write_delay_prob,omitempty"`
	// WriteDelayMax bounds one injected write delay (default 20ms).
	WriteDelayMax time.Duration `json:"write_delay_max_ns,omitempty"`
}

// Zero reports whether the plan injects nothing. Wrapping with a zero
// plan returns the wrapped value unchanged.
func (p Plan) Zero() bool {
	return p.ResetProb == 0 && p.BlackholeProb == 0 &&
		p.ThrottleProb == 0 && p.WriteDelayProb == 0
}

// Validate reports the first problem with the plan.
func (p Plan) Validate() error {
	for name, prob := range map[string]float64{
		"ResetProb":      p.ResetProb,
		"TruncateProb":   p.TruncateProb,
		"BlackholeProb":  p.BlackholeProb,
		"ThrottleProb":   p.ThrottleProb,
		"WriteDelayProb": p.WriteDelayProb,
	} {
		if prob < 0 || prob > 1 {
			return fmt.Errorf("chaos: %s %v outside [0,1]", name, prob)
		}
	}
	if p.ResetAfterMeanBytes < 0 {
		return fmt.Errorf("chaos: ResetAfterMeanBytes %d < 0", p.ResetAfterMeanBytes)
	}
	if p.BlackholeAfterMean < 0 {
		return fmt.Errorf("chaos: BlackholeAfterMean %v < 0", p.BlackholeAfterMean)
	}
	if p.BlackholeFor < 0 {
		return fmt.Errorf("chaos: BlackholeFor %v < 0", p.BlackholeFor)
	}
	if p.ThrottleBytesPerSec < 0 {
		return fmt.Errorf("chaos: ThrottleBytesPerSec %d < 0", p.ThrottleBytesPerSec)
	}
	if p.WriteDelayMax < 0 {
		return fmt.Errorf("chaos: WriteDelayMax %v < 0", p.WriteDelayMax)
	}
	return nil
}

// ParsePlan decodes a JSON plan (strictly: unknown fields are errors,
// catching typos in CLI flags) and validates it.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	dec := json.NewDecoder(strings.NewReader(s))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("chaos: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

func (p Plan) resetMean() int64 {
	if p.ResetAfterMeanBytes > 0 {
		return p.ResetAfterMeanBytes
	}
	return 16384
}

func (p Plan) blackholeAfter() time.Duration {
	if p.BlackholeAfterMean > 0 {
		return p.BlackholeAfterMean
	}
	return 250 * time.Millisecond
}

func (p Plan) blackholeFor() time.Duration {
	if p.BlackholeFor > 0 {
		return p.BlackholeFor
	}
	return time.Second
}

func (p Plan) throttleBps() int64 {
	if p.ThrottleBytesPerSec > 0 {
		return p.ThrottleBytesPerSec
	}
	return 64 << 10
}

func (p Plan) writeDelayMax() time.Duration {
	if p.WriteDelayMax > 0 {
		return p.WriteDelayMax
	}
	return 20 * time.Millisecond
}

// Schedule is one connection's fully materialized fault assignment — a
// pure function of (seed, plan, accept index). Materializing up front
// is what makes chaos runs reproducible: no draw depends on goroutine
// timing, only on the accept order.
type Schedule struct {
	// Conn is the accept index the schedule was drawn for.
	Conn int
	// ResetAfter is the total transferred-byte budget (both directions)
	// after which the connection is reset; 0 means no reset planned.
	ResetAfter int64
	// TruncateWrite cuts short the write that crosses ResetAfter, so
	// the peer sees a partial frame before the RST.
	TruncateWrite bool
	// BlackholeAt/BlackholeFor delimit the stall window relative to the
	// wrap time; BlackholeFor == 0 means no window.
	BlackholeAt  time.Duration
	BlackholeFor time.Duration
	// ThrottleBps caps the transfer rate per direction; 0 = unlimited.
	ThrottleBps int64
	// WriteDelayProb/WriteDelayMax inject per-write stalls, drawn from
	// the deterministic per-connection stream seeded by WriteSeed.
	WriteDelayProb float64
	WriteDelayMax  time.Duration
	WriteSeed      int64
}

// Zero reports whether the schedule injects nothing.
func (sc Schedule) Zero() bool {
	return sc.ResetAfter == 0 && sc.BlackholeFor == 0 &&
		sc.ThrottleBps == 0 && sc.WriteDelayProb == 0
}

// ScheduleFor materializes the fault schedule for the connection with
// the given accept index. Same (seed, plan, index) ⇒ same schedule; the
// draw order below is fixed and every branch draws the same number of
// variates, so schedules for one connection are independent of the
// plan's other knobs firing or not.
func (p Plan) ScheduleFor(seed int64, index int) Schedule {
	st := stats.NewSource(seed).Stream(fmt.Sprintf("chaos/conn/%d", index))
	sc := Schedule{Conn: index}
	if u, v, w := st.Float64(), st.Exponential(float64(p.resetMean())), st.Float64(); u < p.ResetProb {
		sc.ResetAfter = 1 + int64(v)
		sc.TruncateWrite = w < p.TruncateProb
	}
	if u, v := st.Float64(), st.Exponential(float64(p.blackholeAfter())); u < p.BlackholeProb {
		sc.BlackholeAt = time.Duration(v)
		sc.BlackholeFor = p.blackholeFor()
	}
	if st.Float64() < p.ThrottleProb {
		sc.ThrottleBps = p.throttleBps()
	}
	sc.WriteDelayProb = p.WriteDelayProb
	sc.WriteDelayMax = p.writeDelayMax()
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/chaos/write/%d", seed, index)
	sc.WriteSeed = int64(h.Sum64())
	return sc
}

// WrapConn applies a schedule to a connection. A zero schedule returns
// nc itself — the passthrough guarantee.
func WrapConn(nc net.Conn, sc Schedule) net.Conn {
	if sc.Zero() {
		return nc
	}
	return NewConn(nc, sc)
}

// WrapListener injects the plan into every connection ln accepts,
// assigning accept index 0, 1, 2, ... in order. A zero plan returns ln
// itself.
func WrapListener(ln net.Listener, seed int64, p Plan) net.Listener {
	if p.Zero() {
		return ln
	}
	return &listener{Listener: ln, seed: seed, plan: p}
}

type listener struct {
	net.Listener
	seed int64
	plan Plan
	next atomic.Int64
}

func (l *listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	sc := l.plan.ScheduleFor(l.seed, int(l.next.Add(1))-1)
	return WrapConn(nc, sc), nil
}

// Conn wraps a net.Conn with an injected fault schedule. It tracks
// read/write deadlines itself so an injected stall (blackhole,
// throttle, write delay) still honors the deadline the layer above set
// — a server's idle-timeout guard keeps working even when the fault
// injector is the thing stalling the connection.
type Conn struct {
	nc    net.Conn
	sc    Schedule
	start time.Time

	closed    chan struct{}
	closeOnce sync.Once

	moved      atomic.Int64 // bytes transferred, both directions
	resetFired atomic.Bool

	dmu       sync.Mutex // guards deadlines and the write-delay rng
	rdeadline time.Time
	wdeadline time.Time
	wrng      *rand.Rand
}

// NewConn wraps nc with the schedule unconditionally (callers wanting
// the zero-schedule passthrough use WrapConn).
func NewConn(nc net.Conn, sc Schedule) *Conn {
	return &Conn{
		nc:     nc,
		sc:     sc,
		start:  time.Now(),
		closed: make(chan struct{}),
		wrng:   rand.New(rand.NewSource(sc.WriteSeed)),
	}
}

// Schedule returns the connection's fault assignment.
func (c *Conn) Schedule() Schedule { return c.sc }

// ResetFired reports whether the planned reset has been injected.
func (c *Conn) ResetFired() bool { return c.resetFired.Load() }

func (c *Conn) deadline(write bool) time.Time {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	if write {
		return c.wdeadline
	}
	return c.rdeadline
}

// stall sleeps for d, waking early on close or on the direction's
// deadline. It returns a timeout error when the deadline cut the sleep
// short, net.ErrClosed when the connection closed under it.
func (c *Conn) stall(d time.Duration, write bool) error {
	if d <= 0 {
		return nil
	}
	timedOut := false
	if dl := c.deadline(write); !dl.IsZero() {
		if until := time.Until(dl); until < d {
			d = until
			timedOut = true
		}
	}
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-c.closed:
			return net.ErrClosed
		}
	}
	if timedOut {
		return os.ErrDeadlineExceeded
	}
	return nil
}

// gate enforces the connection-level faults that precede any transfer:
// an already-fired reset and the blackhole window.
func (c *Conn) gate(write bool) error {
	select {
	case <-c.closed:
		return net.ErrClosed
	default:
	}
	if c.resetFired.Load() {
		return ErrInjectedReset
	}
	if c.sc.BlackholeFor > 0 {
		since := time.Since(c.start)
		if since >= c.sc.BlackholeAt && since < c.sc.BlackholeAt+c.sc.BlackholeFor {
			if err := c.stall(c.sc.BlackholeAt+c.sc.BlackholeFor-since, write); err != nil {
				return err
			}
			if c.resetFired.Load() {
				return ErrInjectedReset
			}
		}
	}
	return nil
}

// throttle paces n transferred bytes at the scheduled rate.
func (c *Conn) throttle(n int, write bool) error {
	if c.sc.ThrottleBps <= 0 || n <= 0 {
		return nil
	}
	d := time.Duration(int64(n) * int64(time.Second) / c.sc.ThrottleBps)
	return c.stall(d, write)
}

// reset fires the planned reset: the peer gets a real RST (linger 0),
// our side reports ErrInjectedReset from now on.
func (c *Conn) reset() {
	if !c.resetFired.CompareAndSwap(false, true) {
		return
	}
	if tc, ok := c.nc.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.nc.Close()
}

func (c *Conn) Read(p []byte) (int, error) {
	if err := c.gate(false); err != nil {
		return 0, err
	}
	if c.sc.ResetAfter > 0 && c.moved.Load() >= c.sc.ResetAfter {
		c.reset()
		return 0, ErrInjectedReset
	}
	n, err := c.nc.Read(p)
	c.moved.Add(int64(n))
	if n > 0 {
		// Pacing only: data already delivered is returned regardless of
		// whether the stall was cut short by a deadline or close.
		_ = c.throttle(n, false)
	}
	return n, err
}

func (c *Conn) Write(p []byte) (int, error) {
	if err := c.gate(true); err != nil {
		return 0, err
	}
	if c.sc.WriteDelayProb > 0 {
		c.dmu.Lock()
		delay := time.Duration(0)
		if c.wrng.Float64() < c.sc.WriteDelayProb {
			delay = time.Duration(c.wrng.Int63n(int64(c.sc.WriteDelayMax)) + 1)
		}
		c.dmu.Unlock()
		if err := c.stall(delay, true); err != nil {
			return 0, err
		}
	}
	if c.sc.ResetAfter > 0 {
		remaining := c.sc.ResetAfter - c.moved.Load()
		if remaining <= 0 {
			c.reset()
			return 0, ErrInjectedReset
		}
		if int64(len(p)) > remaining && c.sc.TruncateWrite {
			// Mid-frame truncation: deliver the prefix, then RST.
			n, _ := c.nc.Write(p[:remaining])
			c.moved.Add(int64(n))
			c.reset()
			return n, ErrInjectedReset
		}
	}
	n, err := c.nc.Write(p)
	c.moved.Add(int64(n))
	if err == nil {
		if terr := c.throttle(n, true); terr != nil {
			return n, terr
		}
	}
	if err == nil && c.sc.ResetAfter > 0 && c.moved.Load() >= c.sc.ResetAfter {
		// The budget-crossing write is delivered whole (no truncation
		// planned); the reset lands between frames.
		c.reset()
	}
	return n, err
}

func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		err = c.nc.Close()
	})
	return err
}

func (c *Conn) LocalAddr() net.Addr  { return c.nc.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

func (c *Conn) SetDeadline(t time.Time) error {
	c.dmu.Lock()
	c.rdeadline, c.wdeadline = t, t
	c.dmu.Unlock()
	return c.nc.SetDeadline(t)
}

func (c *Conn) SetReadDeadline(t time.Time) error {
	c.dmu.Lock()
	c.rdeadline = t
	c.dmu.Unlock()
	return c.nc.SetReadDeadline(t)
}

func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.dmu.Lock()
	c.wdeadline = t
	c.dmu.Unlock()
	return c.nc.SetWriteDeadline(t)
}

