package wire

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/txn"
)

// Backend is what the wire server needs from the serving stack. The
// HTTP server's batcher implements it, so both front-ends shed, drain
// and report through exactly the same admission machinery.
type Backend interface {
	// Enqueue hands one submission to the serving path. It must not
	// block; false means the request was shed (queues full / draining)
	// and nothing will be called back. On true, c.Complete(id, ...) fires
	// exactly once with the terminal outcome or error, and c.OnHandle
	// may fire once (before or after Complete) with a cancel handle.
	Enqueue(id uint64, req core.ServiceRequest, c Completer) bool
	// RetryAfterSecs is the admission-derived backoff hint attached to
	// shed and rejected responses. It may block briefly (it is only
	// called from connection reader/writer goroutines, never from the
	// engine driver).
	RetryAfterSecs() int
	// Draining reports whether the service has begun its shutdown drain.
	Draining() bool
	// HealthErr reports nil when the service is live.
	HealthErr() error
	// MetricsBody renders the same JSON document HTTP /metrics serves.
	MetricsBody() ([]byte, error)
}

// Completer receives the outcome of an enqueued submission. Both
// methods may be invoked on the engine's driver goroutine and must not
// block.
type Completer interface {
	Complete(id uint64, o core.ServiceOutcome, err error)
	OnHandle(id uint64, h core.SubmitHandle)
}

// ServerOptions tune the wire front-end; zero values pick defaults.
type ServerOptions struct {
	// MaxInflightPerConn caps pipelined submissions per connection;
	// excess submits are shed with a Retry-After. Default 1024.
	MaxInflightPerConn int
	// MaxFrame bounds one frame. Default DefaultMaxFrame.
	MaxFrame int
	// FlushTimeout bounds each socket write/flush. Default 10s.
	FlushTimeout time.Duration
	// IdleTimeout is the rolling per-frame read deadline: a connection
	// that fails to deliver one complete frame within it is closed and
	// counted (slow-loris / half-open guard). The deadline re-arms
	// before every frame, so a healthy pipelined connection is never
	// cut no matter how long it lives. Default 2m; negative disables.
	IdleTimeout time.Duration
}

// Counters is a point-in-time view of the wire front-end's traffic.
type Counters struct {
	Conns      int   `json:"conns"`       // currently open connections
	Submits    int64 `json:"submits"`     // submissions handed to the backend
	Shed       int64 `json:"shed"`        // submissions refused before reaching the engine
	BadFrames  int64 `json:"bad_frames"`  // submit frames that failed to decode
	IdleClosed int64 `json:"idle_closed"` // connections cut by the idle read deadline
	Panics     int64 `json:"panics"`      // connection goroutines recovered from a panic
}

// Server serves the wire protocol over persistent pipelined TCP
// connections. Each connection gets a reader goroutine (decode, shed or
// enqueue) and a writer goroutine (encode responses, flushing only when
// its queue momentarily drains — the batching that makes pipelining
// pay). Responses stream back in completion order, not arrival order.
type Server struct {
	b           Backend
	maxInflight int
	maxFrame    int
	flushEvery  time.Duration
	idleEvery   time.Duration // 0 = no idle deadline

	submits    atomic.Int64
	shed       atomic.Int64
	badFrames  atomic.Int64
	idleClosed atomic.Int64
	panics     atomic.Int64

	mu     sync.Mutex
	conns  map[*conn]struct{}
	lns    map[net.Listener]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds a wire server over b.
func NewServer(b Backend, opt ServerOptions) *Server {
	if opt.MaxInflightPerConn <= 0 {
		opt.MaxInflightPerConn = 1024
	}
	if opt.MaxFrame <= 0 {
		opt.MaxFrame = DefaultMaxFrame
	}
	if opt.FlushTimeout <= 0 {
		opt.FlushTimeout = 10 * time.Second
	}
	switch {
	case opt.IdleTimeout == 0:
		opt.IdleTimeout = 2 * time.Minute
	case opt.IdleTimeout < 0:
		opt.IdleTimeout = 0
	}
	return &Server{
		b:           b,
		maxInflight: opt.MaxInflightPerConn,
		maxFrame:    opt.MaxFrame,
		flushEvery:  opt.FlushTimeout,
		idleEvery:   opt.IdleTimeout,
		conns:       make(map[*conn]struct{}),
		lns:         make(map[net.Listener]struct{}),
	}
}

// Counters snapshots the traffic counters.
func (s *Server) Counters() Counters {
	s.mu.Lock()
	n := len(s.conns)
	s.mu.Unlock()
	return Counters{
		Conns:      n,
		Submits:    s.submits.Load(),
		Shed:       s.shed.Load(),
		BadFrames:  s.badFrames.Load(),
		IdleClosed: s.idleClosed.Load(),
		Panics:     s.panics.Load(),
	}
}

// Serve accepts connections on ln until the listener fails or the
// server shuts down (which returns nil).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
	}()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.startConn(nc)
	}
}

func (s *Server) startConn(nc net.Conn) {
	c := &conn{
		srv:      s,
		nc:       nc,
		out:      make(chan outFrame, s.maxInflight+64),
		stop:     make(chan struct{}),
		inflight: make(map[uint64]core.SubmitHandle),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.wg.Add(2)
	s.mu.Unlock()
	go c.guarded(c.readLoop)
	go c.guarded(c.writeLoop)
}

// Shutdown drains gracefully: it stops accepting, waits (bounded by
// ctx) for every pipelined submission to complete and its response to
// be written, then closes all connections. In-flight transactions are
// resolved by the service's own Drain before this is called, so the
// wait is for response delivery, not for work.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	s.mu.Unlock()

	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	var err error
wait:
	for !s.idle() {
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break wait
		case <-tick.C:
		}
	}

	s.mu.Lock()
	cs := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		cs = append(cs, c)
	}
	s.mu.Unlock()
	for _, c := range cs {
		c.close()
	}
	s.wg.Wait()
	return err
}

// Close tears everything down immediately, wounding in-flight work.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		err = nil
	}
	return err
}

// idle reports whether every connection has delivered a response for
// every accepted submission.
func (s *Server) idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		if !c.drained() {
			return false
		}
	}
	return true
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// --- connection ---------------------------------------------------------

// outFrame is one queued response. It travels by value so the response
// path allocates nothing beyond what the encoded payload itself needs.
type outFrame struct {
	id        uint64
	typ       uint8
	resp      SubmitResp
	health    HealthResp
	body      []byte // FrameMetricsResp payload
	msg       string // FrameError payload
	needRetry bool   // fill resp.RetryAfter at encode time (writer side)
}

type conn struct {
	srv  *Server
	nc   net.Conn
	out  chan outFrame
	stop chan struct{}

	closeOnce sync.Once
	closed    atomic.Bool

	mu       sync.Mutex
	dead     bool
	inflight map[uint64]core.SubmitHandle

	enq   atomic.Int64 // responses queued to out
	wrote atomic.Int64 // responses written by the writer
}

func (c *conn) drained() bool {
	c.mu.Lock()
	n := len(c.inflight)
	c.mu.Unlock()
	return n == 0 && c.enq.Load() == c.wrote.Load()
}

// close is idempotent and safe from any goroutine, including the engine
// driver (handle cancellation only enqueues a driver call). The writer
// owns the socket close so queued responses get a best-effort flush.
func (c *conn) close() {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		c.mu.Lock()
		c.dead = true
		hs := make([]core.SubmitHandle, 0, len(c.inflight))
		for _, h := range c.inflight {
			hs = append(hs, h)
		}
		c.inflight = make(map[uint64]core.SubmitHandle)
		c.mu.Unlock()
		for _, h := range hs {
			h.Cancel()
		}
		close(c.stop)
		// Wake a reader blocked in Read; the writer closes the socket.
		c.nc.SetReadDeadline(time.Now())
		c.srv.removeConn(c)
	})
}

// track registers a submission id; false means the pipeline is at
// capacity (or the id is already in flight, which is a client bug
// treated the same way).
func (c *conn) track(id uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead || len(c.inflight) >= c.srv.maxInflight {
		return false
	}
	if _, dup := c.inflight[id]; dup {
		return false
	}
	c.inflight[id] = core.SubmitHandle{}
	return true
}

func (c *conn) finish(id uint64) {
	c.mu.Lock()
	delete(c.inflight, id)
	c.mu.Unlock()
}

// send queues a response. The queue is sized so completions can never
// overflow it; overflow therefore means the peer stopped reading while
// still issuing control frames, and the connection is dropped.
func (c *conn) send(f outFrame) {
	if c.closed.Load() {
		return
	}
	select {
	case c.out <- f:
		c.enq.Add(1)
	default:
		c.close()
	}
}

// Complete implements Completer: map the engine outcome (or refusal) to
// a SubmitResp. Runs on the driver goroutine; must not block, and the
// Retry-After lookup is deferred to the writer for that reason.
func (c *conn) Complete(id uint64, o core.ServiceOutcome, err error) {
	c.finish(id)
	f := outFrame{id: id, typ: FrameSubmitResp}
	switch {
	case err == nil:
		switch o.State {
		case core.StateCommitted:
			f.resp.Status = StatusCommitted
		case core.StateRejected:
			f.resp.Status = StatusRejected
			f.needRetry = true
		default:
			f.resp.Status = StatusDropped
		}
		f.resp.Missed = o.Missed
		f.resp.Restarts = uint32(o.Restarts)
		f.resp.Arrival = o.Arrival
		f.resp.Finish = o.Finish
		f.resp.Deadline = o.Deadline
		f.resp.Response = o.Response
		f.resp.Seq = o.Seq
	case errors.Is(err, core.ErrEngineFailed), errors.Is(err, core.ErrLogFailed):
		// Outcome unknown: the transaction may have partially run (or run
		// without a durable record), so no retry hint — blind resubmission
		// could double-execute it.
		f.resp.Status = StatusFailed
		f.resp.Err = err.Error()
	case errors.Is(err, core.ErrDraining) || errors.Is(err, core.ErrServiceStopped):
		f.resp.Status = StatusShed
		f.resp.Err = err.Error()
		f.needRetry = true
		c.srv.shed.Add(1)
	default:
		f.resp.Status = StatusInvalid
		f.resp.Err = err.Error()
	}
	c.send(f)
}

// OnHandle implements Completer. If the connection died between enqueue
// and handle delivery, wound the orphan immediately.
func (c *conn) OnHandle(id uint64, h core.SubmitHandle) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		h.Cancel()
		return
	}
	if _, ok := c.inflight[id]; ok {
		c.inflight[id] = h
	}
	c.mu.Unlock()
}

func (c *conn) shed(id uint64, reason string) {
	c.srv.shed.Add(1)
	c.send(outFrame{
		id: id, typ: FrameSubmitResp,
		resp:      SubmitResp{Status: StatusShed, Err: reason},
		needRetry: true,
	})
}

// guarded runs one connection goroutine under a recover barrier: a
// panic (a decode bug tripped by a hostile frame, say) kills only this
// connection, never the process. The deferred close wounds the
// connection's inflight work so every pipelined submission still gets
// its terminal answer — on some other path — rather than leaking.
func (c *conn) guarded(fn func()) {
	defer c.srv.wg.Done()
	defer func() {
		if p := recover(); p != nil {
			c.srv.panics.Add(1)
			c.close()
			c.nc.Close()
		}
	}()
	fn()
}

func (c *conn) readLoop() {
	defer c.close()
	fr := NewFrameReader(c.nc, c.srv.maxFrame)
	var req SubmitReq // reused across frames: the zero-alloc decode path
	for {
		// Rolling idle deadline: each frame gets a fresh budget, so a
		// peer that stops mid-frame (slow loris) or goes half-open is
		// cut instead of pinning the connection forever.
		if c.srv.idleEvery > 0 {
			c.nc.SetReadDeadline(time.Now().Add(c.srv.idleEvery))
		}
		h, p, err := fr.Next()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && !c.closed.Load() {
				c.srv.idleClosed.Add(1)
			}
			return
		}
		switch h.Type {
		case FrameSubmit:
			c.handleSubmit(h.ID, p, &req)
		case FrameMetrics:
			body, err := c.srv.b.MetricsBody()
			if err != nil {
				c.send(outFrame{id: h.ID, typ: FrameError, msg: err.Error()})
				continue
			}
			c.send(outFrame{id: h.ID, typ: FrameMetricsResp, body: body})
		case FrameHealth:
			hr := HealthResp{Healthy: true, Draining: c.srv.b.Draining()}
			if herr := c.srv.b.HealthErr(); herr != nil {
				hr.Healthy = false
				hr.Err = herr.Error()
			}
			c.send(outFrame{id: h.ID, typ: FrameHealthResp, health: hr})
		default:
			c.send(outFrame{id: h.ID, typ: FrameError, msg: "wire: unknown frame type"})
		}
	}
}

func (c *conn) handleSubmit(id uint64, p []byte, req *SubmitReq) {
	if err := DecodeSubmit(p, req); err != nil {
		c.srv.badFrames.Add(1)
		c.send(outFrame{
			id: id, typ: FrameSubmitResp,
			resp: SubmitResp{Status: StatusInvalid, Err: err.Error()},
		})
		return
	}
	if c.srv.b.Draining() {
		c.shed(id, "server draining")
		return
	}
	if !c.track(id) {
		c.shed(id, "connection pipeline full")
		return
	}
	// The decode buffers are reused on the next frame; the engine owns
	// the request until it reaches a terminal state, so copy.
	sreq := core.ServiceRequest{
		Items:       append([]txn.Item(nil), req.Items...),
		Compute:     req.Compute,
		Deadline:    req.Deadline,
		Criticality: req.Criticality,
		Class:       req.Class,
	}
	if req.Reads != nil {
		sreq.Reads = append([]bool(nil), req.Reads...)
	}
	if req.NeedsIO != nil {
		sreq.NeedsIO = append([]bool(nil), req.NeedsIO...)
	}
	if !c.srv.b.Enqueue(id, sreq, c) {
		c.finish(id)
		c.shed(id, "service overloaded")
		return
	}
	c.srv.submits.Add(1)
}

func (c *conn) writeLoop() {
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	var buf []byte
	write := func(f *outFrame) bool {
		buf = c.encode(buf[:0], f)
		c.nc.SetWriteDeadline(time.Now().Add(c.srv.flushEvery))
		if _, err := bw.Write(buf); err != nil {
			return false
		}
		c.wrote.Add(1)
		return true
	}
	for {
		select {
		case f := <-c.out:
			if !write(&f) {
				c.close()
				c.nc.Close()
				return
			}
			// Flush only once the queue momentarily drains: under load,
			// many responses share one syscall.
			if len(c.out) == 0 {
				if err := bw.Flush(); err != nil {
					c.close()
					c.nc.Close()
					return
				}
			}
		case <-c.stop:
			// Best-effort delivery of whatever is already queued.
			for {
				select {
				case f := <-c.out:
					if !write(&f) {
						c.nc.Close()
						return
					}
				default:
					bw.Flush()
					c.nc.Close()
					return
				}
			}
		}
	}
}

func (c *conn) encode(buf []byte, f *outFrame) []byte {
	switch f.typ {
	case FrameSubmitResp:
		if f.needRetry {
			ra := c.srv.b.RetryAfterSecs()
			if ra < 0 {
				ra = 1
			}
			if ra > 0xffff {
				ra = 0xffff
			}
			f.resp.RetryAfter = uint16(ra)
		}
		return AppendSubmitResp(buf, f.id, &f.resp)
	case FrameMetricsResp:
		return AppendMetricsResp(buf, f.id, f.body)
	case FrameHealthResp:
		return AppendHealthResp(buf, f.id, &f.health)
	default:
		return AppendError(buf, f.id, f.msg)
	}
}
