package wire

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrResilientClosed reports a request issued on a closed Resilient.
var ErrResilientClosed = errors.New("wire: resilient client closed")

// ResilientOptions tune a Resilient client; zero values pick defaults.
type ResilientOptions struct {
	// DialTimeout bounds each (re)connect attempt. Default 5s.
	DialTimeout time.Duration
	// Client configures each underlying connection (request timeout).
	Client ClientOptions
	// MaxAttempts bounds the tries per request (first try included).
	// Default 4.
	MaxAttempts int
	// BackoffBase is the pre-jitter delay before the second attempt;
	// later attempts double it, capped at BackoffMax. Defaults 50ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the backoff jitter (full jitter: uniform in (0, d]).
	// Default 1, so retry schedules are reproducible under test.
	Seed int64
}

func (o *ResilientOptions) defaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Resilient is a wire client that survives its connection: it dials
// lazily, redials with jittered exponential backoff when the
// connection dies, and resubmits a request only when the failure
// proves the server never saw it (ErrNotSent — the connection was
// already broken before the frame was buffered). Ambiguous failures —
// a reset after the frame went out, a response timeout — are returned
// to the caller, because the transaction may have been admitted and
// blind resubmission would double-execute it.
type Resilient struct {
	addr string
	opt  ResilientOptions

	mu     sync.Mutex
	cur    *Client
	closed bool
	rng    *rand.Rand

	redials   atomic.Int64
	resubmits atomic.Int64
}

// NewResilient builds a resilient client for addr. No connection is
// made until the first request.
func NewResilient(addr string, opt ResilientOptions) *Resilient {
	opt.defaults()
	return &Resilient{
		addr: addr,
		opt:  opt,
		rng:  rand.New(rand.NewSource(opt.Seed)),
	}
}

// Redials returns how many reconnects the client has performed.
func (r *Resilient) Redials() int64 { return r.redials.Load() }

// Resubmits returns how many provably-unsent requests were retried.
func (r *Resilient) Resubmits() int64 { return r.resubmits.Load() }

// Close tears down the current connection and refuses further requests.
func (r *Resilient) Close() error {
	r.mu.Lock()
	r.closed = true
	c := r.cur
	r.cur = nil
	r.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}

// client returns the live connection, dialing if needed.
func (r *Resilient) client() (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrResilientClosed
	}
	if r.cur != nil {
		return r.cur, nil
	}
	c, err := DialOptions(r.addr, r.opt.DialTimeout, r.opt.Client)
	if err != nil {
		return nil, err
	}
	r.cur = c
	r.redials.Add(1)
	return c, nil
}

// drop forgets c so the next request redials, but only if c is still
// the current connection (a concurrent request may already have
// replaced it).
func (r *Resilient) drop(c *Client) {
	r.mu.Lock()
	if r.cur == c {
		r.cur = nil
	}
	r.mu.Unlock()
	c.Close()
}

// backoff sleeps before attempt n (1-based retry count) with full
// jitter, honoring ctx.
func (r *Resilient) backoff(ctx context.Context, n int) error {
	d := r.opt.BackoffBase << (n - 1)
	if d > r.opt.BackoffMax || d <= 0 {
		d = r.opt.BackoffMax
	}
	r.mu.Lock()
	d = time.Duration(r.rng.Int63n(int64(d))) + 1
	r.mu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit sends one submission, redialing and resubmitting only across
// provably-unsent failures.
func (r *Resilient) Submit(req *SubmitReq) (SubmitResp, error) {
	return r.SubmitCtx(context.Background(), req)
}

// SubmitCtx is Submit bounded by ctx.
func (r *Resilient) SubmitCtx(ctx context.Context, req *SubmitReq) (SubmitResp, error) {
	var lastErr error
	for attempt := 0; attempt < r.opt.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return SubmitResp{}, lastErr
			}
			return SubmitResp{}, err
		}
		if attempt > 0 {
			if err := r.backoff(ctx, attempt); err != nil {
				return SubmitResp{}, lastErr
			}
		}
		c, err := r.client()
		if err != nil {
			if errors.Is(err, ErrResilientClosed) {
				return SubmitResp{}, err
			}
			// Dial failure: nothing was sent, always safe to retry.
			lastErr = err
			continue
		}
		resp, err := c.SubmitCtx(ctx, req)
		if err == nil {
			return resp, nil
		}
		if !errors.Is(err, ErrNotSent) {
			// Ambiguous: the frame may have reached the server. Drop the
			// connection if it is broken, but surface the error.
			if c.brokenErr() != nil {
				r.drop(c)
			}
			return SubmitResp{}, err
		}
		// Provably unsent: safe to go around again on a fresh connection.
		lastErr = err
		r.drop(c)
		r.resubmits.Add(1)
	}
	return SubmitResp{}, lastErr
}

// Health probes the server over the current (or a fresh) connection.
func (r *Resilient) Health() (HealthResp, error) {
	c, err := r.client()
	if err != nil {
		return HealthResp{}, err
	}
	h, err := c.Health()
	if err != nil && c.brokenErr() != nil {
		r.drop(c)
	}
	return h, err
}

// Metrics fetches the metrics document over the current (or a fresh)
// connection.
func (r *Resilient) Metrics() ([]byte, error) {
	c, err := r.client()
	if err != nil {
		return nil, err
	}
	b, err := c.Metrics()
	if err != nil && c.brokenErr() != nil {
		r.drop(c)
	}
	return b, err
}
