package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClientClosed reports a request issued on (or orphaned by) a closed
// connection.
var ErrClientClosed = errors.New("wire: client closed")

// ErrRequestTimeout reports a request whose response did not arrive
// within the client's request timeout. The request may have been
// admitted by the server — only its answer is missing — so it is NOT
// safe to resubmit blindly.
var ErrRequestTimeout = errors.New("wire: request timed out awaiting response")

// ErrNotSent marks a request the client can prove never reached the
// wire (the connection was already broken before the frame was
// buffered). Requests failing with ErrNotSent are safe to resubmit on
// a fresh connection; every other failure is ambiguous — the server
// may have admitted the transaction — and must not be retried without
// idempotence above the protocol.
var ErrNotSent = errors.New("wire: request not sent")

// ClientOptions tune a wire client; zero values pick defaults.
type ClientOptions struct {
	// RequestTimeout bounds the wait for each request's response. A
	// swallowed response (lost frame, stalled peer, blackholed network)
	// then fails with ErrRequestTimeout instead of hanging forever.
	// Default 30s; negative disables the timeout.
	RequestTimeout time.Duration
}

// DefaultRequestTimeout is the per-request answer timeout when
// ClientOptions leaves it zero.
const DefaultRequestTimeout = 30 * time.Second

// clientResp is what the reader goroutine delivers to a waiter.
type clientResp struct {
	typ    uint8
	resp   SubmitResp
	health HealthResp
	body   []byte // copied MetricsResp payload
	msg    string // FrameError payload
}

// Client is a pipelined wire-protocol client over one persistent TCP
// connection. It is safe for concurrent use: many goroutines can have
// submissions in flight at once, writes are coalesced by a flusher so
// concurrent submitters share syscalls, and a reader goroutine fans the
// out-of-order responses back to their waiters by request id.
type Client struct {
	nc         net.Conn
	reqTimeout time.Duration // 0 = no timeout
	nextID     atomic.Uint64

	wmu  sync.Mutex // guards bw and wbuf
	bw   *bufWriter
	wbuf []byte

	kick chan struct{}

	mu      sync.Mutex
	waiters map[uint64]chan clientResp
	err     error // set once broken/closed

	done chan struct{}
	wg   sync.WaitGroup
}

// bufWriter is the minimal buffered-writer surface Client needs; split
// out so tests can interpose.
type bufWriter struct {
	nc  net.Conn
	buf []byte
}

func (w *bufWriter) write(p []byte) {
	w.buf = append(w.buf, p...)
}

func (w *bufWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.nc.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

// Dial connects to a wire server with default client options.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialOptions(addr, timeout, ClientOptions{})
}

// DialOptions connects to a wire server.
func DialOptions(addr string, timeout time.Duration, opt ClientOptions) (*Client, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewClientOptions(nc, opt), nil
}

// NewClient wraps an established connection with default options.
func NewClient(nc net.Conn) *Client {
	return NewClientOptions(nc, ClientOptions{})
}

// NewClientOptions wraps an established connection.
func NewClientOptions(nc net.Conn, opt ClientOptions) *Client {
	to := opt.RequestTimeout
	switch {
	case to == 0:
		to = DefaultRequestTimeout
	case to < 0:
		to = 0
	}
	c := &Client{
		nc:         nc,
		reqTimeout: to,
		bw:         &bufWriter{nc: nc},
		kick:       make(chan struct{}, 1),
		waiters:    make(map[uint64]chan clientResp),
		done:       make(chan struct{}),
	}
	c.wg.Add(2)
	go c.readLoop()
	go c.flushLoop()
	return c
}

// Close tears the connection down; in-flight requests fail with
// ErrClientClosed.
func (c *Client) Close() error {
	c.fail(ErrClientClosed)
	c.wg.Wait()
	return nil
}

// fail marks the client broken, closes the socket and releases every
// waiter. Idempotent; the first error wins.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.done)
		c.nc.Close()
	}
	ws := c.waiters
	c.waiters = make(map[uint64]chan clientResp)
	c.mu.Unlock()
	for _, ch := range ws {
		close(ch)
	}
}

func (c *Client) brokenErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// register installs a waiter for a fresh request id. Failure here means
// the connection was already broken and the frame was never buffered —
// the one case a caller may safely resubmit, marked with ErrNotSent.
func (c *Client) register() (uint64, chan clientResp, error) {
	id := c.nextID.Add(1)
	ch := make(chan clientResp, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, nil, fmt.Errorf("%w: %w", ErrNotSent, err)
	}
	c.waiters[id] = ch
	c.mu.Unlock()
	return id, ch, nil
}

func (c *Client) unregister(id uint64) {
	c.mu.Lock()
	delete(c.waiters, id)
	c.mu.Unlock()
}

// enqueue appends one encoded frame to the shared write buffer and
// kicks the flusher. append is the caller-supplied encoder so the hot
// path reuses the client's scratch buffer under the write lock.
func (c *Client) enqueue(enc func(buf []byte) []byte) error {
	c.wmu.Lock()
	c.wbuf = enc(c.wbuf[:0])
	c.bw.write(c.wbuf)
	c.wmu.Unlock()
	select {
	case c.kick <- struct{}{}:
	default:
	}
	return nil
}

func (c *Client) flushLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.kick:
			c.wmu.Lock()
			err := c.bw.flush()
			c.wmu.Unlock()
			if err != nil {
				c.fail(fmt.Errorf("wire: write: %w", err))
				return
			}
		case <-c.done:
			return
		}
	}
}

func (c *Client) readLoop() {
	defer c.wg.Done()
	fr := NewFrameReader(c.nc, DefaultMaxFrame)
	for {
		h, p, err := fr.Next()
		if err != nil {
			select {
			case <-c.done:
				err = ErrClientClosed
			default:
			}
			c.fail(err)
			return
		}
		var cr clientResp
		cr.typ = h.Type
		switch h.Type {
		case FrameSubmitResp:
			if err := DecodeSubmitResp(p, &cr.resp); err != nil {
				c.fail(err)
				return
			}
		case FrameHealthResp:
			if err := DecodeHealthResp(p, &cr.health); err != nil {
				c.fail(err)
				return
			}
		case FrameMetricsResp:
			cr.body = append([]byte(nil), p...)
		case FrameError:
			cr.msg = string(p)
		default:
			c.fail(fmt.Errorf("wire: unexpected frame type %#x", h.Type))
			return
		}
		c.mu.Lock()
		ch, ok := c.waiters[h.ID]
		if ok {
			delete(c.waiters, h.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- cr
		}
	}
}

// await blocks until the response for id arrives, the context is done,
// or the request timeout fires. The waiter channel is buffered, so a
// response racing the unregister is dropped harmlessly rather than
// blocking the reader.
func (c *Client) await(ctx context.Context, id uint64, ch chan clientResp) (clientResp, error) {
	var timeout <-chan time.Time
	if c.reqTimeout > 0 {
		tmr := time.NewTimer(c.reqTimeout)
		defer tmr.Stop()
		timeout = tmr.C
	}
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	select {
	case cr, ok := <-ch:
		if !ok {
			return clientResp{}, c.brokenErr()
		}
		return cr, nil
	case <-ctxDone:
		c.unregister(id)
		return clientResp{}, ctx.Err()
	case <-timeout:
		c.unregister(id)
		return clientResp{}, ErrRequestTimeout
	}
}

// Submit sends one submission and waits for its response, bounded by
// the client's request timeout. Concurrent calls pipeline over the
// single connection.
func (c *Client) Submit(req *SubmitReq) (SubmitResp, error) {
	return c.SubmitCtx(context.Background(), req)
}

// SubmitCtx is Submit bounded by ctx as well as the request timeout.
// On ctx cancellation or timeout the request is abandoned client-side;
// the server may still execute it.
func (c *Client) SubmitCtx(ctx context.Context, req *SubmitReq) (SubmitResp, error) {
	id, ch, err := c.register()
	if err != nil {
		return SubmitResp{}, err
	}
	if err := c.enqueue(func(buf []byte) []byte {
		return AppendSubmit(buf, id, req)
	}); err != nil {
		c.unregister(id)
		return SubmitResp{}, err
	}
	cr, err := c.await(ctx, id, ch)
	if err != nil {
		return SubmitResp{}, err
	}
	if cr.typ == FrameError {
		return SubmitResp{}, fmt.Errorf("wire: server error: %s", cr.msg)
	}
	if cr.typ != FrameSubmitResp {
		return SubmitResp{}, fmt.Errorf("wire: unexpected response type %#x", cr.typ)
	}
	return cr.resp, nil
}

// Metrics fetches the server's metrics snapshot (the same JSON document
// the HTTP endpoint serves).
func (c *Client) Metrics() ([]byte, error) {
	id, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	if err := c.enqueue(func(buf []byte) []byte {
		return AppendMetricsReq(buf, id)
	}); err != nil {
		c.unregister(id)
		return nil, err
	}
	cr, err := c.await(context.Background(), id, ch)
	if err != nil {
		return nil, err
	}
	if cr.typ == FrameError {
		return nil, fmt.Errorf("wire: server error: %s", cr.msg)
	}
	if cr.typ != FrameMetricsResp {
		return nil, fmt.Errorf("wire: unexpected response type %#x", cr.typ)
	}
	return cr.body, nil
}

// Health probes the server.
func (c *Client) Health() (HealthResp, error) {
	id, ch, err := c.register()
	if err != nil {
		return HealthResp{}, err
	}
	if err := c.enqueue(func(buf []byte) []byte {
		return AppendHealthReq(buf, id)
	}); err != nil {
		c.unregister(id)
		return HealthResp{}, err
	}
	cr, err := c.await(context.Background(), id, ch)
	if err != nil {
		return HealthResp{}, err
	}
	if cr.typ != FrameHealthResp {
		return HealthResp{}, fmt.Errorf("wire: unexpected response type %#x", cr.typ)
	}
	return cr.health, nil
}
