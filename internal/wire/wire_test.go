package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/txn"
)

// loopReader serves its data endlessly: a synthetic infinite frame
// stream for allocation measurements.
type loopReader struct {
	data []byte
	off  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	n := copy(p, l.data[l.off:])
	l.off = (l.off + n) % len(l.data)
	return n, nil
}

func submitFixtures() []SubmitReq {
	return []SubmitReq{
		{
			Items:    []txn.Item{1, 2, 3},
			Compute:  250 * time.Microsecond,
			Deadline: 40 * time.Millisecond,
		},
		{
			Items:       []txn.Item{7},
			Reads:       []bool{true},
			Compute:     time.Millisecond,
			Deadline:    time.Second,
			Criticality: 2,
			Class:       1,
		},
		{
			Items:   []txn.Item{0, 5, 9, 12, 13, 14, 20, 21, 22},
			Reads:   []bool{true, false, true, true, false, false, true, false, true},
			NeedsIO: []bool{false, true, false, false, true, true, false, true, false},
			Compute: 10 * time.Microsecond, Deadline: 5 * time.Millisecond,
		},
	}
}

func decodeOneFrame(t *testing.T, frame []byte, wantType uint8) (Header, []byte) {
	t.Helper()
	fr := NewFrameReader(bytes.NewReader(frame), 0)
	h, p, err := fr.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if h.Type != wantType {
		t.Fatalf("frame type %#x, want %#x", h.Type, wantType)
	}
	return h, p
}

func TestSubmitRoundTrip(t *testing.T) {
	for i, in := range submitFixtures() {
		frame := AppendSubmit(nil, uint64(100+i), &in)
		h, p := decodeOneFrame(t, frame, FrameSubmit)
		if h.ID != uint64(100+i) {
			t.Fatalf("id %d, want %d", h.ID, 100+i)
		}
		var out SubmitReq
		if err := DecodeSubmit(p, &out); err != nil {
			t.Fatalf("fixture %d: %v", i, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("fixture %d round trip:\n in  %+v\n out %+v", i, in, out)
		}
	}
}

func TestSubmitRespRoundTrip(t *testing.T) {
	for i, in := range []SubmitResp{
		{Status: StatusCommitted, Arrival: time.Second, Finish: 2 * time.Second,
			Deadline: 3 * time.Second, Response: time.Second, Restarts: 2},
		{Status: StatusShed, RetryAfter: 7, Err: "server draining", Missed: true},
		{Status: StatusInvalid, Err: "wire: compute must be positive, got -1ns"},
	} {
		frame := AppendSubmitResp(nil, uint64(i), &in)
		_, p := decodeOneFrame(t, frame, FrameSubmitResp)
		var out SubmitResp
		if err := DecodeSubmitResp(p, &out); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if in != out {
			t.Fatalf("case %d round trip:\n in  %+v\n out %+v", i, in, out)
		}
	}
}

func TestHealthAndErrorFrames(t *testing.T) {
	in := HealthResp{Healthy: false, Draining: true, Err: "stall detected"}
	_, p := decodeOneFrame(t, AppendHealthResp(nil, 9, &in), FrameHealthResp)
	var out HealthResp
	if err := DecodeHealthResp(p, &out); err != nil {
		t.Fatal(err)
	}
	if in != out {
		t.Fatalf("health round trip: in %+v out %+v", in, out)
	}

	h, p := decodeOneFrame(t, AppendError(nil, 42, "boom"), FrameError)
	if h.ID != 42 || string(p) != "boom" {
		t.Fatalf("error frame: id %d payload %q", h.ID, p)
	}

	_, p = decodeOneFrame(t, AppendMetricsReq(nil, 3), FrameMetrics)
	if len(p) != 0 {
		t.Fatalf("metrics request payload %d bytes, want 0", len(p))
	}
	_, p = decodeOneFrame(t, AppendMetricsResp(nil, 3, []byte(`{"x":1}`)), FrameMetricsResp)
	if string(p) != `{"x":1}` {
		t.Fatalf("metrics response payload %q", p)
	}
}

// TestCodecZeroAlloc is the tentpole's zero-allocation proof: with
// warmed buffers, encoding a submit frame, framing it back out of a
// stream, and decoding both directions allocates nothing.
func TestCodecZeroAlloc(t *testing.T) {
	req := SubmitReq{
		Items:   []txn.Item{3, 1, 4, 1, 5, 9, 2, 6},
		Reads:   []bool{true, false, true, false, true, false, true, false},
		Compute: 100 * time.Microsecond, Deadline: 10 * time.Millisecond,
	}
	resp := SubmitResp{Status: StatusCommitted, Arrival: 1, Finish: 2, Deadline: 3, Response: 1}

	var frame []byte
	var dec SubmitReq
	var decResp SubmitResp
	// Warm the buffers so growth is out of the measured window.
	frame = AppendSubmit(frame[:0], 1, &req)
	if err := DecodeSubmit(frame[headerLen:], &dec); err != nil {
		t.Fatal(err)
	}

	if n := testing.AllocsPerRun(200, func() {
		frame = AppendSubmit(frame[:0], 1, &req)
		if err := DecodeSubmit(frame[headerLen:], &dec); err != nil {
			t.Fatal(err)
		}
		frame = AppendSubmitResp(frame[:0], 1, &resp)
		if err := DecodeSubmitResp(frame[headerLen:], &decResp); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("codec allocates %v times per round trip, want 0", n)
	}

	// The stream reader is allocation-free too once its buffer has grown.
	src := AppendSubmit(nil, 7, &req)
	fr := NewFrameReader(&loopReader{data: src}, 0)
	for i := 0; i < 4; i++ { // warm the reader's frame buffer
		if _, _, err := fr.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(40, func() {
		h, p, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if h.Type != FrameSubmit {
			t.Fatal("bad type")
		}
		if err := DecodeSubmit(p, &dec); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("frame reader allocates %v times per frame, want 0", n)
	}
}

// TestDecodeSubmitRejectsBadDurations mirrors the JSON path's
// jsonDuration validation on the binary side: non-positive compute or
// deadline never reaches the engine.
func TestDecodeSubmitRejectsBadDurations(t *testing.T) {
	for _, tc := range []struct {
		name              string
		compute, deadline time.Duration
		want              string
	}{
		{"negative compute", -time.Millisecond, time.Second, "compute"},
		{"zero compute", 0, time.Second, "compute"},
		{"negative deadline", time.Millisecond, -time.Second, "deadline"},
		{"zero deadline", time.Millisecond, 0, "deadline"},
	} {
		req := SubmitReq{Items: []txn.Item{1}, Compute: tc.compute, Deadline: tc.deadline}
		frame := AppendSubmit(nil, 1, &req)
		var out SubmitReq
		err := DecodeSubmit(frame[headerLen:], &out)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestFrameReaderRejectsGarbage(t *testing.T) {
	// Oversized length prefix.
	big := appendU32(nil, 1<<28)
	big = append(big, make([]byte, 32)...)
	if _, _, err := NewFrameReader(bytes.NewReader(big), 1<<16).Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: err = %v, want ErrFrameTooLarge", err)
	}

	// Wrong protocol version.
	frame := AppendSubmit(nil, 1, &SubmitReq{Items: []txn.Item{1}, Compute: 1, Deadline: 1})
	frame[lenPrefix] = 99
	if _, _, err := NewFrameReader(bytes.NewReader(frame), 0).Next(); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: err = %v, want ErrVersion", err)
	}

	// Reserved flags set.
	frame = AppendSubmit(nil, 1, &SubmitReq{Items: []txn.Item{1}, Compute: 1, Deadline: 1})
	frame[lenPrefix+2] = 1
	if _, _, err := NewFrameReader(bytes.NewReader(frame), 0).Next(); err == nil {
		t.Fatal("reserved flags accepted")
	}

	// Length below the minimum header size.
	short := appendU32(nil, restLen-1)
	short = append(short, make([]byte, restLen)...)
	if _, _, err := NewFrameReader(bytes.NewReader(short), 0).Next(); err == nil {
		t.Fatal("undersized frame accepted")
	}

	// Truncated mid-frame.
	frame = AppendSubmit(nil, 1, &SubmitReq{Items: []txn.Item{1}, Compute: 1, Deadline: 1})
	if _, _, err := NewFrameReader(bytes.NewReader(frame[:len(frame)-2]), 0).Next(); err == nil {
		t.Fatal("truncated frame accepted")
	}

	// Clean EOF between frames is io.EOF exactly.
	if _, _, err := NewFrameReader(bytes.NewReader(nil), 0).Next(); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

// TestSubmitDecodeLengthStrict checks the canonical-encoding rule: any
// surplus or deficit in the payload is rejected rather than ignored.
func TestSubmitDecodeLengthStrict(t *testing.T) {
	req := SubmitReq{Items: []txn.Item{1, 2}, Compute: 1, Deadline: 1}
	frame := AppendSubmit(nil, 1, &req)
	payload := frame[headerLen:]
	var out SubmitReq
	if err := DecodeSubmit(append(append([]byte(nil), payload...), 0), &out); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if err := DecodeSubmit(payload[:len(payload)-1], &out); err == nil {
		t.Fatal("missing byte accepted")
	}
}
