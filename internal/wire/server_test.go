package wire

import (
	"context"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/txn"
)

// stubBackend is a protocol-level test double: it completes submissions
// without a real engine so the wire tests exercise framing, pipelining,
// shedding and shutdown in isolation.
type stubBackend struct {
	mu        sync.Mutex
	draining  bool
	healthErr error
	accept    func(id uint64, req core.ServiceRequest, c Completer) bool

	enqueued  atomic.Int64
	cancelled atomic.Int64
}

func (b *stubBackend) Enqueue(id uint64, req core.ServiceRequest, c Completer) bool {
	b.mu.Lock()
	fn := b.accept
	b.mu.Unlock()
	b.enqueued.Add(1)
	if fn != nil {
		return fn(id, req, c)
	}
	// Default: commit instantly from a fresh goroutine, the way the
	// real driver completes off the caller's stack.
	go func() {
		c.OnHandle(id, core.CancelHandle(func() { b.cancelled.Add(1) }))
		c.Complete(id, core.ServiceOutcome{
			State:    core.StateCommitted,
			Arrival:  time.Second,
			Finish:   time.Second + req.Compute,
			Deadline: time.Second + req.Deadline,
			Response: req.Compute,
		}, nil)
	}()
	return true
}

func (b *stubBackend) RetryAfterSecs() int { return 7 }

func (b *stubBackend) Draining() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.draining
}

func (b *stubBackend) HealthErr() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthErr
}

func (b *stubBackend) MetricsBody() ([]byte, error) {
	return []byte(`{"stub":true}`), nil
}

func startWire(t *testing.T, b Backend, opt ServerOptions) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(b, opt)
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return s, ln.Addr().String()
}

func TestWireSubmitEndToEnd(t *testing.T) {
	b := &stubBackend{}
	_, addr := startWire(t, b, ServerOptions{})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Submit(&SubmitReq{
		Items: []txn.Item{1, 2}, Compute: time.Millisecond, Deadline: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusCommitted || resp.Response != time.Millisecond {
		t.Fatalf("resp %+v, want committed with 1ms response", resp)
	}

	hr, err := c.Health()
	if err != nil || !hr.Healthy || hr.Draining {
		t.Fatalf("health %+v err %v, want healthy", hr, err)
	}
	body, err := c.Metrics()
	if err != nil || string(body) != `{"stub":true}` {
		t.Fatalf("metrics %q err %v", body, err)
	}
}

// TestWirePipelined drives many concurrent submissions over one
// connection and checks each response is correlated back correctly.
func TestWirePipelined(t *testing.T) {
	b := &stubBackend{}
	_, addr := startWire(t, b, ServerOptions{})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 200
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct compute per request: the echoed Response proves
			// responses were matched to their own requests.
			want := time.Duration(i+1) * time.Microsecond
			resp, err := c.Submit(&SubmitReq{
				Items: []txn.Item{txn.Item(i % 8)}, Compute: want, Deadline: time.Second,
			})
			if err != nil {
				errs <- err
				return
			}
			if resp.Status != StatusCommitted || resp.Response != want {
				errs <- &net.AddrError{Err: "mismatched response", Addr: resp.Response.String()}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := b.enqueued.Load(); got != n {
		t.Fatalf("backend saw %d submissions, want %d", got, n)
	}
}

// TestWireShedding checks the three refusal paths: draining, backend
// refusal, and invalid payloads — all must answer with Retry-After
// semantics rather than hanging or closing the connection.
func TestWireShedding(t *testing.T) {
	b := &stubBackend{}
	_, addr := startWire(t, b, ServerOptions{})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	req := SubmitReq{Items: []txn.Item{1}, Compute: time.Millisecond, Deadline: time.Second}

	b.mu.Lock()
	b.draining = true
	b.healthErr = core.ErrDraining
	b.mu.Unlock()
	resp, err := c.Submit(&req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusShed || resp.RetryAfter != 7 {
		t.Fatalf("draining: %+v, want shed with Retry-After 7", resp)
	}
	hr, err := c.Health()
	if err != nil || hr.Healthy || !hr.Draining {
		t.Fatalf("draining health %+v err %v", hr, err)
	}

	b.mu.Lock()
	b.draining = false
	b.healthErr = nil
	b.accept = func(uint64, core.ServiceRequest, Completer) bool { return false }
	b.mu.Unlock()
	resp, err = c.Submit(&req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusShed || resp.RetryAfter != 7 {
		t.Fatalf("refused: %+v, want shed with Retry-After 7", resp)
	}

	bad := req
	bad.Compute = -time.Millisecond
	resp, err = c.Submit(&bad)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusInvalid || !strings.Contains(resp.Err, "compute") {
		t.Fatalf("invalid: %+v, want StatusInvalid mentioning compute", resp)
	}
}

// TestWireDisconnectCancels checks that dropping a connection wounds
// its in-flight submissions instead of leaking them.
func TestWireDisconnectCancels(t *testing.T) {
	b := &stubBackend{}
	release := make(chan struct{})
	b.accept = func(id uint64, _ core.ServiceRequest, c Completer) bool {
		c.OnHandle(id, core.CancelHandle(func() { b.cancelled.Add(1) }))
		go func() {
			<-release
			c.Complete(id, core.ServiceOutcome{State: core.StateDropped}, nil)
		}()
		return true
	}
	s, addr := startWire(t, b, ServerOptions{})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	go c.Submit(&SubmitReq{Items: []txn.Item{1}, Compute: time.Hour, Deadline: time.Hour})
	waitFor(t, func() bool { return b.enqueued.Load() == 1 })
	c.Close()
	waitFor(t, func() bool { return b.cancelled.Load() == 1 })
	close(release)
	waitFor(t, func() bool { return s.Counters().Conns == 0 })
}

// TestWireShutdownDelivers checks graceful shutdown: responses already
// earned are delivered before the connections die, and no goroutines
// leak.
func TestWireShutdownDelivers(t *testing.T) {
	before := runtime.NumGoroutine()

	b := &stubBackend{}
	gate := make(chan struct{})
	b.accept = func(id uint64, req core.ServiceRequest, c Completer) bool {
		go func() {
			<-gate
			c.Complete(id, core.ServiceOutcome{State: core.StateCommitted, Response: req.Compute}, nil)
		}()
		return true
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(b, ServerOptions{})
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	resps := make(chan SubmitResp, n)
	for i := 0; i < n; i++ {
		go func() {
			r, err := c.Submit(&SubmitReq{Items: []txn.Item{1}, Compute: time.Millisecond, Deadline: time.Second})
			if err == nil {
				resps <- r
			}
		}()
	}
	waitFor(t, func() bool { return b.enqueued.Load() == n })

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- s.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // let Shutdown begin waiting
	close(gate)                       // engine finishes its drain
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	for i := 0; i < n; i++ {
		select {
		case r := <-resps:
			if r.Status != StatusCommitted {
				t.Fatalf("response %d: %+v, want committed", i, r)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d/%d responses delivered before close", i, n)
		}
	}
	c.Close()

	waitFor(t, func() bool { return runtime.NumGoroutine() <= before })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}
