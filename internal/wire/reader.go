package wire

import (
	"bufio"
	"fmt"
	"io"
)

// FrameReader reads frames from a stream into a single reusable buffer.
// The payload returned by Next is valid only until the following call —
// exactly what a pipelined connection loop wants: decode, act, repeat,
// zero allocations once the buffer has grown to the working set.
type FrameReader struct {
	br  *bufio.Reader
	buf []byte
	len [lenPrefix]byte
	max int
}

// NewFrameReader wraps r. maxFrame bounds a single frame; 0 means
// DefaultMaxFrame.
func NewFrameReader(r io.Reader, maxFrame int) *FrameReader {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &FrameReader{br: bufio.NewReaderSize(r, 64<<10), max: maxFrame}
}

// Next reads one frame and returns its header and payload. The payload
// aliases the reader's internal buffer. io.EOF is returned verbatim on a
// clean close between frames.
func (fr *FrameReader) Next() (Header, []byte, error) {
	if _, err := io.ReadFull(fr.br, fr.len[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return Header{}, nil, err
	}
	n := int(getU32(fr.len[:]))
	if n < restLen {
		return Header{}, nil, fmt.Errorf("wire: frame length %d below header size", n)
	}
	if n+lenPrefix > fr.max {
		return Header{}, nil, ErrFrameTooLarge
	}
	if cap(fr.buf) < n {
		fr.buf = make([]byte, n)
	}
	body := fr.buf[:n]
	if _, err := io.ReadFull(fr.br, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Header{}, nil, err
	}
	h := parseRest(body)
	if h.Version != Version {
		return Header{}, nil, fmt.Errorf("%w: %d", ErrVersion, h.Version)
	}
	if h.Flags != 0 {
		return Header{}, nil, fmt.Errorf("wire: reserved flags %#x set", h.Flags)
	}
	return h, body[restLen:], nil
}
