package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/txn"
)

// submitFrame builds one well-formed submit frame for corruption tests.
func submitFrame(t *testing.T) []byte {
	t.Helper()
	return AppendSubmit(nil, 7, &SubmitReq{
		Items:   []txn.Item{1, 2},
		Compute: time.Millisecond,
		Deadline: 50 * time.Millisecond,
	})
}

// TestFrameReaderTruncatedMidFrame: a frame cut anywhere after the
// length prefix must come back as io.ErrUnexpectedEOF — never io.EOF
// (which means clean close), never a hang, never a panic.
func TestFrameReaderTruncatedMidFrame(t *testing.T) {
	frame := submitFrame(t)
	for cut := lenPrefix; cut < len(frame); cut++ {
		fr := NewFrameReader(bytes.NewReader(frame[:cut]), 0)
		_, _, err := fr.Next()
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d/%d: err = %v, want io.ErrUnexpectedEOF", cut, len(frame), err)
		}
	}
	// A cut inside the length prefix itself is indistinguishable from a
	// torn close and also must not hang.
	for cut := 1; cut < lenPrefix; cut++ {
		fr := NewFrameReader(bytes.NewReader(frame[:cut]), 0)
		if _, _, err := fr.Next(); err == nil {
			t.Fatalf("cut at %d: no error", cut)
		}
	}
}

// TestFrameReaderOversizedLength: a length prefix above the reader's cap
// is refused before any allocation of that size.
func TestFrameReaderOversizedLength(t *testing.T) {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, 1<<30)
	fr := NewFrameReader(bytes.NewReader(buf), 0)
	if _, _, err := fr.Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	// Undersized too: a length below the header remainder is structurally
	// impossible and must be a clean error.
	buf = binary.LittleEndian.AppendUint32(nil, uint32(restLen-1))
	fr = NewFrameReader(bytes.NewReader(buf), 0)
	if _, _, err := fr.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("undersized length: err = %v, want structural error", err)
	}
}

// TestFrameReaderGarbageHeader: wrong version and reserved flags are
// both refused with a clean error after the full frame is consumed.
func TestFrameReaderGarbageHeader(t *testing.T) {
	frame := submitFrame(t)

	bad := bytes.Clone(frame)
	bad[lenPrefix] = Version + 9 // version byte
	fr := NewFrameReader(bytes.NewReader(bad), 0)
	if _, _, err := fr.Next(); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: err = %v, want ErrVersion", err)
	}

	bad = bytes.Clone(frame)
	bad[lenPrefix+2] |= 0x40 // reserved flags byte
	fr = NewFrameReader(bytes.NewReader(bad), 0)
	if _, _, err := fr.Next(); err == nil {
		t.Fatal("reserved flags accepted")
	}

	// Pure garbage: random-looking bytes must produce an error, not a
	// panic, regardless of what the length word decodes to.
	garbage := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06}
	fr = NewFrameReader(bytes.NewReader(garbage), 0)
	if _, _, err := fr.Next(); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestFrameReaderResyncAfterError: one bad frame poisons the connection
// (the server closes it), but the reader itself must stay usable on a
// fresh stream — no shared state corruption.
func TestFrameReaderResyncAfterError(t *testing.T) {
	good := submitFrame(t)
	bad := bytes.Clone(good)
	bad[lenPrefix] = Version + 1
	fr := NewFrameReader(bytes.NewReader(append(bytes.Clone(bad), good...)), 0)
	if _, _, err := fr.Next(); !errors.Is(err, ErrVersion) {
		t.Fatalf("first frame: %v", err)
	}
	// The stream position is still frame-aligned (the whole bad frame was
	// consumed), so the next frame parses.
	h, payload, err := fr.Next()
	if err != nil {
		t.Fatalf("second frame: %v", err)
	}
	if h.ID != 7 {
		t.Fatalf("second frame id %d, want 7", h.ID)
	}
	var req SubmitReq
	if err := DecodeSubmit(payload, &req); err != nil {
		t.Fatalf("second frame payload: %v", err)
	}
}

// FuzzFrameReader feeds arbitrary byte streams to the frame reader. It
// must never panic and never read past the stream; every outcome is a
// (Header, payload) pair or a clean error.
func FuzzFrameReader(f *testing.F) {
	f.Add([]byte{})
	f.Add(binary.LittleEndian.AppendUint32(nil, 1<<31))
	f.Add(binary.LittleEndian.AppendUint32(nil, 0))
	good := AppendSubmit(nil, 3, &SubmitReq{Items: []txn.Item{4}, Compute: 1, Deadline: 1})
	f.Add(good)
	f.Add(good[:len(good)-3])
	f.Add(append(bytes.Clone(good), good...))

	f.Fuzz(func(t *testing.T, stream []byte) {
		fr := NewFrameReader(bytes.NewReader(stream), 1<<16)
		for i := 0; i < 64; i++ { // bounded: a stream yields finitely many frames
			h, payload, err := fr.Next()
			if err != nil {
				return
			}
			if len(payload) > 1<<16 {
				t.Fatalf("payload %d bytes exceeds cap", len(payload))
			}
			_ = h
		}
	})
}
