// Package wire is the binary serving protocol: length-prefixed frames
// over persistent, pipelined TCP connections. It exists because the
// HTTP/JSON path pays for itself in allocations — request parsing,
// header maps, response marshalling — long before the scheduling engine
// becomes the bottleneck. The frame codecs here are append-style and
// decode into caller-owned, reusable buffers, so a warmed submit path
// encodes and decodes with zero allocations per frame (proven by
// testing.AllocsPerRun in the codec tests).
//
// Frame layout (all integers little-endian):
//
//	uint32  length   // bytes that follow (12-byte rest-of-header + payload)
//	uint8   version  // protocol version, currently 1
//	uint8   type     // Frame* constant
//	uint16  flags    // reserved, must be zero
//	uint64  id       // request id, echoed verbatim in the response
//	payload ...
//
// Responses may arrive out of order relative to requests; the id is the
// correlation key. A connection is full-duplex: the client keeps writing
// pipelined requests while responses stream back.
package wire

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/txn"
)

// Version is the protocol version carried in every frame header.
const Version = 1

// headerLen is the full frame header size; lenPrefix the leading length
// word; restLen the part of the header covered by the length word.
const (
	headerLen = 16
	lenPrefix = 4
	restLen   = headerLen - lenPrefix
)

// HeaderLen is the fixed frame header size in bytes: an encoded frame's
// payload starts at offset HeaderLen.
const HeaderLen = headerLen

// DefaultMaxFrame bounds a single frame (header + payload). Large enough
// for any sane transaction or metrics snapshot, small enough that a
// hostile length prefix cannot balloon memory.
const DefaultMaxFrame = 1 << 20

// Frame types. Every request type has a response type; Error answers a
// frame the server could parse enough to correlate but not serve.
const (
	FrameSubmit      = 0x01
	FrameSubmitResp  = 0x02
	FrameMetrics     = 0x03
	FrameMetricsResp = 0x04
	FrameHealth      = 0x05
	FrameHealthResp  = 0x06
	FrameError       = 0x7f
)

// Submit response status codes (SubmitResp.Status).
const (
	StatusCommitted = 0 // committed (check Missed for a late commit)
	StatusDropped   = 1 // wounded by cancellation or drain
	StatusRejected  = 2 // admission control turned it away
	StatusShed      = 3 // never reached the engine: overload or draining
	StatusInvalid   = 4 // malformed or rejected by validation
	StatusFailed    = 5 // engine failed with the submission in flight; outcome unknown
)

// ErrFrameTooLarge reports a length prefix above the reader's cap.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// ErrVersion reports a frame with an unknown protocol version.
var ErrVersion = errors.New("wire: unsupported protocol version")

// Header is a decoded frame header.
type Header struct {
	Version uint8
	Type    uint8
	Flags   uint16
	ID      uint64
}

// SubmitReq is the decoded form of a FrameSubmit payload. It mirrors
// core.ServiceRequest; Decode reuses the slices across calls, so a
// steady-state connection decodes without allocating.
type SubmitReq struct {
	Items       []txn.Item
	Reads       []bool
	NeedsIO     []bool
	Compute     time.Duration
	Deadline    time.Duration
	Criticality int
	Class       int
}

// SubmitResp is the decoded form of a FrameSubmitResp payload.
type SubmitResp struct {
	Status     uint8
	Missed     bool
	RetryAfter uint16 // seconds; set on StatusShed and StatusRejected
	Restarts   uint32
	Arrival    time.Duration
	Finish     time.Duration
	Deadline   time.Duration
	Response   time.Duration
	Seq        uint64 // write-ahead-log sequence number (0: WAL disabled)
	Err        string // human-readable reason for Shed/Invalid
}

// HealthResp is the decoded form of a FrameHealthResp payload.
type HealthResp struct {
	Healthy  bool
	Draining bool
	Err      string
}

// --- primitive append/consume helpers -----------------------------------

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func getU16(b []byte) uint16 {
	return uint16(b[0]) | uint16(b[1])<<8
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}

// appendHeader reserves the frame header; the caller patches the length
// word afterwards via patchLen with the same start offset.
func appendHeader(buf []byte, typ uint8, id uint64) []byte {
	buf = appendU32(buf, 0) // length, patched later
	buf = append(buf, Version, typ)
	buf = appendU16(buf, 0) // flags
	return appendU64(buf, id)
}

func patchLen(buf []byte, start int) []byte {
	n := uint32(len(buf) - start - lenPrefix)
	buf[start] = byte(n)
	buf[start+1] = byte(n >> 8)
	buf[start+2] = byte(n >> 16)
	buf[start+3] = byte(n >> 24)
	return buf
}

// parseRest decodes the post-length header fields from the first restLen
// bytes of the length-covered region.
func parseRest(b []byte) Header {
	return Header{
		Version: b[0],
		Type:    b[1],
		Flags:   getU16(b[2:]),
		ID:      getU64(b[4:]),
	}
}

// --- Submit -------------------------------------------------------------

// Payload flag bits for FrameSubmit.
const (
	submitHasReads = 1 << 0
	submitHasIO    = 1 << 1
)

// AppendSubmit appends a complete FrameSubmit to buf and returns the
// extended slice. It never allocates beyond growing buf.
func AppendSubmit(buf []byte, id uint64, r *SubmitReq) []byte {
	start := len(buf)
	buf = appendHeader(buf, FrameSubmit, id)
	buf = appendU64(buf, uint64(r.Compute))
	buf = appendU64(buf, uint64(r.Deadline))
	buf = appendU32(buf, uint32(int32(r.Criticality)))
	buf = appendU32(buf, uint32(int32(r.Class)))
	buf = appendU32(buf, uint32(len(r.Items)))
	var bits uint8
	if r.Reads != nil {
		bits |= submitHasReads
	}
	if r.NeedsIO != nil {
		bits |= submitHasIO
	}
	buf = append(buf, bits)
	for _, it := range r.Items {
		buf = appendU32(buf, uint32(int32(it)))
	}
	buf = appendBitmap(buf, r.Reads)
	buf = appendBitmap(buf, r.NeedsIO)
	return patchLen(buf, start)
}

func appendBitmap(buf []byte, bools []bool) []byte {
	if bools == nil {
		return buf
	}
	var cur uint8
	for i, v := range bools {
		if v {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			buf = append(buf, cur)
			cur = 0
		}
	}
	if len(bools)%8 != 0 {
		buf = append(buf, cur)
	}
	return buf
}

func bitmapLen(n int) int { return (n + 7) / 8 }

// DecodeSubmit decodes a FrameSubmit payload (the bytes after the
// header) into r, reusing r's slices. The encoding is canonical: any
// trailing or missing bytes are an error, so Append∘Decode is the
// identity and Decode∘Append is the identity on valid payloads.
//
// Validation here mirrors the JSON path's jsonDuration rules: a
// submission with a negative or zero compute time or deadline is
// rejected at the codec, before it can reach the engine.
func DecodeSubmit(p []byte, r *SubmitReq) error {
	const fixed = 8 + 8 + 4 + 4 + 4 + 1
	if len(p) < fixed {
		return fmt.Errorf("wire: submit payload truncated (%d bytes)", len(p))
	}
	r.Compute = time.Duration(getU64(p))
	r.Deadline = time.Duration(getU64(p[8:]))
	r.Criticality = int(int32(getU32(p[16:])))
	r.Class = int(int32(getU32(p[20:])))
	n := int(getU32(p[24:]))
	bits := p[28]
	p = p[fixed:]

	if r.Compute <= 0 {
		return fmt.Errorf("wire: compute must be positive, got %v", r.Compute)
	}
	if r.Deadline <= 0 {
		return fmt.Errorf("wire: deadline must be positive, got %v", r.Deadline)
	}
	if bits&^uint8(submitHasReads|submitHasIO) != 0 {
		return fmt.Errorf("wire: unknown submit flag bits %#x", bits)
	}
	want := 4 * n
	if bits&submitHasReads != 0 {
		want += bitmapLen(n)
	}
	if bits&submitHasIO != 0 {
		want += bitmapLen(n)
	}
	if n < 0 || n > math.MaxInt32 || len(p) != want {
		return fmt.Errorf("wire: submit payload length %d, want %d for %d items", len(p), want, n)
	}

	r.Items = r.Items[:0]
	for i := 0; i < n; i++ {
		r.Items = append(r.Items, txn.Item(int32(getU32(p[4*i:]))))
	}
	p = p[4*n:]
	r.Reads, p = decodeBitmap(p, r.Reads, n, bits&submitHasReads != 0)
	r.NeedsIO, _ = decodeBitmap(p, r.NeedsIO, n, bits&submitHasIO != 0)
	return nil
}

func decodeBitmap(p []byte, dst []bool, n int, present bool) ([]bool, []byte) {
	if !present {
		return nil, p
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, p[i/8]&(1<<(i%8)) != 0)
	}
	return dst, p[bitmapLen(n):]
}

// --- SubmitResp ---------------------------------------------------------

// AppendSubmitResp appends a complete FrameSubmitResp to buf.
func AppendSubmitResp(buf []byte, id uint64, r *SubmitResp) []byte {
	start := len(buf)
	buf = appendHeader(buf, FrameSubmitResp, id)
	missed := uint8(0)
	if r.Missed {
		missed = 1
	}
	buf = append(buf, r.Status, missed)
	buf = appendU16(buf, r.RetryAfter)
	buf = appendU32(buf, r.Restarts)
	buf = appendU64(buf, uint64(r.Arrival))
	buf = appendU64(buf, uint64(r.Finish))
	buf = appendU64(buf, uint64(r.Deadline))
	buf = appendU64(buf, uint64(r.Response))
	buf = appendU64(buf, r.Seq)
	buf = appendU16(buf, uint16(len(r.Err)))
	buf = append(buf, r.Err...)
	return patchLen(buf, start)
}

// DecodeSubmitResp decodes a FrameSubmitResp payload into r. The Err
// string is copied out of p (strings are immutable; p is reused).
func DecodeSubmitResp(p []byte, r *SubmitResp) error {
	const fixed = 2 + 2 + 4 + 5*8 + 2
	if len(p) < fixed {
		return fmt.Errorf("wire: submit response truncated (%d bytes)", len(p))
	}
	r.Status = p[0]
	r.Missed = p[1] != 0
	r.RetryAfter = getU16(p[2:])
	r.Restarts = getU32(p[4:])
	r.Arrival = time.Duration(getU64(p[8:]))
	r.Finish = time.Duration(getU64(p[16:]))
	r.Deadline = time.Duration(getU64(p[24:]))
	r.Response = time.Duration(getU64(p[32:]))
	r.Seq = getU64(p[40:])
	en := int(getU16(p[48:]))
	if len(p) != fixed+en {
		return fmt.Errorf("wire: submit response length %d, want %d", len(p), fixed+en)
	}
	r.Err = ""
	if en > 0 {
		r.Err = string(p[fixed:])
	}
	return nil
}

// --- Metrics and Health -------------------------------------------------

// AppendMetricsReq appends an empty-payload FrameMetrics request.
func AppendMetricsReq(buf []byte, id uint64) []byte {
	start := len(buf)
	buf = appendHeader(buf, FrameMetrics, id)
	return patchLen(buf, start)
}

// AppendMetricsResp appends a FrameMetricsResp carrying body verbatim
// (the same JSON document the HTTP /metrics endpoint serves).
func AppendMetricsResp(buf []byte, id uint64, body []byte) []byte {
	start := len(buf)
	buf = appendHeader(buf, FrameMetricsResp, id)
	buf = append(buf, body...)
	return patchLen(buf, start)
}

// AppendHealthReq appends an empty-payload FrameHealth request.
func AppendHealthReq(buf []byte, id uint64) []byte {
	start := len(buf)
	buf = appendHeader(buf, FrameHealth, id)
	return patchLen(buf, start)
}

// AppendHealthResp appends a FrameHealthResp.
func AppendHealthResp(buf []byte, id uint64, r *HealthResp) []byte {
	start := len(buf)
	buf = appendHeader(buf, FrameHealthResp, id)
	var h, d uint8
	if r.Healthy {
		h = 1
	}
	if r.Draining {
		d = 1
	}
	buf = append(buf, h, d)
	buf = appendU16(buf, uint16(len(r.Err)))
	buf = append(buf, r.Err...)
	return patchLen(buf, start)
}

// DecodeHealthResp decodes a FrameHealthResp payload.
func DecodeHealthResp(p []byte, r *HealthResp) error {
	if len(p) < 4 {
		return fmt.Errorf("wire: health response truncated (%d bytes)", len(p))
	}
	r.Healthy = p[0] != 0
	r.Draining = p[1] != 0
	en := int(getU16(p[2:]))
	if len(p) != 4+en {
		return fmt.Errorf("wire: health response length %d, want %d", len(p), 4+en)
	}
	r.Err = ""
	if en > 0 {
		r.Err = string(p[4:])
	}
	return nil
}

// AppendError appends a FrameError answering request id with a reason.
func AppendError(buf []byte, id uint64, msg string) []byte {
	start := len(buf)
	buf = appendHeader(buf, FrameError, id)
	buf = append(buf, msg...)
	return patchLen(buf, start)
}
