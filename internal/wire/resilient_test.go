package wire

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/txn"
)

// blackholeBackend accepts submissions and never completes them — the
// server-side stand-in for an engine that has wedged.
type blackholeBackend struct{ stubBackend }

func newBlackholeBackend() *blackholeBackend {
	b := &blackholeBackend{}
	b.accept = func(id uint64, req core.ServiceRequest, c Completer) bool { return true }
	return b
}

// TestRequestTimeoutNoHang: a server that admits but never answers must
// surface ErrRequestTimeout at the client's deadline instead of hanging
// forever (the pre-hardening behavior).
func TestRequestTimeoutNoHang(t *testing.T) {
	_, addr := startWire(t, newBlackholeBackend(), ServerOptions{})
	c, err := DialOptions(addr, time.Second, ClientOptions{RequestTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, err = c.Submit(&SubmitReq{Items: []txn.Item{1}, Compute: 1, Deadline: time.Second})
	if !errors.Is(err, ErrRequestTimeout) {
		t.Fatalf("err = %v, want ErrRequestTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	// A timed-out request was sent: it is ambiguous, never ErrNotSent.
	if errors.Is(err, ErrNotSent) {
		t.Fatal("timeout classified as not-sent (would invite unsafe resubmission)")
	}
}

// TestSubmitCtxCancel: a per-request context beats the default timeout.
func TestSubmitCtxCancel(t *testing.T) {
	_, addr := startWire(t, newBlackholeBackend(), ServerOptions{})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = c.SubmitCtx(ctx, &SubmitReq{Items: []txn.Item{1}, Compute: 1, Deadline: time.Second})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestClientFailsPendingOnConnDeath: killing the connection under a
// pending request answers it with an error instead of leaving the
// waiter stuck.
func TestClientFailsPendingOnConnDeath(t *testing.T) {
	srv, addr := startWire(t, newBlackholeBackend(), ServerOptions{})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan error, 1)
	go func() {
		_, err := c.Submit(&SubmitReq{Items: []txn.Item{1}, Compute: 1, Deadline: time.Second})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the server
	srv.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("pending request succeeded after connection death")
		}
		if errors.Is(err, ErrNotSent) {
			t.Fatalf("sent-but-unanswered classified not-sent: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pending request hung after connection death")
	}
}

// TestResilientReconnects: the resilient client survives its server
// connection dying between requests — the next submit redials.
func TestResilientReconnects(t *testing.T) {
	b := &stubBackend{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewServer(b, ServerOptions{})
	s1done := make(chan error, 1)
	go func() { s1done <- s1.Serve(ln) }()

	r := NewResilient(ln.Addr().String(), ResilientOptions{
		DialTimeout: time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
	})
	defer r.Close()

	req := &SubmitReq{Items: []txn.Item{1}, Compute: 1, Deadline: time.Second}
	if _, err := r.Submit(req); err != nil {
		t.Fatalf("first submit: %v", err)
	}

	// Kill every server-side connection; the listener stays up, so a
	// redial succeeds. The client's next write fails before buffering
	// (ErrNotSent) or its register fails — both safe-retry paths.
	s1.Close()
	<-s1done
	s2 := NewServer(b, ServerOptions{})
	s2done := make(chan error, 1)
	ln2, err := net.Listen("tcp", ln.Addr().String())
	if err != nil {
		t.Skipf("could not rebind %s: %v", ln.Addr(), err)
	}
	go func() { s2done <- s2.Serve(ln2) }()
	defer func() {
		s2.Close()
		<-s2done
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err = r.Submit(req); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submit never recovered: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if r.Redials() == 0 {
		t.Fatal("no redial counted after connection death")
	}
}

// TestResilientNeverRetriesAmbiguous: a request the server may have
// admitted (accepted then timed out) must not be resubmitted — blind
// retry could double-execute a transaction.
func TestResilientNeverRetriesAmbiguous(t *testing.T) {
	var enqueued atomic.Int64
	b := &blackholeBackend{}
	b.accept = func(id uint64, req core.ServiceRequest, c Completer) bool {
		enqueued.Add(1)
		return true
	}
	_, addr := startWire(t, b, ServerOptions{})

	r := NewResilient(addr, ResilientOptions{
		DialTimeout: time.Second,
		Client:      ClientOptions{RequestTimeout: 100 * time.Millisecond},
		BackoffBase: time.Millisecond,
	})
	defer r.Close()

	_, err := r.Submit(&SubmitReq{Items: []txn.Item{1}, Compute: 1, Deadline: time.Second})
	if !errors.Is(err, ErrRequestTimeout) {
		t.Fatalf("err = %v, want ErrRequestTimeout", err)
	}
	if n := enqueued.Load(); n != 1 {
		t.Fatalf("server saw %d submissions, want exactly 1 (no ambiguous retry)", n)
	}
	if r.Resubmits() != 0 {
		t.Fatalf("resubmits = %d, want 0", r.Resubmits())
	}
}

// TestServerIdleTimeout: a connection holding a half-sent frame past the
// idle window is closed and counted — the slow-loris guard.
func TestServerIdleTimeout(t *testing.T) {
	s, addr := startWire(t, &stubBackend{}, ServerOptions{IdleTimeout: 100 * time.Millisecond})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// Half a frame: a plausible length prefix, then silence.
	if _, err := nc.Write([]byte{0x40, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("connection survived the idle window with data pending")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Counters().IdleClosed == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle close not counted: %+v", s.Counters())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerIdleTimeoutSparesActive: steady traffic with gaps shorter
// than the idle window is never cut — the deadline rolls per frame.
func TestServerIdleTimeoutSparesActive(t *testing.T) {
	s, addr := startWire(t, &stubBackend{}, ServerOptions{IdleTimeout: 300 * time.Millisecond})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	req := &SubmitReq{Items: []txn.Item{1}, Compute: 1, Deadline: time.Second}
	for i := 0; i < 4; i++ {
		if _, err := c.Submit(req); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		time.Sleep(150 * time.Millisecond) // below the window, above half of it
	}
	if n := s.Counters().IdleClosed; n != 0 {
		t.Fatalf("active connection idle-closed %d times", n)
	}
}
