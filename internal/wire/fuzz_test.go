package wire

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/txn"
)

// FuzzWireRoundTrip feeds arbitrary bytes to the submit-payload decoder.
// The decoder must never panic; when it accepts a payload, re-encoding
// the decoded request must produce a payload that decodes to the same
// request (the canonical-encoding fixed point). The seed corpus under
// testdata/fuzz covers every optional-field shape.
func FuzzWireRoundTrip(f *testing.F) {
	for _, req := range submitFixturesF() {
		frame := AppendSubmit(nil, 1, &req)
		f.Add(frame[headerLen:])
	}
	f.Add([]byte{})
	f.Add(make([]byte, 29))
	// Corruption shapes from the chaos-injection work: a payload cut
	// mid-field, an item count far beyond the remaining bytes, and a
	// flags byte claiming optional sections that are not there.
	whole := AppendSubmit(nil, 1, &SubmitReq{
		Items: []txn.Item{5, 6, 7}, Reads: []bool{true, false, true},
		Compute: time.Millisecond, Deadline: time.Second,
	})[headerLen:]
	f.Add(whole[:len(whole)/2])
	huge := append([]byte{}, whole...)
	huge[0] = 0xff
	huge[1] = 0xff
	f.Add(huge)
	lying := append([]byte{}, whole...)
	lying[len(lying)-1] ^= 0xff
	f.Add(lying)

	f.Fuzz(func(t *testing.T, payload []byte) {
		var req SubmitReq
		if err := DecodeSubmit(payload, &req); err != nil {
			return
		}
		if req.Compute <= 0 || req.Deadline <= 0 {
			t.Fatalf("decoder accepted non-positive durations: %+v", req)
		}
		frame := AppendSubmit(nil, 99, &req)
		var again SubmitReq
		if err := DecodeSubmit(frame[headerLen:], &again); err != nil {
			t.Fatalf("re-encoded payload rejected: %v\nreq: %+v", err, req)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round trip diverged:\n first  %+v\n second %+v", req, again)
		}
	})
}

// submitFixturesF mirrors submitFixtures but adds degenerate shapes the
// fuzzer should start from.
func submitFixturesF() []SubmitReq {
	fx := submitFixtures()
	fx = append(fx,
		SubmitReq{Items: []txn.Item{0}, Compute: 1, Deadline: 1},
		SubmitReq{
			Items:   make([]txn.Item, 17),
			NeedsIO: make([]bool, 17),
			Compute: time.Hour, Deadline: time.Hour,
		},
	)
	return fx
}
