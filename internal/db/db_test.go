package db

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/txn"
)

func TestNewStoreInitialValues(t *testing.T) {
	s := New(5)
	if s.Size() != 5 {
		t.Fatalf("Size = %d", s.Size())
	}
	for i := txn.Item(0); i < 5; i++ {
		v := s.Get(i)
		if v.Writer != -1 || v.Seq != 0 {
			t.Fatalf("item %d initial value = %+v", i, v)
		}
	}
}

func TestNewRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestWriteInstallsVersion(t *testing.T) {
	s := New(3)
	v := s.Write(7, 2, 1)
	if v.Writer != 7 || v.Incarnation != 2 || v.Seq != 1 {
		t.Fatalf("written value = %+v", v)
	}
	if s.Get(1) != v {
		t.Fatal("Get does not reflect write")
	}
	if s.Pending(7) != 1 {
		t.Fatalf("Pending = %d", s.Pending(7))
	}
}

func TestCommitMakesWritesPermanent(t *testing.T) {
	s := New(3)
	s.Write(1, 0, 0)
	s.Write(1, 0, 2)
	if n := s.Commit(1); n != 2 {
		t.Fatalf("Commit returned %d", n)
	}
	if s.Pending(1) != 0 || s.ActiveWriters() != 0 {
		t.Fatal("undo log not discarded")
	}
	if s.Get(0).Writer != 1 || s.Get(2).Writer != 1 {
		t.Fatal("committed values lost")
	}
}

func TestAbortRestoresBeforeImages(t *testing.T) {
	s := New(3)
	s.Write(1, 0, 0)
	s.Commit(1)
	base := s.Get(0)

	s.Write(2, 0, 0)
	s.Write(2, 0, 1)
	s.Write(2, 0, 0) // second write of same item by same txn
	if n := s.Abort(2); n != 3 {
		t.Fatalf("Abort undid %d writes, want 3", n)
	}
	if s.Get(0) != base {
		t.Fatalf("item 0 = %+v after abort, want %+v", s.Get(0), base)
	}
	if s.Get(1).Writer != -1 {
		t.Fatal("item 1 not restored to initial value")
	}
}

func TestAbortUnknownTxnIsNoop(t *testing.T) {
	s := New(2)
	if n := s.Abort(99); n != 0 {
		t.Fatalf("Abort of unknown txn undid %d", n)
	}
}

func TestReadDoesNotLog(t *testing.T) {
	s := New(2)
	s.Read(1, 0)
	if s.Pending(1) != 0 {
		t.Fatal("read created undo records")
	}
	r, w, _, _ := s.Stats()
	if r != 1 || w != 0 {
		t.Fatalf("stats = %d reads %d writes", r, w)
	}
}

func TestSeqMonotone(t *testing.T) {
	s := New(2)
	var last uint64
	for i := 0; i < 10; i++ {
		v := s.Write(TxnID(i%3), 0, txn.Item(i%2))
		if v.Seq <= last {
			t.Fatal("sequence numbers not strictly increasing")
		}
		last = v.Seq
		s.Commit(TxnID(i % 3))
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access did not panic")
		}
	}()
	s.Write(1, 0, 5)
}

func TestCheckClean(t *testing.T) {
	s := New(2)
	s.Write(1, 0, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("CheckClean passed with pending undo")
			}
		}()
		s.CheckClean()
	}()
	s.Commit(1)
	s.CheckClean() // must not panic
}

func TestSnapshotIsCopy(t *testing.T) {
	s := New(2)
	snap := s.Snapshot()
	s.Write(1, 0, 0)
	s.Commit(1)
	if snap[0].Writer != -1 {
		t.Fatal("snapshot aliased live values")
	}
}

// Property: interleaved writers with strict per-item exclusivity — after
// all transactions finish, each item's value is the last *committed* write
// and aborted writes leave no trace.
func TestQuickUndoCorrectness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const items = 6
		s := New(items)
		// Model: item -> owning txn (exclusive), plus a reference copy of
		// the expected committed value.
		owner := map[txn.Item]TxnID{}
		owned := map[TxnID][]txn.Item{}
		expect := make([]Value, items)
		shadow := make([]Value, items) // value that Abort must restore to
		for i := range expect {
			expect[i] = Value{Writer: -1}
			shadow[i] = Value{Writer: -1}
		}
		for op := 0; op < 200; op++ {
			id := TxnID(rng.Intn(4))
			switch rng.Intn(3) {
			case 0: // write an unowned item
				it := txn.Item(rng.Intn(items))
				if o, held := owner[it]; held && o != id {
					continue // exclusivity: skip
				}
				owner[it] = id
				owned[id] = append(owned[id], it)
				s.Write(id, 0, it)
			case 1: // commit
				for _, it := range owned[id] {
					shadow[it] = s.Get(it)
					expect[it] = s.Get(it)
					delete(owner, it)
				}
				owned[id] = nil
				s.Commit(id)
			case 2: // abort
				for _, it := range owned[id] {
					delete(owner, it)
				}
				owned[id] = nil
				s.Abort(id)
				for it := 0; it < items; it++ {
					if _, held := owner[txn.Item(it)]; !held {
						if s.Get(txn.Item(it)) != shadow[it] {
							return false
						}
					}
				}
			}
		}
		// Finish everyone by abort; final state must equal committed state.
		for id := TxnID(0); id < 4; id++ {
			s.Abort(id)
		}
		for it := 0; it < items; it++ {
			if s.Get(txn.Item(it)) != expect[it] {
				return false
			}
		}
		s.CheckClean()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
