// Package db implements the database itself: a main-memory array of
// versioned objects with per-transaction undo logging.
//
// The paper's simulator models data only as lock identities; this package
// makes the data real so that the reproduction can *verify* consistency
// rather than assume it: every update installs a before-image in the
// writer's undo log, aborts restore before-images in reverse order (the
// paper's fixed-cost rollback corresponds to discarding this log), and the
// test suite checks that the final database state is exactly the one
// produced by the equivalent serial history of committed transactions.
package db

import (
	"fmt"

	"repro/internal/txn"
)

// TxnID identifies a transaction to the store.
type TxnID int

// Value is the content of one database object. The payload is synthetic —
// what matters for verification is the identity of the last writer and the
// global write sequence number, which together make every state of the
// database distinguishable.
type Value struct {
	// Writer is the transaction that produced this value (-1 initially).
	Writer TxnID
	// Incarnation is the writer's restart count at the time of the write.
	Incarnation int
	// Seq is the global write sequence number (0 = initial value).
	Seq uint64
}

type undoRec struct {
	item   txn.Item
	before Value
}

// Store is a main-memory database with undo logging (strict before-image
// rollback, matching strict 2PL: a transaction's writes are undone only if
// it aborts, and nobody else can have read them because writers hold
// exclusive locks until commit).
//
// Undo logs are dense slices indexed by transaction ID (IDs are dense
// arrival indices throughout the repository): commit and abort empty a log
// but keep its capacity, so a restarted transaction's next life — and the
// write-heavy engine hot path generally — logs before-images without
// allocating.
type Store struct {
	values []Value
	undo   [][]undoRec // by TxnID; emptied (capacity kept) on commit/abort
	active int         // transactions with a non-empty undo log
	seq    uint64

	writes  uint64
	reads   uint64
	aborts  uint64
	commits uint64
}

// New returns a store of n objects holding their initial values.
func New(n int) *Store {
	if n <= 0 {
		panic(fmt.Sprintf("db: store size %d <= 0", n))
	}
	s := &Store{
		values: make([]Value, n),
	}
	for i := range s.values {
		s.values[i] = Value{Writer: -1}
	}
	return s
}

// undoOf returns t's undo log (nil if none).
func (s *Store) undoOf(t TxnID) []undoRec {
	if int(t) < 0 || int(t) >= len(s.undo) {
		return nil
	}
	return s.undo[t]
}

// Size returns the number of objects.
func (s *Store) Size() int { return len(s.values) }

func (s *Store) check(item txn.Item) {
	if int(item) < 0 || int(item) >= len(s.values) {
		panic(fmt.Sprintf("db: item %d outside store of size %d", item, len(s.values)))
	}
}

// Read returns the current value of item, charging a read to t's stats.
func (s *Store) Read(t TxnID, item txn.Item) Value {
	s.check(item)
	s.reads++
	return s.values[item]
}

// Write installs a new version of item written by t, saving the
// before-image in t's undo log. The caller (the engine) is responsible for
// holding the exclusive lock.
func (s *Store) Write(t TxnID, incarnation int, item txn.Item) Value {
	s.check(item)
	if n := int(t) + 1; n > len(s.undo) {
		if n < 2*len(s.undo) {
			n = 2 * len(s.undo)
		}
		grown := make([][]undoRec, n)
		copy(grown, s.undo)
		s.undo = grown
	}
	if len(s.undo[t]) == 0 {
		s.active++
		if s.undo[t] == nil {
			s.undo[t] = make([]undoRec, 0, 32)
		}
	}
	s.undo[t] = append(s.undo[t], undoRec{item: item, before: s.values[item]})
	s.seq++
	s.writes++
	v := Value{Writer: t, Incarnation: incarnation, Seq: s.seq}
	s.values[item] = v
	return v
}

// Get returns the current value without attributing a read (inspection).
func (s *Store) Get(item txn.Item) Value {
	s.check(item)
	return s.values[item]
}

// Pending returns the number of uncommitted writes of t.
func (s *Store) Pending(t TxnID) int { return len(s.undoOf(t)) }

// Abort rolls t back: before-images are restored in reverse order and the
// undo log is discarded. It returns the number of writes undone.
func (s *Store) Abort(t TxnID) int {
	log := s.undoOf(t)
	for i := len(log) - 1; i >= 0; i-- {
		s.values[log[i].item] = log[i].before
	}
	if len(log) > 0 {
		s.active--
		s.undo[t] = log[:0]
	}
	s.aborts++
	return len(log)
}

// Commit makes t's writes permanent by discarding its undo log. It returns
// the number of writes committed.
func (s *Store) Commit(t TxnID) int {
	n := len(s.undoOf(t))
	if n > 0 {
		s.active--
		s.undo[t] = s.undo[t][:0]
	}
	s.commits++
	return n
}

// ActiveWriters returns the number of transactions with pending writes.
func (s *Store) ActiveWriters() int { return s.active }

// Stats returns cumulative operation counts.
func (s *Store) Stats() (reads, writes, commits, aborts uint64) {
	return s.reads, s.writes, s.commits, s.aborts
}

// Snapshot copies the current values (verification).
func (s *Store) Snapshot() []Value {
	return append([]Value(nil), s.values...)
}

// CheckClean panics unless no undo logs remain (every transaction either
// committed or aborted) — called at end of simulation by the engine's
// invariant checks.
func (s *Store) CheckClean() {
	if s.active != 0 {
		panic(fmt.Sprintf("db: %d transactions left pending undo logs", s.active))
	}
}
