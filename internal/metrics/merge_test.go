package metrics

// MergeRuns is how a sharded run becomes one system-wide Run. These tests
// pin the tricky part: merging per-shard percentile rings after wraparound
// without double-counting a sample and without per-shard ordering bias
// (the merged window must be the most recent commits by commit instant,
// not "all of shard 0 then all of shard 1").

import (
	"reflect"
	"testing"
	"time"
)

// obs records one commit with tardiness = finish (deadline 0), so every
// sample value identifies its commit instant in milliseconds.
func obs(r *Run, finishMs int) {
	f := time.Duration(finishMs) * time.Millisecond
	r.Observe(0, 0, f, 0)
}

func sampleValues(r *Run) []float64 {
	var out []float64
	for _, s := range r.orderedSamples() {
		out = append(out, s.tardy)
	}
	return out
}

func TestMergeRunsRingWrapAndOrder(t *testing.T) {
	a := &Run{SampleWindow: 4}
	for _, ms := range []int{10, 20, 30, 40, 50} { // wraps: ring keeps 20..50
		obs(a, ms)
	}
	if got, want := sampleValues(a), []float64{20, 30, 40, 50}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ring after wrap = %v, want %v", got, want)
	}
	b := &Run{SampleWindow: 4}
	for _, ms := range []int{15, 25, 35} { // no wrap
		obs(b, ms)
	}

	m := MergeRuns(a, b)
	// Union of retained samples is {20,30,40,50,15,25,35}; the merged
	// window (4) must keep the most recent four by commit instant.
	if got, want := sampleValues(&m), []float64{30, 35, 40, 50}; !reflect.DeepEqual(got, want) {
		t.Fatalf("merged ring = %v, want %v", got, want)
	}
	if m.Committed != a.Committed+b.Committed {
		t.Fatalf("merged Committed = %d, want %d", m.Committed, a.Committed+b.Committed)
	}
	if m.Missed != 8 || m.TardinessSum != a.TardinessSum+b.TardinessSum {
		t.Fatalf("merged miss counters wrong: %+v", m)
	}
	// The merged ring is a valid ring: a further Observe overwrites the
	// oldest sample, not an arbitrary one.
	obs(&m, 60)
	if got, want := sampleValues(&m), []float64{35, 40, 50, 60}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ring after post-merge observe = %v, want %v", got, want)
	}
}

func TestMergeRunsUnboundedKeepsEverything(t *testing.T) {
	a := &Run{} // SampleWindow 0: simulation mode, keep all samples
	for _, ms := range []int{5, 30} {
		obs(a, ms)
	}
	b := &Run{SampleWindow: 2}
	for _, ms := range []int{10, 20, 40} { // wraps to {20, 40}
		obs(b, ms)
	}
	m := MergeRuns(a, b)
	if m.SampleWindow != 0 {
		t.Fatalf("merged SampleWindow = %d, want 0 (unbounded)", m.SampleWindow)
	}
	if got, want := sampleValues(&m), []float64{5, 20, 30, 40}; !reflect.DeepEqual(got, want) {
		t.Fatalf("merged samples = %v, want %v", got, want)
	}
}

func TestMergeRunsSingleIsIdentity(t *testing.T) {
	r := &Run{SampleWindow: 3, CPUs: 1}
	for _, ms := range []int{10, 20, 30, 40} {
		obs(r, ms)
	}
	m := MergeRuns(r)
	if !reflect.DeepEqual(m.Result(), r.Result()) {
		t.Fatalf("MergeRuns of one run changed its Result:\n got %+v\nwant %+v", m.Result(), r.Result())
	}
}

func TestMergeRunsClasses(t *testing.T) {
	a, b := &Run{}, &Run{}
	a.Observe(1, 0, 10*time.Millisecond, 0)
	a.Observe(2, 0, 5*time.Millisecond, 20*time.Millisecond)
	b.Observe(1, 0, 30*time.Millisecond, 0)
	m := MergeRuns(a, b)
	res := m.Result()
	if len(res.Classes) != 2 {
		t.Fatalf("merged classes = %+v, want 2 entries", res.Classes)
	}
	if res.Classes[0].Class != 1 || res.Classes[0].Committed != 2 {
		t.Fatalf("class 1 = %+v, want 2 commits", res.Classes[0])
	}
	if res.Classes[1].Class != 2 || res.Classes[1].MissPercent != 0 {
		t.Fatalf("class 2 = %+v, want 0%% miss", res.Classes[1])
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := &Run{SampleWindow: 2}
	obs(r, 10)
	r.Observe(3, 0, 5*time.Millisecond, 20*time.Millisecond)
	c := r.Clone()
	obs(r, 99)
	r.classes[3].committed++
	if got, want := sampleValues(&c), []float64{10, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("clone samples mutated: %v, want %v", got, want)
	}
	if c.classes[3].committed != 1 {
		t.Fatalf("clone classes mutated: %d commits, want 1", c.classes[3].committed)
	}
}
