package metrics

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestObserveCountsMisses(t *testing.T) {
	var r Run
	r.Observe(0, 0, 100*time.Millisecond, 200*time.Millisecond) // early
	r.Observe(0, 0, 300*time.Millisecond, 200*time.Millisecond) // late by 100ms
	r.Observe(0, 0, 200*time.Millisecond, 200*time.Millisecond) // exactly on time
	if r.Committed != 3 {
		t.Fatalf("Committed = %d", r.Committed)
	}
	if r.Missed != 1 {
		t.Fatalf("Missed = %d, want 1 (on-time is not a miss)", r.Missed)
	}
	if r.TardinessSum != 100*time.Millisecond {
		t.Fatalf("TardinessSum = %v", r.TardinessSum)
	}
	if r.LatenessSum != 0 {
		t.Fatalf("LatenessSum = %v, want 0 (-100 +100 +0)", r.LatenessSum)
	}
}

func TestResultDerivation(t *testing.T) {
	r := Run{
		Committed:    4,
		Missed:       1,
		TardinessSum: 200 * time.Millisecond,
		LatenessSum:  -100 * time.Millisecond,
		Restarts:     6,
		CPUBusy:      500 * time.Millisecond,
		DiskBusy:     250 * time.Millisecond,
		Elapsed:      time.Second,
		PListArea:    1.5 * float64(time.Second),
	}
	res := r.Result()
	if res.MissPercent != 25 {
		t.Fatalf("MissPercent = %v", res.MissPercent)
	}
	if res.MeanLatenessMs != 50 {
		t.Fatalf("MeanLatenessMs = %v", res.MeanLatenessMs)
	}
	if res.MeanSignedLatenessMs != -25 {
		t.Fatalf("MeanSignedLatenessMs = %v", res.MeanSignedLatenessMs)
	}
	if res.RestartsPerTxn != 1.5 {
		t.Fatalf("RestartsPerTxn = %v", res.RestartsPerTxn)
	}
	if res.CPUUtilization != 0.5 {
		t.Fatalf("CPUUtilization = %v", res.CPUUtilization)
	}
	if res.DiskUtilization != 0.25 {
		t.Fatalf("DiskUtilization = %v", res.DiskUtilization)
	}
	if math.Abs(res.AvgPListSize-1.5) > 1e-9 {
		t.Fatalf("AvgPListSize = %v", res.AvgPListSize)
	}
}

func TestResultMultiCPUUtilization(t *testing.T) {
	r := Run{Committed: 1, CPUBusy: time.Second, Elapsed: time.Second, CPUs: 2}
	if got := r.Result().CPUUtilization; got != 0.5 {
		t.Fatalf("2-CPU utilisation = %v, want 0.5", got)
	}
}

func TestEmptyRunResultIsZero(t *testing.T) {
	var r Run
	res := r.Result()
	if res.MissPercent != 0 || res.RestartsPerTxn != 0 || res.CPUUtilization != 0 {
		t.Fatal("empty run should derive zeros without dividing by zero")
	}
}

func TestAggregateMeans(t *testing.T) {
	var a Aggregate
	a.Add(Result{MissPercent: 10, MeanLatenessMs: 100, RestartsPerTxn: 1})
	a.Add(Result{MissPercent: 20, MeanLatenessMs: 300, RestartsPerTxn: 3})
	if a.N() != 2 {
		t.Fatalf("N = %d", a.N())
	}
	s := a.Summary()
	if s.MissPercent != 15 || s.MeanLatenessMs != 200 || s.RestartsPerTxn != 2 {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestAggregateCI(t *testing.T) {
	var a Aggregate
	for _, v := range []float64{10, 12, 14, 16, 18, 20, 22, 24, 26, 28} {
		a.Add(Result{MissPercent: v})
	}
	if a.MissPercent.CI95() <= 0 {
		t.Fatal("CI should be positive with spread data")
	}
}

func TestImprovementOver(t *testing.T) {
	edf := Result{MissPercent: 20, MeanLatenessMs: 1000, RestartsPerTxn: 2}
	cca := Result{MissPercent: 16, MeanLatenessMs: 700, RestartsPerTxn: 1}
	imp := ImprovementOver(edf, cca)
	if imp.MissPercent != 20 {
		t.Fatalf("miss improvement = %v, want 20", imp.MissPercent)
	}
	if imp.MeanLateness != 30 {
		t.Fatalf("lateness improvement = %v, want 30", imp.MeanLateness)
	}
	if imp.RestartsPerTxn != 50 {
		t.Fatalf("restart improvement = %v, want 50", imp.RestartsPerTxn)
	}
}

func TestImprovementZeroBaseline(t *testing.T) {
	imp := ImprovementOver(Result{}, Result{MissPercent: 5})
	if imp.MissPercent != 0 {
		t.Fatal("zero baseline should yield 0 improvement, not a division by zero")
	}
}

func TestLatenessPercentiles(t *testing.T) {
	var r Run
	// 100 commits: 90 on time, 10 late by 1..10ms.
	for i := 0; i < 90; i++ {
		r.Observe(0, 0, time.Duration(i)*time.Millisecond, time.Duration(i)*time.Millisecond)
	}
	for i := 1; i <= 10; i++ {
		r.Observe(0, 0, time.Duration(100+i)*time.Millisecond, 100*time.Millisecond)
	}
	res := r.Result()
	if res.P50LatenessMs != 0 {
		t.Errorf("P50 = %v, want 0 (90%% on time)", res.P50LatenessMs)
	}
	if res.P90LatenessMs < 0 || res.P90LatenessMs > 1 {
		t.Errorf("P90 = %v, want ~0-1", res.P90LatenessMs)
	}
	if res.P99LatenessMs < 8 || res.P99LatenessMs > 10 {
		t.Errorf("P99 = %v, want ~9", res.P99LatenessMs)
	}
	if res.MaxLatenessMs != 10 {
		t.Errorf("Max = %v, want 10", res.MaxLatenessMs)
	}
}

func TestPercentileEdge(t *testing.T) {
	if percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	if percentile([]float64{7}, 99) != 7 {
		t.Error("single-sample percentile wrong")
	}
}

// TestPercentileKnownQuantiles pins the interpolated definition to known
// values (the R-7 quantiles of 1..5); the old truncating index returned 4
// for P90 and 2 for P30.
func TestPercentileKnownQuantiles(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {30, 2.2}, {50, 3}, {75, 4}, {90, 4.6}, {100, 5},
	}
	for _, c := range cases {
		if got := percentile(s, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("percentile(1..5, %v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile([]float64{10, 20}, 50); got != 15 {
		t.Errorf("percentile({10,20}, 50) = %v, want 15 (midpoint)", got)
	}
	if got := percentile(s, -5); got != 1 {
		t.Errorf("percentile below range = %v, want first sample", got)
	}
	if got := percentile(s, 105); got != 5 {
		t.Errorf("percentile above range = %v, want last sample", got)
	}
}

// TestSummaryCarriesCounts asserts Summary does not zero the count-valued
// and duration fields: aggregating identical runs must preserve Committed,
// Dropped, Restarts, MeanResponseMs and Elapsed exactly.
func TestSummaryCarriesCounts(t *testing.T) {
	var a Aggregate
	r := Result{Committed: 100, Dropped: 3, Restarts: 17, MeanResponseMs: 42.5, Elapsed: 2 * time.Second}
	a.Add(r)
	a.Add(r)
	s := a.Summary()
	if s.Committed != 100 || s.Dropped != 3 || s.Restarts != 17 {
		t.Fatalf("Summary dropped counts: %+v", s)
	}
	if s.MeanResponseMs != 42.5 {
		t.Fatalf("Summary MeanResponseMs = %v, want 42.5", s.MeanResponseMs)
	}
	if s.Elapsed != 2*time.Second {
		t.Fatalf("Summary Elapsed = %v, want 2s", s.Elapsed)
	}
	// Non-identical runs: the rounded mean.
	a.Add(Result{Committed: 103, Restarts: 18, Elapsed: 4 * time.Second})
	s = a.Summary()
	if s.Committed != 101 { // mean 101, exact
		t.Fatalf("Summary Committed = %d, want 101", s.Committed)
	}
	if ms := s.Elapsed.Round(time.Millisecond); ms != 2667*time.Millisecond {
		t.Fatalf("Summary Elapsed = %v, want ≈2.667s (mean of 2s, 2s, 4s)", s.Elapsed)
	}
}

func TestResultString(t *testing.T) {
	s := Result{MissPercent: 12.5, MeanLatenessMs: 42, RestartsPerTxn: 0.5}.String()
	if !strings.Contains(s, "12.50%") || !strings.Contains(s, "42.00ms") {
		t.Fatalf("String() = %q", s)
	}
}

// TestResultJSONExactRoundTrip: the checkpoint format depends on Result
// surviving encode→decode bit-identically, including awkward float64
// values — Go's encoding/json uses shortest-representation encoding, which
// round-trips every finite float exactly.
func TestResultJSONExactRoundTrip(t *testing.T) {
	in := Result{
		Committed: 997, Dropped: 3,
		MissPercent:          100.0 / 3.0,
		MeanLatenessMs:       0.1 + 0.2,                // 0.30000000000000004
		MeanSignedLatenessMs: -4.9406564584124654e-324, // smallest denormal
		P50LatenessMs:        math.MaxFloat64,
		P90LatenessMs:        math.SmallestNonzeroFloat64,
		P99LatenessMs:        1e300,
		MaxLatenessMs:        math.Pi,
		MeanResponseMs:       math.E,
		RestartsPerTxn:       1.0 / 7.0,
		WastedServiceMs:      2.5e-15,
		LockWaits:            12, Deadlocks: 1, NoncontributingAborts: 7,
		CPUUtilization:  0.9999999999999999,
		DiskUtilization: 1e-17,
		AvgPListSize:    6.000000000000001,
		AvgLiveTxns:     17.3,
		Restarts:        88,
		Elapsed:         123456789 * time.Nanosecond,
		Classes: []ClassResult{
			{Class: 0, Committed: 500, MissPercent: 1.0 / 3.0, MeanLatenessMs: 0.7},
			{Class: 1, Committed: 497, MissPercent: 2.0 / 3.0, MeanLatenessMs: 0.07},
		},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Result
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip not exact:\n in: %#v\nout: %#v", in, out)
	}
}
