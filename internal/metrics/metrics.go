// Package metrics collects per-run performance measures and aggregates them
// across seeds the way the paper does: every configuration is run for a set
// of random seeds (10 for main memory, 30 for disk) and the reported value
// is the mean across runs.
//
// The headline metrics are the paper's: the percentage of transactions that
// miss their deadline, the mean lateness of transactions (reported here as
// mean tardiness, max(0, finish − deadline), so that improvement percentages
// are well defined), and the number of restarts per transaction.
package metrics

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/stats"
)

// Run accumulates raw counters during one simulation run.
type Run struct {
	// Committed is the number of transactions that ran to commit.
	Committed int
	// Missed is the number of committed transactions that finished after
	// their deadline.
	Missed int
	// Dropped is the number of transactions discarded at their deadline
	// (firm-deadline mode; always 0 in the paper's soft model).
	Dropped int
	// Admitted is the number of arrivals that passed a configured
	// admission controller (0 when no controller is configured, keeping
	// unfaulted runs' encodings byte-identical to older ones).
	Admitted int
	// Rejected is the number of arrivals turned away by the admission
	// controller. A rejected transaction counts as a miss.
	Rejected int
	// RetriedIO is the number of transient disk-error retries served
	// (fault injection only).
	RetriedIO int
	// FaultAborts is the number of aborts forced by the fault plan
	// (spurious aborts plus permanently failed disk accesses); each is
	// also counted in Restarts.
	FaultAborts int
	// TardinessSum is the summed positive lateness of all transactions.
	TardinessSum time.Duration
	// LatenessSum is the summed signed lateness (finish − deadline).
	LatenessSum time.Duration
	// ResponseSum is the summed response time (finish − arrival).
	ResponseSum time.Duration
	// Restarts is the number of transaction aborts (every abort leads to
	// a restart; deadlines are soft and transactions are never dropped).
	Restarts int
	// NoncontributingAborts counts aborted transactions that had been
	// dispatched while a higher-priority transaction was blocked — the
	// paper's "noncontributing executions" that were in fact rolled back.
	NoncontributingAborts int
	// WastedService is the effective service time thrown away by aborts.
	WastedService time.Duration
	// RollbackTime is CPU time spent rolling back aborted transactions.
	RollbackTime time.Duration
	// LockWaits counts blocking data conflicts (zero under CCA).
	LockWaits int
	// Deadlocks counts deadlock resolutions (possible only under the
	// waiting baselines, e.g. EDF-WP).
	Deadlocks int
	// CPUBusy is total CPU busy time (including rollbacks).
	CPUBusy time.Duration
	// DiskBusy is total disk busy time.
	DiskBusy time.Duration
	// Elapsed is the simulated time at which the last transaction
	// committed.
	Elapsed time.Duration
	// PListArea is the time integral of the partially-executed
	// transaction list's size (for the paper's 1–2 average check).
	PListArea float64
	// LiveArea is the time integral of the number of live (arrived, not
	// committed) transactions, for Little's-law checks.
	LiveArea float64
	// CPUs is the number of processors (for utilisation normalisation).
	CPUs int
	// Disks is the number of disks (for utilisation normalisation).
	Disks int
	// SampleWindow, when > 0, bounds latenessSamples to a ring of the most
	// recent commits so that an unbounded run (the wall-clock service)
	// keeps constant memory; the percentile metrics then describe the
	// recent window rather than the whole run. 0 (the default, used by
	// every simulation run) keeps every sample.
	SampleWindow int
	// UseHistogram routes tardiness observations into a fixed-bucket
	// log-scale Histogram instead of the sample ring: constant memory over
	// any run length, percentiles exact-to-bucket over the whole run (not
	// a recent window), and shard merging by bucket sums. The wall-clock
	// service turns it on by default; the ring stays available behind the
	// service's compat flag until the figure suite migrates (simulation
	// runs keep unbounded samples and are untouched either way).
	UseHistogram bool
	hist         *Histogram
	// latenessSamples holds each commit's tardiness in ms, for the
	// percentile metrics (a ring of the last SampleWindow commits when
	// SampleWindow > 0, rotated at sampleIdx). sampleTimes is the parallel
	// ring of commit instants: the merge key that lets MergeRuns interleave
	// several shards' rings in true commit order instead of concatenation
	// order.
	latenessSamples []float64
	sampleTimes     []time.Duration
	sampleIdx       int
	// classes holds per-class commit counters (high-variance experiment).
	classes map[int]*classCounts
}

type classCounts struct {
	committed    int
	missed       int
	tardinessSum time.Duration
}

// Observe records one transaction commit. class is the transaction's
// compute-time class (0 for single-class workloads).
func (r *Run) Observe(class int, arrival, finish, deadline time.Duration) {
	r.Committed++
	r.ResponseSum += finish - arrival
	late := finish - deadline
	r.LatenessSum += late
	if r.classes == nil {
		r.classes = make(map[int]*classCounts)
	}
	cc := r.classes[class]
	if cc == nil {
		cc = &classCounts{}
		r.classes[class] = cc
	}
	cc.committed++
	tardy := 0.0
	if late > 0 {
		r.Missed++
		r.TardinessSum += late
		cc.missed++
		cc.tardinessSum += late
		tardy = float64(late) / float64(time.Millisecond)
	}
	if r.UseHistogram {
		if r.hist == nil {
			r.hist = &Histogram{}
		}
		r.hist.Observe(tardy)
		return
	}
	if r.SampleWindow > 0 && len(r.latenessSamples) >= r.SampleWindow {
		r.latenessSamples[r.sampleIdx] = tardy
		r.sampleTimes[r.sampleIdx] = finish
		r.sampleIdx = (r.sampleIdx + 1) % r.SampleWindow
	} else {
		r.latenessSamples = append(r.latenessSamples, tardy)
		r.sampleTimes = append(r.sampleTimes, finish)
	}
}

// TardinessHistogram returns the run's latency histogram, or nil when the
// run uses the sample ring.
func (r *Run) TardinessHistogram() *Histogram { return r.hist }

// sample pairs one ring entry's commit instant with its tardiness.
type sample struct {
	at    time.Duration
	tardy float64
}

// orderedSamples unrolls the ring oldest-first. A full ring's oldest entry
// sits at sampleIdx (the next overwrite position); a partial ring is already
// in append order.
func (r *Run) orderedSamples() []sample {
	out := make([]sample, 0, len(r.latenessSamples))
	emit := func(i int) { out = append(out, sample{at: r.sampleTimes[i], tardy: r.latenessSamples[i]}) }
	if r.SampleWindow > 0 && len(r.latenessSamples) >= r.SampleWindow {
		for i := r.sampleIdx; i < len(r.latenessSamples); i++ {
			emit(i)
		}
		for i := 0; i < r.sampleIdx; i++ {
			emit(i)
		}
		return out
	}
	for i := range r.latenessSamples {
		emit(i)
	}
	return out
}

// Clone returns a deep copy of the run counters: the sample rings and the
// per-class map are fresh, so the copy can be read (or merged) off the
// engine's goroutine while the original keeps accumulating.
func (r *Run) Clone() Run {
	c := *r
	c.latenessSamples = append([]float64(nil), r.latenessSamples...)
	c.sampleTimes = append([]time.Duration(nil), r.sampleTimes...)
	if r.hist != nil {
		c.hist = r.hist.Clone()
	}
	if r.classes != nil {
		c.classes = make(map[int]*classCounts, len(r.classes))
		for k, v := range r.classes {
			cv := *v
			c.classes[k] = &cv
		}
	}
	return c
}

// MergeRuns folds several shards' runs into one system-wide Run, as if a
// single engine had observed every commit. Counters, busy times and areas
// are summed; Elapsed is the max; CPUs and Disks add up. The percentile
// sample rings are merged by commit instant — each ring is unrolled
// oldest-first and merge-interleaved, then clipped to the most recent
// SampleWindow entries — so no sample is counted twice and the merged
// window has no per-shard ordering bias. (This is NOT what Aggregate does:
// Aggregate averages derived Results across independent seeded runs, while
// MergeRuns sums raw counters of concurrent shards of one run.)
//
// The merged SampleWindow is the largest shard window, or 0 (unbounded)
// when any shard keeps every sample.
func MergeRuns(runs ...*Run) Run {
	var m Run
	unbounded := false
	all := make([]sample, 0)
	for _, r := range runs {
		m.Committed += r.Committed
		m.Missed += r.Missed
		m.Dropped += r.Dropped
		m.Admitted += r.Admitted
		m.Rejected += r.Rejected
		m.RetriedIO += r.RetriedIO
		m.FaultAborts += r.FaultAborts
		m.TardinessSum += r.TardinessSum
		m.LatenessSum += r.LatenessSum
		m.ResponseSum += r.ResponseSum
		m.Restarts += r.Restarts
		m.NoncontributingAborts += r.NoncontributingAborts
		m.WastedService += r.WastedService
		m.RollbackTime += r.RollbackTime
		m.LockWaits += r.LockWaits
		m.Deadlocks += r.Deadlocks
		m.CPUBusy += r.CPUBusy
		m.DiskBusy += r.DiskBusy
		m.CPUs += r.CPUs
		m.Disks += r.Disks
		m.PListArea += r.PListArea
		m.LiveArea += r.LiveArea
		if r.Elapsed > m.Elapsed {
			m.Elapsed = r.Elapsed
		}
		if r.SampleWindow == 0 {
			unbounded = true
		} else if r.SampleWindow > m.SampleWindow {
			m.SampleWindow = r.SampleWindow
		}
		if r.UseHistogram {
			// Histogram runs merge by bucket sums: exact, order-free, no
			// window clipping — every shard's whole distribution counts.
			m.UseHistogram = true
			if r.hist != nil {
				if m.hist == nil {
					m.hist = &Histogram{}
				}
				m.hist.Merge(r.hist)
			}
		}
		all = append(all, r.orderedSamples()...)
		for k, v := range r.classes {
			if m.classes == nil {
				m.classes = make(map[int]*classCounts)
			}
			mc := m.classes[k]
			if mc == nil {
				mc = &classCounts{}
				m.classes[k] = mc
			}
			mc.committed += v.committed
			mc.missed += v.missed
			mc.tardinessSum += v.tardinessSum
		}
	}
	if unbounded {
		m.SampleWindow = 0
	}
	// Chronological interleave; the stable sort keeps each shard's internal
	// order (and argument order across shards) for equal instants, so the
	// merge is deterministic.
	sort.SliceStable(all, func(i, j int) bool { return all[i].at < all[j].at })
	if m.SampleWindow > 0 && len(all) > m.SampleWindow {
		all = all[len(all)-m.SampleWindow:]
	}
	m.latenessSamples = make([]float64, len(all))
	m.sampleTimes = make([]time.Duration, len(all))
	for i, s := range all {
		m.latenessSamples[i] = s.tardy
		m.sampleTimes[i] = s.at
	}
	m.sampleIdx = 0
	return m
}

// percentile returns the p-th percentile (0..100) of sorted samples by
// linear interpolation between closest ranks (the R-7/NumPy definition).
// The previous truncating index biased every percentile toward the sample
// below the true rank; interpolating removes the systematic underestimate.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if frac == 0 || lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Result converts the raw counters into the derived per-run metrics.
func (r *Run) Result() Result {
	res := Result{
		Committed:             r.Committed,
		Dropped:               r.Dropped,
		Admitted:              r.Admitted,
		Rejected:              r.Rejected,
		RetriedIO:             r.RetriedIO,
		FaultAborts:           r.FaultAborts,
		Restarts:              r.Restarts,
		LockWaits:             r.LockWaits,
		Deadlocks:             r.Deadlocks,
		NoncontributingAborts: r.NoncontributingAborts,
		Elapsed:               r.Elapsed,
	}
	if r.Committed+r.Dropped+r.Rejected > 0 {
		// A rejected transaction never ran, so it missed its deadline.
		res.MissPercent = 100 * float64(r.Missed+r.Dropped+r.Rejected) / float64(r.Committed+r.Dropped+r.Rejected)
	}
	if r.Committed > 0 {
		res.MeanLatenessMs = float64(r.TardinessSum) / float64(r.Committed) / float64(time.Millisecond)
		res.MeanSignedLatenessMs = float64(r.LatenessSum) / float64(r.Committed) / float64(time.Millisecond)
		res.RestartsPerTxn = float64(r.Restarts) / float64(r.Committed)
		res.WastedServiceMs = float64(r.WastedService) / float64(r.Committed) / float64(time.Millisecond)
		res.MeanResponseMs = float64(r.ResponseSum) / float64(r.Committed) / float64(time.Millisecond)
		switch {
		case r.UseHistogram && r.hist != nil && r.hist.Count() > 0:
			res.P50LatenessMs = r.hist.Quantile(0.50)
			res.P90LatenessMs = r.hist.Quantile(0.90)
			res.P99LatenessMs = r.hist.Quantile(0.99)
			res.MaxLatenessMs = r.hist.Max()
		case len(r.latenessSamples) > 0:
			sorted := append([]float64(nil), r.latenessSamples...)
			sort.Float64s(sorted)
			res.P50LatenessMs = percentile(sorted, 50)
			res.P90LatenessMs = percentile(sorted, 90)
			res.P99LatenessMs = percentile(sorted, 99)
			res.MaxLatenessMs = sorted[len(sorted)-1]
		}
	}
	if r.Elapsed > 0 {
		cpus := r.CPUs
		if cpus == 0 {
			cpus = 1
		}
		res.CPUUtilization = float64(r.CPUBusy) / (float64(r.Elapsed) * float64(cpus))
		disks := r.Disks
		if disks == 0 {
			disks = 1
		}
		res.DiskUtilization = float64(r.DiskBusy) / (float64(r.Elapsed) * float64(disks))
		res.AvgPListSize = r.PListArea / float64(r.Elapsed)
		res.AvgLiveTxns = r.LiveArea / float64(r.Elapsed)
	}
	classes := make([]int, 0, len(r.classes))
	for c := range r.classes {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		cc := r.classes[c]
		cr := ClassResult{Class: c, Committed: cc.committed}
		if cc.committed > 0 {
			cr.MissPercent = 100 * float64(cc.missed) / float64(cc.committed)
			cr.MeanLatenessMs = float64(cc.tardinessSum) / float64(cc.committed) / float64(time.Millisecond)
		}
		res.Classes = append(res.Classes, cr)
	}
	return res
}

// Result holds the derived metrics of one run. The JSON tags define the
// stable summary codec used by experiment checkpoints: every field is a
// float64, an int or a time.Duration (int64 nanoseconds), all of which
// encoding/json round-trips exactly, so a decoded summary is bit-identical
// to the one computed in-process.
type Result struct {
	Committed             int           `json:"committed"`
	Dropped               int           `json:"dropped"`
	Admitted              int           `json:"admitted,omitempty"`
	Rejected              int           `json:"rejected,omitempty"`
	RetriedIO             int           `json:"retried_io,omitempty"`
	FaultAborts           int           `json:"fault_aborts,omitempty"`
	MissPercent           float64       `json:"miss_percent"`
	MeanLatenessMs        float64       `json:"mean_lateness_ms"` // mean tardiness, ms
	MeanSignedLatenessMs  float64       `json:"mean_signed_lateness_ms"`
	P50LatenessMs         float64       `json:"p50_lateness_ms"`
	P90LatenessMs         float64       `json:"p90_lateness_ms"`
	P99LatenessMs         float64       `json:"p99_lateness_ms"`
	MaxLatenessMs         float64       `json:"max_lateness_ms"`
	MeanResponseMs        float64       `json:"mean_response_ms"`
	RestartsPerTxn        float64       `json:"restarts_per_txn"`
	WastedServiceMs       float64       `json:"wasted_service_ms"`
	LockWaits             int           `json:"lock_waits"`
	Deadlocks             int           `json:"deadlocks"`
	NoncontributingAborts int           `json:"noncontributing_aborts"`
	CPUUtilization        float64       `json:"cpu_utilization"`
	DiskUtilization       float64       `json:"disk_utilization"`
	AvgPListSize          float64       `json:"avg_plist_size"`
	AvgLiveTxns           float64       `json:"avg_live_txns"`
	Restarts              int           `json:"restarts"`
	Elapsed               time.Duration `json:"elapsed_ns"`
	// Classes holds per-class results, ascending by class (empty for
	// single-class workloads that only ever observed class 0... class 0
	// is still reported so callers can treat it uniformly).
	Classes []ClassResult `json:"classes,omitempty"`
}

// ClassResult is the per-compute-class breakdown of a run.
type ClassResult struct {
	Class          int     `json:"class"`
	Committed      int     `json:"committed"`
	MissPercent    float64 `json:"miss_percent"`
	MeanLatenessMs float64 `json:"mean_lateness_ms"`
}

// String summarises a result on one line.
func (r Result) String() string {
	return fmt.Sprintf("miss=%.2f%% lateness=%.2fms restarts/txn=%.3f cpu=%.0f%% disk=%.0f%%",
		r.MissPercent, r.MeanLatenessMs, r.RestartsPerTxn, 100*r.CPUUtilization, 100*r.DiskUtilization)
}

// Aggregate accumulates Results across seeds: each Add is one independent
// run and Summary reports across-run means. It must NOT be used to combine
// the shards of a single sharded run — shard counters are partial counts of
// one system, not independent samples, and averaging their percentile
// fields would double-weight quiet shards. Combine shards with MergeRuns
// (which sums raw counters and merges the sample rings by commit instant)
// and Add the merged run's Result here.
type Aggregate struct {
	Committed       stats.Accumulator
	Dropped         stats.Accumulator
	Admitted        stats.Accumulator
	Rejected        stats.Accumulator
	RetriedIO       stats.Accumulator
	FaultAborts     stats.Accumulator
	Restarts        stats.Accumulator
	MissPercent     stats.Accumulator
	MeanLatenessMs  stats.Accumulator
	MeanResponseMs  stats.Accumulator
	ElapsedMs       stats.Accumulator
	P90LatenessMs   stats.Accumulator
	P99LatenessMs   stats.Accumulator
	SignedLateness  stats.Accumulator
	RestartsPerTxn  stats.Accumulator
	CPUUtilization  stats.Accumulator
	DiskUtilization stats.Accumulator
	AvgPListSize    stats.Accumulator
	LockWaits       stats.Accumulator
	Noncontrib      stats.Accumulator
	Deadlocks       stats.Accumulator
	// ClassMiss and ClassLateness aggregate the per-class breakdown
	// (populated lazily; empty for single-class workloads' class 0 too —
	// every observed class gets an entry).
	ClassMiss     map[int]*stats.Accumulator
	ClassLateness map[int]*stats.Accumulator
}

// Add folds one run's result into the aggregate.
func (a *Aggregate) Add(r Result) {
	a.Committed.Add(float64(r.Committed))
	a.Dropped.Add(float64(r.Dropped))
	a.Admitted.Add(float64(r.Admitted))
	a.Rejected.Add(float64(r.Rejected))
	a.RetriedIO.Add(float64(r.RetriedIO))
	a.FaultAborts.Add(float64(r.FaultAborts))
	a.Restarts.Add(float64(r.Restarts))
	a.MissPercent.Add(r.MissPercent)
	a.MeanLatenessMs.Add(r.MeanLatenessMs)
	a.MeanResponseMs.Add(r.MeanResponseMs)
	a.ElapsedMs.Add(float64(r.Elapsed) / float64(time.Millisecond))
	a.P90LatenessMs.Add(r.P90LatenessMs)
	a.P99LatenessMs.Add(r.P99LatenessMs)
	a.SignedLateness.Add(r.MeanSignedLatenessMs)
	a.RestartsPerTxn.Add(r.RestartsPerTxn)
	a.CPUUtilization.Add(r.CPUUtilization)
	a.DiskUtilization.Add(r.DiskUtilization)
	a.AvgPListSize.Add(r.AvgPListSize)
	a.LockWaits.Add(float64(r.LockWaits))
	a.Noncontrib.Add(float64(r.NoncontributingAborts))
	a.Deadlocks.Add(float64(r.Deadlocks))
	for _, c := range r.Classes {
		if a.ClassMiss == nil {
			a.ClassMiss = make(map[int]*stats.Accumulator)
			a.ClassLateness = make(map[int]*stats.Accumulator)
		}
		if a.ClassMiss[c.Class] == nil {
			a.ClassMiss[c.Class] = &stats.Accumulator{}
			a.ClassLateness[c.Class] = &stats.Accumulator{}
		}
		a.ClassMiss[c.Class].Add(c.MissPercent)
		a.ClassLateness[c.Class].Add(c.MeanLatenessMs)
	}
}

// N returns the number of runs aggregated.
func (a *Aggregate) N() int { return a.MissPercent.N() }

// Summary returns the across-run means as a Result. Count-valued fields
// (Committed, Dropped, Restarts) are the rounded across-run means, so a
// summary of identical runs preserves their counts exactly.
func (a *Aggregate) Summary() Result {
	return Result{
		Committed:             int(a.Committed.Mean() + 0.5),
		Dropped:               int(a.Dropped.Mean() + 0.5),
		Admitted:              int(a.Admitted.Mean() + 0.5),
		Rejected:              int(a.Rejected.Mean() + 0.5),
		RetriedIO:             int(a.RetriedIO.Mean() + 0.5),
		FaultAborts:           int(a.FaultAborts.Mean() + 0.5),
		Restarts:              int(a.Restarts.Mean() + 0.5),
		MissPercent:           a.MissPercent.Mean(),
		MeanLatenessMs:        a.MeanLatenessMs.Mean(),
		MeanResponseMs:        a.MeanResponseMs.Mean(),
		Elapsed:               time.Duration(a.ElapsedMs.Mean() * float64(time.Millisecond)),
		P90LatenessMs:         a.P90LatenessMs.Mean(),
		P99LatenessMs:         a.P99LatenessMs.Mean(),
		MeanSignedLatenessMs:  a.SignedLateness.Mean(),
		RestartsPerTxn:        a.RestartsPerTxn.Mean(),
		CPUUtilization:        a.CPUUtilization.Mean(),
		DiskUtilization:       a.DiskUtilization.Mean(),
		AvgPListSize:          a.AvgPListSize.Mean(),
		LockWaits:             int(a.LockWaits.Mean() + 0.5),
		NoncontributingAborts: int(a.Noncontrib.Mean() + 0.5),
		Deadlocks:             int(a.Deadlocks.Mean() + 0.5),
	}
}

// Improvement returns the paper's improvement metrics of a candidate over a
// baseline: percentage reductions in miss percent and mean lateness
// ((EDF − CCA)/EDF × 100 in the paper's notation).
type ImprovementResult struct {
	MissPercent    float64
	MeanLateness   float64
	RestartsPerTxn float64
}

// ImprovementOver computes the candidate's improvement over the baseline.
func ImprovementOver(baseline, candidate Result) ImprovementResult {
	return ImprovementResult{
		MissPercent:    stats.Improvement(baseline.MissPercent, candidate.MissPercent),
		MeanLateness:   stats.Improvement(baseline.MeanLatenessMs, candidate.MeanLatenessMs),
		RestartsPerTxn: stats.Improvement(baseline.RestartsPerTxn, candidate.RestartsPerTxn),
	}
}
