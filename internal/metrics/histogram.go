// Histogram is the constant-memory replacement for the percentile sample
// ring: a fixed-bucket log-scale latency histogram. The sample ring keeps
// the last N observations and re-sorts them on every percentile query,
// which under a multi-million-request soak means the percentiles describe
// an arbitrary recent window and the query cost grows with the window. The
// histogram instead buckets every observation ever made into a fixed
// log-spaced grid: memory is constant (a few KiB) no matter how long the
// service runs, a percentile query is one cumulative scan over the grid,
// and merging shards is a bucket-wise sum instead of re-slicing samples.
//
// Percentiles are exact-to-bucket: the reported value is the upper bound
// of the bucket containing the requested rank, so the relative error is
// bounded by the bucket width — 2^(1/histSub) − 1 ≈ 9% with 8 sub-buckets
// per octave — and never depends on how many observations were made.
package metrics

import "math"

const (
	// histSub is the number of log-spaced sub-buckets per factor-of-two
	// octave; 8 bounds the relative quantile error at 2^(1/8)−1 ≈ 9%.
	histSub = 8
	// histMinMs is the smallest distinguishable value (1µs in ms); every
	// observation at or below it (including the exact zeros that dominate
	// tardiness distributions) lands in the dedicated zero bucket.
	histMinMs = 1e-3
	// histOctaves spans histMinMs × 2^40 ≈ 12.7 days in ms — far beyond
	// any latency this system can produce; larger values clip into the
	// overflow bucket.
	histOctaves = 40
	// histBuckets = zero bucket + the log grid + overflow.
	histBuckets = 2 + histSub*histOctaves
)

// invLogStep converts log2(v/histMinMs) to a bucket offset in one multiply.
var invLogStep = float64(histSub)

// Histogram is a fixed-bucket log-scale histogram of millisecond values.
// The zero value is ready to use. It is not safe for concurrent use; wrap
// with a mutex (the server does) or confine to one goroutine (the engine
// does).
type Histogram struct {
	counts [histBuckets]uint64
	n      uint64
	sum    float64
	max    float64
}

// histBucketOf maps a millisecond value to its bucket index.
func histBucketOf(ms float64) int {
	if !(ms > histMinMs) { // catches zeros, negatives and NaN
		return 0
	}
	i := 1 + int(math.Log2(ms/histMinMs)*invLogStep)
	if i >= histBuckets-1 {
		return histBuckets - 1
	}
	return i
}

// histUpperOf returns the upper bound of a bucket (0 for the zero bucket).
func histUpperOf(i int) float64 {
	if i <= 0 {
		return 0
	}
	return histMinMs * math.Pow(2, float64(i)/histSub)
}

// Observe records one value (milliseconds).
func (h *Histogram) Observe(ms float64) {
	h.counts[histBucketOf(ms)]++
	h.n++
	h.sum += ms
	if ms > h.max {
		h.max = ms
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Max returns the largest observed value exactly (not bucketed).
func (h *Histogram) Max() float64 { return h.max }

// Mean returns the exact mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns the q-th quantile (0..1) as the upper bound of the
// bucket holding that rank; the exact maximum is reported for q ≥ the last
// observation's rank so p100 is never inflated by bucketing.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the requested quantile among n ordered observations
	// (nearest-rank definition, 1-based).
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i]
		if cum >= rank {
			if cum == h.n && i == histBucketOf(h.max) {
				// The rank falls in the bucket of the true maximum and no
				// later bucket is occupied: report the exact max rather
				// than the bucket bound.
				return h.max
			}
			return histUpperOf(i)
		}
	}
	return h.max
}

// Merge adds other's buckets into h (bucket-wise sum; max of maxes).
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	c := *h
	return &c
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }
