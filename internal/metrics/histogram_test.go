package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestHistogramQuantileBounded checks the exact-to-bucket contract: every
// reported quantile is an upper bound of the true quantile and at most one
// bucket width (2^(1/histSub)) above it.
func TestHistogramQuantileBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	var vals []float64
	for i := 0; i < 200_000; i++ {
		// Log-uniform over ~6 decades plus a slab of exact zeros, the
		// shape of a tardiness distribution.
		var v float64
		if rng.Intn(4) == 0 {
			v = 0
		} else {
			v = math.Pow(10, rng.Float64()*6-2) // 0.01ms .. 10s
		}
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Float64s(vals)
	width := math.Pow(2, 1.0/histSub)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		got := h.Quantile(q)
		rank := int(math.Ceil(q*float64(len(vals)))) - 1
		if rank < 0 {
			rank = 0
		}
		truth := vals[rank]
		if truth == 0 {
			if got != 0 {
				t.Fatalf("q=%v: got %v for a zero true quantile", q, got)
			}
			continue
		}
		if got < truth || got > truth*width {
			t.Fatalf("q=%v: got %v, true %v (want within one bucket width %v above)", q, got, truth, width)
		}
	}
	if h.Max() != vals[len(vals)-1] {
		t.Fatalf("Max() = %v, want exact %v", h.Max(), vals[len(vals)-1])
	}
	if h.Count() != uint64(len(vals)) {
		t.Fatalf("Count() = %d, want %d", h.Count(), len(vals))
	}
}

// TestHistogramConstantMemory proves the soak property: multi-million
// observations grow no state (the struct is a fixed array).
func TestHistogramConstantMemory(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 1000; i++ {
			h.Observe(float64(i % 977))
		}
	})
	if allocs != 0 {
		t.Fatalf("Observe allocated %v times per run, want 0", allocs)
	}
}

// TestHistogramMergeEqualsUnion proves the MergeRuns path: summing two
// histograms' buckets yields exactly the histogram of the union stream.
func TestHistogramMergeEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b, union Histogram
	for i := 0; i < 50_000; i++ {
		v := rng.ExpFloat64() * 12
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		union.Observe(v)
	}
	m := a.Clone()
	m.Merge(&b)
	if m.Count() != union.Count() || m.Max() != union.Max() {
		t.Fatalf("merge: count/max %d/%v, want %d/%v", m.Count(), m.Max(), union.Count(), union.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		if got, want := m.Quantile(q), union.Quantile(q); got != want {
			t.Fatalf("merge q=%v: %v, union %v", q, got, want)
		}
	}
	if m.counts != union.counts {
		t.Fatal("merged bucket counts differ from the union stream's")
	}
}

// TestRunHistogramMode checks the Run integration: UseHistogram routes
// observations into the histogram, Result reads percentiles from it, the
// ring stays empty, Clone deep-copies, and MergeRuns sums buckets.
func TestRunHistogramMode(t *testing.T) {
	mk := func() *Run { return &Run{UseHistogram: true, SampleWindow: 8} }
	r1, r2 := mk(), mk()
	for i := 1; i <= 1000; i++ {
		late := time.Duration(i) * time.Millisecond
		r1.Observe(0, 0, time.Duration(i)*time.Second+late, time.Duration(i)*time.Second)
	}
	for i := 0; i < 500; i++ {
		// On-time commits: tardiness 0.
		r2.Observe(0, 0, time.Duration(i)*time.Second, time.Duration(i)*time.Second+time.Millisecond)
	}
	if len(r1.latenessSamples) != 0 {
		t.Fatalf("histogram mode still appended %d ring samples", len(r1.latenessSamples))
	}
	res := r1.Result()
	if res.P99LatenessMs < 990*0.9 || res.P99LatenessMs > 990*1.2 {
		t.Fatalf("p99 = %.1f, want ≈990", res.P99LatenessMs)
	}
	if res.MaxLatenessMs != 1000 {
		t.Fatalf("max = %v, want exactly 1000", res.MaxLatenessMs)
	}

	// Clone is deep: mutating the clone leaves the original alone.
	c := r1.Clone()
	c.Observe(0, 0, 2*time.Second, time.Second)
	if c.hist.Count() != r1.hist.Count()+1 {
		t.Fatalf("clone not deep: counts %d vs %d", c.hist.Count(), r1.hist.Count())
	}

	m := MergeRuns(r1, r2)
	if !m.UseHistogram || m.hist == nil {
		t.Fatal("merged run lost the histogram")
	}
	if m.hist.Count() != r1.hist.Count()+r2.hist.Count() {
		t.Fatalf("merged count %d, want %d", m.hist.Count(), r1.hist.Count()+r2.hist.Count())
	}
	mres := m.Result()
	// 500 zeros + 1000 spread 1..1000ms: the median sits in the 250ms
	// region (rank 750 of 1500 → value 250ms ± one bucket).
	if mres.P50LatenessMs < 200 || mres.P50LatenessMs > 300 {
		t.Fatalf("merged p50 = %.1f, want ≈250", mres.P50LatenessMs)
	}
}

// TestRunRingCompat: with UseHistogram off nothing changes — the ring
// fills exactly as before (the compat path for the figure suite).
func TestRunRingCompat(t *testing.T) {
	r := &Run{SampleWindow: 4}
	for i := 1; i <= 6; i++ {
		r.Observe(0, 0, time.Duration(i)*time.Second, 0)
	}
	if len(r.latenessSamples) != 4 {
		t.Fatalf("ring kept %d samples, want 4", len(r.latenessSamples))
	}
	if r.hist != nil {
		t.Fatal("ring mode allocated a histogram")
	}
}
