package history

import (
	"testing"
	"time"
)

const ms = time.Millisecond

func TestEmptyHistorySerializable(t *testing.T) {
	h := New()
	if ok, _ := h.Serializable(); !ok {
		t.Fatal("empty history not serializable")
	}
	if order, err := h.SerialOrder(); err != nil || len(order) != 0 {
		t.Fatalf("order = %v, %v", order, err)
	}
}

func TestSimpleSerialHistory(t *testing.T) {
	h := New()
	h.Add(1, 0, Write, 1*ms)
	h.Commit(1, 2*ms)
	h.Add(2, 0, Write, 3*ms)
	h.Commit(2, 4*ms)
	if ok, _ := h.Serializable(); !ok {
		t.Fatal("serial history reported non-serializable")
	}
	order, err := h.SerialOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

func TestCycleDetected(t *testing.T) {
	h := New()
	// w1(x) w2(x) w2(y) w1(y): 1->2 on x, 2->1 on y — classic cycle.
	h.Add(1, 0, Write, 1*ms)
	h.Add(2, 0, Write, 2*ms)
	h.Add(2, 1, Write, 3*ms)
	h.Add(1, 1, Write, 4*ms)
	h.Commit(1, 5*ms)
	h.Commit(2, 5*ms)
	ok, cycle := h.Serializable()
	if ok {
		t.Fatal("cyclic history reported serializable")
	}
	if len(cycle) < 2 {
		t.Fatalf("cycle = %v", cycle)
	}
	if _, err := h.SerialOrder(); err == nil {
		t.Fatal("SerialOrder succeeded on cyclic history")
	}
}

func TestReadsDoNotConflictWithReads(t *testing.T) {
	h := New()
	// r1(x) r2(x) r2(y) r1(y): reads only, no edges, serializable.
	h.Add(1, 0, Read, 1*ms)
	h.Add(2, 0, Read, 2*ms)
	h.Add(2, 1, Read, 3*ms)
	h.Add(1, 1, Read, 4*ms)
	h.Commit(1, 5*ms)
	h.Commit(2, 5*ms)
	if ok, _ := h.Serializable(); !ok {
		t.Fatal("read-only interleaving reported non-serializable")
	}
}

func TestReadWriteConflict(t *testing.T) {
	h := New()
	// r1(x) w2(x) r2(y)... then w1(y) -> cycle via rw edges.
	h.Add(1, 0, Read, 1*ms)
	h.Add(2, 0, Write, 2*ms)
	h.Add(2, 1, Read, 3*ms)
	h.Add(1, 1, Write, 4*ms)
	h.Commit(1, 5*ms)
	h.Commit(2, 5*ms)
	if ok, _ := h.Serializable(); ok {
		t.Fatal("rw/wr cycle not detected")
	}
}

func TestAbortDiscardsOps(t *testing.T) {
	h := New()
	h.Add(1, 0, Write, 1*ms)
	h.Abort(1)
	if h.AbortedOps() != 1 {
		t.Fatalf("AbortedOps = %d", h.AbortedOps())
	}
	// The restarted incarnation runs after transaction 2 — without the
	// abort discard this would be a w1 w2 w1 cycle on item 0.
	h.Add(2, 0, Write, 2*ms)
	h.Commit(2, 3*ms)
	h.Add(1, 0, Write, 4*ms)
	h.Commit(1, 5*ms)
	ok, _ := h.Serializable()
	if !ok {
		t.Fatal("aborted incarnation's ops leaked into the history")
	}
	order, err := h.SerialOrder()
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 2 || order[1] != 1 {
		t.Fatalf("order = %v, want [2 1]", order)
	}
}

func TestDoubleCommitPanics(t *testing.T) {
	h := New()
	h.Commit(1, 1*ms)
	defer func() {
		if recover() == nil {
			t.Fatal("double commit did not panic")
		}
	}()
	h.Commit(1, 2*ms)
}

func TestOpsOrderedBySequence(t *testing.T) {
	h := New()
	h.Add(2, 5, Write, 10*ms)
	h.Add(1, 6, Write, 1*ms) // later op, earlier timestamp
	h.Commit(1, 20*ms)
	h.Commit(2, 20*ms)
	ops := h.Ops()
	if len(ops) != 2 || ops[0].Txn != 2 || ops[1].Txn != 1 {
		t.Fatalf("ops = %v (must be in recording order, not timestamp order)", ops)
	}
}

func TestCommittedCount(t *testing.T) {
	h := New()
	h.Commit(1, 0)
	h.Commit(2, 0)
	if h.Committed() != 2 {
		t.Fatalf("Committed = %d", h.Committed())
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "r" || Write.String() != "w" {
		t.Fatal("Kind.String wrong")
	}
}

func TestSerialOrderRespectsEdges(t *testing.T) {
	h := New()
	// 3 -> 1 -> 2 chain on distinct items.
	h.Add(3, 0, Write, 1*ms)
	h.Add(1, 0, Write, 2*ms)
	h.Add(1, 1, Write, 3*ms)
	h.Add(2, 1, Write, 4*ms)
	h.Commit(3, 4*ms)
	h.Commit(1, 5*ms)
	h.Commit(2, 6*ms)
	order, err := h.SerialOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[int]int{}
	for i, v := range order {
		pos[v] = i
	}
	if !(pos[3] < pos[1] && pos[1] < pos[2]) {
		t.Fatalf("order %v violates conflict edges", order)
	}
}
