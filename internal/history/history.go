// Package history records the data operations of a simulation run and
// checks them for conflict serializability.
//
// Strict two-phase locking with wound-based restarts must produce
// serializable histories; the engine's tests use this package to verify
// that property end-to-end instead of assuming it. Operations of aborted
// incarnations are discarded (their effects were undone by the store's
// before-image rollback), so the checked history contains exactly the
// final, committed incarnation of every transaction.
package history

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/txn"
)

// Kind distinguishes reads from writes.
type Kind int

const (
	// Read is a shared access.
	Read Kind = iota
	// Write is an exclusive access.
	Write
)

// String returns "r" or "w".
func (k Kind) String() string {
	if k == Write {
		return "w"
	}
	return "r"
}

// Op is one data access by a transaction incarnation.
type Op struct {
	Txn  int
	Item txn.Item
	Kind Kind
	At   time.Duration
	seq  uint64
}

// History accumulates operations and commit/abort outcomes.
type History struct {
	pending    map[int][]Op // current incarnation's ops per transaction
	committed  []Op         // ops of committed incarnations, in global order
	commits    map[int]time.Duration
	abortedOps uint64
	seq        uint64
}

// New returns an empty history.
func New() *History {
	return &History{
		pending: make(map[int][]Op),
		commits: make(map[int]time.Duration),
	}
}

// Add records one access of the current incarnation of t.
func (h *History) Add(t int, item txn.Item, kind Kind, at time.Duration) {
	h.seq++
	h.pending[t] = append(h.pending[t], Op{Txn: t, Item: item, Kind: kind, At: at, seq: h.seq})
}

// Abort discards the current incarnation's operations (their effects were
// rolled back).
func (h *History) Abort(t int) {
	h.abortedOps += uint64(len(h.pending[t]))
	delete(h.pending, t)
}

// Commit finalises the current incarnation of t.
func (h *History) Commit(t int, at time.Duration) {
	if _, dup := h.commits[t]; dup {
		panic(fmt.Sprintf("history: transaction %d committed twice", t))
	}
	h.committed = append(h.committed, h.pending[t]...)
	delete(h.pending, t)
	h.commits[t] = at
}

// Committed returns the number of committed transactions.
func (h *History) Committed() int { return len(h.commits) }

// Ops returns the committed operations in global execution order.
func (h *History) Ops() []Op {
	out := append([]Op(nil), h.committed...)
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// AbortedOps returns how many operations were discarded by aborts.
func (h *History) AbortedOps() uint64 { return h.abortedOps }

// conflictEdges builds the conflict graph: an edge A -> B whenever an
// operation of A precedes a conflicting operation of B on the same item
// (conflicting = at least one is a write, different transactions).
func (h *History) conflictEdges() map[int]map[int]bool {
	ops := h.Ops()
	byItem := make(map[txn.Item][]Op)
	for _, op := range ops {
		byItem[op.Item] = append(byItem[op.Item], op)
	}
	edges := make(map[int]map[int]bool)
	addEdge := func(a, b int) {
		if edges[a] == nil {
			edges[a] = make(map[int]bool)
		}
		edges[a][b] = true
	}
	for _, seq := range byItem {
		for i := 0; i < len(seq); i++ {
			for j := i + 1; j < len(seq); j++ {
				a, b := seq[i], seq[j]
				if a.Txn != b.Txn && (a.Kind == Write || b.Kind == Write) {
					addEdge(a.Txn, b.Txn)
				}
			}
		}
	}
	return edges
}

// Serializable reports whether the committed history is conflict
// serializable; if not, it returns one cycle of the conflict graph.
func (h *History) Serializable() (bool, []int) {
	edges := h.conflictEdges()
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[int]int)
	var stack []int
	var cycle []int
	var dfs func(v int) bool
	dfs = func(v int) bool {
		color[v] = grey
		stack = append(stack, v)
		for w := range edges[v] {
			switch color[w] {
			case grey:
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == w {
						break
					}
				}
				return true
			case white:
				if dfs(w) {
					return true
				}
			}
		}
		color[v] = black
		stack = stack[:len(stack)-1]
		return false
	}
	nodes := make([]int, 0, len(edges))
	for v := range edges {
		nodes = append(nodes, v)
	}
	sort.Ints(nodes)
	for _, v := range nodes {
		if color[v] == white && dfs(v) {
			return false, cycle
		}
	}
	return true, nil
}

// SerialOrder returns a topological order of the conflict graph — an
// equivalent serial execution — or an error if the history is not
// serializable. Transactions without conflicts are placed by commit time.
func (h *History) SerialOrder() ([]int, error) {
	if ok, cycle := h.Serializable(); !ok {
		return nil, fmt.Errorf("history: not serializable; cycle %v", cycle)
	}
	edges := h.conflictEdges()
	indeg := make(map[int]int)
	for t := range h.commits {
		indeg[t] += 0
	}
	for _, outs := range edges {
		for w := range outs {
			indeg[w]++
		}
	}
	// Kahn's algorithm with commit-time tie-breaking for determinism.
	ready := make([]int, 0, len(indeg))
	for v, d := range indeg {
		if d == 0 {
			ready = append(ready, v)
		}
	}
	less := func(a, b int) bool {
		if h.commits[a] != h.commits[b] {
			return h.commits[a] < h.commits[b]
		}
		return a < b
	}
	sort.Slice(ready, func(i, j int) bool { return less(ready[i], ready[j]) })
	var order []int
	for len(ready) > 0 {
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		var woken []int
		for w := range edges[v] {
			indeg[w]--
			if indeg[w] == 0 {
				woken = append(woken, w)
			}
		}
		sort.Ints(woken)
		ready = append(ready, woken...)
		sort.Slice(ready, func(i, j int) bool { return less(ready[i], ready[j]) })
	}
	if len(order) != len(indeg) {
		return nil, fmt.Errorf("history: topological sort incomplete (%d/%d)", len(order), len(indeg))
	}
	return order, nil
}
