package analytic

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestUtilization(t *testing.T) {
	if got := Utilization(5, 0.08); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("rho = %v, want 0.4", got)
	}
}

func TestMM1Response(t *testing.T) {
	// mu = 10/s, lambda = 5/s -> W = 1/5 = 0.2s.
	if got := MM1Response(5, 0.1); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("W = %v, want 0.2", got)
	}
}

func TestMM1UnstablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("saturated M/M/1 did not panic")
		}
	}()
	MM1Response(10, 0.1)
}

func TestMD1Response(t *testing.T) {
	// rho = 0.4, S = 80ms: Wq = 0.4*0.08/(2*0.6) = 26.67ms; W = 106.67ms.
	got := MD1Response(5, 0.08)
	want := 0.08 + 5*0.08*0.08/(2*0.6)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("W = %v, want %v", got, want)
	}
}

func TestMG1ReducesToMM1(t *testing.T) {
	// Exponential service: E[S^2] = 2 E[S]^2; M/G/1 == M/M/1.
	s := 0.05
	lambda := 8.0
	mg1 := MG1Response(lambda, s, 2*s*s)
	mm1 := MM1Response(lambda, s)
	if math.Abs(mg1-mm1) > 1e-12 {
		t.Fatalf("M/G/1 %v != M/M/1 %v for exponential service", mg1, mm1)
	}
}

func TestMG1UnstablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("saturated M/G/1 did not panic")
		}
	}()
	MG1Wait(20, 0.05, 0.005)
}

func TestLittleL(t *testing.T) {
	if got := LittleL(5, 0.2); got != 1.0 {
		t.Fatalf("L = %v, want 1", got)
	}
}

func TestServiceMomentsDeterministic(t *testing.T) {
	// std = 0: exactly 20 updates of 4ms.
	es, es2 := ServiceMoments(20, 0, 1000, 0.004)
	if math.Abs(es-0.08) > 1e-9 {
		t.Fatalf("E[S] = %v, want 0.08", es)
	}
	if math.Abs(es2-0.08*0.08) > 1e-9 {
		t.Fatalf("E[S^2] = %v, want 0.0064", es2)
	}
}

func TestServiceMomentsClampedNormal(t *testing.T) {
	// Compare against the workload generator's empirical moments.
	p := workload.BaseMainMemory()
	p.DBSize = 1000
	p.TxnTypes = 4000
	p.Count = 1
	w := workload.MustGenerate(p, 1)
	var sum, sum2 float64
	for _, ty := range w.Types {
		s := float64(len(ty.Items)) * 0.004
		sum += s
		sum2 += s * s
	}
	n := float64(len(w.Types))
	es, es2 := ServiceMoments(20, 10, 1000, 0.004)
	if math.Abs(es-sum/n) > 0.01*es {
		t.Fatalf("E[S] analytic %v vs empirical %v", es, sum/n)
	}
	if math.Abs(es2-sum2/n) > 0.03*es2 {
		t.Fatalf("E[S^2] analytic %v vs empirical %v", es2, sum2/n)
	}
}

func TestMeanUpdatesUnclampedCenter(t *testing.T) {
	// With generous bounds the clamped mean stays near the normal mean.
	if got := MeanUpdates(20, 5, 1000); math.Abs(got-20) > 0.1 {
		t.Fatalf("E[N] = %v, want ~20", got)
	}
	// Tight clamping at the paper's DBSize=30 pulls the mean below 20.
	if got := MeanUpdates(20, 10, 30); got >= 20 || got < 15 {
		t.Fatalf("clamped E[N] = %v, want in [15, 20)", got)
	}
}

// TestSimulatorMatchesMD1 cross-validates the engine against queueing
// theory: with contention removed (huge database, thousands of types) and
// deterministic service under non-preemptive FCFS, the CPU is an M/D/1
// queue and the measured mean response time must match
// Pollaczek–Khinchine.
func TestSimulatorMatchesMD1(t *testing.T) {
	cfg := core.MainMemoryConfig(core.FCFS, 1)
	cfg.Workload.DBSize = 50000
	cfg.Workload.TxnTypes = 5000
	cfg.Workload.UpdatesStd = 0 // deterministic 20 updates -> S = 80ms
	cfg.Workload.ArrivalRate = 5
	cfg.Workload.Count = 2000

	want := MD1Response(5, 0.08) * 1000 // ms

	var got float64
	const seeds = 4
	for seed := int64(1); seed <= seeds; seed++ {
		cfg.Seed = seed
		e, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Restarts != 0 || res.LockWaits > 3 {
			t.Fatalf("seed %d: contention not negligible (restarts=%d waits=%d)", seed, res.Restarts, res.LockWaits)
		}
		got += res.MeanResponseMs
	}
	got /= seeds
	if math.Abs(got-want) > 0.08*want {
		t.Fatalf("mean response %v ms vs M/D/1 prediction %v ms (>8%% off)", got, want)
	}
}

// TestSimulatorMatchesMG1 as above with the clamped-normal update count.
func TestSimulatorMatchesMG1(t *testing.T) {
	cfg := core.MainMemoryConfig(core.FCFS, 1)
	cfg.Workload.DBSize = 50000
	cfg.Workload.TxnTypes = 5000
	cfg.Workload.ArrivalRate = 5
	cfg.Workload.Count = 2000

	es, es2 := ServiceMoments(20, 10, cfg.Workload.DBSize, 0.004)
	want := MG1Response(5, es, es2) * 1000

	var got float64
	const seeds = 4
	for seed := int64(1); seed <= seeds; seed++ {
		cfg.Seed = seed
		e, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		got += res.MeanResponseMs
	}
	got /= seeds
	if math.Abs(got-want) > 0.10*want {
		t.Fatalf("mean response %v ms vs M/G/1 prediction %v ms (>10%% off)", got, want)
	}
}

// TestLittleLawOnSimulator: L = λ·W on the simulator's own measurements.
// The time-averaged number of live transactions (AvgLiveTxns, integrated
// event by event) must equal the observed throughput times the mean
// response time — an exact identity for a finite drained run, so it
// doubles as a check of the engine's integration bookkeeping.
func TestLittleLawOnSimulator(t *testing.T) {
	for _, p := range []core.PolicyKind{core.FCFS, core.CCA, core.EDFHP} {
		cfg := core.MainMemoryConfig(p, 2)
		cfg.Workload.ArrivalRate = 8
		cfg.Workload.Count = 500
		e, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		lambda := float64(res.Committed) / res.Elapsed.Seconds()
		wSec := res.MeanResponseMs / 1000
		want := LittleL(lambda, wSec)
		if math.Abs(res.AvgLiveTxns-want) > 0.01*want {
			t.Fatalf("%s: L = %v, λW = %v (Little's law violated)", p, res.AvgLiveTxns, want)
		}
	}
}

func BenchmarkServiceMoments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ServiceMoments(20, 10, 1000, 0.004)
	}
}
