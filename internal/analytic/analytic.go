// Package analytic provides closed-form queueing approximations for the
// simulated system's no-contention limits. The paper sanity-checks its
// simulator with capacity arithmetic (§4.1, §4.2, §5); this package extends
// that practice: when data contention is removed (huge database) and
// scheduling is FCFS, the CPU is an M/G/1 queue and the simulator's
// measured response times must match Pollaczek–Khinchine — which the test
// suite verifies. The formulas are also used to pick sane experiment
// operating points.
package analytic

import (
	"fmt"
	"math"
)

// Utilization returns ρ = λ·E[S] for arrival rate λ (per second) and mean
// service time E[S] (seconds).
func Utilization(lambda, meanService float64) float64 {
	return lambda * meanService
}

// MM1Response returns the mean response time (wait + service, seconds) of
// an M/M/1 queue: W = 1/(μ − λ) with μ = 1/E[S]. It panics at or above
// saturation.
func MM1Response(lambda, meanService float64) float64 {
	mu := 1 / meanService
	if lambda >= mu {
		panic(fmt.Sprintf("analytic: M/M/1 unstable: λ=%v ≥ μ=%v", lambda, mu))
	}
	return 1 / (mu - lambda)
}

// MG1Wait returns the mean waiting time (excluding service, seconds) of an
// M/G/1 queue via Pollaczek–Khinchine: Wq = λ·E[S²] / (2(1−ρ)).
func MG1Wait(lambda, meanService, meanServiceSq float64) float64 {
	rho := Utilization(lambda, meanService)
	if rho >= 1 {
		panic(fmt.Sprintf("analytic: M/G/1 unstable: ρ=%v", rho))
	}
	return lambda * meanServiceSq / (2 * (1 - rho))
}

// MG1Response returns the mean response time of an M/G/1 queue.
func MG1Response(lambda, meanService, meanServiceSq float64) float64 {
	return MG1Wait(lambda, meanService, meanServiceSq) + meanService
}

// MD1Response returns the mean response time of an M/D/1 queue
// (deterministic service): Wq = ρ·E[S] / (2(1−ρ)).
func MD1Response(lambda, service float64) float64 {
	return MG1Response(lambda, service, service*service)
}

// LittleL returns the mean number in system by Little's law, L = λ·W.
func LittleL(lambda, response float64) float64 { return lambda * response }

// ServiceMoments returns E[S] and E[S²] (seconds, seconds²) for the
// simulated transaction service time S = N·c, where N is the per-type
// update count — a normal(mean, std) rounded to the nearest integer and
// clamped to [1, dbSize] — and c is the per-update compute time in
// seconds. The moments are computed exactly over the discrete distribution.
func ServiceMoments(mean, std float64, dbSize int, computeSec float64) (es, es2 float64) {
	var p1, pn, pn2 float64
	for n := 1; n <= dbSize; n++ {
		p := clampedNormalPMF(mean, std, 1, dbSize, n)
		p1 += p
		pn += p * float64(n)
		pn2 += p * float64(n) * float64(n)
	}
	// p1 sums to 1 up to floating error; normalise defensively.
	pn /= p1
	pn2 /= p1
	return pn * computeSec, pn2 * computeSec * computeSec
}

// clampedNormalPMF returns P(N = n) where N = clamp(round(X), lo, hi) and
// X ~ Normal(mean, std).
func clampedNormalPMF(mean, std float64, lo, hi, n int) float64 {
	cdf := func(x float64) float64 {
		if std == 0 {
			if x >= mean {
				return 1
			}
			return 0
		}
		return 0.5 * (1 + math.Erf((x-mean)/(std*math.Sqrt2)))
	}
	switch {
	case n == lo:
		// Everything rounding to <= lo clamps up to lo.
		return cdf(float64(lo) + 0.5)
	case n == hi:
		return 1 - cdf(float64(hi)-0.5)
	default:
		return cdf(float64(n)+0.5) - cdf(float64(n)-0.5)
	}
}

// MeanUpdates returns E[N] for the clamped update-count distribution.
func MeanUpdates(mean, std float64, dbSize int) float64 {
	es, _ := ServiceMoments(mean, std, dbSize, 1)
	return es
}
