// Package plot renders experiment series as ASCII line charts — the
// terminal equivalent of the paper's figures. It exists so that the figure
// reproductions can be *looked at* (who wins, where the knee is, whether a
// curve is flat) without leaving the terminal or adding dependencies.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// markers assigns one glyph per series, cycling if there are many.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Series is one named curve.
type Series struct {
	Name string
	Ys   []float64
}

// Chart is a renderable X/Y chart of one or more series sharing the Xs.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Xs     []float64
	Series []Series
	// Width and Height are the plot-area dimensions in characters;
	// zero values choose 64x20.
	Width, Height int
}

// Render draws the chart. Points are plotted at their nearest cell; the
// Y axis is annotated with min/mid/max values and a legend follows.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 20
	}
	if len(c.Xs) == 0 || len(c.Series) == 0 {
		return c.Title + "\n(no data)\n"
	}

	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, y := range s.Ys {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if math.IsInf(ymin, 1) {
		return c.Title + "\n(no finite data)\n"
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	xmin, xmax := c.Xs[0], c.Xs[len(c.Xs)-1]
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	col := func(x float64) int {
		v := int(math.Round((x - xmin) / (xmax - xmin) * float64(w-1)))
		return clamp(v, 0, w-1)
	}
	row := func(y float64) int {
		v := int(math.Round((ymax - y) / (ymax - ymin) * float64(h-1)))
		return clamp(v, 0, h-1)
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		prevSet := false
		var pr, pc int
		for i, y := range s.Ys {
			if i >= len(c.Xs) || math.IsNaN(y) || math.IsInf(y, 0) {
				prevSet = false
				continue
			}
			r, cc := row(y), col(c.Xs[i])
			if prevSet {
				drawLine(grid, pr, pc, r, cc, '.')
			}
			grid[r][cc] = m
			pr, pc, prevSet = r, cc, true
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	axis := func(v float64) string { return fmt.Sprintf("%8.4g", v) }
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", 8)
		switch r {
		case 0:
			label = axis(ymax)
		case h / 2:
			label = axis((ymax + ymin) / 2)
		case h - 1:
			label = axis(ymin)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", 8), w-len(axis(xmax)), axis(xmin), axis(xmax))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", 8), c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", 8), markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// drawLine joins two cells with a sparse dotted segment (midpoint
// recursion), leaving endpoint markers intact.
func drawLine(grid [][]byte, r0, c0, r1, c1 int, glyph byte) {
	dr, dc := r1-r0, c1-c0
	if abs(dr) <= 1 && abs(dc) <= 1 {
		return
	}
	mr, mc := r0+dr/2, c0+dc/2
	if grid[mr][mc] == ' ' {
		grid[mr][mc] = glyph
	}
	drawLine(grid, r0, c0, mr, mc, glyph)
	drawLine(grid, mr, mc, r1, c1, glyph)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
