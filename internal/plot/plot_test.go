package plot

import (
	"math"
	"strings"
	"testing"
)

func twoSeries() *Chart {
	return &Chart{
		Title:  "Miss percent",
		XLabel: "rate",
		YLabel: "miss%",
		Xs:     []float64{1, 2, 3, 4, 5},
		Series: []Series{
			{Name: "EDF-HP", Ys: []float64{1, 2, 4, 8, 16}},
			{Name: "CCA", Ys: []float64{1, 1.5, 3, 6, 12}},
		},
	}
}

func TestRenderContainsStructure(t *testing.T) {
	out := twoSeries().Render()
	for _, want := range []string{"Miss percent", "EDF-HP", "CCA", "x: rate", "y: miss%", "*", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered chart missing %q:\n%s", want, out)
		}
	}
	// Axis annotations for min and max.
	if !strings.Contains(out, "16") || !strings.Contains(out, "1") {
		t.Errorf("axis labels missing:\n%s", out)
	}
}

func TestRenderDimensions(t *testing.T) {
	c := twoSeries()
	c.Width, c.Height = 40, 10
	out := c.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 10 rows + axis + x labels + xy label + 2 legend entries
	if len(lines) != 1+10+1+1+1+2 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	for _, l := range lines[1:11] {
		if !strings.Contains(l, "|") {
			t.Fatalf("plot row missing axis bar: %q", l)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	c := &Chart{Title: "t"}
	if !strings.Contains(c.Render(), "no data") {
		t.Fatal("empty chart should say so")
	}
	c2 := &Chart{Title: "t", Xs: []float64{1}, Series: []Series{{Name: "s", Ys: []float64{math.NaN()}}}}
	if !strings.Contains(c2.Render(), "no finite data") {
		t.Fatal("NaN-only chart should say so")
	}
}

func TestRenderFlatSeries(t *testing.T) {
	c := &Chart{
		Xs:     []float64{1, 2, 3},
		Series: []Series{{Name: "flat", Ys: []float64{5, 5, 5}}},
	}
	out := c.Render() // must not divide by zero
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series not plotted:\n%s", out)
	}
}

func TestRenderSingleX(t *testing.T) {
	c := &Chart{
		Xs:     []float64{3},
		Series: []Series{{Name: "pt", Ys: []float64{1}}},
	}
	if !strings.Contains(c.Render(), "*") {
		t.Fatal("single point not plotted")
	}
}

func TestMarkersTopLeftBottom(t *testing.T) {
	// Rising line: first point bottom-left, last point top-right.
	c := &Chart{
		Xs:     []float64{0, 1},
		Series: []Series{{Name: "s", Ys: []float64{0, 10}}},
		Width:  20, Height: 5,
	}
	out := c.Render()
	lines := strings.Split(out, "\n")
	top, bottom := lines[0], lines[4]
	if !strings.HasSuffix(strings.TrimRight(top, " "), "*") {
		t.Errorf("max not at top-right: %q", top)
	}
	if !strings.Contains(bottom, "|*") {
		t.Errorf("min not at bottom-left: %q", bottom)
	}
}

func TestManySeriesCycleMarkers(t *testing.T) {
	var ss []Series
	for i := 0; i < 10; i++ {
		ss = append(ss, Series{Name: "s", Ys: []float64{float64(i)}})
	}
	c := &Chart{Xs: []float64{1}, Series: ss}
	out := c.Render()
	if !strings.Contains(out, "*") || !strings.Contains(out, "#") {
		t.Fatalf("marker cycling broken:\n%s", out)
	}
}

func TestClampAndAbs(t *testing.T) {
	if clamp(5, 0, 3) != 3 || clamp(-1, 0, 3) != 0 || clamp(2, 0, 3) != 2 {
		t.Fatal("clamp wrong")
	}
	if abs(-4) != 4 || abs(4) != 4 {
		t.Fatal("abs wrong")
	}
}
