package shard

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// startService boots an n-shard wall-clock service at high speed and
// returns it with a cleanup that drains and stops it.
func startService(t *testing.T, n int) (*Service, context.CancelFunc) {
	t.Helper()
	cfg := core.MainMemoryConfig(core.CCA, 1)
	cfg.Workload.DBSize = 1000
	s, err := NewService(cfg, ServiceOptions{
		Shards: n,
		Epoch:  10 * time.Millisecond,
		Core:   core.ServiceOptions{Speed: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { _ = s.Run(ctx); close(done) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("sharded service did not stop")
		}
	})
	return s, cancel
}

func TestServiceSingleShardRouting(t *testing.T) {
	s, _ := startService(t, 4)
	// Items 2, 6, 10 all live on shard 2 under the 4-way partition.
	o, err := s.Submit(context.Background(), core.ServiceRequest{
		Items:    itemList(2, 6, 10),
		Compute:  100 * time.Microsecond,
		Deadline: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.State != core.StateCommitted {
		t.Fatalf("outcome %+v, want committed", o)
	}
	// Only shard 2's engine saw it.
	st, ok := s.Stats()
	if !ok || st.Result.Committed != 1 {
		t.Fatalf("merged stats = %+v ok=%v, want 1 commit", st.Result, ok)
	}
	run, _, _, ok := s.svcs[2].RunSnapshot()
	if !ok || run.Committed != 1 {
		t.Fatalf("shard 2 Committed = %d, want 1 (direct routing)", run.Committed)
	}
}

func TestServiceCrossShardEpochBatch(t *testing.T) {
	s, _ := startService(t, 4)
	// Items on shards 1 and 3: epoch-batched, one part each.
	o, err := s.Submit(context.Background(), core.ServiceRequest{
		Items:    itemList(1, 3),
		Compute:  100 * time.Microsecond,
		Deadline: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.State != core.StateCommitted {
		t.Fatalf("cross outcome %+v, want committed", o)
	}
	st, ok := s.Stats()
	if !ok || st.Result.Committed != 2 {
		t.Fatalf("merged Committed = %d, want 2 engine-level parts", st.Result.Committed)
	}
	for _, shard := range []int{1, 3} {
		run, _, _, ok := s.svcs[shard].RunSnapshot()
		if !ok || run.Committed != 1 {
			t.Fatalf("shard %d Committed = %d, want 1", shard, run.Committed)
		}
	}
}

func TestServiceDrainRefusesAndFlushesQueued(t *testing.T) {
	s, _ := startService(t, 2)
	dctx, dcancel := context.WithTimeout(context.Background(), time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain of idle service: %v", err)
	}
	if !s.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	_, err := s.Submit(context.Background(), core.ServiceRequest{
		Items:    itemList(0),
		Compute:  time.Millisecond,
		Deadline: time.Second,
	})
	if !errors.Is(err, core.ErrDraining) {
		t.Fatalf("Submit after drain: %v, want ErrDraining", err)
	}
}
