// Package shard partitions the item space across N engine shards, each an
// unchanged single-threaded deterministic kernel, and coordinates them
// through deterministic cross-shard epochs.
//
// The partition is modular: item i lives on shard i % N (txn.ShardOf —
// the same rule the engine uses to stripe items across disks). A
// transaction whose pre-analysis footprint lies on one shard is submitted
// directly to that shard and executes exactly as it would unsharded. A
// transaction whose footprint spans shards is split into per-shard
// sub-transactions and committed through epoch batching: at every fixed
// simulated-time boundary all shards rendezvous (sim.Lockstep), and the
// pending cross-shard work is injected in canonical (arrival, ID) order.
//
// Determinism survives parallelism because the shards share nothing
// between boundaries — each is a sequential discrete-event kernel with its
// own calendar, lock manager, store and disks — and everything exchanged
// at a boundary is ordered canonically, never by goroutine arrival. The
// outcome is therefore a pure function of (config, workload, shard count,
// epoch interval), independent of GOMAXPROCS; with N=1 the single shard
// holds the whole workload and the run is bit-identical to the unsharded
// engine (the equivalence suite asserts both properties).
package shard

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// DefaultEpoch is the cross-shard epoch interval when Options.Epoch is 0.
// It trades cross-shard latency (a cross transaction waits for the next
// boundary before starting anywhere) against barrier overhead.
const DefaultEpoch = 10 * time.Millisecond

// Options configure a sharded run.
type Options struct {
	// Shards is the number of engine shards (1..64).
	Shards int
	// Epoch is the simulated-time interval between cross-shard boundaries
	// (0 = DefaultEpoch).
	Epoch time.Duration
}

// CrossSummary reports the fate of the cross-shard transactions at the
// logical level (a logical transaction commits iff every sub-transaction
// committed).
type CrossSummary struct {
	Total     int
	Committed int
	Missed    int
	// Partial counts logical transactions where some sub-transactions
	// committed and others did not. The runner has no cross-shard atomic
	// commit (no 2PC): a firm-deadline drop or admission rejection on one
	// shard does not undo the siblings. Partial > 0 quantifies how often
	// that mattered.
	Partial int
}

// Result is the outcome of a sharded run.
type Result struct {
	// Metrics are the merged engine-level counters (metrics.MergeRuns over
	// the shards). Each cross-shard sub-transaction counts as one engine
	// transaction here; use Cross for logical-level accounting.
	Metrics metrics.Result
	// Outcomes holds one logical outcome per workload transaction, indexed
	// by its workload ID.
	Outcomes []core.ServiceOutcome
	// Cross summarises the cross-shard transactions.
	Cross CrossSummary
	// Epochs is the number of boundaries the run took.
	Epochs int
}

// crossEntry is one logical cross-shard transaction: its original spec,
// its precomputed per-shard split, and (after injection) the per-part
// outcomes, in part order.
type crossEntry struct {
	spec     workload.Spec
	parts    []workload.ShardPart
	outcomes []core.ServiceOutcome
}

// Runner executes one pre-generated workload across N shards in virtual
// time. It is single-use: build with New, call Run once.
type Runner struct {
	cfg     core.Config
	sched   sim.EpochSchedule
	engines []*core.Engine
	// global maps each shard's static (pre-partitioned) transaction index
	// back to its workload ID.
	global [][]int
	cross  []*crossEntry
	n      int // len(wl.Txns)
	// predict is true when the shards run a conflict-prediction policy
	// (CCA-P/CCA-T) and there is more than one shard: at every epoch
	// boundary the per-shard statistics tables are merged in ascending
	// shard order and the same frozen merged view is installed on every
	// shard, so each shard prices conflicts against the global picture.
	// With one shard the merge is skipped entirely — the run stays
	// bit-identical to the unsharded engine.
	predict bool
}

// New partitions the workload and builds one engine per shard. The
// configuration is shared by all shards: the same policy, CPU count and
// disk array per shard (a shard is a full engine instance), the same
// database size (items keep their global numbering; each shard only ever
// touches its own residue class).
func New(cfg core.Config, wl *workload.Workload, opt Options) (*Runner, error) {
	if opt.Shards < 1 || opt.Shards > 64 {
		return nil, fmt.Errorf("shard: %d shards (want 1..64)", opt.Shards)
	}
	epoch := opt.Epoch
	if epoch == 0 {
		epoch = DefaultEpoch
	}
	if epoch < 0 {
		return nil, fmt.Errorf("shard: negative epoch interval %v", epoch)
	}
	if wl == nil {
		return nil, fmt.Errorf("shard: nil workload")
	}
	r := &Runner{
		cfg:    cfg,
		sched:  sim.EpochSchedule{Interval: sim.Time(epoch)},
		global: make([][]int, opt.Shards),
		n:      len(wl.Txns),
	}
	perShard := make([][]workload.Spec, opt.Shards)
	for i := range wl.Txns {
		s := &wl.Txns[i]
		if home, cross := s.HomeShard(opt.Shards); !cross {
			sc := *s
			sc.ID = len(perShard[home])
			perShard[home] = append(perShard[home], sc)
			r.global[home] = append(r.global[home], s.ID)
		} else {
			// wl.Txns is arrival-ordered with dense IDs, so appending here
			// yields the canonical (arrival, ID) injection order for free.
			r.cross = append(r.cross, &crossEntry{spec: *s, parts: s.SplitShards(opt.Shards)})
		}
	}
	for i := 0; i < opt.Shards; i++ {
		swl := &workload.Workload{Params: cfg.Workload, Types: wl.Types, Txns: perShard[i]}
		e, err := core.NewShardEngine(cfg, swl)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		r.engines = append(r.engines, e)
	}
	r.predict = opt.Shards > 1 && r.engines[0].PredictTable() != nil
	return r, nil
}

// Engines exposes the per-shard kernels (tests, diagnostics).
func (r *Runner) Engines() []*core.Engine { return r.engines }

// Run executes the sharded workload to completion and returns the merged
// result. Within an epoch the shards run concurrently (one goroutine each,
// via the lockstep barrier); everything the caller observes afterwards is
// nevertheless deterministic — see the package comment.
func (r *Runner) Run() (Result, error) {
	for _, e := range r.engines {
		e.StartRun()
	}
	ls := sim.NewLockstep(len(r.engines))
	next := 0 // next cross entry to inject
	epochs := 0
	for k := 1; ; k++ {
		b := r.sched.Boundary(k)
		if err := ls.Round(func(i int) error { return r.engines[i].StepTo(b) }); err != nil {
			return Result{}, err
		}
		epochs = k
		// All shards are quiescent at exactly b: merge the prediction
		// statistics and inject the cross-shard work that has arrived, in
		// canonical order.
		if r.predict {
			r.mergePredict()
		}
		for next < len(r.cross) && r.cross[next].spec.Arrival <= time.Duration(b) {
			r.inject(r.cross[next], time.Duration(b))
			next++
		}
		if next < len(r.cross) {
			continue // future arrivals pending; keep stepping
		}
		done, pending := true, false
		for _, e := range r.engines {
			if !e.Done() {
				done = false
			}
			if e.PendingEvents() > 0 {
				pending = true
			}
		}
		if done {
			break
		}
		if !pending {
			return Result{}, fmt.Errorf("shard: stalled at epoch %d (t=%v): live transactions with empty calendars", k, time.Duration(b))
		}
	}
	res := Result{Outcomes: make([]core.ServiceOutcome, r.n), Epochs: epochs}
	for i, e := range r.engines {
		if _, err := e.FinishRun(); err != nil {
			return Result{}, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	runs := make([]*metrics.Run, len(r.engines))
	for i, e := range r.engines {
		rn := e.RunSnapshot()
		runs[i] = &rn
	}
	merged := metrics.MergeRuns(runs...)
	res.Metrics = merged.Result()
	for i, e := range r.engines {
		all := e.TxnOutcomes()
		for li, gid := range r.global[i] {
			res.Outcomes[gid] = all[li]
		}
	}
	for _, c := range r.cross {
		o := c.logical()
		res.Outcomes[c.spec.ID] = o
		res.Cross.Total++
		committed := 0
		for _, po := range c.outcomes {
			if po.State == core.StateCommitted {
				committed++
			}
		}
		switch {
		case o.State == core.StateCommitted:
			res.Cross.Committed++
			if o.Missed {
				res.Cross.Missed++
			}
		default:
			res.Cross.Missed++
			if committed > 0 {
				res.Cross.Partial++
			}
		}
	}
	return res, nil
}

// mergePredict folds the per-shard conflict-statistics tables into one
// merged table (ascending shard order — the canonical order, so the merge
// is a pure function of the shard states, not goroutine timing) and
// installs the same frozen view on every shard. Shards keep recording into
// their own tables; only the read side is globalised. Runs on the runner
// goroutine between lockstep rounds, so no shard is evaluating.
func (r *Runner) mergePredict() {
	merged := r.engines[0].PredictTable().Clone()
	for _, e := range r.engines[1:] {
		merged.Merge(e.PredictTable())
	}
	for _, e := range r.engines {
		e.SetPredictView(merged)
	}
}

// inject submits one logical cross-shard transaction's parts, in ascending
// shard order, at the epoch boundary `now`. The completion callbacks run
// inside the shards' event processing (on their round goroutines); each
// writes only its own outcome slot, and the lockstep barrier orders every
// write before the runner reads them, so no lock is needed.
func (r *Runner) inject(c *crossEntry, now time.Duration) {
	c.outcomes = make([]core.ServiceOutcome, len(c.parts))
	for pi := range c.parts {
		p := &c.parts[pi]
		spec := p.Spec // fresh copy per injection: the engine keeps the pointer
		spec.Arrival = now
		if r.cfg.FirmDeadlines && spec.Deadline < now {
			// The deadline passed while the transaction waited for the
			// boundary; a past deadline event is unschedulable. Clamping to
			// now preserves the semantics: it is dropped immediately.
			spec.Deadline = now
		}
		pi := pi
		r.engines[p.Shard].SubmitSpec(&spec, func(t *core.Txn) {
			c.outcomes[pi] = t.Outcome()
		})
	}
}

// logical folds one cross-shard transaction's part outcomes into its
// logical outcome: committed iff every part committed (finish = latest
// part, missed vs the original deadline); rejected dominates dropped
// otherwise; restarts sum.
func (c *crossEntry) logical() core.ServiceOutcome {
	o := core.ServiceOutcome{
		State:    core.StateCommitted,
		Arrival:  c.spec.Arrival,
		Deadline: c.spec.Deadline,
	}
	for _, po := range c.outcomes {
		o.Restarts += po.Restarts
		switch po.State {
		case core.StateRejected:
			o.State = core.StateRejected
		case core.StateDropped:
			if o.State != core.StateRejected {
				o.State = core.StateDropped
			}
		case core.StateCommitted:
			if po.Finish > o.Finish {
				o.Finish = po.Finish
			}
		}
	}
	if o.State == core.StateCommitted {
		o.Response = o.Finish - o.Arrival
		o.Missed = o.Finish > o.Deadline
	} else {
		o.Finish = 0
		o.Response = 0
		o.Missed = true
	}
	return o
}
