package shard

// Submit-throughput scaling baseline: BENCH_shard.json records committed
// submissions per wall second for the wall-clock sharded service on a
// single-shard-heavy workload, across shards × GOMAXPROCS. The win at N
// shards is algorithmic, not (only) parallel: every scheduling point costs
// O(live) in the engine's evaluation and pool sweeps, and N shards each
// carry live/N, so the sweep work per commit shrinks even on one core.
//
// Refresh with:
//
//	BENCH_BASELINE=1 go test ./internal/shard -run TestWriteShardBenchBaseline
//
// The test fails (and refuses to write a baseline) if 4 shards do not reach
// at least 2× the 1-shard throughput at the best GOMAXPROCS — the issue's
// acceptance floor.

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/txn"
)

const (
	benchClients = 128
	benchDBSize  = 4096
	// benchAlign fixes the partition residue stride so the workload is
	// byte-identical no matter how many shards serve it: every request
	// touches items ≡ r (mod 4), which is single-shard for N ∈ {1, 2, 4}.
	benchAlign = 4
	benchSpeed = 1e5
	benchWarm  = 300 * time.Millisecond
	benchRun   = 1500 * time.Millisecond

	// benchParked is the standing backlog: long transactions that stay live
	// (ready, never finishing, far deadlines so short work always outranks
	// them) for the whole window. They are what sharding divides: every
	// scheduling point sweeps O(live) in evaluation and pool building, so
	// one engine pays O(benchParked) per event where each of 4 shards pays
	// O(benchParked/4). Parked items occupy a reserved region so they never
	// conflict with measured traffic.
	benchParked       = 1024
	benchParkCompute  = 1_000_000 * time.Second   // sim time; never completes in-window
	benchParkDeadline = 100_000_000 * time.Second // far enough to never fire in-window
)

// measureSubmitThroughput boots a sharded wall-clock service, drives it with
// closed-loop clients issuing 4-item shard-aligned writes, and returns
// committed submissions per wall second over the measurement window.
func measureSubmitThroughput(t *testing.T, shards, procs int) float64 {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	cfg := core.MainMemoryConfig(core.CCA, 1)
	cfg.Workload.DBSize = benchDBSize
	cfg.Admission = core.AdmissionConfig{Mode: core.AdmitAll}
	svc, err := NewService(cfg, ServiceOptions{
		Shards: shards,
		Core:   core.ServiceOptions{Speed: benchSpeed},
	})
	if err != nil {
		t.Fatalf("NewService(%d shards): %v", shards, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- svc.Run(ctx) }()

	// Park the standing backlog: one-item transactions in the reserved
	// region [0, benchParked), residue-balanced across the partition. Their
	// Submits block until the final cancel wounds them.
	var parkedWG sync.WaitGroup
	for j := 0; j < benchParked; j++ {
		parkedWG.Add(1)
		go func(j int) {
			defer parkedWG.Done()
			svc.Submit(ctx, core.ServiceRequest{ //nolint:errcheck // wounded at teardown
				Items:    []txn.Item{txn.Item(j%benchAlign + benchAlign*(j/benchAlign))},
				Compute:  benchParkCompute,
				Deadline: benchParkDeadline,
			})
		}(j)
	}
	parkDeadline := time.Now().Add(15 * time.Second)
	for {
		st, ok := svc.Stats()
		if ok && st.Live >= benchParked {
			break
		}
		if time.Now().After(parkDeadline) {
			t.Fatalf("parked backlog never became live (%d shards)", shards)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var (
		committed atomic.Int64
		counting  atomic.Bool
		stop      = make(chan struct{})
		wg        sync.WaitGroup
	)
	slots := benchDBSize / benchAlign
	reserved := benchParked / benchAlign
	for c := 0; c < benchClients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)*7919 + 1))
			res := id % benchAlign
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Four consecutive same-residue items, ascending, so
				// conflicting requests acquire locks in the same order;
				// k stays clear of the parked region.
				k := reserved + rng.Intn(slots-reserved-4)
				out, err := svc.Submit(ctx, core.ServiceRequest{
					Items: []txn.Item{
						txn.Item(res + benchAlign*k),
						txn.Item(res + benchAlign*(k+1)),
						txn.Item(res + benchAlign*(k+2)),
						txn.Item(res + benchAlign*(k+3)),
					},
					Compute:  50 * time.Microsecond,
					Deadline: time.Minute,
				})
				if err != nil {
					return
				}
				if out.State == core.StateCommitted && counting.Load() {
					committed.Add(1)
				}
			}
		}(c)
	}

	time.Sleep(benchWarm)
	counting.Store(true)
	start := time.Now()
	time.Sleep(benchRun)
	counting.Store(false)
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	cancel()
	select {
	case <-runDone:
	case <-time.After(10 * time.Second):
		t.Fatalf("service Run did not exit after cancel (%d shards)", shards)
	}
	parkedWG.Wait()
	if err := svc.Err(); err != nil && err != context.Canceled {
		t.Fatalf("service error (%d shards): %v", shards, err)
	}
	return float64(committed.Load()) / elapsed.Seconds()
}

type shardBenchEntry struct {
	Shards        int     `json:"shards"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	SubmitsPerSec float64 `json:"submits_per_sec"`
}

type shardBenchBaseline struct {
	Note     string            `json:"note"`
	Refresh  string            `json:"refresh"`
	Clients  int               `json:"clients"`
	Parked   int               `json:"parked_backlog"`
	DBSize   int               `json:"db_size"`
	Speed    float64           `json:"speed"`
	HostCPUs int               `json:"host_cpus"`
	Entries  []shardBenchEntry `json:"entries"`
	Ratio4v1 float64           `json:"ratio_4shard_vs_1shard"`
}

// TestWriteShardBenchBaseline measures the shards × GOMAXPROCS throughput
// matrix and writes BENCH_shard.json at the repo root. Gated behind
// BENCH_BASELINE=1: it takes ~15s of wall time and saturates the machine,
// which is exactly what a unit-test run must not do.
func TestWriteShardBenchBaseline(t *testing.T) {
	if os.Getenv("BENCH_BASELINE") == "" {
		t.Skip("set BENCH_BASELINE=1 to measure and write BENCH_shard.json")
	}

	shardCounts := []int{1, 4}
	procCounts := []int{1, 2, 4}
	best := map[int]float64{}
	var entries []shardBenchEntry
	for _, n := range shardCounts {
		for _, p := range procCounts {
			tput := measureSubmitThroughput(t, n, p)
			entries = append(entries, shardBenchEntry{Shards: n, GOMAXPROCS: p, SubmitsPerSec: tput})
			if tput > best[n] {
				best[n] = tput
			}
			t.Logf("shards=%d GOMAXPROCS=%d: %.0f submits/s", n, p, tput)
		}
	}

	ratio := best[4] / best[1]
	if ratio < 2 {
		t.Errorf("4-shard vs 1-shard Submit throughput ratio = %.2f, want >= 2 (acceptance floor)", ratio)
	}

	base := shardBenchBaseline{
		Note: "wall-clock shard.Service Submit throughput (committed submissions per wall second): " +
			"closed-loop clients issue 4-item single-shard-aligned writes over a standing backlog " +
			"of parked live transactions; the N-shard win is algorithmic — every scheduling point " +
			"sweeps O(live) and each shard carries live/N",
		Refresh:  "BENCH_BASELINE=1 go test ./internal/shard -run TestWriteShardBenchBaseline",
		Clients:  benchClients,
		Parked:   benchParked,
		DBSize:   benchDBSize,
		Speed:    benchSpeed,
		HostCPUs: runtime.NumCPU(),
		Entries:  entries,
		Ratio4v1: ratio,
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		t.Fatalf("marshal baseline: %v", err)
	}
	if err := os.WriteFile("../../BENCH_shard.json", append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write BENCH_shard.json: %v", err)
	}
}
