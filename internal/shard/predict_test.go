package shard

// Sharding contracts for the conflict-prediction policies (CCA-P/CCA-T):
//
//  1. One shard is the unsharded engine, bit for bit, including the live
//     statistics table and tuner trajectory (the N=1 runner never merges).
//  2. Degenerate knobs (RateScale=0) stay bit-identical to stock CCA at
//     1 shard AND at N shards — the epoch-boundary view installation
//     re-clocks evaluation but never perturbs the schedule.
//  3. Nondegenerate N-shard runs are deterministic: results and per-shard
//     w trajectories are pure functions of (config, workload, shards,
//     epoch), independent of GOMAXPROCS and repeatable.

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
)

// predictShardConfig is a contended sharded workload under a prediction
// policy: two CPUs per shard so commits see partially-executed peers and
// the statistics tables actually fill.
func predictShardConfig(pol core.PolicyKind, seed int64) core.Config {
	cfg := core.MainMemoryConfig(pol, seed)
	cfg.Workload.Count = 200
	cfg.Workload.DBSize = 2000
	cfg.Workload.ArrivalRate = 16
	cfg.NumCPUs = 2
	cfg.Predict = core.DefaultPredictConfig()
	return cfg
}

// TestPredictOneShardBitIdentical: CCA-P and CCA-T under the 1-shard
// runner equal the unsharded engine exactly — outcomes, metrics, and the
// policy's own statistics snapshot (w, tuner steps, trajectory).
func TestPredictOneShardBitIdentical(t *testing.T) {
	for _, pol := range []core.PolicyKind{core.CCAP, core.CCAT} {
		cfg := predictShardConfig(pol, 3)
		cfg.CheckInvariants = true

		e, err := core.NewWithWorkload(cfg, generate(t, cfg))
		if err != nil {
			t.Fatal(err)
		}
		refRes, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		refOut := e.TxnOutcomes()
		refSnap, ok := e.PredictSnapshot()
		if !ok {
			t.Fatalf("%v: unsharded engine has no predict snapshot", pol)
		}

		r, err := New(cfg, generate(t, cfg), Options{Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		if r.predict {
			t.Fatalf("%v: 1-shard runner enabled the epoch merge", pol)
		}
		got, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(refOut, got.Outcomes) {
			t.Fatalf("%v: 1-shard outcomes diverge from unsharded", pol)
		}
		_ = refRes
		snap, ok := r.Engines()[0].PredictSnapshot()
		if !ok {
			t.Fatalf("%v: 1-shard engine has no predict snapshot", pol)
		}
		if snap.W != refSnap.W || snap.TunerSteps != refSnap.TunerSteps ||
			!reflect.DeepEqual(snap.WTrajectory, refSnap.WTrajectory) {
			t.Fatalf("%v: 1-shard tuner state diverges: w=%v/%v steps=%d/%d",
				pol, snap.W, refSnap.W, snap.TunerSteps, refSnap.TunerSteps)
		}
	}
}

// TestPredictDegenerateShardEquivalence: with RateScale=0 the prediction
// term vanishes and CCA-P must match stock CCA bit for bit — at one shard
// and at four, where the epoch-boundary merge installs views every 10ms
// of simulated time and must not move a single event.
func TestPredictDegenerateShardEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4} {
		ccaCfg := shardedConfig(7)
		ref := runSharded(t, ccaCfg, generate(t, ccaCfg), Options{Shards: shards})

		ccapCfg := predictShardConfig(core.CCAP, 7)
		ccapCfg.NumCPUs = ccaCfg.NumCPUs // match shardedConfig exactly
		ccapCfg.Predict.RateScale = 0    // degenerate: stats kept, never priced
		r, err := New(ccapCfg, generate(t, ccapCfg), Options{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if shards > 1 && !r.predict {
			t.Fatal("multi-shard CCA-P runner did not enable the epoch merge")
		}
		got, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("%d shards: degenerate CCA-P diverges from stock CCA", shards)
		}
	}
}

// TestPredictMultiShardDeterministic: a nondegenerate 4-shard CCA-T run —
// live cross-shard statistics merges every epoch, per-shard tuners — is
// identical across GOMAXPROCS settings and repeats, down to each shard's
// w trajectory.
func TestPredictMultiShardDeterministic(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	cfg := predictShardConfig(core.CCAT, 5)
	run := func() (Result, [][]float64) {
		r, err := New(cfg, generate(t, cfg), Options{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		trajs := make([][]float64, len(r.Engines()))
		for i, e := range r.Engines() {
			snap, ok := e.PredictSnapshot()
			if !ok {
				t.Fatalf("shard %d: no predict snapshot", i)
			}
			trajs[i] = snap.WTrajectory
		}
		return res, trajs
	}
	var ref Result
	var refTrajs [][]float64
	for i, procs := range []int{1, 2, 4, 2} {
		runtime.GOMAXPROCS(procs)
		res, trajs := run()
		if i == 0 {
			ref, refTrajs = res, trajs
			continue
		}
		if !reflect.DeepEqual(ref, res) {
			t.Fatalf("4-shard CCA-T result diverges at GOMAXPROCS=%d", procs)
		}
		if !reflect.DeepEqual(refTrajs, trajs) {
			t.Fatalf("4-shard CCA-T w trajectories diverge at GOMAXPROCS=%d", procs)
		}
	}
}
