package shard

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// TestServiceSubmitBatchMixed batches single-shard entries for different
// shards together with a cross-shard entry and checks they all commit —
// the single-shard ones via grouped per-shard injection, the cross one
// through the epoch queue.
func TestServiceSubmitBatchMixed(t *testing.T) {
	s, _ := startService(t, 4)
	mk := func(items ...int) (core.Submission, chan core.ServiceOutcome, chan error) {
		oc := make(chan core.ServiceOutcome, 1)
		ec := make(chan error, 1)
		return core.Submission{
			Req: core.ServiceRequest{
				Items:    itemList(items...),
				Compute:  100 * time.Microsecond,
				Deadline: 5 * time.Second,
			},
			Done: func(o core.ServiceOutcome, err error) { oc <- o; ec <- err },
		}, oc, ec
	}
	s0, oc0, _ := mk(4, 8)   // shard 0
	s1, oc1, _ := mk(5, 9)   // shard 1
	s2, oc2, _ := mk(6, 10)  // shard 2
	sx, ocx, ecx := mk(1, 2) // shards 1 and 2: cross
	bad, _, ecBad := mk()    // no items: fails validation in splitRequest

	s.SubmitBatch([]core.Submission{s0, s1, s2, sx, bad})
	for i, oc := range []chan core.ServiceOutcome{oc0, oc1, oc2, ocx} {
		select {
		case o := <-oc:
			if o.State != core.StateCommitted {
				t.Fatalf("entry %d: %+v, want committed", i, o)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("entry %d never finished", i)
		}
	}
	select {
	case err := <-ecBad:
		if err == nil {
			t.Fatal("empty submission did not fail")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("empty submission never answered")
	}
	select {
	case err := <-ecx:
		if err != nil {
			t.Fatalf("cross entry error: %v", err)
		}
	default:
	}

	// Shards 0..2 each saw exactly one direct commit plus the cross parts.
	st, ok := s.Stats()
	if !ok || st.Result.Committed < 4 {
		t.Fatalf("merged stats %+v ok=%v, want >= 4 commits", st.Result, ok)
	}
}

// TestServiceSubmitBatchDraining checks the batched refusal path and that
// a cross-shard handle cancels its fan-out.
func TestServiceSubmitBatchDraining(t *testing.T) {
	s, _ := startService(t, 2)
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	ec := make(chan error, 1)
	s.SubmitBatch([]core.Submission{{
		Req:  core.ServiceRequest{Items: itemList(1), Compute: time.Millisecond, Deadline: time.Second},
		Done: func(_ core.ServiceOutcome, err error) { ec <- err },
	}})
	select {
	case err := <-ec:
		if !errors.Is(err, core.ErrDraining) {
			t.Fatalf("err = %v, want ErrDraining", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("draining batch never answered")
	}
}
