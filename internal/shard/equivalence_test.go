package shard

// The sharded engine's two determinism contracts:
//
//  1. N=1 is the unsharded engine, bit for bit: same per-transaction
//     outcomes, same metrics, across the full 2×2 naive-path grid — the
//     epoch boundaries only partition the event sequence, they never
//     perturb it.
//  2. N>1 is deterministic: the result is a pure function of (config,
//     workload, shards, epoch), independent of GOMAXPROCS and repeatable
//     across runs — the lockstep barrier plus canonical injection order
//     remove every goroutine-scheduling degree of freedom.

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/txn"
	"repro/internal/workload"
)

// generate draws a fresh workload for cfg; each caller gets its own copy
// so no run can perturb another through shared spec storage.
func generate(t *testing.T, cfg core.Config) *workload.Workload {
	t.Helper()
	wl, err := workload.Generate(cfg.Workload, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

// runUnsharded runs the plain engine over the workload.
func runUnsharded(t *testing.T, cfg core.Config, wl *workload.Workload) ([]core.ServiceOutcome, interface{}) {
	t.Helper()
	e, err := core.NewWithWorkload(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return e.TxnOutcomes(), res
}

// runSharded runs the shard runner over the workload.
func runSharded(t *testing.T, cfg core.Config, wl *workload.Workload, opt Options) Result {
	t.Helper()
	r, err := New(cfg, wl, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestOneShardBitIdentical: a 1-shard run equals the unsharded engine bit
// for bit — outcomes and metrics — across the 2×2 naive grid, on both the
// main-memory and the disk base configurations.
func TestOneShardBitIdentical(t *testing.T) {
	base := []struct {
		name string
		cfg  core.Config
	}{
		{"mm", func() core.Config {
			cfg := core.MainMemoryConfig(core.CCA, 3)
			cfg.Workload.Count = 200
			return cfg
		}()},
		{"disk", func() core.Config {
			cfg := core.DiskConfig(core.CCA, 5)
			cfg.Workload.Count = 120
			cfg.NumCPUs = 2
			cfg.NumDisks = 2
			return cfg
		}()},
	}
	for _, b := range base {
		for _, scan := range []bool{false, true} {
			for _, dispatch := range []bool{false, true} {
				cfg := b.cfg
				cfg.NaiveConflictScan = scan
				cfg.NaiveDispatch = dispatch
				cfg.CheckInvariants = true
				refOut, refRes := runUnsharded(t, cfg, generate(t, cfg))
				got := runSharded(t, cfg, generate(t, cfg), Options{Shards: 1})
				if !reflect.DeepEqual(refOut, got.Outcomes) {
					for i := range refOut {
						if refOut[i] != got.Outcomes[i] {
							t.Errorf("%s scan=%v dispatch=%v: T%d diverges: unsharded %+v, 1-shard %+v",
								b.name, scan, dispatch, i, refOut[i], got.Outcomes[i])
							break
						}
					}
					t.Fatalf("%s scan=%v dispatch=%v: outcomes diverge", b.name, scan, dispatch)
				}
				if !reflect.DeepEqual(refRes, got.Metrics) {
					t.Fatalf("%s scan=%v dispatch=%v: metrics diverge:\nunsharded: %+v\n1-shard:   %+v",
						b.name, scan, dispatch, refRes, got.Metrics)
				}
				if got.Cross.Total != 0 {
					t.Fatalf("%s: %d cross-shard transactions under 1 shard", b.name, got.Cross.Total)
				}
			}
		}
	}
}

// shardedConfig is a moderately contended configuration with enough
// transactions that both router paths (direct and epoch-batched) carry
// real traffic under a 4-way partition.
func shardedConfig(seed int64) core.Config {
	cfg := core.MainMemoryConfig(core.CCA, seed)
	cfg.Workload.Count = 200
	cfg.Workload.DBSize = 2000
	cfg.Workload.ArrivalRate = 16
	return cfg
}

// TestMultiShardDeterministicAcrossGOMAXPROCS: the 4-shard result is
// identical under GOMAXPROCS 1, 2 and 4 and across repeated runs — the
// shards' goroutines can interleave any way the runtime likes without the
// outcome changing.
func TestMultiShardDeterministicAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for seed := int64(1); seed <= 2; seed++ {
		cfg := shardedConfig(seed)
		var ref Result
		for i, procs := range []int{1, 2, 4, 2} { // repeat procs=2: replay determinism
			runtime.GOMAXPROCS(procs)
			got := runSharded(t, cfg, generate(t, cfg), Options{Shards: 4})
			if i == 0 {
				ref = got
				if ref.Cross.Total == 0 {
					t.Fatalf("seed %d: no cross-shard transactions; config does not exercise the epoch path", seed)
				}
				continue
			}
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("seed %d: 4-shard run diverges at GOMAXPROCS=%d:\nref: %+v\ngot: %+v",
					seed, procs, ref.Cross, got.Cross)
			}
		}
	}
}

// TestMultiShardEpochIntervalIsSemantic: the epoch interval is part of the
// run's identity — runs with the same interval agree, and the accounting
// stays consistent (every transaction reaches a terminal state) for other
// intervals too.
func TestMultiShardEpochIntervalIsSemantic(t *testing.T) {
	cfg := shardedConfig(9)
	for _, epoch := range []time.Duration{5 * time.Millisecond, 50 * time.Millisecond} {
		a := runSharded(t, cfg, generate(t, cfg), Options{Shards: 4, Epoch: epoch})
		b := runSharded(t, cfg, generate(t, cfg), Options{Shards: 4, Epoch: epoch})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("epoch %v: repeated run diverged", epoch)
		}
		terminal := 0
		for _, o := range a.Outcomes {
			switch o.State {
			case core.StateCommitted, core.StateDropped, core.StateRejected:
				terminal++
			}
		}
		if terminal != len(a.Outcomes) {
			t.Fatalf("epoch %v: %d/%d transactions terminal", epoch, terminal, len(a.Outcomes))
		}
	}
}

// TestCrossShardScenario pins the epoch batching semantics on a crafted
// workload: a cross-shard transaction starts nowhere before the first
// boundary at or after its arrival, its parts land on exactly the shards
// its items map to, and its logical outcome folds the parts.
func TestCrossShardScenario(t *testing.T) {
	cfg := core.MainMemoryConfig(core.CCA, 1)
	cfg.Workload.DBSize = 100
	epoch := 10 * time.Millisecond
	wl := &workload.Workload{
		Params: cfg.Workload,
		Txns: []workload.Spec{
			// Single-shard on shard 1 (items ≡ 1 mod 4): runs immediately.
			{ID: 0, Items: itemList(1, 5), Compute: time.Millisecond,
				Arrival: 0, Deadline: 40 * time.Millisecond},
			// Cross-shard over shards 0 and 2: arrives at 3ms, must wait
			// for the 10ms boundary.
			{ID: 1, Items: itemList(4, 2), Compute: time.Millisecond,
				Arrival: 3 * time.Millisecond, Deadline: 60 * time.Millisecond},
		},
	}
	r, err := New(cfg, wl, Options{Shards: 4, Epoch: epoch})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.cross) != 1 || len(r.global[1]) != 1 {
		t.Fatalf("partition wrong: cross=%d, shard1 static=%d", len(r.cross), len(r.global[1]))
	}
	parts := r.cross[0].parts
	if len(parts) != 2 || parts[0].Shard != 0 || parts[1].Shard != 2 {
		t.Fatalf("cross split = %+v, want parts on shards 0 and 2", parts)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	o0, o1 := res.Outcomes[0], res.Outcomes[1]
	if o0.State != core.StateCommitted || o0.Finish != 2*time.Millisecond {
		t.Fatalf("single-shard outcome %+v, want commit at 2ms (ran immediately)", o0)
	}
	if o1.State != core.StateCommitted {
		t.Fatalf("cross-shard outcome %+v, want committed", o1)
	}
	if o1.Arrival != 3*time.Millisecond {
		t.Fatalf("cross-shard logical arrival %v, want the original 3ms", o1.Arrival)
	}
	// Each part is a 1-item, 1ms transaction injected at the 10ms
	// boundary on an idle shard: finish = 11ms.
	if o1.Finish != epoch+time.Millisecond {
		t.Fatalf("cross-shard finish %v, want %v (epoch boundary + compute)", o1.Finish, epoch+time.Millisecond)
	}
	if res.Cross.Total != 1 || res.Cross.Committed != 1 || res.Cross.Partial != 0 {
		t.Fatalf("cross summary %+v", res.Cross)
	}
	if res.Metrics.Committed != 3 { // 1 static + 2 parts at the engine level
		t.Fatalf("merged Committed = %d, want 3 engine-level transactions", res.Metrics.Committed)
	}
}

func itemList(items ...int) []txn.Item {
	out := make([]txn.Item, len(items))
	for i, it := range items {
		out[i] = txn.Item(it)
	}
	return out
}
