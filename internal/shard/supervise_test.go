package shard

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// startSupervised boots an n-shard service under supervision.
func startSupervised(t *testing.T, n int, sup SuperviseOptions) (*Service, chan error, context.CancelFunc) {
	t.Helper()
	cfg := core.MainMemoryConfig(core.CCA, 1)
	cfg.Workload.DBSize = 1000
	sup.Enabled = true
	s, err := NewService(cfg, ServiceOptions{
		Shards:    n,
		Epoch:     10 * time.Millisecond,
		Core:      core.ServiceOptions{Speed: 200},
		Supervise: sup,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	finished := make(chan struct{})
	go func() {
		err := s.Run(ctx)
		close(finished)
		done <- err
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-finished:
		case <-time.After(10 * time.Second):
			t.Error("supervised service did not stop")
		}
	})
	return s, done, cancel
}

func submitTo(s *Service, item int) (core.ServiceOutcome, error) {
	return s.Submit(context.Background(), core.ServiceRequest{
		Items:    itemList(item),
		Compute:  100 * time.Microsecond,
		Deadline: 2 * time.Second,
	})
}

// TestSupervisedPanicContained: one shard driver panics; its failure is
// recorded, the service reports degraded-but-healthy, and the surviving
// shards keep committing.
func TestSupervisedPanicContained(t *testing.T) {
	s, _, _ := startSupervised(t, 4, SuperviseOptions{})

	if s.Degraded() {
		t.Fatal("degraded before any failure")
	}
	if err := s.InjectShardPanic(2, "chaos"); err != nil {
		t.Fatalf("InjectShardPanic: %v", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for !s.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("panic never surfaced as degraded")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Healthy overall: supervision contained the failure.
	if err := s.Err(); err != nil {
		t.Fatalf("Err() = %v after contained failure, want nil", err)
	}
	st := s.SupervisionStats()
	if !st.Enabled || st.Failures != 1 || st.Dead != 1 || st.LastFailure == "" {
		t.Fatalf("supervision stats %+v, want 1 failure, 1 dead", st)
	}

	// Other shards still serve: items 0, 1, 3 live on shards 0, 1, 3.
	for _, item := range []int{0, 1, 3} {
		o, err := submitTo(s, item)
		if err != nil {
			t.Fatalf("item %d after shard-2 death: %v", item, err)
		}
		if o.State != core.StateCommitted {
			t.Fatalf("item %d outcome %+v, want committed", item, o)
		}
	}
	// The dead shard's traffic fails fast rather than hanging.
	if _, err := submitTo(s, 2); err == nil {
		t.Fatal("submit to dead shard succeeded")
	}
	// Stats still merge across the survivors.
	if _, ok := s.Stats(); !ok {
		t.Fatal("Stats unavailable with one dead shard")
	}
}

// TestSupervisedRestart: with Restart on, a panicked shard is replaced
// by a fresh engine and its item range serves again.
func TestSupervisedRestart(t *testing.T) {
	s, _, _ := startSupervised(t, 2, SuperviseOptions{Restart: true, MaxRestarts: 2})

	if err := s.InjectShardPanic(1, "restart me"); err != nil {
		t.Fatalf("InjectShardPanic: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.SupervisionStats().Restarts < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("shard never restarted: %+v", s.SupervisionStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Degraded stays sticky — the operator should still see the event.
	if !s.Degraded() {
		t.Fatal("restart cleared the degraded flag")
	}
	// The restarted shard serves its items again (retry while the fresh
	// engine comes up).
	deadline = time.Now().Add(10 * time.Second)
	for {
		o, err := submitTo(s, 1)
		if err == nil && o.State == core.StateCommitted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted shard never served: o=%+v err=%v", o, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := s.SupervisionStats(); st.Dead != 0 {
		t.Fatalf("restarted shard still counted dead: %+v", st)
	}
}

// TestSupervisedRestartBudget: past MaxRestarts the shard stays dead;
// when every shard is dead the service as a whole reports failed.
func TestSupervisedRestartBudget(t *testing.T) {
	s, done, _ := startSupervised(t, 1, SuperviseOptions{Restart: true, MaxRestarts: 1})

	// First panic: restart. Second: budget exhausted, shard dies — and
	// with all shards dead, Run returns and Err() reports failure.
	if err := s.InjectShardPanic(0, "one"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.SupervisionStats().Restarts < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no restart: %+v", s.SupervisionStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The fresh engine must be up before the second injection lands.
	for {
		if err := s.InjectShardPanic(0, "two"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second injection never accepted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run returned nil after all shards died")
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("Run did not return with all shards dead: %+v", s.SupervisionStats())
	}
	if err := s.Err(); err == nil {
		t.Fatal("Err() nil with every shard dead")
	}
	if _, err := submitTo(s, 0); err == nil {
		t.Fatal("submit succeeded with every shard dead")
	}
}

// TestUnsupervisedPanicStillFatal: without supervision a shard panic
// keeps the pre-existing semantics — the whole service stops.
func TestUnsupervisedPanicStillFatal(t *testing.T) {
	s, _ := startService(t, 2)
	if err := s.InjectShardPanic(0, "fatal"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("unsupervised panic never surfaced on Err")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !errors.Is(s.Err(), core.ErrEngineFailed) && s.Err() == nil {
		t.Fatalf("Err() = %v", s.Err())
	}
}
